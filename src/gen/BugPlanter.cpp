//===- BugPlanter.cpp - Per-class bug synthesis ----------------------------===//
///
/// Each planter synthesizes a small program with one bug of its class and
/// derives the matching InputProfile. The invariants every planter keeps:
///
///  - the production distribution reaches the bug with modest probability
///    (mostly-benign inputs, like the hand-built Table-1 workloads),
///  - the perf distribution *cannot* reach it (every byte below the planted
///    trigger threshold, or the mode byte pinned to the locked path),
///  - no input can produce a failure of a different kind than the oracle
///    (e.g. the race planter sizes MinBytes so lost updates can at worst
///    consume 2*STEPS bytes and still never underrun the input stream).
///
//===----------------------------------------------------------------------===//

#include "gen/BugPlanter.h"

#include "gen/ProgramBuilder.h"
#include "support/Error.h"
#include "support/Format.h"

#include <utility>

using namespace er;
using namespace er::gen;
using namespace er::lang;

namespace {

template <typename... E> std::vector<ExprPtr> exprs(E... Es) {
  std::vector<ExprPtr> Out;
  (Out.push_back(std::move(Es)), ...);
  return Out;
}

template <typename... S> std::vector<StmtPtr> stmts(S... Ss) {
  std::vector<StmtPtr> Out;
  (Out.push_back(std::move(Ss)), ...);
  return Out;
}

/// Synthesis context: ProgramBuilder plus expression shorthands, so the
/// planters read close to the MiniLang they emit.
struct Ctx {
  ProgramBuilder PB;
  AstBuilder &A;
  Ctx() : A(PB.ast()) {}

  ExprPtr lit(uint64_t N) { return A.lit(N); }
  ExprPtr ref(const char *N) { return A.ref(N); }
  /// Scalar global cell: `name[0]`.
  ExprPtr cell(const char *N) { return A.elem(N, 0); }
  ExprPtr at(const char *N, ExprPtr I) { return A.index(N, std::move(I)); }
  ExprPtr atp(ExprPtr Base, ExprPtr I) {
    return A.index(std::move(Base), std::move(I));
  }

  ExprPtr add(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Add, std::move(X), std::move(Y));
  }
  ExprPtr sub(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Sub, std::move(X), std::move(Y));
  }
  ExprPtr mul(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Mul, std::move(X), std::move(Y));
  }
  ExprPtr div(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Div, std::move(X), std::move(Y));
  }
  ExprPtr mod(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Rem, std::move(X), std::move(Y));
  }
  ExprPtr lt(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Lt, std::move(X), std::move(Y));
  }
  ExprPtr le(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Le, std::move(X), std::move(Y));
  }
  ExprPtr gt(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Gt, std::move(X), std::move(Y));
  }
  ExprPtr ge(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Ge, std::move(X), std::move(Y));
  }
  ExprPtr eq(ExprPtr X, ExprPtr Y) {
    return A.bin(BinaryOp::Eq, std::move(X), std::move(Y));
  }

  StmtPtr set(ExprPtr Lhs, ExprPtr Rhs) {
    return A.assign(std::move(Lhs), std::move(Rhs));
  }
  StmtPtr decl(const char *N, ExprPtr Init) {
    return A.var(N, A.i64(), std::move(Init));
  }
  /// `name = name + 1;`
  StmtPtr inc(const char *N) {
    return set(ref(N), add(ref(N), lit(1)));
  }
  StmtPtr lockS(uint64_t Id) {
    return A.exprStmt(A.call("lock", exprs(lit(Id))));
  }
  StmtPtr unlockS(uint64_t Id) {
    return A.exprStmt(A.call("unlock", exprs(lit(Id))));
  }
  /// `var t: i64 = 0; while (t < Bound) { t = t + 1; }` — a busy-wait pad
  /// that widens race windows. Returns both statements.
  void pad(std::vector<StmtPtr> &Out, ExprPtr Bound) {
    Out.push_back(decl("t", lit(0)));
    Out.push_back(A.whileStmt(lt(ref("t"), std::move(Bound)),
                              A.block(stmts(inc("t")))));
  }
  /// Shared two-worker prologue: mode byte into mode[0], then spawn both
  /// entry functions on scratch cells and join them.
  std::vector<StmtPtr> spawnPair(const char *F1, const char *F2) {
    std::vector<StmtPtr> Main;
    Main.push_back(set(cell("mode"), PB.inByte()));
    Main.push_back(A.var(
        "t1", A.i64(),
        A.call("spawn", exprs(ref(F1), A.addrOf(A.elem("scratch", 0))))));
    Main.push_back(A.var(
        "t2", A.i64(),
        A.call("spawn", exprs(ref(F2), A.addrOf(A.elem("scratch", 1))))));
    Main.push_back(A.exprStmt(A.call("join", exprs(ref("t1")))));
    Main.push_back(A.exprStmt(A.call("join", exprs(ref("t2")))));
    return Main;
  }
};

//===----------------------------------------------------------------------===//
// Single-threaded classes
//===----------------------------------------------------------------------===//

/// Off-by-one store: `put` writes indices 0..len inclusive, and the caller
/// clamps to CAP instead of CAP-1, so a byte >= CAP stores buf[CAP].
void plantBufferOverflow(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t Cap = 8 + R.nextBounded(17);
  const uint64_t K = 1 + R.nextBounded(7);
  const uint32_t ByteMod = static_cast<uint32_t>(Cap + 2 + R.nextBounded(3));
  auto &A = C.A;

  A.global("buf", A.array(A.i64(), Cap));

  A.func("put", {A.param("len", A.i64())}, A.voidTy(),
         A.block(stmts(
             C.decl("j", C.lit(0)),
             A.whileStmt(C.le(C.ref("j"), C.ref("len")),
                         A.block(stmts(
                             C.set(C.at("buf", C.ref("j")),
                                   C.mul(C.ref("j"), C.lit(K))),
                             C.inc("j")))))));

  C.PB.buildByteDriver(
      {},
      stmts(C.decl("len", C.ref("b")),
            A.ifStmt(C.gt(C.ref("len"), C.lit(Cap)),
                     C.set(C.ref("len"), C.lit(Cap))),
            A.exprStmt(A.call("put", exprs(C.ref("len"))))),
      {});

  G.Profile.MinBytes = 3 + static_cast<uint32_t>(R.nextBounded(4));
  G.Profile.MaxBytes = G.Profile.MinBytes + 4 + R.nextBounded(8);
  G.Profile.ByteMod = ByteMod;
  G.Profile.PerfByteMod = static_cast<uint32_t>(Cap);
}

/// Truncation sign flip: bytes >= 128 survive an i8 round-trip as negative
/// values; the table index then wraps to a huge unsigned offset. The bug
/// hides behind an op-selector gate so most large bytes stay benign.
void plantIntegerBug(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t N = 128 + R.nextBounded(33);
  const uint64_t Sel = R.nextBounded(8);
  auto &A = C.A;

  A.global("tab", A.array(A.i64(), N));

  C.PB.buildByteDriver(
      {},
      stmts(C.set(C.at("tab", C.mod(C.ref("b"), C.lit(8))), C.ref("b")),
            A.ifStmt(
                C.eq(C.mod(C.ref("b"), C.lit(8)), C.lit(Sel)),
                A.block(stmts(
                    A.var("small", A.i8(), A.cast(C.ref("b"), A.i8())),
                    C.decl("idx", A.cast(C.ref("small"), A.i64())),
                    C.decl("v", C.at("tab", C.ref("idx"))),
                    C.set(C.cell("tab"), C.add(C.cell("tab"), C.ref("v"))))))),
      {});

  G.Profile.MinBytes = 4 + static_cast<uint32_t>(R.nextBounded(5));
  G.Profile.MaxBytes = G.Profile.MinBytes + 8 + R.nextBounded(9);
  G.Profile.ByteMod = 256;
  G.Profile.PerfByteMod = 128;
}

/// Fast path missing the init check: bytes below InitT lazily allocate;
/// bytes at or above it assume the pointer is live. A reset op drops the
/// allocation again so the window reopens mid-stream.
void plantNullDeref(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint32_t M = 24 + static_cast<uint32_t>(R.nextBounded(17));
  const uint32_t InitT = M - 3 - static_cast<uint32_t>(R.nextBounded(3));
  const uint64_t Ops = 5 + R.nextBounded(4);
  const uint64_t ResetOp = R.nextBounded(Ops);
  auto &A = C.A;

  A.global("ready", A.array(A.i64(), 1));

  C.PB.buildByteDriver(
      stmts(A.var("p", A.ptr(A.i64()), A.nullLit())),
      stmts(A.ifStmt(C.eq(C.mod(C.ref("b"), C.lit(Ops)), C.lit(ResetOp)),
                     A.block(stmts(C.set(C.ref("p"), A.nullLit()),
                                   C.set(C.cell("ready"), C.lit(0))))),
            A.ifStmt(
                C.lt(C.ref("b"), C.lit(InitT)),
                A.block(stmts(
                    A.ifStmt(C.eq(C.cell("ready"), C.lit(0)),
                             A.block(stmts(
                                 C.set(C.ref("p"),
                                       A.newArr(A.i64(), A.lit(4))),
                                 C.set(C.cell("ready"), C.lit(1))))),
                    C.set(C.atp(C.ref("p"), C.mod(C.ref("b"), C.lit(4))),
                          C.ref("b")))),
                A.block(stmts(C.set(C.atp(C.ref("p"), C.lit(0)),
                                    C.add(C.atp(C.ref("p"), C.lit(0)),
                                          C.ref("b"))))))),
      {});

  G.Profile.MinBytes = 3 + static_cast<uint32_t>(R.nextBounded(4));
  G.Profile.MaxBytes = G.Profile.MinBytes + 6 + R.nextBounded(8);
  G.Profile.ByteMod = M;
  G.Profile.PerfByteMod = InitT;
}

/// Stale alias: eviction frees and reallocates through `p` but never
/// repoints `q`; any later high byte touches the freed object through `q`.
void plantUseAfterFree(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint32_t M = 32 + static_cast<uint32_t>(R.nextBounded(17));
  const uint32_t UseT = M - 4 - static_cast<uint32_t>(R.nextBounded(4));
  const uint64_t Ops = 6 + R.nextBounded(5);
  const uint64_t Evict = R.nextBounded(Ops);
  const uint64_t Sz = 4 + R.nextBounded(5);
  auto &A = C.A;

  C.PB.buildByteDriver(
      stmts(A.var("p", A.ptr(A.i64()), A.newArr(A.i64(), A.lit(Sz))),
            A.var("q", A.ptr(A.i64()), C.ref("p"))),
      stmts(A.ifStmt(C.eq(C.mod(C.ref("b"), C.lit(Ops)), C.lit(Evict)),
                     A.block(stmts(
                         A.del(C.ref("p")),
                         C.set(C.ref("p"), A.newArr(A.i64(), A.lit(Sz)))))),
            A.ifStmt(C.ge(C.ref("b"), C.lit(UseT)),
                     A.block(stmts(C.set(
                         C.atp(C.ref("q"), C.lit(0)),
                         C.add(C.atp(C.ref("q"), C.lit(0)), C.lit(1))))),
                     A.block(stmts(C.set(
                         C.atp(C.ref("p"), C.mod(C.ref("b"), C.lit(Sz))),
                         C.ref("b")))))),
      stmts(A.del(C.ref("p"))));

  G.Profile.MinBytes = 4 + static_cast<uint32_t>(R.nextBounded(4));
  G.Profile.MaxBytes = G.Profile.MinBytes + 8 + R.nextBounded(9);
  G.Profile.ByteMod = M;
  G.Profile.PerfByteMod = UseT;
}

/// Ownership confusion: the release op frees under an ownership check, but
/// the high-byte error path frees unconditionally — the second free of the
/// same allocation is the bug.
void plantDoubleFree(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint32_t M = 32 + static_cast<uint32_t>(R.nextBounded(17));
  const uint32_t FreeT = M - 3 - static_cast<uint32_t>(R.nextBounded(4));
  const uint64_t Ops = 6 + R.nextBounded(5);
  const uint64_t Release = R.nextBounded(Ops);
  auto &A = C.A;

  C.PB.buildByteDriver(
      stmts(A.var("p", A.ptr(A.i64()), A.newArr(A.i64(), A.lit(4))),
            C.decl("owned", C.lit(1))),
      stmts(A.ifStmt(C.eq(C.ref("owned"), C.lit(1)),
                     A.block(stmts(C.set(
                         C.atp(C.ref("p"), C.mod(C.ref("b"), C.lit(4))),
                         C.ref("b"))))),
            A.ifStmt(C.eq(C.mod(C.ref("b"), C.lit(Ops)), C.lit(Release)),
                     A.block(stmts(A.ifStmt(
                         C.eq(C.ref("owned"), C.lit(1)),
                         A.block(stmts(A.del(C.ref("p")),
                                       C.set(C.ref("owned"), C.lit(0)))))))),
            A.ifStmt(C.ge(C.ref("b"), C.lit(FreeT)),
                     A.block(stmts(
                         A.del(C.ref("p")),
                         C.set(C.ref("p"), A.newArr(A.i64(), A.lit(4))),
                         C.set(C.ref("owned"), C.lit(1)))))),
      stmts(A.ifStmt(C.eq(C.ref("owned"), C.lit(1)),
                     A.block(stmts(A.del(C.ref("p")))))));

  G.Profile.MinBytes = 4 + static_cast<uint32_t>(R.nextBounded(4));
  G.Profile.MaxBytes = G.Profile.MinBytes + 8 + R.nextBounded(9);
  G.Profile.ByteMod = M;
  G.Profile.PerfByteMod = FreeT;
}

/// Unguarded denominator: `(b % M2) - Z` passes through zero for bytes
/// congruent to Z; the division does not check.
void plantDivByZero(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t M2 = 10 + R.nextBounded(7);
  const uint64_t Z = 2 + R.nextBounded(M2 - 3);
  const uint64_t Scale = 100 + R.nextBounded(900);

  C.PB.buildByteDriver(
      stmts(C.decl("acc", C.lit(0))),
      stmts(C.decl("den", C.sub(C.mod(C.ref("b"), C.lit(M2)), C.lit(Z))),
            C.set(C.ref("acc"),
                  C.add(C.ref("acc"), C.div(C.lit(Scale), C.ref("den"))))),
      {});

  G.Profile.MinBytes = 2;
  G.Profile.MaxBytes = 2 + R.nextBounded(5);
  G.Profile.ByteMod = 64 + static_cast<uint32_t>(R.nextBounded(65));
  G.Profile.PerfByteMod = static_cast<uint32_t>(Z);
}

/// Unguarded pop: the high-byte dispatch decrements the depth counter
/// without the emptiness check every other pop carries; the depth invariant
/// assert fires.
void plantLogicError(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint32_t M = 48 + static_cast<uint32_t>(R.nextBounded(17));
  const uint32_t T = M - 6 - static_cast<uint32_t>(R.nextBounded(6));
  auto &A = C.A;

  C.PB.buildByteDriver(
      stmts(C.decl("depth", C.lit(0))),
      stmts(C.decl("op", C.mod(C.ref("b"), C.lit(3))),
            A.ifStmt(C.eq(C.ref("op"), C.lit(0)),
                     C.set(C.ref("depth"), C.add(C.ref("depth"), C.lit(1)))),
            A.ifStmt(C.eq(C.ref("op"), C.lit(1)),
                     A.block(stmts(A.ifStmt(
                         C.gt(C.ref("depth"), C.lit(0)),
                         C.set(C.ref("depth"),
                               C.sub(C.ref("depth"), C.lit(1))))))),
            A.ifStmt(C.ge(C.ref("b"), C.lit(T)),
                     A.block(stmts(A.ifStmt(
                         C.eq(C.ref("op"), C.lit(2)),
                         C.set(C.ref("depth"),
                               C.sub(C.ref("depth"), C.lit(1))))))),
            A.assertStmt(C.ge(C.ref("depth"), C.lit(0)))),
      {});

  G.Profile.MinBytes = 3 + static_cast<uint32_t>(R.nextBounded(4));
  G.Profile.MaxBytes = G.Profile.MinBytes + 8 + R.nextBounded(9);
  G.Profile.ByteMod = M;
  G.Profile.PerfByteMod = T;
}

/// Slot leak: high bytes skip the release, so the pool's live count only
/// grows; once it hits capacity, acquire returns the sentinel index and the
/// unchecked store walks off the pool.
void plantResourceLeak(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t Pool = 4 + R.nextBounded(5);
  const uint32_t M = 40 + static_cast<uint32_t>(R.nextBounded(25));
  const uint32_t RelT = M - M / 4;
  auto &A = C.A;

  A.global("pool", A.array(A.i64(), Pool));
  A.global("used", A.array(A.i64(), 1));

  A.func("acquire", {}, A.i64(),
         A.block(stmts(
             A.ifStmt(C.lt(C.cell("used"), C.lit(Pool)),
                      A.block(stmts(
                          C.set(C.cell("used"),
                                C.add(C.cell("used"), C.lit(1))),
                          A.ret(C.sub(C.cell("used"), C.lit(1)))))),
             A.ret(C.lit(Pool)))));

  C.PB.buildByteDriver(
      {},
      stmts(C.decl("h", A.call("acquire", {})),
            C.set(C.at("pool", C.ref("h")), C.ref("b")),
            A.ifStmt(C.lt(C.ref("b"), C.lit(RelT)),
                     C.set(C.cell("used"), C.sub(C.cell("used"), C.lit(1))))),
      {});

  G.Profile.MinBytes = static_cast<uint32_t>(Pool * 2);
  G.Profile.MaxBytes =
      static_cast<uint32_t>(Pool * 6) + static_cast<uint32_t>(R.nextBounded(9));
  G.Profile.ByteMod = M;
  G.Profile.PerfByteMod = RelT;
}

//===----------------------------------------------------------------------===//
// Concurrency classes
//===----------------------------------------------------------------------===//

/// Check-then-act data race on a shared cursor: both workers can pass the
/// `wpos < CAP` check at CAP-1; the second one re-reads the cursor after
/// the first advanced it and stores sink[CAP]. The race window is a busy
/// wait of `v + c*WMul` iterations — an *input byte* mixed with the
/// *racily read cursor* — so a symbolic replay that misorders tied chunk
/// timestamps sees a different c, pins the wrong v, and generates an input
/// that misses under the recorded schedule. Only a chunk order consistent
/// with what symex assumed reproduces — the class schedule search exists
/// for (Section 3.4's caveat made concrete).
void plantDataRace(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t Cap = 6 + R.nextBounded(5);
  const uint64_t Steps = Cap + 2;
  const uint64_t WMul = 2 + R.nextBounded(3);
  auto &A = C.A;

  A.global("wpos", A.array(A.i64(), 1));
  A.global("sink", A.array(A.i64(), Cap));
  A.global("mode", A.array(A.i64(), 1));
  A.global("scratch", A.array(A.i64(), 2));

  std::vector<StmtPtr> Window;
  Window.push_back(A.var("v", A.i64(), C.PB.inByte()));
  C.pad(Window, C.add(C.ref("v"), C.mul(C.ref("c"), C.lit(WMul))));
  Window.push_back(C.decl("w", C.cell("wpos")));
  Window.push_back(C.set(C.atp(C.ref("p"), C.lit(0)),
                         C.add(C.atp(C.ref("p"), C.lit(0)), C.ref("v"))));
  Window.push_back(C.set(C.at("sink", C.ref("w")), C.ref("v")));
  Window.push_back(C.set(C.cell("wpos"), C.add(C.ref("w"), C.lit(1))));

  std::vector<StmtPtr> Body;
  Body.push_back(A.ifStmt(C.eq(C.cell("mode"), C.lit(1)), C.lockS(1)));
  Body.push_back(C.decl("c", C.cell("wpos")));
  Body.push_back(
      A.ifStmt(C.lt(C.ref("c"), C.lit(Cap)), A.block(std::move(Window))));
  Body.push_back(A.ifStmt(C.eq(C.cell("mode"), C.lit(1)), C.unlockS(1)));
  Body.push_back(C.inc("k"));

  A.func("worker", {A.param("p", A.ptr(A.i64()))}, A.voidTy(),
         A.block(stmts(C.decl("k", C.lit(0)),
                       A.whileStmt(C.lt(C.ref("k"), C.lit(Steps)),
                                   A.block(std::move(Body))))));

  std::vector<StmtPtr> Main = C.spawnPair("worker", "worker");
  Main.push_back(A.ret(C.lit(0)));
  A.func("main", {}, A.i64(), A.block(std::move(Main)));

  G.Profile.HasModeByte = true;
  G.Profile.UnsafePermille = 350 + static_cast<uint32_t>(R.nextBounded(200));
  // Worst case (all lost updates) each worker consumes one byte per loop
  // iteration: 2*Steps total. MinBytes covers that so a racy run can never
  // degenerate into an InputUnderrun instead of the planted OutOfBounds.
  G.Profile.MinBytes = static_cast<uint32_t>(2 * Steps + 2);
  G.Profile.MaxBytes = G.Profile.MinBytes + 6;
  G.Profile.ByteMod = 256;
  G.Profile.PerfBytes = static_cast<uint32_t>(2 * Steps + 8);
  G.Profile.PerfByteMod = 256;
  G.VmChunkSize = 14 + static_cast<unsigned>(R.nextBounded(11));
  G.SolverWorkBudget = 60'000;
}

/// Classic lost update: read, pad, write back +1 from two workers. Under
/// the racy mode some increments vanish and the final count assert fires.
/// No worker reads input, so the recorded chunk order replays exactly.
void plantLostUpdate(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t Rounds = 5 + R.nextBounded(6);
  const uint64_t Pad = 2 + R.nextBounded(5);
  auto &A = C.A;

  A.global("counter", A.array(A.i64(), 1));
  A.global("mode", A.array(A.i64(), 1));
  A.global("scratch", A.array(A.i64(), 2));

  std::vector<StmtPtr> Body;
  Body.push_back(A.ifStmt(C.eq(C.cell("mode"), C.lit(1)), C.lockS(1)));
  Body.push_back(C.decl("c", C.cell("counter")));
  C.pad(Body, C.lit(Pad));
  Body.push_back(C.set(C.cell("counter"), C.add(C.ref("c"), C.lit(1))));
  Body.push_back(C.set(C.atp(C.ref("p"), C.lit(0)),
                       C.add(C.atp(C.ref("p"), C.lit(0)), C.lit(1))));
  Body.push_back(A.ifStmt(C.eq(C.cell("mode"), C.lit(1)), C.unlockS(1)));
  Body.push_back(C.inc("k"));

  A.func("worker", {A.param("p", A.ptr(A.i64()))}, A.voidTy(),
         A.block(stmts(C.decl("k", C.lit(0)),
                       A.whileStmt(C.lt(C.ref("k"), C.lit(Rounds)),
                                   A.block(std::move(Body))))));

  std::vector<StmtPtr> Main = C.spawnPair("worker", "worker");
  Main.push_back(A.assertStmt(C.eq(C.cell("counter"), C.lit(2 * Rounds))));
  Main.push_back(A.ret(C.lit(0)));
  A.func("main", {}, A.i64(), A.block(std::move(Main)));

  G.Profile.HasModeByte = true;
  G.Profile.UnsafePermille = 400 + static_cast<uint32_t>(R.nextBounded(200));
  G.Profile.MinBytes = 0;
  G.Profile.MaxBytes = 0;
  G.Profile.PerfBytes = 0;
  G.VmChunkSize = 14 + static_cast<unsigned>(R.nextBounded(11));
  G.SolverWorkBudget = 60'000;
}

/// Lock-order inversion: `left` takes mutex 1 then 2; the racy mode of
/// `right` takes 2 then 1, holding its first lock across an input-scaled
/// spin window. When the windows overlap, every live thread blocks.
void plantDeadlock(Ctx &C, Rng &R, GeneratedCampaign &G) {
  const uint64_t HoldM = 6 + R.nextBounded(7);
  const uint64_t Lo = 2 + R.nextBounded(3);
  auto &A = C.A;

  A.global("mode", A.array(A.i64(), 1));
  A.global("hold", A.array(A.i64(), 2));
  A.global("scratch", A.array(A.i64(), 2));

  auto bumpP = [&]() {
    return C.set(C.atp(C.ref("p"), C.lit(0)),
                 C.add(C.atp(C.ref("p"), C.lit(0)), C.lit(1)));
  };

  std::vector<StmtPtr> Left;
  Left.push_back(C.lockS(1));
  C.pad(Left, A.elem("hold", 0));
  Left.push_back(C.lockS(2));
  Left.push_back(bumpP());
  Left.push_back(C.unlockS(2));
  Left.push_back(C.unlockS(1));
  A.func("left", {A.param("p", A.ptr(A.i64()))}, A.voidTy(),
         A.block(std::move(Left)));

  std::vector<StmtPtr> Inverted;
  Inverted.push_back(C.lockS(2));
  C.pad(Inverted, A.elem("hold", 1));
  Inverted.push_back(C.lockS(1));
  Inverted.push_back(bumpP());
  Inverted.push_back(C.unlockS(1));
  Inverted.push_back(C.unlockS(2));

  A.func("right", {A.param("p", A.ptr(A.i64()))}, A.voidTy(),
         A.block(stmts(A.ifStmt(
             C.eq(C.cell("mode"), C.lit(1)),
             A.block(stmts(C.lockS(1), C.lockS(2), bumpP(), C.unlockS(2),
                           C.unlockS(1))),
             A.block(std::move(Inverted))))));

  std::vector<StmtPtr> Main;
  Main.push_back(C.set(C.cell("mode"), C.PB.inByte()));
  Main.push_back(C.set(A.elem("hold", 0),
                       C.add(C.lit(Lo), C.mod(C.PB.inByte(), C.lit(HoldM)))));
  Main.push_back(C.set(A.elem("hold", 1),
                       C.add(C.lit(Lo), C.mod(C.PB.inByte(), C.lit(HoldM)))));
  Main.push_back(A.var(
      "t1", A.i64(),
      A.call("spawn", exprs(C.ref("left"), A.addrOf(A.elem("scratch", 0))))));
  Main.push_back(A.var(
      "t2", A.i64(),
      A.call("spawn", exprs(C.ref("right"), A.addrOf(A.elem("scratch", 1))))));
  Main.push_back(A.exprStmt(A.call("join", exprs(C.ref("t1")))));
  Main.push_back(A.exprStmt(A.call("join", exprs(C.ref("t2")))));
  Main.push_back(A.ret(C.lit(0)));
  A.func("main", {}, A.i64(), A.block(std::move(Main)));

  G.Profile.HasModeByte = true;
  G.Profile.UnsafePermille = 400 + static_cast<uint32_t>(R.nextBounded(200));
  G.Profile.MinBytes = 2; // the two hold-window bytes
  G.Profile.MaxBytes = 2;
  G.Profile.ByteMod = 256;
  G.Profile.PerfBytes = 2;
  G.Profile.PerfByteMod = 256;
  G.VmChunkSize = 12 + static_cast<unsigned>(R.nextBounded(13));
  G.SolverWorkBudget = 60'000;
}

} // namespace

GeneratedCampaign er::gen::plantBug(BugClass Class, uint64_t RootSeed,
                                    uint64_t Index, Rng Child) {
  GeneratedCampaign G;
  G.Class = Class;
  G.RootSeed = RootSeed;
  G.Index = Index;
  G.Oracle = bugClassOracle(Class);
  G.Multithreaded = bugClassMultithreaded(Class);
  G.Id = formatString("GEN-%s-%04llu", bugClassTag(Class),
                      static_cast<unsigned long long>(Index));
  // Defaults the single-threaded planters keep; the concurrency planters
  // override chunk size and budget to their smaller scale.
  Rng D = Child.split(0);
  G.VmChunkSize = 96 + static_cast<unsigned>(D.nextBounded(49));
  G.Profile.PerfBytes = 48 + static_cast<uint32_t>(D.nextBounded(33));

  Ctx C;
  Rng R = Child.split(1);
  switch (Class) {
  case BugClass::BufferOverflow: plantBufferOverflow(C, R, G); break;
  case BugClass::IntegerBug:     plantIntegerBug(C, R, G); break;
  case BugClass::NullDeref:      plantNullDeref(C, R, G); break;
  case BugClass::UseAfterFree:   plantUseAfterFree(C, R, G); break;
  case BugClass::DoubleFree:     plantDoubleFree(C, R, G); break;
  case BugClass::DivByZero:      plantDivByZero(C, R, G); break;
  case BugClass::LogicError:     plantLogicError(C, R, G); break;
  case BugClass::ResourceLeak:   plantResourceLeak(C, R, G); break;
  case BugClass::DataRace:       plantDataRace(C, R, G); break;
  case BugClass::LostUpdate:     plantLostUpdate(C, R, G); break;
  case BugClass::Deadlock:       plantDeadlock(C, R, G); break;
  }
  G.Source = C.PB.finish();
  return G;
}
