//===- CorpusWriter.h - Campaign corpus serialization ------------*- C++ -*-===//
///
/// \file
/// On-disk form of a generated corpus: one `<id>.mlc` file per campaign in
/// the line-oriented `er-gen-campaign v1` format (header keys, then the raw
/// program source as a length-prefixed block), plus a MANIFEST written last
/// — temp-file + rename, the spool discipline — so a directory with a
/// MANIFEST is a complete corpus and a crashed writer leaves no ambiguity.
/// Loaders skip unknown header keys, mirroring the fleet state format's
/// forward compatibility.
///
//===----------------------------------------------------------------------===//

#ifndef ER_GEN_CORPUSWRITER_H
#define ER_GEN_CORPUSWRITER_H

#include "gen/GenConfig.h"
#include "support/Fs.h"

#include <string>
#include <vector>

namespace er {
namespace gen {

/// Renders one campaign to the `er-gen-campaign v1` wire form.
std::string serializeCampaign(const GeneratedCampaign &C);

/// Parses the wire form; returns false with a diagnostic on malformed
/// input. Unknown header keys are skipped.
bool parseCampaign(const std::string &Text, GeneratedCampaign &Out,
                   std::string &Err);

/// Writes the corpus into \p Dir (created if missing). Returns an empty
/// string on success, else a diagnostic. \p Fs is the filesystem seam
/// (null = real).
std::string writeCorpus(const std::string &Dir,
                        const std::vector<GeneratedCampaign> &Corpus,
                        FsOps *Fs = nullptr);

/// Loads every campaign listed in \p Dir's MANIFEST. On failure returns an
/// empty vector and sets \p Err.
std::vector<GeneratedCampaign> loadCorpus(const std::string &Dir,
                                          std::string &Err,
                                          FsOps *Fs = nullptr);

} // namespace gen
} // namespace er

#endif // ER_GEN_CORPUSWRITER_H
