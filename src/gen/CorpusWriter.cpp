//===- CorpusWriter.cpp - Campaign corpus serialization --------------------===//

#include "gen/CorpusWriter.h"

#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Format.h"

#include <cstdlib>
#include <sstream>

using namespace er;
using namespace er::gen;

namespace {

struct GenMetrics {
  obs::Counter &CampaignsWritten;
  obs::Counter &CampaignsLoaded;
  obs::Counter &LoadErrors;

  static GenMetrics &get() {
    static GenMetrics M = [] {
      auto &Reg = obs::MetricsRegistry::global();
      return GenMetrics{
          Reg.counter("gen.corpus.written"),
          Reg.counter("gen.corpus.loaded"),
          Reg.counter("gen.corpus.load_errors"),
      };
    }();
    return M;
  }
};

constexpr const char *Magic = "er-gen-campaign v1";
constexpr const char *ManifestMagic = "er-gen-manifest v1";

/// Reads the next \n-terminated line starting at \p Pos; false at EOF.
bool nextLine(const std::string &Text, size_t &Pos, std::string &Line) {
  if (Pos >= Text.size())
    return false;
  size_t Nl = Text.find('\n', Pos);
  if (Nl == std::string::npos) {
    Line = Text.substr(Pos);
    Pos = Text.size();
  } else {
    Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
  }
  return true;
}

} // namespace

std::string er::gen::serializeCampaign(const GeneratedCampaign &C) {
  std::ostringstream S;
  S << Magic << "\n";
  S << "id " << C.Id << "\n";
  S << "class " << bugClassTag(C.Class) << "\n";
  S << "rootseed " << C.RootSeed << "\n";
  S << "index " << C.Index << "\n";
  S << "chunk " << C.VmChunkSize << "\n";
  S << "budget " << C.SolverWorkBudget << "\n";
  const InputProfile &P = C.Profile;
  S << "profile " << P.MinBytes << " " << P.MaxBytes << " " << P.ByteMod
    << " " << (P.HasModeByte ? 1 : 0) << " " << P.UnsafePermille << " "
    << P.PerfBytes << " " << P.PerfByteMod << "\n";
  S << "source " << C.Source.size() << "\n";
  S << C.Source;
  S << "end\n";
  return S.str();
}

bool er::gen::parseCampaign(const std::string &Text, GeneratedCampaign &Out,
                            std::string &Err) {
  size_t Pos = 0;
  std::string Line;
  if (!nextLine(Text, Pos, Line) || Line != Magic) {
    Err = "bad campaign magic";
    return false;
  }
  Out = GeneratedCampaign();
  bool HaveClass = false, HaveSource = false;
  while (nextLine(Text, Pos, Line)) {
    if (Line == "end")
      break;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "id") {
      LS >> Out.Id;
    } else if (Key == "class") {
      std::string Tag;
      LS >> Tag;
      if (!parseBugClassTag(Tag, Out.Class)) {
        Err = "unknown bug class '" + Tag + "'";
        return false;
      }
      HaveClass = true;
    } else if (Key == "rootseed") {
      LS >> Out.RootSeed;
    } else if (Key == "index") {
      LS >> Out.Index;
    } else if (Key == "chunk") {
      LS >> Out.VmChunkSize;
    } else if (Key == "budget") {
      LS >> Out.SolverWorkBudget;
    } else if (Key == "profile") {
      InputProfile &P = Out.Profile;
      unsigned Mode = 0;
      LS >> P.MinBytes >> P.MaxBytes >> P.ByteMod >> Mode >>
          P.UnsafePermille >> P.PerfBytes >> P.PerfByteMod;
      if (LS.fail()) {
        Err = "malformed profile line";
        return false;
      }
      P.HasModeByte = Mode != 0;
    } else if (Key == "source") {
      uint64_t N = 0;
      LS >> N;
      if (LS.fail() || N > Text.size() - Pos) {
        Err = "malformed source block";
        return false;
      }
      Out.Source = Text.substr(Pos, N);
      Pos += N;
      HaveSource = true;
    }
    // Unknown keys are skipped: newer writers may add fields.
  }
  if (!HaveClass || !HaveSource || Out.Id.empty()) {
    Err = "campaign missing id/class/source";
    return false;
  }
  Out.Oracle = bugClassOracle(Out.Class);
  Out.Multithreaded = bugClassMultithreaded(Out.Class);
  return true;
}

std::string er::gen::writeCorpus(const std::string &Dir,
                                 const std::vector<GeneratedCampaign> &Corpus,
                                 FsOps *Fs) {
  obs::ScopedSpan Span("gen.corpus.write");
  Span.arg("campaigns", std::to_string(Corpus.size()));
  FsOps &F = Fs ? *Fs : FsOps::real();
  std::string Error;
  if (!F.createDirectories(Dir, &Error))
    return "cannot create corpus directory " + Dir + ": " + Error;

  std::ostringstream Manifest;
  Manifest << ManifestMagic << "\n";
  Manifest << "count " << Corpus.size() << "\n";
  for (const GeneratedCampaign &C : Corpus) {
    std::string File = C.Id + ".mlc";
    if (F.writeFile(Dir + "/" + File, serializeCampaign(C), &Error) !=
        FsStatus::Ok)
      return "cannot write " + File + ": " + Error;
    Manifest << "campaign " << C.Id << " " << File << "\n";
    GenMetrics::get().CampaignsWritten.inc();
  }
  // MANIFEST last, via temp + rename: its presence marks a complete corpus.
  std::string Tmp = Dir + "/.MANIFEST.tmp";
  if (F.writeFile(Tmp, Manifest.str(), &Error) != FsStatus::Ok)
    return "cannot write manifest temp: " + Error;
  if (F.rename(Tmp, Dir + "/MANIFEST", &Error) != FsStatus::Ok)
    return "cannot publish manifest: " + Error;
  return "";
}

std::vector<GeneratedCampaign>
er::gen::loadCorpus(const std::string &Dir, std::string &Err, FsOps *Fs) {
  obs::ScopedSpan Span("gen.corpus.load");
  FsOps &F = Fs ? *Fs : FsOps::real();
  std::vector<GeneratedCampaign> Out;

  std::vector<uint8_t> Raw;
  if (F.readFile(Dir + "/MANIFEST", Raw, &Err) != FsStatus::Ok) {
    GenMetrics::get().LoadErrors.inc();
    Err = "cannot read " + Dir + "/MANIFEST (not a corpus directory?)";
    return {};
  }
  std::string Manifest(Raw.begin(), Raw.end());
  size_t Pos = 0;
  std::string Line;
  if (!nextLine(Manifest, Pos, Line) || Line != ManifestMagic) {
    GenMetrics::get().LoadErrors.inc();
    Err = "bad manifest magic in " + Dir;
    return {};
  }
  while (nextLine(Manifest, Pos, Line)) {
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key != "campaign")
      continue; // count + future keys
    std::string Id, File;
    LS >> Id >> File;
    if (Id.empty() || File.empty() || File.find('/') != std::string::npos) {
      GenMetrics::get().LoadErrors.inc();
      Err = "malformed manifest entry: " + Line;
      return {};
    }
    std::vector<uint8_t> Bytes;
    if (F.readFile(Dir + "/" + File, Bytes, &Err) != FsStatus::Ok) {
      GenMetrics::get().LoadErrors.inc();
      Err = "cannot read campaign file " + File;
      return {};
    }
    GeneratedCampaign C;
    std::string Text(Bytes.begin(), Bytes.end());
    if (!parseCampaign(Text, C, Err)) {
      GenMetrics::get().LoadErrors.inc();
      Err = File + ": " + Err;
      return {};
    }
    if (C.Id != Id) {
      GenMetrics::get().LoadErrors.inc();
      Err = File + ": id mismatch (manifest " + Id + ", file " + C.Id + ")";
      return {};
    }
    Out.push_back(std::move(C));
    GenMetrics::get().CampaignsLoaded.inc();
  }
  Span.arg("campaigns", std::to_string(Out.size()));
  return Out;
}
