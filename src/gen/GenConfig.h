//===- GenConfig.h - Generated bug-corpus configuration ----------*- C++ -*-===//
///
/// \file
/// Configuration and campaign model for the generated workload factory.
/// The generator extends the hand-built Table-1 registry (src/workloads/)
/// with seeded, self-describing campaigns: each campaign is a synthesized
/// MiniLang program with one bug planted by class, an oracle describing the
/// failure the bug produces, and the input profile needed to rebuild its
/// production/perf input distributions from a campaign file alone.
///
/// ## Seeding discipline
///
/// All randomness descends from one root `Rng(GenConfig.Seed)`. Campaign
/// number I draws every decision from the child `root.split(I)` and nothing
/// else — `Rng::split` derives an independent stream without advancing the
/// parent, so campaign I's bytes depend only on (Seed, I):
///
///  - the corpus is byte-identical across runs for a fixed seed,
///  - it is *prefix-stable*: growing `Count` appends campaigns without
///    changing earlier ones, and
///  - generation order / job count cannot matter, because no planter ever
///    touches a shared generator.
///
/// Planters that need several independent decision streams split again from
/// their campaign child (`Child.split(K)` for a fixed per-decision K) rather
/// than interleaving draws, so inserting a new decision into one planter
/// does not reshuffle the others.
///
//===----------------------------------------------------------------------===//

#ifndef ER_GEN_GENCONFIG_H
#define ER_GEN_GENCONFIG_H

#include "support/Rng.h"
#include "vm/Failure.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <string>
#include <vector>

namespace er {
namespace gen {

/// The planted-bug taxonomy. The first eight are single-threaded classes
/// extending the paper's Table-1 "Bug Type" column; the last three are
/// concurrency classes (data race, lost update, deadlock) that exercise the
/// chunk scheduler and schedule-search reconstruction.
enum class BugClass : uint8_t {
  BufferOverflow, ///< Off-by-one store past a clamped buffer.
  IntegerBug,     ///< i8 truncation flips sign; negative index -> wild load.
  NullDeref,      ///< Fast path skips the initialization check.
  UseAfterFree,   ///< Stale alias not repointed on eviction.
  DoubleFree,     ///< Error path frees without taking ownership.
  DivByZero,      ///< Unguarded modular denominator.
  LogicError,     ///< State machine pops an empty stack; assert fires.
  ResourceLeak,   ///< Leaked slots exhaust a pool; sentinel index escapes.
  DataRace,       ///< Check-then-act on a shared cursor (TOCTOU).
  LostUpdate,     ///< Unlocked read-pad-write; final count assert fires.
  Deadlock,       ///< Lock-order inversion between two workers.
};

constexpr unsigned NumBugClasses = 11;
constexpr unsigned NumConcurrencyClasses = 3;

/// Short stable tag used in campaign ids and CLI class filters ("bufov").
const char *bugClassTag(BugClass C);
/// Human-readable Table-1-style name ("buffer overflow").
const char *bugClassName(BugClass C);
/// The failure kind the planted bug produces when it fires.
FailureKind bugClassOracle(BugClass C);
/// True for the classes whose programs spawn threads.
bool bugClassMultithreaded(BugClass C);
/// Parses a tag back to a class; returns false on unknown tags.
bool parseBugClassTag(const std::string &Tag, BugClass &Out);

/// Everything needed to rebuild a campaign's input distributions without
/// the generator: production inputs draw a uniform length in
/// [MinBytes, MaxBytes] of bytes uniform in [0, ByteMod); perf inputs are
/// PerfBytes bytes uniform in [0, PerfByteMod), chosen below every planted
/// trigger threshold so the overhead workload never faults. Concurrency
/// programs prepend a mode byte (1 = correctly locked, 0 = racy) that
/// production draws unsafe with probability UnsafePermille/1000 and perf
/// always draws safe.
struct InputProfile {
  uint32_t MinBytes = 1;
  uint32_t MaxBytes = 1;
  uint32_t ByteMod = 256;
  bool HasModeByte = false;
  uint32_t UnsafePermille = 0;
  uint32_t PerfBytes = 64;
  uint32_t PerfByteMod = 1;
};

/// One generated campaign: a self-describing (program, oracle, seed)
/// triple. Serialized by CorpusWriter; convertible to a BugSpec that
/// registers alongside the hand-built workloads.
struct GeneratedCampaign {
  std::string Id;      ///< "GEN-<tag>-<NNNN>".
  BugClass Class = BugClass::BufferOverflow;
  uint64_t RootSeed = 0; ///< GenConfig.Seed the corpus was built from.
  uint64_t Index = 0;    ///< Campaign number (the split stream id).
  FailureKind Oracle = FailureKind::None;
  bool Multithreaded = false;
  unsigned VmChunkSize = 120;
  uint64_t SolverWorkBudget = 200'000;
  InputProfile Profile;
  std::string Source; ///< Printed MiniLang program.
};

/// Corpus generation parameters.
struct GenConfig {
  uint64_t Seed = 1;
  unsigned Count = 200;
  /// Bit I enables class I (default: all classes).
  uint32_t ClassMask = 0xffffffffu;
};

/// Generates `Count` campaigns. Classes round-robin over the enabled set so
/// any prefix spans the taxonomy; campaign I is a pure function of
/// (Seed, I) per the seeding discipline above. Every returned campaign's
/// source has been compiled once as a self-check (fatal on planter bugs).
std::vector<GeneratedCampaign> generateCorpus(const GenConfig &Config);

/// Adapts a campaign to the workload-registry spec shape. The input
/// closures are rebuilt from the profile, so a campaign loaded from disk
/// behaves identically to a freshly generated one.
BugSpec toBugSpec(const GeneratedCampaign &C);

} // namespace gen
} // namespace er

#endif // ER_GEN_GENCONFIG_H
