//===- ProgramBuilder.cpp - Synthesis scaffolding for planters -------------===//

#include "gen/ProgramBuilder.h"

#include "lang/Codegen.h"
#include "support/Error.h"

using namespace er;
using namespace er::gen;
using namespace er::lang;

ExprPtr ProgramBuilder::inByte() {
  return B.cast(B.call("input_byte", {}), B.i64());
}

StmtPtr ProgramBuilder::declByte(const std::string &Name) {
  return B.var(Name, B.i64(), inByte());
}

void ProgramBuilder::buildByteDriver(std::vector<StmtPtr> Prologue,
                                     std::vector<StmtPtr> PerByte,
                                     std::vector<StmtPtr> Epilogue) {
  std::vector<StmtPtr> Loop;
  Loop.push_back(declByte());
  for (auto &S : PerByte)
    Loop.push_back(std::move(S));
  Loop.push_back(
      B.assign(B.ref("i"), B.bin(BinaryOp::Add, B.ref("i"), B.lit(1))));

  std::vector<StmtPtr> Main = std::move(Prologue);
  Main.push_back(B.var("n", B.i64(), B.call("input_size", {})));
  Main.push_back(B.var("i", B.i64(), B.lit(0)));
  Main.push_back(B.whileStmt(B.bin(BinaryOp::Lt, B.ref("i"), B.ref("n")),
                             B.block(std::move(Loop))));
  for (auto &S : Epilogue)
    Main.push_back(std::move(S));
  Main.push_back(B.ret(B.lit(0)));

  B.func("main", {}, B.i64(), B.block(std::move(Main)));
}

std::string ProgramBuilder::finish() {
  std::string Source = printProgram(P);
  CompileResult R = compileMiniLang(Source);
  if (!R.ok())
    fatalError("generated program failed to compile: " + R.Error +
               "\n--- source ---\n" + Source);
  return Source;
}
