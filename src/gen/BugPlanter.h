//===- BugPlanter.h - Per-class bug synthesis --------------------*- C++ -*-===//
///
/// \file
/// One planter per BugClass. Each synthesizes a small application-shaped
/// MiniLang program with exactly one bug of its class, randomizing the
/// surrounding constants (buffer sizes, thresholds, op selectors, loop
/// rounds) from the campaign's child Rng so no two campaigns are the same
/// program, then derives an InputProfile whose production distribution
/// reaches the bug with modest probability and whose perf distribution
/// provably cannot.
///
//===----------------------------------------------------------------------===//

#ifndef ER_GEN_BUGPLANTER_H
#define ER_GEN_BUGPLANTER_H

#include "gen/GenConfig.h"

namespace er {
namespace gen {

/// Synthesizes campaign number \p Index of class \p Class from \p Child
/// (the campaign's split stream; see the seeding discipline in
/// GenConfig.h). \p RootSeed is recorded in the campaign for provenance.
GeneratedCampaign plantBug(BugClass Class, uint64_t RootSeed, uint64_t Index,
                           Rng Child);

} // namespace gen
} // namespace er

#endif // ER_GEN_BUGPLANTER_H
