//===- GenConfig.cpp - Corpus generation and registry adaptation -----------===//

#include "gen/GenConfig.h"

#include "gen/BugPlanter.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Error.h"
#include "vm/Input.h"

using namespace er;
using namespace er::gen;

namespace {

struct ClassInfo {
  const char *Tag;
  const char *Name;
  FailureKind Oracle;
  bool Multithreaded;
};

constexpr ClassInfo Classes[NumBugClasses] = {
    {"bufov", "buffer overflow", FailureKind::OutOfBounds, false},
    // A sign-flipped index lands so far outside the object that the VM
    // reports an invalid load (NullDeref kind), not a near-miss OutOfBounds.
    {"intbug", "integer bug", FailureKind::NullDeref, false},
    {"nullptr", "null pointer dereference", FailureKind::NullDeref, false},
    {"uaf", "use after free", FailureKind::UseAfterFree, false},
    {"dfree", "double free", FailureKind::DoubleFree, false},
    {"divzero", "division by zero", FailureKind::DivByZero, false},
    {"logic", "logic error", FailureKind::Abort, false},
    {"leak", "resource leak", FailureKind::OutOfBounds, false},
    {"race", "data race", FailureKind::OutOfBounds, true},
    {"lostupd", "lost update", FailureKind::Abort, true},
    {"dlock", "deadlock", FailureKind::Deadlock, true},
};

const ClassInfo &info(BugClass C) {
  unsigned I = static_cast<unsigned>(C);
  if (I >= NumBugClasses)
    fatalError("invalid BugClass");
  return Classes[I];
}

} // namespace

const char *er::gen::bugClassTag(BugClass C) { return info(C).Tag; }
const char *er::gen::bugClassName(BugClass C) { return info(C).Name; }
FailureKind er::gen::bugClassOracle(BugClass C) { return info(C).Oracle; }
bool er::gen::bugClassMultithreaded(BugClass C) {
  return info(C).Multithreaded;
}

bool er::gen::parseBugClassTag(const std::string &Tag, BugClass &Out) {
  for (unsigned I = 0; I < NumBugClasses; ++I) {
    if (Tag == Classes[I].Tag) {
      Out = static_cast<BugClass>(I);
      return true;
    }
  }
  return false;
}

std::vector<GeneratedCampaign>
er::gen::generateCorpus(const GenConfig &Config) {
  std::vector<BugClass> Enabled;
  for (unsigned I = 0; I < NumBugClasses; ++I)
    if (Config.ClassMask & (1u << I))
      Enabled.push_back(static_cast<BugClass>(I));
  if (Enabled.empty())
    fatalError("generateCorpus: empty class mask");

  obs::ScopedSpan Span("gen.generate");
  Span.arg("count", static_cast<uint64_t>(Config.Count));
  auto &Reg = obs::MetricsRegistry::global();
  obs::Counter &Campaigns = Reg.counter("gen.campaigns");
  obs::Histogram &SourceBytes =
      Reg.histogram("gen.source.bytes", obs::exponentialBounds(256, 12, 2));

  // Campaign I draws everything from Root.split(I): see the seeding
  // discipline in GenConfig.h. The round-robin keeps any prefix spanning
  // the enabled taxonomy.
  Rng Root(Config.Seed);
  std::vector<GeneratedCampaign> Out;
  Out.reserve(Config.Count);
  for (uint64_t I = 0; I < Config.Count; ++I) {
    Out.push_back(plantBug(Enabled[I % Enabled.size()], Config.Seed, I,
                           Root.split(I)));
    Campaigns.inc();
    SourceBytes.record(Out.back().Source.size());
  }
  return Out;
}

BugSpec er::gen::toBugSpec(const GeneratedCampaign &C) {
  BugSpec S;
  S.Id = C.Id;
  S.App = std::string("gen/") + bugClassTag(C.Class);
  S.BugType = bugClassName(C.Class);
  S.Multithreaded = C.Multithreaded;
  S.Source = C.Source;
  S.VmChunkSize = C.VmChunkSize;
  S.SolverWorkBudget = C.SolverWorkBudget;
  S.PerfBenchmark = "generated";

  const InputProfile P = C.Profile;
  S.ProductionInput = [P](Rng &R) {
    ProgramInput In;
    if (P.HasModeByte)
      In.Bytes.push_back(R.nextBounded(1000) < P.UnsafePermille ? 0 : 1);
    uint64_t N = P.MinBytes;
    if (P.MaxBytes > P.MinBytes)
      N += R.nextBounded(P.MaxBytes - P.MinBytes + 1);
    for (uint64_t I = 0; I < N; ++I)
      In.Bytes.push_back(
          static_cast<uint8_t>(R.nextBounded(P.ByteMod ? P.ByteMod : 256)));
    return In;
  };
  S.PerfInput = [P](Rng &R) {
    ProgramInput In;
    if (P.HasModeByte)
      In.Bytes.push_back(1); // always the correctly-locked mode
    for (uint64_t I = 0; I < P.PerfBytes; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(
          R.nextBounded(P.PerfByteMod ? P.PerfByteMod : 1)));
    return In;
  };
  return S;
}
