//===- ProgramBuilder.h - Synthesis scaffolding for planters -----*- C++ -*-===//
///
/// \file
/// Shared scaffolding the bug planters build programs on: an owned Program
/// plus AstBuilder, byte-driver skeletons (the input loop every
/// single-threaded campaign shares), and a finish step that prints the AST
/// to source and compile-checks it, so a planter bug dies at generation
/// time rather than inside a fleet run.
///
//===----------------------------------------------------------------------===//

#ifndef ER_GEN_PROGRAMBUILDER_H
#define ER_GEN_PROGRAMBUILDER_H

#include "lang/AstBuilder.h"

#include <string>
#include <vector>

namespace er {
namespace gen {

class ProgramBuilder {
public:
  ProgramBuilder() : B(P) {}

  lang::AstBuilder &ast() { return B; }
  lang::Program &program() { return P; }

  /// `(input_byte() as i64)`.
  lang::ExprPtr inByte();
  /// `var b: i64 = (input_byte() as i64);`
  lang::StmtPtr declByte(const std::string &Name = "b");

  /// Wraps \p PerByte in the standard driver and appends `fn main`:
  ///
  ///   fn main() {
  ///     <Prologue>
  ///     var n: i64 = input_size();
  ///     var i: i64 = 0;
  ///     while (i < n) {
  ///       var b: i64 = (input_byte() as i64);
  ///       <PerByte>
  ///       i = i + 1;
  ///     }
  ///     <Epilogue>
  ///   }
  void buildByteDriver(std::vector<lang::StmtPtr> Prologue,
                       std::vector<lang::StmtPtr> PerByte,
                       std::vector<lang::StmtPtr> Epilogue);

  /// Prints the program to source and compiles it as a self-check; fatal
  /// with the compiler diagnostic if the planter synthesized an invalid
  /// program.
  std::string finish();

private:
  lang::Program P;
  lang::AstBuilder B;
};

} // namespace gen
} // namespace er

#endif // ER_GEN_PROGRAMBUILDER_H
