//===- Interpreter.cpp - Concrete IR interpreter -----------------------------===//

#include "vm/Interpreter.h"

#include "solver/Expr.h" // maskToWidth / signExtend helpers.
#include "support/Error.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <cassert>

using namespace er;

const char *er::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:          return "none";
  case FailureKind::Abort:         return "abort";
  case FailureKind::NullDeref:     return "null-deref";
  case FailureKind::OutOfBounds:   return "out-of-bounds";
  case FailureKind::UseAfterFree:  return "use-after-free";
  case FailureKind::DoubleFree:    return "double-free";
  case FailureKind::DivByZero:     return "div-by-zero";
  case FailureKind::Deadlock:      return "deadlock";
  case FailureKind::InputUnderrun: return "input-underrun";
  }
  fatalError("unknown failure kind");
}

std::string FailureRecord::describe() const {
  std::string S = formatString("%s at instr %u (tid %u, depth %zu)",
                               failureKindName(Kind), InstrGlobalId, Tid,
                               CallStack.size());
  if (!Message.empty())
    S += ": " + Message;
  return S;
}

std::string ProgramInput::describe() const {
  std::string S = "args=[";
  for (size_t I = 0; I < Args.size(); ++I)
    S += (I ? "," : "") + std::to_string(Args[I]);
  S += formatString("] bytes=%zu", Bytes.size());
  return S;
}

Interpreter::Interpreter(const Module &M, VmConfig Config)
    : M(M), Config(Config) {}

uint64_t Interpreter::valueOf(const Frame &Fr, const Value *V) const {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return C->getValue();
  if (isa<ConstantNull>(V))
    return 0;
  if (const auto *A = dyn_cast<Argument>(V))
    return Fr.Args[A->getArgNo()];
  if (const auto *I = dyn_cast<Instruction>(V))
    return Fr.Regs[I->getLocalId()];
  fatalError("unsupported value kind in interpreter");
}

void Interpreter::pushFrame(Thread &T, const Function *F,
                            std::vector<uint64_t> Args,
                            const Instruction *CallSite) {
  Frame Fr;
  Fr.F = F;
  Fr.Block = F->getEntry();
  Fr.InstIdx = 0;
  Fr.Regs.assign(F->getNumInstructions(), 0);
  Fr.Args = std::move(Args);
  Fr.CallSite = CallSite;
  T.Stack.push_back(std::move(Fr));
  if (Obs)
    Obs->onCall(T.Tid, *F, T.Stack.back().Args);
}

std::vector<unsigned> Interpreter::captureCallStack(const Thread &T) const {
  std::vector<unsigned> Stack;
  for (const Frame &Fr : T.Stack)
    if (Fr.CallSite)
      Stack.push_back(Fr.CallSite->getGlobalId());
  return Stack;
}

void Interpreter::fail(Thread &T, const Instruction &I, FailureKind K,
                       std::string Message) {
  Failed = true;
  Failure.Kind = K;
  Failure.InstrGlobalId = I.getGlobalId();
  Failure.CallStack = captureCallStack(T);
  Failure.Tid = T.Tid;
  Failure.Message = std::move(Message);
}

void Interpreter::closeChunk(Thread &T) {
  if (Rec && T.ChunkInstrs > 0)
    Rec->endChunk(T.Tid, T.ChunkStartTime, T.ChunkInstrs);
  T.ChunkInstrs = 0;
}

Interpreter::StepResult Interpreter::step(uint32_t Tid) {
  Thread &T = Threads[Tid];
  Frame &Fr = T.Stack.back();
  const Instruction &I = *Fr.Block->getInst(Fr.InstIdx);
  Opcode Op = I.getOpcode();
  unsigned Width = I.getType().isInt() ? I.getType().Bits : 64;
  uint64_t Result = 0;
  bool Advance = true;

  auto Operand = [&](unsigned Idx) { return valueOf(Fr, I.getOperand(Idx)); };

  if (isBinaryOp(Op)) {
    uint64_t A = Operand(0), B = Operand(1);
    switch (Op) {
    case Opcode::Add:  Result = A + B; break;
    case Opcode::Sub:  Result = A - B; break;
    case Opcode::Mul:  Result = A * B; break;
    case Opcode::And:  Result = A & B; break;
    case Opcode::Or:   Result = A | B; break;
    case Opcode::Xor:  Result = A ^ B; break;
    case Opcode::Shl:  Result = B >= Width ? 0 : A << B; break;
    case Opcode::LShr: Result = B >= Width ? 0 : A >> B; break;
    case Opcode::AShr: {
      int64_t SA = signExtend(A, Width);
      Result = static_cast<uint64_t>(B >= Width ? (SA < 0 ? -1 : 0)
                                                : (SA >> B));
      break;
    }
    case Opcode::UDiv:
    case Opcode::URem:
      if (B == 0) {
        fail(T, I, FailureKind::DivByZero, "unsigned division by zero");
        return StepResult::Exited;
      }
      Result = Op == Opcode::UDiv ? A / B : A % B;
      break;
    case Opcode::SDiv:
    case Opcode::SRem: {
      if (B == 0) {
        fail(T, I, FailureKind::DivByZero, "signed division by zero");
        return StepResult::Exited;
      }
      int64_t SA = signExtend(A, Width), SB = signExtend(B, Width);
      if (SB == -1)
        Result = Op == Opcode::SDiv ? static_cast<uint64_t>(-SA) : 0;
      else
        Result = static_cast<uint64_t>(Op == Opcode::SDiv ? SA / SB : SA % SB);
      break;
    }
    default:
      fatalError("unhandled binary opcode");
    }
    Result = maskToWidth(Result, Width);
  } else if (isCompareOp(Op)) {
    uint64_t A = Operand(0), B = Operand(1);
    unsigned W = I.getOperand(0)->getType().isInt()
                     ? I.getOperand(0)->getType().Bits
                     : 64;
    int64_t SA = signExtend(A, W), SB = signExtend(B, W);
    switch (Op) {
    case Opcode::Eq:  Result = A == B; break;
    case Opcode::Ne:  Result = A != B; break;
    case Opcode::Ult: Result = A < B; break;
    case Opcode::Ule: Result = A <= B; break;
    case Opcode::Ugt: Result = A > B; break;
    case Opcode::Uge: Result = A >= B; break;
    case Opcode::Slt: Result = SA < SB; break;
    case Opcode::Sle: Result = SA <= SB; break;
    case Opcode::Sgt: Result = SA > SB; break;
    case Opcode::Sge: Result = SA >= SB; break;
    default:
      fatalError("unhandled compare opcode");
    }
  } else {
    switch (Op) {
    case Opcode::Select:
      Result = Operand(0) ? Operand(1) : Operand(2);
      break;
    case Opcode::ZExt:
      Result = Operand(0);
      break;
    case Opcode::SExt:
      Result = maskToWidth(
          static_cast<uint64_t>(
              signExtend(Operand(0), I.getOperand(0)->getType().Bits)),
          Width);
      break;
    case Opcode::Trunc:
      Result = maskToWidth(Operand(0), Width);
      break;
    case Opcode::Alloca: {
      uint32_t Obj = Mem.allocate(ObjectKind::Stack, I.getAllocElemType(),
                                  I.getAllocCount(), {}, I.getName());
      Fr.StackObjects.push_back(Obj);
      Result = PackedPtr::make(Obj, 0);
      break;
    }
    case Opcode::Malloc: {
      uint64_t Count = Operand(0);
      if (Count == 0 || Count > PackedPtr::OffsetMask) {
        Result = 0; // Null: allocation failure.
      } else {
        uint32_t Obj =
            Mem.allocate(ObjectKind::Heap, I.getAllocElemType(), Count);
        Result = PackedPtr::make(Obj, 0);
      }
      break;
    }
    case Opcode::Free: {
      FailureKind K = Mem.free(Operand(0));
      if (K != FailureKind::None) {
        fail(T, I, K, "bad free");
        return StepResult::Exited;
      }
      break;
    }
    case Opcode::PtrAdd:
      Result = Operand(0) + Operand(1); // Offset lives in the low bits.
      break;
    case Opcode::Load: {
      uint32_t Obj;
      uint64_t Off;
      FailureKind K = Mem.checkAccess(Operand(0), Obj, Off);
      if (K != FailureKind::None) {
        fail(T, I, K, "invalid load");
        return StepResult::Exited;
      }
      Result = Mem.object(Obj).Data[Off];
      break;
    }
    case Opcode::Store: {
      uint32_t Obj;
      uint64_t Off;
      FailureKind K = Mem.checkAccess(Operand(1), Obj, Off);
      if (K != FailureKind::None) {
        fail(T, I, K, "invalid store");
        return StepResult::Exited;
      }
      Mem.object(Obj).Data[Off] = Operand(0);
      break;
    }
    case Opcode::GlobalAddr:
      Result = PackedPtr::make(
          static_cast<uint32_t>(GlobalObjIds[I.getGlobal()->getId()]), 0);
      break;
    case Opcode::Br:
      Fr.Block = I.getSuccessor(0);
      Fr.InstIdx = 0;
      Advance = false;
      break;
    case Opcode::CondBr: {
      bool Taken = Operand(0) != 0;
      if (Rec)
        Rec->condBranch(T.Tid, Taken);
      Fr.Block = I.getSuccessor(Taken ? 0 : 1);
      Fr.InstIdx = 0;
      Advance = false;
      break;
    }
    case Opcode::Call: {
      std::vector<uint64_t> Args;
      Args.reserve(I.getNumOperands());
      for (unsigned A = 0; A < I.getNumOperands(); ++A)
        Args.push_back(Operand(A));
      pushFrame(T, I.getCallee(), std::move(Args), &I);
      Advance = false;
      break;
    }
    case Opcode::Ret: {
      bool HasVal = I.getNumOperands() == 1;
      uint64_t RetVal = HasVal ? Operand(0) : 0;
      if (Obs)
        Obs->onReturn(T.Tid, *Fr.F, HasVal, RetVal);
      for (uint32_t Obj : Fr.StackObjects)
        Mem.killStackObject(Obj);
      const Instruction *CallSite = Fr.CallSite;
      T.Stack.pop_back();
      if (T.Stack.empty()) {
        if (Rec)
          Rec->returnTarget(T.Tid, 0xffffffffu);
        T.State = ThreadState::Finished;
        T.RetVal = RetVal;
        if (Obs)
          Obs->onInst(T.Tid, I, RetVal);
        return StepResult::Exited;
      }
      Frame &Caller = T.Stack.back();
      if (CallSite->getOpcode() == Opcode::Call &&
          !CallSite->getType().isVoid())
        Caller.Regs[CallSite->getLocalId()] = RetVal;
      Caller.InstIdx++;
      if (Rec)
        Rec->returnTarget(T.Tid, CallSite->getGlobalId());
      Advance = false;
      break;
    }
    case Opcode::InputArg:
      ++EventCounters.InputEvents;
      Result = I.getImm() < Input->Args.size() ? Input->Args[I.getImm()] : 0;
      break;
    case Opcode::InputByte:
      ++EventCounters.InputEvents;
      ++EventCounters.InputBytes;
      if (InputCursor >= Input->Bytes.size()) {
        fail(T, I, FailureKind::InputUnderrun, "read past end of input");
        return StepResult::Exited;
      }
      Result = Input->Bytes[InputCursor++];
      break;
    case Opcode::InputSize:
      ++EventCounters.InputEvents;
      Result = Input->Bytes.size();
      break;
    case Opcode::Print: {
      uint64_t V = Operand(0);
      const Type &Ty = I.getOperand(0)->getType();
      if (Ty.isInt() && Ty.Bits == 8)
        Output += static_cast<char>(V);
      else
        Output += std::to_string(signExtend(V, Ty.isInt() ? Ty.Bits : 64)) +
                  "\n";
      break;
    }
    case Opcode::Abort:
      fail(T, I, FailureKind::Abort, I.getMessage());
      return StepResult::Exited;
    case Opcode::Spawn: {
      ++EventCounters.ThreadEvents;
      uint64_t ArgVal = Operand(0);
      Thread NewT;
      NewT.Tid = static_cast<uint32_t>(Threads.size());
      if (Rec)
        Rec->beginThread(NewT.Tid);
      NewT.ChunkStartTime = GlobalTime;
      Result = NewT.Tid;
      // Threads may reallocate here, invalidating T and Fr; the tail below
      // re-fetches the current thread through its id.
      Threads.push_back(std::move(NewT));
      pushFrame(Threads.back(), I.getCallee(), {ArgVal}, &I);
      break;
    }
    case Opcode::Join: {
      ++EventCounters.ThreadEvents;
      uint64_t Target = Operand(0);
      if (Target >= Threads.size()) {
        fail(T, I, FailureKind::OutOfBounds, "join of invalid thread id");
        return StepResult::Exited;
      }
      if (Threads[Target].State != ThreadState::Finished) {
        T.State = ThreadState::BlockedJoin;
        T.BlockedOn = Target;
        return StepResult::Blocked; // Re-execute join when unblocked.
      }
      break;
    }
    case Opcode::MutexLock: {
      ++EventCounters.SyncEvents;
      uint64_t Mid = I.getImm();
      if (Mid >= MutexOwner.size())
        MutexOwner.resize(Mid + 1, -1);
      if (MutexOwner[Mid] >= 0 && MutexOwner[Mid] != T.Tid) {
        T.State = ThreadState::BlockedMutex;
        T.BlockedOn = Mid;
        return StepResult::Blocked; // Re-execute lock when unblocked.
      }
      MutexOwner[Mid] = T.Tid;
      break;
    }
    case Opcode::MutexUnlock: {
      ++EventCounters.SyncEvents;
      uint64_t Mid = I.getImm();
      if (Mid < MutexOwner.size() && MutexOwner[Mid] == T.Tid)
        MutexOwner[Mid] = -1;
      break;
    }
    case Opcode::PtWrite:
      if (Rec)
        Rec->ptWrite(T.Tid, Operand(0));
      break;
    default:
      fatalError("unhandled opcode in interpreter");
    }
  }

  // The spawn case may have invalidated references into Threads; re-fetch.
  Thread &Self = Threads[Tid];
  if (Advance) {
    Frame &CurFr = Self.Stack.back();
    if (!I.getType().isVoid())
      CurFr.Regs[I.getLocalId()] = Result;
    CurFr.InstIdx++;
  }
  if (Obs)
    Obs->onInst(Self.Tid, I, Result);
  return StepResult::Ran;
}

RunResult Interpreter::run(const ProgramInput &In, TraceRecorder *Recorder,
                           ExecObserver *Observer) {
  // Reset per-run state.
  Input = &In;
  Rec = Recorder;
  Obs = Observer;
  Threads.clear();
  MutexOwner.clear();
  InputCursor = 0;
  GlobalTime = 0;
  Failed = false;
  Failure = FailureRecord();
  Output.clear();
  Mem = MemoryManager();
  GlobalObjIds.clear();
  EventCounters = RunResult();

  // Materialize globals.
  for (const auto &G : M.globals())
    GlobalObjIds.push_back(Mem.allocate(ObjectKind::Global, G->getElemType(),
                                        G->getNumElems(), G->getInit(),
                                        G->getName()));

  const Function *Main = M.getFunction("main");
  if (!Main)
    fatalError("module has no main()");

  Thread MainT;
  MainT.Tid = 0;
  Threads.push_back(std::move(MainT));
  if (Rec)
    Rec->beginThread(0);
  pushFrame(Threads[0], Main, {}, nullptr);

  Rng ScheduleRng(Config.ScheduleSeed * 0x9e3779b97f4a7c15ULL + 1);

  RunResult R;
  uint64_t Steps = 0;
  size_t Current = 0;
  size_t PlanIdx = 0;

  auto TryUnblock = [&](Thread &T) {
    // Unblock threads whose condition cleared.
    if (T.State == ThreadState::BlockedJoin &&
        Threads[T.BlockedOn].State == ThreadState::Finished)
      T.State = ThreadState::Runnable;
    if (T.State == ThreadState::BlockedMutex &&
        (T.BlockedOn >= MutexOwner.size() || MutexOwner[T.BlockedOn] < 0))
      T.State = ThreadState::Runnable;
  };

  while (true) {
    size_t Picked = SIZE_MAX;
    uint64_t PlannedSlice = 0;

    // Explicit plan first. The full unblock pass runs ONLY in plan mode:
    // the plan may name any thread, while the seeded path below must keep
    // unblocking lazily during its scan to stay bit-identical with the
    // pre-plan scheduler.
    if (Config.ExplicitSchedule &&
        PlanIdx < Config.ExplicitSchedule->size()) {
      for (Thread &T : Threads)
        TryUnblock(T);
      while (PlanIdx < Config.ExplicitSchedule->size()) {
        const ScheduleSlice &S = (*Config.ExplicitSchedule)[PlanIdx];
        ++PlanIdx;
        if (S.Tid < Threads.size() &&
            Threads[S.Tid].State == ThreadState::Runnable) {
          Picked = S.Tid;
          PlannedSlice = S.Instrs ? S.Instrs : 1;
          break;
        }
        // Slice thread unspawned/unrunnable: skip to the next slice.
      }
    }

    // Pick the next runnable thread (round-robin from Current).
    if (Picked == SIZE_MAX)
      for (size_t K = 0; K < Threads.size(); ++K) {
        size_t Idx = (Current + K) % Threads.size();
        Thread &T = Threads[Idx];
        TryUnblock(T);
        if (T.State == ThreadState::Runnable) {
          Picked = Idx;
          break;
        }
      }
    if (Picked == SIZE_MAX) {
      // No runnable thread: either everything finished, or deadlock.
      bool AnyLive = false;
      for (const auto &T : Threads)
        if (T.State != ThreadState::Finished)
          AnyLive = true;
      if (AnyLive && !Failed) {
        Failed = true;
        Failure.Kind = FailureKind::Deadlock;
        Failure.Tid = 0;
        // Attribute the deadlock to the first blocked thread's position.
        for (const auto &T : Threads)
          if (T.State == ThreadState::BlockedMutex ||
              T.State == ThreadState::BlockedJoin) {
            const Frame &Fr = T.Stack.back();
            Failure.InstrGlobalId = Fr.Block->getInst(Fr.InstIdx)->getGlobalId();
            Failure.CallStack = captureCallStack(T);
            Failure.Tid = T.Tid;
            break;
          }
      }
      break;
    }

    Thread &T = Threads[Picked];
    T.ChunkStartTime = GlobalTime;
    uint64_t Slice = PlannedSlice;
    if (Slice == 0) {
      // Randomized chunk length models scheduling jitter between production
      // runs (same seed -> same interleaving).
      Slice = Config.ChunkSize / 2 + ScheduleRng.nextBounded(Config.ChunkSize);
      if (Slice == 0)
        Slice = 1;
    }

    uint64_t Executed = 0;
    while (Executed < Slice) {
      StepResult SR = step(static_cast<uint32_t>(Picked));
      if (SR == StepResult::Blocked)
        break; // Not counted: the instruction did not execute.
      ++Executed;
      ++GlobalTime;
      ++Steps;
      if (SR == StepResult::Exited || Failed || Steps >= Config.MaxSteps)
        break;
    }
    Threads[Picked].ChunkInstrs += Executed;
    closeChunk(Threads[Picked]);
    if (Threads.size() > 1)
      ++EventCounters.ContextSwitches;

    if (Failed)
      break;
    if (Steps >= Config.MaxSteps) {
      R.Status = ExitStatus::FuelExhausted;
      break;
    }
    Current = (Picked + 1) % Threads.size();
  }

  if (Rec)
    Rec->finish();

  R.InstrCount = Steps;
  R.InputEvents = EventCounters.InputEvents;
  R.InputBytes = EventCounters.InputBytes;
  R.ThreadEvents = EventCounters.ThreadEvents;
  R.SyncEvents = EventCounters.SyncEvents;
  R.NumThreads = Threads.size();
  R.ContextSwitches = EventCounters.ContextSwitches;
  R.Output = std::move(Output);
  if (Failed) {
    R.Status = ExitStatus::Failure;
    R.Failure = Failure;
  } else if (R.Status != ExitStatus::FuelExhausted) {
    R.Status = ExitStatus::Ok;
    R.RetVal = Threads.empty() ? 0 : Threads[0].RetVal;
  }
  return R;
}
