//===- Failure.h - Failure records -------------------------------*- C++ -*-===//
///
/// \file
/// Describes a detected failure: what happened, at which instruction, under
/// which call stack. ER matches reoccurrences of "the same failure" by
/// (kind, faulting instruction, call stack), mirroring Section 4 of the
/// paper ("based on matching the program counter and the call stack").
///
//===----------------------------------------------------------------------===//

#ifndef ER_VM_FAILURE_H
#define ER_VM_FAILURE_H

#include <cstdint>
#include <string>
#include <vector>

namespace er {

enum class FailureKind : uint8_t {
  None,
  Abort,         ///< abort instruction (assertions lower to this).
  NullDeref,     ///< Load/store/free through a null pointer.
  OutOfBounds,   ///< Access beyond an object's element count.
  UseAfterFree,  ///< Access to a freed heap object.
  DoubleFree,
  DivByZero,
  Deadlock,      ///< Every live thread is blocked.
  InputUnderrun, ///< input.byte past the end of the stream.
};

const char *failureKindName(FailureKind K);

/// Identity and context of one failure occurrence.
struct FailureRecord {
  FailureKind Kind = FailureKind::None;
  /// Global id of the faulting instruction.
  unsigned InstrGlobalId = 0;
  /// Call-site instruction global ids, outermost first.
  std::vector<unsigned> CallStack;
  /// Thread that failed.
  uint32_t Tid = 0;
  std::string Message;

  bool isFailure() const { return Kind != FailureKind::None; }

  /// Failure identity: same kind, same PC, same call stack.
  bool sameFailure(const FailureRecord &O) const {
    return Kind == O.Kind && InstrGlobalId == O.InstrGlobalId &&
           CallStack == O.CallStack;
  }

  std::string describe() const;
};

} // namespace er

#endif // ER_VM_FAILURE_H
