//===- Memory.cpp - Object-granular memory manager ---------------------------===//

#include "vm/Memory.h"

#include <cassert>

using namespace er;

uint32_t MemoryManager::allocate(ObjectKind Kind, Type ElemTy,
                                 uint64_t NumElems,
                                 const std::vector<uint64_t> &Init,
                                 std::string Name) {
  MemObject Obj;
  Obj.Id = static_cast<uint32_t>(Objects.size());
  Obj.Kind = Kind;
  Obj.ElemTy = ElemTy;
  Obj.NumElems = NumElems;
  Obj.Data.assign(NumElems, 0);
  for (size_t I = 0; I < Init.size() && I < NumElems; ++I)
    Obj.Data[I] = Init[I];
  Obj.Name = std::move(Name);
  BytesAllocated += NumElems * (ElemTy.isPtr() ? 8 : (ElemTy.Bits + 7) / 8);
  Objects.push_back(std::move(Obj));
  return Objects.back().Id;
}

FailureKind MemoryManager::checkAccess(uint64_t Packed, uint32_t &ObjId,
                                       uint64_t &Off) const {
  if (PackedPtr::isNull(Packed))
    return FailureKind::NullDeref;
  ObjId = PackedPtr::objectId(Packed);
  Off = PackedPtr::offset(Packed);
  if (ObjId >= Objects.size())
    return FailureKind::OutOfBounds;
  const MemObject &Obj = Objects[ObjId];
  if (!Obj.Alive)
    return FailureKind::UseAfterFree;
  if (Off >= Obj.NumElems)
    return FailureKind::OutOfBounds;
  return FailureKind::None;
}

FailureKind MemoryManager::free(uint64_t Packed) {
  if (PackedPtr::isNull(Packed))
    return FailureKind::NullDeref;
  uint32_t ObjId = PackedPtr::objectId(Packed);
  if (ObjId >= Objects.size() || PackedPtr::offset(Packed) != 0)
    return FailureKind::OutOfBounds;
  MemObject &Obj = Objects[ObjId];
  if (Obj.Kind != ObjectKind::Heap)
    return FailureKind::OutOfBounds;
  if (!Obj.Alive)
    return FailureKind::DoubleFree;
  Obj.Alive = false;
  return FailureKind::None;
}

void MemoryManager::killStackObject(uint32_t Id) {
  assert(Id < Objects.size() && Objects[Id].Kind == ObjectKind::Stack &&
         "not a stack object");
  Objects[Id].Alive = false;
}
