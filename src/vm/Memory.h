//===- Memory.h - Object-granular memory manager -----------------*- C++ -*-===//
///
/// \file
/// Runtime memory for the VM: every alloca/global/malloc creates an object
/// of N fixed-width elements; pointers are (object, element offset) pairs.
/// Accesses are checked for null, bounds, and liveness, which is how the VM
/// detects the memory-safety failures in the evaluation (buffer overflows,
/// NULL dereferences, use-after-free).
///
//===----------------------------------------------------------------------===//

#ifndef ER_VM_MEMORY_H
#define ER_VM_MEMORY_H

#include "ir/IR.h"
#include "vm/Failure.h"

#include <cstdint>
#include <vector>

namespace er {

enum class ObjectKind : uint8_t { Global, Stack, Heap };

/// One allocation.
struct MemObject {
  uint32_t Id = 0;
  ObjectKind Kind = ObjectKind::Global;
  Type ElemTy;
  uint64_t NumElems = 0;
  std::vector<uint64_t> Data; ///< One word per element.
  bool Alive = true;
  std::string Name; ///< Debug label (global/alloca name).
};

/// Allocates and checks objects.
class MemoryManager {
public:
  /// Creates an object; \p Init (if non-empty) seeds the leading elements,
  /// the rest are zero.
  uint32_t allocate(ObjectKind Kind, Type ElemTy, uint64_t NumElems,
                    const std::vector<uint64_t> &Init = {},
                    std::string Name = "");

  MemObject &object(uint32_t Id) { return Objects[Id]; }
  const MemObject &object(uint32_t Id) const { return Objects[Id]; }
  size_t numObjects() const { return Objects.size(); }

  /// Validates an access to \p Packed (a packed pointer) at element
  /// granularity. On success returns FailureKind::None and fills ObjId/Off.
  FailureKind checkAccess(uint64_t Packed, uint32_t &ObjId, uint64_t &Off) const;

  /// Marks a heap object freed. Returns the failure (if any).
  FailureKind free(uint64_t Packed);

  /// Kills a stack object at function return.
  void killStackObject(uint32_t Id);

  uint64_t bytesAllocated() const { return BytesAllocated; }

private:
  std::vector<MemObject> Objects;
  uint64_t BytesAllocated = 0;
};

} // namespace er

#endif // ER_VM_MEMORY_H
