//===- Input.h - Program input model -----------------------------*- C++ -*-===//
///
/// \file
/// The non-deterministic input surface of a program run: a fixed vector of
/// integer arguments (input.arg) and a byte stream (input.byte/input.size).
/// These model the POSIX environment (argv, files, sockets) that the paper's
/// extended KLEE treats as symbolic.
///
//===----------------------------------------------------------------------===//

#ifndef ER_VM_INPUT_H
#define ER_VM_INPUT_H

#include <cstdint>
#include <string>
#include <vector>

namespace er {

/// Concrete inputs to one program run. A generated test case is exactly this
/// structure.
struct ProgramInput {
  std::vector<uint64_t> Args;
  std::vector<uint8_t> Bytes;

  std::string describe() const;
};

} // namespace er

#endif // ER_VM_INPUT_H
