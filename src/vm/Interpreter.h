//===- Interpreter.h - Concrete IR interpreter -------------------*- C++ -*-===//
///
/// \file
/// The "production runtime": executes a Module concretely on a ProgramInput,
/// detects failures, schedules threads in timestamped chunks, and (when a
/// TraceRecorder is attached) emits the PT-style trace that shepherded
/// symbolic execution later follows.
///
//===----------------------------------------------------------------------===//

#ifndef ER_VM_INTERPRETER_H
#define ER_VM_INTERPRETER_H

#include "ir/IR.h"
#include "trace/Trace.h"
#include "vm/Failure.h"
#include "vm/Input.h"
#include "vm/Memory.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace er {

/// One slice of an explicit schedule: run thread \p Tid for up to
/// \p Instrs instructions (one chunk). Schedule search (er/ScheduleSearch)
/// replays candidate chunk orders through these.
struct ScheduleSlice {
  uint32_t Tid = 0;
  uint64_t Instrs = 0;
};

/// Execution limits and scheduling parameters.
struct VmConfig {
  /// Fuel: maximum dynamic instructions before the run is cut off.
  uint64_t MaxSteps = 100'000'000;
  /// Nominal instructions per scheduling chunk (PT timestamp granularity is
  /// coarser than an instruction; chunks model that).
  unsigned ChunkSize = 120;
  /// Seed perturbing chunk lengths so different production runs see
  /// different thread interleavings.
  uint64_t ScheduleSeed = 0;
  /// When non-null, the scheduler follows this chunk order first: each
  /// slice runs its thread for up to Instrs instructions. Slices naming a
  /// thread that is not yet spawned or not runnable are skipped; once the
  /// plan is exhausted the seeded scheduler above takes over. The default
  /// (null) path is bit-for-bit the pre-existing seeded behaviour.
  const std::vector<ScheduleSlice> *ExplicitSchedule = nullptr;
};

enum class ExitStatus : uint8_t { Ok, Failure, FuelExhausted };

/// Outcome of one concrete run.
struct RunResult {
  ExitStatus Status = ExitStatus::Ok;
  FailureRecord Failure;
  uint64_t InstrCount = 0;
  uint64_t RetVal = 0;
  std::string Output;
  /// Event counts consumed by the record/replay baseline's cost model.
  uint64_t InputEvents = 0;   ///< input.arg/input.byte/input.size executed.
  uint64_t InputBytes = 0;    ///< Bytes consumed from the input stream.
  uint64_t ThreadEvents = 0;  ///< spawn/join operations.
  uint64_t SyncEvents = 0;    ///< Mutex lock/unlock operations.
  uint64_t NumThreads = 1;
  uint64_t ContextSwitches = 0;
};

/// Observation points for dynamic tools built on the VM (the invariant
/// engine and the REPT baseline use these).
class ExecObserver {
public:
  virtual ~ExecObserver() = default;
  /// Called after every executed instruction; \p Result is the produced
  /// value (0 for void).
  virtual void onInst(uint32_t Tid, const Instruction &I, uint64_t Result) {
    (void)Tid;
    (void)I;
    (void)Result;
  }
  /// Called on function entry with concrete argument values.
  virtual void onCall(uint32_t Tid, const Function &F,
                      const std::vector<uint64_t> &Args) {
    (void)Tid;
    (void)F;
    (void)Args;
  }
  /// Called on function return.
  virtual void onReturn(uint32_t Tid, const Function &F, bool HasValue,
                        uint64_t Value) {
    (void)Tid;
    (void)F;
    (void)HasValue;
    (void)Value;
  }
};

/// Executes a Module concretely.
class Interpreter {
public:
  Interpreter(const Module &M, VmConfig Config);

  /// Runs main() to completion (or failure / fuel exhaustion). If \p Rec is
  /// non-null, control flow, chunk timestamps, and ptwrite values are
  /// recorded into it. If \p Obs is non-null it receives execution events.
  RunResult run(const ProgramInput &In, TraceRecorder *Rec = nullptr,
                ExecObserver *Obs = nullptr);

  /// Memory state at the end of the last run (the REPT baseline reads the
  /// final state from here).
  const MemoryManager &getMemory() const { return Mem; }

private:
  struct Frame {
    const Function *F = nullptr;
    const BasicBlock *Block = nullptr;
    size_t InstIdx = 0;
    std::vector<uint64_t> Regs; ///< Indexed by instruction LocalId.
    std::vector<uint64_t> Args;
    const Instruction *CallSite = nullptr; ///< Call in the caller frame.
    std::vector<uint32_t> StackObjects;    ///< Allocas to kill on return.
  };

  enum class ThreadState : uint8_t {
    Runnable,
    BlockedMutex,
    BlockedJoin,
    Finished,
  };

  struct Thread {
    uint32_t Tid = 0;
    ThreadState State = ThreadState::Runnable;
    std::vector<Frame> Stack;
    uint64_t BlockedOn = 0; ///< Mutex id or joined tid.
    uint64_t RetVal = 0;
    uint64_t ChunkStartTime = 0;
    uint64_t ChunkInstrs = 0;
  };

  /// Result of attempting one instruction.
  enum class StepResult : uint8_t {
    Ran,     ///< Instruction executed; thread still runnable.
    Blocked, ///< Instruction did not execute (mutex/join wait); retry later.
    Exited,  ///< Instruction executed and ended the thread (ret/failure).
  };

  uint64_t valueOf(const Frame &Fr, const Value *V) const;
  void pushFrame(Thread &T, const Function *F, std::vector<uint64_t> Args,
                 const Instruction *CallSite);
  /// Executes (or attempts) one instruction of thread \p Tid.
  StepResult step(uint32_t Tid);
  void fail(Thread &T, const Instruction &I, FailureKind K,
            std::string Message);
  void closeChunk(Thread &T);
  std::vector<unsigned> captureCallStack(const Thread &T) const;

  const Module &M;
  VmConfig Config;
  MemoryManager Mem;
  std::vector<uint64_t> GlobalObjIds; ///< Global index -> object id.

  // Per-run state.
  const ProgramInput *Input = nullptr;
  TraceRecorder *Rec = nullptr;
  ExecObserver *Obs = nullptr;
  std::vector<Thread> Threads;
  std::vector<int64_t> MutexOwner; ///< Mutex id -> tid or -1.
  RunResult EventCounters;         ///< Event counters for the current run.
  size_t InputCursor = 0;
  uint64_t GlobalTime = 0;
  FailureRecord Failure;
  bool Failed = false;
  std::string Output;
};

} // namespace er

#endif // ER_VM_INTERPRETER_H
