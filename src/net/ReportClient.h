//===- ReportClient.h - Retrying report upload client -----------*- C++ -*-===//
///
/// \file
/// The machine side of wire ingestion (docs/INGEST.md): pushes one spool
/// frame (a SpoolWriter::takeFrame byte stream, or the bytes of an
/// on-disk `.ers` file) to a collector daemon's `POST /report` endpoint
/// and deals with what the edge throws back.
///
/// Retry policy — the client half of the backpressure contract:
///
///  - **429 / 503** are the daemon shedding load. The client honors
///    `Retry-After` when present, otherwise exponential backoff, both
///    with ±25% jitter so a fleet told "retry in 2s" does not return as
///    one synchronized thundering herd.
///  - **Connect/IO failures and timeouts** get the same exponential
///    backoff: the daemon may simply not be up yet.
///  - **Other 4xx are permanent.** A 400 (frame failed CRC) or 413 (over
///    the body cap) will not succeed on retry; retrying would just
///    re-quarantine the same bytes. The client reports failure
///    immediately with the server's explanation.
///
/// Pushing the same frame twice (e.g. a response lost after the server
/// published) is safe end-to-end: the spool file name is derived from
/// (machine, first sequence) so a replay overwrites its twin, and the
/// collector's dedup drops any record it has already seen.
///
//===----------------------------------------------------------------------===//

#ifndef ER_NET_REPORTCLIENT_H
#define ER_NET_REPORTCLIENT_H

#include <cstdint>
#include <functional>
#include <string>

namespace er {
namespace net {

struct ReportClientConfig {
  /// Per-attempt absolute deadline (connect + send + receive).
  uint64_t TimeoutMs = 5000;
  /// Attempts beyond the first for retryable outcomes.
  unsigned MaxRetries = 5;
  /// First backoff; doubles per retry up to BackoffCapMs. A server
  /// `Retry-After` overrides the computed delay.
  uint64_t BackoffMs = 200;
  uint64_t BackoffCapMs = 10'000;
  /// Ceiling on an honored `Retry-After` (a confused or hostile server
  /// must not park the client for an hour; benches turn it way down).
  uint64_t RetryAfterCapMs = 60'000;
  /// Jitter seed; split per client so fleet members desynchronize.
  uint64_t JitterSeed = 1;
  /// Sleep seam, milliseconds. Null = really sleep (tests and the bench
  /// install hooks; simulated fleets must never wall-clock sleep).
  std::function<void(uint64_t)> Sleep;
};

/// Outcome of pushReport, success or final failure.
struct PushResult {
  bool Ok = false;
  int Status = 0;        ///< Last HTTP status (0: never got a response).
  unsigned Attempts = 0; ///< Total attempts, including the successful one.
  unsigned Throttled = 0; ///< 429/503 responses absorbed along the way.
  std::string Error;     ///< Final failure explanation; empty on success.
};

/// Uploads one frame, retrying per the policy above. Blocking (modulo
/// the Sleep seam); thread-safe for distinct \p Config values.
PushResult pushReport(const std::string &Host, uint16_t Port,
                      const std::string &Frame,
                      const ReportClientConfig &Config = {});

/// As pushReport, with the target given as "http://host:port[/path]"
/// (missing path defaults to /report).
PushResult pushReportUrl(const std::string &Url, const std::string &Frame,
                         const ReportClientConfig &Config = {});

} // namespace net
} // namespace er

#endif // ER_NET_REPORTCLIENT_H
