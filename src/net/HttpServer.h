//===- HttpServer.h - Minimal poll-based HTTP/1.1 server --------*- C++ -*-===//
///
/// \file
/// The network front end for the collector daemon's live telemetry
/// endpoints (docs/OBSERVABILITY.md, "Live endpoints"): a dependency-free
/// HTTP/1.1 server just big enough to serve `/metrics`, `/healthz`, and
/// `/status` to curl and a Prometheus scraper — and deliberately nothing
/// bigger. No TLS, no keep-alive, no request bodies, GET only; every
/// response closes the connection.
///
/// Shape: one server thread runs a poll(2) loop over the listening socket
/// plus up to MaxConnections non-blocking client sockets. Each connection
/// is a tiny state machine (read request head -> dispatch -> drain
/// response) with one absolute deadline covering both halves, so a
/// slow-loris peer (bytes trickling in forever) or a stalled reader
/// (response bytes never drained) is cut off at RequestTimeoutMs with
/// best-effort 408, not held open. Oversized request heads get 431;
/// non-GET methods 405; a full house is answered 503-and-close at accept
/// time so the kernel backlog never silently queues scrapes.
///
/// The handler runs on the server thread. Handlers must therefore be
/// thread-safe against the owning daemon — the intended pattern (see
/// CollectorDaemon) is snapshot-only: read atomics, copy a mutex-guarded
/// status struct, render. A handler must never take a lock the daemon
/// holds across a drain.
///
/// This listener is the substrate for the ROADMAP rung "a network front
/// end feeding the spool": the accept loop, bounded-connection policy,
/// and deadline machinery are what a report-ingest endpoint will reuse.
///
//===----------------------------------------------------------------------===//

#ifndef ER_NET_HTTPSERVER_H
#define ER_NET_HTTPSERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace er {
namespace net {

struct HttpRequest {
  std::string Method; ///< Uppercase, e.g. "GET".
  std::string Path;   ///< Request target as sent, e.g. "/metrics".
};

struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
};

/// Produces the response for one parsed request; runs on the server
/// thread.
using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

struct HttpServerConfig {
  std::string Host = "127.0.0.1";
  /// 0 binds an ephemeral port; boundPort() reports the real one.
  uint16_t Port = 0;
  /// Concurrent client sockets; excess accepts are answered 503.
  unsigned MaxConnections = 16;
  /// Absolute per-connection deadline, accept to last response byte.
  uint64_t RequestTimeoutMs = 5000;
  /// Request-head cap (request line + headers); beyond it: 431.
  size_t MaxRequestBytes = 8192;
};

/// Cumulative listener counters (also exported as `net.http.*` metrics).
struct HttpServerStats {
  uint64_t Accepted = 0;       ///< Connections taken from the backlog.
  uint64_t Requests = 0;       ///< Requests parsed and dispatched.
  uint64_t Responses2xx = 0;
  uint64_t Responses4xx = 0;
  uint64_t Responses5xx = 0;
  uint64_t Timeouts = 0;       ///< Connections cut at the deadline.
  uint64_t Overflows = 0;      ///< Accepts refused 503 at MaxConnections.
  uint64_t BadRequests = 0;    ///< 400/405/431 short-circuits.
};

/// Blocking-accept HTTP server on one background thread. start() binds
/// and spawns the thread; stop() (or destruction) joins it and closes
/// every socket. Not restartable.
class HttpServer {
public:
  HttpServer(HttpServerConfig Config, HttpHandler Handler);
  ~HttpServer();

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds, listens, and starts serving. False + message on any socket
  /// error (port in use, bad host, ...).
  bool start(std::string *Error = nullptr);

  /// Stops accepting, closes all connections, joins the thread.
  /// Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The port actually bound (the ephemeral answer for Port = 0); 0
  /// before start().
  uint16_t boundPort() const { return BoundPort; }

  /// Point-in-time copy of the listener counters.
  HttpServerStats statsSnapshot() const;

  /// Reason phrase for \p Status ("OK", "Not Found", ...).
  static const char *statusText(int Status);

private:
  struct Connection;

  void serveLoop();
  void acceptPending();
  bool stepConnection(Connection &C, short Revents, uint64_t NowNs);
  void finishResponse(Connection &C, const HttpResponse &R,
                      bool CountAsRequest);

  HttpServerConfig Config;
  HttpHandler Handler;
  int ListenFd = -1;
  /// Self-pipe: stop() writes one byte to interrupt a sleeping poll().
  int WakeRead = -1, WakeWrite = -1;
  uint16_t BoundPort = 0;
  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  std::vector<Connection> Connections;

  // Stats are written only on the server thread; readers take snapshots
  // through atomics.
  std::atomic<uint64_t> Accepted{0}, Requests{0}, R2xx{0}, R4xx{0}, R5xx{0},
      Timeouts{0}, Overflows{0}, BadRequests{0};
};

/// Splits "host:port" (e.g. "127.0.0.1:9464", ":0"). An empty host means
/// 127.0.0.1. False on a missing/unparseable port.
bool parseHostPort(const std::string &Spec, std::string &Host, uint16_t &Port,
                   std::string *Error = nullptr);

/// Tiny blocking client for tests, benches, and smoke checks: one GET,
/// whole response read until EOF. False + message on connect/IO failure
/// or an unparseable status line.
struct HttpClientResponse {
  int Status = 0;
  std::string Body;
  std::string Header; ///< Raw header block (status line + headers).
};
bool httpGet(const std::string &Host, uint16_t Port, const std::string &Path,
             HttpClientResponse &Out, std::string *Error = nullptr,
             uint64_t TimeoutMs = 5000);

} // namespace net
} // namespace er

#endif // ER_NET_HTTPSERVER_H
