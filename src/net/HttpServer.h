//===- HttpServer.h - Minimal poll-based HTTP/1.1 server --------*- C++ -*-===//
///
/// \file
/// The network front end for the collector daemon (docs/OBSERVABILITY.md
/// "Live endpoints", docs/INGEST.md "Wire ingestion"): a dependency-free
/// HTTP/1.1 server big enough to serve `/metrics`, `/healthz`, `/status`
/// to curl and a Prometheus scraper and to accept `POST /report` upload
/// bodies — and deliberately nothing bigger. No TLS, no keep-alive, no
/// chunked transfer; every response closes the connection.
///
/// Shape: one server thread runs a poll(2) loop over the listening socket
/// plus up to MaxConnections non-blocking client sockets. Each connection
/// is a tiny state machine (read request head -> read body -> dispatch ->
/// drain response) with an absolute deadline per phase, so a slow-loris
/// peer (bytes trickling in forever), a POST that never delivers its
/// promised Content-Length, or a stalled reader (response bytes never
/// drained) is cut off at RequestTimeoutMs with best-effort 408, not held
/// open. Oversized request heads get 431; a body beyond MaxBodyBytes 413
/// (before the body is read — `Expect: 100-continue` clients learn this
/// for one round trip, not one upload); methods other than GET/POST 405;
/// a full house is answered 503-and-close at accept time so the kernel
/// backlog never silently queues scrapes. setAcceptShed(true) extends the
/// 503-at-accept answer to *every* accept — the owning daemon's spool
/// backpressure valve (docs/INGEST.md, watermarks).
///
/// The handler runs on the server thread. Handlers must therefore be
/// thread-safe against the owning daemon — the intended pattern (see
/// CollectorDaemon) is snapshot-only: read atomics, copy a mutex-guarded
/// status struct, render. The upload handler extends the pattern with
/// operations that are multi-process-safe by protocol (temp+rename spool
/// publication). A handler must never take a lock the daemon holds across
/// a drain.
///
//===----------------------------------------------------------------------===//

#ifndef ER_NET_HTTPSERVER_H
#define ER_NET_HTTPSERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace er {
namespace net {

struct HttpRequest {
  std::string Method; ///< Uppercase, e.g. "GET" or "POST".
  std::string Path;   ///< Request target as sent, e.g. "/metrics".
  std::string Body;   ///< Exactly Content-Length bytes (POST; empty for GET).
};

struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  /// Extra response headers rendered verbatim (e.g. {"Retry-After","2"}).
  std::vector<std::pair<std::string, std::string>> ExtraHeaders;
};

/// Produces the response for one parsed request; runs on the server
/// thread.
using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

struct HttpServerConfig {
  std::string Host = "127.0.0.1";
  /// 0 binds an ephemeral port; boundPort() reports the real one.
  uint16_t Port = 0;
  /// Concurrent client sockets; excess accepts are answered 503.
  unsigned MaxConnections = 16;
  /// Absolute per-connection deadline, accept to last response byte. A
  /// POST whose head completes gets one fresh budget of this for its body
  /// (deadlines extend to body reads; they never reset per byte).
  uint64_t RequestTimeoutMs = 5000;
  /// Request-head cap (request line + headers); beyond it: 431.
  size_t MaxRequestBytes = 8192;
  /// Request-body cap; a POST declaring more than this is answered 413
  /// before any body byte is read. 0 disables bodies entirely (POST: 413).
  size_t MaxBodyBytes = 1 << 20;
};

/// Cumulative listener counters (also exported as `net.http.*` metrics).
struct HttpServerStats {
  uint64_t Accepted = 0;       ///< Connections taken from the backlog.
  uint64_t Requests = 0;       ///< Requests parsed and dispatched.
  uint64_t Responses2xx = 0;
  uint64_t Responses4xx = 0;
  uint64_t Responses5xx = 0;
  uint64_t Timeouts = 0;       ///< Connections cut at the deadline.
  uint64_t Overflows = 0;      ///< Accepts refused 503 at MaxConnections.
  uint64_t BadRequests = 0;    ///< 400/405/411/413/431 short-circuits.
  uint64_t PostRequests = 0;   ///< POSTs with a complete body dispatched.
  uint64_t PostBodyBytes = 0;  ///< Body bytes handed to the handler.
  uint64_t ContinueSent = 0;   ///< Interim `100 Continue` lines sent.
  uint64_t ShedAccepts = 0;    ///< Accepts refused 503 by setAcceptShed.
};

/// Blocking-accept HTTP server on one background thread. start() binds
/// and spawns the thread; stop() (or destruction) joins it and closes
/// every socket. Not restartable.
class HttpServer {
public:
  HttpServer(HttpServerConfig Config, HttpHandler Handler);
  ~HttpServer();

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds, listens, and starts serving. False + message on any socket
  /// error (port in use, bad host, ...).
  bool start(std::string *Error = nullptr);

  /// Stops accepting, closes all connections, joins the thread.
  /// Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The port actually bound (the ephemeral answer for Port = 0); 0
  /// before start().
  uint16_t boundPort() const { return BoundPort; }

  /// Point-in-time copy of the listener counters.
  HttpServerStats statsSnapshot() const;

  /// Load-shed valve: while true, every accept is answered 503 with a
  /// `Retry-After` hint and closed — nothing reaches a handler. Safe from
  /// any thread (the daemon flips it as spool pressure crosses its
  /// critical watermark).
  void setAcceptShed(bool Shed) {
    AcceptShed.store(Shed, std::memory_order_relaxed);
  }
  bool acceptShedding() const {
    return AcceptShed.load(std::memory_order_relaxed);
  }

  /// Reason phrase for \p Status ("OK", "Not Found", ...).
  static const char *statusText(int Status);

private:
  struct Connection;

  void serveLoop();
  void acceptPending();
  bool stepConnection(Connection &C, short Revents, uint64_t NowNs);
  void dispatch(Connection &C);
  void finishResponse(Connection &C, const HttpResponse &R,
                      bool CountAsRequest);

  HttpServerConfig Config;
  HttpHandler Handler;
  int ListenFd = -1;
  /// Self-pipe: stop() writes one byte to interrupt a sleeping poll().
  int WakeRead = -1, WakeWrite = -1;
  uint16_t BoundPort = 0;
  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  std::vector<Connection> Connections;

  std::atomic<bool> AcceptShed{false};

  // Stats are written only on the server thread; readers take snapshots
  // through atomics.
  std::atomic<uint64_t> Accepted{0}, Requests{0}, R2xx{0}, R4xx{0}, R5xx{0},
      Timeouts{0}, Overflows{0}, BadRequests{0}, PostRequests{0},
      PostBodyBytes{0}, ContinueSent{0}, ShedAccepts{0};
};

/// Splits "host:port" (e.g. "127.0.0.1:9464", ":0"). An empty host means
/// 127.0.0.1. False on a missing/unparseable port.
bool parseHostPort(const std::string &Spec, std::string &Host, uint16_t &Port,
                   std::string *Error = nullptr);

/// Splits "http://host:port[/path]" (e.g. "http://127.0.0.1:9464/metrics").
/// The port is mandatory — this is localhost tooling, not a general URL
/// parser. A missing path means "/". False + message on anything else
/// (https, missing scheme, bad port).
bool parseHttpUrl(const std::string &Url, std::string &Host, uint16_t &Port,
                  std::string &Path, std::string *Error = nullptr);

/// Tiny blocking client for tests, benches, smoke checks, and the report
/// upload path: one request, whole response read until EOF. One absolute
/// deadline (TimeoutMs) covers connect + send + receive, so a stalled or
/// byte-trickling server can never hang the caller — the failure mode a
/// per-recv SO_RCVTIMEO alone does not close. False + message on
/// connect/IO failure, deadline expiry, or an unparseable status line.
struct HttpClientResponse {
  int Status = 0;
  std::string Body;
  std::string Header; ///< Raw header block (status line + headers).
};
bool httpGet(const std::string &Host, uint16_t Port, const std::string &Path,
             HttpClientResponse &Out, std::string *Error = nullptr,
             uint64_t TimeoutMs = 5000);

/// One POST under the same deadline regime. \p Body is sent with
/// Content-Length (no chunking); the response is read until EOF.
bool httpPost(const std::string &Host, uint16_t Port, const std::string &Path,
              const std::string &Body, const std::string &ContentType,
              HttpClientResponse &Out, std::string *Error = nullptr,
              uint64_t TimeoutMs = 5000);

/// Value of header \p Name (case-insensitive) in a raw header block as
/// returned in HttpClientResponse::Header; "" when absent.
std::string headerValue(const std::string &HeaderBlock,
                        const std::string &Name);

} // namespace net
} // namespace er

#endif // ER_NET_HTTPSERVER_H
