//===- HttpServer.cpp - Minimal poll-based HTTP/1.1 server -------------------===//

#include "net/HttpServer.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string_view>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace er;
using namespace er::net;

namespace {

struct NetMetrics {
  obs::Counter &Accepted, &Requests, &R2xx, &R4xx, &R5xx;
  obs::Counter &Timeouts, &Overflows, &BadRequests;
  obs::Counter &PostRequests, &PostBytes, &PostTooLarge, &ContinueSent;
  obs::Counter &ShedAccepts;

  static NetMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static NetMetrics M{Reg.counter("net.http.accepted"),
                        Reg.counter("net.http.requests"),
                        Reg.counter("net.http.responses.2xx"),
                        Reg.counter("net.http.responses.4xx"),
                        Reg.counter("net.http.responses.5xx"),
                        Reg.counter("net.http.timeouts"),
                        Reg.counter("net.http.overflows"),
                        Reg.counter("net.http.bad_requests"),
                        Reg.counter("net.http.post.requests"),
                        Reg.counter("net.http.post.body_bytes"),
                        Reg.counter("net.http.post.too_large"),
                        Reg.counter("net.http.post.continue_sent"),
                        Reg.counter("net.http.accept_shed")};
    return M;
  }
};

uint64_t monoNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

std::string renderResponse(const HttpResponse &R) {
  char Line[128];
  std::snprintf(Line, sizeof(Line), "HTTP/1.1 %d %s\r\n", R.Status,
                HttpServer::statusText(R.Status));
  std::string Head = Line;
  for (const auto &H : R.ExtraHeaders)
    Head += H.first + ": " + H.second + "\r\n";
  std::snprintf(Line, sizeof(Line),
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                R.Body.size());
  Head += "Content-Type: " + R.ContentType + "\r\n";
  Head += Line;
  return Head + R.Body;
}

/// Plain-text response literal; keeps call sites clear of aggregate
/// initialization (HttpResponse grew an ExtraHeaders member).
HttpResponse textResponse(int Status, std::string Body) {
  HttpResponse R;
  R.Status = Status;
  R.Body = std::move(Body);
  return R;
}

/// Fire-and-forget response for sockets we are about to close (503 at the
/// connection cap, 408 at the deadline). The socket's send buffer is
/// empty or nearly so; if the kernel cannot take it, the close alone
/// carries the message. Pending input is drained first: closing with
/// unread request bytes in the receive buffer makes the kernel answer
/// with RST, which can destroy the response before the peer reads it.
void sendBestEffort(int Fd, const HttpResponse &R) {
  char Sink[1024];
  while (::recv(Fd, Sink, sizeof(Sink), MSG_DONTWAIT) > 0)
    ;
  std::string Bytes = renderResponse(R);
  (void)::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

bool asciiIEquals(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

/// Value of header \p Name inside raw head bytes (request line included;
/// lines separated by \r\n). Names are case-insensitive per RFC 9110;
/// leading/trailing whitespace around the value is trimmed. Returns false
/// when the header is absent.
bool findHeader(std::string_view Head, std::string_view Name,
                std::string &Value) {
  size_t Pos = Head.find("\r\n"); // Skip the request/status line.
  while (Pos != std::string_view::npos && Pos + 2 < Head.size()) {
    size_t LineStart = Pos + 2;
    size_t LineEnd = Head.find("\r\n", LineStart);
    std::string_view Line = Head.substr(
        LineStart, LineEnd == std::string_view::npos ? std::string_view::npos
                                                     : LineEnd - LineStart);
    size_t Colon = Line.find(':');
    if (Colon != std::string_view::npos &&
        asciiIEquals(Line.substr(0, Colon), Name)) {
      size_t VStart = Colon + 1;
      while (VStart < Line.size() && (Line[VStart] == ' ' || Line[VStart] == '\t'))
        ++VStart;
      size_t VEnd = Line.size();
      while (VEnd > VStart && (Line[VEnd - 1] == ' ' || Line[VEnd - 1] == '\t' ||
                               Line[VEnd - 1] == '\r'))
        --VEnd;
      Value.assign(Line.substr(VStart, VEnd - VStart));
      return true;
    }
    Pos = LineEnd;
  }
  return false;
}

} // namespace

/// One client socket's lifecycle: reading the request head, then (POST)
/// the declared body, then draining the rendered response. One absolute
/// deadline covers head + response; a completed POST head re-arms it once
/// so the body gets its own full budget without resetting per byte.
struct HttpServer::Connection {
  int Fd = -1;
  uint64_t DeadlineNs = 0;
  std::string In;
  std::string Out;
  size_t OutPos = 0;
  bool Writing = false;
  /// POST body phase: head parsed, awaiting ContentLength body bytes
  /// starting at In[BodyStart].
  bool ReadingBody = false;
  size_t BodyStart = 0;
  size_t ContentLength = 0;
  HttpRequest Req;
};

const char *HttpServer::statusText(int Status) {
  switch (Status) {
  case 100: return "Continue";
  case 200: return "OK";
  case 400: return "Bad Request";
  case 404: return "Not Found";
  case 405: return "Method Not Allowed";
  case 408: return "Request Timeout";
  case 411: return "Length Required";
  case 413: return "Payload Too Large";
  case 429: return "Too Many Requests";
  case 431: return "Request Header Fields Too Large";
  case 500: return "Internal Server Error";
  case 503: return "Service Unavailable";
  default:  return "Status";
  }
}

bool net::parseHostPort(const std::string &Spec, std::string &Host,
                        uint16_t &Port, std::string *Error) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    if (Error)
      *Error = "expected HOST:PORT, got '" + Spec + "'";
    return false;
  }
  Host = Spec.substr(0, Colon);
  if (Host.empty())
    Host = "127.0.0.1";
  const std::string PortStr = Spec.substr(Colon + 1);
  char *End = nullptr;
  unsigned long P = std::strtoul(PortStr.c_str(), &End, 10);
  if (PortStr.empty() || *End != '\0' || P > 65535) {
    if (Error)
      *Error = "bad port '" + PortStr + "'";
    return false;
  }
  Port = static_cast<uint16_t>(P);
  return true;
}

HttpServer::HttpServer(HttpServerConfig Config, HttpHandler Handler)
    : Config(std::move(Config)), Handler(std::move(Handler)) {
  if (this->Config.MaxConnections == 0)
    this->Config.MaxConnections = 1;
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0)
      ::close(ListenFd);
    if (WakeRead >= 0)
      ::close(WakeRead);
    if (WakeWrite >= 0)
      ::close(WakeWrite);
    ListenFd = WakeRead = WakeWrite = -1;
    return false;
  };

  if (Running.load(std::memory_order_acquire)) {
    if (Error)
      *Error = "server already running";
    return false;
  }

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad listen host '" + Config.Host + "'";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail("bind " + Config.Host + ":" + std::to_string(Config.Port));
  if (::listen(ListenFd, 16) != 0)
    return Fail("listen");
  if (!setNonBlocking(ListenFd))
    return Fail("fcntl");

  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0)
    return Fail("getsockname");
  BoundPort = ntohs(Bound.sin_port);

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return Fail("pipe");
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];
  setNonBlocking(WakeRead);
  setNonBlocking(WakeWrite);

  StopRequested.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void HttpServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  StopRequested.store(true, std::memory_order_release);
  char B = 'x';
  (void)!::write(WakeWrite, &B, 1);
  if (Thread.joinable())
    Thread.join();
  ::close(WakeWrite);
  WakeWrite = -1;
}

HttpServerStats HttpServer::statsSnapshot() const {
  HttpServerStats S;
  S.Accepted = Accepted.load(std::memory_order_relaxed);
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.Responses2xx = R2xx.load(std::memory_order_relaxed);
  S.Responses4xx = R4xx.load(std::memory_order_relaxed);
  S.Responses5xx = R5xx.load(std::memory_order_relaxed);
  S.Timeouts = Timeouts.load(std::memory_order_relaxed);
  S.Overflows = Overflows.load(std::memory_order_relaxed);
  S.BadRequests = BadRequests.load(std::memory_order_relaxed);
  S.PostRequests = PostRequests.load(std::memory_order_relaxed);
  S.PostBodyBytes = PostBodyBytes.load(std::memory_order_relaxed);
  S.ContinueSent = ContinueSent.load(std::memory_order_relaxed);
  S.ShedAccepts = ShedAccepts.load(std::memory_order_relaxed);
  return S;
}

void HttpServer::finishResponse(Connection &C, const HttpResponse &R,
                                bool CountAsRequest) {
  NetMetrics &NM = NetMetrics::get();
  if (CountAsRequest) {
    Requests.fetch_add(1, std::memory_order_relaxed);
    NM.Requests.inc();
  }
  if (R.Status >= 200 && R.Status < 300) {
    R2xx.fetch_add(1, std::memory_order_relaxed);
    NM.R2xx.inc();
  } else if (R.Status >= 400 && R.Status < 500) {
    R4xx.fetch_add(1, std::memory_order_relaxed);
    NM.R4xx.inc();
    if (!CountAsRequest) {
      BadRequests.fetch_add(1, std::memory_order_relaxed);
      NM.BadRequests.inc();
    }
  } else if (R.Status >= 500) {
    R5xx.fetch_add(1, std::memory_order_relaxed);
    NM.R5xx.inc();
  }
  C.Out = renderResponse(R);
  C.OutPos = 0;
  C.Writing = true;
  C.In.clear();
}

/// Advances one connection; returns false when it should be closed.
bool HttpServer::stepConnection(Connection &C, short Revents, uint64_t NowNs) {
  NetMetrics &NM = NetMetrics::get();

  if (NowNs > C.DeadlineNs) {
    // Slow-loris (head never completes) or a reader that stopped
    // draining the response: cut the line. A best-effort 408 tells a
    // half-written client what happened; a half-drained response just
    // closes.
    Timeouts.fetch_add(1, std::memory_order_relaxed);
    NM.Timeouts.inc();
    if (!C.Writing)
      sendBestEffort(C.Fd, textResponse(408, "request timed out\n"));
    return false;
  }
  if (Revents & (POLLERR | POLLNVAL))
    return false;

  if (C.Writing) {
    if (!(Revents & (POLLOUT | POLLHUP)))
      return true;
    while (C.OutPos < C.Out.size()) {
      ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos,
                         C.Out.size() - C.OutPos, MSG_NOSIGNAL);
      if (N > 0) {
        C.OutPos += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return true; // Kernel buffer full; wait for the next POLLOUT.
      return false;  // Peer gone.
    }
    return false; // Fully drained; Connection: close.
  }

  if (!(Revents & (POLLIN | POLLHUP)))
    return true;
  char Buf[2048];
  while (true) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      // The head cap guards the pre-parse phase only; once a POST head
      // has declared a (bounded) Content-Length, the body check below
      // takes over.
      if (!C.ReadingBody && C.In.size() > Config.MaxRequestBytes &&
          C.In.find("\r\n\r\n") == std::string::npos) {
        finishResponse(C, textResponse(431, "request head too large\n"),
                       /*CountAsRequest=*/false);
        return true;
      }
      continue;
    }
    if (N == 0)
      return false; // Peer closed before completing a request.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    return false;
  }

  if (!C.ReadingBody) {
    // A complete head ends with a blank line; until then keep reading
    // (subject to the deadline). The cap applies to the head itself —
    // complete or not — never to body bytes that may already have
    // arrived behind it.
    size_t HeadEnd = C.In.find("\r\n\r\n");
    size_t LineEnd = C.In.find("\r\n");
    if (HeadEnd == std::string::npos || HeadEnd > Config.MaxRequestBytes) {
      if (HeadEnd != std::string::npos ||
          C.In.size() > Config.MaxRequestBytes)
        finishResponse(C, textResponse(431, "request head too large\n"),
                       /*CountAsRequest=*/false);
      return true;
    }

    // Request line: METHOD SP TARGET SP HTTP/1.x
    std::string Line = C.In.substr(0, LineEnd);
    size_t Sp1 = Line.find(' ');
    size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                          : Line.find(' ', Sp1 + 1);
    if (Sp1 == std::string::npos || Sp2 == std::string::npos ||
        Line.compare(Sp2 + 1, 5, "HTTP/") != 0) {
      finishResponse(C, textResponse(400, "bad request\n"),
                     /*CountAsRequest=*/false);
      return true;
    }
    C.Req = HttpRequest();
    C.Req.Method = Line.substr(0, Sp1);
    C.Req.Path = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);

    if (C.Req.Method == "GET") {
      dispatch(C);
      return true;
    }
    if (C.Req.Method != "POST") {
      finishResponse(C, textResponse(405, "only GET and POST are supported\n"),
                     /*CountAsRequest=*/false);
      return true;
    }

    std::string_view Head(C.In.data(), HeadEnd);
    std::string Value;
    if (!findHeader(Head, "Content-Length", Value)) {
      finishResponse(C, textResponse(411, "POST requires Content-Length\n"),
                     /*CountAsRequest=*/false);
      return true;
    }
    char *End = nullptr;
    unsigned long long CL = std::strtoull(Value.c_str(), &End, 10);
    if (Value.empty() || *End != '\0') {
      finishResponse(C, textResponse(400, "bad Content-Length\n"),
                     /*CountAsRequest=*/false);
      return true;
    }
    if (CL > Config.MaxBodyBytes) {
      // Reject on the declaration, before any body byte is read: an
      // `Expect: 100-continue` client loses one round trip, not one
      // upload's worth of bandwidth.
      NM.PostTooLarge.inc();
      finishResponse(C,
                     textResponse(413, "body exceeds " +
                                           std::to_string(Config.MaxBodyBytes) +
                                           " byte cap\n"),
                     /*CountAsRequest=*/false);
      return true;
    }
    if (findHeader(Head, "Expect", Value) &&
        Value.find("100-continue") != std::string::npos) {
      // Interim response, sent inline: it is 25 bytes into an empty
      // send buffer, so best-effort is fine.
      static const char Interim[] = "HTTP/1.1 100 Continue\r\n\r\n";
      (void)::send(C.Fd, Interim, sizeof(Interim) - 1,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      ContinueSent.fetch_add(1, std::memory_order_relaxed);
      NM.ContinueSent.inc();
    }
    C.ReadingBody = true;
    C.BodyStart = HeadEnd + 4;
    C.ContentLength = static_cast<size_t>(CL);
    // The head consumed some of the connection budget; give the body a
    // fresh one (still absolute — a trickling body is cut, not renewed).
    C.DeadlineNs = NowNs + Config.RequestTimeoutMs * 1'000'000ULL;
  }

  if (C.ReadingBody && !C.Writing) {
    size_t Avail = C.In.size() - C.BodyStart;
    if (Avail > C.ContentLength) {
      // More bytes than Content-Length declared: a liar or a framing
      // bug. Rejecting is safer than guessing where the body ends.
      finishResponse(C,
                     textResponse(400, "body exceeds declared Content-Length\n"),
                     /*CountAsRequest=*/false);
      return true;
    }
    if (Avail == C.ContentLength) {
      C.Req.Body = C.In.substr(C.BodyStart, C.ContentLength);
      PostRequests.fetch_add(1, std::memory_order_relaxed);
      PostBodyBytes.fetch_add(C.ContentLength, std::memory_order_relaxed);
      NM.PostRequests.inc();
      NM.PostBytes.add(C.ContentLength);
      dispatch(C);
    }
    // else: keep reading until the declared length (or the deadline).
  }
  return true;
}

/// Runs the handler for the parsed request in \p C and queues the
/// response.
void HttpServer::dispatch(Connection &C) {
  HttpResponse R;
  if (Handler) {
    R = Handler(C.Req);
  } else {
    R.Status = 500;
    R.Body = "no handler\n";
  }
  finishResponse(C, R, /*CountAsRequest=*/true);
}

void HttpServer::acceptPending() {
  NetMetrics &NM = NetMetrics::get();
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (drained) or transient error; poll again later.
    Accepted.fetch_add(1, std::memory_order_relaxed);
    NM.Accepted.inc();
    if (AcceptShed.load(std::memory_order_relaxed)) {
      // Backpressure valve: the owning daemon's spool is past its
      // critical watermark, so refuse *everything* at the door — even a
      // scrape costs cycles the drain needs.
      ShedAccepts.fetch_add(1, std::memory_order_relaxed);
      NM.ShedAccepts.inc();
      HttpResponse R = textResponse(503, "shedding load; retry later\n");
      R.ExtraHeaders.push_back({"Retry-After", "2"});
      sendBestEffort(Fd, R);
      ::close(Fd);
      continue;
    }
    if (Connections.size() >= Config.MaxConnections) {
      // Full house: answer instead of letting the scrape hang in the
      // backlog until *our* poll loop frees a slot.
      Overflows.fetch_add(1, std::memory_order_relaxed);
      NM.Overflows.inc();
      sendBestEffort(Fd, textResponse(503, "connection limit reached\n"));
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    Connection C;
    C.Fd = Fd;
    C.DeadlineNs = monoNowNs() + Config.RequestTimeoutMs * 1'000'000ULL;
    Connections.push_back(std::move(C));
  }
}

void HttpServer::serveLoop() {
  while (!StopRequested.load(std::memory_order_acquire)) {
    std::vector<pollfd> Fds;
    Fds.reserve(Connections.size() + 2);
    Fds.push_back({WakeRead, POLLIN, 0});
    Fds.push_back({ListenFd, POLLIN, 0});
    uint64_t NowNs = monoNowNs();
    uint64_t NextDeadline = UINT64_MAX;
    for (const Connection &C : Connections) {
      Fds.push_back({C.Fd, static_cast<short>(C.Writing ? POLLOUT : POLLIN),
                     0});
      NextDeadline = std::min(NextDeadline, C.DeadlineNs);
    }
    int TimeoutMs = 1000;
    if (NextDeadline != UINT64_MAX) {
      uint64_t WaitNs = NextDeadline > NowNs ? NextDeadline - NowNs : 0;
      TimeoutMs = static_cast<int>(std::min<uint64_t>(WaitNs / 1'000'000 + 1,
                                                      1000));
    }
    int Ready = ::poll(Fds.data(), Fds.size(), TimeoutMs);
    if (Ready < 0 && errno != EINTR)
      break;

    if (Fds[0].revents & POLLIN) {
      char Drain[16];
      while (::read(WakeRead, Drain, sizeof(Drain)) > 0)
        ;
    }
    // Connections accepted below were not in this round's poll set;
    // remember the polled prefix so their missing revents read as 0
    // (kept alive until the next round) rather than as stale memory.
    size_t Polled = Connections.size();
    if (Fds[1].revents & POLLIN)
      acceptPending();

    NowNs = monoNowNs();
    size_t Out = 0;
    for (size_t I = 0; I < Connections.size(); ++I) {
      Connection &C = Connections[I];
      short Revents = I < Polled ? Fds[I + 2].revents : 0;
      if (stepConnection(C, Revents, NowNs)) {
        if (Out != I)
          Connections[Out] = std::move(C);
        ++Out;
      } else {
        ::close(C.Fd);
      }
    }
    Connections.resize(Out);
  }

  for (Connection &C : Connections)
    ::close(C.Fd);
  Connections.clear();
  ::close(ListenFd);
  ListenFd = -1;
  ::close(WakeRead);
  WakeRead = -1;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

namespace {

/// Remaining budget before \p DeadlineNs as a poll(2) timeout; -1 when
/// already past (callers treat that as expiry, not infinite wait).
int remainingMs(uint64_t DeadlineNs) {
  uint64_t Now = monoNowNs();
  if (Now >= DeadlineNs)
    return -1;
  uint64_t Ms = (DeadlineNs - Now) / 1'000'000;
  return static_cast<int>(std::min<uint64_t>(Ms + 1, 60'000));
}

/// One request/response exchange over a fresh connection, every phase —
/// connect, send, receive-to-EOF — charged against a single absolute
/// deadline. The socket is non-blocking throughout; per-phase progress is
/// awaited with poll(2) bounded by the remaining budget, so a server that
/// accepts and stalls, or trickles one byte per second, fails the call at
/// the deadline instead of resetting kernel timers forever.
bool httpExchange(const std::string &Host, uint16_t Port,
                  const std::string &Request, HttpClientResponse &Out,
                  std::string *Error, uint64_t TimeoutMs) {
  const uint64_t DeadlineNs = monoNowNs() + TimeoutMs * 1'000'000ULL;
  int Fd = -1;
  auto Fail = [&](const std::string &Msg, bool Errno) {
    if (Error)
      *Error = Errno ? Msg + ": " + std::strerror(errno) : Msg;
    if (Fd >= 0)
      ::close(Fd);
    return false;
  };
  auto Expired = [&] { return Fail("deadline exceeded after " +
                                       std::to_string(TimeoutMs) + "ms",
                                   false); };

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return Fail("bad host '" + Host + "'", false);
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket", true);
  if (!setNonBlocking(Fd))
    return Fail("fcntl", true);

  // Non-blocking connect: EINPROGRESS, then wait for writability and
  // check SO_ERROR — SO_SNDTIMEO does not bound connect(2) on Linux.
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (errno != EINPROGRESS)
      return Fail("connect " + Host + ":" + std::to_string(Port), true);
    pollfd P{Fd, POLLOUT, 0};
    int Wait = remainingMs(DeadlineNs);
    if (Wait < 0 || ::poll(&P, 1, Wait) <= 0)
      return Expired();
    int Err = 0;
    socklen_t Len = sizeof(Err);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
    if (Err != 0) {
      errno = Err;
      return Fail("connect " + Host + ":" + std::to_string(Port), true);
    }
  }

  size_t Sent = 0;
  while (Sent < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Sent, Request.size() - Sent,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd P{Fd, POLLOUT, 0};
      int Wait = remainingMs(DeadlineNs);
      if (Wait < 0 || ::poll(&P, 1, Wait) <= 0)
        return Expired();
      continue;
    }
    return Fail("send", true);
  }

  std::string Raw;
  char Buf[4096];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Raw.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      break; // EOF: whole response in hand.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd P{Fd, POLLIN, 0};
      int Wait = remainingMs(DeadlineNs);
      if (Wait < 0 || ::poll(&P, 1, Wait) <= 0)
        return Expired();
      continue;
    }
    return Fail("recv", true);
  }
  ::close(Fd);
  Fd = -1;

  if (Raw.compare(0, 5, "HTTP/") != 0) {
    if (Error)
      *Error = "malformed response";
    return false;
  }
  size_t Sp = Raw.find(' ');
  Out.Status = Sp == std::string::npos ? 0 : std::atoi(Raw.c_str() + Sp + 1);
  size_t HeadEnd = Raw.find("\r\n\r\n");
  if (HeadEnd == std::string::npos) {
    Out.Header = Raw;
    Out.Body.clear();
  } else {
    Out.Header = Raw.substr(0, HeadEnd);
    Out.Body = Raw.substr(HeadEnd + 4);
  }
  return true;
}

} // namespace

bool net::httpGet(const std::string &Host, uint16_t Port,
                  const std::string &Path, HttpClientResponse &Out,
                  std::string *Error, uint64_t TimeoutMs) {
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  return httpExchange(Host, Port, Req, Out, Error, TimeoutMs);
}

bool net::httpPost(const std::string &Host, uint16_t Port,
                   const std::string &Path, const std::string &Body,
                   const std::string &ContentType, HttpClientResponse &Out,
                   std::string *Error, uint64_t TimeoutMs) {
  std::string Req = "POST " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nContent-Type: " + ContentType +
                    "\r\nContent-Length: " + std::to_string(Body.size()) +
                    "\r\nConnection: close\r\n\r\n" + Body;
  return httpExchange(Host, Port, Req, Out, Error, TimeoutMs);
}

bool net::parseHttpUrl(const std::string &Url, std::string &Host,
                       uint16_t &Port, std::string &Path, std::string *Error) {
  const std::string Scheme = "http://";
  if (Url.compare(0, Scheme.size(), Scheme) != 0) {
    if (Error)
      *Error = "expected http://HOST:PORT[/path], got '" + Url + "'";
    return false;
  }
  std::string Rest = Url.substr(Scheme.size());
  size_t Slash = Rest.find('/');
  std::string HostPort = Rest.substr(0, Slash);
  Path = Slash == std::string::npos ? "/" : Rest.substr(Slash);
  return parseHostPort(HostPort, Host, Port, Error);
}

std::string net::headerValue(const std::string &HeaderBlock,
                             const std::string &Name) {
  std::string Value;
  if (findHeader(HeaderBlock, Name, Value))
    return Value;
  return "";
}
