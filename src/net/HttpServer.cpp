//===- HttpServer.cpp - Minimal poll-based HTTP/1.1 server -------------------===//

#include "net/HttpServer.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace er;
using namespace er::net;

namespace {

struct NetMetrics {
  obs::Counter &Accepted, &Requests, &R2xx, &R4xx, &R5xx;
  obs::Counter &Timeouts, &Overflows, &BadRequests;

  static NetMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static NetMetrics M{Reg.counter("net.http.accepted"),
                        Reg.counter("net.http.requests"),
                        Reg.counter("net.http.responses.2xx"),
                        Reg.counter("net.http.responses.4xx"),
                        Reg.counter("net.http.responses.5xx"),
                        Reg.counter("net.http.timeouts"),
                        Reg.counter("net.http.overflows"),
                        Reg.counter("net.http.bad_requests")};
    return M;
  }
};

uint64_t monoNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

std::string renderResponse(const HttpResponse &R) {
  char Head[256];
  std::snprintf(Head, sizeof(Head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                R.Status, HttpServer::statusText(R.Status),
                R.ContentType.c_str(), R.Body.size());
  return Head + R.Body;
}

/// Fire-and-forget response for sockets we are about to close (503 at the
/// connection cap, 408 at the deadline). The socket's send buffer is
/// empty or nearly so; if the kernel cannot take it, the close alone
/// carries the message.
void sendBestEffort(int Fd, const HttpResponse &R) {
  std::string Bytes = renderResponse(R);
  (void)::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

} // namespace

/// One client socket's lifecycle: reading the request head, then draining
/// the rendered response; one absolute deadline covers both.
struct HttpServer::Connection {
  int Fd = -1;
  uint64_t DeadlineNs = 0;
  std::string In;
  std::string Out;
  size_t OutPos = 0;
  bool Writing = false;
};

const char *HttpServer::statusText(int Status) {
  switch (Status) {
  case 200: return "OK";
  case 400: return "Bad Request";
  case 404: return "Not Found";
  case 405: return "Method Not Allowed";
  case 408: return "Request Timeout";
  case 431: return "Request Header Fields Too Large";
  case 500: return "Internal Server Error";
  case 503: return "Service Unavailable";
  default:  return "Status";
  }
}

bool net::parseHostPort(const std::string &Spec, std::string &Host,
                        uint16_t &Port, std::string *Error) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    if (Error)
      *Error = "expected HOST:PORT, got '" + Spec + "'";
    return false;
  }
  Host = Spec.substr(0, Colon);
  if (Host.empty())
    Host = "127.0.0.1";
  const std::string PortStr = Spec.substr(Colon + 1);
  char *End = nullptr;
  unsigned long P = std::strtoul(PortStr.c_str(), &End, 10);
  if (PortStr.empty() || *End != '\0' || P > 65535) {
    if (Error)
      *Error = "bad port '" + PortStr + "'";
    return false;
  }
  Port = static_cast<uint16_t>(P);
  return true;
}

HttpServer::HttpServer(HttpServerConfig Config, HttpHandler Handler)
    : Config(std::move(Config)), Handler(std::move(Handler)) {
  if (this->Config.MaxConnections == 0)
    this->Config.MaxConnections = 1;
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0)
      ::close(ListenFd);
    if (WakeRead >= 0)
      ::close(WakeRead);
    if (WakeWrite >= 0)
      ::close(WakeWrite);
    ListenFd = WakeRead = WakeWrite = -1;
    return false;
  };

  if (Running.load(std::memory_order_acquire)) {
    if (Error)
      *Error = "server already running";
    return false;
  }

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad listen host '" + Config.Host + "'";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail("bind " + Config.Host + ":" + std::to_string(Config.Port));
  if (::listen(ListenFd, 16) != 0)
    return Fail("listen");
  if (!setNonBlocking(ListenFd))
    return Fail("fcntl");

  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0)
    return Fail("getsockname");
  BoundPort = ntohs(Bound.sin_port);

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return Fail("pipe");
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];
  setNonBlocking(WakeRead);
  setNonBlocking(WakeWrite);

  StopRequested.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void HttpServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  StopRequested.store(true, std::memory_order_release);
  char B = 'x';
  (void)!::write(WakeWrite, &B, 1);
  if (Thread.joinable())
    Thread.join();
  ::close(WakeWrite);
  WakeWrite = -1;
}

HttpServerStats HttpServer::statsSnapshot() const {
  HttpServerStats S;
  S.Accepted = Accepted.load(std::memory_order_relaxed);
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.Responses2xx = R2xx.load(std::memory_order_relaxed);
  S.Responses4xx = R4xx.load(std::memory_order_relaxed);
  S.Responses5xx = R5xx.load(std::memory_order_relaxed);
  S.Timeouts = Timeouts.load(std::memory_order_relaxed);
  S.Overflows = Overflows.load(std::memory_order_relaxed);
  S.BadRequests = BadRequests.load(std::memory_order_relaxed);
  return S;
}

void HttpServer::finishResponse(Connection &C, const HttpResponse &R,
                                bool CountAsRequest) {
  NetMetrics &NM = NetMetrics::get();
  if (CountAsRequest) {
    Requests.fetch_add(1, std::memory_order_relaxed);
    NM.Requests.inc();
  }
  if (R.Status >= 200 && R.Status < 300) {
    R2xx.fetch_add(1, std::memory_order_relaxed);
    NM.R2xx.inc();
  } else if (R.Status >= 400 && R.Status < 500) {
    R4xx.fetch_add(1, std::memory_order_relaxed);
    NM.R4xx.inc();
    if (!CountAsRequest) {
      BadRequests.fetch_add(1, std::memory_order_relaxed);
      NM.BadRequests.inc();
    }
  } else if (R.Status >= 500) {
    R5xx.fetch_add(1, std::memory_order_relaxed);
    NM.R5xx.inc();
  }
  C.Out = renderResponse(R);
  C.OutPos = 0;
  C.Writing = true;
  C.In.clear();
}

/// Advances one connection; returns false when it should be closed.
bool HttpServer::stepConnection(Connection &C, short Revents, uint64_t NowNs) {
  NetMetrics &NM = NetMetrics::get();

  if (NowNs > C.DeadlineNs) {
    // Slow-loris (head never completes) or a reader that stopped
    // draining the response: cut the line. A best-effort 408 tells a
    // half-written client what happened; a half-drained response just
    // closes.
    Timeouts.fetch_add(1, std::memory_order_relaxed);
    NM.Timeouts.inc();
    if (!C.Writing)
      sendBestEffort(C.Fd, {408, "text/plain; charset=utf-8",
                            "request timed out\n"});
    return false;
  }
  if (Revents & (POLLERR | POLLNVAL))
    return false;

  if (C.Writing) {
    if (!(Revents & (POLLOUT | POLLHUP)))
      return true;
    while (C.OutPos < C.Out.size()) {
      ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos,
                         C.Out.size() - C.OutPos, MSG_NOSIGNAL);
      if (N > 0) {
        C.OutPos += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return true; // Kernel buffer full; wait for the next POLLOUT.
      return false;  // Peer gone.
    }
    return false; // Fully drained; Connection: close.
  }

  if (!(Revents & (POLLIN | POLLHUP)))
    return true;
  char Buf[2048];
  while (true) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      if (C.In.size() > Config.MaxRequestBytes) {
        finishResponse(C, {431, "text/plain; charset=utf-8",
                           "request head too large\n"},
                       /*CountAsRequest=*/false);
        return true;
      }
      continue;
    }
    if (N == 0)
      return false; // Peer closed before completing a request.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    return false;
  }

  // A complete head ends with a blank line; until then keep reading
  // (subject to the deadline).
  size_t HeadEnd = C.In.find("\r\n\r\n");
  size_t LineEnd = C.In.find("\r\n");
  if (HeadEnd == std::string::npos)
    return true;

  // Request line: METHOD SP TARGET SP HTTP/1.x
  std::string Line = C.In.substr(0, LineEnd);
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : Line.find(' ', Sp1 + 1);
  if (Sp1 == std::string::npos || Sp2 == std::string::npos ||
      Line.compare(Sp2 + 1, 5, "HTTP/") != 0) {
    finishResponse(C, {400, "text/plain; charset=utf-8", "bad request\n"},
                   /*CountAsRequest=*/false);
    return true;
  }
  HttpRequest Req;
  Req.Method = Line.substr(0, Sp1);
  Req.Path = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  if (Req.Method != "GET") {
    finishResponse(C, {405, "text/plain; charset=utf-8",
                       "only GET is supported\n"},
                   /*CountAsRequest=*/false);
    return true;
  }

  HttpResponse R;
  if (Handler) {
    R = Handler(Req);
  } else {
    R.Status = 500;
    R.Body = "no handler\n";
  }
  finishResponse(C, R, /*CountAsRequest=*/true);
  return true;
}

void HttpServer::acceptPending() {
  NetMetrics &NM = NetMetrics::get();
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (drained) or transient error; poll again later.
    Accepted.fetch_add(1, std::memory_order_relaxed);
    NM.Accepted.inc();
    if (Connections.size() >= Config.MaxConnections) {
      // Full house: answer instead of letting the scrape hang in the
      // backlog until *our* poll loop frees a slot.
      Overflows.fetch_add(1, std::memory_order_relaxed);
      NM.Overflows.inc();
      sendBestEffort(Fd, {503, "text/plain; charset=utf-8",
                          "connection limit reached\n"});
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    Connection C;
    C.Fd = Fd;
    C.DeadlineNs = monoNowNs() + Config.RequestTimeoutMs * 1'000'000ULL;
    Connections.push_back(std::move(C));
  }
}

void HttpServer::serveLoop() {
  while (!StopRequested.load(std::memory_order_acquire)) {
    std::vector<pollfd> Fds;
    Fds.reserve(Connections.size() + 2);
    Fds.push_back({WakeRead, POLLIN, 0});
    Fds.push_back({ListenFd, POLLIN, 0});
    uint64_t NowNs = monoNowNs();
    uint64_t NextDeadline = UINT64_MAX;
    for (const Connection &C : Connections) {
      Fds.push_back({C.Fd, static_cast<short>(C.Writing ? POLLOUT : POLLIN),
                     0});
      NextDeadline = std::min(NextDeadline, C.DeadlineNs);
    }
    int TimeoutMs = 1000;
    if (NextDeadline != UINT64_MAX) {
      uint64_t WaitNs = NextDeadline > NowNs ? NextDeadline - NowNs : 0;
      TimeoutMs = static_cast<int>(std::min<uint64_t>(WaitNs / 1'000'000 + 1,
                                                      1000));
    }
    int Ready = ::poll(Fds.data(), Fds.size(), TimeoutMs);
    if (Ready < 0 && errno != EINTR)
      break;

    if (Fds[0].revents & POLLIN) {
      char Drain[16];
      while (::read(WakeRead, Drain, sizeof(Drain)) > 0)
        ;
    }
    // Connections accepted below were not in this round's poll set;
    // remember the polled prefix so their missing revents read as 0
    // (kept alive until the next round) rather than as stale memory.
    size_t Polled = Connections.size();
    if (Fds[1].revents & POLLIN)
      acceptPending();

    NowNs = monoNowNs();
    size_t Out = 0;
    for (size_t I = 0; I < Connections.size(); ++I) {
      Connection &C = Connections[I];
      short Revents = I < Polled ? Fds[I + 2].revents : 0;
      if (stepConnection(C, Revents, NowNs)) {
        if (Out != I)
          Connections[Out] = std::move(C);
        ++Out;
      } else {
        ::close(C.Fd);
      }
    }
    Connections.resize(Out);
  }

  for (Connection &C : Connections)
    ::close(C.Fd);
  Connections.clear();
  ::close(ListenFd);
  ListenFd = -1;
  ::close(WakeRead);
  WakeRead = -1;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

bool net::httpGet(const std::string &Host, uint16_t Port,
                  const std::string &Path, HttpClientResponse &Out,
                  std::string *Error, uint64_t TimeoutMs) {
  auto Fail = [&](int Fd, const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (Fd >= 0)
      ::close(Fd);
    return false;
  };

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad host '" + Host + "'";
    return false;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail(Fd, "socket");
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(TimeoutMs / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((TimeoutMs % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail(Fd, "connect " + Host + ":" + std::to_string(Port));

  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  size_t Sent = 0;
  while (Sent < Req.size()) {
    ssize_t N = ::send(Fd, Req.data() + Sent, Req.size() - Sent, MSG_NOSIGNAL);
    if (N <= 0)
      return Fail(Fd, "send");
    Sent += static_cast<size_t>(N);
  }

  std::string Raw;
  char Buf[4096];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Raw.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      break;
    return Fail(Fd, "recv");
  }
  ::close(Fd);

  if (Raw.compare(0, 5, "HTTP/") != 0) {
    if (Error)
      *Error = "malformed response";
    return false;
  }
  size_t Sp = Raw.find(' ');
  Out.Status = Sp == std::string::npos
                   ? 0
                   : std::atoi(Raw.c_str() + Sp + 1);
  size_t HeadEnd = Raw.find("\r\n\r\n");
  if (HeadEnd == std::string::npos) {
    Out.Header = Raw;
    Out.Body.clear();
  } else {
    Out.Header = Raw.substr(0, HeadEnd);
    Out.Body = Raw.substr(HeadEnd + 4);
  }
  return true;
}
