//===- ReportClient.cpp - Retrying report upload client ----------------------===//

#include "net/ReportClient.h"

#include "net/HttpServer.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace er;
using namespace er::net;

namespace {

struct PushMetrics {
  obs::Counter &Attempts, &Pushed, &Retries, &Throttled, &Failures;

  static PushMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static PushMetrics M{Reg.counter("net.client.push.attempts"),
                         Reg.counter("net.client.push.ok"),
                         Reg.counter("net.client.push.retries"),
                         Reg.counter("net.client.push.throttled"),
                         Reg.counter("net.client.push.failures")};
    return M;
  }
};

void sleepMs(const ReportClientConfig &Config, uint64_t Ms) {
  if (Config.Sleep)
    Config.Sleep(Ms);
  else
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// ±25% multiplicative jitter so synchronized clients spread out.
uint64_t jittered(uint64_t Ms, Rng &R) {
  if (Ms == 0)
    return 0;
  double Factor = 0.75 + 0.5 * R.nextDouble();
  uint64_t J = static_cast<uint64_t>(static_cast<double>(Ms) * Factor);
  return std::max<uint64_t>(1, J);
}

/// Seconds from a Retry-After header value, capped at CapMs; 0 when
/// absent/unparseable (HTTP-date form is not worth supporting for
/// localhost tooling).
uint64_t retryAfterMs(const std::string &Header, uint64_t CapMs) {
  std::string Value = headerValue(Header, "Retry-After");
  if (Value.empty())
    return 0;
  char *End = nullptr;
  unsigned long long Secs = std::strtoull(Value.c_str(), &End, 10);
  if (*End != '\0')
    return 0;
  return std::min<unsigned long long>(Secs * 1000, CapMs);
}

PushResult pushReportTo(const std::string &Host, uint16_t Port,
                        const std::string &Path, const std::string &Frame,
                        const ReportClientConfig &Config) {
  PushMetrics &PM = PushMetrics::get();
  obs::ScopedSpan Span("report.push", "net");
  Span.arg("bytes", static_cast<uint64_t>(Frame.size()));

  PushResult Result;
  Rng Jitter(Config.JitterSeed ? Config.JitterSeed : 1);
  uint64_t Backoff = std::max<uint64_t>(1, Config.BackoffMs);

  for (unsigned Attempt = 0;; ++Attempt) {
    ++Result.Attempts;
    PM.Attempts.inc();

    HttpClientResponse Resp;
    std::string Error;
    bool Sent = httpPost(Host, Port, Path, Frame,
                         "application/x-er-spool", Resp, &Error,
                         Config.TimeoutMs);
    if (Sent) {
      Result.Status = Resp.Status;
      if (Resp.Status >= 200 && Resp.Status < 300) {
        Result.Ok = true;
        PM.Pushed.inc();
        Span.arg("attempts", Result.Attempts);
        return Result;
      }
      if (Resp.Status == 429 || Resp.Status == 503) {
        // The edge is shedding; this is the retry case the whole backoff
        // machinery exists for.
        ++Result.Throttled;
        PM.Throttled.inc();
      } else {
        // Permanent: the same bytes will fail the same way (CRC 400,
        // over-cap 413, wrong path 404). Body carries the server's why.
        Result.Error = "server rejected upload (" +
                       std::to_string(Resp.Status) + "): " + Resp.Body;
        PM.Failures.inc();
        return Result;
      }
    } else {
      Result.Status = 0;
      Result.Error = Error;
    }

    if (Attempt >= Config.MaxRetries) {
      if (Result.Error.empty())
        Result.Error = "gave up after " + std::to_string(Result.Attempts) +
                       " attempts (last status " +
                       std::to_string(Result.Status) + ")";
      PM.Failures.inc();
      return Result;
    }

    uint64_t DelayMs =
        Sent ? retryAfterMs(Resp.Header, Config.RetryAfterCapMs) : 0;
    if (DelayMs == 0)
      DelayMs = Backoff;
    PM.Retries.inc();
    sleepMs(Config, jittered(DelayMs, Jitter));
    Backoff = std::min(Backoff * 2, std::max<uint64_t>(1, Config.BackoffCapMs));
  }
}

} // namespace

PushResult net::pushReport(const std::string &Host, uint16_t Port,
                           const std::string &Frame,
                           const ReportClientConfig &Config) {
  return pushReportTo(Host, Port, "/report", Frame, Config);
}

PushResult net::pushReportUrl(const std::string &Url, const std::string &Frame,
                              const ReportClientConfig &Config) {
  std::string Host, Path, Error;
  uint16_t Port = 0;
  if (!parseHttpUrl(Url, Host, Port, Path, &Error)) {
    PushResult Result;
    Result.Error = Error;
    return Result;
  }
  // parseHttpUrl defaults a missing path to "/": the upload endpoint is
  // /report unless the caller spelled out something else.
  if (Path == "/")
    Path = "/report";
  return pushReportTo(Host, Port, Path, Frame, Config);
}
