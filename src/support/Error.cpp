//===- Error.cpp ----------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void er::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "er fatal error: %s\n", Msg.c_str());
  std::abort();
}
