//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
///
/// \file
/// A seeded splitmix64/xoshiro256** generator. Every randomized component in
/// the project (workload input generators, scheduler perturbation, overhead
/// jitter) draws from an explicitly seeded Rng so that tests and benches are
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_RNG_H
#define ER_SUPPORT_RNG_H

#include <cstdint>

namespace er {

/// xoshiro256** seeded via splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  void reseed(uint64_t Seed);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t next();

  /// Returns a value in [0, Bound) for Bound > 0.
  uint64_t nextBounded(uint64_t Bound);

  /// Returns a value in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi);

  /// Returns a double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5);

  /// Derives an independent child generator for stream \p Stream from this
  /// generator's current state, without advancing it. The same (state,
  /// stream) pair always yields the same child, and distinct streams yield
  /// statistically independent sequences — use one root Rng plus one stream
  /// id per campaign/machine to get reproducible parallel randomness that
  /// does not depend on scheduling order.
  Rng split(uint64_t Stream) const;

private:
  uint64_t State[4];
};

} // namespace er

#endif // ER_SUPPORT_RNG_H
