//===- Timer.h - Wall-clock stopwatch ----------------------------*- C++ -*-===//
///
/// \file
/// A simple wall-clock stopwatch used to report symbolic-execution and
/// selection times in the evaluation harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_TIMER_H
#define ER_SUPPORT_TIMER_H

#include <chrono>

namespace er {

/// Measures elapsed wall-clock time in seconds.
class Stopwatch {
public:
  Stopwatch() { restart(); }

  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace er

#endif // ER_SUPPORT_TIMER_H
