//===- Fs.h - Injectable filesystem and clock seam --------------*- C++ -*-===//
///
/// \file
/// The thin seam between the ingestion/daemon layers and the operating
/// system. Everything the spool transport, collector, and collector
/// daemon do to the world — write a file, rename it, list a directory,
/// read the clock — goes through the two small interfaces here, so a test
/// can substitute a scripted implementation (see FaultFs.h) and drive
/// every crash/retry path deterministically: EIO on the nth write, a
/// rename that fails transiently, a clock that jumps.
///
/// `FsOps` is itself the *real* implementation; subclasses override the
/// operations they want to intercept and delegate the rest. Production
/// code takes an optional `FsOps *` (null = `FsOps::real()`), so the seam
/// costs one virtual call per filesystem operation — noise next to the
/// syscall underneath.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_FS_H
#define ER_SUPPORT_FS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace er {

/// Outcome of a filesystem operation that callers may react to
/// differently: `NotFound` is a *semantic* answer (lost a claim race, no
/// such directory), `IoError` is a fault worth retrying.
enum class FsStatus {
  Ok,
  NotFound, ///< Source path does not exist (ENOENT-class).
  IoError,  ///< Any other failure (EIO-class; transient or not).
};

const char *fsStatusName(FsStatus S);

/// Monotonic nanosecond clock seam. The daemon derives uptime, drain
/// scheduling, and retry backoff from this, never from the wall clock
/// directly, so tests advance time explicitly instead of sleeping.
class ClockSource {
public:
  virtual ~ClockSource() = default;
  virtual uint64_t nowNs() = 0;

  /// Process-wide steady_clock-backed instance.
  static ClockSource &real();
};

/// A clock that only moves when told to — including backwards, to model
/// host clock jumps (consumers must clamp, not crash).
class VirtualClock : public ClockSource {
public:
  explicit VirtualClock(uint64_t StartNs = 0) : Ns(StartNs) {}
  uint64_t nowNs() override { return Ns; }
  void advanceNs(uint64_t Delta) { Ns += Delta; }
  void set(uint64_t NowNs) { Ns = NowNs; }

private:
  uint64_t Ns;
};

/// The filesystem operations the spool/collector/daemon stack performs.
/// The base class *is* the real implementation (std::filesystem + stdio);
/// override to intercept. All paths are plain strings; directories are
/// created recursively.
class FsOps {
public:
  virtual ~FsOps() = default;

  /// mkdir -p. True if the directories exist afterwards.
  virtual bool createDirectories(const std::string &Path,
                                 std::string *Error = nullptr);

  /// Writes \p Size bytes to \p Path (created/truncated). Not atomic —
  /// callers wanting atomicity write a temp and rename() it.
  virtual FsStatus writeFile(const std::string &Path, const uint8_t *Data,
                             size_t Size, std::string *Error = nullptr);
  FsStatus writeFile(const std::string &Path, const std::string &Data,
                     std::string *Error = nullptr);

  /// Reads the whole file into \p Out.
  virtual FsStatus readFile(const std::string &Path, std::vector<uint8_t> &Out,
                            std::string *Error = nullptr);

  /// rename(2): atomic within a filesystem; NotFound when \p From is gone
  /// (the claim-race answer), IoError otherwise.
  virtual FsStatus rename(const std::string &From, const std::string &To,
                          std::string *Error = nullptr);

  /// Deletes \p Path; true if it no longer exists.
  virtual bool remove(const std::string &Path);

  virtual bool exists(const std::string &Path);

  /// Size in bytes of the regular file at \p Path; 0 when it is missing
  /// or unreadable (callers treating size as a pressure signal must not
  /// fail on a file that vanished mid-scan).
  virtual uint64_t fileSize(const std::string &Path);

  /// Names (not paths) of regular files directly inside \p Dir, sorted.
  /// A missing or unreadable directory lists as empty.
  virtual std::vector<std::string> listDir(const std::string &Dir);

  /// Process-wide pass-through instance.
  static FsOps &real();
};

} // namespace er

#endif // ER_SUPPORT_FS_H
