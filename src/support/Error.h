//===- Error.h - Lightweight error handling utilities ---------*- C++ -*-===//
//
// Part of the ER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error utilities modelled on LLVM's Expected<T>: library code never
/// throws; fallible operations return ErrorOr<T> carrying either a value or a
/// human-readable message.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_ERROR_H
#define ER_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace er {

/// Aborts the process with \p Msg. Used for invariant violations that cannot
/// be expressed as recoverable errors (the moral equivalent of
/// llvm_unreachable).
[[noreturn]] void fatalError(const std::string &Msg);

/// A value-or-error result. On failure, carries a message describing what
/// went wrong; on success, carries a T. Callers must check hasValue() (or
/// operator bool) before dereferencing.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  static ErrorOr<T> makeError(std::string Msg) {
    ErrorOr<T> E;
    E.Message = std::move(Msg);
    return E;
  }

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  const T &get() const {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }
  T &get() {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }
  T takeValue() {
    assert(Value && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

  const std::string &getError() const {
    assert(!Value && "accessing error of successful ErrorOr");
    return Message;
  }

private:
  ErrorOr() = default;
  std::optional<T> Value;
  std::string Message;
};

} // namespace er

#endif // ER_SUPPORT_ERROR_H
