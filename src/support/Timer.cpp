//===- Timer.cpp ----------------------------------------------------------===//

#include "support/Timer.h"

// Stopwatch is header-only; this file anchors the library target.
