//===- Fs.cpp - Injectable filesystem and clock seam ------------------------===//

#include "support/Fs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace er;
namespace fs = std::filesystem;

const char *er::fsStatusName(FsStatus S) {
  switch (S) {
  case FsStatus::Ok:
    return "ok";
  case FsStatus::NotFound:
    return "not-found";
  case FsStatus::IoError:
    return "io-error";
  }
  return "?";
}

ClockSource &ClockSource::real() {
  class RealClock : public ClockSource {
  public:
    uint64_t nowNs() override {
      using namespace std::chrono;
      return static_cast<uint64_t>(
          duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
              .count());
    }
  };
  static RealClock C;
  return C;
}

bool FsOps::createDirectories(const std::string &Path, std::string *Error) {
  std::error_code EC;
  fs::create_directories(Path, EC);
  // create_directories reports an error code for an already-existing
  // directory on some implementations; what callers care about is whether
  // the directory is there afterwards.
  if (!EC || fs::is_directory(Path, EC))
    return true;
  if (Error)
    *Error = "cannot create '" + Path + "'";
  return false;
}

FsStatus FsOps::writeFile(const std::string &Path, const uint8_t *Data,
                          size_t Size, std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return FsStatus::IoError;
  }
  size_t Written = Size ? std::fwrite(Data, 1, Size, F) : 0;
  bool Closed = std::fclose(F) == 0;
  if (Written != Size || !Closed) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return FsStatus::IoError;
  }
  return FsStatus::Ok;
}

FsStatus FsOps::writeFile(const std::string &Path, const std::string &Data,
                          std::string *Error) {
  return writeFile(Path, reinterpret_cast<const uint8_t *>(Data.data()),
                   Data.size(), Error);
}

FsStatus FsOps::readFile(const std::string &Path, std::vector<uint8_t> &Out,
                         std::string *Error) {
  Out.clear();
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return FsStatus::NotFound;
  }
  uint8_t Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Out.insert(Out.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  bool Bad = std::ferror(F) != 0;
  std::fclose(F);
  if (Bad) {
    if (Error)
      *Error = "read error on '" + Path + "'";
    return FsStatus::IoError;
  }
  return FsStatus::Ok;
}

FsStatus FsOps::rename(const std::string &From, const std::string &To,
                       std::string *Error) {
  std::error_code EC;
  fs::rename(From, To, EC);
  if (!EC)
    return FsStatus::Ok;
  if (Error)
    *Error = "cannot rename '" + From + "' to '" + To + "': " + EC.message();
  if (EC == std::errc::no_such_file_or_directory)
    return FsStatus::NotFound;
  return FsStatus::IoError;
}

bool FsOps::remove(const std::string &Path) {
  std::error_code EC;
  fs::remove(Path, EC);
  return !fs::exists(Path, EC);
}

bool FsOps::exists(const std::string &Path) {
  std::error_code EC;
  return fs::exists(Path, EC);
}

uint64_t FsOps::fileSize(const std::string &Path) {
  std::error_code EC;
  uintmax_t Size = fs::file_size(Path, EC);
  return EC ? 0 : static_cast<uint64_t>(Size);
}

std::vector<std::string> FsOps::listDir(const std::string &Dir) {
  std::vector<std::string> Names;
  std::error_code EC;
  fs::directory_iterator It(Dir, EC), End;
  if (EC)
    return Names;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    if (!It->is_regular_file(EC))
      continue;
    Names.push_back(It->path().filename().string());
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

FsOps &FsOps::real() {
  static FsOps F;
  return F;
}
