//===- FaultFs.h - Scriptable filesystem fault injection --------*- C++ -*-===//
///
/// \file
/// A fault-injecting FsOps for deterministic failure testing
/// (docs/INGEST.md lists the catalog). A `FaultFs` wraps an inner FsOps
/// (usually the real one) and consults a list of scripted *failpoints*
/// before delegating. Each failpoint names an operation, an optional
/// path-substring filter, how many matching operations to let through
/// first (`Skip`), how many times to fire (`Fire`, 0 = forever), and what
/// to do when it fires:
///
///  - `Fail`      the operation returns IoError with no effect — a
///                transient EIO (the nth-write/nth-rename failure).
///  - `TornWrite` writeFile persists only the first `TornBytes` bytes and
///                then reports IoError — a torn write / full disk.
///  - `NotFound`  the operation reports NotFound — a path that vanished
///                (e.g. a claim race another process won).
///
/// Failpoints are evaluated in insertion order; the first one that
/// matches an operation decides it. Every injected fault is appended to a
/// human-readable log so tests can assert exactly which faults fired.
///
/// `parseFaultSpec` turns a compact text spec (the `ER_FAULT_SPEC`
/// environment variable understood by `er_cli collect`) into failpoints:
///
///   spec     := point (';' point)*
///   point    := op ':' action [':' key '=' value]*
///   op       := write | rename | remove | read | list | createdir | any
///   action   := fail | torn | notfound
///   keys     := path=<substring> skip=<n> fire=<n> torn=<bytes>
///
/// e.g. `rename:fail:path=.claimed:skip=2:fire=1` — the third rename of a
/// claim file fails once with EIO.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_FAULTFS_H
#define ER_SUPPORT_FAULTFS_H

#include "support/Fs.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace er {

/// One scripted fault.
struct Failpoint {
  enum class Op { Write, Rename, Remove, Read, List, CreateDir, Any };
  enum class Action { Fail, TornWrite, NotFound };

  Op Operation = Op::Any;
  Action Act = Action::Fail;
  /// Fires only when the operation's (source) path contains this
  /// substring; empty matches every path.
  std::string PathSubstr;
  /// Matching operations to let through before arming.
  unsigned Skip = 0;
  /// Times to fire once armed; 0 = every matching operation forever.
  unsigned Fire = 1;
  /// TornWrite: bytes actually persisted before the failure.
  size_t TornBytes = 0;

  /// Internal: matching operations seen so far.
  unsigned Seen = 0;
  /// Internal: times fired so far.
  unsigned Fired = 0;
};

const char *failpointOpName(Failpoint::Op Op);
const char *failpointActionName(Failpoint::Action A);

/// FsOps decorator that injects the scripted faults. Thread-safe: the
/// failpoint list and log are mutex-guarded, so a daemon under test can
/// race writers against the collector while faults fire deterministically
/// per matching-operation *count*.
class FaultFs : public FsOps {
public:
  explicit FaultFs(FsOps &Inner = FsOps::real()) : Inner(Inner) {}

  void addFailpoint(Failpoint F);
  void clearFailpoints();

  /// Total faults injected since construction (or the last clearLog).
  uint64_t faultsInjected() const;
  /// One line per injected fault: "<op> <action> <path>".
  std::vector<std::string> takeLog();

  bool createDirectories(const std::string &Path,
                         std::string *Error = nullptr) override;
  using FsOps::writeFile; // Keep the std::string convenience overload.
  FsStatus writeFile(const std::string &Path, const uint8_t *Data, size_t Size,
                     std::string *Error = nullptr) override;
  FsStatus readFile(const std::string &Path, std::vector<uint8_t> &Out,
                    std::string *Error = nullptr) override;
  FsStatus rename(const std::string &From, const std::string &To,
                  std::string *Error = nullptr) override;
  bool remove(const std::string &Path) override;
  std::vector<std::string> listDir(const std::string &Dir) override;

private:
  /// Returns the failpoint that fires for (Op, Path), if any, advancing
  /// match counters. The returned copy is stable (list may mutate later).
  bool consult(Failpoint::Op Op, const std::string &Path, Failpoint &Out);

  FsOps &Inner;
  mutable std::mutex Mu;
  std::vector<Failpoint> Points;
  std::vector<std::string> Log;
  uint64_t Injected = 0;
};

/// Parses the ER_FAULT_SPEC grammar above. Returns false (and sets
/// \p Error) on a malformed spec; \p Out is untouched on failure.
bool parseFaultSpec(const std::string &Spec, std::vector<Failpoint> &Out,
                    std::string *Error = nullptr);

} // namespace er

#endif // ER_SUPPORT_FAULTFS_H
