//===- FaultFs.cpp - Scriptable filesystem fault injection ------------------===//

#include "support/FaultFs.h"

#include <cstdlib>

using namespace er;

const char *er::failpointOpName(Failpoint::Op Op) {
  switch (Op) {
  case Failpoint::Op::Write:
    return "write";
  case Failpoint::Op::Rename:
    return "rename";
  case Failpoint::Op::Remove:
    return "remove";
  case Failpoint::Op::Read:
    return "read";
  case Failpoint::Op::List:
    return "list";
  case Failpoint::Op::CreateDir:
    return "createdir";
  case Failpoint::Op::Any:
    return "any";
  }
  return "?";
}

const char *er::failpointActionName(Failpoint::Action A) {
  switch (A) {
  case Failpoint::Action::Fail:
    return "fail";
  case Failpoint::Action::TornWrite:
    return "torn";
  case Failpoint::Action::NotFound:
    return "notfound";
  }
  return "?";
}

void FaultFs::addFailpoint(Failpoint F) {
  std::lock_guard<std::mutex> Lock(Mu);
  F.Seen = 0;
  F.Fired = 0;
  Points.push_back(std::move(F));
}

void FaultFs::clearFailpoints() {
  std::lock_guard<std::mutex> Lock(Mu);
  Points.clear();
}

uint64_t FaultFs::faultsInjected() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Injected;
}

std::vector<std::string> FaultFs::takeLog() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  Out.swap(Log);
  return Out;
}

bool FaultFs::consult(Failpoint::Op Op, const std::string &Path,
                      Failpoint &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Failpoint &P : Points) {
    if (P.Operation != Failpoint::Op::Any && P.Operation != Op)
      continue;
    if (!P.PathSubstr.empty() && Path.find(P.PathSubstr) == std::string::npos)
      continue;
    unsigned Ordinal = P.Seen++;
    if (Ordinal < P.Skip)
      continue;
    if (P.Fire != 0 && P.Fired >= P.Fire)
      continue;
    ++P.Fired;
    ++Injected;
    Log.push_back(std::string(failpointOpName(Op)) + " " +
                  failpointActionName(P.Act) + " " + Path);
    Out = P;
    return true;
  }
  return false;
}

bool FaultFs::createDirectories(const std::string &Path, std::string *Error) {
  Failpoint F;
  if (consult(Failpoint::Op::CreateDir, Path, F)) {
    if (Error)
      *Error = "injected fault: cannot create '" + Path + "'";
    return false;
  }
  return Inner.createDirectories(Path, Error);
}

FsStatus FaultFs::writeFile(const std::string &Path, const uint8_t *Data,
                            size_t Size, std::string *Error) {
  Failpoint F;
  if (consult(Failpoint::Op::Write, Path, F)) {
    if (F.Act == Failpoint::Action::TornWrite) {
      // Persist a prefix, then report the failure: a torn write.
      size_t Keep = F.TornBytes < Size ? F.TornBytes : Size;
      Inner.writeFile(Path, Data, Keep, nullptr);
      if (Error)
        *Error = "injected fault: torn write to '" + Path + "'";
      return FsStatus::IoError;
    }
    if (Error)
      *Error = "injected fault: write to '" + Path + "'";
    return F.Act == Failpoint::Action::NotFound ? FsStatus::NotFound
                                                : FsStatus::IoError;
  }
  return Inner.writeFile(Path, Data, Size, Error);
}

FsStatus FaultFs::readFile(const std::string &Path, std::vector<uint8_t> &Out,
                           std::string *Error) {
  Failpoint F;
  if (consult(Failpoint::Op::Read, Path, F)) {
    if (Error)
      *Error = "injected fault: read of '" + Path + "'";
    return F.Act == Failpoint::Action::NotFound ? FsStatus::NotFound
                                                : FsStatus::IoError;
  }
  return Inner.readFile(Path, Out, Error);
}

FsStatus FaultFs::rename(const std::string &From, const std::string &To,
                         std::string *Error) {
  Failpoint F;
  if (consult(Failpoint::Op::Rename, From, F)) {
    if (Error)
      *Error = "injected fault: rename '" + From + "' -> '" + To + "'";
    return F.Act == Failpoint::Action::NotFound ? FsStatus::NotFound
                                                : FsStatus::IoError;
  }
  return Inner.rename(From, To, Error);
}

bool FaultFs::remove(const std::string &Path) {
  Failpoint F;
  if (consult(Failpoint::Op::Remove, Path, F))
    return false;
  return Inner.remove(Path);
}

std::vector<std::string> FaultFs::listDir(const std::string &Dir) {
  Failpoint F;
  if (consult(Failpoint::Op::List, Dir, F))
    return {};
  return Inner.listDir(Dir);
}

namespace {

bool parseOp(const std::string &S, Failpoint::Op &Out) {
  if (S == "write")
    Out = Failpoint::Op::Write;
  else if (S == "rename")
    Out = Failpoint::Op::Rename;
  else if (S == "remove")
    Out = Failpoint::Op::Remove;
  else if (S == "read")
    Out = Failpoint::Op::Read;
  else if (S == "list")
    Out = Failpoint::Op::List;
  else if (S == "createdir")
    Out = Failpoint::Op::CreateDir;
  else if (S == "any")
    Out = Failpoint::Op::Any;
  else
    return false;
  return true;
}

bool parseAction(const std::string &S, Failpoint::Action &Out) {
  if (S == "fail")
    Out = Failpoint::Action::Fail;
  else if (S == "torn")
    Out = Failpoint::Action::TornWrite;
  else if (S == "notfound")
    Out = Failpoint::Action::NotFound;
  else
    return false;
  return true;
}

bool parseCount(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Next = Out * 10 + static_cast<uint64_t>(C - '0');
    if (Next < Out)
      return false;
    Out = Next;
  }
  return true;
}

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (;;) {
    size_t End = S.find(Sep, Start);
    if (End == std::string::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, End - Start));
    Start = End + 1;
  }
}

} // namespace

bool er::parseFaultSpec(const std::string &Spec, std::vector<Failpoint> &Out,
                        std::string *Error) {
  std::vector<Failpoint> Parsed;
  for (const std::string &PointSpec : splitOn(Spec, ';')) {
    if (PointSpec.empty())
      continue;
    std::vector<std::string> Fields = splitOn(PointSpec, ':');
    if (Fields.size() < 2) {
      if (Error)
        *Error = "fault spec '" + PointSpec + "' needs at least op:action";
      return false;
    }
    Failpoint F;
    if (!parseOp(Fields[0], F.Operation)) {
      if (Error)
        *Error = "unknown fault op '" + Fields[0] + "'";
      return false;
    }
    if (!parseAction(Fields[1], F.Act)) {
      if (Error)
        *Error = "unknown fault action '" + Fields[1] + "'";
      return false;
    }
    for (size_t I = 2; I < Fields.size(); ++I) {
      size_t Eq = Fields[I].find('=');
      if (Eq == std::string::npos) {
        if (Error)
          *Error = "fault option '" + Fields[I] + "' is not key=value";
        return false;
      }
      std::string Key = Fields[I].substr(0, Eq);
      std::string Value = Fields[I].substr(Eq + 1);
      uint64_t N = 0;
      if (Key == "path") {
        F.PathSubstr = Value;
      } else if (Key == "skip" && parseCount(Value, N)) {
        F.Skip = static_cast<unsigned>(N);
      } else if (Key == "fire" && parseCount(Value, N)) {
        F.Fire = static_cast<unsigned>(N);
      } else if (Key == "torn" && parseCount(Value, N)) {
        F.TornBytes = static_cast<size_t>(N);
      } else {
        if (Error)
          *Error = "bad fault option '" + Fields[I] + "'";
        return false;
      }
    }
    Parsed.push_back(std::move(F));
  }
  Out.insert(Out.end(), Parsed.begin(), Parsed.end());
  return true;
}
