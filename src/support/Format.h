//===- Format.h - printf-style string formatting ---------------*- C++ -*-===//
///
/// \file
/// Small printf-style formatting helper returning std::string, used by the
/// IR printer, trace dumps, and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SUPPORT_FORMAT_H
#define ER_SUPPORT_FORMAT_H

#include <string>

namespace er {

/// Formats like printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace er

#endif // ER_SUPPORT_FORMAT_H
