//===- Rng.cpp ------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace er;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitmix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBounded(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBounded(Span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split(uint64_t Stream) const {
  // Fold the stream id into every state word through the splitmix64
  // finalizer; the child is then reseeded from the folded value, so child
  // states are decorrelated from both the parent and sibling streams.
  uint64_t S = Stream ^ 0xa0761d6478bd642fULL;
  uint64_t Acc = splitmix64(S);
  for (uint64_t Word : State) {
    S ^= Word;
    Acc = rotl(Acc, 23) ^ splitmix64(S);
  }
  return Rng(Acc);
}

bool Rng::nextBool(double P) {
  if (P <= 0)
    return false;
  if (P >= 1)
    return true;
  return nextDouble() < P;
}
