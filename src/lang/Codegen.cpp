//===- Codegen.cpp - MiniLang to IR lowering -----------------------------------===//

#include "lang/Codegen.h"

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Error.h"

#include <cassert>

using namespace er;
using namespace er::lang;

Type Codegen::lowerScalar(const LangType *Ty) const {
  switch (Ty->K) {
  case LangType::Kind::Void:
    return Type::makeVoid();
  case LangType::Kind::Bool:
    return Type::makeInt(1);
  case LangType::Kind::Int:
    return Type::makeInt(Ty->Bits);
  case LangType::Kind::Ptr:
  case LangType::Kind::Array:
    // Pointers are opaque; arrays decay to pointers in value positions.
    return Type::makePtr();
  }
  fatalError("unreachable scalar lowering");
}

/// The IR element type for storage holding values of \p Ty.
Type Codegen::lowerElem(const LangType *Ty) const {
  if (Ty->isPtr())
    return Type::makePtr();
  if (Ty->isBool())
    return Type::makeInt(1);
  assert(Ty->isInt() && "array elements must be scalars");
  return Type::makeInt(Ty->Bits);
}

BasicBlock *Codegen::newBlock(const std::string &Hint) {
  return CurF->createBlock(Hint + "." + std::to_string(BlockCounter++));
}

bool Codegen::terminated() const {
  return B->getInsertBlock()->getTerminator() != nullptr;
}

Instruction *Codegen::createSlot(Type ElemTy, uint64_t Count,
                                 std::string Name) {
  BasicBlock *Saved = B->getInsertBlock();
  B->setInsertPoint(AllocaBlock);
  Instruction *Slot = B->alloca_(ElemTy, Count, std::move(Name));
  B->setInsertPoint(Saved);
  return Slot;
}

//===----------------------------------------------------------------------===//
// Addresses and expressions
//===----------------------------------------------------------------------===//

Value *Codegen::genIndexValue(Expr &Idx) {
  Value *V = genExpr(Idx);
  const Type &Ty = V->getType();
  if (Ty.isInt() && Ty.Bits == 64)
    return V;
  // Extend by the MiniLang signedness.
  bool Signed = Idx.Ty->isInt() && Idx.Ty->Signed;
  return B->castTo(V, Type::makeInt(64), Signed);
}

Value *Codegen::genAddr(Expr &E) {
  if (E.K == Expr::Kind::VarRef) {
    auto &V = static_cast<VarRefExpr &>(E);
    switch (V.Binding.K) {
    case NameBinding::Kind::Local:
      return LocalSlots.at(V.Binding.Local);
    case NameBinding::Kind::Global:
      return B->globalAddr(GlobalMap.at(V.Binding.Global));
    case NameBinding::Kind::Param:
      // A pointer parameter used as an indexing base: its value is the
      // address.
      return CurF->getArg(V.Binding.Param->Index);
    default:
      fatalError("genAddr: unsupported binding");
    }
  }
  if (E.K == Expr::Kind::Index) {
    auto &I = static_cast<IndexExpr &>(E);
    Value *Base;
    const LangType *BaseTy = I.Base->Ty;
    if (BaseTy->isArray())
      Base = genAddr(*I.Base);
    else
      Base = genExpr(*I.Base); // Pointer value.
    return B->ptrAdd(Base, genIndexValue(*I.Idx));
  }
  fatalError("genAddr: not an lvalue");
}

Value *Codegen::genExpr(Expr &E) {
  Module &Mod = *M;
  switch (E.K) {
  case Expr::Kind::IntLit: {
    auto &L = static_cast<IntLitExpr &>(E);
    return Mod.getConstant(lowerScalar(E.Ty), L.Value);
  }
  case Expr::Kind::BoolLit:
    return Mod.getBool(static_cast<BoolLitExpr &>(E).Value);
  case Expr::Kind::NullLit:
    return Mod.getNull(lowerScalar(E.Ty));

  case Expr::Kind::VarRef: {
    auto &V = static_cast<VarRefExpr &>(E);
    switch (V.Binding.K) {
    case NameBinding::Kind::Local:
      if (V.Binding.Local->DeclTy->isArray())
        return LocalSlots.at(V.Binding.Local); // Decay to pointer.
      return B->load(LocalSlots.at(V.Binding.Local),
                     lowerScalar(V.Binding.Local->DeclTy));
    case NameBinding::Kind::Param:
      return CurF->getArg(V.Binding.Param->Index);
    case NameBinding::Kind::Global: {
      GlobalVariable *G = GlobalMap.at(V.Binding.Global);
      if (V.Binding.Global->Ty->isArray())
        return B->globalAddr(G); // Decay.
      return B->load(B->globalAddr(G), lowerScalar(V.Binding.Global->Ty));
    }
    default:
      fatalError("codegen: unresolved identifier");
    }
  }

  case Expr::Kind::Index:
    return B->load(genAddr(E), lowerScalar(E.Ty));

  case Expr::Kind::Unary: {
    auto &U = static_cast<UnaryExpr &>(E);
    Value *S = genExpr(*U.Sub);
    switch (U.Op) {
    case UnaryOp::Neg:
      return B->binary(Opcode::Sub, Mod.getConstant(S->getType(), 0), S);
    case UnaryOp::Not:
      return B->binary(Opcode::Xor, S, Mod.getBool(true));
    case UnaryOp::BitNot:
      return B->binary(Opcode::Xor, S,
                       Mod.getConstant(S->getType(), ~0ULL));
    }
    fatalError("unreachable unary op");
  }

  case Expr::Kind::Binary: {
    auto &Bin = static_cast<BinaryExpr &>(E);
    if (Bin.Op == BinaryOp::LogAnd || Bin.Op == BinaryOp::LogOr) {
      // Short-circuit through an i1 slot.
      Instruction *Slot = createSlot(Type::makeInt(1), 1, "sc");
      Value *L = genExpr(*Bin.Lhs);
      BasicBlock *EvalRhs = newBlock("sc.rhs");
      BasicBlock *Short = newBlock("sc.short");
      BasicBlock *End = newBlock("sc.end");
      if (Bin.Op == BinaryOp::LogAnd)
        B->condBr(L, EvalRhs, Short);
      else
        B->condBr(L, Short, EvalRhs);
      B->setInsertPoint(EvalRhs);
      Value *R = genExpr(*Bin.Rhs);
      B->store(R, Slot);
      B->br(End);
      B->setInsertPoint(Short);
      B->store(Mod.getBool(Bin.Op == BinaryOp::LogOr), Slot);
      B->br(End);
      B->setInsertPoint(End);
      return B->load(Slot, Type::makeInt(1));
    }

    Value *L = genExpr(*Bin.Lhs);
    Value *R = genExpr(*Bin.Rhs);
    bool Signed = Bin.Lhs->Ty->isInt() && Bin.Lhs->Ty->Signed;
    switch (Bin.Op) {
    case BinaryOp::Add: return B->binary(Opcode::Add, L, R);
    case BinaryOp::Sub: return B->binary(Opcode::Sub, L, R);
    case BinaryOp::Mul: return B->binary(Opcode::Mul, L, R);
    case BinaryOp::Div:
      return B->binary(Signed ? Opcode::SDiv : Opcode::UDiv, L, R);
    case BinaryOp::Rem:
      return B->binary(Signed ? Opcode::SRem : Opcode::URem, L, R);
    case BinaryOp::And: return B->binary(Opcode::And, L, R);
    case BinaryOp::Or:  return B->binary(Opcode::Or, L, R);
    case BinaryOp::Xor: return B->binary(Opcode::Xor, L, R);
    case BinaryOp::Shl: return B->binary(Opcode::Shl, L, R);
    case BinaryOp::Shr:
      return B->binary(Signed ? Opcode::AShr : Opcode::LShr, L, R);
    case BinaryOp::Lt:
      return B->compare(Signed ? Opcode::Slt : Opcode::Ult, L, R);
    case BinaryOp::Le:
      return B->compare(Signed ? Opcode::Sle : Opcode::Ule, L, R);
    case BinaryOp::Gt:
      return B->compare(Signed ? Opcode::Sgt : Opcode::Ugt, L, R);
    case BinaryOp::Ge:
      return B->compare(Signed ? Opcode::Sge : Opcode::Uge, L, R);
    case BinaryOp::Eq: return B->compare(Opcode::Eq, L, R);
    case BinaryOp::Ne: return B->compare(Opcode::Ne, L, R);
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      break;
    }
    fatalError("unreachable binary op");
  }

  case Expr::Kind::Cast: {
    auto &C = static_cast<CastExpr &>(E);
    Value *S = genExpr(*C.Sub);
    Type To = lowerScalar(C.Target);
    const Type &From = S->getType();
    if (From == To)
      return S;
    if (To.Bits > From.Bits) {
      bool Signed = C.Sub->Ty->isInt() && C.Sub->Ty->Signed;
      return Signed ? B->sext(S, To) : B->zext(S, To);
    }
    return B->trunc(S, To);
  }

  case Expr::Kind::New: {
    auto &N = static_cast<NewExpr &>(E);
    Value *Count = genExpr(*N.Count);
    return B->malloc_(lowerElem(N.ElemTy), Count);
  }

  case Expr::Kind::AddrOf: {
    auto &A = static_cast<AddrOfExpr &>(E);
    return genAddr(*A.Base);
  }

  case Expr::Kind::Call: {
    auto &C = static_cast<CallExpr &>(E);
    if (!C.Resolved) {
      // Builtins.
      if (C.Callee == "input_arg")
        return B->inputArg(static_cast<unsigned>(
            static_cast<IntLitExpr *>(C.Args[0].get())->Value));
      if (C.Callee == "input_byte")
        return B->inputByte();
      if (C.Callee == "input_size")
        return B->inputSize();
      if (C.Callee == "print")
        return B->print(genExpr(*C.Args[0]));
      if (C.Callee == "spawn") {
        auto *FRef = static_cast<VarRefExpr *>(C.Args[0].get());
        return B->spawn(FuncMap.at(FRef->Binding.Func), genExpr(*C.Args[1]));
      }
      if (C.Callee == "join")
        return B->join(genExpr(*C.Args[0]));
      if (C.Callee == "lock")
        return B->mutexLock(
            static_cast<IntLitExpr *>(C.Args[0].get())->Value);
      if (C.Callee == "unlock")
        return B->mutexUnlock(
            static_cast<IntLitExpr *>(C.Args[0].get())->Value);
      fatalError("unknown builtin '" + C.Callee + "'");
    }
    std::vector<Value *> Args;
    for (auto &A : C.Args)
      Args.push_back(genExpr(*A));
    return B->call(FuncMap.at(C.Resolved), Args);
  }
  }
  fatalError("unreachable expression kind");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Codegen::genStmt(Stmt &S) {
  if (terminated())
    return; // Dead code after return/abort/break.

  switch (S.K) {
  case Stmt::Kind::Block:
    for (auto &Sub : static_cast<BlockStmt &>(S).Stmts)
      genStmt(*Sub);
    return;

  case Stmt::Kind::VarDecl: {
    auto &D = static_cast<VarDeclStmt &>(S);
    Instruction *Slot;
    if (D.DeclTy->isArray())
      Slot = createSlot(lowerElem(D.DeclTy->Elem), D.DeclTy->NumElems,
                        D.Name);
    else
      Slot = createSlot(lowerElem(D.DeclTy), 1, D.Name);
    LocalSlots[&D] = Slot;
    if (D.Init)
      B->store(genExpr(*D.Init), Slot);
    return;
  }

  case Stmt::Kind::Assign: {
    auto &A = static_cast<AssignStmt &>(S);
    Value *Addr = genAddr(*A.Lhs);
    B->store(genExpr(*A.Rhs), Addr);
    return;
  }

  case Stmt::Kind::If: {
    auto &I = static_cast<IfStmt &>(S);
    Value *Cond = genExpr(*I.Cond);
    BasicBlock *ThenBB = newBlock("if.then");
    BasicBlock *ElseBB = I.Else ? newBlock("if.else") : nullptr;
    BasicBlock *EndBB = newBlock("if.end");
    B->condBr(Cond, ThenBB, ElseBB ? ElseBB : EndBB);
    B->setInsertPoint(ThenBB);
    genStmt(*I.Then);
    if (!terminated())
      B->br(EndBB);
    if (ElseBB) {
      B->setInsertPoint(ElseBB);
      genStmt(*I.Else);
      if (!terminated())
        B->br(EndBB);
    }
    B->setInsertPoint(EndBB);
    return;
  }

  case Stmt::Kind::While: {
    auto &W = static_cast<WhileStmt &>(S);
    BasicBlock *CondBB = newBlock("while.cond");
    BasicBlock *BodyBB = newBlock("while.body");
    BasicBlock *EndBB = newBlock("while.end");
    B->br(CondBB);
    B->setInsertPoint(CondBB);
    Value *Cond = genExpr(*W.Cond);
    B->condBr(Cond, BodyBB, EndBB);
    B->setInsertPoint(BodyBB);
    LoopStack.push_back({CondBB, EndBB});
    genStmt(*W.Body);
    LoopStack.pop_back();
    if (!terminated())
      B->br(CondBB);
    B->setInsertPoint(EndBB);
    return;
  }

  case Stmt::Kind::For: {
    auto &F = static_cast<ForStmt &>(S);
    if (F.Init)
      genStmt(*F.Init);
    BasicBlock *CondBB = newBlock("for.cond");
    BasicBlock *BodyBB = newBlock("for.body");
    BasicBlock *StepBB = newBlock("for.step");
    BasicBlock *EndBB = newBlock("for.end");
    B->br(CondBB);
    B->setInsertPoint(CondBB);
    if (F.Cond)
      B->condBr(genExpr(*F.Cond), BodyBB, EndBB);
    else
      B->br(BodyBB);
    B->setInsertPoint(BodyBB);
    LoopStack.push_back({StepBB, EndBB});
    genStmt(*F.Body);
    LoopStack.pop_back();
    if (!terminated())
      B->br(StepBB);
    B->setInsertPoint(StepBB);
    if (F.Step)
      genStmt(*F.Step);
    B->br(CondBB);
    B->setInsertPoint(EndBB);
    return;
  }

  case Stmt::Kind::Break:
    B->br(LoopStack.back().second);
    return;
  case Stmt::Kind::Continue:
    B->br(LoopStack.back().first);
    return;

  case Stmt::Kind::Return: {
    auto &R = static_cast<ReturnStmt &>(S);
    if (R.Value)
      B->ret(genExpr(*R.Value));
    else
      B->ret();
    return;
  }

  case Stmt::Kind::ExprStmt:
    genExpr(*static_cast<ExprStmt &>(S).E);
    return;

  case Stmt::Kind::Assert: {
    auto &A = static_cast<AssertStmt &>(S);
    Value *Cond = genExpr(*A.Cond);
    BasicBlock *OkBB = newBlock("assert.ok");
    BasicBlock *FailBB = newBlock("assert.fail");
    B->condBr(Cond, OkBB, FailBB);
    B->setInsertPoint(FailBB);
    B->abort_(A.Text);
    B->setInsertPoint(OkBB);
    return;
  }

  case Stmt::Kind::Abort:
    B->abort_(static_cast<AbortStmt &>(S).Message);
    return;

  case Stmt::Kind::Delete:
    B->free_(genExpr(*static_cast<DeleteStmt &>(S).Ptr));
    return;
  }
}

//===----------------------------------------------------------------------===//
// Functions / module
//===----------------------------------------------------------------------===//

void Codegen::genFunc(FuncDecl &FD) {
  CurFD = &FD;
  CurF = FuncMap.at(&FD);
  LocalSlots.clear();
  LoopStack.clear();
  BlockCounter = 0;

  BasicBlock *Entry = CurF->createBlock("entry");
  AllocaBlock = Entry;
  BasicBlock *Body = newBlock("body");
  B->setInsertPoint(Body);
  genStmt(*FD.Body);

  // Entry holds only (hoisted) allocas; fall through into the body.
  B->setInsertPoint(Entry);
  B->br(Body);

  // Terminate any open blocks: implicit return (0 for non-void functions;
  // unreachable merge blocks get the same treatment harmlessly).
  for (auto &BB : CurF->blocks()) {
    if (BB->getTerminator())
      continue;
    B->setInsertPoint(BB.get());
    if (CurF->getReturnType().isVoid())
      B->ret();
    else
      B->ret(M->getConstant(CurF->getReturnType(), 0));
  }
}

std::unique_ptr<Module> Codegen::run() {
  M = std::make_unique<Module>();
  B = std::make_unique<IRBuilder>(*M);

  for (auto &G : Prog.Globals) {
    const LangType *Ty = G->Ty;
    Type ElemIr = Ty->isArray() ? lowerElem(Ty->Elem) : lowerElem(Ty);
    uint64_t Count = Ty->isArray() ? Ty->NumElems : 1;
    GlobalMap[G.get()] = M->createGlobal(G->Name, ElemIr, Count, G->Init);
  }

  for (auto &F : Prog.Funcs) {
    std::vector<Type> ArgTys;
    for (auto &P : F->Params)
      ArgTys.push_back(lowerScalar(P.Ty));
    Function *Fn =
        M->createFunction(F->Name, lowerScalar(F->RetTy), std::move(ArgTys));
    for (unsigned I = 0; I < F->Params.size(); ++I)
      Fn->getArg(I)->setName(F->Params[I].Name);
    FuncMap[F.get()] = Fn;
  }

  for (auto &F : Prog.Funcs)
    genFunc(*F);

  M->finalize();
  return std::move(M);
}

CompileResult er::compileMiniLang(const std::string &Source) {
  CompileResult R;
  Lexer Lex(Source);
  std::vector<Token> Tokens;
  if (!Lex.tokenize(Tokens, R.Error))
    return R;

  Program Prog;
  Parser P(std::move(Tokens), Prog);
  if (!P.parseProgram(R.Error))
    return R;

  Sema S(Prog);
  if (!S.run(R.Error))
    return R;

  Codegen CG(Prog);
  std::unique_ptr<Module> M = CG.run();
  std::string VerifyErr;
  if (!verifyModule(*M, &VerifyErr)) {
    R.Error = "internal codegen error: " + VerifyErr;
    return R;
  }
  R.M = std::move(M);
  return R;
}
