//===- Sema.h - MiniLang semantic analysis -----------------------*- C++ -*-===//
///
/// \file
/// Resolves names, checks types, and annotates the AST in place. Codegen
/// assumes a Sema-checked tree.
///
/// Conversion rules: integer literals adapt to the context type when the
/// value fits; same-signedness widenings are implicit; everything else
/// requires an explicit 'as' cast. Pointers compare only against pointers of
/// the same element type or 'null'.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_SEMA_H
#define ER_LANG_SEMA_H

#include "lang/Ast.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace er {
namespace lang {

/// Type-checks and resolves a parsed Program.
class Sema {
public:
  explicit Sema(Program &Prog) : Prog(Prog) {}

  /// Returns true if the program is well-formed; otherwise \p Err describes
  /// the first problem.
  bool run(std::string &Err);

private:
  bool error(unsigned Line, const std::string &Msg);

  bool checkFunc(FuncDecl &F);
  bool checkStmt(Stmt &S);
  bool checkBlock(BlockStmt &B);
  /// Types expression \p E; returns its type or null on error.
  const LangType *checkExpr(Expr &E);
  /// Coerces \p E to \p Target (literal adaptation / implicit widening /
  /// array decay). Returns false and reports on failure.
  bool coerce(ExprPtr &E, const LangType *Target, unsigned Line);
  bool isWideningOk(const LangType *From, const LangType *To) const;

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declareLocal(VarDeclStmt *D);
  NameBinding lookup(const std::string &Name) const;

  Program &Prog;
  FuncDecl *CurFunc = nullptr;
  unsigned LoopDepth = 0;
  std::vector<std::unordered_map<std::string, NameBinding>> Scopes;
  std::string ErrMsg;
};

} // namespace lang
} // namespace er

#endif // ER_LANG_SEMA_H
