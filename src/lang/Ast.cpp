//===- Ast.cpp - TypeTable implementation -------------------------------------===//

#include "lang/Ast.h"

using namespace er::lang;

std::string LangType::str() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Bool:
    return "bool";
  case Kind::Int:
    return (Signed ? "i" : "u") + std::to_string(Bits);
  case Kind::Ptr:
    return "*" + Elem->str();
  case Kind::Array:
    return Elem->str() + "[" + std::to_string(NumElems) + "]";
  }
  return "?";
}

TypeTable::TypeTable() {
  LangType V;
  V.K = LangType::Kind::Void;
  VoidTy = intern(V);
  LangType B;
  B.K = LangType::Kind::Bool;
  B.Bits = 1;
  BoolTy = intern(B);
}

const LangType *TypeTable::intern(LangType T) {
  for (const auto &P : Pool) {
    if (P->K == T.K && P->Bits == T.Bits && P->Signed == T.Signed &&
        P->Elem == T.Elem && P->NumElems == T.NumElems)
      return P.get();
  }
  Pool.push_back(std::make_unique<LangType>(T));
  return Pool.back().get();
}

const LangType *TypeTable::intTy(unsigned Bits, bool Signed) {
  LangType T;
  T.K = LangType::Kind::Int;
  T.Bits = Bits;
  T.Signed = Signed;
  return intern(T);
}

const LangType *TypeTable::ptrTo(const LangType *Elem) {
  LangType T;
  T.K = LangType::Kind::Ptr;
  T.Bits = 64;
  T.Elem = Elem;
  return intern(T);
}

const LangType *TypeTable::arrayOf(const LangType *Elem, uint64_t NumElems) {
  LangType T;
  T.K = LangType::Kind::Array;
  T.Elem = Elem;
  T.NumElems = NumElems;
  return intern(T);
}
