//===- Sema.cpp - MiniLang semantic analysis ----------------------------------===//

#include "lang/Sema.h"

#include "ir/Casting.h"
#include "solver/Expr.h" // maskToWidth
#include "support/Format.h"

using namespace er;
using namespace er::lang;

bool Sema::error(unsigned Line, const std::string &Msg) {
  if (ErrMsg.empty())
    ErrMsg = formatString("line %u: %s", Line, Msg.c_str());
  return false;
}

bool Sema::declareLocal(VarDeclStmt *D) {
  auto &Scope = Scopes.back();
  if (Scope.count(D->Name))
    return error(D->Line, "redeclaration of '" + D->Name + "'");
  NameBinding B;
  B.K = NameBinding::Kind::Local;
  B.Local = D;
  Scope.emplace(D->Name, B);
  return true;
}

NameBinding Sema::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  if (CurFunc)
    for (auto &P : CurFunc->Params)
      if (P.Name == Name) {
        NameBinding B;
        B.K = NameBinding::Kind::Param;
        B.Param = &P;
        return B;
      }
  if (GlobalDecl *G = Prog.findGlobal(Name)) {
    NameBinding B;
    B.K = NameBinding::Kind::Global;
    B.Global = G;
    return B;
  }
  if (FuncDecl *F = Prog.findFunc(Name)) {
    NameBinding B;
    B.K = NameBinding::Kind::Func;
    B.Func = F;
    return B;
  }
  return NameBinding();
}

bool Sema::isWideningOk(const LangType *From, const LangType *To) const {
  return From->isInt() && To->isInt() && From->Signed == To->Signed &&
         To->Bits > From->Bits;
}

bool Sema::coerce(ExprPtr &E, const LangType *Target, unsigned Line) {
  const LangType *Ty = E->Ty;
  if (Ty == Target)
    return true;

  // Integer literals adapt to any integer target when the value fits.
  if (E->K == Expr::Kind::IntLit && Target->isInt()) {
    auto *Lit = static_cast<IntLitExpr *>(E.get());
    uint64_t Masked = maskToWidth(Lit->Value, Target->Bits);
    // Accept either unsigned fit or a negative-looking 64-bit literal that
    // survives truncation (e.g. -1 written through unary minus is folded
    // later; raw literals here are non-negative).
    if (Masked != Lit->Value && Target->Bits < 64)
      return error(Line, formatString("literal %llu does not fit in %s",
                                      static_cast<unsigned long long>(
                                          Lit->Value),
                                      Target->str().c_str()));
    E->Ty = Target;
    return true;
  }
  // Negated literal: -c adapts too.
  if (E->K == Expr::Kind::Unary && Target->isInt()) {
    auto *U = static_cast<UnaryExpr *>(E.get());
    if (U->Op == UnaryOp::Neg && U->Sub->K == Expr::Kind::IntLit) {
      U->Sub->Ty = Target;
      E->Ty = Target;
      return true;
    }
  }

  if (isWideningOk(Ty, Target)) {
    auto C = std::make_unique<CastExpr>(std::move(E), Target);
    C->Line = Line;
    C->Ty = Target;
    E = std::move(C);
    return true;
  }

  // Array-to-pointer decay.
  if (Ty->isArray() && Target->isPtr() && Ty->Elem == Target->Elem) {
    E->Ty = Target;
    return true;
  }

  // Null adapts to any pointer type.
  if (E->K == Expr::Kind::NullLit && Target->isPtr()) {
    E->Ty = Target;
    return true;
  }

  return error(Line, "cannot convert " + Ty->str() + " to " + Target->str() +
                         " (use 'as')");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const LangType *Sema::checkExpr(Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    E.Ty = static_cast<IntLitExpr &>(E).IsChar ? Prog.Types.u8()
                                               : Prog.Types.i64();
    return E.Ty;
  case Expr::Kind::BoolLit:
    E.Ty = Prog.Types.boolTy();
    return E.Ty;
  case Expr::Kind::NullLit:
    E.Ty = Prog.Types.ptrTo(Prog.Types.u8());
    return E.Ty;

  case Expr::Kind::VarRef: {
    auto &V = static_cast<VarRefExpr &>(E);
    V.Binding = lookup(V.Name);
    switch (V.Binding.K) {
    case NameBinding::Kind::Local:
      E.Ty = V.Binding.Local->DeclTy;
      return E.Ty;
    case NameBinding::Kind::Param:
      E.Ty = V.Binding.Param->Ty;
      return E.Ty;
    case NameBinding::Kind::Global:
      E.Ty = V.Binding.Global->Ty;
      return E.Ty;
    case NameBinding::Kind::Func:
      error(E.Line, "function '" + V.Name + "' used as a value");
      return nullptr;
    case NameBinding::Kind::None:
      error(E.Line, "use of undeclared identifier '" + V.Name + "'");
      return nullptr;
    }
    return nullptr;
  }

  case Expr::Kind::Index: {
    auto &I = static_cast<IndexExpr &>(E);
    const LangType *BaseTy = checkExpr(*I.Base);
    if (!BaseTy)
      return nullptr;
    if (!BaseTy->isArray() && !BaseTy->isPtr()) {
      error(E.Line, "cannot index a " + BaseTy->str());
      return nullptr;
    }
    const LangType *IdxTy = checkExpr(*I.Idx);
    if (!IdxTy)
      return nullptr;
    if (!IdxTy->isInt() && I.Idx->K != Expr::Kind::IntLit) {
      error(E.Line, "index must be an integer");
      return nullptr;
    }
    E.Ty = BaseTy->Elem;
    return E.Ty;
  }

  case Expr::Kind::Unary: {
    auto &U = static_cast<UnaryExpr &>(E);
    const LangType *SubTy = checkExpr(*U.Sub);
    if (!SubTy)
      return nullptr;
    switch (U.Op) {
    case UnaryOp::Neg:
    case UnaryOp::BitNot:
      if (!SubTy->isInt()) {
        error(E.Line, "unary operator requires an integer");
        return nullptr;
      }
      E.Ty = SubTy;
      return E.Ty;
    case UnaryOp::Not:
      if (!SubTy->isBool()) {
        error(E.Line, "'!' requires a bool");
        return nullptr;
      }
      E.Ty = SubTy;
      return E.Ty;
    }
    return nullptr;
  }

  case Expr::Kind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    if (B.Op == BinaryOp::LogAnd || B.Op == BinaryOp::LogOr) {
      const LangType *L = checkExpr(*B.Lhs);
      const LangType *R = checkExpr(*B.Rhs);
      if (!L || !R)
        return nullptr;
      if (!L->isBool() || !R->isBool()) {
        error(E.Line, "logical operator requires bool operands");
        return nullptr;
      }
      E.Ty = Prog.Types.boolTy();
      return E.Ty;
    }

    const LangType *L = checkExpr(*B.Lhs);
    const LangType *R = checkExpr(*B.Rhs);
    if (!L || !R)
      return nullptr;

    bool IsCmp = B.Op == BinaryOp::Lt || B.Op == BinaryOp::Le ||
                 B.Op == BinaryOp::Gt || B.Op == BinaryOp::Ge ||
                 B.Op == BinaryOp::Eq || B.Op == BinaryOp::Ne;

    // Pointer equality (against pointer or null).
    if ((L->isPtr() || R->isPtr()) &&
        (B.Op == BinaryOp::Eq || B.Op == BinaryOp::Ne)) {
      if (L->isPtr() && !coerce(B.Rhs, L, E.Line))
        return nullptr;
      if (!L->isPtr() && !coerce(B.Lhs, R, E.Line))
        return nullptr;
      E.Ty = Prog.Types.boolTy();
      return E.Ty;
    }

    // Unify operand types: adapt literals, then try widening either side.
    if (L != R) {
      if (B.Rhs->K == Expr::Kind::IntLit ||
          (B.Rhs->K == Expr::Kind::Unary && L->isInt())) {
        if (!coerce(B.Rhs, L, E.Line))
          return nullptr;
        R = L;
      } else if (B.Lhs->K == Expr::Kind::IntLit) {
        if (!coerce(B.Lhs, R, E.Line))
          return nullptr;
        L = R;
      } else if (isWideningOk(L, R)) {
        if (!coerce(B.Lhs, R, E.Line))
          return nullptr;
        L = R;
      } else if (isWideningOk(R, L)) {
        if (!coerce(B.Rhs, L, E.Line))
          return nullptr;
        R = L;
      } else {
        error(E.Line, "operand type mismatch: " + L->str() + " vs " +
                          R->str());
        return nullptr;
      }
    }
    if (!L->isInt()) {
      error(E.Line, "arithmetic requires integer operands");
      return nullptr;
    }
    E.Ty = IsCmp ? Prog.Types.boolTy() : L;
    return E.Ty;
  }

  case Expr::Kind::Cast: {
    auto &C = static_cast<CastExpr &>(E);
    const LangType *SubTy = checkExpr(*C.Sub);
    if (!SubTy)
      return nullptr;
    bool Ok = (SubTy->isInt() || SubTy->isBool()) &&
              (C.Target->isInt() || C.Target->isBool());
    if (!Ok) {
      error(E.Line, "invalid cast from " + SubTy->str() + " to " +
                        C.Target->str());
      return nullptr;
    }
    E.Ty = C.Target;
    return E.Ty;
  }

  case Expr::Kind::New: {
    auto &N = static_cast<NewExpr &>(E);
    if (!checkExpr(*N.Count))
      return nullptr;
    if (!coerce(N.Count, Prog.Types.i64(), E.Line))
      return nullptr;
    E.Ty = Prog.Types.ptrTo(N.ElemTy);
    return E.Ty;
  }

  case Expr::Kind::AddrOf: {
    auto &A = static_cast<AddrOfExpr &>(E);
    const LangType *BaseTy = checkExpr(*A.Base);
    if (!BaseTy)
      return nullptr;
    if (A.Base->K == Expr::Kind::Index) {
      E.Ty = Prog.Types.ptrTo(BaseTy);
      return E.Ty;
    }
    // &var: pointer to the variable's storage.
    if (BaseTy->isArray())
      E.Ty = Prog.Types.ptrTo(BaseTy->Elem);
    else
      E.Ty = Prog.Types.ptrTo(BaseTy);
    return E.Ty;
  }

  case Expr::Kind::Call: {
    auto &C = static_cast<CallExpr &>(E);
    auto CheckArgs = [&](size_t N) {
      if (C.Args.size() != N) {
        error(E.Line, formatString("%s expects %zu argument(s)",
                                   C.Callee.c_str(), N));
        return false;
      }
      for (auto &A : C.Args)
        if (!checkExpr(*A))
          return false;
      return true;
    };

    // Builtins.
    if (C.Callee == "input_arg") {
      if (!CheckArgs(1))
        return nullptr;
      if (C.Args[0]->K != Expr::Kind::IntLit) {
        error(E.Line, "input_arg index must be a literal");
        return nullptr;
      }
      E.Ty = Prog.Types.i64();
      return E.Ty;
    }
    if (C.Callee == "input_byte") {
      if (!CheckArgs(0))
        return nullptr;
      E.Ty = Prog.Types.u8();
      return E.Ty;
    }
    if (C.Callee == "input_size") {
      if (!CheckArgs(0))
        return nullptr;
      E.Ty = Prog.Types.i64();
      return E.Ty;
    }
    if (C.Callee == "print") {
      if (!CheckArgs(1))
        return nullptr;
      if (!C.Args[0]->Ty->isScalar()) {
        error(E.Line, "print requires a scalar");
        return nullptr;
      }
      E.Ty = Prog.Types.voidTy();
      return E.Ty;
    }
    if (C.Callee == "spawn") {
      if (C.Args.size() != 2) {
        error(E.Line, "spawn expects (function, pointer)");
        return nullptr;
      }
      if (C.Args[0]->K != Expr::Kind::VarRef) {
        error(E.Line, "spawn's first argument must name a function");
        return nullptr;
      }
      auto *FRef = static_cast<VarRefExpr *>(C.Args[0].get());
      FuncDecl *Entry = Prog.findFunc(FRef->Name);
      if (!Entry || Entry->Params.size() != 1 ||
          !Entry->Params[0].Ty->isPtr()) {
        error(E.Line, "spawn target must be fn(p: *T)");
        return nullptr;
      }
      FRef->Binding.K = NameBinding::Kind::Func;
      FRef->Binding.Func = Entry;
      FRef->Ty = Prog.Types.voidTy();
      if (!checkExpr(*C.Args[1]))
        return nullptr;
      if (!coerce(C.Args[1], Entry->Params[0].Ty, E.Line))
        return nullptr;
      E.Ty = Prog.Types.i64();
      return E.Ty;
    }
    if (C.Callee == "join") {
      if (!CheckArgs(1))
        return nullptr;
      if (!coerce(C.Args[0], Prog.Types.i64(), E.Line))
        return nullptr;
      E.Ty = Prog.Types.voidTy();
      return E.Ty;
    }
    if (C.Callee == "lock" || C.Callee == "unlock") {
      if (!CheckArgs(1))
        return nullptr;
      if (C.Args[0]->K != Expr::Kind::IntLit) {
        error(E.Line, C.Callee + " requires a literal mutex id");
        return nullptr;
      }
      E.Ty = Prog.Types.voidTy();
      return E.Ty;
    }

    // User functions.
    FuncDecl *F = Prog.findFunc(C.Callee);
    if (!F) {
      error(E.Line, "call to undeclared function '" + C.Callee + "'");
      return nullptr;
    }
    C.Resolved = F;
    if (C.Args.size() != F->Params.size()) {
      error(E.Line, formatString("'%s' expects %zu argument(s), got %zu",
                                 C.Callee.c_str(), F->Params.size(),
                                 C.Args.size()));
      return nullptr;
    }
    for (size_t I = 0; I < C.Args.size(); ++I) {
      if (!checkExpr(*C.Args[I]))
        return nullptr;
      if (!coerce(C.Args[I], F->Params[I].Ty, E.Line))
        return nullptr;
    }
    E.Ty = F->RetTy;
    return E.Ty;
  }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Sema::checkBlock(BlockStmt &B) {
  pushScope();
  for (auto &S : B.Stmts)
    if (!checkStmt(*S)) {
      popScope();
      return false;
    }
  popScope();
  return true;
}

bool Sema::checkStmt(Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block:
    return checkBlock(static_cast<BlockStmt &>(S));

  case Stmt::Kind::VarDecl: {
    auto &D = static_cast<VarDeclStmt &>(S);
    if (D.DeclTy->isVoid())
      return error(S.Line, "variable cannot be void");
    if (D.Init) {
      if (D.DeclTy->isArray())
        return error(S.Line, "array locals cannot have initialisers");
      if (!checkExpr(*D.Init))
        return false;
      if (!coerce(D.Init, D.DeclTy, S.Line))
        return false;
    }
    return declareLocal(&D);
  }

  case Stmt::Kind::Assign: {
    auto &A = static_cast<AssignStmt &>(S);
    if (!checkExpr(*A.Lhs))
      return false;
    if (A.Lhs->K == Expr::Kind::VarRef) {
      auto &V = static_cast<VarRefExpr &>(*A.Lhs);
      if (V.Binding.K == NameBinding::Kind::Param)
        return error(S.Line, "parameters are immutable; copy to a var");
      if (V.Binding.K == NameBinding::Kind::Global && V.Ty->isArray())
        return error(S.Line, "cannot assign a whole array");
      if (V.Ty->isArray())
        return error(S.Line, "cannot assign a whole array");
    }
    if (!checkExpr(*A.Rhs))
      return false;
    return coerce(A.Rhs, A.Lhs->Ty, S.Line);
  }

  case Stmt::Kind::If: {
    auto &I = static_cast<IfStmt &>(S);
    if (!checkExpr(*I.Cond))
      return false;
    if (!I.Cond->Ty->isBool())
      return error(S.Line, "if condition must be bool");
    if (!checkStmt(*I.Then))
      return false;
    return !I.Else || checkStmt(*I.Else);
  }

  case Stmt::Kind::While: {
    auto &W = static_cast<WhileStmt &>(S);
    if (!checkExpr(*W.Cond))
      return false;
    if (!W.Cond->Ty->isBool())
      return error(S.Line, "while condition must be bool");
    ++LoopDepth;
    bool Ok = checkStmt(*W.Body);
    --LoopDepth;
    return Ok;
  }

  case Stmt::Kind::For: {
    auto &F = static_cast<ForStmt &>(S);
    pushScope(); // For-init scope covers cond/step/body.
    bool Ok = true;
    if (F.Init)
      Ok = checkStmt(*F.Init);
    if (Ok && F.Cond) {
      Ok = checkExpr(*F.Cond) != nullptr;
      if (Ok && !F.Cond->Ty->isBool())
        Ok = error(S.Line, "for condition must be bool");
    }
    if (Ok && F.Step)
      Ok = checkStmt(*F.Step);
    if (Ok) {
      ++LoopDepth;
      Ok = checkStmt(*F.Body);
      --LoopDepth;
    }
    popScope();
    return Ok;
  }

  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      return error(S.Line, "break/continue outside a loop");
    return true;

  case Stmt::Kind::Return: {
    auto &R = static_cast<ReturnStmt &>(S);
    if (CurFunc->RetTy->isVoid()) {
      if (R.Value)
        return error(S.Line, "void function returns a value");
      return true;
    }
    if (!R.Value)
      return error(S.Line, "non-void function must return a value");
    if (!checkExpr(*R.Value))
      return false;
    return coerce(R.Value, CurFunc->RetTy, S.Line);
  }

  case Stmt::Kind::ExprStmt:
    return checkExpr(*static_cast<ExprStmt &>(S).E) != nullptr;

  case Stmt::Kind::Assert: {
    auto &A = static_cast<AssertStmt &>(S);
    if (!checkExpr(*A.Cond))
      return false;
    if (!A.Cond->Ty->isBool())
      return error(S.Line, "assert condition must be bool");
    A.Text = formatString("assertion failed at line %u", S.Line);
    return true;
  }

  case Stmt::Kind::Abort:
    return true;

  case Stmt::Kind::Delete: {
    auto &D = static_cast<DeleteStmt &>(S);
    if (!checkExpr(*D.Ptr))
      return false;
    if (!D.Ptr->Ty->isPtr())
      return error(S.Line, "delete requires a pointer");
    return true;
  }
  }
  return false;
}

bool Sema::checkFunc(FuncDecl &F) {
  CurFunc = &F;
  LoopDepth = 0;
  Scopes.clear();
  pushScope();
  for (auto &P : F.Params)
    if (P.Ty->isArray() || P.Ty->isVoid())
      return error(F.Line, "parameters must be scalar types");
  bool Ok = checkStmt(*F.Body);
  popScope();
  CurFunc = nullptr;
  return Ok;
}

bool Sema::run(std::string &Err) {
  // Duplicate checks.
  for (size_t I = 0; I < Prog.Funcs.size(); ++I)
    for (size_t J = I + 1; J < Prog.Funcs.size(); ++J)
      if (Prog.Funcs[I]->Name == Prog.Funcs[J]->Name)
        return error(Prog.Funcs[J]->Line,
                     "duplicate function '" + Prog.Funcs[J]->Name + "'"),
               Err = ErrMsg,
               false;
  for (size_t I = 0; I < Prog.Globals.size(); ++I)
    for (size_t J = I + 1; J < Prog.Globals.size(); ++J)
      if (Prog.Globals[I]->Name == Prog.Globals[J]->Name)
        return error(Prog.Globals[J]->Line,
                     "duplicate global '" + Prog.Globals[J]->Name + "'"),
               Err = ErrMsg,
               false;

  FuncDecl *Main = Prog.findFunc("main");
  if (!Main) {
    Err = "program has no 'main' function";
    return false;
  }
  if (!Main->Params.empty() || Main->RetTy != Prog.Types.i64()) {
    Err = "main must be 'fn main() -> i64'";
    return false;
  }

  for (auto &F : Prog.Funcs)
    if (!checkFunc(*F)) {
      Err = ErrMsg;
      return false;
    }
  return true;
}
