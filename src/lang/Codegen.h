//===- Codegen.h - MiniLang to IR lowering -----------------------*- C++ -*-===//
///
/// \file
/// Lowers a Sema-checked Program to the register IR. Mutable locals become
/// allocas (the IR has no phis); short-circuit booleans route through i1
/// slots; for/while lower to explicit block graphs.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_CODEGEN_H
#define ER_LANG_CODEGEN_H

#include "ir/Builder.h"
#include "ir/IR.h"
#include "lang/Ast.h"

#include <memory>
#include <unordered_map>

namespace er {
namespace lang {

/// Generates a Module from a checked Program.
class Codegen {
public:
  explicit Codegen(Program &Prog) : Prog(Prog) {}

  /// Produces the IR module (finalized and verified by the caller).
  std::unique_ptr<Module> run();

private:
  Type lowerScalar(const LangType *Ty) const;
  Type lowerElem(const LangType *Ty) const;

  void genFunc(FuncDecl &FD);
  void genStmt(Stmt &S);
  Value *genExpr(Expr &E);
  /// Computes the address of an lvalue (VarRef to array/scalar slot, or
  /// Index element).
  Value *genAddr(Expr &E);
  Value *genIndexValue(Expr &Idx);
  bool terminated() const;
  BasicBlock *newBlock(const std::string &Hint);
  /// Emits an alloca into the function's entry block (allocas are hoisted so
  /// each call allocates each local exactly once).
  Instruction *createSlot(Type ElemTy, uint64_t Count, std::string Name);

  Program &Prog;
  std::unique_ptr<Module> M;
  std::unique_ptr<IRBuilder> B;
  std::unordered_map<const FuncDecl *, Function *> FuncMap;
  std::unordered_map<const GlobalDecl *, GlobalVariable *> GlobalMap;
  std::unordered_map<const VarDeclStmt *, Instruction *> LocalSlots;
  FuncDecl *CurFD = nullptr;
  Function *CurF = nullptr;
  BasicBlock *AllocaBlock = nullptr;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopStack;
  unsigned BlockCounter = 0;
};

} // namespace lang

/// End-to-end MiniLang compilation: lex, parse, check, lower, verify.
/// Returns the module or an error message.
struct CompileResult {
  std::unique_ptr<Module> M;
  std::string Error;
  bool ok() const { return M != nullptr; }
};

CompileResult compileMiniLang(const std::string &Source);

} // namespace er

#endif // ER_LANG_CODEGEN_H
