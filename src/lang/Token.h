//===- Token.h - MiniLang tokens ---------------------------------*- C++ -*-===//
///
/// \file
/// Token kinds and the token record produced by the lexer.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_TOKEN_H
#define ER_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace er {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  StrLiteral,
  CharLiteral,

  // Keywords.
  KwFn, KwVar, KwGlobal, KwIf, KwElse, KwWhile, KwFor, KwBreak, KwContinue,
  KwReturn, KwTrue, KwFalse, KwNull, KwAssert, KwAbort, KwAs, KwNew, KwDelete,
  KwBool, KwI8, KwU8, KwI16, KwU16, KwI32, KwU32, KwI64, KwU64, KwVoid,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Colon, Arrow,

  // Operators.
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Le, Gt, Ge, EqEq, BangEq,
  AmpAmp, PipePipe,
  Assign,
};

const char *tokKindName(TokKind K);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;     ///< Identifier or string/char literal contents.
  uint64_t IntValue = 0;///< IntLiteral / CharLiteral value.
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace er

#endif // ER_LANG_TOKEN_H
