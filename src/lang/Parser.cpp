//===- Parser.cpp - MiniLang recursive-descent parser -------------------------===//
//
// Grammar (EBNF-ish):
//
//   program    := (global | func)*
//   global     := 'global' ident ':' type ('=' ginit)? ';'
//   ginit      := intlit | charlit | strlit | '{' intlit (',' intlit)* '}'
//   type       := scalar ('[' intlit ']')?
//   scalar     := ('*')* basetype
//   basetype   := 'bool' | 'i8' | 'u8' | ... | 'u64'
//   func       := 'fn' ident '(' (param (',' param)*)? ')' ('->' type)? block
//   param      := ident ':' scalar
//   block      := '{' stmt* '}'
//   stmt       := simple ';' | if | while | for | block
//   simple     := vardecl | assign-or-expr | 'break' | 'continue'
//              |  'return' expr? | 'assert' '(' expr ')'
//              |  'abort' '(' strlit? ')' | 'delete' expr
//   expr       := binary expression over cast-expr with C precedence,
//                 including '&&' and '||'
//   castexpr   := unary ('as' scalar)*
//   unary      := ('-' | '!' | '~') unary | '&' postfix | postfix
//   postfix    := primary ('[' expr ']')*
//   primary    := literal | ident ('(' args ')')? | '(' expr ')'
//              |  'new' scalar '[' expr ']'
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "support/Format.h"

using namespace er;
using namespace er::lang;

namespace {
/// RAII depth bump for the recursion bound; callers check the limit before
/// constructing one.
struct DepthGuard {
  unsigned &D;
  explicit DepthGuard(unsigned &D) : D(D) { ++D; }
  ~DepthGuard() { --D; }
};
} // namespace

const Token &Parser::peek(unsigned Ahead) const {
  size_t Idx = Pos + Ahead;
  return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::error(const std::string &Msg) {
  if (ErrMsg.empty())
    ErrMsg = formatString("line %u: %s", peek().Line, Msg.c_str());
  return false;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  return error(formatString("expected %s %s, found %s", tokKindName(K),
                            Context, tokKindName(peek().Kind)));
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const LangType *Parser::parseScalarType() {
  if (Depth >= MaxNestingDepth) {
    error("type nesting too deep");
    return nullptr;
  }
  DepthGuard G(Depth);
  if (accept(TokKind::Star)) {
    const LangType *Elem = parseScalarType();
    return Elem ? Prog.Types.ptrTo(Elem) : nullptr;
  }
  switch (peek().Kind) {
  case TokKind::KwBool: advance(); return Prog.Types.boolTy();
  case TokKind::KwI8:   advance(); return Prog.Types.intTy(8, true);
  case TokKind::KwU8:   advance(); return Prog.Types.intTy(8, false);
  case TokKind::KwI16:  advance(); return Prog.Types.intTy(16, true);
  case TokKind::KwU16:  advance(); return Prog.Types.intTy(16, false);
  case TokKind::KwI32:  advance(); return Prog.Types.intTy(32, true);
  case TokKind::KwU32:  advance(); return Prog.Types.intTy(32, false);
  case TokKind::KwI64:  advance(); return Prog.Types.intTy(64, true);
  case TokKind::KwU64:  advance(); return Prog.Types.intTy(64, false);
  default:
    error("expected a type");
    return nullptr;
  }
}

const LangType *Parser::parseType() {
  const LangType *Base = parseScalarType();
  if (!Base)
    return nullptr;
  if (accept(TokKind::LBracket)) {
    if (!check(TokKind::IntLiteral)) {
      error("array size must be an integer literal");
      return nullptr;
    }
    uint64_t N = advance().IntValue;
    if (!expect(TokKind::RBracket, "after array size"))
      return nullptr;
    return Prog.Types.arrayOf(Base, N);
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseGlobal() {
  unsigned Line = peek().Line;
  advance(); // 'global'
  if (!check(TokKind::Identifier))
    return error("expected global name");
  std::string Name = advance().Text;
  if (!expect(TokKind::Colon, "after global name"))
    return false;
  const LangType *Ty = parseType();
  if (!Ty)
    return false;

  std::vector<uint64_t> Init;
  if (accept(TokKind::Assign)) {
    if (check(TokKind::StrLiteral)) {
      for (char C : advance().Text)
        Init.push_back(static_cast<uint8_t>(C));
    } else if (check(TokKind::IntLiteral) || check(TokKind::CharLiteral)) {
      Init.push_back(advance().IntValue);
    } else if (accept(TokKind::LBrace)) {
      do {
        bool Negative = accept(TokKind::Minus);
        if (!check(TokKind::IntLiteral) && !check(TokKind::CharLiteral))
          return error("expected integer in global initialiser");
        uint64_t V = advance().IntValue;
        Init.push_back(Negative ? static_cast<uint64_t>(-static_cast<int64_t>(V))
                                : V);
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RBrace, "after global initialiser"))
        return false;
    } else {
      return error("invalid global initialiser");
    }
  }
  if (!expect(TokKind::Semicolon, "after global declaration"))
    return false;

  auto G = std::make_unique<GlobalDecl>();
  G->Name = std::move(Name);
  G->Ty = Ty;
  G->Init = std::move(Init);
  G->Line = Line;
  Prog.Globals.push_back(std::move(G));
  return true;
}

bool Parser::parseFunc() {
  unsigned Line = peek().Line;
  advance(); // 'fn'
  if (!check(TokKind::Identifier))
    return error("expected function name");
  std::string Name = advance().Text;
  if (!expect(TokKind::LParen, "after function name"))
    return false;

  std::vector<ParamDecl> Params;
  if (!check(TokKind::RParen)) {
    do {
      if (!check(TokKind::Identifier))
        return error("expected parameter name");
      ParamDecl P;
      P.Name = advance().Text;
      P.Index = static_cast<unsigned>(Params.size());
      if (!expect(TokKind::Colon, "after parameter name"))
        return false;
      P.Ty = parseScalarType();
      if (!P.Ty)
        return false;
      Params.push_back(std::move(P));
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RParen, "after parameters"))
    return false;

  const LangType *RetTy = Prog.Types.voidTy();
  if (accept(TokKind::Arrow)) {
    RetTy = parseScalarType();
    if (!RetTy)
      return false;
  }

  StmtPtr Body = parseBlock();
  if (!Body)
    return false;

  auto F = std::make_unique<FuncDecl>();
  F->Name = std::move(Name);
  F->Params = std::move(Params);
  F->RetTy = RetTy;
  F->Body = std::move(Body);
  F->Line = Line;
  Prog.Funcs.push_back(std::move(F));
  return true;
}

bool Parser::parseProgram(std::string &Err) {
  while (!check(TokKind::Eof)) {
    bool Ok;
    if (check(TokKind::KwGlobal))
      Ok = parseGlobal();
    else if (check(TokKind::KwFn))
      Ok = parseFunc();
    else
      Ok = error("expected 'global' or 'fn' at top level");
    if (!Ok) {
      Err = ErrMsg;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  if (!expect(TokKind::LBrace, "to open block"))
    return nullptr;
  auto Block = std::make_unique<BlockStmt>();
  Block->Line = peek().Line;
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Block->Stmts.push_back(std::move(S));
  }
  if (!expect(TokKind::RBrace, "to close block"))
    return nullptr;
  return Block;
}

StmtPtr Parser::parseStmt() {
  if (Depth >= MaxNestingDepth) {
    error("statement nesting too deep");
    return nullptr;
  }
  DepthGuard G(Depth);
  StmtOps = 0; // The op budget is per statement (see MaxOpsPerStatement).
  unsigned Line = peek().Line;
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf: {
    advance();
    if (!expect(TokKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokKind::RParen, "after if condition"))
      return nullptr;
    StmtPtr Then = parseBlock();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (accept(TokKind::KwElse)) {
      Else = check(TokKind::KwIf) ? parseStmt() : parseBlock();
      if (!Else)
        return nullptr;
    }
    auto S = std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else));
    S->Line = Line;
    return S;
  }
  case TokKind::KwWhile: {
    advance();
    if (!expect(TokKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokKind::RParen, "after while condition"))
      return nullptr;
    StmtPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto S = std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
    S->Line = Line;
    return S;
  }
  case TokKind::KwFor: {
    advance();
    if (!expect(TokKind::LParen, "after 'for'"))
      return nullptr;
    StmtPtr Init;
    if (!check(TokKind::Semicolon)) {
      Init = parseSimpleStmt(/*RequireSemi=*/false);
      if (!Init)
        return nullptr;
    }
    if (!expect(TokKind::Semicolon, "after for-init"))
      return nullptr;
    ExprPtr Cond;
    if (!check(TokKind::Semicolon)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokKind::Semicolon, "after for-condition"))
      return nullptr;
    StmtPtr Step;
    if (!check(TokKind::RParen)) {
      Step = parseSimpleStmt(/*RequireSemi=*/false);
      if (!Step)
        return nullptr;
    }
    if (!expect(TokKind::RParen, "after for-step"))
      return nullptr;
    StmtPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto S = std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                       std::move(Step), std::move(Body));
    S->Line = Line;
    return S;
  }
  default:
    return parseSimpleStmt(/*RequireSemi=*/true);
  }
}

StmtPtr Parser::parseSimpleStmt(bool RequireSemi) {
  unsigned Line = peek().Line;
  StmtPtr Result;

  switch (peek().Kind) {
  case TokKind::KwVar: {
    advance();
    if (!check(TokKind::Identifier)) {
      error("expected variable name");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (!expect(TokKind::Colon, "after variable name"))
      return nullptr;
    const LangType *Ty = parseType();
    if (!Ty)
      return nullptr;
    ExprPtr Init;
    if (accept(TokKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    Result = std::make_unique<VarDeclStmt>(std::move(Name), Ty,
                                           std::move(Init));
    break;
  }
  case TokKind::KwBreak:
    advance();
    Result = std::make_unique<BreakStmt>();
    break;
  case TokKind::KwContinue:
    advance();
    Result = std::make_unique<ContinueStmt>();
    break;
  case TokKind::KwReturn: {
    advance();
    ExprPtr V;
    if (!check(TokKind::Semicolon)) {
      V = parseExpr();
      if (!V)
        return nullptr;
    }
    Result = std::make_unique<ReturnStmt>(std::move(V));
    break;
  }
  case TokKind::KwAssert: {
    advance();
    if (!expect(TokKind::LParen, "after 'assert'"))
      return nullptr;
    ExprPtr C = parseExpr();
    if (!C || !expect(TokKind::RParen, "after assert condition"))
      return nullptr;
    Result = std::make_unique<AssertStmt>(std::move(C));
    break;
  }
  case TokKind::KwAbort: {
    advance();
    if (!expect(TokKind::LParen, "after 'abort'"))
      return nullptr;
    std::string Msg = "abort";
    if (check(TokKind::StrLiteral))
      Msg = advance().Text;
    if (!expect(TokKind::RParen, "after abort message"))
      return nullptr;
    Result = std::make_unique<AbortStmt>(std::move(Msg));
    break;
  }
  case TokKind::KwDelete: {
    advance();
    ExprPtr P = parseExpr();
    if (!P)
      return nullptr;
    Result = std::make_unique<DeleteStmt>(std::move(P));
    break;
  }
  default: {
    ExprPtr Lhs = parseExpr();
    if (!Lhs)
      return nullptr;
    if (accept(TokKind::Assign)) {
      if (Lhs->K != Expr::Kind::VarRef && Lhs->K != Expr::Kind::Index) {
        error("assignment target must be a variable or element");
        return nullptr;
      }
      ExprPtr Rhs = parseExpr();
      if (!Rhs)
        return nullptr;
      Result = std::make_unique<AssignStmt>(std::move(Lhs), std::move(Rhs));
    } else {
      Result = std::make_unique<ExprStmt>(std::move(Lhs));
    }
    break;
  }
  }

  Result->Line = Line;
  if (RequireSemi && !expect(TokKind::Semicolon, "after statement"))
    return nullptr;
  return Result;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

/// Binary operator precedence (higher binds tighter); -1 = not a binary op.
int precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:  return 10;
  case TokKind::Plus:
  case TokKind::Minus:    return 9;
  case TokKind::Shl:
  case TokKind::Shr:      return 8;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:       return 7;
  case TokKind::EqEq:
  case TokKind::BangEq:   return 6;
  case TokKind::Amp:      return 5;
  case TokKind::Caret:    return 4;
  case TokKind::Pipe:     return 3;
  case TokKind::AmpAmp:   return 2;
  case TokKind::PipePipe: return 1;
  default:                return -1;
  }
}

BinaryOp binOpOf(TokKind K) {
  switch (K) {
  case TokKind::Star:     return BinaryOp::Mul;
  case TokKind::Slash:    return BinaryOp::Div;
  case TokKind::Percent:  return BinaryOp::Rem;
  case TokKind::Plus:     return BinaryOp::Add;
  case TokKind::Minus:    return BinaryOp::Sub;
  case TokKind::Shl:      return BinaryOp::Shl;
  case TokKind::Shr:      return BinaryOp::Shr;
  case TokKind::Lt:       return BinaryOp::Lt;
  case TokKind::Le:       return BinaryOp::Le;
  case TokKind::Gt:       return BinaryOp::Gt;
  case TokKind::Ge:       return BinaryOp::Ge;
  case TokKind::EqEq:     return BinaryOp::Eq;
  case TokKind::BangEq:   return BinaryOp::Ne;
  case TokKind::Amp:      return BinaryOp::And;
  case TokKind::Caret:    return BinaryOp::Xor;
  case TokKind::Pipe:     return BinaryOp::Or;
  case TokKind::AmpAmp:   return BinaryOp::LogAnd;
  case TokKind::PipePipe: return BinaryOp::LogOr;
  default:                return BinaryOp::Add; // Unreachable.
  }
}

} // namespace

ExprPtr Parser::parseExpr() {
  if (Depth >= MaxNestingDepth) {
    error("expression nesting too deep");
    return nullptr;
  }
  DepthGuard G(Depth);
  ExprPtr Lhs = parseCastExpr();
  if (!Lhs)
    return nullptr;
  return parseBinaryRhs(1, std::move(Lhs));
}

ExprPtr Parser::parseBinaryRhs(int MinPrec, ExprPtr Lhs) {
  for (;;) {
    int Prec = precedenceOf(peek().Kind);
    if (Prec < MinPrec)
      return Lhs;
    if (++StmtOps > MaxOpsPerStatement) {
      // A left-leaning spine deepens the AST one node per fold with no
      // parser recursion; bound it so later tree walks stay stack-safe.
      error("expression too complex (operator limit exceeded)");
      return nullptr;
    }
    unsigned Line = peek().Line;
    TokKind OpTok = advance().Kind;
    ExprPtr Rhs = parseCastExpr();
    if (!Rhs)
      return nullptr;
    int NextPrec = precedenceOf(peek().Kind);
    if (NextPrec > Prec) {
      Rhs = parseBinaryRhs(Prec + 1, std::move(Rhs));
      if (!Rhs)
        return nullptr;
    }
    auto E = std::make_unique<BinaryExpr>(binOpOf(OpTok), std::move(Lhs),
                                          std::move(Rhs));
    E->Line = Line;
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseCastExpr() {
  ExprPtr E = parseUnary();
  if (!E)
    return nullptr;
  while (accept(TokKind::KwAs)) {
    unsigned Line = peek().Line;
    const LangType *Ty = parseScalarType();
    if (!Ty)
      return nullptr;
    auto C = std::make_unique<CastExpr>(std::move(E), Ty);
    C->Line = Line;
    E = std::move(C);
  }
  return E;
}

ExprPtr Parser::parseUnary() {
  if (Depth >= MaxNestingDepth) {
    error("expression nesting too deep");
    return nullptr;
  }
  DepthGuard G(Depth);
  unsigned Line = peek().Line;
  if (accept(TokKind::Minus)) {
    ExprPtr S = parseUnary();
    if (!S)
      return nullptr;
    auto E = std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(S));
    E->Line = Line;
    return E;
  }
  if (accept(TokKind::Bang)) {
    ExprPtr S = parseUnary();
    if (!S)
      return nullptr;
    auto E = std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(S));
    E->Line = Line;
    return E;
  }
  if (accept(TokKind::Tilde)) {
    ExprPtr S = parseUnary();
    if (!S)
      return nullptr;
    auto E = std::make_unique<UnaryExpr>(UnaryOp::BitNot, std::move(S));
    E->Line = Line;
    return E;
  }
  if (accept(TokKind::Amp)) {
    ExprPtr S = parsePostfix();
    if (!S)
      return nullptr;
    if (S->K != Expr::Kind::VarRef && S->K != Expr::Kind::Index) {
      error("'&' requires a variable or element");
      return nullptr;
    }
    auto E = std::make_unique<AddrOfExpr>(std::move(S));
    E->Line = Line;
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (accept(TokKind::LBracket)) {
    unsigned Line = peek().Line;
    ExprPtr Idx = parseExpr();
    if (!Idx || !expect(TokKind::RBracket, "after index"))
      return nullptr;
    auto I = std::make_unique<IndexExpr>(std::move(E), std::move(Idx));
    I->Line = Line;
    E = std::move(I);
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  unsigned Line = peek().Line;
  switch (peek().Kind) {
  case TokKind::IntLiteral:
  case TokKind::CharLiteral: {
    bool IsChar = peek().Kind == TokKind::CharLiteral;
    auto E = std::make_unique<IntLitExpr>(advance().IntValue, IsChar);
    E->Line = Line;
    return E;
  }
  case TokKind::KwTrue:
  case TokKind::KwFalse: {
    bool V = advance().Kind == TokKind::KwTrue;
    auto E = std::make_unique<BoolLitExpr>(V);
    E->Line = Line;
    return E;
  }
  case TokKind::KwNull: {
    advance();
    auto E = std::make_unique<NullLitExpr>();
    E->Line = Line;
    return E;
  }
  case TokKind::KwNew: {
    advance();
    const LangType *Elem = parseScalarType();
    if (!Elem)
      return nullptr;
    if (!expect(TokKind::LBracket, "after 'new' element type"))
      return nullptr;
    ExprPtr Count = parseExpr();
    if (!Count || !expect(TokKind::RBracket, "after 'new' count"))
      return nullptr;
    auto E = std::make_unique<NewExpr>(Elem, std::move(Count));
    E->Line = Line;
    return E;
  }
  case TokKind::Identifier: {
    std::string Name = advance().Text;
    if (accept(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(std::move(A));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RParen, "after call arguments"))
        return nullptr;
      auto E = std::make_unique<CallExpr>(std::move(Name), std::move(Args));
      E->Line = Line;
      return E;
    }
    auto E = std::make_unique<VarRefExpr>(std::move(Name));
    E->Line = Line;
    return E;
  }
  case TokKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  default:
    error(formatString("unexpected %s in expression",
                       tokKindName(peek().Kind)));
    return nullptr;
  }
}
