//===- Lexer.cpp - MiniLang lexer ---------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cctype>
#include <unordered_map>

using namespace er;

const char *er::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:         return "end of file";
  case TokKind::Identifier:  return "identifier";
  case TokKind::IntLiteral:  return "integer literal";
  case TokKind::StrLiteral:  return "string literal";
  case TokKind::CharLiteral: return "char literal";
  case TokKind::KwFn:        return "'fn'";
  case TokKind::KwVar:       return "'var'";
  case TokKind::KwGlobal:    return "'global'";
  case TokKind::KwIf:        return "'if'";
  case TokKind::KwElse:      return "'else'";
  case TokKind::KwWhile:     return "'while'";
  case TokKind::KwFor:       return "'for'";
  case TokKind::KwBreak:     return "'break'";
  case TokKind::KwContinue:  return "'continue'";
  case TokKind::KwReturn:    return "'return'";
  case TokKind::KwTrue:      return "'true'";
  case TokKind::KwFalse:     return "'false'";
  case TokKind::KwNull:      return "'null'";
  case TokKind::KwAssert:    return "'assert'";
  case TokKind::KwAbort:     return "'abort'";
  case TokKind::KwAs:        return "'as'";
  case TokKind::KwNew:       return "'new'";
  case TokKind::KwDelete:    return "'delete'";
  case TokKind::KwBool:      return "'bool'";
  case TokKind::KwI8:        return "'i8'";
  case TokKind::KwU8:        return "'u8'";
  case TokKind::KwI16:       return "'i16'";
  case TokKind::KwU16:       return "'u16'";
  case TokKind::KwI32:       return "'i32'";
  case TokKind::KwU32:       return "'u32'";
  case TokKind::KwI64:       return "'i64'";
  case TokKind::KwU64:       return "'u64'";
  case TokKind::KwVoid:      return "'void'";
  case TokKind::LParen:      return "'('";
  case TokKind::RParen:      return "')'";
  case TokKind::LBrace:      return "'{'";
  case TokKind::RBrace:      return "'}'";
  case TokKind::LBracket:    return "'['";
  case TokKind::RBracket:    return "']'";
  case TokKind::Comma:       return "','";
  case TokKind::Semicolon:   return "';'";
  case TokKind::Colon:       return "':'";
  case TokKind::Arrow:       return "'->'";
  case TokKind::Plus:        return "'+'";
  case TokKind::Minus:       return "'-'";
  case TokKind::Star:        return "'*'";
  case TokKind::Slash:       return "'/'";
  case TokKind::Percent:     return "'%'";
  case TokKind::Amp:         return "'&'";
  case TokKind::Pipe:        return "'|'";
  case TokKind::Caret:       return "'^'";
  case TokKind::Tilde:       return "'~'";
  case TokKind::Bang:        return "'!'";
  case TokKind::Shl:         return "'<<'";
  case TokKind::Shr:         return "'>>'";
  case TokKind::Lt:          return "'<'";
  case TokKind::Le:          return "'<='";
  case TokKind::Gt:          return "'>'";
  case TokKind::Ge:          return "'>='";
  case TokKind::EqEq:        return "'=='";
  case TokKind::BangEq:      return "'!='";
  case TokKind::AmpAmp:      return "'&&'";
  case TokKind::PipePipe:    return "'||'";
  case TokKind::Assign:      return "'='";
  }
  fatalError("unknown token kind");
}

static const std::unordered_map<std::string, TokKind> &keywordTable() {
  static const std::unordered_map<std::string, TokKind> Table = {
      {"fn", TokKind::KwFn},           {"var", TokKind::KwVar},
      {"global", TokKind::KwGlobal},   {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
      {"true", TokKind::KwTrue},       {"false", TokKind::KwFalse},
      {"null", TokKind::KwNull},       {"assert", TokKind::KwAssert},
      {"abort", TokKind::KwAbort},     {"as", TokKind::KwAs},
      {"new", TokKind::KwNew},         {"delete", TokKind::KwDelete},
      {"bool", TokKind::KwBool},       {"i8", TokKind::KwI8},
      {"u8", TokKind::KwU8},           {"i16", TokKind::KwI16},
      {"u16", TokKind::KwU16},         {"i32", TokKind::KwI32},
      {"u32", TokKind::KwU32},         {"i64", TokKind::KwI64},
      {"u64", TokKind::KwU64},         {"void", TokKind::KwVoid},
  };
  return Table;
}

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

bool Lexer::lexEscape(char &Out, std::string &Err) {
  char E = advance();
  switch (E) {
  case 'n':  Out = '\n'; return true;
  case 't':  Out = '\t'; return true;
  case 'r':  Out = '\r'; return true;
  case '0':  Out = '\0'; return true;
  case '\\': Out = '\\'; return true;
  case '\'': Out = '\''; return true;
  case '"':  Out = '"'; return true;
  case 'x': {
    int V = 0;
    for (int I = 0; I < 2; ++I) {
      char H = advance();
      if (H >= '0' && H <= '9')
        V = V * 16 + (H - '0');
      else if (H >= 'a' && H <= 'f')
        V = V * 16 + (H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        V = V * 16 + (H - 'A' + 10);
      else {
        Err = formatString("line %u: bad hex escape", Line);
        return false;
      }
    }
    Out = static_cast<char>(V);
    return true;
  }
  default:
    Err = formatString("line %u: unknown escape '\\%c'", Line, E);
    return false;
  }
}

bool Lexer::lexOne(Token &T, std::string &Err) {
  skipTrivia();
  T.Line = Line;
  T.Col = Col;
  if (Pos >= Src.size()) {
    T.Kind = TokKind::Eof;
    return true;
  }

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Ident(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Ident += advance();
    auto It = keywordTable().find(Ident);
    if (It != keywordTable().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokKind::Identifier;
      T.Text = std::move(Ident);
    }
    return true;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    uint64_t V = 0;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool Any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char H = advance();
        Any = true;
        V = V * 16 +
            (H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10);
      }
      if (!Any) {
        Err = formatString("line %u: empty hex literal", Line);
        return false;
      }
    } else {
      V = static_cast<uint64_t>(C - '0');
      while (std::isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + static_cast<uint64_t>(advance() - '0');
    }
    T.Kind = TokKind::IntLiteral;
    T.IntValue = V;
    return true;
  }

  switch (C) {
  case '\'': {
    char V = advance();
    if (V == '\\' && !lexEscape(V, Err))
      return false;
    if (!match('\'')) {
      Err = formatString("line %u: unterminated char literal", Line);
      return false;
    }
    T.Kind = TokKind::CharLiteral;
    T.IntValue = static_cast<uint8_t>(V);
    return true;
  }
  case '"': {
    std::string S;
    while (Pos < Src.size() && peek() != '"') {
      char V = advance();
      if (V == '\\' && !lexEscape(V, Err))
        return false;
      S += V;
    }
    if (!match('"')) {
      Err = formatString("line %u: unterminated string literal", Line);
      return false;
    }
    T.Kind = TokKind::StrLiteral;
    T.Text = std::move(S);
    return true;
  }
  case '(': T.Kind = TokKind::LParen; return true;
  case ')': T.Kind = TokKind::RParen; return true;
  case '{': T.Kind = TokKind::LBrace; return true;
  case '}': T.Kind = TokKind::RBrace; return true;
  case '[': T.Kind = TokKind::LBracket; return true;
  case ']': T.Kind = TokKind::RBracket; return true;
  case ',': T.Kind = TokKind::Comma; return true;
  case ';': T.Kind = TokKind::Semicolon; return true;
  case ':': T.Kind = TokKind::Colon; return true;
  case '+': T.Kind = TokKind::Plus; return true;
  case '-':
    T.Kind = match('>') ? TokKind::Arrow : TokKind::Minus;
    return true;
  case '*': T.Kind = TokKind::Star; return true;
  case '/': T.Kind = TokKind::Slash; return true;
  case '%': T.Kind = TokKind::Percent; return true;
  case '&':
    T.Kind = match('&') ? TokKind::AmpAmp : TokKind::Amp;
    return true;
  case '|':
    T.Kind = match('|') ? TokKind::PipePipe : TokKind::Pipe;
    return true;
  case '^': T.Kind = TokKind::Caret; return true;
  case '~': T.Kind = TokKind::Tilde; return true;
  case '!':
    T.Kind = match('=') ? TokKind::BangEq : TokKind::Bang;
    return true;
  case '<':
    if (match('<'))
      T.Kind = TokKind::Shl;
    else if (match('='))
      T.Kind = TokKind::Le;
    else
      T.Kind = TokKind::Lt;
    return true;
  case '>':
    if (match('>'))
      T.Kind = TokKind::Shr;
    else if (match('='))
      T.Kind = TokKind::Ge;
    else
      T.Kind = TokKind::Gt;
    return true;
  case '=':
    T.Kind = match('=') ? TokKind::EqEq : TokKind::Assign;
    return true;
  default:
    Err = formatString("line %u: unexpected character '%c'", Line, C);
    return false;
  }
}

bool Lexer::tokenize(std::vector<Token> &Out, std::string &Err) {
  for (;;) {
    Token T;
    if (!lexOne(T, Err))
      return false;
    Out.push_back(T);
    if (T.Kind == TokKind::Eof)
      return true;
  }
}
