//===- Ast.h - MiniLang abstract syntax tree ---------------------*- C++ -*-===//
///
/// \file
/// AST node definitions for MiniLang plus the source-level type system. The
/// parser builds this tree; Sema resolves names and annotates nodes with
/// types; Codegen lowers it to IR.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_AST_H
#define ER_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace er {
namespace lang {

//===----------------------------------------------------------------------===//
// Source-level types
//===----------------------------------------------------------------------===//

/// A MiniLang type. Interned by TypeTable; compare by pointer.
struct LangType {
  enum class Kind : uint8_t { Void, Bool, Int, Ptr, Array };
  Kind K = Kind::Void;
  unsigned Bits = 0;           ///< Int width.
  bool Signed = false;         ///< Int signedness.
  const LangType *Elem = nullptr; ///< Ptr/Array element type.
  uint64_t NumElems = 0;       ///< Array size.

  bool isVoid() const { return K == Kind::Void; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isPtr() const { return K == Kind::Ptr; }
  bool isArray() const { return K == Kind::Array; }
  bool isScalar() const { return isBool() || isInt() || isPtr(); }

  std::string str() const;
};

/// Owns and uniques LangType instances.
class TypeTable {
public:
  TypeTable();
  const LangType *voidTy() const { return VoidTy; }
  const LangType *boolTy() const { return BoolTy; }
  const LangType *intTy(unsigned Bits, bool Signed);
  const LangType *ptrTo(const LangType *Elem);
  const LangType *arrayOf(const LangType *Elem, uint64_t NumElems);
  const LangType *i64() { return intTy(64, true); }
  const LangType *u8() { return intTy(8, false); }

private:
  const LangType *intern(LangType T);
  std::vector<std::unique_ptr<LangType>> Pool;
  const LangType *VoidTy;
  const LangType *BoolTy;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct FuncDecl;
struct GlobalDecl;
struct VarDeclStmt;
struct ParamDecl;

/// What an identifier resolved to (filled by Sema).
struct NameBinding {
  enum class Kind : uint8_t { None, Local, Param, Global, Func } K =
      Kind::None;
  VarDeclStmt *Local = nullptr;
  ParamDecl *Param = nullptr;
  GlobalDecl *Global = nullptr;
  FuncDecl *Func = nullptr;
};

struct Expr {
  enum class Kind : uint8_t {
    IntLit, BoolLit, NullLit, VarRef, Index, Call, Unary, Binary, Cast, New,
    AddrOf,
  };
  Kind K;
  unsigned Line = 0;
  /// Filled by Sema.
  const LangType *Ty = nullptr;

  explicit Expr(Kind K) : K(K) {}
  virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  uint64_t Value;
  bool IsChar = false; ///< Char literals default to u8 instead of i64.
  explicit IntLitExpr(uint64_t V, bool IsChar = false)
      : Expr(Kind::IntLit), Value(V), IsChar(IsChar) {}
};

struct BoolLitExpr : Expr {
  bool Value;
  explicit BoolLitExpr(bool V) : Expr(Kind::BoolLit), Value(V) {}
};

struct NullLitExpr : Expr {
  NullLitExpr() : Expr(Kind::NullLit) {}
};

struct VarRefExpr : Expr {
  std::string Name;
  NameBinding Binding;
  explicit VarRefExpr(std::string N) : Expr(Kind::VarRef), Name(std::move(N)) {}
};

struct IndexExpr : Expr {
  ExprPtr Base;
  ExprPtr Idx;
  IndexExpr(ExprPtr B, ExprPtr I)
      : Expr(Kind::Index), Base(std::move(B)), Idx(std::move(I)) {}
};

struct CallExpr : Expr {
  std::string Callee;
  std::vector<ExprPtr> Args;
  FuncDecl *Resolved = nullptr; ///< Null for builtins.
  CallExpr(std::string C, std::vector<ExprPtr> A)
      : Expr(Kind::Call), Callee(std::move(C)), Args(std::move(A)) {}
};

enum class UnaryOp : uint8_t { Neg, Not, BitNot };

struct UnaryExpr : Expr {
  UnaryOp Op;
  ExprPtr Sub;
  UnaryExpr(UnaryOp Op, ExprPtr S)
      : Expr(Kind::Unary), Op(Op), Sub(std::move(S)) {}
};

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogAnd, LogOr,
};

struct BinaryExpr : Expr {
  BinaryOp Op;
  ExprPtr Lhs, Rhs;
  BinaryExpr(BinaryOp Op, ExprPtr L, ExprPtr R)
      : Expr(Kind::Binary), Op(Op), Lhs(std::move(L)), Rhs(std::move(R)) {}
};

struct CastExpr : Expr {
  ExprPtr Sub;
  const LangType *Target;
  CastExpr(ExprPtr S, const LangType *T)
      : Expr(Kind::Cast), Sub(std::move(S)), Target(T) {}
};

struct NewExpr : Expr {
  const LangType *ElemTy;
  ExprPtr Count;
  NewExpr(const LangType *E, ExprPtr C)
      : Expr(Kind::New), ElemTy(E), Count(std::move(C)) {}
};

/// Address of an element: &a[i] (or &a, yielding element 0).
struct AddrOfExpr : Expr {
  ExprPtr Base; ///< VarRef or Index.
  explicit AddrOfExpr(ExprPtr B) : Expr(Kind::AddrOf), Base(std::move(B)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum class Kind : uint8_t {
    VarDecl, Assign, If, While, For, Break, Continue, Return, ExprStmt,
    Assert, Abort, Delete, Block,
  };
  Kind K;
  unsigned Line = 0;
  explicit Stmt(Kind K) : K(K) {}
  virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct VarDeclStmt : Stmt {
  std::string Name;
  const LangType *DeclTy;
  ExprPtr Init; ///< Optional.
  /// Filled by Codegen: the alloca backing this variable.
  void *Slot = nullptr;
  VarDeclStmt(std::string N, const LangType *T, ExprPtr I)
      : Stmt(Kind::VarDecl), Name(std::move(N)), DeclTy(T),
        Init(std::move(I)) {}
};

struct AssignStmt : Stmt {
  ExprPtr Lhs; ///< VarRef or Index.
  ExprPtr Rhs;
  AssignStmt(ExprPtr L, ExprPtr R)
      : Stmt(Kind::Assign), Lhs(std::move(L)), Rhs(std::move(R)) {}
};

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Stmts;
  BlockStmt() : Stmt(Kind::Block) {}
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then; ///< BlockStmt.
  StmtPtr Else; ///< BlockStmt or null.
  IfStmt(ExprPtr C, StmtPtr T, StmtPtr E)
      : Stmt(Kind::If), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt(ExprPtr C, StmtPtr B)
      : Stmt(Kind::While), Cond(std::move(C)), Body(std::move(B)) {}
};

/// C-style for; Init/Step are optional statements (VarDecl/Assign/ExprStmt).
/// 'continue' inside the body jumps to Step, so this is a real node rather
/// than a while-desugaring.
struct ForStmt : Stmt {
  StmtPtr Init;
  ExprPtr Cond; ///< Optional (null = true).
  StmtPtr Step;
  StmtPtr Body;
  ForStmt(StmtPtr I, ExprPtr C, StmtPtr S, StmtPtr B)
      : Stmt(Kind::For), Init(std::move(I)), Cond(std::move(C)),
        Step(std::move(S)), Body(std::move(B)) {}
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(Kind::Break) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(Kind::Continue) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; ///< Optional.
  explicit ReturnStmt(ExprPtr V) : Stmt(Kind::Return), Value(std::move(V)) {}
};

struct ExprStmt : Stmt {
  ExprPtr E;
  explicit ExprStmt(ExprPtr E) : Stmt(Kind::ExprStmt), E(std::move(E)) {}
};

struct AssertStmt : Stmt {
  ExprPtr Cond;
  std::string Text; ///< Pretty-printed condition for the failure message.
  explicit AssertStmt(ExprPtr C) : Stmt(Kind::Assert), Cond(std::move(C)) {}
};

struct AbortStmt : Stmt {
  std::string Message;
  explicit AbortStmt(std::string M)
      : Stmt(Kind::Abort), Message(std::move(M)) {}
};

struct DeleteStmt : Stmt {
  ExprPtr Ptr;
  explicit DeleteStmt(ExprPtr P) : Stmt(Kind::Delete), Ptr(std::move(P)) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  const LangType *Ty;
  unsigned Index = 0;
};

struct FuncDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  const LangType *RetTy;
  StmtPtr Body; ///< BlockStmt.
  unsigned Line = 0;
};

struct GlobalDecl {
  std::string Name;
  const LangType *Ty; ///< Array or scalar type.
  std::vector<uint64_t> Init;
  unsigned Line = 0;
};

/// A parsed translation unit.
struct Program {
  TypeTable Types;
  std::vector<std::unique_ptr<GlobalDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  FuncDecl *findFunc(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
  GlobalDecl *findGlobal(const std::string &Name) const {
    for (const auto &G : Globals)
      if (G->Name == Name)
        return G.get();
    return nullptr;
  }
};

} // namespace lang
} // namespace er

#endif // ER_LANG_AST_H
