//===- Lexer.h - MiniLang lexer ----------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for MiniLang. Supports decimal/hex integer literals,
/// char and string literals with escapes, '//' comments, and the keyword and
/// operator set in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_LEXER_H
#define ER_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace er {

/// Tokenizes a whole source buffer up front.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the entire buffer. Returns false (with \p Err set) on a lexical
  /// error; the token list always ends with Eof on success.
  bool tokenize(std::vector<Token> &Out, std::string &Err);

private:
  bool lexOne(Token &T, std::string &Err);
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipTrivia();
  bool lexEscape(char &Out, std::string &Err);

  std::string Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace er

#endif // ER_LANG_LEXER_H
