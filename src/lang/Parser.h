//===- Parser.h - MiniLang recursive-descent parser --------------*- C++ -*-===//
///
/// \file
/// Builds a Program AST from a token stream. Precedence-layered recursive
/// descent; the grammar is documented in Parser.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_PARSER_H
#define ER_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"

#include <string>
#include <vector>

namespace er {
namespace lang {

/// Parses a token stream into \p Prog.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Program &Prog)
      : Tokens(std::move(Tokens)), Prog(Prog) {}

  /// Returns true on success; on failure \p Err holds a diagnostic.
  bool parseProgram(std::string &Err);

  /// Nesting bound for every recursive production (statements, parenthesized
  /// expressions, unary chains, pointer types). Hostile inputs must fail with
  /// a diagnostic, never by exhausting the C++ stack; the limit also bounds
  /// AST depth, which in turn bounds Sema/Codegen recursion and node
  /// destructor depth.
  static constexpr unsigned MaxNestingDepth = 200;
  /// Binary operators folded per statement. Left-leaning operator spines
  /// (`1+1+1+...`) deepen the AST without any parser recursion, so they need
  /// their own bound to keep downstream tree walks stack-safe.
  static constexpr unsigned MaxOpsPerStatement = 4000;

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokKind K) const { return peek().is(K); }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  bool error(const std::string &Msg);

  bool parseGlobal();
  bool parseFunc();
  const LangType *parseType();
  const LangType *parseScalarType();
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt(bool RequireSemi);
  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(int MinPrec, ExprPtr Lhs);
  ExprPtr parseCastExpr();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  Program &Prog;
  size_t Pos = 0;
  std::string ErrMsg;
  unsigned Depth = 0;   ///< Live recursion depth (see MaxNestingDepth).
  unsigned StmtOps = 0; ///< Binary ops folded in the current statement.
};

} // namespace lang
} // namespace er

#endif // ER_LANG_PARSER_H
