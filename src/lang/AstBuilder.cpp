//===- AstBuilder.cpp - Programmatic MiniLang synthesis -------------------------===//

#include "lang/AstBuilder.h"

#include "support/Error.h"

using namespace er;
using namespace er::lang;

//===----------------------------------------------------------------------===//
// Expression factories
//===----------------------------------------------------------------------===//

ExprPtr AstBuilder::lit(uint64_t V) { return std::make_unique<IntLitExpr>(V); }

ExprPtr AstBuilder::boolLit(bool V) { return std::make_unique<BoolLitExpr>(V); }

ExprPtr AstBuilder::nullLit() { return std::make_unique<NullLitExpr>(); }

ExprPtr AstBuilder::ref(std::string Name) {
  return std::make_unique<VarRefExpr>(std::move(Name));
}

ExprPtr AstBuilder::index(ExprPtr Base, ExprPtr Idx) {
  return std::make_unique<IndexExpr>(std::move(Base), std::move(Idx));
}

ExprPtr AstBuilder::index(std::string Name, ExprPtr Idx) {
  return index(ref(std::move(Name)), std::move(Idx));
}

ExprPtr AstBuilder::elem(std::string Name, uint64_t I) {
  return index(ref(std::move(Name)), lit(I));
}

ExprPtr AstBuilder::call(std::string Callee, std::vector<ExprPtr> Args) {
  return std::make_unique<CallExpr>(std::move(Callee), std::move(Args));
}

ExprPtr AstBuilder::un(UnaryOp Op, ExprPtr Sub) {
  return std::make_unique<UnaryExpr>(Op, std::move(Sub));
}

ExprPtr AstBuilder::bin(BinaryOp Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}

ExprPtr AstBuilder::cast(ExprPtr Sub, const LangType *Ty) {
  return std::make_unique<CastExpr>(std::move(Sub), Ty);
}

ExprPtr AstBuilder::newArr(const LangType *Elem, ExprPtr Count) {
  return std::make_unique<NewExpr>(Elem, std::move(Count));
}

ExprPtr AstBuilder::addrOf(ExprPtr Base) {
  return std::make_unique<AddrOfExpr>(std::move(Base));
}

//===----------------------------------------------------------------------===//
// Statement factories
//===----------------------------------------------------------------------===//

StmtPtr AstBuilder::asBlock(StmtPtr S) {
  if (!S || S->K == Stmt::Kind::Block)
    return S;
  std::vector<StmtPtr> One;
  One.push_back(std::move(S));
  return block(std::move(One));
}

StmtPtr AstBuilder::var(std::string Name, const LangType *Ty, ExprPtr Init) {
  return std::make_unique<VarDeclStmt>(std::move(Name), Ty, std::move(Init));
}

StmtPtr AstBuilder::assign(ExprPtr Lhs, ExprPtr Rhs) {
  return std::make_unique<AssignStmt>(std::move(Lhs), std::move(Rhs));
}

StmtPtr AstBuilder::exprStmt(ExprPtr E) {
  return std::make_unique<ExprStmt>(std::move(E));
}

StmtPtr AstBuilder::ret(ExprPtr V) {
  return std::make_unique<ReturnStmt>(std::move(V));
}

StmtPtr AstBuilder::assertStmt(ExprPtr Cond) {
  return std::make_unique<AssertStmt>(std::move(Cond));
}

StmtPtr AstBuilder::abortStmt(std::string Msg) {
  return std::make_unique<AbortStmt>(std::move(Msg));
}

StmtPtr AstBuilder::del(ExprPtr Ptr) {
  return std::make_unique<DeleteStmt>(std::move(Ptr));
}

StmtPtr AstBuilder::block(std::vector<StmtPtr> Stmts) {
  auto B = std::make_unique<BlockStmt>();
  B->Stmts = std::move(Stmts);
  return B;
}

StmtPtr AstBuilder::ifStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else) {
  return std::make_unique<IfStmt>(std::move(Cond), asBlock(std::move(Then)),
                                  asBlock(std::move(Else)));
}

StmtPtr AstBuilder::whileStmt(ExprPtr Cond, StmtPtr Body) {
  return std::make_unique<WhileStmt>(std::move(Cond), asBlock(std::move(Body)));
}

StmtPtr AstBuilder::forStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step,
                            StmtPtr Body) {
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), asBlock(std::move(Body)));
}

StmtPtr AstBuilder::breakStmt() { return std::make_unique<BreakStmt>(); }

StmtPtr AstBuilder::continueStmt() { return std::make_unique<ContinueStmt>(); }

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void AstBuilder::global(std::string Name, const LangType *Ty,
                        std::vector<uint64_t> Init) {
  auto G = std::make_unique<GlobalDecl>();
  G->Name = std::move(Name);
  G->Ty = Ty;
  G->Init = std::move(Init);
  P.Globals.push_back(std::move(G));
}

void AstBuilder::func(std::string Name, std::vector<ParamDecl> Params,
                      const LangType *RetTy, StmtPtr Body) {
  auto F = std::make_unique<FuncDecl>();
  F->Name = std::move(Name);
  for (unsigned I = 0; I < Params.size(); ++I)
    Params[I].Index = I;
  F->Params = std::move(Params);
  F->RetTy = RetTy;
  F->Body = asBlock(std::move(Body));
  P.Funcs.push_back(std::move(F));
}

ParamDecl AstBuilder::param(std::string Name, const LangType *Ty) {
  ParamDecl D;
  D.Name = std::move(Name);
  D.Ty = Ty;
  return D;
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string er::lang::printType(const LangType *T) {
  if (!T)
    return "<null>";
  switch (T->K) {
  case LangType::Kind::Void:
    return "void";
  case LangType::Kind::Bool:
    return "bool";
  case LangType::Kind::Int:
    return std::string(T->Signed ? "i" : "u") + std::to_string(T->Bits);
  case LangType::Kind::Ptr:
    return "*" + printType(T->Elem);
  case LangType::Kind::Array:
    return printType(T->Elem) + "[" + std::to_string(T->NumElems) + "]";
  }
  return "<bad>";
}

namespace {

class Printer {
public:
  std::string render(const Program &P) {
    for (const auto &G : P.Globals)
      printGlobal(*G);
    if (!P.Globals.empty())
      Out += "\n";
    for (const auto &F : P.Funcs) {
      printFunc(*F);
      Out += "\n";
    }
    return std::move(Out);
  }

private:
  void indent() { Out.append(Level * 2, ' '); }

  /// Global initializers are stored as raw uint64 element values; render
  /// two's-complement-negative ones with a minus sign so they re-parse.
  static std::string initValue(uint64_t V) {
    int64_t S = static_cast<int64_t>(V);
    if (S < 0)
      return "-" + std::to_string(static_cast<uint64_t>(-S));
    return std::to_string(V);
  }

  void printGlobal(const GlobalDecl &G) {
    Out += "global " + G.Name + ": " + printType(G.Ty);
    if (G.Init.size() == 1) {
      Out += " = " + initValue(G.Init[0]);
    } else if (G.Init.size() > 1) {
      Out += " = { ";
      for (size_t I = 0; I < G.Init.size(); ++I) {
        if (I)
          Out += ", ";
        Out += initValue(G.Init[I]);
      }
      Out += " }";
    }
    Out += ";\n";
  }

  void printFunc(const FuncDecl &F) {
    Out += "fn " + F.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += F.Params[I].Name + ": " + printType(F.Params[I].Ty);
    }
    Out += ")";
    if (F.RetTy && !F.RetTy->isVoid())
      Out += " -> " + printType(F.RetTy);
    Out += " ";
    printBlockInline(*F.Body);
    Out += "\n";
  }

  void printBlockInline(const Stmt &S) {
    const auto &B = static_cast<const BlockStmt &>(S);
    Out += "{\n";
    ++Level;
    for (const auto &Inner : B.Stmts)
      printStmt(*Inner);
    --Level;
    indent();
    Out += "}";
  }

  /// Simple statements as they appear inside for(...) headers: no
  /// indentation, no trailing semicolon.
  void printSimple(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::VarDecl: {
      const auto &V = static_cast<const VarDeclStmt &>(S);
      Out += "var " + V.Name + ": " + printType(V.DeclTy);
      if (V.Init)
        Out += " = " + expr(*V.Init);
      return;
    }
    case Stmt::Kind::Assign: {
      const auto &A = static_cast<const AssignStmt &>(S);
      Out += expr(*A.Lhs) + " = " + expr(*A.Rhs);
      return;
    }
    case Stmt::Kind::ExprStmt:
      Out += expr(*static_cast<const ExprStmt &>(S).E);
      return;
    default:
      fatalError("printSimple: unsupported statement kind");
    }
  }

  void printStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::VarDecl:
    case Stmt::Kind::Assign:
    case Stmt::Kind::ExprStmt:
      indent();
      printSimple(S);
      Out += ";\n";
      return;
    case Stmt::Kind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      indent();
      Out += "if (" + expr(*I.Cond) + ") ";
      printBlockInline(*I.Then);
      if (I.Else) {
        Out += " else ";
        if (I.Else->K == Stmt::Kind::If) {
          // else-if chain: print the nested if inline on the same line.
          const auto &EI = static_cast<const IfStmt &>(*I.Else);
          Out += "if (" + expr(*EI.Cond) + ") ";
          printBlockInline(*EI.Then);
          if (EI.Else) {
            Out += " else ";
            printBlockInline(*EI.Else);
          }
        } else {
          printBlockInline(*I.Else);
        }
      }
      Out += "\n";
      return;
    }
    case Stmt::Kind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      indent();
      Out += "while (" + expr(*W.Cond) + ") ";
      printBlockInline(*W.Body);
      Out += "\n";
      return;
    }
    case Stmt::Kind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      indent();
      Out += "for (";
      if (F.Init)
        printSimple(*F.Init);
      Out += "; ";
      if (F.Cond)
        Out += expr(*F.Cond);
      Out += "; ";
      if (F.Step)
        printSimple(*F.Step);
      Out += ") ";
      printBlockInline(*F.Body);
      Out += "\n";
      return;
    }
    case Stmt::Kind::Break:
      indent();
      Out += "break;\n";
      return;
    case Stmt::Kind::Continue:
      indent();
      Out += "continue;\n";
      return;
    case Stmt::Kind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      indent();
      Out += "return";
      if (R.Value)
        Out += " " + expr(*R.Value);
      Out += ";\n";
      return;
    }
    case Stmt::Kind::Assert: {
      indent();
      Out += "assert(" + expr(*static_cast<const AssertStmt &>(S).Cond) +
             ");\n";
      return;
    }
    case Stmt::Kind::Abort: {
      indent();
      Out += "abort(\"" + safeString(static_cast<const AbortStmt &>(S).Message) +
             "\");\n";
      return;
    }
    case Stmt::Kind::Delete: {
      indent();
      Out += "delete " + expr(*static_cast<const DeleteStmt &>(S).Ptr) + ";\n";
      return;
    }
    case Stmt::Kind::Block: {
      indent();
      printBlockInline(S);
      Out += "\n";
      return;
    }
    }
  }

  /// String literals pass through the lexer's escape machinery; synthesized
  /// messages stick to characters that need none.
  static std::string safeString(const std::string &S) {
    std::string R;
    for (char C : S) {
      bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == ' ' || C == '_' || C == '-' ||
                C == '.' || C == ':';
      R += Ok ? C : '_';
    }
    return R;
  }

  static const char *binOp(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
    }
    return "?";
  }

  std::string expr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return std::to_string(static_cast<const IntLitExpr &>(E).Value);
    case Expr::Kind::BoolLit:
      return static_cast<const BoolLitExpr &>(E).Value ? "true" : "false";
    case Expr::Kind::NullLit:
      return "null";
    case Expr::Kind::VarRef:
      return static_cast<const VarRefExpr &>(E).Name;
    case Expr::Kind::Index: {
      const auto &I = static_cast<const IndexExpr &>(E);
      return postfixBase(*I.Base) + "[" + expr(*I.Idx) + "]";
    }
    case Expr::Kind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      std::string R = C.Callee + "(";
      for (size_t I = 0; I < C.Args.size(); ++I) {
        if (I)
          R += ", ";
        R += expr(*C.Args[I]);
      }
      return R + ")";
    }
    case Expr::Kind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      const char *Op = U.Op == UnaryOp::Neg   ? "-"
                       : U.Op == UnaryOp::Not ? "!"
                                              : "~";
      return std::string("(") + Op + expr(*U.Sub) + ")";
    }
    case Expr::Kind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      return "(" + expr(*B.Lhs) + " " + binOp(B.Op) + " " + expr(*B.Rhs) +
             ")";
    }
    case Expr::Kind::Cast: {
      const auto &C = static_cast<const CastExpr &>(E);
      return "(" + expr(*C.Sub) + " as " + printType(C.Target) + ")";
    }
    case Expr::Kind::New: {
      const auto &N = static_cast<const NewExpr &>(E);
      return "new " + printType(N.ElemTy) + "[" + expr(*N.Count) + "]";
    }
    case Expr::Kind::AddrOf: {
      const auto &A = static_cast<const AddrOfExpr &>(E);
      return "(&" + expr(*A.Base) + ")";
    }
    }
    return "?";
  }

  /// The base of an index must be a postfix form; parenthesized bases do not
  /// re-parse as `postfix := primary ('[' expr ']')*` unless the base is a
  /// primary, which VarRef/Index/Call and '('expr')' all are.
  std::string postfixBase(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::VarRef:
    case Expr::Kind::Index:
    case Expr::Kind::Call:
      return expr(E);
    default:
      return "(" + expr(E) + ")";
    }
  }

  std::string Out;
  unsigned Level = 0;
};

} // namespace

std::string er::lang::printProgram(const Program &P) {
  Printer Pr;
  return Pr.render(P);
}
