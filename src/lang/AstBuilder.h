//===- AstBuilder.h - Programmatic MiniLang synthesis ------------*- C++ -*-===//
///
/// \file
/// Construction helpers for synthesizing MiniLang programs as ASTs, plus a
/// printer that renders a Program back to parseable source. The generated
/// workload factory (src/gen/) builds programs through this surface so they
/// are well-formed by construction, then ships the *printed source* — the
/// same artifact a hand-written workload carries — so generated campaigns
/// round-trip through the ordinary Lexer/Parser/Sema/Codegen pipeline and a
/// campaign file on disk is self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef ER_LANG_ASTBUILDER_H
#define ER_LANG_ASTBUILDER_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace er {
namespace lang {

/// Thin value-oriented builder over one Program. All expression/statement
/// factories return owning pointers the caller threads into enclosing
/// nodes; declaration factories append to the Program directly.
class AstBuilder {
public:
  explicit AstBuilder(Program &P) : P(P) {}

  //===--- Types -----------------------------------------------------------===
  const LangType *i64() { return P.Types.intTy(64, true); }
  const LangType *i8() { return P.Types.intTy(8, true); }
  const LangType *u8() { return P.Types.intTy(8, false); }
  const LangType *boolTy() { return P.Types.boolTy(); }
  const LangType *voidTy() { return P.Types.voidTy(); }
  const LangType *ptr(const LangType *Elem) { return P.Types.ptrTo(Elem); }
  const LangType *array(const LangType *Elem, uint64_t N) {
    return P.Types.arrayOf(Elem, N);
  }

  //===--- Expressions -----------------------------------------------------===
  ExprPtr lit(uint64_t V);
  ExprPtr boolLit(bool V);
  ExprPtr nullLit();
  ExprPtr ref(std::string Name);
  ExprPtr index(ExprPtr Base, ExprPtr Idx);
  ExprPtr index(std::string Name, ExprPtr Idx);
  /// elem(name, i) == name[i] with a literal index — the dominant pattern in
  /// synthesized programs (scalar state lives in one-element globals).
  ExprPtr elem(std::string Name, uint64_t I);
  ExprPtr call(std::string Callee, std::vector<ExprPtr> Args);
  ExprPtr un(UnaryOp Op, ExprPtr Sub);
  ExprPtr bin(BinaryOp Op, ExprPtr L, ExprPtr R);
  ExprPtr cast(ExprPtr Sub, const LangType *Ty);
  ExprPtr newArr(const LangType *Elem, ExprPtr Count);
  ExprPtr addrOf(ExprPtr Base);

  //===--- Statements ------------------------------------------------------===
  StmtPtr var(std::string Name, const LangType *Ty, ExprPtr Init = nullptr);
  StmtPtr assign(ExprPtr Lhs, ExprPtr Rhs);
  StmtPtr exprStmt(ExprPtr E);
  StmtPtr ret(ExprPtr V = nullptr);
  StmtPtr assertStmt(ExprPtr Cond);
  StmtPtr abortStmt(std::string Msg);
  StmtPtr del(ExprPtr Ptr);
  StmtPtr block(std::vector<StmtPtr> Stmts);
  /// Then/Else are wrapped in blocks if they are not already (the grammar
  /// requires braced branches).
  StmtPtr ifStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else = nullptr);
  StmtPtr whileStmt(ExprPtr Cond, StmtPtr Body);
  StmtPtr forStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body);
  StmtPtr breakStmt();
  StmtPtr continueStmt();

  //===--- Declarations ----------------------------------------------------===
  void global(std::string Name, const LangType *Ty,
              std::vector<uint64_t> Init = {});
  void func(std::string Name, std::vector<ParamDecl> Params,
            const LangType *RetTy, StmtPtr Body);
  ParamDecl param(std::string Name, const LangType *Ty);

  Program &program() { return P; }

private:
  StmtPtr asBlock(StmtPtr S);
  Program &P;
};

/// Renders \p T as MiniLang type syntax ("*u8", "i64[4]").
std::string printType(const LangType *T);

/// Renders a synthesized Program back to source the front end accepts.
/// Sub-expressions are conservatively parenthesized, so the output needs no
/// precedence reasoning and round-trips through compileMiniLang verbatim.
std::string printProgram(const Program &P);

} // namespace lang
} // namespace er

#endif // ER_LANG_ASTBUILDER_H
