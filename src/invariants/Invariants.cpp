//===- Invariants.cpp - Likely-invariant inference ------------------------------===//

#include "invariants/Invariants.h"

#include "support/Format.h"

using namespace er;

namespace {

constexpr size_t MaxTrackedValues = 4;

/// A single observation: point name + variable values.
struct Observation {
  std::string Point;
  std::vector<uint64_t> Values;
};

} // namespace

/// Collects entry/exit observations during a run.
class InvariantEngine::Collector : public ExecObserver {
public:
  void onCall(uint32_t Tid, const Function &F,
              const std::vector<uint64_t> &Args) override {
    (void)Tid;
    if (F.getName() == "main")
      return;
    Observations.push_back({"entry:" + F.getName(), Args});
  }
  void onReturn(uint32_t Tid, const Function &F, bool HasValue,
                uint64_t Value) override {
    (void)Tid;
    if (!HasValue || F.getName() == "main")
      return;
    Observations.push_back({"exit:" + F.getName(), {Value}});
  }

  std::vector<Observation> Observations;
};

bool InvariantEngine::observePassingRun(const ProgramInput &In,
                                        const VmConfig &Vm) {
  Collector C;
  Interpreter VM(M, Vm);
  RunResult R = VM.run(In, nullptr, &C);
  if (R.Status != ExitStatus::Ok)
    return false;

  for (const auto &Obs : C.Observations) {
    PointStats &PS = Points[Obs.Point];
    if (PS.Vars.size() < Obs.Values.size())
      PS.Vars.resize(Obs.Values.size());
    for (size_t I = 0; I < Obs.Values.size(); ++I) {
      VarStats &VS = PS.Vars[I];
      uint64_t V = Obs.Values[I];
      VS.Min = std::min(VS.Min, V);
      VS.Max = std::max(VS.Max, V);
      VS.SeenZero |= V == 0;
      if (VS.Values.size() <= MaxTrackedValues)
        VS.Values.insert(V);
      ++VS.Count;
    }
    for (size_t I = 0; I < Obs.Values.size(); ++I)
      for (size_t J = I + 1; J < Obs.Values.size(); ++J) {
        PairStats &Pair = PS.Pairs[{static_cast<unsigned>(I),
                                    static_cast<unsigned>(J)}];
        Pair.AlwaysEq &= Obs.Values[I] == Obs.Values[J];
        Pair.AlwaysLe &= Obs.Values[I] <= Obs.Values[J];
        Pair.AlwaysNe &= Obs.Values[I] != Obs.Values[J];
        ++Pair.Count;
      }
  }
  return true;
}

void InvariantEngine::infer() {
  Inferred.clear();
  for (const auto &[Point, PS] : Points) {
    bool IsExit = Point.rfind("exit:", 0) == 0;
    auto VarName = [&](size_t I) {
      return IsExit ? std::string("ret")
                    : "arg" + std::to_string(I);
    };
    for (size_t I = 0; I < PS.Vars.size(); ++I) {
      const VarStats &VS = PS.Vars[I];
      if (VS.Count == 0)
        continue;
      if (VS.Values.size() == 1) {
        Inferred.push_back(
            {Point,
             formatString("%s == %llu", VarName(I).c_str(),
                          static_cast<unsigned long long>(*VS.Values.begin())),
             VS.Count});
      } else if (VS.Values.size() <= MaxTrackedValues) {
        std::string Set;
        for (uint64_t V : VS.Values)
          Set += (Set.empty() ? "" : ", ") + std::to_string(V);
        Inferred.push_back(
            {Point, VarName(I) + " in {" + Set + "}", VS.Count});
      } else {
        Inferred.push_back(
            {Point,
             formatString("%s in [%llu, %llu]", VarName(I).c_str(),
                          static_cast<unsigned long long>(VS.Min),
                          static_cast<unsigned long long>(VS.Max)),
             VS.Count});
      }
      if (!VS.SeenZero && VS.Min != 0)
        Inferred.push_back({Point, VarName(I) + " != 0", VS.Count});
    }
    for (const auto &[Idx, Pair] : PS.Pairs) {
      auto A = VarName(Idx.first), B = VarName(Idx.second);
      if (Pair.AlwaysEq)
        Inferred.push_back({Point, A + " == " + B, Pair.Count});
      else if (Pair.AlwaysLe)
        Inferred.push_back({Point, A + " <= " + B, Pair.Count});
      else if (Pair.AlwaysNe)
        Inferred.push_back({Point, A + " != " + B, Pair.Count});
    }
  }
  Frozen = true;
}

std::vector<InvariantViolation>
InvariantEngine::checkFailingRun(const ProgramInput &In, const VmConfig &Vm) {
  if (!Frozen)
    infer();

  Collector C;
  Interpreter VM(M, Vm);
  VM.run(In, nullptr, &C);

  // Re-evaluate each observation against the per-point stats.
  std::vector<InvariantViolation> Violations;
  auto Violate = [&](const std::string &Point, const std::string &Text,
                     const std::string &Observed, uint64_t Order) {
    // Deduplicate by (point, invariant).
    for (const auto &V : Violations)
      if (V.Inv.Point == Point && V.Inv.Text == Text)
        return;
    Invariant Inv{Point, Text, 0};
    for (const auto &Known : Inferred)
      if (Known.Point == Point && Known.Text == Text)
        Inv = Known;
    Violations.push_back({Inv, Observed, Order});
  };

  uint64_t Order = 0;
  for (const auto &Obs : C.Observations) {
    ++Order;
    auto It = Points.find(Obs.Point);
    if (It == Points.end())
      continue;
    const PointStats &PS = It->second;
    bool IsExit = Obs.Point.rfind("exit:", 0) == 0;
    auto VarName = [&](size_t I) {
      return IsExit ? std::string("ret") : "arg" + std::to_string(I);
    };
    for (size_t I = 0; I < Obs.Values.size() && I < PS.Vars.size(); ++I) {
      const VarStats &VS = PS.Vars[I];
      uint64_t V = Obs.Values[I];
      std::string ObsText =
          formatString("%s = %llu", VarName(I).c_str(),
                       static_cast<unsigned long long>(V));
      if (VS.Values.size() == 1 && V != *VS.Values.begin())
        Violate(Obs.Point,
                formatString("%s == %llu", VarName(I).c_str(),
                             static_cast<unsigned long long>(
                                 *VS.Values.begin())),
                ObsText, Order);
      else if (VS.Values.size() <= MaxTrackedValues &&
               !VS.Values.count(V)) {
        std::string Set;
        for (uint64_t KV : VS.Values)
          Set += (Set.empty() ? "" : ", ") + std::to_string(KV);
        Violate(Obs.Point, VarName(I) + " in {" + Set + "}", ObsText, Order);
      } else if (V < VS.Min || V > VS.Max) {
        Violate(Obs.Point,
                formatString("%s in [%llu, %llu]", VarName(I).c_str(),
                             static_cast<unsigned long long>(VS.Min),
                             static_cast<unsigned long long>(VS.Max)),
                ObsText, Order);
      }
      if (!VS.SeenZero && VS.Min != 0 && V == 0)
        Violate(Obs.Point, VarName(I) + " != 0", ObsText, Order);
    }
    for (const auto &[Idx, Pair] : PS.Pairs) {
      if (Idx.second >= Obs.Values.size())
        continue;
      uint64_t A = Obs.Values[Idx.first], B = Obs.Values[Idx.second];
      auto AN = VarName(Idx.first), BN = VarName(Idx.second);
      std::string ObsText = formatString(
          "%s = %llu, %s = %llu", AN.c_str(),
          static_cast<unsigned long long>(A), BN.c_str(),
          static_cast<unsigned long long>(B));
      if (Pair.AlwaysEq && A != B)
        Violate(Obs.Point, AN + " == " + BN, ObsText, Order);
      else if (Pair.AlwaysLe && !Pair.AlwaysEq && A > B)
        Violate(Obs.Point, AN + " <= " + BN, ObsText, Order);
      else if (Pair.AlwaysNe && !Pair.AlwaysEq && !Pair.AlwaysLe && A == B)
        Violate(Obs.Point, AN + " != " + BN, ObsText, Order);
    }
  }

  std::sort(Violations.begin(), Violations.end(),
            [](const InvariantViolation &A, const InvariantViolation &B) {
              return A.FirstAtObservation < B.FirstAtObservation;
            });
  return Violations;
}
