//===- Invariants.h - Likely-invariant inference and localization -*- C++ -*-===//
///
/// \file
/// A Daikon-style likely-invariant engine powering the MIMIC case study
/// (Section 5.4): observe variables at program points (function entries and
/// exits) over passing runs, infer invariant templates, then check a failing
/// (reconstructed) execution and rank the violations as candidate root
/// causes.
///
/// Supported templates per variable: constant, one-of (small value set),
/// range [min,max], non-zero; per variable pair at the same point: equal,
/// less-or-equal, not-equal.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INVARIANTS_INVARIANTS_H
#define ER_INVARIANTS_INVARIANTS_H

#include "ir/IR.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace er {

/// One inferred likely invariant, printable for reports.
struct Invariant {
  std::string Point; ///< "entry:parse" or "exit:parse".
  std::string Text;  ///< e.g. "arg1 <= arg2", "ret in [0, 10]".
  uint64_t Support = 0; ///< Observations backing it.
};

/// A violation of an inferred invariant on the failing run.
struct InvariantViolation {
  Invariant Inv;
  std::string Observed;
  uint64_t FirstAtObservation = 0; ///< Order of first violation.
};

/// Infers invariants from passing runs and checks failing runs.
class InvariantEngine {
public:
  explicit InvariantEngine(const Module &M) : M(M) {}

  /// Executes one (expected-passing) run and accumulates observations.
  /// Returns false if the run failed (it is then ignored).
  bool observePassingRun(const ProgramInput &In, const VmConfig &Vm);

  /// Freezes observations into invariants. Call after all passing runs.
  void infer();
  const std::vector<Invariant> &invariants() const { return Inferred; }

  /// Replays a failing run and reports violated invariants, ranked by
  /// first occurrence (earlier = closer to the root cause).
  std::vector<InvariantViolation> checkFailingRun(const ProgramInput &In,
                                                  const VmConfig &Vm);

private:
  struct VarStats {
    uint64_t Min = UINT64_MAX;
    uint64_t Max = 0;
    bool SeenZero = false;
    std::set<uint64_t> Values; ///< Capped small set.
    uint64_t Count = 0;
  };
  struct PairStats {
    bool AlwaysEq = true;
    bool AlwaysLe = true;
    bool AlwaysNe = true;
    uint64_t Count = 0;
  };
  struct PointStats {
    std::vector<VarStats> Vars;               ///< Per variable slot.
    std::map<std::pair<unsigned, unsigned>, PairStats> Pairs;
  };

  class Collector;

  const Module &M;
  std::map<std::string, PointStats> Points;
  std::vector<Invariant> Inferred;
  bool Frozen = false;
};

} // namespace er

#endif // ER_INVARIANTS_INVARIANTS_H
