//===- RecordReplay.h - Full record/replay baseline (rr-like) ----*- C++ -*-===//
///
/// \file
/// A Mozilla-rr-style full record/replay baseline (Section 5.3's
/// comparison). It records every source of non-determinism — all input
/// events (with payloads) and the thread schedule — which makes replay
/// deterministic and reproduction trivially effective/accurate, at high
/// runtime cost.
///
/// The recording itself is exact (the log is real and replay really runs
/// from it). The *runtime overhead* is modelled: each intercepted event
/// costs a trap-and-copy, input payloads cost per-byte copying, and
/// multithreaded execution pays rr's single-core serialization. Constants
/// are calibrated to rr's published range (mean ~48%, max ~142% in Fig. 6;
/// 49%-685% in the rr paper).
///
//===----------------------------------------------------------------------===//

#ifndef ER_BASELINES_RECORDREPLAY_H
#define ER_BASELINES_RECORDREPLAY_H

#include "ir/IR.h"
#include "vm/Interpreter.h"

#include <cstdint>

namespace er {

class Rng;

/// A complete record/replay log: sufficient to re-execute deterministically.
struct RecordLog {
  ProgramInput Input;
  uint64_t ScheduleSeed = 0;
  VmConfig Vm;
  uint64_t LogBytes = 0; ///< Serialized event-log size.
  RunResult Recorded;    ///< Outcome observed while recording.
};

/// rr-style overhead cost constants.
struct RrOverheadParams {
  double CyclesPerInstr = 1.0;
  /// libc buffers input: one intercepted syscall covers ~EventsPerTrap
  /// input.byte/input.arg events.
  double EventsPerTrap = 64.0;
  double CyclesPerEventTrap = 600.0; ///< ptrace-style interception.
  /// Synchronization ops are intercepted in-process (LD_PRELOAD), far
  /// cheaper than syscall traps.
  double CyclesPerSyncEvent = 25.0;
  double CyclesPerInputByte = 1.5;   ///< Copy into the log.
  /// rr context-switches on its own scheduling quantum, not on the VM's
  /// (much finer) trace chunks: one switch per NominalQuantum instructions
  /// when more than one thread is live.
  double NominalQuantumInstrs = 10'000.0;
  double CyclesPerContextSwitch = 450.0;
  /// Fractional slowdown added per extra thread (single-core scheduling).
  double SerializationPerThread = 0.35;
  double NoiseStdDev = 0.015;
};

/// rr-like recorder/replayer.
class FullRecordReplay {
public:
  explicit FullRecordReplay(const Module &M) : M(M) {}

  /// Records one run (the log makes it reproducible).
  RecordLog record(const ProgramInput &In, const VmConfig &Vm);

  /// Replays a log; the result is bit-identical to the recorded run.
  RunResult replay(const RecordLog &Log);

  /// Modelled runtime overhead (percent) of recording the given run.
  static double overheadPercent(const RunResult &R,
                                const RrOverheadParams &P, Rng &Noise);

private:
  const Module &M;
};

} // namespace er

#endif // ER_BASELINES_RECORDREPLAY_H
