//===- ReptRecovery.cpp - REPT-style value recovery -----------------------------===//
//
// Two passes over a deterministic failing run:
//   1. Execute to the failure and snapshot the final memory (the "dump").
//   2. Re-execute with a shadow observer that recovers values over a
//      Known/Guess/Unknown lattice, comparing every recovered register to
//      the ground truth the VM computes alongside.
//
//===----------------------------------------------------------------------===//

#include "baselines/ReptRecovery.h"

#include "solver/Expr.h" // maskToWidth / signExtend.
#include "support/Error.h"

#include <unordered_map>

using namespace er;

namespace {

enum class RState : uint8_t { Known, Guess, Unknown };

struct RValue {
  uint64_t V = 0;
  RState S = RState::Unknown;

  static RValue known(uint64_t V) { return {V, RState::Known}; }
  static RValue guess(uint64_t V) { return {V, RState::Guess}; }
  static RValue unknown() { return {0, RState::Unknown}; }
  bool recovered() const { return S != RState::Unknown; }
};

/// Combines operand states: a result is only as good as its weakest input.
RState combine(RState A, RState B) {
  if (A == RState::Unknown || B == RState::Unknown)
    return RState::Unknown;
  if (A == RState::Guess || B == RState::Guess)
    return RState::Guess;
  return RState::Known;
}

/// Evaluates an arithmetic/compare/cast instruction over recovered operand
/// values (same semantics as the concrete VM).
uint64_t evalArith(const Instruction &I, uint64_t A, uint64_t B) {
  unsigned W = I.getType().isInt() ? I.getType().Bits : 64;
  unsigned OpW = I.getOperand(0)->getType().isInt()
                     ? I.getOperand(0)->getType().Bits
                     : 64;
  int64_t SA = signExtend(A, OpW), SB = signExtend(B, OpW);
  switch (I.getOpcode()) {
  case Opcode::Add:  return maskToWidth(A + B, W);
  case Opcode::Sub:  return maskToWidth(A - B, W);
  case Opcode::Mul:  return maskToWidth(A * B, W);
  case Opcode::UDiv: return B ? maskToWidth(A / B, W) : 0;
  case Opcode::URem: return B ? maskToWidth(A % B, W) : 0;
  case Opcode::SDiv:
    return (SB != 0 && !(SB == -1 && SA == INT64_MIN))
               ? maskToWidth(static_cast<uint64_t>(SA / SB), W)
               : 0;
  case Opcode::SRem:
    return (SB != 0 && SB != -1)
               ? maskToWidth(static_cast<uint64_t>(SA % SB), W)
               : 0;
  case Opcode::And:  return A & B;
  case Opcode::Or:   return A | B;
  case Opcode::Xor:  return maskToWidth(A ^ B, W);
  case Opcode::Shl:  return B >= W ? 0 : maskToWidth(A << B, W);
  case Opcode::LShr: return B >= W ? 0 : A >> B;
  case Opcode::AShr:
    return maskToWidth(
        static_cast<uint64_t>(B >= W ? (SA < 0 ? -1 : 0) : (SA >> B)), W);
  case Opcode::Eq:   return A == B;
  case Opcode::Ne:   return A != B;
  case Opcode::Ult:  return A < B;
  case Opcode::Ule:  return A <= B;
  case Opcode::Ugt:  return A > B;
  case Opcode::Uge:  return A >= B;
  case Opcode::Slt:  return SA < SB;
  case Opcode::Sle:  return SA <= SB;
  case Opcode::Sgt:  return SA > SB;
  case Opcode::Sge:  return SA >= SB;
  case Opcode::ZExt: return A;
  case Opcode::SExt: return maskToWidth(static_cast<uint64_t>(SA), W);
  case Opcode::Trunc: return maskToWidth(A, W);
  case Opcode::PtrAdd: return A + B;
  default:
    return 0;
  }
}

/// The recovery shadow: mirrors frames/memory with lattice values, driven by
/// the concrete execution's observer callbacks (which stand in for the
/// control-flow trace REPT follows).
class ShadowObserver : public ExecObserver {
public:
  ShadowObserver(const MemoryManager &Dump, uint64_t WindowStart)
      : Dump(Dump), WindowStart(WindowStart) {}

  void onCall(uint32_t Tid, const Function &F,
              const std::vector<uint64_t> &Args) override {
    auto &Stack = Stacks[Tid];
    ShadowFrame Fr;
    Fr.F = &F;
    Fr.Regs.assign(F.getNumInstructions(), RValue::unknown());
    // Argument lattice was staged by the caller's Call/Spawn instruction;
    // main()'s (empty) args are trivially known.
    if (PendingArgs.size() == Args.size())
      Fr.Args = std::move(PendingArgs);
    else
      Fr.Args.assign(Args.size(), RValue::unknown());
    PendingArgs.clear();
    Stack.push_back(std::move(Fr));
  }

  void onReturn(uint32_t Tid, const Function &F, bool HasValue,
                uint64_t Value) override {
    (void)F;
    (void)Value;
    auto &Stack = Stacks[Tid];
    if (Stack.empty())
      return;
    PendingRet = HasValue && !Stack.back().RetStaged
                     ? RValue::unknown()
                     : Stack.back().Ret;
    HaveRet = HasValue;
    Stack.pop_back();
  }

  void onInst(uint32_t Tid, const Instruction &I, uint64_t Truth) override {
    ++Position;
    auto &Stack = Stacks[Tid];
    if (Stack.empty())
      return;
    // Before the trace window: only the frame structure is maintained; no
    // values are recoverable and memory stays at its dump guesses.
    if (Position < WindowStart)
      return;

    // The Call instruction's onInst fires after the callee frame pushed:
    // operate on the caller frame (one below top) for its operands.
    Opcode Op = I.getOpcode();
    bool IsCall = Op == Opcode::Call || Op == Opcode::Spawn;
    size_t FrameIdx = Stack.size() - 1;
    if (IsCall && Stack.size() >= 2 &&
        I.getParent()->getParent() == Stack[Stack.size() - 2].F)
      FrameIdx = Stack.size() - 2;
    ShadowFrame &Fr = Stack[FrameIdx];
    if (I.getParent()->getParent() != Fr.F)
      return; // Shadow desynchronized (defensive; should not happen).

    auto OperandValue = [&](unsigned Idx) -> RValue {
      const Value *V = I.getOperand(Idx);
      if (const auto *C = dyn_cast<ConstantInt>(V))
        return RValue::known(C->getValue());
      if (isa<ConstantNull>(V))
        return RValue::known(0);
      if (const auto *A = dyn_cast<Argument>(V))
        return A->getArgNo() < Fr.Args.size() ? Fr.Args[A->getArgNo()]
                                              : RValue::unknown();
      if (const auto *DefI = dyn_cast<Instruction>(V))
        return Fr.Regs[DefI->getLocalId()];
      return RValue::unknown();
    };

    RValue R = RValue::unknown();
    switch (Op) {
    case Opcode::InputArg:
    case Opcode::InputByte:
    case Opcode::InputSize:
      // Inputs were never recorded: the heart of REPT's limitation.
      R = RValue::unknown();
      break;
    case Opcode::Alloca:
    case Opcode::Malloc:
    case Opcode::GlobalAddr:
      // Addresses are reconstructible from the dump layout.
      R = RValue::known(Truth);
      break;
    case Opcode::Load: {
      RValue Addr = OperandValue(0);
      R = Addr.recovered() ? loadCell(Addr.V) : RValue::unknown();
      break;
    }
    case Opcode::Store: {
      RValue Addr = OperandValue(1);
      RValue Val = OperandValue(0);
      if (Addr.recovered())
        storeCell(Addr.V, Val);
      // Unknown address: the written cell silently keeps its stale guess —
      // exactly how best-effort recovery goes wrong.
      break;
    }
    case Opcode::Call:
    case Opcode::Spawn: {
      // Stage argument lattice for the callee frame (already pushed).
      std::vector<RValue> Args;
      for (unsigned A = 0; A < I.getNumOperands(); ++A)
        Args.push_back(OperandValue(A));
      ShadowFrame &Callee = Stack.back();
      if (&Callee != &Fr && Callee.Args.size() == Args.size())
        Callee.Args = std::move(Args);
      else if (Op == Opcode::Spawn)
        SpawnArgs[Truth] = std::move(Args); // Keyed by the new tid.
      R = Op == Opcode::Spawn ? RValue::known(Truth) : RValue::unknown();
      break;
    }
    case Opcode::Ret:
      if (I.getNumOperands() == 1) {
        Fr.Ret = OperandValue(0);
        Fr.RetStaged = true;
      }
      break;
    case Opcode::Select: {
      RValue C = OperandValue(0), T = OperandValue(1), F2 = OperandValue(2);
      if (C.recovered())
        R = C.V ? T : F2;
      break;
    }
    default:
      if (isBinaryOp(Op) || isCompareOp(Op) || Op == Opcode::ZExt ||
          Op == Opcode::SExt || Op == Opcode::Trunc ||
          Op == Opcode::PtrAdd) {
        RState S = RState::Known;
        bool All = true;
        for (unsigned K = 0; K < I.getNumOperands(); ++K) {
          RValue OV = OperandValue(K);
          if (!OV.recovered())
            All = false;
          S = combine(S, OV.S);
        }
        if (All) {
          // Recompute over the *recovered* operand values: stale guesses
          // propagate their error into derived values.
          RValue A = OperandValue(0);
          RValue B = I.getNumOperands() > 1 ? OperandValue(1) : RValue();
          R = {evalArith(I, A.V, B.V), S};
        }
      }
      break;
    }

    // Consume pending return value at the call site.
    if (Op == Opcode::Call && HaveRet) {
      R = PendingRet;
      HaveRet = false;
    }

    // Record accuracy for value-producing instructions.
    if (!I.getType().isVoid()) {
      Fr.Regs[I.getLocalId()] = R;
      Samples.push_back({Position, R.S,
                         R.recovered() && R.V == Truth});
    }
  }

  /// Thread start: adopt staged spawn args.
  void adoptSpawnArgs(uint32_t Tid) { (void)Tid; }

  struct Sample {
    uint64_t Position;
    RState S;
    bool Correct;
  };
  std::vector<Sample> Samples;

private:
  struct ShadowFrame {
    const Function *F = nullptr;
    std::vector<RValue> Regs;
    std::vector<RValue> Args;
    RValue Ret;
    bool RetStaged = false;
  };

  RValue loadCell(uint64_t Packed) {
    auto It = Cells.find(Packed);
    if (It != Cells.end())
      return It->second;
    // First touch: guess from the post-mortem dump.
    if (PackedPtr::isNull(Packed))
      return RValue::unknown();
    uint32_t Obj = PackedPtr::objectId(Packed);
    uint64_t Off = PackedPtr::offset(Packed);
    if (Obj >= Dump.numObjects() || Off >= Dump.object(Obj).NumElems)
      return RValue::unknown();
    return RValue::guess(Dump.object(Obj).Data[Off]);
  }

  void storeCell(uint64_t Packed, RValue V) { Cells[Packed] = V; }

  const MemoryManager &Dump;
  uint64_t WindowStart = 0;
  std::unordered_map<uint32_t, std::vector<ShadowFrame>> Stacks;
  std::unordered_map<uint64_t, RValue> Cells;
  std::unordered_map<uint64_t, std::vector<RValue>> SpawnArgs;
  std::vector<RValue> PendingArgs;
  RValue PendingRet;
  bool HaveRet = false;
  uint64_t Position = 0;
};

} // namespace

ReptReport er::reptRecover(const Module &M, const ProgramInput &In,
                           const VmConfig &Vm, uint64_t WindowInstrs) {
  ReptReport Report;

  // Pass 1: run to the failure, keep the dump.
  Interpreter VM1(M, Vm);
  RunResult R1 = VM1.run(In);
  if (R1.Status != ExitStatus::Failure) {
    Report.Failed = true;
    return Report;
  }
  const MemoryManager &Dump = VM1.getMemory();
  Report.TraceLength = R1.InstrCount;
  uint64_t WindowStart =
      (WindowInstrs && WindowInstrs < R1.InstrCount)
          ? R1.InstrCount - WindowInstrs
          : 0;

  // Pass 2: deterministic re-execution with the recovery shadow.
  ShadowObserver Shadow(Dump, WindowStart);
  Interpreter VM2(M, Vm);
  VM2.run(In, nullptr, &Shadow);

  // Bucket samples by distance from the failure.
  const uint64_t Bounds[] = {1'000, 10'000, 100'000, UINT64_MAX};
  for (uint64_t B : Bounds) {
    ReptBucket Bucket;
    Bucket.UpperBound = B;
    Report.Buckets.push_back(Bucket);
  }
  for (const auto &S : Shadow.Samples) {
    uint64_t Distance = Report.TraceLength - S.Position;
    for (auto &Bucket : Report.Buckets) {
      if (Distance < Bucket.UpperBound) {
        if (S.S == RState::Unknown)
          ++Bucket.Unknown;
        else if (S.Correct)
          ++Bucket.Correct;
        else
          ++Bucket.Incorrect;
        break;
      }
    }
  }
  return Report;
}
