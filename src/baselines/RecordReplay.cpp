//===- RecordReplay.cpp --------------------------------------------------------===//

#include "baselines/RecordReplay.h"

#include "support/Rng.h"

#include <cmath>

using namespace er;

RecordLog FullRecordReplay::record(const ProgramInput &In,
                                   const VmConfig &Vm) {
  RecordLog Log;
  Log.Input = In;
  Log.ScheduleSeed = Vm.ScheduleSeed;
  Log.Vm = Vm;
  Interpreter VM(M, Vm);
  Log.Recorded = VM.run(In);
  // Event-log size: header per event + payloads + schedule records.
  Log.LogBytes = 16 * (Log.Recorded.InputEvents + Log.Recorded.ThreadEvents +
                       Log.Recorded.SyncEvents +
                       Log.Recorded.ContextSwitches) +
                 Log.Recorded.InputBytes + 8 * In.Args.size();
  return Log;
}

RunResult FullRecordReplay::replay(const RecordLog &Log) {
  Interpreter VM(M, Log.Vm);
  return VM.run(Log.Input);
}

double FullRecordReplay::overheadPercent(const RunResult &R,
                                         const RrOverheadParams &P,
                                         Rng &Noise) {
  if (R.InstrCount == 0)
    return 0.0;
  double Base = static_cast<double>(R.InstrCount) * P.CyclesPerInstr;
  double Traps = static_cast<double>(R.InputEvents) / P.EventsPerTrap +
                 static_cast<double>(R.ThreadEvents);
  double SyncCost = static_cast<double>(R.SyncEvents) * P.CyclesPerSyncEvent;
  double Switches =
      R.NumThreads > 1
          ? static_cast<double>(R.InstrCount) / P.NominalQuantumInstrs
          : 0.0;
  double Cost = Traps * P.CyclesPerEventTrap + SyncCost +
                static_cast<double>(R.InputBytes) * P.CyclesPerInputByte +
                Switches * P.CyclesPerContextSwitch;
  double Pct = Cost / Base * 100.0;
  // Single-core serialization for multithreaded programs.
  if (R.NumThreads > 1)
    Pct += 100.0 * P.SerializationPerThread *
           static_cast<double>(R.NumThreads - 1);
  // Measurement noise.
  double U1 = Noise.nextDouble();
  double U2 = Noise.nextDouble();
  if (U1 < 1e-12)
    U1 = 1e-12;
  double Gauss = std::sqrt(-2.0 * std::log(U1)) * std::cos(6.28318530718 * U2);
  Pct += Gauss * P.NoiseStdDev * 100.0;
  return Pct < 0 ? 0 : Pct;
}
