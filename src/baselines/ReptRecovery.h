//===- ReptRecovery.h - REPT-style value recovery baseline -------*- C++ -*-===//
///
/// \file
/// A model of REPT [Cui et al., OSDI'18]: given only the control-flow trace
/// of a failing execution and the post-mortem memory dump, reconstruct the
/// data values of the execution without any data recording.
///
/// The analysis replays the control flow with a three-state value lattice
/// (Known / Guess / Unknown): constants and values computed from recovered
/// operands are Known; program inputs are Unknown (they were never
/// recorded); memory reads through recovered addresses consult the final
/// dump, which yields a *guess* — correct only if the location was not
/// overwritten between the read and the failure. This reproduces REPT's
/// published accuracy profile: values close to the failure recover well,
/// values far from it are increasingly wrong or unknown (15-60% incorrect
/// beyond 100K instructions), and a developer cannot tell which are which —
/// the accuracy critique in Sections 2.3 and 5.2 of the ER paper.
///
//===----------------------------------------------------------------------===//

#ifndef ER_BASELINES_REPTRECOVERY_H
#define ER_BASELINES_REPTRECOVERY_H

#include "ir/IR.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <vector>

namespace er {

/// Recovery statistics for one distance band.
struct ReptBucket {
  uint64_t UpperBound = 0; ///< Distance-from-failure upper bound (instrs).
  uint64_t Correct = 0;
  uint64_t Incorrect = 0;
  uint64_t Unknown = 0;

  uint64_t total() const { return Correct + Incorrect + Unknown; }
  double incorrectFraction() const {
    return total() ? static_cast<double>(Incorrect) / total() : 0.0;
  }
  double unknownFraction() const {
    return total() ? static_cast<double>(Unknown) / total() : 0.0;
  }
  double badFraction() const {
    return total() ? static_cast<double>(Incorrect + Unknown) / total() : 0.0;
  }
};

/// Accuracy of one recovery run, bucketed by distance from the failure.
struct ReptReport {
  uint64_t TraceLength = 0;
  std::vector<ReptBucket> Buckets;
  bool Failed = false; ///< True when the run did not fail (nothing to do).

  const ReptBucket *bucketFor(uint64_t Distance) const {
    for (const auto &B : Buckets)
      if (Distance < B.UpperBound)
        return &B;
    return Buckets.empty() ? nullptr : &Buckets.back();
  }
};

/// Runs REPT-style recovery for a failing run of \p M. \p WindowInstrs
/// models the bounded hardware trace: only the last WindowInstrs
/// instructions before the failure are covered by the control-flow trace
/// (0 = the whole execution). State written before the window is only
/// available as (possibly stale) post-mortem dump guesses — the mechanism
/// behind REPT's published error rates on long executions.
ReptReport reptRecover(const Module &M, const ProgramInput &In,
                       const VmConfig &Vm, uint64_t WindowInstrs = 0);

} // namespace er

#endif // ER_BASELINES_REPTRECOVERY_H
