//===- Watchdog.h - Cycle deadline watchdog ---------------------*- C++ -*-===//
///
/// \file
/// A passive deadline watchdog for the collector daemon's
/// drain→step→checkpoint cycle (docs/OBSERVABILITY.md, "Live endpoints").
/// The daemon arm()s it when a cycle starts and disarm()s it when the
/// cycle completes; any thread — the HTTP listener serving `/healthz`,
/// the daemon itself at a cycle boundary — may poll() it against the
/// injected ClockSource.
///
/// The watchdog never interrupts anything: a wedged cycle cannot run its
/// own recovery code, so the design is *evidence first*. The first poll()
/// that observes a missed deadline (one-shot per arming):
///
///  - bumps the `daemon.watchdog.trips` counter,
///  - flips tripped() — `/healthz` reports unhealthy until the cycle
///    eventually completes (disarm) or a new one starts (arm), and
///  - dumps a span-ring snapshot (JSONL) plus a metrics snapshot (JSON)
///    into the configured stall-diagnostics directory, so a cycle that
///    never finishes leaves a post-mortem even if the process is killed.
///
/// All state sits behind one small mutex; poll() from a scraper thread
/// never touches the daemon's drain path.
///
//===----------------------------------------------------------------------===//

#ifndef ER_OBS_WATCHDOG_H
#define ER_OBS_WATCHDOG_H

#include "support/Fs.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace er {
namespace obs {

class PipelineTracer;

struct WatchdogConfig {
  /// Cycle deadline; 0 disables the watchdog entirely (arm/poll no-op).
  uint64_t DeadlineMs = 0;
  /// Clock seam (null = the real monotonic clock).
  ClockSource *Clock = nullptr;
  /// Where a trip dumps `stall-cycle<N>.{metrics.json,spans.jsonl}`;
  /// "" skips the dump (the trip still counts and flips health).
  std::string DiagnosticsDir;
  /// Filesystem seam for the dump (null = the real filesystem).
  FsOps *Fs = nullptr;
  /// Span ring to dump (null = the global tracer).
  PipelineTracer *Tracer = nullptr;
};

/// Arm/disarm bracketing with cross-thread expiry polling. All methods
/// are thread-safe.
class CycleWatchdog {
public:
  explicit CycleWatchdog(WatchdogConfig Config);

  bool enabled() const { return Config.DeadlineMs != 0; }

  /// Starts the deadline for \p Cycle: now + DeadlineMs. Re-arming clears
  /// a previous trip's unhealthy state (the daemon made it to the next
  /// cycle; the trip stays counted).
  void arm(uint64_t Cycle);

  /// The watched cycle completed. If its deadline already passed, the
  /// overrun is still recorded as a trip (poll() semantics) before the
  /// watchdog returns to idle-healthy.
  void disarm();

  /// Evaluates the deadline now. Returns true while tripped: the armed
  /// deadline has passed and the cycle has not completed. The first
  /// observer of each missed deadline records the trip and writes the
  /// diagnostics dump.
  bool poll();

  bool tripped() const;
  uint64_t trips() const;
  /// Cycle number of the most recent trip (meaningful when trips() > 0).
  uint64_t lastTripCycle() const;
  /// Deadline of the current arming in clock ns (0 when disarmed).
  uint64_t armedDeadlineNs() const;

private:
  void recordTripLocked(uint64_t Now);
  void dumpDiagnosticsLocked(uint64_t Now);

  WatchdogConfig Config;
  mutable std::mutex Mu;
  bool Armed = false;
  bool Tripped = false; ///< Current arming missed its deadline.
  uint64_t DeadlineNs = 0;
  uint64_t ArmedCycle = 0;
  uint64_t Trips = 0;
  uint64_t LastTripCycle = 0;
};

} // namespace obs
} // namespace er

#endif // ER_OBS_WATCHDOG_H
