//===- Metrics.cpp - Low-overhead metrics registry --------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"
#include "obs/PromExport.h"

#include <algorithm>
#include <cstdio>

using namespace er;
using namespace er::obs;

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

unsigned Counter::threadShard() {
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}

Histogram::Histogram(std::vector<uint64_t> BoundsIn)
    : Bounds(std::move(BoundsIn)) {
  if (Bounds.empty())
    Bounds = exponentialBounds();
  std::sort(Bounds.begin(), Bounds.end());
  Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
  Buckets = std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::record(uint64_t Sample) {
  // First bucket whose bound >= sample; past-the-end = overflow bucket.
  size_t Idx = std::lower_bound(Bounds.begin(), Bounds.end(), Sample) -
               Bounds.begin();
  Buckets[Idx].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> obs::exponentialBounds(uint64_t First, unsigned Count,
                                             unsigned Factor) {
  std::vector<uint64_t> Bounds;
  Bounds.reserve(Count);
  uint64_t B = First;
  for (unsigned I = 0; I < Count; ++I) {
    Bounds.push_back(B);
    if (B > UINT64_MAX / Factor)
      break;
    B *= Factor;
  }
  return Bounds;
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

uint64_t HistogramValue::quantileBound(double Q) const {
  if (!Count)
    return 0;
  // Clamp before the float->uint64 cast: a negative Q must answer "first
  // non-empty bucket", not hit the UB of casting a negative double.
  if (Q < 0)
    Q = 0;
  uint64_t Target = Q >= 1 ? Count - 1
                           : static_cast<uint64_t>(
                                 Q * static_cast<double>(Count));
  if (Target >= Count)
    Target = Count - 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < BucketCounts.size(); ++I) {
    Seen += BucketCounts[I];
    if (Seen > Target)
      return I < Bounds.size() ? Bounds[I] : UINT64_MAX;
  }
  return UINT64_MAX; // All samples in the overflow bucket.
}

uint64_t MetricsSnapshot::counterValue(std::string_view Name) const {
  for (const CounterValue &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return 0;
}

int64_t MetricsSnapshot::gaugeValue(std::string_view Name) const {
  for (const GaugeValue &G : Gauges)
    if (G.Name == Name)
      return G.Value;
  return 0;
}

const HistogramValue *MetricsSnapshot::histogram(std::string_view Name) const {
  for (const HistogramValue &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

bool MetricsRegistry::claimExpositionNames(int Kind, std::string_view Name) {
  std::string Owner = std::to_string(Kind) + ":" + std::string(Name);
  std::vector<std::string> Families =
      promFamilyNames(static_cast<PromKind>(Kind), Name);
  for (const std::string &F : Families) {
    auto It = ExpositionOwners.find(F);
    if (It != ExpositionOwners.end() && It->second != Owner) {
      ++RejectedCollisions;
      return false;
    }
  }
  for (std::string &F : Families)
    ExpositionOwners.emplace(std::move(F), Owner);
  return true;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return *It->second;
  if (!claimExpositionNames(static_cast<int>(PromKind::Counter), Name)) {
    RejectedCounters.push_back(std::make_unique<Counter>());
    return *RejectedCounters.back();
  }
  return *Counters.emplace(std::string(Name), std::make_unique<Counter>())
              .first->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It != Gauges.end())
    return *It->second;
  if (!claimExpositionNames(static_cast<int>(PromKind::Gauge), Name)) {
    RejectedGauges.push_back(std::make_unique<Gauge>());
    return *RejectedGauges.back();
  }
  return *Gauges.emplace(std::string(Name), std::make_unique<Gauge>())
              .first->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      std::vector<uint64_t> Bounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return *It->second;
  if (!claimExpositionNames(static_cast<int>(PromKind::Histogram), Name)) {
    RejectedHistograms.push_back(
        std::make_unique<Histogram>(std::move(Bounds)));
    return *RejectedHistograms.back();
  }
  return *Histograms
              .emplace(std::string(Name),
                       std::make_unique<Histogram>(std::move(Bounds)))
              .first->second;
}

uint64_t MetricsRegistry::rejectedNameCollisions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return RejectedCollisions;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.push_back({Name, C->value()});
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.push_back({Name, G->value()});
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    HistogramValue V;
    V.Name = Name;
    V.Bounds = H->bounds();
    V.BucketCounts.reserve(H->numBuckets());
    for (size_t I = 0; I < H->numBuckets(); ++I)
      V.BucketCounts.push_back(H->bucketCount(I));
    V.Count = H->count();
    V.Sum = H->sum();
    S.Histograms.push_back(std::move(V));
  }
  // std::map iteration is already name-sorted.
  return S;
}

void MetricsRegistry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry(); // Never destroyed:
  return *R; // instrumented code may run during static teardown.
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string obs::metricsToJson(const MetricsSnapshot &S) {
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const CounterValue &C : S.Counters)
    W.kv(C.Name, C.Value);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const GaugeValue &G : S.Gauges)
    W.kv(G.Name, G.Value);
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const HistogramValue &H : S.Histograms) {
    W.key(H.Name);
    W.beginObject();
    W.key("bounds");
    W.beginArray();
    for (uint64_t B : H.Bounds)
      W.value(B);
    W.endArray();
    W.key("counts");
    W.beginArray();
    for (uint64_t C : H.BucketCounts)
      W.value(C);
    W.endArray();
    W.kv("count", H.Count);
    W.kv("sum", H.Sum);
    W.kv("mean", H.mean());
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.take();
}

bool obs::exportMetricsJson(const MetricsSnapshot &S, const std::string &Path,
                            std::string *Error) {
  return writeTextFile(Path, metricsToJson(S), Error);
}

std::string obs::renderMetricsTable(const MetricsSnapshot &S) {
  std::string Out;
  char Buf[256];
  auto Line = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
    Out += '\n';
  };

  if (!S.Counters.empty()) {
    Line("%-44s %16s", "counter", "value");
    for (const CounterValue &C : S.Counters)
      Line("%-44s %16llu", C.Name.c_str(), (unsigned long long)C.Value);
    Out += '\n';
  }
  if (!S.Gauges.empty()) {
    Line("%-44s %16s", "gauge", "value");
    for (const GaugeValue &G : S.Gauges)
      Line("%-44s %16lld", G.Name.c_str(), (long long)G.Value);
    Out += '\n';
  }
  if (!S.Histograms.empty()) {
    Line("%-44s %10s %14s %12s %12s", "histogram", "count", "mean", "p50<=",
         "p99<=");
    for (const HistogramValue &H : S.Histograms) {
      uint64_t P50 = H.quantileBound(0.50), P99 = H.quantileBound(0.99);
      char P50S[24], P99S[24];
      if (P50 == UINT64_MAX)
        std::snprintf(P50S, sizeof(P50S), "+inf");
      else
        std::snprintf(P50S, sizeof(P50S), "%llu", (unsigned long long)P50);
      if (P99 == UINT64_MAX)
        std::snprintf(P99S, sizeof(P99S), "+inf");
      else
        std::snprintf(P99S, sizeof(P99S), "%llu", (unsigned long long)P99);
      Line("%-44s %10llu %14.1f %12s %12s", H.Name.c_str(),
           (unsigned long long)H.Count, H.mean(), P50S, P99S);
    }
  }
  return Out;
}
