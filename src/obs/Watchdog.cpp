//===- Watchdog.cpp - Cycle deadline watchdog --------------------------------===//

#include "obs/Watchdog.h"

#include "obs/Metrics.h"
#include "obs/Tracer.h"

using namespace er;
using namespace er::obs;

CycleWatchdog::CycleWatchdog(WatchdogConfig Config)
    : Config(std::move(Config)) {}

static ClockSource &wdClock(const WatchdogConfig &C) {
  return C.Clock ? *C.Clock : ClockSource::real();
}

void CycleWatchdog::arm(uint64_t Cycle) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Armed = true;
  Tripped = false;
  ArmedCycle = Cycle;
  DeadlineNs = wdClock(Config).nowNs() + Config.DeadlineMs * 1'000'000ULL;
}

void CycleWatchdog::disarm() {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  // A cycle that finished late still missed its deadline: count it even
  // if no poll() ran while it was overdue (no listener, no scraper).
  if (Armed && !Tripped) {
    uint64_t Now = wdClock(Config).nowNs();
    if (Now > DeadlineNs)
      recordTripLocked(Now);
  }
  Armed = false;
  Tripped = false;
}

bool CycleWatchdog::poll() {
  if (!enabled())
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Armed)
    return false;
  if (Tripped)
    return true;
  uint64_t Now = wdClock(Config).nowNs();
  if (Now <= DeadlineNs)
    return false;
  recordTripLocked(Now);
  return true;
}

void CycleWatchdog::recordTripLocked(uint64_t Now) {
  Tripped = true;
  ++Trips;
  LastTripCycle = ArmedCycle;
  MetricsRegistry::global().counter("daemon.watchdog.trips").inc();
  dumpDiagnosticsLocked(Now);
}

void CycleWatchdog::dumpDiagnosticsLocked(uint64_t Now) {
  if (Config.DiagnosticsDir.empty())
    return;
  FsOps &Fs = Config.Fs ? *Config.Fs : FsOps::real();
  if (!Fs.createDirectories(Config.DiagnosticsDir))
    return; // Diagnostics must never take the daemon down with them.
  std::string Stem = Config.DiagnosticsDir + "/stall-cycle" +
                     std::to_string(ArmedCycle);

  // Temp+rename so a reader (or a second trip racing a kill) never sees a
  // torn dump. Both documents carry the trip context inline.
  auto PublishFile = [&](const std::string &Path, const std::string &Body) {
    std::string Tmp = Path + ".tmp";
    if (Fs.writeFile(Tmp, Body) != FsStatus::Ok)
      return;
    if (Fs.rename(Tmp, Path) != FsStatus::Ok)
      Fs.remove(Tmp);
  };

  std::string Metrics =
      metricsToJson(MetricsRegistry::global().snapshot());
  PublishFile(Stem + ".metrics.json", Metrics);

  PipelineTracer &T = Config.Tracer ? *Config.Tracer : PipelineTracer::global();
  std::string Spans = spansToJsonl(T.snapshot());
  // Lead with one context line so the dump is self-describing even when
  // the span ring was empty (tracer disabled).
  std::string Header = "{\"watchdog_trip\":{\"cycle\":" +
                       std::to_string(ArmedCycle) +
                       ",\"deadline_ns\":" + std::to_string(DeadlineNs) +
                       ",\"now_ns\":" + std::to_string(Now) +
                       ",\"dropped_spans\":" + std::to_string(T.droppedSpans()) +
                       "}}\n";
  PublishFile(Stem + ".spans.jsonl", Header + Spans);
}

bool CycleWatchdog::tripped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Tripped;
}

uint64_t CycleWatchdog::trips() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Trips;
}

uint64_t CycleWatchdog::lastTripCycle() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LastTripCycle;
}

uint64_t CycleWatchdog::armedDeadlineNs() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Armed ? DeadlineNs : 0;
}
