//===- Tracer.h - Span-based pipeline tracer --------------------*- C++ -*-===//
///
/// \file
/// Timed, nested spans over the reconstruction pipeline: one span per
/// phase (trace decode, shepherded symex, solver query, stall selection,
/// redeploy wait, ...), each carrying a name, category, thread, nesting
/// depth, wall-clock interval, and a small set of key/value args (e.g. a
/// solver query's constraint count, a campaign's signature digest).
///
/// Completed spans land in a bounded in-memory ring (oldest dropped, drop
/// count kept) and export as JSONL (one span object per line, for ad-hoc
/// jq/grep analysis) or as a Chrome `trace_event` document loadable in
/// chrome://tracing / Perfetto ("X" complete events; nesting is implied
/// by interval containment per thread, which the recorded depth makes
/// explicit for the JSONL consumer).
///
/// Cost model: tracing is compiled in but *disabled by default*. A
/// disabled ScopedSpan costs one relaxed atomic load and no allocation —
/// the <2% bench_fleet_throughput overhead budget in ISSUE/docs. Enabled
/// spans take one mutex-guarded ring push at end-of-scope; span use is
/// per-phase (hundreds to low millions per run), never per VM
/// instruction.
///
/// Determinism: spans and metrics are write-only side channels — nothing
/// in the pipeline reads them back, so enabling tracing never changes
/// reconstruction results, seeds, or cache contents.
///
//===----------------------------------------------------------------------===//

#ifndef ER_OBS_TRACER_H
#define ER_OBS_TRACER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace er {
namespace obs {

/// One span argument: a string key with either a u64 or a string value.
struct SpanArg {
  std::string Key;
  uint64_t U64 = 0;
  std::string Str;
  bool IsString = false;
};

/// A completed span.
struct SpanRecord {
  std::string Name;
  std::string Cat;
  uint64_t StartNs = 0; ///< Since the tracer's epoch.
  uint64_t DurNs = 0;
  uint32_t Tid = 0;   ///< Small dense per-tracer thread index.
  uint32_t Depth = 0; ///< Nesting depth on its thread (0 = top level).
  std::vector<SpanArg> Args;
};

/// Bounded-ring span sink. One global() instance serves the pipeline;
/// tests construct their own.
class PipelineTracer {
public:
  explicit PipelineTracer(size_t Capacity = 1 << 16);

  /// Master switch. Off: ScopedSpan construction is a relaxed load.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch (construction), or the test
  /// clock's value verbatim when one is installed.
  uint64_t nowNs() const;

  /// Replaces the wall clock for deterministic (golden-file) tests.
  void setClockForTesting(std::function<uint64_t()> Clock);

  /// Appends one completed span; drops the oldest when full.
  void record(SpanRecord R);

  /// Copies out every retained span, ordered by (StartNs, Tid, Depth).
  std::vector<SpanRecord> snapshot() const;

  uint64_t droppedSpans() const {
    return Dropped.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return Capacity; }

  /// Empties the ring and zeroes the drop counter (not the clock).
  void clear();

  /// Dense per-tracer-process id for the calling thread (stable for the
  /// thread's lifetime).
  static uint32_t currentTid();
  /// Mutable nesting depth slot for the calling thread.
  static uint32_t &threadDepth();

  static PipelineTracer &global();

private:
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Dropped{0};
  size_t Capacity;

  mutable std::mutex Mu;
  std::vector<SpanRecord> Ring; ///< Circular once Full.
  size_t Head = 0;              ///< Next write slot when Full.
  bool Full = false;

  uint64_t EpochNs = 0; ///< steady_clock ns at construction.
  std::function<uint64_t()> TestClock;
  std::atomic<bool> HasTestClock{false};
};

/// RAII span: opens at construction (when the tracer is enabled), records
/// at destruction. Args added while open are attached to the record.
///
///   obs::ScopedSpan Span(Tracer, "er.symex", "er");
///   Span.arg("retry", Retry);
///
class ScopedSpan {
public:
  ScopedSpan(PipelineTracer &T, std::string_view Name,
             std::string_view Cat = "er");
  /// Convenience: spans on the global tracer.
  explicit ScopedSpan(std::string_view Name, std::string_view Cat = "er");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// No-ops when the span is inactive (tracer disabled at construction).
  void arg(std::string_view Key, uint64_t V);
  void arg(std::string_view Key, std::string_view V);

  bool active() const { return Active; }

private:
  PipelineTracer &T;
  SpanRecord R;
  bool Active = false;
};

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

/// One JSON object per line:
/// {"name":...,"cat":...,"ts_us":...,"dur_us":...,"tid":N,"depth":N,
///  "args":{...}}
std::string spansToJsonl(const std::vector<SpanRecord> &Spans);

/// Chrome trace_event JSON document ("X" complete events), loadable in
/// chrome://tracing and Perfetto. \p Dropped (if nonzero) is noted in
/// the document metadata.
std::string spansToChromeTrace(const std::vector<SpanRecord> &Spans,
                               uint64_t Dropped = 0);

bool exportSpansJsonl(const PipelineTracer &T, const std::string &Path,
                      std::string *Error = nullptr);
bool exportChromeTrace(const PipelineTracer &T, const std::string &Path,
                       std::string *Error = nullptr);

/// Per-span-name aggregate table (count, total ms, mean us) — the
/// `er_cli stats` span renderer.
std::string renderSpanSummary(const std::vector<SpanRecord> &Spans);

} // namespace obs
} // namespace er

#endif // ER_OBS_TRACER_H
