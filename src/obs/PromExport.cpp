//===- PromExport.cpp - Prometheus text exposition --------------------------===//

#include "obs/PromExport.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

using namespace er;
using namespace er::obs;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

static bool promNameChar(char C, bool First) {
  if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' || C == ':')
    return true;
  return !First && C >= '0' && C <= '9';
}

std::string obs::promSanitizeMetricName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name)
    Out += promNameChar(C, /*First=*/false) ? C : '_';
  if (Out.empty() || !promNameChar(Out[0], /*First=*/true))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::vector<std::string> obs::promFamilyNames(PromKind Kind,
                                              std::string_view Name) {
  std::string Base = promSanitizeMetricName(Name);
  switch (Kind) {
  case PromKind::Counter:
    return {Base + "_total"};
  case PromKind::Gauge:
    return {Base};
  case PromKind::Histogram:
    return {Base, Base + "_bucket", Base + "_sum", Base + "_count"};
  }
  return {Base};
}

//===----------------------------------------------------------------------===//
// Renderer
//===----------------------------------------------------------------------===//

std::string obs::metricsToPrometheus(const MetricsSnapshot &S) {
  std::string Out;
  char Buf[160];
  auto Append = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
  };

  for (const CounterValue &C : S.Counters) {
    std::string N = promSanitizeMetricName(C.Name) + "_total";
    Out += "# TYPE " + N + " counter\n";
    Out += N;
    Append(" %llu\n", (unsigned long long)C.Value);
  }
  for (const GaugeValue &G : S.Gauges) {
    std::string N = promSanitizeMetricName(G.Name);
    Out += "# TYPE " + N + " gauge\n";
    Out += N;
    Append(" %lld\n", (long long)G.Value);
  }
  for (const HistogramValue &H : S.Histograms) {
    std::string N = promSanitizeMetricName(H.Name);
    Out += "# TYPE " + N + " histogram\n";
    // Registry buckets are per-bucket; the exposition wants cumulative
    // counts per `le` bound, closed by the +Inf bucket (== count).
    uint64_t Cum = 0;
    for (size_t I = 0; I < H.Bounds.size(); ++I) {
      Cum += I < H.BucketCounts.size() ? H.BucketCounts[I] : 0;
      Append("%s_bucket{le=\"%llu\"} %llu\n", N.c_str(),
             (unsigned long long)H.Bounds[I], (unsigned long long)Cum);
    }
    Append("%s_bucket{le=\"+Inf\"} %llu\n", N.c_str(),
           (unsigned long long)H.Count);
    Append("%s_sum %llu\n", N.c_str(), (unsigned long long)H.Sum);
    Append("%s_count %llu\n", N.c_str(), (unsigned long long)H.Count);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Strict exposition parser (the CI scrape gate)
//===----------------------------------------------------------------------===//

namespace {

/// What the validator tracks per `# TYPE`-declared family.
struct FamilyState {
  std::string Type; ///< counter | gauge | histogram | summary | untyped
  bool SamplesSeen = false;
  bool Closed = false; ///< A later family emitted samples; no reopening.
  // Histogram bookkeeping.
  double LastBucket = -1;  ///< Last cumulative bucket value.
  double LastLe = 0;       ///< Last finite le bound.
  bool HaveLe = false;     ///< Any finite le seen yet.
  bool InfSeen = false;    ///< le="+Inf" closed the bucket series.
  double InfValue = 0;
  bool HaveCount = false;
  double CountValue = 0;
};

struct Parser {
  std::map<std::string, FamilyState> Families;
  std::string LastSampleFamily;
  std::set<std::string> SeenSeries; ///< name + sorted labels; dup check.

  bool fail(std::string *Error, size_t LineNo, const std::string &Msg) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  }

  static bool parseName(std::string_view &S, std::string &Out) {
    size_t I = 0;
    while (I < S.size() && promNameChar(S[I], I == 0))
      ++I;
    if (I == 0)
      return false;
    Out.assign(S.substr(0, I));
    S.remove_prefix(I);
    return true;
  }

  static bool parseFloat(std::string_view S, double &Out) {
    if (S.empty())
      return false;
    std::string Buf(S);
    char *End = nullptr;
    Out = std::strtod(Buf.c_str(), &End);
    return End && *End == '\0' && End != Buf.c_str();
  }

  /// The family a sample name belongs to: an exact `# TYPE` match, or a
  /// histogram/summary child (`_bucket`/`_sum`/`_count`). Empty if the
  /// sample is untyped — which the strict gate rejects.
  std::string familyOf(const std::string &Sample, bool &IsBucket,
                       bool &IsCount) {
    IsBucket = IsCount = false;
    if (Families.count(Sample))
      return Sample;
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      std::string Sfx = Suffix;
      if (Sample.size() > Sfx.size() &&
          Sample.compare(Sample.size() - Sfx.size(), Sfx.size(), Sfx) == 0) {
        std::string Base = Sample.substr(0, Sample.size() - Sfx.size());
        auto It = Families.find(Base);
        if (It != Families.end() && (It->second.Type == "histogram" ||
                                     It->second.Type == "summary")) {
          IsBucket = Sfx == "_bucket";
          IsCount = Sfx == "_count";
          return Base;
        }
      }
    }
    return "";
  }
};

} // namespace

bool obs::promValidateExposition(std::string_view Text, std::string *Error) {
  if (Text.empty()) {
    if (Error)
      *Error = "empty exposition";
    return false;
  }
  if (Text.back() != '\n') {
    if (Error)
      *Error = "missing trailing newline";
    return false;
  }

  Parser P;
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string_view Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    ++LineNo;
    if (Line.empty())
      continue;

    if (Line[0] == '#') {
      std::string_view Rest = Line.substr(1);
      while (!Rest.empty() && Rest[0] == ' ')
        Rest.remove_prefix(1);
      bool IsType = Rest.rfind("TYPE ", 0) == 0;
      bool IsHelp = Rest.rfind("HELP ", 0) == 0;
      if (!IsType && !IsHelp)
        continue; // Plain comment.
      Rest.remove_prefix(5);
      std::string Name;
      if (!P.parseName(Rest, Name))
        return P.fail(Error, LineNo, "bad metric name in comment");
      if (IsHelp)
        continue; // Free text follows; nothing to check.
      if (Rest.empty() || Rest[0] != ' ')
        return P.fail(Error, LineNo, "TYPE needs a type token");
      Rest.remove_prefix(1);
      std::string Type(Rest);
      if (Type != "counter" && Type != "gauge" && Type != "histogram" &&
          Type != "summary" && Type != "untyped")
        return P.fail(Error, LineNo, "unknown TYPE '" + Type + "'");
      auto [It, Inserted] = P.Families.try_emplace(Name);
      if (!Inserted)
        return P.fail(Error, LineNo, "duplicate TYPE for '" + Name + "'");
      It->second.Type = Type;
      continue;
    }

    // Sample: name[{labels}] value [timestamp]
    std::string_view Rest = Line;
    std::string Name;
    if (!P.parseName(Rest, Name))
      return P.fail(Error, LineNo, "bad sample name");
    std::string LabelKey; // canonical "k=v,k=v" for the duplicate check
    std::string LeValue;
    if (!Rest.empty() && Rest[0] == '{') {
      Rest.remove_prefix(1);
      std::map<std::string, std::string> Labels;
      while (true) {
        while (!Rest.empty() && Rest[0] == ' ')
          Rest.remove_prefix(1);
        if (!Rest.empty() && Rest[0] == '}') {
          Rest.remove_prefix(1);
          break;
        }
        std::string K;
        if (!P.parseName(Rest, K))
          return P.fail(Error, LineNo, "bad label name");
        if (Rest.empty() || Rest[0] != '=')
          return P.fail(Error, LineNo, "label needs '='");
        Rest.remove_prefix(1);
        if (Rest.empty() || Rest[0] != '"')
          return P.fail(Error, LineNo, "label value must be quoted");
        Rest.remove_prefix(1);
        std::string V;
        bool Closed = false;
        while (!Rest.empty()) {
          char C = Rest[0];
          Rest.remove_prefix(1);
          if (C == '"') {
            Closed = true;
            break;
          }
          if (C == '\\') {
            if (Rest.empty())
              return P.fail(Error, LineNo, "dangling escape in label");
            char E = Rest[0];
            Rest.remove_prefix(1);
            if (E != '\\' && E != '"' && E != 'n')
              return P.fail(Error, LineNo, "bad escape in label value");
            V += E == 'n' ? '\n' : E;
            continue;
          }
          V += C;
        }
        if (!Closed)
          return P.fail(Error, LineNo, "unterminated label value");
        if (!Labels.emplace(K, V).second)
          return P.fail(Error, LineNo, "duplicate label '" + K + "'");
        if (!Rest.empty() && Rest[0] == ',')
          Rest.remove_prefix(1);
        else if (Rest.empty() || Rest[0] != '}')
          return P.fail(Error, LineNo, "expected ',' or '}' after label");
      }
      for (const auto &[K, V] : Labels) {
        if (K == "le")
          LeValue = V;
        LabelKey += K + "=" + V + ",";
      }
    }
    if (Rest.empty() || Rest[0] != ' ')
      return P.fail(Error, LineNo, "sample needs a value");
    while (!Rest.empty() && Rest[0] == ' ')
      Rest.remove_prefix(1);
    size_t Space = Rest.find(' ');
    std::string_view ValueTok = Rest.substr(0, Space);
    double Value;
    if (!P.parseFloat(ValueTok, Value))
      return P.fail(Error, LineNo,
                    "bad sample value '" + std::string(ValueTok) + "'");
    if (Space != std::string_view::npos) {
      std::string_view TsTok = Rest.substr(Space + 1);
      double Ts;
      if (!P.parseFloat(TsTok, Ts))
        return P.fail(Error, LineNo, "bad timestamp");
    }

    if (!P.SeenSeries.insert(Name + "{" + LabelKey + "}").second)
      return P.fail(Error, LineNo, "duplicate series '" + Name + "'");

    bool IsBucket = false, IsCount = false;
    std::string Family = P.familyOf(Name, IsBucket, IsCount);
    if (Family.empty())
      return P.fail(Error, LineNo, "sample '" + Name + "' has no # TYPE");
    FamilyState &F = P.Families[Family];
    if (F.Closed)
      return P.fail(Error, LineNo,
                    "family '" + Family + "' reopened after another family");
    if (!P.LastSampleFamily.empty() && P.LastSampleFamily != Family)
      P.Families[P.LastSampleFamily].Closed = true;
    P.LastSampleFamily = Family;
    F.SamplesSeen = true;

    if (F.Type == "histogram" && IsBucket) {
      if (LeValue.empty())
        return P.fail(Error, LineNo, "_bucket sample without an le label");
      if (F.InfSeen)
        return P.fail(Error, LineNo, "bucket after le=\"+Inf\"");
      if (LeValue == "+Inf") {
        F.InfSeen = true;
        F.InfValue = Value;
      } else {
        double Le;
        if (!P.parseFloat(LeValue, Le))
          return P.fail(Error, LineNo, "bad le bound '" + LeValue + "'");
        if (F.HaveLe && Le <= F.LastLe)
          return P.fail(Error, LineNo, "le bounds not increasing");
        F.LastLe = Le;
        F.HaveLe = true;
      }
      if (F.LastBucket >= 0 && Value < F.LastBucket)
        return P.fail(Error, LineNo, "histogram buckets not cumulative");
      F.LastBucket = Value;
    } else if (F.Type == "histogram" && IsCount) {
      F.HaveCount = true;
      F.CountValue = Value;
    } else if (F.Type == "counter" && Value < 0) {
      return P.fail(Error, LineNo, "negative counter value");
    }
  }

  // Document-level histogram closure: every histogram family with samples
  // must have closed its bucket series at +Inf, agreeing with _count.
  for (const auto &[Name, F] : P.Families) {
    if (F.Type != "histogram" || !F.SamplesSeen)
      continue;
    if (!F.InfSeen)
      return P.fail(Error, LineNo,
                    "histogram '" + Name + "' missing le=\"+Inf\" bucket");
    if (F.HaveCount && F.InfValue != F.CountValue)
      return P.fail(Error, LineNo, "histogram '" + Name +
                                       "' +Inf bucket disagrees with _count");
  }
  return true;
}
