//===- Json.cpp - Minimal JSON emission and validation ----------------------===//

#include "obs/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

using namespace er;
using namespace er::obs;

//===----------------------------------------------------------------------===//
// Escaping + writer
//===----------------------------------------------------------------------===//

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::preValue() {
  if (Stack.empty())
    return;
  Frame &F = Stack.back();
  if (F.Kind == 'O') {
    assert(F.HaveKey && "object value requires a preceding key()");
    F.HaveKey = false;
    return; // key() already wrote the comma and the key.
  }
  if (F.NeedComma)
    Out += ',';
  F.NeedComma = true;
}

void JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({'O'});
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().Kind == 'O' && !Stack.back().HaveKey);
  Stack.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({'A'});
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().Kind == 'A');
  Stack.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().Kind == 'O' && !Stack.back().HaveKey);
  Frame &F = Stack.back();
  if (F.NeedComma)
    Out += ',';
  F.NeedComma = true;
  F.HaveKey = true;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
}

void JsonWriter::value(std::string_view V) {
  preValue();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
}

void JsonWriter::value(uint64_t V) {
  preValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out += Buf;
}

void JsonWriter::value(int64_t V) {
  preValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
  Out += Buf;
}

void JsonWriter::value(double V) {
  preValue();
  if (!std::isfinite(V)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    Out += "null";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void JsonWriter::value(bool V) {
  preValue();
  Out += V ? "true" : "false";
}

void JsonWriter::nullValue() {
  preValue();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

namespace {
/// Recursive-descent JSON syntax checker; no values are materialized.
class Validator {
public:
  Validator(std::string_view Text) : Text(Text) {}

  bool run(std::string *Error) {
    skipWs();
    if (!parseValue()) {
      report(Error);
      return false;
    }
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing characters after document";
      report(Error);
      return false;
    }
    return true;
  }

private:
  void report(std::string *Error) const {
    if (Error)
      *Error = Err + " at offset " + std::to_string(Pos);
  }

  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++Pos;
  }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("invalid literal");
    Pos += Lit.size();
    return true;
  }

  bool parseValue() {
    if (MaxDepth == 0)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{': return parseObject();
    case '[': return parseArray();
    case '"': return parseString();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default:  return parseNumber();
    }
  }

  bool parseObject() {
    ++Pos; // '{'
    --MaxDepth;
    skipWs();
    if (!eof() && peek() == '}') {
      ++Pos;
      ++MaxDepth;
      return true;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"')
        return fail("expected object key");
      if (!parseString())
        return false;
      skipWs();
      if (eof() || peek() != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        ++MaxDepth;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray() {
    ++Pos; // '['
    --MaxDepth;
    skipWs();
    if (!eof() && peek() == ']') {
      ++Pos;
      ++MaxDepth;
      return true;
    }
    for (;;) {
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        ++MaxDepth;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString() {
    ++Pos; // '"'
    while (!eof()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C == '\\') {
        ++Pos;
        if (eof())
          break;
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return fail("bad \\u escape");
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("bad escape character");
        }
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber() {
    size_t Start = Pos;
    if (!eof() && peek() == '-')
      ++Pos;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    if (peek() == '0') {
      ++Pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!eof() && peek() == '.') {
      ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid number fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid number exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  std::string_view Text;
  size_t Pos = 0;
  int MaxDepth = 256;
  std::string Err;
};
} // namespace

bool obs::validateJson(std::string_view Text, std::string *Error) {
  return Validator(Text).run(Error);
}

bool obs::validateJsonLines(std::string_view Text, std::string *Error) {
  size_t LineNo = 0, Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string_view::npos)
      End = Text.size();
    ++LineNo;
    std::string_view Line = Text.substr(Start, End - Start);
    if (!Line.empty()) {
      std::string Err;
      if (!validateJson(Line, &Err)) {
        if (Error)
          *Error = "line " + std::to_string(LineNo) + ": " + Err;
        return false;
      }
    }
    if (End == Text.size())
      break;
    Start = End + 1;
  }
  return true;
}

bool obs::writeTextFile(const std::string &Path, std::string_view Content,
                        std::string *Error) {
  std::ofstream OS(Path, std::ios::trunc | std::ios::binary);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  OS.write(Content.data(), static_cast<std::streamsize>(Content.size()));
  OS.flush();
  if (!OS) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}
