//===- PromExport.h - Prometheus text exposition ----------------*- C++ -*-===//
///
/// \file
/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// v0.0.4 — what `GET /metrics` on the collector daemon serves and what
/// any off-the-shelf Prometheus scraper ingests (docs/OBSERVABILITY.md,
/// "Live endpoints").
///
/// Mapping from the dotted registry catalog:
///  - every name is sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (invalid
///    characters become `_`, a leading digit gets a `_` prefix);
///  - counters gain the conventional `_total` suffix
///    (`daemon.cycles` -> `daemon_cycles_total`);
///  - gauges keep the sanitized name;
///  - histograms expand to the `_bucket{le="..."}` / `_sum` / `_count`
///    family with *cumulative* bucket values and a closing `le="+Inf"`
///    bucket (registry storage is per-bucket; the renderer accumulates).
///
/// Because sanitization is lossy, two distinct registry names can collide
/// on one exposition family; MetricsRegistry rejects the later
/// registration (see Metrics.h, "Exposition-name validation") so a scrape
/// never interleaves two series under one name.
///
/// `promValidateExposition` is the strict in-repo parser CI uses to gate
/// scraped output (`er_cli promcheck`) — a `/metrics` page that does not
/// parse is a bug, not a formatting nit.
///
//===----------------------------------------------------------------------===//

#ifndef ER_OBS_PROMEXPORT_H
#define ER_OBS_PROMEXPORT_H

#include "obs/Metrics.h"

#include <string>
#include <string_view>
#include <vector>

namespace er {
namespace obs {

/// Sanitizes one metric name to the Prometheus charset: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed
/// with `_`. Empty input sanitizes to `_`.
std::string promSanitizeMetricName(std::string_view Name);

/// The exposition family names a registry metric of the given kind will
/// occupy: counters claim `<san>_total`; gauges claim `<san>`; histograms
/// claim `<san>`, `<san>_bucket`, `<san>_sum`, and `<san>_count`. Two
/// registry names whose family sets intersect cannot coexist on one
/// `/metrics` page.
enum class PromKind { Counter, Gauge, Histogram };
std::vector<std::string> promFamilyNames(PromKind Kind, std::string_view Name);

/// Renders the whole snapshot as one text exposition v0.0.4 document
/// (`# TYPE` line per family, samples sorted by registry name, trailing
/// newline). Deterministic for a fixed snapshot — pinned by a golden test.
std::string metricsToPrometheus(const MetricsSnapshot &S);

/// The HTTP Content-Type a v0.0.4 text exposition must be served under.
inline const char *promContentType() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

/// Strict structural check of one exposition document: every line must be
/// a well-formed comment (`# TYPE` / `# HELP`) or sample
/// (`name{labels} value [timestamp]`); `TYPE` must precede its family's
/// samples and appear at most once; histogram `_bucket` series must carry
/// an `le` label, be cumulative (non-decreasing), end at `le="+Inf"`, and
/// agree with `_count`. Returns false with a line-annotated message in
/// \p Error on the first defect.
bool promValidateExposition(std::string_view Text,
                            std::string *Error = nullptr);

} // namespace obs
} // namespace er

#endif // ER_OBS_PROMEXPORT_H
