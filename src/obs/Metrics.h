//===- Metrics.h - Low-overhead metrics registry ----------------*- C++ -*-===//
///
/// \file
/// Process-wide metrics for the reconstruction pipeline: named counters,
/// gauges, and fixed-bucket histograms, registered by dotted name in a
/// MetricsRegistry (docs/OBSERVABILITY.md lists the catalog).
///
/// Design constraints, in order:
///  - **Recording must be cheap and contention-free.** Fleet workers bump
///    the same counters from many threads; a Counter is a set of
///    cache-line-padded atomic shards indexed by thread, so concurrent
///    add()s never touch the same line. Histograms use one atomic per
///    bucket (recordings are per solver query / iteration, not per VM
///    instruction, so a shared line is fine there).
///  - **Registration is slow-path.** counter()/gauge()/histogram() take a
///    mutex; instrumentation sites look a handle up once (function-local
///    static or member) and then only touch atomics.
///  - **Reads are snapshots.** snapshot() produces a consistent-enough
///    copy for export; it never blocks writers beyond the registry mutex
///    (which writers only take at registration).
///
/// Everything is compiled in unconditionally: metrics never change
/// reconstruction *results* (they are write-only from the pipeline's
/// perspective), only add a few relaxed atomic ops to paths that are
/// already dominated by solving or I/O.
///
//===----------------------------------------------------------------------===//

#ifndef ER_OBS_METRICS_H
#define ER_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace er {
namespace obs {

/// Monotonic counter, sharded so concurrent writers from different
/// threads do not share a cache line.
class Counter {
public:
  static constexpr unsigned NumShards = 16;

  void add(uint64_t N = 1) {
    Shards[threadShard()].V.fetch_add(N, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over shards. Concurrent adds may or may not be included —
  /// exact once writers quiesce.
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (Shard &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> V{0};
  };
  /// Threads are striped over shards round-robin at first use; a shard is
  /// never exclusive to a thread (adds are atomic), striping only spreads
  /// the contention.
  static unsigned threadShard();

  Shard Shards[NumShards];
};

/// Last-write-wins instantaneous value (also supports add() for
/// up/down counting).
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { set(0); }

private:
  std::atomic<int64_t> Value{0};
};

/// Fixed-boundary histogram over uint64 samples. Bucket i counts samples
/// <= Bounds[i] and > Bounds[i-1] (Prometheus "le" semantics, non-
/// cumulative storage); one implicit overflow bucket counts samples above
/// the last bound. Count and Sum are exact.
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> Bounds);

  void record(uint64_t Sample);

  const std::vector<uint64_t> &bounds() const { return Bounds; }
  size_t numBuckets() const { return Bounds.size() + 1; }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  void reset();

private:
  std::vector<uint64_t> Bounds; ///< Ascending, strictly increasing.
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

/// 12 exponential bucket bounds from \p First, doubling: the default shape
/// for work/latency histograms.
std::vector<uint64_t> exponentialBounds(uint64_t First = 64,
                                        unsigned Count = 12,
                                        unsigned Factor = 2);

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

struct CounterValue {
  std::string Name;
  uint64_t Value;
};

struct GaugeValue {
  std::string Name;
  int64_t Value;
};

struct HistogramValue {
  std::string Name;
  std::vector<uint64_t> Bounds;
  std::vector<uint64_t> BucketCounts; ///< Bounds.size() + 1 entries.
  uint64_t Count = 0;
  uint64_t Sum = 0;

  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }
  /// Upper bound of the bucket holding the \p Q quantile. The contract,
  /// pinned by ObsMetrics.QuantileBoundContract:
  ///  - empty histogram: 0 for every Q;
  ///  - Q <= 0: the bound of the first non-empty bucket (the tightest
  ///    "everything is at or below" answer for the minimum);
  ///  - Q >= 1: the bound of the last non-empty bucket — UINT64_MAX
  ///    (read: +inf) when any sample landed in the overflow bucket;
  ///  - otherwise: the bound of the bucket containing sample index
  ///    floor(Q * Count), UINT64_MAX when that is the overflow bucket.
  /// A histogram whose every sample overflowed therefore answers
  /// UINT64_MAX for all Q > 0. Out-of-range Q is clamped, never UB.
  uint64_t quantileBound(double Q) const;
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterValue> Counters;
  std::vector<GaugeValue> Gauges;
  std::vector<HistogramValue> Histograms;

  /// Value of a named counter (0 if absent) — test/assert convenience.
  uint64_t counterValue(std::string_view Name) const;
  int64_t gaugeValue(std::string_view Name) const;
  const HistogramValue *histogram(std::string_view Name) const;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Owns metrics by name. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime (the process, for global()).
///
/// **Exposition-name validation.** Registry names are dotted; the
/// Prometheus endpoint sanitizes them (obs/PromExport.h), which is lossy:
/// `daemon.cycles` and `daemon_cycles` both expose as
/// `daemon_cycles_total`. A registration whose exposition family would
/// collide with a *different* already-registered name is rejected: the
/// caller gets a detached instrument (valid to write, never exported, so
/// the ambiguous series cannot corrupt a scrape) and
/// rejectedNameCollisions() counts the event. First registration wins.
class MetricsRegistry {
public:
  /// Finds or creates. Thread-safe; intended to be called once per site
  /// and cached.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  /// \p Bounds is honored only on first registration of \p Name; empty
  /// means exponentialBounds().
  Histogram &histogram(std::string_view Name,
                       std::vector<uint64_t> Bounds = {});

  /// Registrations refused because their Prometheus exposition name would
  /// be ambiguous with an existing metric's.
  uint64_t rejectedNameCollisions() const;

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric, keeping registrations (handles stay valid).
  /// Tests and the CLI call this between runs of the same process.
  void resetValues();

  /// The process-wide registry the pipeline instruments against.
  static MetricsRegistry &global();

private:
  /// Claims every exposition family for (\p Kind, \p Name), or detects a
  /// collision with a different owner. Caller holds Mu. \p Kind values
  /// mirror obs::PromKind.
  bool claimExpositionNames(int Kind, std::string_view Name);

  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
  /// Exposition family -> "kind:registry name" that owns it.
  std::map<std::string, std::string> ExpositionOwners;
  /// Detached instruments handed out for rejected registrations (alive so
  /// cached handles stay valid, invisible to snapshot()).
  std::vector<std::unique_ptr<Counter>> RejectedCounters;
  std::vector<std::unique_ptr<Gauge>> RejectedGauges;
  std::vector<std::unique_ptr<Histogram>> RejectedHistograms;
  uint64_t RejectedCollisions = 0;
};

/// JSON document for one snapshot: {"counters":{...},"gauges":{...},
/// "histograms":{name:{"bounds":[...],"counts":[...],"count":N,"sum":N}}}.
std::string metricsToJson(const MetricsSnapshot &S);

/// Writes metricsToJson to \p Path.
bool exportMetricsJson(const MetricsSnapshot &S, const std::string &Path,
                       std::string *Error = nullptr);

/// Fixed-width text table of every metric (the `er_cli stats` renderer).
std::string renderMetricsTable(const MetricsSnapshot &S);

} // namespace obs
} // namespace er

#endif // ER_OBS_METRICS_H
