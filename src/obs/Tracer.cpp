//===- Tracer.cpp - Span-based pipeline tracer ------------------------------===//

#include "obs/Tracer.h"

#include "obs/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

using namespace er;
using namespace er::obs;

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

PipelineTracer::PipelineTracer(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1), EpochNs(steadyNowNs()) {
  Ring.reserve(std::min<size_t>(this->Capacity, 4096));
}

uint64_t PipelineTracer::nowNs() const {
  if (HasTestClock.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(Mu);
    return TestClock ? TestClock() : 0;
  }
  return steadyNowNs() - EpochNs;
}

void PipelineTracer::setClockForTesting(std::function<uint64_t()> Clock) {
  std::lock_guard<std::mutex> Lock(Mu);
  TestClock = std::move(Clock);
  HasTestClock.store(static_cast<bool>(TestClock),
                     std::memory_order_release);
}

void PipelineTracer::record(SpanRecord R) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.size() < Capacity && !Full) {
    Ring.push_back(std::move(R));
    return;
  }
  Full = true;
  Ring[Head] = std::move(R);
  Head = (Head + 1) % Capacity;
  Dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> PipelineTracer::snapshot() const {
  std::vector<SpanRecord> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = Ring;
  }
  std::sort(Out.begin(), Out.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.Depth < B.Depth;
            });
  return Out;
}

void PipelineTracer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Head = 0;
  Full = false;
  Dropped.store(0, std::memory_order_relaxed);
}

uint32_t PipelineTracer::currentTid() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

uint32_t &PipelineTracer::threadDepth() {
  thread_local uint32_t Depth = 0;
  return Depth;
}

PipelineTracer &PipelineTracer::global() {
  static PipelineTracer *T = new PipelineTracer(); // Never destroyed (see
  return *T; // MetricsRegistry::global).
}

//===----------------------------------------------------------------------===//
// ScopedSpan
//===----------------------------------------------------------------------===//

ScopedSpan::ScopedSpan(PipelineTracer &T, std::string_view Name,
                       std::string_view Cat)
    : T(T) {
  if (!T.enabled())
    return; // Disabled fast path: one relaxed load, nothing else.
  Active = true;
  R.Name.assign(Name);
  R.Cat.assign(Cat);
  R.Tid = PipelineTracer::currentTid();
  R.Depth = PipelineTracer::threadDepth()++;
  R.StartNs = T.nowNs();
}

ScopedSpan::ScopedSpan(std::string_view Name, std::string_view Cat)
    : ScopedSpan(PipelineTracer::global(), Name, Cat) {}

ScopedSpan::~ScopedSpan() {
  if (!Active)
    return;
  uint64_t End = T.nowNs();
  R.DurNs = End > R.StartNs ? End - R.StartNs : 0;
  --PipelineTracer::threadDepth();
  T.record(std::move(R));
}

void ScopedSpan::arg(std::string_view Key, uint64_t V) {
  if (!Active)
    return;
  SpanArg A;
  A.Key.assign(Key);
  A.U64 = V;
  R.Args.push_back(std::move(A));
}

void ScopedSpan::arg(std::string_view Key, std::string_view V) {
  if (!Active)
    return;
  SpanArg A;
  A.Key.assign(Key);
  A.Str.assign(V);
  A.IsString = true;
  R.Args.push_back(std::move(A));
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

static void writeArgs(JsonWriter &W, const std::vector<SpanArg> &Args) {
  W.key("args");
  W.beginObject();
  for (const SpanArg &A : Args) {
    if (A.IsString)
      W.kv(A.Key, std::string_view(A.Str));
    else
      W.kv(A.Key, A.U64);
  }
  W.endObject();
}

std::string obs::spansToJsonl(const std::vector<SpanRecord> &Spans) {
  std::string Out;
  for (const SpanRecord &S : Spans) {
    JsonWriter W;
    W.beginObject();
    W.kv("name", std::string_view(S.Name));
    W.kv("cat", std::string_view(S.Cat));
    W.kv("ts_us", S.StartNs / 1000);
    W.kv("dur_us", S.DurNs / 1000);
    W.kv("tid", static_cast<uint64_t>(S.Tid));
    W.kv("depth", static_cast<uint64_t>(S.Depth));
    writeArgs(W, S.Args);
    W.endObject();
    Out += W.take();
    Out += '\n';
  }
  return Out;
}

std::string obs::spansToChromeTrace(const std::vector<SpanRecord> &Spans,
                                    uint64_t Dropped) {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const SpanRecord &S : Spans) {
    W.beginObject();
    W.kv("name", std::string_view(S.Name));
    W.kv("cat", std::string_view(S.Cat));
    W.kv("ph", "X");
    W.kv("ts", S.StartNs / 1000);
    W.kv("dur", S.DurNs / 1000);
    W.kv("pid", static_cast<uint64_t>(1));
    W.kv("tid", static_cast<uint64_t>(S.Tid));
    writeArgs(W, S.Args);
    W.endObject();
  }
  W.endArray();
  W.kv("displayTimeUnit", "ms");
  W.key("otherData");
  W.beginObject();
  W.kv("tool", "er-pipeline-tracer");
  W.kv("droppedSpans", Dropped);
  W.endObject();
  W.endObject();
  return W.take();
}

bool obs::exportSpansJsonl(const PipelineTracer &T, const std::string &Path,
                           std::string *Error) {
  return writeTextFile(Path, spansToJsonl(T.snapshot()), Error);
}

bool obs::exportChromeTrace(const PipelineTracer &T, const std::string &Path,
                            std::string *Error) {
  return writeTextFile(Path, spansToChromeTrace(T.snapshot(),
                                                T.droppedSpans()),
                       Error);
}

std::string obs::renderSpanSummary(const std::vector<SpanRecord> &Spans) {
  struct Agg {
    uint64_t Count = 0;
    uint64_t TotalNs = 0;
    uint64_t MaxNs = 0;
  };
  std::map<std::string, Agg> ByName;
  for (const SpanRecord &S : Spans) {
    Agg &A = ByName[S.Name];
    ++A.Count;
    A.TotalNs += S.DurNs;
    A.MaxNs = std::max(A.MaxNs, S.DurNs);
  }
  std::string Out;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf), "%-32s %10s %12s %12s %12s\n", "span",
                "count", "total ms", "mean us", "max us");
  Out += Buf;
  for (const auto &[Name, A] : ByName) {
    std::snprintf(Buf, sizeof(Buf), "%-32s %10llu %12.2f %12.1f %12.1f\n",
                  Name.c_str(), (unsigned long long)A.Count,
                  A.TotalNs / 1e6,
                  A.Count ? (A.TotalNs / 1e3) / A.Count : 0.0, A.MaxNs / 1e3);
    Out += Buf;
  }
  return Out;
}
