//===- Json.h - Minimal JSON emission and validation ------------*- C++ -*-===//
///
/// \file
/// A tiny dependency-free JSON toolkit for the observability exporters and
/// the bench `--json` records: an append-only streaming writer (objects,
/// arrays, scalar values) and a strict syntax validator used by tests and
/// CI to gate exported artifacts. Not a DOM — nothing in this repo needs
/// to *read* JSON structurally, only to emit it correctly and prove that
/// what was emitted parses.
///
//===----------------------------------------------------------------------===//

#ifndef ER_OBS_JSON_H
#define ER_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace er {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (no quotes
/// added): control characters, quote, and backslash per RFC 8259.
std::string jsonEscape(std::string_view S);

/// Streaming JSON writer. Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.value("bench_x");
///   W.key("metrics"); W.beginObject(); ... W.endObject();
///   W.endObject();
///   std::string Doc = W.take();
///
/// The writer inserts commas automatically; mismatched begin/end or a
/// value without a key inside an object is a programming error (asserted).
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(std::string_view K);
  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(uint64_t V);
  void value(int64_t V);
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(double V);
  void value(bool V);
  void nullValue();

  /// Convenience: key + scalar in one call.
  template <typename T> void kv(std::string_view K, T V) {
    key(K);
    value(V);
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void preValue();

  std::string Out;
  /// One frame per open container: 'O' object, 'A' array; the bool is
  /// "needs a comma before the next element".
  struct Frame {
    char Kind;
    bool NeedComma = false;
    bool HaveKey = false; // Objects: key() seen, value pending.
  };
  std::vector<Frame> Stack;
};

/// Strict RFC 8259 syntax check of one JSON document (surrounding
/// whitespace allowed, trailing garbage rejected). Returns false and a
/// position-annotated message in \p Error on the first defect.
bool validateJson(std::string_view Text, std::string *Error = nullptr);

/// Validates line-delimited JSON: every non-empty line must be a valid
/// document. \p Error names the offending line.
bool validateJsonLines(std::string_view Text, std::string *Error = nullptr);

/// Writes \p Content to \p Path (truncating). False + message on I/O
/// failure.
bool writeTextFile(const std::string &Path, std::string_view Content,
                   std::string *Error = nullptr);

} // namespace obs
} // namespace er

#endif // ER_OBS_JSON_H
