//===- BinToolBugs.cpp - Assembler / binutils / TLS bug analogs ------------------===//
//
// Nasm-2004-1287: stack buffer overrun in the preprocessor's error
// directive: the %error message is copied into a fixed stack buffer with no
// bounds check.
//
// Objdump-2018-6323: unsigned integer overflow computing the section-table
// size in 32 bits under-allocates the header array; the disassembly loop
// then reads past it.
//
// Matrixssl-2014-1569: stack buffer overrun verifying an x.509
// certificate: the ASN.1 OID parser trusts the encoded component count and
// writes past the fixed-size component array.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace er;

//===----------------------------------------------------------------------===//
// Nasm-2004-1287
//===----------------------------------------------------------------------===//

static const char *Nasm20041287Source = R"(
// nasm-mini line assembler. Input: lines separated by '\n', ended by a 0
// byte. Lines:
//   'm' reg8 imm8      mov  -> 2 emitted bytes
//   'a' reg8 imm8      add  -> 2 emitted bytes
//   'l' name...        label -> hashed into the symbol table
//   '%' 'e' msg...     %error directive: BUG copies msg to a fixed buffer
global code: u8[4096];
global code_len: i64;
global symtab: u32[64];
global nlines: i64;

fn emit(b: u8) {
  if (code_len < 4096) {
    code[code_len] = b;
    code_len = code_len + 1;
  }
}

fn hash_label(h0: u32, c: u8) -> u32 {
  return (h0 * 33) ^ (c as u32);
}

fn preprocess_error() -> i64 {
  // Copies the directive message into a 48-byte stack buffer. The real bug:
  // no bounds check against the message length.
  var msg: u8[48];
  var n: i64 = 0;
  var c: u8 = input_byte();
  while (c != '\n' && c != 0) {
    msg[n] = c;      // OVERRUN when the message exceeds 48 bytes.
    n = n + 1;
    c = input_byte();
  }
  // "Report" the error by summing the message (keeps the copy alive).
  var sum: i64 = 0;
  for (var i: i64 = 0; i < n; i = i + 1) {
    sum = sum + (msg[i] as i64);
  }
  return sum;
}

fn main() -> i64 {
  var total: i64 = 0;
  var c: u8 = input_byte();
  while (c != 0) {
    nlines = nlines + 1;
    if (c == 'm' || c == 'a') {
      var reg: u8 = input_byte();
      var imm: u8 = input_byte();
      if (c == 'm') { emit(0xb0 + (reg % 8)); } else { emit(0x04); }
      emit(imm);
    } else {
      if (c == 'l') {
        var h: u32 = 5381;
        var lc: u8 = input_byte();
        while (lc != '\n' && lc != 0) {
          h = hash_label(h, lc);
          lc = input_byte();
        }
        symtab[(h % 64) as i64] = h;
        c = lc;
        if (c == 0) { break; }
        c = input_byte();
        continue;
      }
      if (c == '%') {
        if (input_byte() == 'e') {
          // preprocess_error consumes through the end of the line.
          total = total + preprocess_error();
          c = input_byte();
          continue;
        }
      }
    }
    // Skip to end of line.
    c = input_byte();
    while (c != '\n' && c != 0) {
      c = input_byte();
    }
    if (c == 0) { break; }
    c = input_byte();
  }
  print(code_len);
  return total + nlines;
}
)";

BugSpec er::makeNasm20041287() {
  BugSpec S;
  S.Id = "Nasm-2004-1287";
  S.App = "nasm-mini 0.98 preprocessor";
  S.BugType = "Stack buffer overrun";
  S.Multithreaded = false;
  S.Source = Nasm20041287Source;
  S.SolverWorkBudget = 120'000;
  S.PerfBenchmark = "Assemble a large asm file analog";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    unsigned Lines = 10 + R.nextBounded(30);
    for (unsigned L = 0; L < Lines; ++L) {
      unsigned Kind = R.nextBounded(10);
      if (Kind < 5) {
        B.push_back(R.nextBool(0.5) ? 'm' : 'a');
        B.push_back(static_cast<uint8_t>(R.nextBounded(8)));
        B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      } else if (Kind < 8) {
        B.push_back('l');
        unsigned Len = 3 + R.nextBounded(10);
        for (unsigned I = 0; I < Len; ++I)
          B.push_back(static_cast<uint8_t>('a' + R.nextBounded(26)));
      } else {
        B.push_back('%');
        B.push_back('e');
        unsigned Len = 5 + R.nextBounded(30); // Benign: < 48.
        for (unsigned I = 0; I < Len; ++I)
          B.push_back(static_cast<uint8_t>('a' + R.nextBounded(26)));
      }
      B.push_back('\n');
    }
    if (R.nextBool(0.30)) {
      // The exploit line: a %error message longer than the stack buffer.
      B.push_back('%');
      B.push_back('e');
      for (unsigned I = 0; I < 70; ++I)
        B.push_back(static_cast<uint8_t>('A' + (I % 26)));
      B.push_back('\n');
    }
    B.push_back(0);
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned L = 0; L < 1200; ++L) {
      B.push_back(R.nextBool(0.5) ? 'm' : 'a');
      B.push_back(static_cast<uint8_t>(R.nextBounded(8)));
      B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      B.push_back('\n');
    }
    B.push_back(0);
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Objdump-2018-6323
//===----------------------------------------------------------------------===//

static const char *Objdump20186323Source = R"(
// objdump-mini. Input: a tiny object format:
//   header  := 'O' 'B' nsec_lo nsec_hi
//   section := size16 payload{min(size,64)}
// The tool builds a section table then "disassembles" each section.
// BUG: table bytes are computed as nsec * 20 in u16-like arithmetic
// (masked to 16 bits), wrapping for large nsec and under-allocating.
global insn_count: i64;

fn read_u16() -> u32 {
  var lo: u32 = input_byte() as u32;
  var hi: u32 = input_byte() as u32;
  return lo + hi * 256;
}

fn disassemble(p: *u8, n: i64) -> i64 {
  var pc: i64 = 0;
  var ops: i64 = 0;
  while (pc < n) {
    var op: u8 = p[pc];
    if (op < 0x40) {
      pc = pc + 1;               // 1-byte ops.
    } else {
      if (op < 0xc0) {
        pc = pc + 2;             // imm8 ops.
      } else {
        pc = pc + 3;             // imm16 ops.
      }
    }
    ops = ops + 1;
  }
  return ops;
}

fn main() -> i64 {
  if (input_byte() != 'O') { return 1; }
  if (input_byte() != 'B') { return 1; }
  var nsec: u32 = read_u16();
  // VULNERABLE: the element count wraps in 16-bit arithmetic (the original
  // computed a 32-bit size from attacker-controlled 64-bit fields).
  var table_elems: u32 = (nsec * 20) % 65536;
  var table: *u32 = new u32[table_elems as i64];
  if (table == null) { return 2; }

  var total: i64 = 0;
  for (var s: u32 = 0; s < nsec; s = s + 1) {
    var size: u32 = read_u16();
    var take: i64 = size as i64;
    if (take > 64) { take = 64; }
    var payload: u8[64];
    for (var i: i64 = 0; i < take; i = i + 1) {
      payload[i] = input_byte();
    }
    // Record into the (possibly under-sized) table: OOB write for wrapped
    // table_elems.
    table[(s * 20) as i64] = size;
    total = total + disassemble(payload, take);
  }
  insn_count = total;
  delete table;
  print(total);
  return total;
}
)";

BugSpec er::makeObjdump20186323() {
  BugSpec S;
  S.Id = "Objdump-2018-6323";
  S.App = "objdump-mini 2.26";
  S.BugType = "Integer overflow";
  S.Multithreaded = false;
  S.Source = Objdump20186323Source;
  S.SolverWorkBudget = 120'000;
  S.PerfBenchmark = "Disassemble a large binary analog";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B = {'O', 'B'};
    bool Exploit = R.nextBool(0.30);
    // Benign: few sections. Exploit: nsec*20 wraps mod 65536 -> tiny table
    // (e.g. nsec = 3277 -> 65540 % 65536 = 4 elements) but the loop writes
    // at element s*20 >= 4 almost immediately.
    uint32_t NSec = Exploit ? 3277 : 1 + static_cast<uint32_t>(R.nextBounded(6));
    B.push_back(static_cast<uint8_t>(NSec));
    B.push_back(static_cast<uint8_t>(NSec >> 8));
    unsigned Sections = Exploit ? 2 : NSec;
    for (unsigned Sec = 0; Sec < Sections; ++Sec) {
      uint32_t Size = 8 + static_cast<uint32_t>(R.nextBounded(56));
      B.push_back(static_cast<uint8_t>(Size));
      B.push_back(static_cast<uint8_t>(Size >> 8));
      for (uint32_t I = 0; I < Size && I < 64; ++I)
        B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    }
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B = {'O', 'B'};
    uint32_t NSec = 600;
    B.push_back(static_cast<uint8_t>(NSec));
    B.push_back(static_cast<uint8_t>(NSec >> 8));
    for (uint32_t Sec = 0; Sec < NSec; ++Sec) {
      uint32_t Size = 64;
      B.push_back(static_cast<uint8_t>(Size));
      B.push_back(static_cast<uint8_t>(Size >> 8));
      for (uint32_t I = 0; I < Size; ++I)
        B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    }
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Matrixssl-2014-1569
//===----------------------------------------------------------------------===//

static const char *Matrixssl20141569Source = R"(
// matrixssl-mini x.509 verifier. Input: a certificate as nested TLV
// records:
//   cert  := 'C' len fields...
//   field := 'N' len bytes     subject name (hashed)
//          | 'K' len bytes     key material (checksummed)
//          | 'I' count comps   object identifier: count base-128 components
// BUG: the OID parser trusts 'count' and writes components into a fixed
// 16-entry stack array.
global name_hash: u32[1];
global key_sum: u32[1];
global oid_cache: u32[64];

fn parse_oid() -> i64 {
  var comps: u32[16];
  var count: i64 = input_byte() as i64;
  var total: i64 = 0;
  for (var i: i64 = 0; i < count; i = i + 1) {
    // Base-128 continuation encoding, as in DER.
    var v: u32 = 0;
    var b: u8 = input_byte();
    while (b >= 128) {
      v = v * 128 + ((b - 128) as u32);
      b = input_byte();
    }
    v = v * 128 + (b as u32);
    comps[i] = v;           // OVERRUN when count > 16.
    // Known-OID lookup cache, keyed by component value; duplicate
    // components are counted for the policy check.
    if (oid_cache[(v % 64) as i64] == v) {
      total = total + 1;
    }
    oid_cache[(v % 64) as i64] = v;
    total = total + (v as i64);
  }
  // Validate the OID prefix (iso.org arc).
  if (count >= 2) {
    if (comps[0] != 1 || comps[1] != 3) {
      return 0 - 1;
    }
  }
  return total;
}

fn main() -> i64 {
  if (input_byte() != 'C') { return 1; }
  var len: i64 = input_byte() as i64;
  var total: i64 = 0;
  for (var f: i64 = 0; f < len; f = f + 1) {
    var tag: u8 = input_byte();
    if (tag == 'N') {
      var n: i64 = input_byte() as i64;
      var h: u32 = 5381;
      for (var i: i64 = 0; i < n; i = i + 1) {
        h = (h * 33) ^ (input_byte() as u32);
      }
      name_hash[0] = h;
    } else {
      if (tag == 'K') {
        var n: i64 = input_byte() as i64;
        var sum: u32 = 0;
        for (var i: i64 = 0; i < n; i = i + 1) {
          sum = sum + (input_byte() as u32);
        }
        key_sum[0] = sum;
      } else {
        if (tag == 'I') {
          total = total + parse_oid();
        }
      }
    }
  }
  print(total);
  return total;
}
)";

BugSpec er::makeMatrixssl20141569() {
  BugSpec S;
  S.Id = "Matrixssl-2014-1569";
  S.App = "matrixssl-mini 4.0 x.509 parser";
  S.BugType = "Stack buffer overrun";
  S.Multithreaded = false;
  S.Source = Matrixssl20141569Source;
  S.SolverWorkBudget = 8'000;
  S.PerfBenchmark = "Official test analog (verify certificate chain)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B = {'C'};
    bool Exploit = R.nextBool(0.30);
    unsigned Fields = 3 + R.nextBounded(4);
    B.push_back(static_cast<uint8_t>(Fields));
    for (unsigned F = 0; F < Fields; ++F) {
      unsigned Kind = R.nextBounded(3);
      bool Last = F + 1 == Fields;
      if (Exploit && Last)
        Kind = 2;
      if (Kind == 0) {
        B.push_back('N');
        unsigned N = 4 + R.nextBounded(20);
        B.push_back(static_cast<uint8_t>(N));
        for (unsigned I = 0; I < N; ++I)
          B.push_back(static_cast<uint8_t>('a' + R.nextBounded(26)));
      } else if (Kind == 1) {
        B.push_back('K');
        unsigned N = 16 + R.nextBounded(48);
        B.push_back(static_cast<uint8_t>(N));
        for (unsigned I = 0; I < N; ++I)
          B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      } else {
        B.push_back('I');
        unsigned Count = (Exploit && Last) ? 20 : 2 + R.nextBounded(8);
        B.push_back(static_cast<uint8_t>(Count));
        // First two components: the valid iso.org arc.
        B.push_back(1);
        B.push_back(3);
        for (unsigned I = 2; I < Count; ++I) {
          if (R.nextBool(0.3))
            B.push_back(static_cast<uint8_t>(128 + R.nextBounded(100)));
          B.push_back(static_cast<uint8_t>(R.nextBounded(120)));
        }
      }
    }
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B = {'C'};
    B.push_back(200);
    for (unsigned F = 0; F < 200; ++F) {
      B.push_back('K');
      B.push_back(60);
      for (unsigned I = 0; I < 60; ++I)
        B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    }
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}
