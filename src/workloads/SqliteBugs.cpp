//===- SqliteBugs.cpp - SQLite bug analogs --------------------------------------===//
//
// SQLite-7be932d: NULL pointer dereference from an adverse interaction
// between the CLI's ".stats" and ".eqp" modes: disabling stats frees the
// stats object, but the explain-query-plan path still holds the stale
// pointer cache and dereferences it on the next query.
//
// SQLite-787fa71: inconsistent data structure when a multi-use subquery is
// implemented by a co-routine: the co-routine fast path appends rows to the
// sorted index without maintaining order, and a later full scan hits the
// ordering assertion.
//
// SQLite-4e8e485: crash on a query using an OR term in the WHERE clause:
// the term analyzer increments the term count for an OR whose right branch
// failed to parse, leaving a null entry that the evaluator dereferences.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace er;

//===----------------------------------------------------------------------===//
// SQLite-7be932d
//===----------------------------------------------------------------------===//

static const char *Sqlite7be932dSource = R"(
// sqlite-mini CLI. Commands (byte stream, 'X' ends):
//   'S' -> toggle .stats   (on: allocate stats object; off: free it)
//   'E' -> toggle .eqp     (on: cache the stats pointer for plan printing)
//   'Q' lo hi -> run "SELECT ... WHERE lo <= v < hi" over the table
global table: u32[256];
global hist: u32[32];
global stats_obj: *i64;
global stats_on: i64;
global eqp_on: i64;

fn init_table() {
  var seed: u32 = 123456789;
  for (var i: i64 = 0; i < 256; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    table[i] = (seed >> 8) % 1000;
  }
}

fn run_query(lo: u32, hi: u32) -> i64 {
  var rows: i64 = 0;
  var sum: u32 = 0;
  for (var i: i64 = 0; i < 256; i = i + 1) {
    var v: u32 = table[i];
    if (v >= lo && v < hi) {
      rows = rows + 1;
      sum = sum + v;
      hist[((v ^ lo) % 32) as i64] = hist[((v ^ lo) % 32) as i64] + 1;
    }
  }
  if (stats_on == 1) {
    stats_obj[0] = stats_obj[0] + rows;
    stats_obj[1] = stats_obj[1] + (sum as i64);
  }
  if (eqp_on == 1) {
    // BUG: the plan printer assumes ".stats" is still on and reads the
    // stats object without a guard; after ".stats off" the pointer is null.
    var plan_rows: i64 = stats_obj[0];
    print(plan_rows);
  }
  return rows;
}

fn main() -> i64 {
  init_table();
  stats_obj = null;
  var total: i64 = 0;
  var cmd: u8 = input_byte();
  while (cmd != 'X') {
    if (cmd == 'S') {
      if (stats_on == 0) {
        stats_obj = new i64[4];
        stats_on = 1;
      } else {
        delete stats_obj;
        stats_obj = null;
        stats_on = 0;
        // BUG (part 2): ".eqp" mode is not forced off with it.
      }
    } else {
      if (cmd == 'E') {
        eqp_on = 1 - eqp_on;
      } else {
        if (cmd == 'Q') {
          var lo: u32 = input_byte() as u32;
          var hi: u32 = (input_byte() as u32) * 8;
          total = total + run_query(lo, hi);
        }
      }
    }
    cmd = input_byte();
  }
  return total;
}
)";

BugSpec er::makeSqlite7be932d() {
  BugSpec S;
  S.Id = "SQLite-7be932d";
  S.App = "sqlite-mini 3.27 CLI";
  S.BugType = "NULL pointer dereference";
  S.Multithreaded = false;
  S.Source = Sqlite7be932dSource;
  S.SolverWorkBudget = 120'000;
  S.PerfBenchmark = "Official fuzz test analog (random query stream)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    auto Query = [&] {
      B.push_back('Q');
      B.push_back(static_cast<uint8_t>(R.nextBounded(200)));
      B.push_back(static_cast<uint8_t>(50 + R.nextBounded(70)));
    };
    // Benign prefix.
    for (unsigned K = 0; K < 2 + R.nextBounded(4); ++K)
      Query();
    if (R.nextBool(0.30)) {
      // The failing interaction: .stats on, .eqp on, .stats off, query:
      // the plan printer dereferences the freed-and-nulled stats object.
      B.push_back('S');
      Query();
      B.push_back('E');
      B.push_back('S');
      Query();
    } else if (R.nextBool(0.5)) {
      // Benign: .eqp only while .stats stays on.
      B.push_back('S');
      B.push_back('E');
      Query();
      Query();
      B.push_back('E');
      B.push_back('S');
      Query();
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    B.push_back('S');
    for (unsigned K = 0; K < 400; ++K) {
      B.push_back('Q');
      B.push_back(static_cast<uint8_t>(R.nextBounded(200)));
      B.push_back(static_cast<uint8_t>(50 + R.nextBounded(70)));
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// SQLite-787fa71
//===----------------------------------------------------------------------===//

static const char *Sqlite787fa71Source = R"(
// sqlite-mini sorted index with a co-routine subquery fast path.
// Input: records 'i' v16 (insert), 'q' (multi-use subquery: switches the
// next inserts to the co-routine path), 's' (full scan, checks ordering).
global index_vals: u32[512];
global index_len: i64;
global coroutine: i64;

fn insert_sorted(v: u32) {
  var i: i64 = index_len;
  while (i > 0 && index_vals[i - 1] > v) {
    index_vals[i] = index_vals[i - 1];
    i = i - 1;
  }
  index_vals[i] = v;
  index_len = index_len + 1;
}

fn insert_coroutine(v: u32) {
  // BUG: the co-routine path appends without restoring sorted order; fine
  // for a single use of the subquery, wrong when the index is scanned
  // again later (the "multi-use" case of the ticket).
  index_vals[index_len] = v;
  index_len = index_len + 1;
}

fn scan() -> i64 {
  var sum: i64 = 0;
  for (var i: i64 = 0; i < index_len; i = i + 1) {
    if (i > 0) {
      // The B-tree cursor invariant.
      assert(index_vals[i - 1] <= index_vals[i]);
    }
    sum = sum + (index_vals[i] as i64);
  }
  return sum;
}

fn read_u16() -> u32 {
  var lo: u32 = input_byte() as u32;
  var hi: u32 = input_byte() as u32;
  return lo + hi * 256;
}

fn main() -> i64 {
  var total: i64 = 0;
  var tag: u8 = input_byte();
  while (tag != 'X') {
    if (tag == 'i') {
      var v: u32 = read_u16();
      if (index_len < 500) {
        if (coroutine == 1) {
          insert_coroutine(v);
        } else {
          insert_sorted(v);
        }
      }
    } else {
      if (tag == 'q') {
        coroutine = 1;
      } else {
        if (tag == 's') {
          total = total + scan();
          coroutine = 0;
        }
      }
    }
    tag = input_byte();
  }
  return total;
}
)";

BugSpec er::makeSqlite787fa71() {
  BugSpec S;
  S.Id = "SQLite-787fa71";
  S.App = "sqlite-mini 3.25 co-routine subquery";
  S.BugType = "Inconsistent data-structure";
  S.Multithreaded = false;
  S.Source = Sqlite787fa71Source;
  S.SolverWorkBudget = 12'000;
  S.PerfBenchmark = "Official fuzz test analog (insert/scan mix)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    auto Insert = [&](uint32_t V) {
      B.push_back('i');
      B.push_back(static_cast<uint8_t>(V));
      B.push_back(static_cast<uint8_t>(V >> 8));
    };
    unsigned N = 20 + R.nextBounded(40);
    for (unsigned K = 0; K < N; ++K)
      Insert(static_cast<uint32_t>(R.nextBounded(60000)));
    B.push_back('s');
    if (R.nextBool(0.35)) {
      // Multi-use subquery: co-routine insert of a small value after large
      // ones, then a second scan trips the ordering assertion.
      B.push_back('q');
      Insert(static_cast<uint32_t>(R.nextBounded(5)));
      Insert(60001 + static_cast<uint32_t>(R.nextBounded(1000)));
      B.push_back('s');
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned Round = 0; Round < 12; ++Round) {
      for (unsigned K = 0; K < 40; ++K) {
        B.push_back('i');
        uint32_t V = static_cast<uint32_t>(R.nextBounded(60000));
        B.push_back(static_cast<uint8_t>(V));
        B.push_back(static_cast<uint8_t>(V >> 8));
      }
      B.push_back('s');
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// SQLite-4e8e485
//===----------------------------------------------------------------------===//

static const char *Sqlite4e8e485Source = R"(
// sqlite-mini WHERE-clause term analyzer. A query is a byte-encoded
// expression over column comparisons:
//   expr := term (('&' | '|') term)*
//   term := 'c' col op val     comparison (op: '<' '>' '=')
//         | '!'                placeholder that fails to parse
// The analyzer collects terms into a table of pointers; BUG: an OR whose
// right operand fails to parse still increments the term count, leaving a
// null slot the evaluator dereferences.
global rows: u32[128];
global match_hist: u32[32];
global nterms: i64;
global term_ops: u8[16];
global term_ptrs: *i64[16];

fn init_rows() {
  var seed: u32 = 42;
  for (var i: i64 = 0; i < 128; i = i + 1) {
    seed = seed * 1664525 + 1013904223;
    rows[i] = (seed >> 10) % 500;
  }
}

fn parse_term() -> i64 {
  // Returns 1 when a term was parsed, 0 on parse failure.
  var tag: u8 = input_byte();
  if (tag == 'c') {
    var col: u8 = input_byte();
    var op: u8 = input_byte();
    var val: u8 = input_byte();
    var t: *i64 = new i64[3];
    t[0] = (col % 4) as i64;
    t[1] = op as i64;
    t[2] = (val as i64) * 2;
    term_ptrs[nterms] = t;
    term_ops[nterms] = op;
    nterms = nterms + 1;
    return 1;
  }
  return 0;
}

fn eval_term(k: i64, v: u32) -> i64 {
  var t: *i64 = term_ptrs[k];
  // BUG SITE: t is null for the phantom OR term.
  var op: i64 = t[1];
  var bound: i64 = t[2];
  if (op == '<' as i64) { if ((v as i64) < bound) { return 1; } return 0; }
  if (op == '>' as i64) { if ((v as i64) > bound) { return 1; } return 0; }
  if ((v as i64) == bound) { return 1; }
  return 0;
}

fn run_where() -> i64 {
  var hits: i64 = 0;
  var t0: *i64 = term_ptrs[0];
  for (var i: i64 = 0; i < 128; i = i + 1) {
    var v: u32 = rows[i];
    // Query-plan statistics: a histogram keyed by the first term's bound
    // (value-hashed, like the planner's stat4 machinery), consulted to
    // re-rank terms once a bucket gets hot.
    var key: i64 = ((v as i64) ^ t0[2]) % 32;
    match_hist[key] = match_hist[key] + 1;
    if (match_hist[((t0[2] + i) % 32)] > 16) {
      hits = hits + 0; // Re-ranking hook (no-op in this build).
    }
    var ok: i64 = 1;
    for (var k: i64 = 0; k < nterms; k = k + 1) {
      if (eval_term(k, v) == 0) {
        ok = 0;
        break;
      }
    }
    hits = hits + ok;
  }
  return hits;
}

fn main() -> i64 {
  init_rows();
  nterms = 0;
  if (parse_term() == 0) { return 0; }
  var conn: u8 = input_byte();
  while (conn == '&' || conn == '|') {
    var parsed: i64 = parse_term();
    if (parsed == 0) {
      if (conn == '|') {
        // BUG: the OR analyzer reserves a slot for the unparsed right
        // branch ("virtual term" in the ticket) but never fills it.
        term_ptrs[nterms] = null;
        nterms = nterms + 1;
      }
    }
    conn = input_byte();
  }
  return run_where();
}
)";

BugSpec er::makeSqlite4e8e485() {
  BugSpec S;
  S.Id = "SQLite-4e8e485";
  S.App = "sqlite-mini 3.8 WHERE analyzer";
  S.BugType = "NULL pointer dereference";
  S.Multithreaded = false;
  S.Source = Sqlite4e8e485Source;
  S.SolverWorkBudget = 9'000;
  S.PerfBenchmark = "Official fuzz test analog (random WHERE clauses)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    auto Term = [&] {
      B.push_back('c');
      B.push_back(static_cast<uint8_t>(R.nextBounded(4)));
      B.push_back("<>="[R.nextBounded(3)]);
      B.push_back(static_cast<uint8_t>(R.nextBounded(250)));
    };
    Term();
    unsigned Extra = R.nextBounded(4);
    for (unsigned K = 0; K < Extra; ++K) {
      B.push_back(R.nextBool(0.5) ? '&' : '|');
      Term();
    }
    if (R.nextBool(0.30)) {
      B.push_back('|');
      B.push_back('!'); // The unparsable OR branch.
    }
    B.push_back(';'); // Terminates the connector loop.
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    B.push_back('c');
    B.push_back(0);
    B.push_back('<');
    B.push_back(240);
    for (unsigned K = 0; K < 12; ++K) {
      B.push_back('&');
      B.push_back('c');
      B.push_back(static_cast<uint8_t>(R.nextBounded(4)));
      B.push_back("<>="[R.nextBounded(3)]);
      B.push_back(static_cast<uint8_t>(R.nextBounded(250)));
    }
    B.push_back(';');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}
