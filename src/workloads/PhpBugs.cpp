//===- PhpBugs.cpp - PHP interpreter bug analogs --------------------------------===//
//
// PHP-2012-2386: integer overflow in the unserializer's allocation-size
// computation (Secunia SA44335): a 32-bit count*elemsize wraps, the array
// buffer is under-allocated, and element deserialization writes past it.
//
// PHP-74194: heap buffer overflow when serializing an ArrayObject: the
// size-counting pass undercounts entries whose value is zero (numDigits(0)
// computed as 0), so the serialization pass overruns the output buffer.
// The serializer also maintains a refcount hash table indexed by value
// hashes, which builds the long symbolic write chains that make this the
// slowest reconstruction in Table 1.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace er;

//===----------------------------------------------------------------------===//
// PHP-2012-2386
//===----------------------------------------------------------------------===//

static const char *Php20122386Source = R"(
// php-mini unserializer. Input grammar (byte stream):
//   doc    := record* 'E'
//   record := 'a' ':' digits ':' '{' elem* '}'     array with declared count
//           | 's' len:u8 byte{len}                 skipped string payload
//           | 'c'                                  checksum pass over table
//   elem   := 'i' ':' digits ';'
global table: u32[64];
global parsed: i64[1];

fn read_digits() -> u32 {
  var v: u32 = 0;
  var b: u8 = input_byte();
  while (b >= '0' && b <= '9') {
    v = v * 10 + ((b - '0') as u32);
    b = input_byte();
  }
  // b consumed the terminator (':' or ';').
  return v;
}

fn checksum() -> u32 {
  var h: u32 = 2166136261;
  for (var i: i64 = 0; i < 64; i = i + 1) {
    h = (h ^ table[i]) * 16777619;
  }
  return h;
}

fn parse_array() {
  // ':' already consumed by dispatch; read the declared element count.
  var count: u32 = read_digits();
  // VULNERABLE SIZE COMPUTATION: bytes wraps in 32 bits for large counts.
  var bytes: u32 = count * 12;
  var buf: *u8 = new u8[bytes as i64];
  if (buf == null) { return; }
  if (input_byte() != '{') { delete buf; return; }
  var cursor: i64 = 0;
  var b: u8 = input_byte();
  while (b == 'i') {
    if (input_byte() != ':') { break; }
    var v: u32 = read_digits();
    // Serialize the element into 12 bytes at the cursor; for wrapped
    // 'bytes' this runs past the allocation.
    for (var k: i64 = 0; k < 12; k = k + 1) {
      var sh: u32 = ((k % 4) * 8) as u32;
      buf[cursor + k] = ((v >> sh) & 255) as u8;
    }
    cursor = cursor + 12;
    table[(v % 64) as i64] = v;
    parsed[0] = parsed[0] + 1;
    b = input_byte();
  }
  delete buf;
}

fn main() -> i64 {
  var total: i64 = 0;
  var tag: u8 = input_byte();
  while (tag != 'E') {
    if (tag == 'a') {
      if (input_byte() == ':') {
        parse_array();
      }
    } else {
      if (tag == 's') {
        var len: u8 = input_byte();
        for (var i: i64 = 0; i < (len as i64); i = i + 1) {
          var skip: u8 = input_byte();
          total = total + (skip as i64);
        }
      } else {
        if (tag == 'c') {
          total = total + (checksum() as i64);
        }
      }
    }
    tag = input_byte();
  }
  print(total);
  return parsed[0];
}
)";

namespace {

void appendDigits(std::vector<uint8_t> &Out, uint64_t V) {
  std::string S = std::to_string(V);
  for (char C : S)
    Out.push_back(static_cast<uint8_t>(C));
}

void appendArray(std::vector<uint8_t> &Out, uint64_t Count,
                 const std::vector<uint32_t> &Elems) {
  Out.push_back('a');
  Out.push_back(':');
  appendDigits(Out, Count);
  Out.push_back(':');
  Out.push_back('{');
  for (uint32_t V : Elems) {
    Out.push_back('i');
    Out.push_back(':');
    appendDigits(Out, V);
    Out.push_back(';');
  }
  Out.push_back('}');
}

} // namespace

BugSpec er::makePhp20122386() {
  BugSpec S;
  S.Id = "PHP-2012-2386";
  S.App = "php-mini 5.3 unserializer";
  S.BugType = "Integer overflow";
  S.Multithreaded = false;
  S.Source = Php20122386Source;
  S.SolverWorkBudget = 60'000;
  S.PerfBenchmark = "Benchmark script analog (serialize/unserialize mix)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    // A few benign records.
    unsigned Records = 1 + R.nextBounded(3);
    for (unsigned K = 0; K < Records; ++K) {
      std::vector<uint32_t> Elems;
      unsigned N = 2 + R.nextBounded(12);
      for (unsigned I = 0; I < N; ++I)
        Elems.push_back(static_cast<uint32_t>(R.nextBounded(100000)));
      appendArray(B, Elems.size(), Elems);
      if (R.nextBool(0.5))
        B.push_back('c');
    }
    if (R.nextBool(0.30)) {
      // The exploit document: declared count 357913942 * 12 wraps to 8
      // bytes; two elements suffice to overrun.
      appendArray(B, 357913942, {7, 9});
    }
    B.push_back('E');
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned K = 0; K < 160; ++K) {
      std::vector<uint32_t> Elems;
      for (unsigned I = 0; I < 24; ++I)
        Elems.push_back(static_cast<uint32_t>(R.nextBounded(1000000)));
      appendArray(B, Elems.size(), Elems);
      B.push_back('c');
    }
    B.push_back('E');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// PHP-74194
//===----------------------------------------------------------------------===//

static const char *Php74194Source = R"(
// php-mini ArrayObject serializer. Input: 'n' entries as length-prefixed
// decimal values. The serializer counts output bytes in one pass, then
// emits "i:<digits>;" per entry into an exactly-sized heap buffer.
// BUG: num_digits(0) returns 0, so entries with value 0 undercount the
// buffer by one and the emission pass overruns the heap allocation.
global refcounts: u32[128];
global spill: i64[1];

fn num_digits(v: u32) -> i64 {
  // BUG: returns 0 for v == 0 (should be 1).
  var n: i64 = 0;
  var x: u32 = v;
  while (x > 0) {
    n = n + 1;
    x = x / 10;
  }
  return n;
}

fn bump_ref(v: u32) {
  // Open-coded refcount histogram: value-hashed, no branching on the slot,
  // so the writes form symbolic chains during reconstruction.
  var h: i64 = ((v ^ (v >> 7)) % 128) as i64;
  refcounts[h] = refcounts[h] + 1;
  if (refcounts[(v % 128) as i64] > 200) {
    spill[0] = spill[0] + 1;
  }
}

fn emit(buf: *u8, at: i64, v: u32) -> i64 {
  // Writes "i:<digits>;" starting at 'at'; returns the new cursor.
  buf[at] = 'i';
  buf[at + 1] = ':';
  var cursor: i64 = at + 2;
  // The emitter always writes at least one digit ("0"), but the counting
  // pass used num_digits(0) == 0: the undercount that overruns the buffer.
  var n: i64 = num_digits(v);
  if (n == 0) {
    buf[cursor] = '0';
    cursor = cursor + 1;
  }
  var k: i64 = n;
  while (k > 0) {
    var div: u32 = 1;
    for (var j: i64 = 1; j < k; j = j + 1) { div = div * 10; }
    buf[cursor] = ('0' + ((v / div) % 10) as u8) as u8;
    cursor = cursor + 1;
    k = k - 1;
  }
  buf[cursor] = ';';
  return cursor + 1;
}

fn main() -> i64 {
  var count: i64 = input_byte() as i64;
  var values: u32[256];
  if (count > 256) { count = 256; }

  // Read entries: each value is a u8 length then that many decimal digits.
  for (var i: i64 = 0; i < count; i = i + 1) {
    var len: i64 = (input_byte() % 8) as i64;
    var v: u32 = 0;
    for (var j: i64 = 0; j < len; j = j + 1) {
      v = v * 10 + ((input_byte() % 10) as u32);
    }
    values[i] = v;
    bump_ref(v);
  }

  // Pass 1: count output size (vulnerable: 0-valued entries undercount).
  var size: i64 = 0;
  for (var i: i64 = 0; i < count; i = i + 1) {
    size = size + 3 + num_digits(values[i]); // 'i' ':' digits ';'
  }
  if (size == 0) { return 0; }

  // Pass 2: emit.
  var buf: *u8 = new u8[size];
  var cursor: i64 = 0;
  for (var i: i64 = 0; i < count; i = i + 1) {
    cursor = emit(buf, cursor, values[i]);
  }
  var out: i64 = buf[0] as i64;
  delete buf;
  return out + spill[0];
}
)";

BugSpec er::makePhp74194() {
  BugSpec S;
  S.Id = "PHP-74194";
  S.App = "php-mini 7.1 ArrayObject serializer";
  S.BugType = "Heap buffer overflow";
  S.Multithreaded = false;
  S.Source = Php74194Source;
  S.SolverWorkBudget = 150'000;
  S.PerfBenchmark = "Benchmark script analog (serialize-heavy)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    unsigned Count = 24 + static_cast<unsigned>(R.nextBounded(40));
    B.push_back(static_cast<uint8_t>(Count));
    bool InjectZero = R.nextBool(0.35);
    unsigned ZeroAt = 3 + static_cast<unsigned>(R.nextBounded(Count - 3));
    for (unsigned I = 0; I < Count; ++I) {
      if (InjectZero && I == ZeroAt) {
        // len 1, digit 0 -> value 0: triggers the undercount.
        B.push_back(1);
        B.push_back('0');
        continue;
      }
      unsigned Len = 1 + static_cast<unsigned>(R.nextBounded(6));
      B.push_back(static_cast<uint8_t>(Len));
      B.push_back(static_cast<uint8_t>('1' + R.nextBounded(9))); // Non-zero.
      for (unsigned J = 1; J < Len; ++J)
        B.push_back(static_cast<uint8_t>('0' + R.nextBounded(10)));
    }
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    B.push_back(255);
    for (unsigned I = 0; I < 255; ++I) {
      B.push_back(6);
      B.push_back(static_cast<uint8_t>('1' + R.nextBounded(9)));
      for (unsigned J = 1; J < 6; ++J)
        B.push_back(static_cast<uint8_t>('0' + R.nextBounded(10)));
    }
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}
