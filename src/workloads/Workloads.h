//===- Workloads.h - The 13 Table-1 bug workloads ----------------*- C++ -*-===//
///
/// \file
/// The evaluation corpus: one MiniLang program per Table 1 row of the
/// paper, with the same bug *type* and an application structure evocative
/// of the original system (interpreters, parsers, query planners, KV
/// stores, compressors). Each spec bundles:
///
///  - the program source,
///  - a production input distribution (mostly benign, sometimes failing),
///  - a long benign performance workload (for the Fig. 6 overhead runs),
///  - the solver work budget that models the paper's 30s solver timeout at
///    this program's scale.
///
/// The real applications (PHP, SQLite, memcached, ...) cannot be traced
/// with real Intel PT in this environment; DESIGN.md documents why these
/// analogs preserve the reconstruction behaviour being measured.
///
//===----------------------------------------------------------------------===//

#ifndef ER_WORKLOADS_WORKLOADS_H
#define ER_WORKLOADS_WORKLOADS_H

#include "ir/IR.h"
#include "support/Rng.h"
#include "vm/Input.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace er {

/// One evaluation bug.
struct BugSpec {
  std::string Id;      ///< Table 1 identifier, e.g. "PHP-2012-2386".
  std::string App;     ///< Application analog name.
  std::string BugType; ///< Table 1 "Bug Type" column.
  bool Multithreaded = false;
  std::string Source;  ///< MiniLang program.
  /// Production input distribution: must reach the failure with
  /// non-negligible probability but is mostly benign.
  std::function<ProgramInput(Rng &)> ProductionInput;
  /// Long benign run used by the runtime-overhead experiments.
  std::function<ProgramInput(Rng &)> PerfInput;
  /// Stall threshold (the analog of the paper's 30s solver timeout, scaled
  /// to this program's constraint complexity).
  uint64_t SolverWorkBudget = 200'000;
  unsigned VmChunkSize = 120;
  /// Run-to-run measurement noise for overhead experiments (I/O-heavy
  /// workloads are noisier, cf. libpng in Section 5.3).
  double MeasurementNoise = 0.0005;
  /// Table 1 "Performance Benchmark" column analog.
  std::string PerfBenchmark;
};

/// All 13 bugs, in Table 1 order.
const std::vector<BugSpec> &allBugSpecs();

/// Lookup by id; null if unknown. Searches the hand-built Table-1 specs
/// first, then any generated specs registered below.
const BugSpec *findBug(const std::string &Id);

/// Registers generated campaigns (src/gen/) so fleet campaigns can resolve
/// their BugIds through findBug exactly like hand-built workloads.
/// Replaces any previously registered generated set. Pointers previously
/// returned by findBug for generated ids are invalidated.
void registerGeneratedSpecs(std::vector<BugSpec> Specs);

/// The currently registered generated specs (empty until registration).
const std::vector<BugSpec> &generatedBugSpecs();

/// Compiles a spec's program (fatal on error — specs are tested).
std::unique_ptr<Module> compileBug(const BugSpec &Spec);

/// MiniLang source line count (the Table 1 "LoC" analog).
unsigned sourceLineCount(const BugSpec &Spec);

// Individual spec factories (one per Table 1 row).
BugSpec makePhp20122386();
BugSpec makePhp74194();
BugSpec makeSqlite7be932d();
BugSpec makeSqlite787fa71();
BugSpec makeSqlite4e8e485();
BugSpec makeNasm20041287();
BugSpec makeObjdump20186323();
BugSpec makeMatrixssl20141569();
BugSpec makeMemcached201911596();
BugSpec makeLibpng20040597();
BugSpec makeBash108885();
BugSpec makePython20181000030();
BugSpec makePbzip2();

} // namespace er

#endif // ER_WORKLOADS_WORKLOADS_H
