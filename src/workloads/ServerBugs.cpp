//===- ServerBugs.cpp - memcached / libpng / bash bug analogs --------------------===//
//
// Memcached-2019-11596: NULL pointer dereference in a multithreaded
// key-value store: a delete on the main thread nulls an item slot between
// the worker's lookup and its use (coarse-grained race, as per the paper's
// interleaving hypothesis).
//
// Libpng-2004-0597: buffer overflow reading a tRNS-like chunk: the chunk
// length from the file is trusted when copying into a fixed palette
// transparency buffer.
//
// Bash-108885: a 4-byte script triggers a null pointer dereference in the
// word expander: closing an array subscript without an open word leaves
// the current-word pointer null.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace er;

//===----------------------------------------------------------------------===//
// Memcached-2019-11596
//===----------------------------------------------------------------------===//

static const char *Memcached201911596Source = R"(
// memcached-mini: a worker thread serves GETs from a request queue while
// the main thread applies SET/DELETE commands. Items live in a slot table
// of pointers.
//   main input: ops 'g' k (enqueue get), 's' k v (set), 'd' k (delete),
//               'X' end.
// BUG: the worker checks items[k] for null, then recomputes a "hash
// verification" before using the pointer; a delete may null the slot in
// that window.
global items: *i64[32];
global getq: i64[1024];
global getq_len: i64[1];
global served: i64[1];
global done: i64[1];

fn worker(p: *i64) {
  var cursor: i64 = 0;
  while (done[0] == 0 || cursor < getq_len[0]) {
    if (cursor < getq_len[0]) {
      var k: i64 = getq[cursor];
      cursor = cursor + 1;
      var it: *i64 = items[k];
      if (it != null) {
        // The race window: item-key "verification" between check and use.
        var h: i64 = 0;
        for (var i: i64 = 0; i < 24; i = i + 1) {
          h = h + k * i;
        }
        // Re-read the slot (the real bug re-read a lru pointer field).
        var it2: *i64 = items[k];
        var v: i64 = it2[0];        // NULL DEREF if deleted in the window.
        served[0] = served[0] + v + h;
      }
    }
  }
}

fn main() -> i64 {
  var d: i64[1];
  var t: i64 = spawn(worker, d);
  var cmd: u8 = input_byte();
  while (cmd != 'X') {
    if (cmd == 'g') {
      var k: i64 = (input_byte() % 32) as i64;
      if (getq_len[0] < 1024) {
        getq[getq_len[0]] = k;
        getq_len[0] = getq_len[0] + 1;
      }
    } else {
      if (cmd == 's') {
        var k: i64 = (input_byte() % 32) as i64;
        var v: i64 = input_byte() as i64;
        if (items[k] == null) {
          items[k] = new i64[2];
        }
        var it: *i64 = items[k];
        it[0] = v;
      } else {
        if (cmd == 'd') {
          var k: i64 = (input_byte() % 32) as i64;
          if (items[k] != null) {
            delete items[k];
            items[k] = null;
          }
        }
      }
    }
    cmd = input_byte();
  }
  done[0] = 1;
  join(t);
  return served[0];
}
)";

BugSpec er::makeMemcached201911596() {
  BugSpec S;
  S.Id = "Memcached-2019-11596";
  S.App = "memcached-mini 1.5 kv-store";
  S.BugType = "NULL pointer dereference";
  S.Multithreaded = true;
  S.Source = Memcached201911596Source;
  S.SolverWorkBudget = 120'000;
  S.VmChunkSize = 24; // Fine-grained interleaving to open the race window.
  S.PerfBenchmark = "memtier_benchmark analog (get/set mix)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    // Seed a few keys.
    for (unsigned K = 0; K < 6; ++K) {
      B.push_back('s');
      B.push_back(static_cast<uint8_t>(K));
      B.push_back(static_cast<uint8_t>(10 + K));
    }
    // Interleave gets and deletes on a hot key: whether the failure
    // triggers depends on the schedule.
    unsigned Ops = 20 + R.nextBounded(30);
    for (unsigned K = 0; K < Ops; ++K) {
      unsigned Kind = R.nextBounded(10);
      uint8_t Key = static_cast<uint8_t>(R.nextBounded(6));
      if (Kind < 6) {
        B.push_back('g');
        B.push_back(Key);
      } else if (Kind < 8) {
        B.push_back('d');
        B.push_back(Key);
      } else {
        B.push_back('s');
        B.push_back(Key);
        B.push_back(static_cast<uint8_t>(R.nextBounded(200)));
      }
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned K = 0; K < 8; ++K) {
      B.push_back('s');
      B.push_back(static_cast<uint8_t>(K));
      B.push_back(static_cast<uint8_t>(K));
    }
    for (unsigned K = 0; K < 900; ++K) {
      B.push_back('g');
      B.push_back(static_cast<uint8_t>(R.nextBounded(8)));
    }
    B.push_back('X');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Libpng-2004-0597
//===----------------------------------------------------------------------===//

static const char *Libpng20040597Source = R"(
// libpng-mini chunk reader. Input: chunks until 'E':
//   chunk := type:u8 len:u8 payload{len}
//   types: 'H' header (13 bytes), 'P' palette (len bytes, <= 768 used),
//          'T' transparency (BUG: len trusted, copied into u8[64]),
//          'D' image data (checksummed).
global palette: u8[768];
global trans: u8[64];
global width: i64[1];
global height: i64[1];
global data_sum: u32[1];

fn read_chunk_header(tp: *u8, ln: *i64) -> i64 {
  var t: u8 = input_byte();
  if (t == 'E') { return 0; }
  tp[0] = t;
  ln[0] = input_byte() as i64;
  return 1;
}

fn main() -> i64 {
  var tp: u8[1];
  var ln: i64[1];
  var chunks: i64 = 0;
  while (read_chunk_header(tp, ln) == 1) {
    chunks = chunks + 1;
    var t: u8 = tp[0];
    var len: i64 = ln[0];
    if (t == 'H') {
      width[0] = input_byte() as i64;
      height[0] = input_byte() as i64;
      for (var i: i64 = 2; i < len; i = i + 1) {
        var skip: u8 = input_byte();
        data_sum[0] = data_sum[0] + (skip as u32);
      }
    } else {
      if (t == 'P') {
        for (var i: i64 = 0; i < len; i = i + 1) {
          var b: u8 = input_byte();
          if (i < 768) { palette[i] = b; }
        }
      } else {
        if (t == 'T') {
          // VULNERABLE: png_handle_tRNS trusted the chunk length.
          for (var i: i64 = 0; i < len; i = i + 1) {
            trans[i] = input_byte();   // OVERRUN when len > 64.
          }
        } else {
          if (t == 'D') {
            var sum: u32 = data_sum[0];
            for (var i: i64 = 0; i < len; i = i + 1) {
              sum = (sum * 31) + (input_byte() as u32);
            }
            data_sum[0] = sum;
          } else {
            for (var i: i64 = 0; i < len; i = i + 1) {
              var skip2: u8 = input_byte();
            }
          }
        }
      }
    }
  }
  print(chunks);
  return (data_sum[0] as i64) + width[0] * height[0];
}
)";

BugSpec er::makeLibpng20040597() {
  BugSpec S;
  S.Id = "Libpng-2004-0597";
  S.App = "libpng-mini 1.2 chunk reader";
  S.BugType = "Buffer overflow";
  S.Multithreaded = false;
  S.Source = Libpng20040597Source;
  S.SolverWorkBudget = 120'000;
  S.MeasurementNoise = 0.002; // I/O-heavy benchmark (the paper's libpng
                              // runs open ~1000 files).
  S.PerfBenchmark = "resvg-test-suite analog (decode many images)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    auto Chunk = [&](uint8_t T, const std::vector<uint8_t> &Payload) {
      B.push_back(T);
      B.push_back(static_cast<uint8_t>(Payload.size()));
      B.insert(B.end(), Payload.begin(), Payload.end());
    };
    std::vector<uint8_t> Hdr = {64, 48, 8, 2, 0};
    Chunk('H', Hdr);
    std::vector<uint8_t> Pal;
    for (unsigned I = 0; I < 96; ++I)
      Pal.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    Chunk('P', Pal);
    if (R.nextBool(0.30)) {
      // Oversized transparency chunk.
      std::vector<uint8_t> T;
      for (unsigned I = 0; I < 100; ++I)
        T.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      Chunk('T', T);
    } else {
      std::vector<uint8_t> T;
      for (unsigned I = 0; I < 16 + R.nextBounded(40); ++I)
        T.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      Chunk('T', T);
    }
    for (unsigned D = 0; D < 3; ++D) {
      std::vector<uint8_t> Data;
      for (unsigned I = 0; I < 100 + R.nextBounded(100); ++I)
        Data.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      Chunk('D', Data);
    }
    B.push_back('E');
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned Img = 0; Img < 24; ++Img) {
      B.push_back('H');
      B.push_back(13);
      for (unsigned I = 0; I < 13; ++I)
        B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      for (unsigned D = 0; D < 4; ++D) {
        B.push_back('D');
        B.push_back(200);
        for (unsigned I = 0; I < 200; ++I)
          B.push_back(static_cast<uint8_t>(R.nextBounded(256)));
      }
    }
    B.push_back('E');
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Bash-108885
//===----------------------------------------------------------------------===//

static const char *Bash108885Source = R"(
// bash-mini word expander. Input: a script as bytes (0-terminated).
// The expander tokenizes words, handling:
//   letters/digits  -> appended to the current word buffer
//   ' '             -> finishes the current word
//   '['             -> starts an array subscript on the current word
//   ']'             -> closes the subscript and APPENDS to the word;
//                      BUG: if no word is open (e.g. the script starts
//                      with "[x]="), the current-word pointer is null.
//   '='             -> assignment: evaluates the pending word
global words: i64[64];
global nwords: i64;

fn main() -> i64 {
  var cur: *u8 = null;
  var cur_len: i64 = 0;
  var in_sub: i64 = 0;
  var total: i64 = 0;
  var c: u8 = input_byte();
  while (c != 0) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      if (cur == null && in_sub == 0) {
        cur = new u8[32];
        cur_len = 0;
      }
      if (in_sub == 0) {
        if (cur_len < 32) {
          cur[cur_len] = c;
          cur_len = cur_len + 1;
        }
      }
    } else {
      if (c == ' ') {
        if (cur != null) {
          var h: i64 = 0;
          for (var i: i64 = 0; i < cur_len; i = i + 1) {
            h = h * 31 + (cur[i] as i64);
          }
          if (nwords < 64) {
            words[nwords] = h;
            nwords = nwords + 1;
          }
          delete cur;
          cur = null;
          cur_len = 0;
        }
      } else {
        if (c == '[') {
          in_sub = 1;
        } else {
          if (c == ']') {
            in_sub = 0;
            // BUG: assumes a word is open and stamps a subscript marker.
            cur[0] = '#';          // NULL DEREF for scripts like "[x]=".
            if (cur_len == 0) { cur_len = 1; }
          } else {
            if (c == '=') {
              total = total + nwords;
            }
          }
        }
      }
    }
    c = input_byte();
  }
  return total;
}
)";

BugSpec er::makeBash108885() {
  BugSpec S;
  S.Id = "Bash-108885";
  S.App = "bash-mini 4.3 word expander";
  S.BugType = "NULL pointer dereference";
  S.Multithreaded = false;
  S.Source = Bash108885Source;
  S.SolverWorkBudget = 120'000;
  S.PerfBenchmark = "Quicksort-in-bash analog (long token stream)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    if (R.nextBool(0.25)) {
      // The 4-byte crasher: "[x]=" with no open word.
      B = {'[', 'x', ']', '='};
    } else {
      unsigned Words = 4 + R.nextBounded(12);
      for (unsigned W = 0; W < Words; ++W) {
        unsigned Len = 1 + R.nextBounded(8);
        for (unsigned I = 0; I < Len; ++I)
          B.push_back(static_cast<uint8_t>('a' + R.nextBounded(26)));
        if (R.nextBool(0.3)) {
          B.push_back('[');
          B.push_back(static_cast<uint8_t>('0' + R.nextBounded(10)));
          B.push_back(']');
        }
        B.push_back(R.nextBool(0.2) ? '=' : ' ');
      }
      B.push_back(' ');
    }
    B.push_back(0);
    In.Bytes = std::move(B);
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    std::vector<uint8_t> B;
    for (unsigned W = 0; W < 700; ++W) {
      unsigned Len = 2 + R.nextBounded(10);
      for (unsigned I = 0; I < Len; ++I)
        B.push_back(static_cast<uint8_t>('a' + R.nextBounded(26)));
      B.push_back(' ');
    }
    B.push_back(0);
    In.Bytes = std::move(B);
    return In;
  };
  return S;
}
