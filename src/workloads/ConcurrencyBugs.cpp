//===- ConcurrencyBugs.cpp - Python readahead / pbzip2 bug analogs ----------------===//
//
// Python-2018-1000030: the file object's readahead buffer is not thread
// safe: two threads refill/consume the shared buffer concurrently and the
// cursor runs past the buffer end (shared data corruption -> crash).
//
// Pbzip2 (jieyu/concurrency-bugs): use-after-free between the producer's
// shutdown path and the consumer: the consumer frees the last queued block
// while the producer's fini() still touches it.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace er;

//===----------------------------------------------------------------------===//
// Python-2018-1000030
//===----------------------------------------------------------------------===//

static const char *Python20181000030Source = R"(
// python-mini readahead file object. Two reader threads share one file
// object; readahead_refill / consume are not synchronized (the CPython 2.7
// bug). Each reader consumes lines and accumulates a checksum.
//
// Shared state: rbuf (the readahead window), rlen (valid bytes), rpos
// (cursor). BUG: consume does "pos = rpos; <work>; rpos = pos + n" with no
// lock, so two readers both pass the bounds check against a stale cursor
// and one reads past rlen into the guard region.
global rbuf: u8[128];
global rlen: i64[1];
global rpos: i64[1];
global file_off: i64[1];
global sums: i64[2];
global rec_hist: i64[32];
global done_readers: i64[1];
global gil_held: i64[1];

fn refill() {
  // Pull the next window from the "file" (the program input).
  var n: i64 = input_size() - file_off[0];
  if (n > 96) { n = 96; }
  for (var i: i64 = 0; i < n; i = i + 1) {
    rbuf[i] = input_byte();
  }
  file_off[0] = file_off[0] + n;
  rlen[0] = n;
  rpos[0] = 0;
}

fn reader(p: *i64) {
  var id: i64 = p[0];
  var sum: i64 = 0;
  var rounds: i64 = 0;
  while (rounds < 400) {
    rounds = rounds + 1;
    // Holding the GIL makes the consume safe; a C extension that released
    // it (gil_held == 0) races the cursor — the CPython 2.7 readahead bug.
    if (gil_held[0] == 1) { lock(1); }
    var pos: i64 = rpos[0];            // Unsynchronized snapshot.
    var len: i64 = rlen[0];
    if (pos + 4 <= len) {
      // "Parse a record": the window between check and commit is where the
      // second reader sneaks in.
      var v: i64 = 0;
      for (var k: i64 = 0; k < 4; k = k + 1) {
        v = v * 256 + (rbuf[pos + k] as i64);
      }
      sum = sum + v;
      // Per-record-type statistics (value-hashed, like the interpreter's
      // small-int cache); hot records take a fast path.
      rec_hist[v % 32] = rec_hist[v % 32] + 1;
      if (rec_hist[(v >> 8) % 32] > 6) {
        sum = sum + 1;
      }
      // ASSERTION: the cursor commit must still be within the window; with
      // the race both readers commit and the second one pushes it out.
      rpos[0] = rpos[0] + 4;
      assert(rpos[0] <= rlen[0]);      // SHARED DATA CORRUPTION check.
      if (gil_held[0] == 1) { unlock(1); }
    } else {
      if (gil_held[0] == 1) { unlock(1); }
      lock(2); // Refill is serialized inside the interpreter core.
      if (rpos[0] + 4 > rlen[0] && file_off[0] < input_size()) {
        refill();
      }
      if (file_off[0] >= input_size() && rpos[0] + 4 > rlen[0]) {
        rounds = 400;
      }
      unlock(2);
    }
  }
  sums[id] = sum;
  done_readers[0] = done_readers[0] + 1;
}

fn main() -> i64 {
  var a0: i64[1];
  var a1: i64[1];
  a0[0] = 0;
  a1[0] = 1;
  gil_held[0] = input_byte() as i64;  // 1 = safe mode, 0 = GIL released.
  refill();
  var t0: i64 = spawn(reader, a0);
  var t1: i64 = spawn(reader, a1);
  join(t0);
  join(t1);
  return sums[0] + sums[1];
}
)";

BugSpec er::makePython20181000030() {
  BugSpec S;
  S.Id = "Python-2018-1000030";
  S.App = "python-mini 2.7 readahead";
  S.BugType = "Shared data corruption";
  S.Multithreaded = true;
  S.Source = Python20181000030Source;
  S.SolverWorkBudget = 40'000;
  S.VmChunkSize = 20; // Interleave inside the parse window.
  S.PerfBenchmark = "PyPy benchmark analog (line-oriented read loop)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    // 40% of production requests run a C extension that releases the GIL.
    In.Bytes.push_back(R.nextBool(0.4) ? 0 : 1);
    unsigned N = 64 + static_cast<unsigned>(R.nextBounded(64));
    for (unsigned I = 0; I < N; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    In.Bytes.push_back(1); // GIL held: the safe configuration.
    for (unsigned I = 0; I < 3000; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    return In;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Pbzip2
//===----------------------------------------------------------------------===//

static const char *Pbzip2Source = R"(
// pbzip2-mini producer/consumer compressor. The producer splits the input
// into blocks and queues them; the consumer "compresses" (RLE-checksums)
// each block and frees it. BUG (pbzip2 0.9.4): the producer's fini path
// reads the last block's header for the trailer AFTER the consumer may
// have freed it.
global queue: *u8[64];
global qsizes: i64[64];
global qhead: i64[1];
global qtail: i64[1];
global producer_done: i64[1];
global out_sum: i64[1];
global spinwait: i64[1];
global last_block: *u8;

fn consumer(p: *i64) {
  while (producer_done[0] == 0 || qhead[0] < qtail[0]) {
    if (qhead[0] < qtail[0]) {
      var idx: i64 = qhead[0] % 64;
      var blk: *u8 = queue[idx];
      var n: i64 = qsizes[idx];
      // "Compress": run-length checksum.
      var sum: i64 = 0;
      var run: i64 = 1;
      for (var i: i64 = 1; i < n; i = i + 1) {
        if (blk[i] == blk[i - 1]) {
          run = run + 1;
        } else {
          sum = sum + run * (blk[i - 1] as i64);
          run = 1;
        }
      }
      out_sum[0] = out_sum[0] + sum;
      delete blk;                 // Consumer owns block disposal...
      qhead[0] = qhead[0] + 1;
    }
  }
}

fn main() -> i64 {
  var d: i64[1];
  var t: i64 = spawn(consumer, d);
  var total: i64 = input_size();
  var off: i64 = 0;
  while (off < total) {
    var n: i64 = total - off;
    if (n > 48) { n = 48; }
    var blk: *u8 = new u8[n + 2];
    blk[0] = (n % 256) as u8;     // Block header: size.
    blk[1] = 0;
    for (var i: i64 = 0; i < n; i = i + 1) {
      blk[i + 2] = input_byte();
    }
    var idx: i64 = qtail[0] % 64;
    queue[idx] = blk;
    qsizes[idx] = n + 2;
    last_block = blk;             // ...but the producer keeps this alias.
    qtail[0] = qtail[0] + 1;
    off = off + n;
  }
  producer_done[0] = 1;
  // Fini: wait until the consumer reaches the last block, then emit the
  // stream trailer from its header. USE-AFTER-FREE when the consumer
  // finishes (and frees) it inside the window.
  while (qhead[0] < qtail[0] - 1) {
    spinwait[0] = spinwait[0] + 1;
  }
  var pad: i64 = 0;
  for (var k: i64 = 0; k < 60; k = k + 1) {
    pad = pad + k;  // Trailer header formatting work (the race window).
  }
  var trailer: i64 = last_block[0] as i64;
  join(t);
  return out_sum[0] + trailer + pad;
}
)";

BugSpec er::makePbzip2() {
  BugSpec S;
  S.Id = "Pbzip2";
  S.App = "pbzip2-mini 0.9.4";
  S.BugType = "Use-after-free";
  S.Multithreaded = true;
  S.Source = Pbzip2Source;
  S.SolverWorkBudget = 150'000;
  S.VmChunkSize = 24;
  S.PerfBenchmark = "Compress a .tar analog (block stream)";

  S.ProductionInput = [](Rng &R) {
    ProgramInput In;
    unsigned N = 100 + static_cast<unsigned>(R.nextBounded(200));
    for (unsigned I = 0; I < N; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(8)));
    return In;
  };

  S.PerfInput = [](Rng &R) {
    ProgramInput In;
    // 52 full 48-byte blocks (within the 64-slot queue window): a full
    // final block keeps the consumer busy past the producer's trailer
    // window, so the benchmark configuration never trips the race.
    for (unsigned I = 0; I < 48 * 52; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(16)));
    return In;
  };
  return S;
}
