//===- Registry.cpp - Bug spec registry ---------------------------------------===//

#include "workloads/Workloads.h"

#include "lang/Codegen.h"
#include "support/Error.h"

using namespace er;

const std::vector<BugSpec> &er::allBugSpecs() {
  static const std::vector<BugSpec> Specs = [] {
    std::vector<BugSpec> S;
    S.push_back(makePhp20122386());
    S.push_back(makePhp74194());
    S.push_back(makeSqlite7be932d());
    S.push_back(makeSqlite787fa71());
    S.push_back(makeSqlite4e8e485());
    S.push_back(makeNasm20041287());
    S.push_back(makeObjdump20186323());
    S.push_back(makeMatrixssl20141569());
    S.push_back(makeMemcached201911596());
    S.push_back(makeLibpng20040597());
    S.push_back(makeBash108885());
    S.push_back(makePython20181000030());
    S.push_back(makePbzip2());
    return S;
  }();
  return Specs;
}

static std::vector<BugSpec> &generatedSpecs() {
  static std::vector<BugSpec> Specs;
  return Specs;
}

void er::registerGeneratedSpecs(std::vector<BugSpec> Specs) {
  generatedSpecs() = std::move(Specs);
}

const std::vector<BugSpec> &er::generatedBugSpecs() {
  return generatedSpecs();
}

const BugSpec *er::findBug(const std::string &Id) {
  for (const auto &S : allBugSpecs())
    if (S.Id == Id)
      return &S;
  for (const auto &S : generatedSpecs())
    if (S.Id == Id)
      return &S;
  return nullptr;
}

std::unique_ptr<Module> er::compileBug(const BugSpec &Spec) {
  CompileResult R = compileMiniLang(Spec.Source);
  if (!R.ok())
    fatalError("workload '" + Spec.Id + "' failed to compile: " + R.Error);
  return std::move(R.M);
}

unsigned er::sourceLineCount(const BugSpec &Spec) {
  unsigned Lines = 0;
  for (char C : Spec.Source)
    if (C == '\n')
      ++Lines;
  return Lines;
}
