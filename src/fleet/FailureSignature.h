//===- FailureSignature.h - Stable failure bucketing keys -------*- C++ -*-===//
///
/// \file
/// ER's premise is that the same production bug fails over and over across
/// a large deployment (PAPER.md §1). The fleet service exploits that by
/// collapsing every reoccurrence of "the same failure" into one *campaign*.
/// The bucket key is a FailureSignature: a stable 64-bit digest over the
/// failure kind, the faulting instruction, and the coarse call path leading
/// to it — the same identity the paper's matcher uses ("matching the
/// program counter and the call stack", §4), mirrored from
/// FailureRecord::sameFailure.
///
/// Deliberately *excluded* from the signature: the failing thread id, the
/// failure message, and anything input- or schedule-dependent. The same bug
/// observed under two different schedule seeds (or on two different fleet
/// machines) must land in the same bucket; two distinct bugs — different
/// kind, site, or call path — must not.
///
//===----------------------------------------------------------------------===//

#ifndef ER_FLEET_FAILURESIGNATURE_H
#define ER_FLEET_FAILURESIGNATURE_H

#include "vm/Failure.h"

#include <cstdint>
#include <string>
#include <vector>

namespace er {

/// Bucket key for one failure class across the fleet.
struct FailureSignature {
  /// Stable digest of (Kind, InstrGlobalId, CallStack); the triage map key.
  uint64_t Digest = 0;

  // The digested identity fields, kept for exact comparison (digest
  // collisions must not merge distinct bugs) and for persistence.
  FailureKind Kind = FailureKind::None;
  unsigned InstrGlobalId = 0;
  std::vector<unsigned> CallStack;

  /// Builds the signature of one observed failure occurrence.
  static FailureSignature of(const FailureRecord &R);

  /// Exact identity (field-wise, not digest-wise).
  bool operator==(const FailureSignature &O) const {
    return Kind == O.Kind && InstrGlobalId == O.InstrGlobalId &&
           CallStack == O.CallStack;
  }
  bool operator!=(const FailureSignature &O) const { return !(*this == O); }

  /// True when \p R belongs to this bucket.
  bool matches(const FailureRecord &R) const;

  /// 16-hex-digit digest rendering (persistence and logs).
  std::string hex() const;

  /// Human-readable one-liner.
  std::string describe() const;
};

} // namespace er

#endif // ER_FLEET_FAILURESIGNATURE_H
