//===- FleetScheduler.cpp - Fleet-wide reconstruction service --------------===//

#include "fleet/FleetScheduler.h"

#include "er/Instrumenter.h"
#include "fleet/FleetPersist.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Timer.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace er;

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//
//
// The scheduler is the natural place to tag pipeline telemetry with fleet
// identity: every campaign runs under a span carrying its signature
// digest and bug id (all driver/solver spans nest beneath it on the
// worker's thread), and triage progress is exported as gauges — both the
// fleet-wide ones and a per-bucket occurrence gauge
// (fleet.bucket.<digest>.occurrences) that a collector daemon can watch
// to decide preemption (ROADMAP "campaign preemption").

namespace {
struct FleetMetrics {
  obs::Counter &ReportsSubmitted, &CampaignsRun, &CampaignsReproduced;
  obs::Counter &Preemptions;
  obs::Gauge &Buckets, &Pending, &Completed, &ActiveSlots, &SuspendedSlots;

  static FleetMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static FleetMetrics M{Reg.counter("fleet.reports.submitted"),
                          Reg.counter("fleet.campaigns.run"),
                          Reg.counter("fleet.campaigns.reproduced"),
                          Reg.counter("fleet.preemptions"),
                          Reg.gauge("fleet.buckets"),
                          Reg.gauge("fleet.campaigns.pending"),
                          Reg.gauge("fleet.campaigns.completed"),
                          Reg.gauge("fleet.campaigns.active"),
                          Reg.gauge("fleet.campaigns.suspended")};
    return M;
  }
};
} // namespace

/// A campaign occupying (or suspended from) a worker slot in incremental
/// mode: its compiled module, isolated context/solver, and the resumable
/// session. Parking this struct *is* the checkpoint — the session resumes
/// mid-campaign with zero redone work.
struct FleetScheduler::CampaignRuntime {
  size_t Idx = 0; ///< Into FleetScheduler::Campaigns.
  std::unique_ptr<Module> M;
  std::unique_ptr<ExprContext> Ctx;
  std::unique_ptr<ConstraintSolver> Solver;
  std::unique_ptr<ReconstructionSession> Session;
  unsigned StepsTaken = 0;
};

FleetScheduler::FleetScheduler(FleetConfig Config)
    : Config(Config), Cache(Config.Cache) {
  if (this->Config.Jobs == 0)
    this->Config.Jobs = 1;
}

FleetScheduler::~FleetScheduler() = default;

Campaign &FleetScheduler::campaignFor(const FailureSignature &Sig,
                                      const std::string &BugId) {
  auto &Chain = ByDigest[Sig.Digest];
  for (size_t Idx : Chain)
    if (Campaigns[Idx].Sig == Sig && Campaigns[Idx].BugId == BugId)
      return Campaigns[Idx];

  Campaign C;
  C.Sig = Sig;
  C.BugId = BugId;
  // The seed depends only on (root seed, failure identity): any submission
  // order, harvest interleaving, or job count reconstructs this bucket
  // identically.
  C.CampaignSeed = Rng(Config.RootSeed).split(Sig.Digest).next();
  Chain.push_back(Campaigns.size());
  Campaigns.push_back(std::move(C));
  return Campaigns.back();
}

void FleetScheduler::submit(const FleetFailureReport &R) {
  if (!R.Failure.isFailure())
    return;
  Campaign &C = campaignFor(FailureSignature::of(R.Failure), R.BugId);
  ++C.Occurrences;
  FleetMetrics &FM = FleetMetrics::get();
  FM.ReportsSubmitted.inc();
  FM.Buckets.set(static_cast<int64_t>(Campaigns.size()));
  // Per-bucket progress: the triage signal, by name. Submission is a
  // control-thread path (not per VM instruction), so the registry lookup
  // per report is acceptable.
  obs::MetricsRegistry::global()
      .gauge("fleet.bucket." + C.Sig.hex() + ".occurrences")
      .set(static_cast<int64_t>(C.Occurrences));
}

unsigned er::simulateMachine(
    const BugSpec &Spec, unsigned Runs, uint64_t MachineId, uint64_t RootSeed,
    const VmConfig &VmBase,
    const std::function<void(const FleetFailureReport &)> &Sink,
    uint64_t FirstSequence) {
  auto M = compileBug(Spec);
  // Machine randomness: split by a digest of the machine id and workload,
  // so adding machines or reordering the harvest never shifts another
  // machine's stream.
  uint64_t WorkloadSalt = 0;
  for (char Ch : Spec.Id)
    WorkloadSalt = WorkloadSalt * 131 + static_cast<unsigned char>(Ch);
  Rng R = Rng(RootSeed).split(MachineId ^ (WorkloadSalt << 20));

  unsigned Observed = 0;
  for (unsigned Run = 0; Run < Runs; ++Run) {
    ProgramInput In = Spec.ProductionInput(R);
    VmConfig VC = VmBase;
    VC.ChunkSize = Spec.VmChunkSize;
    VC.ScheduleSeed = R.next();
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In);
    if (RR.Status != ExitStatus::Failure)
      continue;
    FleetFailureReport Report;
    Report.BugId = Spec.Id;
    Report.Failure = RR.Failure;
    Report.MachineId = MachineId;
    Report.Sequence = FirstSequence + Observed;
    Sink(Report);
    ++Observed;
  }
  return Observed;
}

unsigned FleetScheduler::harvest(const BugSpec &Spec, unsigned Runs,
                                 uint64_t MachineId) {
  obs::ScopedSpan Span("fleet.harvest", "fleet");
  Span.arg("bug", Spec.Id);
  Span.arg("machine", MachineId);
  Span.arg("runs", static_cast<uint64_t>(Runs));
  unsigned Observed = simulateMachine(
      Spec, Runs, MachineId, Config.RootSeed, Config.DriverBase.Vm,
      [this](const FleetFailureReport &R) { submit(R); });
  Span.arg("observed", static_cast<uint64_t>(Observed));
  return Observed;
}

std::vector<size_t> FleetScheduler::triageOrder() const {
  std::vector<size_t> Order(Campaigns.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
    const Campaign &CA = Campaigns[A], &CB = Campaigns[B];
    if (CA.Occurrences != CB.Occurrences)
      return CA.Occurrences > CB.Occurrences; // Hot buckets first.
    if (CA.Sig.Digest != CB.Sig.Digest)
      return CA.Sig.Digest < CB.Sig.Digest;
    return CA.BugId < CB.BugId;
  });
  return Order;
}

void FleetScheduler::runCampaign(Campaign &C) {
  // The campaign span carries fleet identity; every driver/solver span
  // the reconstruction opens nests under it on this worker's thread.
  obs::ScopedSpan Span("fleet.campaign", "fleet");
  Span.arg("sig", C.Sig.hex());
  Span.arg("bug", C.BugId);
  Span.arg("occurrences", C.Occurrences);
  Span.arg("seed", C.CampaignSeed);
  FleetMetrics &FM = FleetMetrics::get();

  const BugSpec *Spec = findBug(C.BugId);
  if (!Spec) {
    C.Report.FailureDetail = "unknown workload '" + C.BugId + "'";
    C.Completed = true;
    Span.arg("result", "unknown-workload");
    FM.Pending.add(-1);
    FM.Completed.add(1);
    return;
  }

  // Per-campaign isolation: own module, own context/solver inside the
  // driver. Only the (thread-safe) result cache is shared.
  auto M = compileBug(*Spec);
  DriverConfig DC = Config.DriverBase;
  DC.Solver.WorkBudget = Spec->SolverWorkBudget;
  DC.Vm.ChunkSize = Spec->VmChunkSize;
  DC.Seed = C.CampaignSeed;
  DC.Solver.SharedCache = Config.ShareSolverCache ? &Cache : nullptr;

  FailureRecord Target;
  Target.Kind = C.Sig.Kind;
  Target.InstrGlobalId = C.Sig.InstrGlobalId;
  Target.CallStack = C.Sig.CallStack;

  ReconstructionDriver Driver(*M, DC);
  C.Report = Driver.reconstruct(
      [&](Rng &R) { return Spec->ProductionInput(R); }, &Target);

  auto Sites = instrumentedSites(*M);
  C.RecordingSet.assign(Sites.begin(), Sites.end());
  std::sort(C.RecordingSet.begin(), C.RecordingSet.end());
  C.Completed = true;

  FM.CampaignsRun.inc();
  if (C.Report.Success)
    FM.CampaignsReproduced.inc();
  FM.Pending.add(-1);
  FM.Completed.add(1);
  Span.arg("result", C.Report.Success ? "reproduced" : "failed");
  Span.arg("consumed", static_cast<uint64_t>(C.Report.Occurrences));
}

FleetReport FleetScheduler::run() {
  Stopwatch Wall;
  obs::ScopedSpan RunSpan("fleet.run", "fleet");
  RunSpan.arg("jobs", static_cast<uint64_t>(Config.Jobs));
  RunSpan.arg("campaigns", Campaigns.size());
  std::vector<size_t> Order = triageOrder();

  // Worklist of pending campaigns, in triage order. Workers claim entries
  // through one atomic cursor; each campaign slot is written by exactly one
  // worker, so no further synchronization is needed on the results.
  std::vector<size_t> Pending;
  unsigned Resumed = 0;
  for (size_t Idx : Order) {
    if (Campaigns[Idx].Completed)
      ++Resumed;
    else
      Pending.push_back(Idx);
  }

  FleetMetrics &FM = FleetMetrics::get();
  FM.Pending.set(static_cast<int64_t>(Pending.size()));
  FM.Completed.set(static_cast<int64_t>(Resumed));
  RunSpan.arg("pending", Pending.size());
  RunSpan.arg("resumed", static_cast<uint64_t>(Resumed));

  // Force the (thread-safe, once-only) spec registry init before workers
  // start, and keep worker count sane.
  (void)allBugSpecs();
  unsigned Jobs = std::max(1u, Config.Jobs);

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t Slot = Next.fetch_add(1);
      if (Slot >= Pending.size())
        return;
      runCampaign(Campaigns[Pending[Slot]]);
    }
  };

  if (Jobs == 1 || Pending.size() <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Threads;
    unsigned N = std::min<size_t>(Jobs, Pending.size());
    Threads.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Threads.emplace_back(Worker);
    for (auto &T : Threads)
      T.join();
  }

  FleetReport FR;
  FR.Jobs = Jobs;
  FR.RootSeed = Config.RootSeed;
  FR.Preemptions = static_cast<unsigned>(PreemptionCount);
  FR.CampaignsRun = static_cast<unsigned>(Pending.size());
  FR.CampaignsResumed = Resumed;
  FR.WallSeconds = Wall.seconds();
  FR.Cache = Cache.getStats();
  FR.Campaigns.reserve(Order.size());
  for (size_t Idx : Order) {
    FR.Campaigns.push_back(Campaigns[Idx]);
    if (Campaigns[Idx].Report.Success)
      ++FR.Reproduced;
  }
  return FR;
}

//===----------------------------------------------------------------------===//
// Incremental mode
//===----------------------------------------------------------------------===//
//
// The collector daemon's shape of progress: discrete ReconstructionSession
// steps interleaved with spool drains, with up to Config.Jobs campaigns
// holding slots at once. Everything here runs on the daemon's control
// thread — determinism needs no synchronization, and campaign results
// cannot depend on slot scheduling because each campaign is fully
// isolated (the shared solver cache returns byte-identical answers).

std::unique_ptr<FleetScheduler::CampaignRuntime>
FleetScheduler::makeRuntime(size_t Idx) {
  Campaign &C = Campaigns[Idx];
  FleetMetrics &FM = FleetMetrics::get();
  const BugSpec *Spec = findBug(C.BugId);
  if (!Spec) {
    // Same terminal outcome runCampaign produces for an unknown workload.
    C.Report.FailureDetail = "unknown workload '" + C.BugId + "'";
    C.Completed = true;
    FM.Pending.add(-1);
    FM.Completed.add(1);
    return nullptr;
  }

  // Identical configuration to runCampaign — stepping a session to
  // completion must be byte-identical to the batch path.
  auto RT = std::make_unique<CampaignRuntime>();
  RT->Idx = Idx;
  RT->M = compileBug(*Spec);
  DriverConfig DC = Config.DriverBase;
  DC.Solver.WorkBudget = Spec->SolverWorkBudget;
  DC.Vm.ChunkSize = Spec->VmChunkSize;
  DC.Seed = C.CampaignSeed;
  DC.Solver.SharedCache = Config.ShareSolverCache ? &Cache : nullptr;

  FailureRecord Target;
  Target.Kind = C.Sig.Kind;
  Target.InstrGlobalId = C.Sig.InstrGlobalId;
  Target.CallStack = C.Sig.CallStack;

  RT->Ctx = std::make_unique<ExprContext>();
  RT->Solver = std::make_unique<ConstraintSolver>(*RT->Ctx, DC.Solver);
  RT->Session = std::make_unique<ReconstructionSession>(
      *RT->M, DC, *RT->Ctx, *RT->Solver,
      [Spec](Rng &R) { return Spec->ProductionInput(R); }, &Target);
  return RT;
}

void FleetScheduler::finalizeCampaign(CampaignRuntime &RT) {
  Campaign &C = Campaigns[RT.Idx];
  C.Report = RT.Session->takeReport();
  auto Sites = instrumentedSites(*RT.M);
  C.RecordingSet.assign(Sites.begin(), Sites.end());
  std::sort(C.RecordingSet.begin(), C.RecordingSet.end());
  C.Completed = true;
  C.Suspended = false;
  C.IterationsDone = RT.Session->stepsDone();

  FleetMetrics &FM = FleetMetrics::get();
  FM.CampaignsRun.inc();
  if (C.Report.Success)
    FM.CampaignsReproduced.inc();
  FM.Pending.add(-1);
  FM.Completed.add(1);
}

bool FleetScheduler::scheduleSlots() {
  FleetMetrics &FM = FleetMetrics::get();
  bool Changed = false;
  auto activeSlot = [this](size_t Idx) -> size_t {
    for (size_t I = 0; I < Active.size(); ++I)
      if (Active[I]->Idx == Idx)
        return I;
    return Active.size();
  };
  auto activate = [&](size_t Idx) {
    auto It = Parked.find(Idx);
    std::unique_ptr<CampaignRuntime> RT;
    if (It != Parked.end()) {
      // Exact resume: the parked session continues where it stopped.
      RT = std::move(It->second);
      Parked.erase(It);
    } else {
      RT = makeRuntime(Idx);
    }
    if (!RT)
      return; // Completed inline (unknown workload).
    Campaigns[Idx].Suspended = false;
    Active.push_back(std::move(RT));
    Changed = true;
  };

  // Fill free slots hottest-first.
  for (size_t Idx : triageOrder()) {
    if (Active.size() >= Config.Jobs)
      break;
    if (!Campaigns[Idx].Completed && activeSlot(Idx) == Active.size())
      activate(Idx);
  }

  // Preemption: slots full and a hot pending bucket outranks the weakest
  // active campaign -> checkpoint-and-suspend the weakest, give the slot
  // to the hot bucket.
  if (!Config.Preempt.Enabled)
    return Changed;
  std::vector<size_t> Order = triageOrder();
  while (Active.size() >= Config.Jobs && !Active.empty()) {
    // Hottest pending, in triage order.
    size_t Hot = Campaigns.size();
    for (size_t Idx : Order) {
      if (Campaigns[Idx].Completed || activeSlot(Idx) != Active.size())
        continue;
      Hot = Idx;
      break;
    }
    if (Hot == Campaigns.size() ||
        Campaigns[Hot].Occurrences < Config.Preempt.HotOccurrences)
      return Changed;
    // Weakest active: last in triage order among the active campaigns,
    // provided it has run long enough to be worth suspending.
    size_t WeakSlot = Active.size();
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      size_t Slot = activeSlot(*It);
      if (Slot == Active.size())
        continue;
      if (Active[Slot]->StepsTaken >= Config.Preempt.MinStepsBeforePreempt)
        WeakSlot = Slot;
      break; // Only the lowest-priority active campaign is a candidate.
    }
    if (WeakSlot == Active.size() ||
        Campaigns[Hot].Occurrences <=
            Campaigns[Active[WeakSlot]->Idx].Occurrences)
      return Changed;

    // Checkpoint-and-suspend: the parked session *is* the checkpoint.
    std::unique_ptr<CampaignRuntime> RT = std::move(Active[WeakSlot]);
    Active.erase(Active.begin() + WeakSlot);
    Campaign &W = Campaigns[RT->Idx];
    W.Suspended = true;
    W.IterationsDone = RT->Session->stepsDone();
    ++W.Preemptions;
    ++PreemptionCount;
    FM.Preemptions.inc();
    {
      obs::ScopedSpan Span("fleet.preempt", "fleet");
      Span.arg("suspended", W.Sig.hex());
      Span.arg("for", Campaigns[Hot].Sig.hex());
      Span.arg("steps_done", static_cast<uint64_t>(RT->StepsTaken));
    }
    Parked[RT->Idx] = std::move(RT);
    activate(Hot);
    Changed = true;
  }
  return Changed;
}

unsigned FleetScheduler::stepCampaigns(unsigned MaxSteps) {
  FleetMetrics &FM = FleetMetrics::get();
  unsigned Steps = 0;
  bool Budgeted = MaxSteps != 0;
  for (;;) {
    scheduleSlots();
    if (Active.empty() || (Budgeted && Steps >= MaxSteps))
      break;
    // Round-robin one step per active campaign, hottest slot first.
    for (size_t I = 0; I < Active.size() && !(Budgeted && Steps >= MaxSteps);) {
      CampaignRuntime &RT = *Active[I];
      Campaign &C = Campaigns[RT.Idx];
      bool More;
      {
        obs::ScopedSpan Span("fleet.campaign.step", "fleet");
        Span.arg("sig", C.Sig.hex());
        Span.arg("bug", C.BugId);
        Span.arg("step", static_cast<uint64_t>(RT.StepsTaken));
        More = RT.Session->step();
        if (RT.Session->finished() && !RT.Session->resultTag().empty())
          Span.arg("result", RT.Session->resultTag());
      }
      ++RT.StepsTaken;
      ++Steps;
      C.IterationsDone = RT.Session->stepsDone();
      if (!More) {
        finalizeCampaign(RT);
        Active.erase(Active.begin() + I);
      } else {
        ++I;
      }
    }
    if (Budgeted && Steps >= MaxSteps)
      break;
  }
  size_t PendingCount = 0, CompletedCount = 0;
  for (const Campaign &C : Campaigns)
    (C.Completed ? CompletedCount : PendingCount) += 1;
  FM.Pending.set(static_cast<int64_t>(PendingCount));
  FM.Completed.set(static_cast<int64_t>(CompletedCount));
  FM.ActiveSlots.set(static_cast<int64_t>(Active.size()));
  FM.SuspendedSlots.set(static_cast<int64_t>(Parked.size()));
  return Steps;
}

bool FleetScheduler::hasPendingWork() const {
  for (const Campaign &C : Campaigns)
    if (!C.Completed)
      return true;
  return false;
}

size_t FleetScheduler::numSuspended() const { return Parked.size(); }

const char *er::campaignPhaseName(CampaignPhase P) {
  switch (P) {
  case CampaignPhase::Pending:
    return "pending";
  case CampaignPhase::Active:
    return "active";
  case CampaignPhase::Suspended:
    return "suspended";
  case CampaignPhase::Completed:
    return "completed";
  }
  return "unknown";
}

std::vector<CampaignStatus> FleetScheduler::campaignStatuses() const {
  std::vector<CampaignStatus> Rows;
  Rows.reserve(Campaigns.size());
  for (size_t Idx : triageOrder()) {
    const Campaign &C = Campaigns[Idx];
    CampaignStatus Row;
    Row.BugId = C.BugId;
    Row.SigHex = C.Sig.hex();
    Row.Occurrences = C.Occurrences;
    Row.IterationsDone = C.IterationsDone;
    Row.Reproduced = C.Report.Success;
    if (C.Completed) {
      Row.Phase = CampaignPhase::Completed;
    } else if (Parked.count(Idx) || C.Suspended) {
      Row.Phase = CampaignPhase::Suspended;
    } else {
      Row.Phase = CampaignPhase::Pending;
      for (const auto &RT : Active)
        if (RT->Idx == Idx) {
          Row.Phase = CampaignPhase::Active;
          Row.IterationsDone = RT->StepsTaken;
          break;
        }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

FleetReport FleetScheduler::snapshotReport() const {
  FleetReport FR;
  FR.Jobs = Config.Jobs;
  FR.RootSeed = Config.RootSeed;
  FR.Preemptions = static_cast<unsigned>(PreemptionCount);
  FR.Cache = Cache.getStats();
  std::vector<size_t> Order = triageOrder();
  FR.Campaigns.reserve(Order.size());
  for (size_t Idx : Order) {
    const Campaign &C = Campaigns[Idx];
    FR.Campaigns.push_back(C);
    if (C.Completed && !C.Resumed)
      ++FR.CampaignsRun;
    if (C.Resumed)
      ++FR.CampaignsResumed;
    if (C.Report.Success)
      ++FR.Reproduced;
  }
  return FR;
}

bool FleetScheduler::saveState(
    const std::string &Path, std::string *Error,
    const std::map<uint64_t, uint64_t> *HighWater) const {
  std::vector<const Campaign *> Ordered;
  Ordered.reserve(Campaigns.size());
  for (size_t Idx : triageOrder())
    Ordered.push_back(&Campaigns[Idx]);
  return saveFleetState(Path, Config.RootSeed, Ordered, Error, HighWater);
}

bool FleetScheduler::loadState(const std::string &Path, std::string *Error,
                               std::map<uint64_t, uint64_t> *HighWater) {
  uint64_t RootSeed = 0;
  std::vector<Campaign> Loaded;
  if (!loadFleetState(Path, RootSeed, Loaded, Error, HighWater))
    return false;
  for (Campaign &L : Loaded) {
    Campaign &C = campaignFor(L.Sig, L.BugId);
    // Merge: keep the larger occurrence count (this process may have
    // harvested more since the save), and adopt the persisted seed so a
    // resume is exact even under a different root seed.
    C.Occurrences = std::max(C.Occurrences, L.Occurrences);
    C.CampaignSeed = L.CampaignSeed;
    if (L.Completed && !C.Completed) {
      C.Completed = true;
      C.Resumed = true;
      C.Report = std::move(L.Report);
      C.RecordingSet = std::move(L.RecordingSet);
    }
  }
  return true;
}
