//===- FleetScheduler.cpp - Fleet-wide reconstruction service --------------===//

#include "fleet/FleetScheduler.h"

#include "er/Instrumenter.h"
#include "fleet/FleetPersist.h"
#include "support/Timer.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace er;

FleetScheduler::FleetScheduler(FleetConfig Config)
    : Config(Config), Cache(Config.Cache) {
  if (this->Config.Jobs == 0)
    this->Config.Jobs = 1;
}

Campaign &FleetScheduler::campaignFor(const FailureSignature &Sig,
                                      const std::string &BugId) {
  auto &Chain = ByDigest[Sig.Digest];
  for (size_t Idx : Chain)
    if (Campaigns[Idx].Sig == Sig && Campaigns[Idx].BugId == BugId)
      return Campaigns[Idx];

  Campaign C;
  C.Sig = Sig;
  C.BugId = BugId;
  // The seed depends only on (root seed, failure identity): any submission
  // order, harvest interleaving, or job count reconstructs this bucket
  // identically.
  C.CampaignSeed = Rng(Config.RootSeed).split(Sig.Digest).next();
  Chain.push_back(Campaigns.size());
  Campaigns.push_back(std::move(C));
  return Campaigns.back();
}

void FleetScheduler::submit(const FleetFailureReport &R) {
  if (!R.Failure.isFailure())
    return;
  Campaign &C = campaignFor(FailureSignature::of(R.Failure), R.BugId);
  ++C.Occurrences;
}

unsigned er::simulateMachine(
    const BugSpec &Spec, unsigned Runs, uint64_t MachineId, uint64_t RootSeed,
    const VmConfig &VmBase,
    const std::function<void(const FleetFailureReport &)> &Sink,
    uint64_t FirstSequence) {
  auto M = compileBug(Spec);
  // Machine randomness: split by a digest of the machine id and workload,
  // so adding machines or reordering the harvest never shifts another
  // machine's stream.
  uint64_t WorkloadSalt = 0;
  for (char Ch : Spec.Id)
    WorkloadSalt = WorkloadSalt * 131 + static_cast<unsigned char>(Ch);
  Rng R = Rng(RootSeed).split(MachineId ^ (WorkloadSalt << 20));

  unsigned Observed = 0;
  for (unsigned Run = 0; Run < Runs; ++Run) {
    ProgramInput In = Spec.ProductionInput(R);
    VmConfig VC = VmBase;
    VC.ChunkSize = Spec.VmChunkSize;
    VC.ScheduleSeed = R.next();
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In);
    if (RR.Status != ExitStatus::Failure)
      continue;
    FleetFailureReport Report;
    Report.BugId = Spec.Id;
    Report.Failure = RR.Failure;
    Report.MachineId = MachineId;
    Report.Sequence = FirstSequence + Observed;
    Sink(Report);
    ++Observed;
  }
  return Observed;
}

unsigned FleetScheduler::harvest(const BugSpec &Spec, unsigned Runs,
                                 uint64_t MachineId) {
  return simulateMachine(
      Spec, Runs, MachineId, Config.RootSeed, Config.DriverBase.Vm,
      [this](const FleetFailureReport &R) { submit(R); });
}

std::vector<size_t> FleetScheduler::triageOrder() const {
  std::vector<size_t> Order(Campaigns.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
    const Campaign &CA = Campaigns[A], &CB = Campaigns[B];
    if (CA.Occurrences != CB.Occurrences)
      return CA.Occurrences > CB.Occurrences; // Hot buckets first.
    if (CA.Sig.Digest != CB.Sig.Digest)
      return CA.Sig.Digest < CB.Sig.Digest;
    return CA.BugId < CB.BugId;
  });
  return Order;
}

void FleetScheduler::runCampaign(Campaign &C) {
  const BugSpec *Spec = findBug(C.BugId);
  if (!Spec) {
    C.Report.FailureDetail = "unknown workload '" + C.BugId + "'";
    C.Completed = true;
    return;
  }

  // Per-campaign isolation: own module, own context/solver inside the
  // driver. Only the (thread-safe) result cache is shared.
  auto M = compileBug(*Spec);
  DriverConfig DC = Config.DriverBase;
  DC.Solver.WorkBudget = Spec->SolverWorkBudget;
  DC.Vm.ChunkSize = Spec->VmChunkSize;
  DC.Seed = C.CampaignSeed;
  DC.Solver.SharedCache = Config.ShareSolverCache ? &Cache : nullptr;

  FailureRecord Target;
  Target.Kind = C.Sig.Kind;
  Target.InstrGlobalId = C.Sig.InstrGlobalId;
  Target.CallStack = C.Sig.CallStack;

  ReconstructionDriver Driver(*M, DC);
  C.Report = Driver.reconstruct(
      [&](Rng &R) { return Spec->ProductionInput(R); }, &Target);

  auto Sites = instrumentedSites(*M);
  C.RecordingSet.assign(Sites.begin(), Sites.end());
  std::sort(C.RecordingSet.begin(), C.RecordingSet.end());
  C.Completed = true;
}

FleetReport FleetScheduler::run() {
  Stopwatch Wall;
  std::vector<size_t> Order = triageOrder();

  // Worklist of pending campaigns, in triage order. Workers claim entries
  // through one atomic cursor; each campaign slot is written by exactly one
  // worker, so no further synchronization is needed on the results.
  std::vector<size_t> Pending;
  unsigned Resumed = 0;
  for (size_t Idx : Order) {
    if (Campaigns[Idx].Completed)
      ++Resumed;
    else
      Pending.push_back(Idx);
  }

  // Force the (thread-safe, once-only) spec registry init before workers
  // start, and keep worker count sane.
  (void)allBugSpecs();
  unsigned Jobs = std::max(1u, Config.Jobs);

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t Slot = Next.fetch_add(1);
      if (Slot >= Pending.size())
        return;
      runCampaign(Campaigns[Pending[Slot]]);
    }
  };

  if (Jobs == 1 || Pending.size() <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Threads;
    unsigned N = std::min<size_t>(Jobs, Pending.size());
    Threads.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Threads.emplace_back(Worker);
    for (auto &T : Threads)
      T.join();
  }

  FleetReport FR;
  FR.Jobs = Jobs;
  FR.RootSeed = Config.RootSeed;
  FR.CampaignsRun = static_cast<unsigned>(Pending.size());
  FR.CampaignsResumed = Resumed;
  FR.WallSeconds = Wall.seconds();
  FR.Cache = Cache.getStats();
  FR.Campaigns.reserve(Order.size());
  for (size_t Idx : Order) {
    FR.Campaigns.push_back(Campaigns[Idx]);
    if (Campaigns[Idx].Report.Success)
      ++FR.Reproduced;
  }
  return FR;
}

bool FleetScheduler::saveState(const std::string &Path,
                               std::string *Error) const {
  std::vector<const Campaign *> Ordered;
  Ordered.reserve(Campaigns.size());
  for (size_t Idx : triageOrder())
    Ordered.push_back(&Campaigns[Idx]);
  return saveFleetState(Path, Config.RootSeed, Ordered, Error);
}

bool FleetScheduler::loadState(const std::string &Path, std::string *Error) {
  uint64_t RootSeed = 0;
  std::vector<Campaign> Loaded;
  if (!loadFleetState(Path, RootSeed, Loaded, Error))
    return false;
  for (Campaign &L : Loaded) {
    Campaign &C = campaignFor(L.Sig, L.BugId);
    // Merge: keep the larger occurrence count (this process may have
    // harvested more since the save), and adopt the persisted seed so a
    // resume is exact even under a different root seed.
    C.Occurrences = std::max(C.Occurrences, L.Occurrences);
    C.CampaignSeed = L.CampaignSeed;
    if (L.Completed && !C.Completed) {
      C.Completed = true;
      C.Resumed = true;
      C.Report = std::move(L.Report);
      C.RecordingSet = std::move(L.RecordingSet);
    }
  }
  return true;
}
