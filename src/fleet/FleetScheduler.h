//===- FleetScheduler.h - Fleet-wide reconstruction service -----*- C++ -*-===//
///
/// \file
/// The fleet-side layer the paper assumes but the single-campaign driver
/// lacks: a service that collects failure reports from many production
/// machines, deduplicates them into per-bug *campaigns* via
/// FailureSignature, triages the campaigns by how often each failure
/// reoccurs, and runs up to N ReconstructionDriver campaigns concurrently.
///
/// Isolation and determinism:
///  - Every campaign compiles its own Module and owns its own
///    ExprContext/ConstraintSolver (neither is thread-safe); campaigns
///    share *only* the sharded, thread-safe SolverResultCache, whose
///    answers are byte-identical to fresh solves.
///  - Each campaign's DriverConfig seed is derived once, at submission,
///    with Rng::split(root seed, signature digest). Seeds therefore depend
///    on *what* failed, never on scheduling order — the same root seed
///    produces byte-identical per-campaign test cases at any --jobs level.
///
/// Persistence: saveState/loadState serialize the triage queue and every
/// finished campaign (report, test case, recording set) to a line-oriented
/// text format (docs/FLEET.md), so a killed scheduler resumes triage
/// without re-consuming failure occurrences.
///
//===----------------------------------------------------------------------===//

#ifndef ER_FLEET_FLEETSCHEDULER_H
#define ER_FLEET_FLEETSCHEDULER_H

#include "er/Driver.h"
#include "fleet/FailureSignature.h"
#include "solver/SolverCache.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace er {

/// One failure occurrence reported by a fleet machine.
///
/// MachineId and Sequence identify the *delivery*, not the failure: the
/// ingestion layer (src/ingest/) dedups redelivered reports by
/// (MachineId, Sequence) before they reach the scheduler, which buckets
/// purely by failure identity and ignores both fields.
struct FleetFailureReport {
  std::string BugId; ///< Workload the machine was running.
  FailureRecord Failure;
  /// Reporting machine (0 = unspecified / in-process).
  uint64_t MachineId = 0;
  /// Per-machine monotonic delivery sequence number (1-based; 0 =
  /// unsequenced / in-process).
  uint64_t Sequence = 0;
};

/// Service tuning.
struct FleetConfig {
  /// Concurrent reconstruction campaigns.
  unsigned Jobs = 1;
  /// Root seed; per-campaign seeds are split off it by signature digest.
  uint64_t RootSeed = 20260807;
  /// Base driver tuning; per-campaign knobs (solver budget, VM chunk size,
  /// seed) are overridden from the campaign's BugSpec and signature.
  DriverConfig DriverBase;
  /// Share one memoizing solver cache across all campaigns.
  bool ShareSolverCache = true;
  SolverCacheConfig Cache;
};

/// One deduplicated failure bucket and (once run) its reconstruction.
struct Campaign {
  FailureSignature Sig;
  std::string BugId;
  /// Fleet-observed occurrence count — the triage priority.
  uint64_t Occurrences = 0;
  /// Seed split from the root seed by signature digest at submission.
  uint64_t CampaignSeed = 0;
  bool Completed = false;
  /// Loaded from a persisted state file rather than run in this process.
  bool Resumed = false;
  ReconstructionReport Report;
  /// Instrumented sites at campaign end (sorted) — the recording set that
  /// produced the final trace, persisted so a resumed fleet can redeploy
  /// the same instrumentation.
  std::vector<unsigned> RecordingSet;
};

/// Outcome of one FleetScheduler::run().
struct FleetReport {
  /// All campaigns, in triage order (occurrence count desc).
  std::vector<Campaign> Campaigns;
  unsigned Jobs = 1;
  uint64_t RootSeed = 0;
  unsigned CampaignsRun = 0;     ///< Executed by this run().
  unsigned CampaignsResumed = 0; ///< Skipped: completed in a prior life.
  unsigned Reproduced = 0;       ///< Campaigns that generated a test case.
  double WallSeconds = 0;
  SolverCacheStats Cache;
};

/// Simulates one production machine: \p Runs executions of \p Spec with
/// machine randomness split from \p RootSeed by \p MachineId, invoking
/// \p Sink for every failure observed. Reports carry the machine id and a
/// 1-based per-machine sequence number starting at \p FirstSequence.
/// Returns the number of failures observed.
///
/// This is the single source of fleet-machine behaviour: the in-process
/// path (FleetScheduler::harvest, Sink = submit) and the cross-process
/// path (`er_cli report`, Sink = spool writer — see docs/INGEST.md) run
/// exactly this loop, which is what makes a drained spool byte-identical
/// to an in-process harvest of the same machines.
unsigned simulateMachine(const BugSpec &Spec, unsigned Runs,
                         uint64_t MachineId, uint64_t RootSeed,
                         const VmConfig &VmBase,
                         const std::function<void(const FleetFailureReport &)>
                             &Sink,
                         uint64_t FirstSequence = 1);

/// Collects failure reports, triages them into campaigns, and runs the
/// campaigns on a worker pool. Not itself thread-safe: submit/harvest/
/// run/saveState are driven from one control thread; run() spawns and
/// joins its own workers.
class FleetScheduler {
public:
  explicit FleetScheduler(FleetConfig Config);

  /// Records one failure occurrence, deduplicating by signature.
  void submit(const FleetFailureReport &R);

  /// Simulates one fleet machine: \p Runs production executions of
  /// \p Spec, submitting every failure observed. Machine randomness is
  /// split from the root seed by \p MachineId, so the harvest is
  /// deterministic and machine-order-independent. Returns the number of
  /// failures observed.
  unsigned harvest(const BugSpec &Spec, unsigned Runs, uint64_t MachineId);

  /// Runs every pending campaign on Config.Jobs workers and returns the
  /// fleet-wide report. Already-completed (resumed) campaigns are not
  /// re-run.
  FleetReport run();

  size_t numCampaigns() const { return Campaigns.size(); }
  const std::vector<Campaign> &getCampaigns() const { return Campaigns; }
  SolverCacheStats getCacheStats() const { return Cache.getStats(); }

  /// Serializes the triage queue + finished campaigns to \p Path.
  bool saveState(const std::string &Path, std::string *Error = nullptr) const;
  /// Merges a previously saved state file: completed campaigns resume as
  /// done, pending ones keep their occurrence counts and seeds.
  bool loadState(const std::string &Path, std::string *Error = nullptr);

private:
  /// Indices of Campaigns in triage order: occurrence count descending,
  /// digest then bug id as deterministic tie-breaks.
  std::vector<size_t> triageOrder() const;
  void runCampaign(Campaign &C);
  Campaign &campaignFor(const FailureSignature &Sig, const std::string &BugId);

  FleetConfig Config;
  SolverResultCache Cache;
  std::vector<Campaign> Campaigns;
  /// Digest -> campaign indices (a chain, in case distinct signatures ever
  /// share a digest).
  std::unordered_map<uint64_t, std::vector<size_t>> ByDigest;
};

} // namespace er

#endif // ER_FLEET_FLEETSCHEDULER_H
