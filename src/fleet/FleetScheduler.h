//===- FleetScheduler.h - Fleet-wide reconstruction service -----*- C++ -*-===//
///
/// \file
/// The fleet-side layer the paper assumes but the single-campaign driver
/// lacks: a service that collects failure reports from many production
/// machines, deduplicates them into per-bug *campaigns* via
/// FailureSignature, triages the campaigns by how often each failure
/// reoccurs, and runs up to N ReconstructionDriver campaigns concurrently.
///
/// Isolation and determinism:
///  - Every campaign compiles its own Module and owns its own
///    ExprContext/ConstraintSolver (neither is thread-safe); campaigns
///    share *only* the sharded, thread-safe SolverResultCache, whose
///    answers are byte-identical to fresh solves.
///  - Each campaign's DriverConfig seed is derived once, at submission,
///    with Rng::split(root seed, signature digest). Seeds therefore depend
///    on *what* failed, never on scheduling order — the same root seed
///    produces byte-identical per-campaign test cases at any --jobs level.
///
/// Persistence: saveState/loadState serialize the triage queue and every
/// finished campaign (report, test case, recording set) to a line-oriented
/// text format (docs/FLEET.md), so a killed scheduler resumes triage
/// without re-consuming failure occurrences.
///
//===----------------------------------------------------------------------===//

#ifndef ER_FLEET_FLEETSCHEDULER_H
#define ER_FLEET_FLEETSCHEDULER_H

#include "er/Driver.h"
#include "fleet/FailureSignature.h"
#include "solver/SolverCache.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace er {

/// One failure occurrence reported by a fleet machine.
///
/// MachineId and Sequence identify the *delivery*, not the failure: the
/// ingestion layer (src/ingest/) dedups redelivered reports by
/// (MachineId, Sequence) before they reach the scheduler, which buckets
/// purely by failure identity and ignores both fields.
struct FleetFailureReport {
  std::string BugId; ///< Workload the machine was running.
  FailureRecord Failure;
  /// Reporting machine (0 = unspecified / in-process).
  uint64_t MachineId = 0;
  /// Per-machine monotonic delivery sequence number (1-based; 0 =
  /// unsequenced / in-process).
  uint64_t Sequence = 0;
};

/// Preemption policy for the incremental (stepCampaigns) mode. When every
/// worker slot is busy and a *hot* pending bucket appears — its occurrence
/// count at or above HotOccurrences and strictly above the weakest active
/// campaign's — the weakest active campaign is checkpointed in place and
/// suspended, its slot is given to the hot bucket, and it resumes later
/// exactly where it left off. Results are byte-identical either way (each
/// campaign is isolated; see docs/FLEET.md); preemption only changes
/// *when* the hot failure's test case arrives.
struct PreemptConfig {
  bool Enabled = false;
  /// A pending bucket at or above this occurrence count may preempt.
  /// 0 = any pending bucket that outranks an active one qualifies.
  uint64_t HotOccurrences = 4;
  /// Steps an active campaign must have run before it can be preempted
  /// (guards against thrashing a slot that just started).
  unsigned MinStepsBeforePreempt = 1;
};

/// Service tuning.
struct FleetConfig {
  /// Concurrent reconstruction campaigns.
  unsigned Jobs = 1;
  /// Root seed; per-campaign seeds are split off it by signature digest.
  uint64_t RootSeed = 20260807;
  /// Base driver tuning; per-campaign knobs (solver budget, VM chunk size,
  /// seed) are overridden from the campaign's BugSpec and signature.
  DriverConfig DriverBase;
  /// Share one memoizing solver cache across all campaigns.
  bool ShareSolverCache = true;
  SolverCacheConfig Cache;
  PreemptConfig Preempt;
};

/// One deduplicated failure bucket and (once run) its reconstruction.
struct Campaign {
  FailureSignature Sig;
  std::string BugId;
  /// Fleet-observed occurrence count — the triage priority.
  uint64_t Occurrences = 0;
  /// Seed split from the root seed by signature digest at submission.
  uint64_t CampaignSeed = 0;
  bool Completed = false;
  /// Loaded from a persisted state file rather than run in this process.
  bool Resumed = false;
  /// Checkpointed mid-campaign by preemption; resumes from the parked
  /// session (same process) or by deterministic re-execution (state file).
  bool Suspended = false;
  /// Steps (warm-up occurrences + iterations) performed so far; progress
  /// bookkeeping for suspended campaigns.
  unsigned IterationsDone = 0;
  /// Times this campaign was preempted (in-memory only, never persisted:
  /// a resumed run's final state file must be byte-identical to an
  /// uninterrupted one).
  unsigned Preemptions = 0;
  ReconstructionReport Report;
  /// Instrumented sites at campaign end (sorted) — the recording set that
  /// produced the final trace, persisted so a resumed fleet can redeploy
  /// the same instrumentation.
  std::vector<unsigned> RecordingSet;
};

/// Outcome of one FleetScheduler::run().
struct FleetReport {
  /// All campaigns, in triage order (occurrence count desc).
  std::vector<Campaign> Campaigns;
  unsigned Jobs = 1;
  uint64_t RootSeed = 0;
  unsigned CampaignsRun = 0;     ///< Executed by this run().
  unsigned CampaignsResumed = 0; ///< Skipped: completed in a prior life.
  unsigned Reproduced = 0;       ///< Campaigns that generated a test case.
  unsigned Preemptions = 0;      ///< Campaign suspensions (stepping mode).
  double WallSeconds = 0;
  SolverCacheStats Cache;
};

/// Where one campaign sits in the triage/execution lifecycle right now.
enum class CampaignPhase { Pending, Active, Suspended, Completed };

const char *campaignPhaseName(CampaignPhase P);

/// The row shape of the daemon's `/status` endpoint
/// (docs/OBSERVABILITY.md, "Live endpoints").
struct CampaignStatus {
  std::string BugId;
  std::string SigHex; ///< FailureSignature digest, hex.
  uint64_t Occurrences = 0;
  CampaignPhase Phase = CampaignPhase::Pending;
  /// Session steps taken so far (live for active campaigns).
  unsigned IterationsDone = 0;
  bool Reproduced = false; ///< Meaningful once Completed.
};

/// Simulates one production machine: \p Runs executions of \p Spec with
/// machine randomness split from \p RootSeed by \p MachineId, invoking
/// \p Sink for every failure observed. Reports carry the machine id and a
/// 1-based per-machine sequence number starting at \p FirstSequence.
/// Returns the number of failures observed.
///
/// This is the single source of fleet-machine behaviour: the in-process
/// path (FleetScheduler::harvest, Sink = submit) and the cross-process
/// path (`er_cli report`, Sink = spool writer — see docs/INGEST.md) run
/// exactly this loop, which is what makes a drained spool byte-identical
/// to an in-process harvest of the same machines.
unsigned simulateMachine(const BugSpec &Spec, unsigned Runs,
                         uint64_t MachineId, uint64_t RootSeed,
                         const VmConfig &VmBase,
                         const std::function<void(const FleetFailureReport &)>
                             &Sink,
                         uint64_t FirstSequence = 1);

/// Collects failure reports, triages them into campaigns, and runs the
/// campaigns on a worker pool. Not itself thread-safe: submit/harvest/
/// run/saveState are driven from one control thread; run() spawns and
/// joins its own workers.
class FleetScheduler {
public:
  explicit FleetScheduler(FleetConfig Config);
  ~FleetScheduler();

  /// Records one failure occurrence, deduplicating by signature.
  void submit(const FleetFailureReport &R);

  /// Simulates one fleet machine: \p Runs production executions of
  /// \p Spec, submitting every failure observed. Machine randomness is
  /// split from the root seed by \p MachineId, so the harvest is
  /// deterministic and machine-order-independent. Returns the number of
  /// failures observed.
  unsigned harvest(const BugSpec &Spec, unsigned Runs, uint64_t MachineId);

  /// Runs every pending campaign on Config.Jobs workers and returns the
  /// fleet-wide report. Already-completed (resumed) campaigns are not
  /// re-run.
  FleetReport run();

  //===--- Incremental mode (collector daemon) ------------------------===//
  //
  // run() executes every pending campaign to completion on a worker pool
  // — the right shape for a one-shot drain. A long-running daemon instead
  // interleaves campaign progress with spool drains: stepCampaigns()
  // advances up to Config.Jobs campaigns by discrete ReconstructionSession
  // steps on the calling thread, activating pending buckets in triage
  // order, preempting per Config.Preempt, and parking suspended sessions
  // in memory so a later call resumes them exactly. Results are
  // byte-identical to run() on the same submissions. Do not mix run() and
  // stepCampaigns() on the same scheduler instance.

  /// Advances active campaigns by at most \p MaxSteps session steps
  /// (0 = run until no pending work remains). Returns steps performed.
  unsigned stepCampaigns(unsigned MaxSteps = 0);

  /// True while any campaign is incomplete (active, suspended or queued).
  bool hasPendingWork() const;

  size_t numActive() const { return Active.size(); }
  size_t numSuspended() const;
  uint64_t totalPreemptions() const { return PreemptionCount; }

  /// Fleet-wide report of the current triage state without running
  /// anything — what run() would return if all remaining work vanished.
  /// The daemon uses this for status printouts and shutdown summaries.
  FleetReport snapshotReport() const;

  /// One status row per campaign, in triage order: phase (pending /
  /// active / suspended / completed) plus live step counts for active
  /// slots. Control-thread only (like every accessor here) — the daemon
  /// copies this into its mutex-guarded status snapshot at cycle
  /// boundaries, which is what the HTTP thread actually reads.
  std::vector<CampaignStatus> campaignStatuses() const;

  size_t numCampaigns() const { return Campaigns.size(); }
  const std::vector<Campaign> &getCampaigns() const { return Campaigns; }
  SolverCacheStats getCacheStats() const { return Cache.getStats(); }

  /// Serializes the triage queue + finished campaigns to \p Path. With
  /// \p HighWater, the ingest high-water marks are checkpointed into the
  /// same file — one atomic unit, so a crash can never split the
  /// scheduler's knowledge from the dedup marks (docs/INGEST.md).
  bool saveState(const std::string &Path, std::string *Error = nullptr,
                 const std::map<uint64_t, uint64_t> *HighWater = nullptr) const;
  /// Merges a previously saved state file: completed campaigns resume as
  /// done, pending ones keep their occurrence counts and seeds. Suspended
  /// campaigns load as pending — a cross-process resume re-executes them
  /// deterministically from scratch. \p HighWater, when given, receives
  /// the checkpointed ingest marks.
  bool loadState(const std::string &Path, std::string *Error = nullptr,
                 std::map<uint64_t, uint64_t> *HighWater = nullptr);

private:
  struct CampaignRuntime;

  /// Indices of Campaigns in triage order: occurrence count descending,
  /// digest then bug id as deterministic tie-breaks.
  std::vector<size_t> triageOrder() const;
  void runCampaign(Campaign &C);
  Campaign &campaignFor(const FailureSignature &Sig, const std::string &BugId);

  /// Fills free worker slots from the triage queue (unparking suspended
  /// sessions when their campaign is selected) and applies the preemption
  /// policy. Returns true if any slot changed hands.
  bool scheduleSlots();
  std::unique_ptr<CampaignRuntime> makeRuntime(size_t Idx);
  void finalizeCampaign(CampaignRuntime &RT);

  FleetConfig Config;
  SolverResultCache Cache;
  std::vector<Campaign> Campaigns;
  /// Digest -> campaign indices (a chain, in case distinct signatures ever
  /// share a digest).
  std::unordered_map<uint64_t, std::vector<size_t>> ByDigest;
  /// Incremental mode state: live sessions occupying worker slots, and
  /// preempted sessions parked for an exact same-process resume.
  std::vector<std::unique_ptr<CampaignRuntime>> Active;
  std::map<size_t, std::unique_ptr<CampaignRuntime>> Parked;
  uint64_t PreemptionCount = 0;
};

} // namespace er

#endif // ER_FLEET_FLEETSCHEDULER_H
