//===- FleetPersist.h - Campaign persistence ---------------------*- C++ -*-===//
///
/// \file
/// Serialization of the fleet triage state to a line-oriented text format
/// (see docs/FLEET.md for the grammar). A killed scheduler reloads the
/// file and resumes: completed campaigns keep their reconstruction report,
/// generated test case, and recording set; pending campaigns keep their
/// occurrence counts and split seeds, so no failure occurrence is consumed
/// twice.
///
//===----------------------------------------------------------------------===//

#ifndef ER_FLEET_FLEETPERSIST_H
#define ER_FLEET_FLEETPERSIST_H

#include "fleet/FleetScheduler.h"

#include <string>
#include <vector>

namespace er {

/// Writes \p Campaigns to \p Path. Returns false (and sets \p Error) on I/O
/// failure.
bool saveFleetState(const std::string &Path, uint64_t RootSeed,
                    const std::vector<const Campaign *> &Campaigns,
                    std::string *Error = nullptr);

/// Parses \p Path into \p RootSeed / \p Campaigns. Returns false (and sets
/// \p Error) on I/O failure or a malformed file.
bool loadFleetState(const std::string &Path, uint64_t &RootSeed,
                    std::vector<Campaign> &Campaigns,
                    std::string *Error = nullptr);

} // namespace er

#endif // ER_FLEET_FLEETPERSIST_H
