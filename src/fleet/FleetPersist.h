//===- FleetPersist.h - Campaign persistence ---------------------*- C++ -*-===//
///
/// \file
/// Serialization of the fleet triage state to a line-oriented text format
/// (see docs/FLEET.md for the grammar). A killed scheduler reloads the
/// file and resumes: completed campaigns keep their reconstruction report,
/// generated test case, and recording set; pending campaigns keep their
/// occurrence counts and split seeds, so no failure occurrence is consumed
/// twice.
///
//===----------------------------------------------------------------------===//

#ifndef ER_FLEET_FLEETPERSIST_H
#define ER_FLEET_FLEETPERSIST_H

#include "fleet/FleetScheduler.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace er {

/// Writes \p Campaigns to \p Path. Returns false (and sets \p Error) on I/O
/// failure. With \p HighWater, per-machine ingest high-water marks are
/// written into the same file (`highwater m<hex> <seq>` lines after the
/// root seed), making scheduler state + dedup marks one atomic unit for
/// the collector daemon's checkpoint. Suspended mid-flight campaigns
/// persist their progress counters; completed campaigns never do, so a
/// preempted-then-resumed fleet's final state file is byte-identical to an
/// uninterrupted one.
bool saveFleetState(const std::string &Path, uint64_t RootSeed,
                    const std::vector<const Campaign *> &Campaigns,
                    std::string *Error = nullptr,
                    const std::map<uint64_t, uint64_t> *HighWater = nullptr);

/// Parses \p Path into \p RootSeed / \p Campaigns. Returns false (and sets
/// \p Error) on I/O failure or a malformed file. \p HighWater, when
/// non-null, receives any checkpointed high-water marks (left untouched if
/// the file has none).
bool loadFleetState(const std::string &Path, uint64_t &RootSeed,
                    std::vector<Campaign> &Campaigns,
                    std::string *Error = nullptr,
                    std::map<uint64_t, uint64_t> *HighWater = nullptr);

} // namespace er

#endif // ER_FLEET_FLEETPERSIST_H
