//===- FleetPersist.cpp - Campaign persistence ------------------------------===//

#include "fleet/FleetPersist.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace er;

static const char *MagicV1 = "er-fleet-state v1";

//===----------------------------------------------------------------------===//
// Save
//===----------------------------------------------------------------------===//

static void writeIdList(std::ostream &OS, const char *Key,
                        const std::vector<unsigned> &Ids) {
  OS << Key << ' ' << Ids.size();
  for (unsigned Id : Ids)
    OS << ' ' << Id;
  OS << '\n';
}

static void writeFailure(std::ostream &OS, const FailureRecord &F) {
  OS << "failure " << static_cast<unsigned>(F.Kind) << ' ' << F.InstrGlobalId
     << ' ' << F.Tid << ' ' << F.CallStack.size();
  for (unsigned Site : F.CallStack)
    OS << ' ' << Site;
  OS << '\n';
  // Free-form strings go last on their own line: everything after the key
  // and one space is the payload (newlines are squashed to spaces).
  std::string Msg = F.Message;
  for (char &C : Msg)
    if (C == '\n' || C == '\r')
      C = ' ';
  OS << "message " << Msg << '\n';
}

bool er::saveFleetState(const std::string &Path, uint64_t RootSeed,
                        const std::vector<const Campaign *> &Campaigns,
                        std::string *Error,
                        const std::map<uint64_t, uint64_t> *HighWater) {
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }

  OS << MagicV1 << '\n';
  OS << "rootseed " << RootSeed << '\n';
  if (HighWater) {
    char Buf[64];
    for (const auto &[Machine, Seq] : *HighWater) {
      std::snprintf(Buf, sizeof(Buf), "highwater m%llx %llu",
                    (unsigned long long)Machine, (unsigned long long)Seq);
      OS << Buf << '\n';
    }
  }
  for (const Campaign *C : Campaigns) {
    OS << "campaign " << C->Sig.hex() << '\n';
    OS << "bug " << C->BugId << '\n';
    OS << "sig " << static_cast<unsigned>(C->Sig.Kind) << ' '
       << C->Sig.InstrGlobalId << ' ' << C->Sig.CallStack.size();
    for (unsigned Site : C->Sig.CallStack)
      OS << ' ' << Site;
    OS << '\n';
    OS << "occurrences " << C->Occurrences << '\n';
    OS << "seed " << C->CampaignSeed << '\n';
    OS << "completed " << (C->Completed ? 1 : 0) << '\n';
    // Mid-flight checkpoint state only. Once a campaign completes these
    // lines disappear, so a preempted-then-resumed run's final file is
    // byte-identical to an uninterrupted one.
    if (!C->Completed && C->Suspended) {
      OS << "suspended 1\n";
      OS << "iterationsdone " << C->IterationsDone << '\n';
    }
    if (C->Completed) {
      const ReconstructionReport &R = C->Report;
      OS << "success " << (R.Success ? 1 : 0) << '\n';
      OS << "occursconsumed " << R.Occurrences << '\n';
      OS << "failinginstrs " << R.FailingInstrCount << '\n';
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6f", R.TotalSymexSeconds);
      OS << "symexseconds " << Buf << '\n';
      writeFailure(OS, R.Failure);
      std::string Detail = R.FailureDetail;
      for (char &Ch : Detail)
        if (Ch == '\n' || Ch == '\r')
          Ch = ' ';
      OS << "detail " << Detail << '\n';
      OS << "replayseed " << R.ReplayScheduleSeed << '\n';
      OS << "testargs " << R.TestCase.Args.size();
      for (uint64_t A : R.TestCase.Args)
        OS << ' ' << A;
      OS << '\n';
      OS << "testbytes " << R.TestCase.Bytes.size() << ' ';
      for (uint8_t B : R.TestCase.Bytes) {
        char Hex[3];
        std::snprintf(Hex, sizeof(Hex), "%02x", B);
        OS << Hex;
      }
      OS << '\n';
      writeIdList(OS, "recordingset", C->RecordingSet);
      // Schedule-search witness (concurrency campaigns whose recorded
      // schedule missed): how TestCase actually reproduces. Absent
      // otherwise, keeping pre-existing files byte-identical.
      if (R.Sched.Used) {
        OS << "schedsearch " << (R.Sched.ExplicitOrder ? 1 : 0) << ' '
           << R.Sched.Attempts << ' ' << R.Sched.Seed << '\n';
        OS << "schedorder " << R.Sched.Order.size();
        for (const ScheduleSlice &S : R.Sched.Order)
          OS << ' ' << S.Tid << ':' << S.Instrs;
        OS << '\n';
      }
    }
    OS << "end\n";
  }
  if (!OS) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Load
//===----------------------------------------------------------------------===//

namespace {
/// Line-oriented reader with one-token keys.
class Reader {
public:
  explicit Reader(std::istream &IS) : IS(IS) {}

  /// Reads the next line; returns false at EOF.
  bool nextLine() {
    if (!std::getline(IS, Line))
      return false;
    ++LineNo;
    Pos = 0;
    return true;
  }

  std::string word() {
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
    size_t Start = Pos;
    while (Pos < Line.size() && Line[Pos] != ' ')
      ++Pos;
    return Line.substr(Start, Pos - Start);
  }

  bool u64(uint64_t &Out) {
    std::string W = word();
    if (W.empty())
      return false;
    char *End = nullptr;
    Out = std::strtoull(W.c_str(), &End, 10);
    return End && *End == '\0';
  }

  /// The rest of the current line after one separating space.
  std::string rest() {
    if (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
    return Line.substr(Pos);
  }

  /// Unconsumed bytes on the current line — the upper bound on how many
  /// more tokens it can possibly hold (used to reject absurd counts
  /// before they become absurd allocations).
  size_t remaining() const { return Line.size() - Pos; }

  unsigned lineNo() const { return LineNo; }

private:
  std::istream &IS;
  std::string Line;
  size_t Pos = 0;
  unsigned LineNo = 0;
};
} // namespace

static bool fail(std::string *Error, unsigned LineNo, const std::string &Msg) {
  if (Error)
    *Error = "fleet state line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

/// A persisted kind outside the enum would flow into signature digests and
/// failureKindName (which fatals on unknown kinds) — reject it at parse.
static bool validKind(uint64_t Kind) {
  return Kind <= static_cast<uint64_t>(FailureKind::InputUnderrun);
}

static bool readIdList(Reader &R, std::vector<unsigned> &Out,
                       std::string *Error) {
  uint64_t N = 0;
  if (!R.u64(N))
    return fail(Error, R.lineNo(), "expected id-list length");
  // Every id costs at least " <digit>" on the line; a count the line
  // cannot hold is corruption, and reserving it unchecked would turn a
  // flipped digit into an OOM.
  if (N > (R.remaining() + 1) / 2)
    return fail(Error, R.lineNo(), "id-list length exceeds line");
  Out.clear();
  Out.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t V = 0;
    if (!R.u64(V))
      return fail(Error, R.lineNo(), "short id list");
    Out.push_back(static_cast<unsigned>(V));
  }
  return true;
}

bool er::loadFleetState(const std::string &Path, uint64_t &RootSeed,
                        std::vector<Campaign> &Campaigns, std::string *Error,
                        std::map<uint64_t, uint64_t> *HighWater) {
  std::ifstream IS(Path);
  if (!IS) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  Reader R(IS);

  if (!R.nextLine() || R.rest() != MagicV1)
    return fail(Error, R.lineNo(), "bad magic (want '" +
                                       std::string(MagicV1) + "')");
  if (!R.nextLine() || R.word() != "rootseed" || !R.u64(RootSeed))
    return fail(Error, R.lineNo(), "expected 'rootseed <u64>'");

  Campaigns.clear();
  Campaign *C = nullptr;
  bool SigSeen = false;
  while (R.nextLine()) {
    std::string Key = R.word();
    if (Key.empty())
      continue;
    if (Key == "campaign") {
      Campaigns.emplace_back();
      C = &Campaigns.back();
      SigSeen = false;
      continue; // The hex digest is recomputed from the sig line.
    }
    if (Key == "highwater") {
      // Top-level: checkpointed ingest dedup marks (daemon state files).
      if (C)
        return fail(Error, R.lineNo(), "'highwater' inside a campaign");
      std::string Mark = R.word();
      unsigned long long Machine = 0;
      uint64_t Seq = 0;
      if (Mark.size() < 2 || Mark[0] != 'm' ||
          std::sscanf(Mark.c_str(), "m%llx", &Machine) != 1 || !R.u64(Seq))
        return fail(Error, R.lineNo(), "malformed highwater mark");
      if (HighWater) {
        uint64_t &Cur = (*HighWater)[Machine];
        Cur = std::max(Cur, Seq);
      }
      continue;
    }
    if (!C)
      return fail(Error, R.lineNo(), "'" + Key + "' outside a campaign");

    uint64_t V = 0;
    if (Key == "bug") {
      C->BugId = R.rest();
    } else if (Key == "sig") {
      uint64_t Kind = 0, Instr = 0;
      if (!R.u64(Kind) || !R.u64(Instr) || !validKind(Kind))
        return fail(Error, R.lineNo(), "malformed sig");
      FailureRecord F;
      F.Kind = static_cast<FailureKind>(Kind);
      F.InstrGlobalId = static_cast<unsigned>(Instr);
      std::vector<unsigned> Stack;
      if (!readIdList(R, Stack, Error))
        return false;
      F.CallStack = std::move(Stack);
      C->Sig = FailureSignature::of(F);
      SigSeen = true;
    } else if (Key == "occurrences") {
      if (!R.u64(C->Occurrences))
        return fail(Error, R.lineNo(), "malformed occurrences");
    } else if (Key == "seed") {
      if (!R.u64(C->CampaignSeed))
        return fail(Error, R.lineNo(), "malformed seed");
    } else if (Key == "completed") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed completed flag");
      C->Completed = V != 0;
    } else if (Key == "suspended") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed suspended flag");
      C->Suspended = V != 0;
    } else if (Key == "iterationsdone") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed iterationsdone");
      C->IterationsDone = static_cast<unsigned>(V);
    } else if (Key == "preemptions") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed preemptions");
      C->Preemptions = static_cast<unsigned>(V);
    } else if (Key == "success") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed success flag");
      C->Report.Success = V != 0;
    } else if (Key == "occursconsumed") {
      if (!R.u64(V))
        return fail(Error, R.lineNo(), "malformed occursconsumed");
      C->Report.Occurrences = static_cast<unsigned>(V);
    } else if (Key == "failinginstrs") {
      if (!R.u64(C->Report.FailingInstrCount))
        return fail(Error, R.lineNo(), "malformed failinginstrs");
    } else if (Key == "symexseconds") {
      C->Report.TotalSymexSeconds = std::strtod(R.rest().c_str(), nullptr);
    } else if (Key == "failure") {
      uint64_t Kind = 0, Instr = 0, Tid = 0;
      if (!R.u64(Kind) || !R.u64(Instr) || !R.u64(Tid) || !validKind(Kind))
        return fail(Error, R.lineNo(), "malformed failure record");
      C->Report.Failure.Kind = static_cast<FailureKind>(Kind);
      C->Report.Failure.InstrGlobalId = static_cast<unsigned>(Instr);
      C->Report.Failure.Tid = static_cast<uint32_t>(Tid);
      if (!readIdList(R, C->Report.Failure.CallStack, Error))
        return false;
    } else if (Key == "message") {
      C->Report.Failure.Message = R.rest();
    } else if (Key == "detail") {
      C->Report.FailureDetail = R.rest();
    } else if (Key == "replayseed") {
      if (!R.u64(C->Report.ReplayScheduleSeed))
        return fail(Error, R.lineNo(), "malformed replayseed");
    } else if (Key == "testargs") {
      uint64_t N = 0;
      if (!R.u64(N))
        return fail(Error, R.lineNo(), "malformed testargs");
      C->Report.TestCase.Args.clear();
      for (uint64_t I = 0; I < N; ++I) {
        if (!R.u64(V))
          return fail(Error, R.lineNo(), "short testargs");
        C->Report.TestCase.Args.push_back(V);
      }
    } else if (Key == "testbytes") {
      uint64_t N = 0;
      if (!R.u64(N))
        return fail(Error, R.lineNo(), "malformed testbytes");
      std::string Hex = R.word();
      // Compare via the hex string's own size — `N * 2` wraps for a
      // corrupt 2^63-ish count, which used to pass this check and then
      // index Hex out of bounds below.
      if (Hex.size() % 2 != 0 || Hex.size() / 2 != N)
        return fail(Error, R.lineNo(), "testbytes length mismatch");
      C->Report.TestCase.Bytes.clear();
      C->Report.TestCase.Bytes.reserve(N);
      for (uint64_t I = 0; I < N; ++I) {
        auto Nibble = [](char Ch) -> int {
          if (Ch >= '0' && Ch <= '9')
            return Ch - '0';
          if (Ch >= 'a' && Ch <= 'f')
            return Ch - 'a' + 10;
          if (Ch >= 'A' && Ch <= 'F')
            return Ch - 'A' + 10;
          return -1;
        };
        int Hi = Nibble(Hex[2 * I]), Lo = Nibble(Hex[2 * I + 1]);
        if (Hi < 0 || Lo < 0)
          return fail(Error, R.lineNo(), "bad hex in testbytes");
        C->Report.TestCase.Bytes.push_back(
            static_cast<uint8_t>((Hi << 4) | Lo));
      }
    } else if (Key == "recordingset") {
      if (!readIdList(R, C->RecordingSet, Error))
        return false;
    } else if (Key == "schedsearch") {
      uint64_t Explicit = 0, Attempts = 0, Seed = 0;
      if (!R.u64(Explicit) || !R.u64(Attempts) || !R.u64(Seed))
        return fail(Error, R.lineNo(), "malformed schedsearch");
      C->Report.Sched.Used = true;
      C->Report.Sched.ExplicitOrder = Explicit != 0;
      C->Report.Sched.Attempts = static_cast<unsigned>(Attempts);
      C->Report.Sched.Seed = Seed;
    } else if (Key == "schedorder") {
      uint64_t N = 0;
      if (!R.u64(N))
        return fail(Error, R.lineNo(), "malformed schedorder");
      // Every slice costs at least " t:n" on the line; bound the reserve
      // like readIdList does before trusting the count.
      if (N > (R.remaining() + 1) / 4)
        return fail(Error, R.lineNo(), "schedorder length exceeds line");
      C->Report.Sched.Order.clear();
      C->Report.Sched.Order.reserve(N);
      for (uint64_t I = 0; I < N; ++I) {
        std::string Tok = R.word();
        unsigned long long Tid = 0, Instrs = 0;
        if (std::sscanf(Tok.c_str(), "%llu:%llu", &Tid, &Instrs) != 2)
          return fail(Error, R.lineNo(), "bad schedorder slice");
        C->Report.Sched.Order.push_back(
            {static_cast<uint32_t>(Tid), Instrs});
      }
    } else if (Key == "end") {
      // A campaign without identity must not load: FleetScheduler merges
      // by signature, and a default (all-zero) signature would silently
      // absorb — or collide with — real buckets.
      if (!SigSeen)
        return fail(Error, R.lineNo(), "campaign missing 'sig'");
      C = nullptr;
    } else {
      // Unknown keys are skipped: newer writers may add fields.
    }
  }
  if (C)
    return fail(Error, R.lineNo(), "unterminated campaign (missing 'end')");
  return true;
}
