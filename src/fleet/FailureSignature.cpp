//===- FailureSignature.cpp - Stable failure bucketing keys ----------------===//

#include "fleet/FailureSignature.h"

#include "support/Format.h"

using namespace er;

static uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

FailureSignature FailureSignature::of(const FailureRecord &R) {
  FailureSignature S;
  S.Kind = R.Kind;
  S.InstrGlobalId = R.InstrGlobalId;
  S.CallStack = R.CallStack;

  uint64_t D = mix64(0x5ca1ab1eULL ^ static_cast<uint64_t>(R.Kind));
  D = mix64(D ^ R.InstrGlobalId);
  // Chain the call path; include the length so [a] and [a, 0] differ.
  D = mix64(D ^ R.CallStack.size());
  for (unsigned Site : R.CallStack)
    D = mix64(D ^ Site);
  S.Digest = D;
  return S;
}

bool FailureSignature::matches(const FailureRecord &R) const {
  return Kind == R.Kind && InstrGlobalId == R.InstrGlobalId &&
         CallStack == R.CallStack;
}

std::string FailureSignature::hex() const {
  return formatString("%016llx", (unsigned long long)Digest);
}

std::string FailureSignature::describe() const {
  std::string Path;
  for (unsigned Site : CallStack) {
    if (!Path.empty())
      Path += ">";
    Path += formatString("%u", Site);
  }
  return formatString("%s@%u[%s]#%s", failureKindName(Kind), InstrGlobalId,
                      Path.c_str(), hex().c_str());
}
