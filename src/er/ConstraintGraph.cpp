//===- ConstraintGraph.cpp ----------------------------------------------------===//

#include "er/ConstraintGraph.h"

using namespace er;

void ConstraintGraph::visit(ExprRef E) {
  std::vector<ExprRef> Stack{E};
  while (!Stack.empty()) {
    ExprRef N = Stack.back();
    Stack.pop_back();
    if (!Nodes.insert(N).second)
      continue;
    NumEdges += N->getNumOps();
    for (unsigned I = 0; I < N->getNumOps(); ++I)
      Stack.push_back(N->getOp(I));
  }
}

ConstraintGraph::ConstraintGraph(const SymexSnapshot &Snap) : Snap(Snap) {
  for (ExprRef C : Snap.PathConstraint)
    visit(C);
  for (const auto &Chain : Snap.Chains) {
    for (const auto &W : Chain.Writes) {
      visit(W.Index);
      visit(W.Value);
      NumEdges += 2; // Address and value dependency edges of the write node.
    }
    if (!Longest || Chain.Writes.size() > Longest->Writes.size())
      Longest = &Chain;
    if (!LargestObject ||
        Chain.byteSize() > LargestObject->byteSize())
      LargestObject = &Chain;
  }
  if (Snap.CulpritExpr)
    visit(Snap.CulpritExpr);
}
