//===- ConstraintGraph.h - Dependency graph over path constraints -*- C++ -*-===//
///
/// \file
/// The constraint graph of Section 3.2: nodes are operations, constants,
/// symbolic inputs, symbolic-memory arrays, reads and writes; edges point
/// from a node to its input dependencies (value edges) and from memory
/// operations to their address expressions (address edges).
///
/// The graph is an analysis view over the hash-consed expression DAG plus
/// the per-object symbolic write chains captured by shepherded symbolic
/// execution. Key data value selection consumes it; the offline-cost
/// experiment (Section 5.3) reports its size.
///
//===----------------------------------------------------------------------===//

#ifndef ER_ER_CONSTRAINTGRAPH_H
#define ER_ER_CONSTRAINTGRAPH_H

#include "solver/Expr.h"
#include "symex/SymExecutor.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace er {

/// Node/edge statistics and chain queries over one stalled execution.
class ConstraintGraph {
public:
  /// Builds the graph from a symex snapshot.
  explicit ConstraintGraph(const SymexSnapshot &Snap);

  /// Total distinct nodes (expressions + array states).
  uint64_t numNodes() const { return Nodes.size(); }
  uint64_t numEdges() const { return NumEdges; }

  /// The chain with the most symbolic writes ("length of symbolic write
  /// chains", Section 3.3.1). Null if no chains exist.
  const ObjectChain *longestChain() const { return Longest; }
  /// The chain updating the largest symbolic memory object ("size of the
  /// accessed symbolic memory"). Null if no chains exist.
  const ObjectChain *largestObjectChain() const { return LargestObject; }

  const SymexSnapshot &snapshot() const { return Snap; }

private:
  void visit(ExprRef E);

  const SymexSnapshot &Snap;
  std::unordered_set<ExprRef> Nodes;
  uint64_t NumEdges = 0;
  const ObjectChain *Longest = nullptr;
  const ObjectChain *LargestObject = nullptr;
};

} // namespace er

#endif // ER_ER_CONSTRAINTGRAPH_H
