//===- Selection.cpp - Key data value selection ---------------------------------===//

#include "er/Selection.h"

#include "support/Rng.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace er;

static constexpr uint64_t Infinite = UINT64_MAX;

KeyValueSelector::KeyValueSelector(
    const ConstraintGraph &Graph,
    std::unordered_set<unsigned> AlreadyInstrumented)
    : Graph(Graph), AlreadyInstrumented(std::move(AlreadyInstrumented)) {
  computeBottleneck();
}

uint64_t KeyValueSelector::costOf(ExprRef E) const {
  const SymexSnapshot &S = Graph.snapshot();
  auto It = S.Origins.find(E);
  if (It == S.Origins.end())
    return Infinite;
  if (AlreadyInstrumented.count(It->second))
    return Infinite; // Already recorded: re-recording gains nothing.
  uint64_t Count =
      It->second < S.ExecCounts.size() ? S.ExecCounts[It->second] : 0;
  if (Count == 0)
    Count = 1;
  unsigned Bytes = (E->getWidth() + 7) / 8;
  return Bytes * Count;
}

void KeyValueSelector::computeBottleneck() {
  std::unordered_set<ExprRef> Seen;
  auto Add = [&](ExprRef E) {
    if (E && !E->isConst() && Seen.insert(E).second)
      Bottleneck.push_back(E);
  };

  // Every symbolic value read or written by the operations of the two
  // bottleneck chains.
  for (const ObjectChain *Chain :
       {Graph.longestChain(), Graph.largestObjectChain()}) {
    if (!Chain)
      continue;
    for (const auto &W : Chain->Writes) {
      Add(W.Index);
      Add(W.Value);
    }
  }
  // The expressions whose resolution stalled (covers stalls before any
  // chain forms, and adds the pending read — e.g. V[x] in the running
  // example; for final-solve timeouts, the heaviest constraint cores).
  Add(Graph.snapshot().CulpritExpr);
  for (ExprRef E : Graph.snapshot().CulpritExprs)
    Add(E);
}

namespace {

/// Shared machinery for concreteness/cover queries over the DAG.
class CoverSolver {
public:
  CoverSolver(const KeyValueSelector &Sel, const SymexSnapshot &Snap)
      : Sel(Sel), Snap(Snap) {}

  /// Would \p E become concrete if every element of \p Recorded were
  /// recorded?
  bool becomesConcrete(ExprRef E,
                       const std::unordered_set<ExprRef> &Recorded) {
    std::unordered_map<ExprRef, bool> Memo;
    return concreteImpl(E, Recorded, Memo);
  }

  /// The cheapest set of recordable descendants (treating members of
  /// \p Free as already recorded, i.e. zero-cost) from which \p E can be
  /// inferred. Returns the set and its cost; {E} itself is a candidate.
  std::pair<std::vector<ExprRef>, uint64_t>
  bestCover(ExprRef E, const std::unordered_set<ExprRef> &Free) {
    std::unordered_map<ExprRef, std::vector<ExprRef>> Memo;
    std::vector<ExprRef> Cover = coverImpl(E, Free, Memo);
    return {Cover, setCost(Cover)};
  }

  uint64_t setCost(const std::vector<ExprRef> &Set) const {
    uint64_t Total = 0;
    for (ExprRef E : Set) {
      uint64_t C = Sel.costOf(E);
      if (C == Infinite)
        return Infinite;
      Total += C;
    }
    return Total;
  }

private:
  bool concreteImpl(ExprRef E, const std::unordered_set<ExprRef> &Recorded,
                    std::unordered_map<ExprRef, bool> &Memo) {
    if (E->isConst())
      return true;
    if (Recorded.count(E))
      return true;
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    Memo.emplace(E, false); // Cycle guard (the DAG has none, but be safe).

    bool Result = false;
    switch (E->getKind()) {
    case ExprKind::Var:
    case ExprKind::SymArray:
      Result = false;
      break;
    case ExprKind::ConstArray:
    case ExprKind::DataArray:
      Result = true;
      break;
    case ExprKind::Read:
      Result = concreteImpl(E->getOp1(), Recorded, Memo) &&
               arrayConcrete(E->getOp0(), Recorded, Memo);
      break;
    default: {
      Result = true;
      for (unsigned I = 0; I < E->getNumOps(); ++I)
        Result = Result && concreteImpl(E->getOp(I), Recorded, Memo);
      break;
    }
    }
    Memo[E] = Result;
    return Result;
  }

  bool arrayConcrete(ExprRef A, const std::unordered_set<ExprRef> &Recorded,
                     std::unordered_map<ExprRef, bool> &Memo) {
    while (A->getKind() == ExprKind::Write) {
      if (!concreteImpl(A->getOp1(), Recorded, Memo) ||
          !concreteImpl(A->getOp2(), Recorded, Memo))
        return false;
      A = A->getOp0();
    }
    return A->getKind() != ExprKind::SymArray;
  }

  /// Returns the cover set for \p E, or a set containing an unrecordable
  /// sentinel (cost Infinite) when none exists.
  std::vector<ExprRef>
  coverImpl(ExprRef E, const std::unordered_set<ExprRef> &Free,
            std::unordered_map<ExprRef, std::vector<ExprRef>> &Memo) {
    if (E->isConst() || Free.count(E))
      return {};
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    Memo.emplace(E, std::vector<ExprRef>{E}); // Provisional.

    // Option 1: record E itself.
    std::vector<ExprRef> Self{E};
    uint64_t SelfCost = Sel.costOf(E);

    // Option 2: cover E's dependencies.
    std::vector<ExprRef> ChildCover;
    bool ChildPossible = true;
    auto Merge = [&](const std::vector<ExprRef> &Sub) {
      for (ExprRef S : Sub)
        if (std::find(ChildCover.begin(), ChildCover.end(), S) ==
            ChildCover.end())
          ChildCover.push_back(S);
    };
    switch (E->getKind()) {
    case ExprKind::Var:
    case ExprKind::SymArray:
      ChildPossible = false; // Leaves have no decomposition.
      break;
    case ExprKind::Read: {
      Merge(coverImpl(E->getOp1(), Free, Memo));
      ExprRef A = E->getOp0();
      while (A->getKind() == ExprKind::Write) {
        Merge(coverImpl(A->getOp1(), Free, Memo));
        Merge(coverImpl(A->getOp2(), Free, Memo));
        A = A->getOp0();
      }
      if (A->getKind() == ExprKind::SymArray)
        ChildPossible = false;
      break;
    }
    default:
      for (unsigned I = 0; I < E->getNumOps(); ++I)
        Merge(coverImpl(E->getOp(I), Free, Memo));
      break;
    }

    std::vector<ExprRef> Result;
    if (!ChildPossible) {
      Result = std::move(Self);
    } else {
      uint64_t ChildCost = setCost(ChildCover);
      Result = (ChildCost < SelfCost) ? std::move(ChildCover)
                                      : std::move(Self);
    }
    Memo[E] = Result;
    return Result;
  }

  const KeyValueSelector &Sel;
  const SymexSnapshot &Snap;
};

} // namespace

RecordingPlan KeyValueSelector::computeRecordingSet() const {
  CoverSolver CS(*this, Graph.snapshot());

  std::vector<ExprRef> R = Bottleneck;
  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds++ < 16) {
    Changed = false;
    for (size_t I = 0; I < R.size();) {
      ExprRef E = R[I];
      std::unordered_set<ExprRef> Others(R.begin(), R.end());
      Others.erase(E);

      // Already inferable from the rest of the set: drop it for free
      // (e.g. V[x] once x and c are recorded).
      if (CS.becomesConcrete(E, Others)) {
        R.erase(R.begin() + static_cast<long>(I));
        Changed = true;
        continue;
      }

      // Try a cheaper cover of descendants.
      auto [Cover, CoverCost] = CS.bestCover(E, Others);
      uint64_t SelfCost = costOf(E);
      if (CoverCost < SelfCost && !(Cover.size() == 1 && Cover[0] == E)) {
        R.erase(R.begin() + static_cast<long>(I));
        for (ExprRef C : Cover)
          if (std::find(R.begin(), R.end(), C) == R.end())
            R.push_back(C);
        Changed = true;
        continue;
      }
      ++I;
    }
  }

  // Drop anything unrecordable that survived (cannot be instrumented).
  RecordingPlan Plan;
  const SymexSnapshot &S = Graph.snapshot();
  for (ExprRef E : R) {
    auto It = S.Origins.find(E);
    if (It == S.Origins.end())
      continue;
    RecordedValue V;
    V.E = E;
    V.OriginInstr = It->second;
    V.WidthBytes = (E->getWidth() + 7) / 8;
    V.DynCount = It->second < S.ExecCounts.size() ? S.ExecCounts[It->second]
                                                  : 1;
    V.Cost = costOf(E);
    Plan.Values.push_back(V);
  }
  // Deterministic order for tests and reproducibility.
  std::sort(Plan.Values.begin(), Plan.Values.end(),
            [](const RecordedValue &A, const RecordedValue &B) {
              return A.E->getId() < B.E->getId();
            });
  return Plan;
}

RecordingPlan KeyValueSelector::randomRecordingSet(
    Rng &R, const RecordingPlan &Reference) const {
  // Candidate pool: every recordable expression in the snapshot.
  const SymexSnapshot &S = Graph.snapshot();
  std::vector<ExprRef> Pool;
  for (const auto &[E, Origin] : S.Origins)
    if (!E->isConst() && !E->isArray())
      Pool.push_back(E);
  std::sort(Pool.begin(), Pool.end(),
            [](ExprRef A, ExprRef B) { return A->getId() < B->getId(); });

  RecordingPlan Plan;
  uint64_t Budget = Reference.totalCost();
  uint64_t Spent = 0;
  std::unordered_set<ExprRef> Chosen;
  unsigned Attempts = 0;
  while (Spent < Budget && !Pool.empty() && Attempts < 10 * Pool.size()) {
    ++Attempts;
    ExprRef E = Pool[R.nextBounded(Pool.size())];
    if (!Chosen.insert(E).second)
      continue;
    uint64_t C = costOf(E);
    if (C == Infinite)
      continue;
    auto It = S.Origins.find(E);
    RecordedValue V;
    V.E = E;
    V.OriginInstr = It->second;
    V.WidthBytes = (E->getWidth() + 7) / 8;
    V.DynCount = It->second < S.ExecCounts.size() ? S.ExecCounts[It->second]
                                                  : 1;
    V.Cost = C;
    Plan.Values.push_back(V);
    Spent += C;
  }
  return Plan;
}
