//===- ScheduleSearch.cpp - Schedule search for concurrency bugs -----------===//

#include "er/ScheduleSearch.h"

#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Rng.h"

#include <algorithm>
#include <unordered_set>

using namespace er;

namespace {

struct SearchMetrics {
  obs::Counter &Searches, &Rescues, &Runs;
  obs::Histogram &Attempts;

  static SearchMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static SearchMetrics M{Reg.counter("er.schedsearch.searches"),
                           Reg.counter("er.schedsearch.rescues"),
                           Reg.counter("er.schedsearch.runs"),
                           Reg.histogram("er.schedsearch.attempts",
                                         obs::exponentialBounds(1, 8, 2))};
    return M;
  }
};

/// Per-thread cursor into the decoded chunk streams.
struct ThreadCursor {
  uint32_t Tid = 0;
  const std::vector<ChunkInfo> *Chunks = nullptr;
  size_t Next = 0;
};

/// Builds one linear extension of the chunk partial order: per-thread
/// chunk order is preserved; whenever several threads' next chunks start
/// within \p TsWindow ticks of the earliest pending one, \p Choice picks
/// among them (null = deterministic lowest-thread-id tie-break).
std::vector<ScheduleSlice> linearExtension(const DecodedTrace &Decoded,
                                           uint64_t TsWindow, Rng *Choice) {
  std::vector<ThreadCursor> Cur;
  size_t Total = 0;
  for (const auto &T : Decoded.Threads) {
    if (T.Chunks.empty())
      continue;
    Cur.push_back({T.Tid, &T.Chunks, 0});
    Total += T.Chunks.size();
  }
  std::sort(Cur.begin(), Cur.end(),
            [](const ThreadCursor &A, const ThreadCursor &B) {
              return A.Tid < B.Tid;
            });

  std::vector<ScheduleSlice> Out;
  Out.reserve(Total);
  std::vector<size_t> Cand;
  while (Out.size() < Total) {
    uint64_t MinTs = UINT64_MAX;
    for (const auto &C : Cur)
      if (C.Next < C.Chunks->size())
        MinTs = std::min(MinTs, (*C.Chunks)[C.Next].Timestamp);
    Cand.clear();
    for (size_t I = 0; I < Cur.size(); ++I) {
      const auto &C = Cur[I];
      if (C.Next < C.Chunks->size() &&
          (*C.Chunks)[C.Next].Timestamp <= MinTs + TsWindow)
        Cand.push_back(I);
    }
    size_t Pick = 0;
    if (Choice && Cand.size() > 1)
      Pick = Choice->nextBounded(Cand.size());
    ThreadCursor &C = Cur[Cand[Pick]];
    const ChunkInfo &Ch = (*C.Chunks)[C.Next++];
    Out.push_back({C.Tid, Ch.NumInstrs ? Ch.NumInstrs : 1});
  }
  return Out;
}

uint64_t hashOrder(const std::vector<ScheduleSlice> &Order) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const ScheduleSlice &S : Order) {
    H = (H ^ S.Tid) * 0x100000001b3ull;
    H = (H ^ S.Instrs) * 0x100000001b3ull;
  }
  return H;
}

bool reproduces(const Module &M, const VmConfig &VC, const ProgramInput &In,
                const FailureRecord &Target) {
  Interpreter VM(M, VC);
  RunResult RR = VM.run(In);
  return RR.Status == ExitStatus::Failure && RR.Failure.sameFailure(Target);
}

} // namespace

ScheduleSearchResult er::searchSchedules(const Module &M,
                                         const VmConfig &BaseVm,
                                         const ProgramInput &In,
                                         const DecodedTrace &Decoded,
                                         const FailureRecord &Target,
                                         const ScheduleSearchConfig &Config,
                                         uint64_t FallbackSeed) {
  ScheduleSearchResult R;
  if (!Config.Enabled)
    return R;
  SearchMetrics &SM = SearchMetrics::get();
  SM.Searches.inc();
  obs::ScopedSpan Span("er.schedsearch");

  // Phase A: replay linear extensions of the decoded chunk partial order.
  // Attempt K draws its reordering choices from Root.split(K), so the
  // sequence of candidates is a pure function of (SearchSeed, K). A small
  // hash set skips duplicate extensions (common when the trace has few
  // timestamp ties) without consuming replay budget.
  Rng Root(Config.SearchSeed);
  std::unordered_set<uint64_t> Seen;
  for (unsigned A = 0; A < Config.MaxOrderAttempts && !R.Found; ++A) {
    Rng Choice = Root.split(A);
    std::vector<ScheduleSlice> Order =
        A == 0 ? linearExtension(Decoded, 0, nullptr)
               : linearExtension(Decoded, Config.TsWindow, &Choice);
    if (Order.empty())
      break; // Untraced run; only the seed sweep can help.
    if (!Seen.insert(hashOrder(Order)).second)
      continue;
    ++R.Attempts;
    VmConfig VC = BaseVm;
    VC.ScheduleSeed = FallbackSeed;
    VC.ExplicitSchedule = &Order;
    SM.Runs.inc();
    if (reproduces(M, VC, In, Target)) {
      R.Found = true;
      R.ExplicitOrder = true;
      R.Seed = FallbackSeed;
      R.Order = std::move(Order);
    }
  }

  // Phase B: sweep fresh scheduler seeds for interleavings the recorded
  // chunk boundaries cannot express.
  if (!R.Found) {
    Rng Seeds = Root.split(0x5eed);
    for (unsigned A = 0; A < Config.MaxSeedAttempts; ++A) {
      ++R.Attempts;
      uint64_t S = Seeds.next();
      VmConfig VC = BaseVm;
      VC.ScheduleSeed = S;
      SM.Runs.inc();
      if (reproduces(M, VC, In, Target)) {
        R.Found = true;
        R.Seed = S;
        break;
      }
    }
  }

  SM.Attempts.record(R.Attempts);
  if (R.Found)
    SM.Rescues.inc();
  Span.arg("attempts", static_cast<uint64_t>(R.Attempts));
  Span.arg("found", static_cast<uint64_t>(R.Found));
  Span.arg("explicit", static_cast<uint64_t>(R.ExplicitOrder));
  return R;
}
