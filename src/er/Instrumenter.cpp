//===- Instrumenter.cpp --------------------------------------------------------===//

#include "er/Instrumenter.h"

#include "support/Error.h"

using namespace er;

unsigned er::instrumentModule(Module &M, const RecordingPlan &Plan) {
  unsigned Inserted = 0;
  for (const auto &V : Plan.Values) {
    Instruction *Def = M.getInstructionById(V.OriginInstr);
    if (!Def)
      fatalError("recording plan references an unknown instruction");
    if (Def->getType().isVoid())
      continue; // Nothing to record (should not happen).
    BasicBlock *BB = Def->getParent();

    // Idempotence: skip if a ptwrite of this def already follows it.
    bool Already = false;
    for (size_t I = 0; I < BB->size(); ++I) {
      if (BB->getInst(I) != Def)
        continue;
      if (I + 1 < BB->size()) {
        const Instruction *Next = BB->getInst(I + 1);
        if (Next->getOpcode() == Opcode::PtWrite &&
            Next->getOperand(0) == Def)
          Already = true;
      }
      break;
    }
    if (Already)
      continue;

    auto PtW = std::make_unique<Instruction>(Opcode::PtWrite,
                                             Type::makeVoid());
    PtW->addOperand(Def);
    BB->insertAfter(Def, std::move(PtW));
    ++Inserted;
  }
  if (Inserted)
    M.finalize();
  return Inserted;
}

std::unordered_set<unsigned> er::instrumentedSites(const Module &M) {
  std::unordered_set<unsigned> Sites;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (I->getOpcode() == Opcode::PtWrite)
          if (const auto *Def = dyn_cast<Instruction>(I->getOperand(0)))
            Sites.insert(Def->getGlobalId());
  return Sites;
}

unsigned er::countInstrumentation(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (I->getOpcode() == Opcode::PtWrite)
          ++N;
  return N;
}
