//===- ScheduleSearch.h - Schedule search for concurrency bugs ---*- C++ -*-===//
///
/// \file
/// When a reconstructed input fails validation under the recorded run's
/// scheduler seed, the input is usually right and the *interleaving* is
/// wrong: the quantized chunk timestamps only give a partial order across
/// threads (Section 3.4 of the paper), and the seeded replay picked an
/// order the bug does not fire under. Schedule search recovers such
/// campaigns in two bounded phases:
///
///  - **Phase A (order search)**: enumerate linear extensions of the
///    decoded chunk partial order — per-thread chunk order is fixed; at
///    each step any thread whose next chunk starts within `TsWindow`
///    quantized ticks of the earliest pending chunk is a candidate — and
///    replay each through `VmConfig::ExplicitSchedule`. Attempt 0 is the
///    canonical earliest-timestamp order (thread-id tie-break); later
///    attempts randomize the candidate choice from a split of
///    `SearchSeed`, so the enumeration is deterministic and independent
///    of attempt count.
///  - **Phase B (seed sweep)**: fresh scheduler seeds drawn from another
///    split, for failures whose trigger interleaving lies outside the
///    recorded chunk boundaries entirely.
///
/// A hit returns a witness (explicit order or seed) that the driver
/// persists in the campaign report so the reproduction is replayable.
///
//===----------------------------------------------------------------------===//

#ifndef ER_ER_SCHEDULESEARCH_H
#define ER_ER_SCHEDULESEARCH_H

#include "ir/IR.h"
#include "trace/Trace.h"
#include "vm/Failure.h"
#include "vm/Input.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <vector>

namespace er {

/// Bounds for one schedule search (invoked at most once per failed
/// validation, so the budgets are per-iteration).
struct ScheduleSearchConfig {
  bool Enabled = true;
  /// Phase A: linear extensions of the chunk partial order to try.
  unsigned MaxOrderAttempts = 48;
  /// Phase B: fresh scheduler seeds to try after order search misses.
  unsigned MaxSeedAttempts = 24;
  /// Chunks starting within this many quantized ticks of the earliest
  /// pending chunk are considered concurrent (candidate reorderings).
  uint64_t TsWindow = 2;
  /// Root of the deterministic search stream (split per attempt).
  uint64_t SearchSeed = 1;
};

/// The outcome of one search; `Found` implies the witness fields below
/// replay the failure: run with `ExplicitSchedule = &Order` (when
/// ExplicitOrder) and `ScheduleSeed = Seed` either way.
struct ScheduleSearchResult {
  bool Found = false;
  bool ExplicitOrder = false; ///< Phase A hit (Order holds the witness).
  unsigned Attempts = 0;      ///< Total candidate replays consumed.
  uint64_t Seed = 0;          ///< Scheduler seed of the reproducing run.
  std::vector<ScheduleSlice> Order;
};

/// Searches for an interleaving under which \p In reproduces \p Target.
/// \p Decoded is the failing run's trace (source of the chunk partial
/// order); \p FallbackSeed seeds the scheduler once an explicit plan is
/// exhausted (the failing run's seed, so the tail interleaving matches).
ScheduleSearchResult searchSchedules(const Module &M, const VmConfig &BaseVm,
                                     const ProgramInput &In,
                                     const DecodedTrace &Decoded,
                                     const FailureRecord &Target,
                                     const ScheduleSearchConfig &Config,
                                     uint64_t FallbackSeed);

} // namespace er

#endif // ER_ER_SCHEDULESEARCH_H
