//===- Driver.h - Iterative execution reconstruction -------------*- C++ -*-===//
///
/// \file
/// ER's end-to-end loop (Fig. 2 of the paper):
///
///   production run (traced) -> failure -> shepherded symbolic execution
///     -> reproduced? generate + validate test case, done
///     -> stalled?    key data value selection -> instrument -> redeploy
///                    -> wait for the failure to *reoccur* -> repeat
///
/// "Production" is modelled by an input generator + randomized scheduler
/// seeds: the driver keeps running the (instrumented) program on generated
/// inputs until the target failure reoccurs, mirroring how large
/// deployments see the same failure repeatedly.
///
//===----------------------------------------------------------------------===//

#ifndef ER_ER_DRIVER_H
#define ER_ER_DRIVER_H

#include "er/ScheduleSearch.h"
#include "er/Selection.h"
#include "ir/IR.h"
#include "support/Rng.h"
#include "solver/Solver.h"
#include "symex/SymExecutor.h"
#include "trace/Trace.h"
#include "vm/Interpreter.h"

#include <functional>
#include <string>
#include <vector>

namespace er {

/// Tuning for one reconstruction campaign.
struct DriverConfig {
  SolverConfig Solver;
  SymexConfig Symex;
  VmConfig Vm;
  TraceConfig Trace;
  unsigned MaxIterations = 12;
  uint64_t MaxRunsPerOccurrence = 20000;
  uint64_t Seed = 1;
  /// Section 3.1 option: leave tracing off until the failure has been
  /// observed this many times (0 = always-on tracing). The skipped
  /// occurrences still count toward the occurrence total.
  unsigned EnableTracingAfterOccurrences = 0;
  /// Ablation: replace key data value selection with random recording of
  /// the same cost (Section 5.2's comparison).
  bool UseRandomSelection = false;
  /// Section 3.4 fallback: when a reconstruction fails to validate (or the
  /// trace replay desynchronizes) under the default tie-break of equal
  /// chunk timestamps, retry with this many alternative orders before
  /// consuming another occurrence.
  unsigned MaxTieBreakRetries = 3;
  /// Fleet modeling: simulated wall-clock delay for one failure occurrence
  /// to arrive from the deployment. In a real fleet the online phase is
  /// dominated by waiting for the bug to reoccur in production (the paper
  /// reports hours) — time that costs the reconstruction service no CPU.
  /// The fleet throughput bench sets this so concurrent campaigns overlap
  /// their waits; it never affects reconstruction results, only wall time.
  double OccurrenceLatencySeconds = 0;
  /// Concurrency fallback: when a reconstructed input fails validation
  /// under the recorded schedule, search alternative chunk orders (and
  /// then seeds) consistent with the trace's timestamp partial order
  /// before burning another occurrence. See er/ScheduleSearch.h.
  ScheduleSearchConfig SchedSearch;
};

/// Telemetry for one iteration (one failure occurrence + one offline phase).
struct IterationReport {
  SymexStatus Status = SymexStatus::TraceMismatch;
  unsigned NewRecordedValues = 0;
  unsigned TotalInstrumentationSites = 0;
  uint64_t RecordingCost = 0;
  uint64_t SymexInstrs = 0;
  uint64_t SymexWork = 0;
  double SymexSeconds = 0;
  double SelectionSeconds = 0;
  uint64_t GraphNodes = 0;
  uint64_t FailingRunInstrs = 0;
  uint64_t RunsUntilFailure = 0;
  TraceStats Trace;
  std::string Detail;
};

/// How a campaign's test case reproduces when schedule search had to step
/// in: either an explicit chunk order (replay with
/// `VmConfig::ExplicitSchedule = &Order`) or just a scheduler seed. The
/// fleet persists this witness with the campaign state.
struct SchedWitness {
  bool Used = false;          ///< Schedule search produced the reproduction.
  bool ExplicitOrder = false; ///< Order (vs. Seed alone) is the witness.
  unsigned Attempts = 0;      ///< Candidate replays the search consumed.
  uint64_t Seed = 0;          ///< Scheduler seed of the reproducing run.
  std::vector<ScheduleSlice> Order;
};

/// The outcome of a whole reconstruction campaign.
struct ReconstructionReport {
  bool Success = false;
  unsigned Occurrences = 0; ///< Failure occurrences consumed (#Occur).
  double TotalSymexSeconds = 0;
  ProgramInput TestCase;
  uint64_t ReplayScheduleSeed = 0; ///< Schedule under which TestCase fails.
  SchedWitness Sched; ///< Set when schedule search rescued the campaign.
  FailureRecord Failure;
  uint64_t FailingInstrCount = 0; ///< #Instr of the last failing execution.
  std::vector<IterationReport> Iterations;
  std::string FailureDetail; ///< Set when !Success.
};

/// One reconstruction campaign, resumable between iterations.
///
/// The whole iterate-until-reproduced loop, unrolled into discrete steps: a
/// `step()` performs exactly one unit of forward progress — one warm-up
/// occurrence (when `EnableTracingAfterOccurrences` is set) or one full
/// iteration (online wait + trace decode + shepherded symex + validate /
/// select / instrument) — and returns whether the campaign still has work
/// left. A caller that owns several sessions (the fleet scheduler) can
/// interleave their steps, suspend one mid-campaign, and resume it later;
/// stepping a session to completion yields exactly the report a monolithic
/// `ReconstructionDriver::reconstruct` call would have produced, bit for
/// bit, because all campaign state lives in the session between steps.
class ReconstructionSession {
public:
  /// Generates one production input; the distribution should make the
  /// target failure reachable but need not make it frequent.
  using InputGenerator = std::function<ProgramInput(Rng &)>;

  /// The module, context, and solver must outlive the session; the module
  /// is mutated (re-instrumented) as the campaign progresses.
  ReconstructionSession(Module &M, DriverConfig Config, ExprContext &Ctx,
                        ConstraintSolver &Solver, InputGenerator Gen,
                        const FailureRecord *TargetFailure = nullptr);

  /// Performs one step; returns true while more work remains. Once it
  /// returns false the report is final and further calls are no-ops.
  bool step();

  bool finished() const { return Finished; }

  /// Steps performed so far (warm-up occurrences + iterations).
  unsigned stepsDone() const { return StepsDone; }

  /// Why the campaign ended, for telemetry: "reproduced",
  /// "selection_exhausted", "iteration_budget_exhausted", a terminal symex
  /// status name, or empty (run budget exhausted before reoccurrence).
  const std::string &resultTag() const { return ResultTag; }

  const ReconstructionReport &report() const { return Report; }
  ReconstructionReport takeReport() { return std::move(Report); }

private:
  bool warmupStep();
  bool iterationStep();

  Module &M;
  DriverConfig Config;
  ExprContext &Ctx;
  ConstraintSolver &Solver;
  InputGenerator Gen;
  Rng ProdRng;
  ReconstructionReport Report;
  FailureRecord Target;
  bool HaveTarget = false;
  unsigned WarmupRemaining = 0;
  unsigned Iter = 0;
  unsigned StepsDone = 0;
  bool Finished = false;
  std::string ResultTag;
};

/// Drives iterative reconstruction over a (mutable) module.
class ReconstructionDriver {
public:
  /// Generates one production input; the distribution should make the
  /// target failure reachable but need not make it frequent.
  using InputGenerator = ReconstructionSession::InputGenerator;

  ReconstructionDriver(Module &M, DriverConfig Config);

  /// Runs the full loop until a validated test case is produced or a limit
  /// is hit. By default the driver locks onto the first failure it
  /// observes; a fleet campaign instead passes \p TargetFailure (matched by
  /// FailureRecord::sameFailure) so occurrences of *other* bugs in the same
  /// workload are ignored rather than hijacking the campaign.
  ReconstructionReport reconstruct(const InputGenerator &Gen,
                                   const FailureRecord *TargetFailure = nullptr);

  /// The expression context shared across iterations (exposed for tests
  /// and benches).
  ExprContext &getContext() { return Ctx; }
  ConstraintSolver &getSolver() { return Solver; }

private:
  Module &M;
  DriverConfig Config;
  ExprContext Ctx;
  ConstraintSolver Solver;
};

} // namespace er

#endif // ER_ER_DRIVER_H
