//===- Instrumenter.h - ptwrite instrumentation pass -------------*- C++ -*-===//
///
/// \file
/// Applies a RecordingPlan to a module by inserting `ptwrite` instructions
/// immediately after the def site of each selected value — the moral
/// equivalent of the paper's 156-line LLVM pass that adds x86 `ptwrite`
/// instructions and triggers a redeployment.
///
//===----------------------------------------------------------------------===//

#ifndef ER_ER_INSTRUMENTER_H
#define ER_ER_INSTRUMENTER_H

#include "er/Selection.h"
#include "ir/IR.h"

#include <unordered_set>

namespace er {

/// Inserts ptwrite instrumentation for \p Plan into \p M (idempotent per
/// site) and re-finalizes the module (instruction ids are sticky, so
/// existing trace/failure identities remain valid). Returns the number of
/// newly inserted instrumentation points.
unsigned instrumentModule(Module &M, const RecordingPlan &Plan);

/// Counts ptwrite instructions currently in \p M.
unsigned countInstrumentation(const Module &M);

/// Global ids of instructions that already have a ptwrite attached.
std::unordered_set<unsigned> instrumentedSites(const Module &M);

} // namespace er

#endif // ER_ER_INSTRUMENTER_H
