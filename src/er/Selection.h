//===- Selection.h - Key data value selection --------------------*- C++ -*-===//
///
/// \file
/// ER's key contribution (Section 3.3): given the constraint graph of a
/// stalled shepherded execution, compute
///
///  1. the **bottleneck set** — every symbolic value read/written by the
///     operations of (a) the longest symbolic write chain and (b) the chain
///     updating the largest symbolic object (plus the expression whose
///     resolution stalled, when the stall preceded any chain activity); and
///  2. the **recording set** — a cheaper set of graph nodes from which every
///     bottleneck element can be inferred, found by a DFS over the graph
///     that replaces an element with descendants whenever that lowers the
///     total recording cost C = sum(sizeof(E_i) * Count(E_i)).
///
/// The recording set maps to concrete instrumentation sites: each element's
/// defining instruction gets a ptwrite.
///
//===----------------------------------------------------------------------===//

#ifndef ER_ER_SELECTION_H
#define ER_ER_SELECTION_H

#include "er/ConstraintGraph.h"
#include "solver/Expr.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace er {

class Rng;

/// One value chosen for recording.
struct RecordedValue {
  ExprRef E = nullptr;
  unsigned OriginInstr = 0; ///< Global id of the defining instruction.
  unsigned WidthBytes = 0;
  uint64_t DynCount = 0; ///< Times the def site executed in the trace.
  uint64_t Cost = 0;     ///< WidthBytes * DynCount.
};

/// The instrumentation plan for the next deployment.
struct RecordingPlan {
  std::vector<RecordedValue> Values;
  uint64_t totalCost() const {
    uint64_t C = 0;
    for (const auto &V : Values)
      C += V.Cost;
    return C;
  }
};

/// Computes bottleneck and recording sets over a constraint graph.
class KeyValueSelector {
public:
  /// \p AlreadyInstrumented lists instruction sites that carry a ptwrite
  /// from earlier iterations: recording them again gains nothing, so the
  /// cover search decomposes through them to upstream values.
  explicit KeyValueSelector(const ConstraintGraph &Graph,
                            std::unordered_set<unsigned> AlreadyInstrumented =
                                {});

  /// The bottleneck set (Section 3.3.2), before cost minimization.
  const std::vector<ExprRef> &bottleneckSet() const { return Bottleneck; }

  /// The cost-minimized recording set mapped to instrumentation sites.
  RecordingPlan computeRecordingSet() const;

  /// Ablation baseline: random graph nodes of (approximately) the same
  /// total recording cost as \p Reference.
  RecordingPlan randomRecordingSet(Rng &R, const RecordingPlan &Reference)
      const;

  /// Recording cost of one element (sizeof * dynamic def count);
  /// UINT64_MAX when the element has no recordable def site.
  uint64_t costOf(ExprRef E) const;

private:
  void computeBottleneck();

  const ConstraintGraph &Graph;
  std::unordered_set<unsigned> AlreadyInstrumented;
  std::vector<ExprRef> Bottleneck;
};

} // namespace er

#endif // ER_ER_SELECTION_H
