//===- Driver.cpp - Iterative execution reconstruction --------------------------===//

#include "er/Driver.h"

#include "er/ConstraintGraph.h"
#include "er/Instrumenter.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <chrono>
#include <thread>

using namespace er;

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//
//
// The driver is where the paper's iterate-until-reproduced loop lives, so
// it is where campaign progress becomes observable: every phase of an
// iteration gets a span (nested under the campaign span the fleet
// scheduler opens), and every outcome bumps a counter keyed by cause —
// the "why did this campaign stall" answer docs/OBSERVABILITY.md
// catalogs. All of it is write-only: results are bit-identical with
// metrics on or off.

namespace {
struct DriverMetrics {
  obs::Counter &Iterations, &Occurrences, &ProductionRuns;
  obs::Counter &Reproduced, &Stalls, &ValidationFailures;
  obs::Counter &StallWriteChain, &StallFinalSolve, &StallOther;
  obs::Counter &SelectionExhausted;
  obs::Histogram &SymexUs, &SelectionUs, &GraphNodes, &TraceBytes,
      &RunsUntilFailure;

  static DriverMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static DriverMetrics M{
        Reg.counter("er.iterations"),
        Reg.counter("er.occurrences"),
        Reg.counter("er.production_runs"),
        Reg.counter("er.reproduced"),
        Reg.counter("er.stalls"),
        Reg.counter("er.validation_failures"),
        Reg.counter("er.stall.cause.write_chain"),
        Reg.counter("er.stall.cause.final_solve"),
        Reg.counter("er.stall.cause.other"),
        Reg.counter("er.stall.cause.selection_exhausted"),
        Reg.histogram("er.iteration.symex_us", obs::exponentialBounds(64, 20, 2)),
        Reg.histogram("er.iteration.selection_us",
                      obs::exponentialBounds(16, 18, 2)),
        Reg.histogram("er.selection.graph_nodes",
                      obs::exponentialBounds(16, 16, 2)),
        Reg.histogram("er.trace.bytes", obs::exponentialBounds(256, 16, 4)),
        Reg.histogram("er.runs_until_failure",
                      obs::exponentialBounds(1, 16, 2))};
    return M;
  }

  /// Classifies a stall by what the snapshot implicates: a symbolic write
  /// chain (the paper's main case), the final input-generation solve, or
  /// neither.
  void countStallCause(const SymexSnapshot &Snap) {
    Stalls.inc();
    if (!Snap.Chains.empty())
      StallWriteChain.inc();
    else if (Snap.CulpritExpr || !Snap.CulpritExprs.empty())
      StallFinalSolve.inc();
    else
      StallOther.inc();
  }
};
} // namespace

/// Simulates the production-side wait for one reoccurrence (no-op unless
/// configured; sleeping keeps results bit-identical while letting a fleet
/// scheduler overlap many campaigns' waits).
static void waitForOccurrence(const DriverConfig &Config) {
  if (Config.OccurrenceLatencySeconds <= 0)
    return;
  // The paper's dominant online cost: waiting for the redeployed,
  // re-instrumented program to fail again in production.
  obs::ScopedSpan Span("er.redeploy_wait");
  std::this_thread::sleep_for(std::chrono::duration<double>(
      Config.OccurrenceLatencySeconds));
}

ReconstructionDriver::ReconstructionDriver(Module &M, DriverConfig Config)
    : M(M), Config(Config), Solver(Ctx, Config.Solver) {}

ReconstructionSession::ReconstructionSession(Module &M, DriverConfig Config,
                                             ExprContext &Ctx,
                                             ConstraintSolver &Solver,
                                             InputGenerator Gen,
                                             const FailureRecord *TargetFailure)
    : M(M), Config(std::move(Config)), Ctx(Ctx), Solver(Solver),
      Gen(std::move(Gen)), ProdRng(this->Config.Seed),
      WarmupRemaining(this->Config.EnableTracingAfterOccurrences) {
  if (TargetFailure) {
    Target = *TargetFailure;
    HaveTarget = true;
  }
}

bool ReconstructionSession::step() {
  if (Finished)
    return false;
  ++StepsDone;
  // Optional warm-up: tracing disabled until the failure shows it recurs
  // (Section 3.1). These occurrences are observed but not analyzed.
  if (WarmupRemaining > 0)
    return warmupStep();
  return iterationStep();
}

bool ReconstructionSession::warmupStep() {
  DriverMetrics &DM = DriverMetrics::get();
  bool Observed = false;
  for (uint64_t Run = 0; Run < Config.MaxRunsPerOccurrence; ++Run) {
    ProgramInput In = Gen(ProdRng);
    VmConfig VC = Config.Vm;
    VC.ScheduleSeed = ProdRng.next();
    Interpreter VM(M, VC);
    RunResult RR = VM.run(In);
    DM.ProductionRuns.inc();
    if (RR.Status != ExitStatus::Failure)
      continue;
    if (HaveTarget && !RR.Failure.sameFailure(Target))
      continue;
    Target = RR.Failure;
    HaveTarget = true;
    Observed = true;
    break;
  }
  if (!Observed) {
    Report.FailureDetail = "failure did not reoccur within the run budget";
    Finished = true;
    return false;
  }
  waitForOccurrence(Config);
  ++Report.Occurrences;
  DM.Occurrences.inc();
  Report.Failure = Target;
  --WarmupRemaining;
  return true;
}

bool ReconstructionSession::iterationStep() {
  DriverMetrics &DM = DriverMetrics::get();
  if (Iter >= Config.MaxIterations) {
    Report.FailureDetail = "iteration budget exhausted";
    ResultTag = "iteration_budget_exhausted";
    Finished = true;
    return false;
  }
  {
    IterationReport IR;
    IR.TotalInstrumentationSites = countInstrumentation(M);
    obs::ScopedSpan IterSpan("er.iteration");
    IterSpan.arg("iter", static_cast<uint64_t>(Iter));
    IterSpan.arg("sites", static_cast<uint64_t>(IR.TotalInstrumentationSites));
    DM.Iterations.inc();

    //===--- Online phase: wait for the failure to (re)occur --------------===
    TraceRecorder Rec(Config.Trace);
    RunResult FailingRun;
    uint64_t FailingSeed = 0;
    bool Observed = false;
    {
      obs::ScopedSpan WaitSpan("er.wait_reoccurrence");
      for (uint64_t Run = 0; Run < Config.MaxRunsPerOccurrence; ++Run) {
        ProgramInput In = Gen(ProdRng);
        VmConfig VC = Config.Vm;
        VC.ScheduleSeed = ProdRng.next();
        TraceRecorder RunRec(Config.Trace);
        Interpreter VM(M, VC);
        RunResult RR = VM.run(In, &RunRec);
        ++IR.RunsUntilFailure;
        DM.ProductionRuns.inc();
        if (RR.Status != ExitStatus::Failure)
          continue;
        if (HaveTarget && !RR.Failure.sameFailure(Target))
          continue; // A different bug; production keeps running.
        Target = RR.Failure;
        HaveTarget = true;
        FailingRun = RR;
        FailingSeed = VC.ScheduleSeed;
        Rec = std::move(RunRec);
        Observed = true;
        break;
      }
      WaitSpan.arg("runs", IR.RunsUntilFailure);
      WaitSpan.arg("observed", static_cast<uint64_t>(Observed));
    }
    DM.RunsUntilFailure.record(IR.RunsUntilFailure);
    if (!Observed) {
      Report.FailureDetail = "failure did not reoccur within the run budget";
      Report.Iterations.push_back(IR);
      Finished = true;
      return false;
    }

    waitForOccurrence(Config);
    ++Report.Occurrences;
    DM.Occurrences.inc();
    Report.Failure = Target;
    Report.FailingInstrCount = FailingRun.InstrCount;
    IR.FailingRunInstrs = FailingRun.InstrCount;
    IR.Trace = Rec.getStats();
    DM.TraceBytes.record(IR.Trace.BytesWritten);

    //===--- Offline phase: shepherded symbolic execution ------------------===
    // Tied chunk timestamps make the cross-thread order ambiguous; on a
    // reconstruction that fails validation (or desynchronizes), explore a
    // few alternative tie-break orders (Section 3.4) before waiting for
    // another occurrence.
    Stopwatch SymexTimer;
    DecodedTrace Decoded;
    {
      obs::ScopedSpan DecodeSpan("er.trace_decode");
      DecodeSpan.arg("bytes", IR.Trace.BytesWritten);
      Decoded = Rec.decode();
    }
    SymexResult SR;
    for (unsigned Retry = 0; Retry <= Config.MaxTieBreakRetries; ++Retry) {
      obs::ScopedSpan SymexSpan("er.symex");
      SymexSpan.arg("retry", static_cast<uint64_t>(Retry));
      SymexConfig SC = Config.Symex;
      SC.ChunkTieBreakSeed = Retry;
      ShepherdedExecutor SE(M, Ctx, Solver, SC);
      SR = SE.run(Decoded, Target);
      SymexSpan.arg("status", symexStatusName(SR.Status));
      SymexSpan.arg("solver_work", SR.SolverWork);
      if (SR.Status == SymexStatus::Reproduced) {
        obs::ScopedSpan ValidateSpan("er.validate");
        VmConfig VC = Config.Vm;
        VC.ScheduleSeed = FailingSeed;
        Interpreter Probe(M, VC);
        RunResult ProbeR = Probe.run(SR.GeneratedInput);
        if (ProbeR.Status == ExitStatus::Failure &&
            ProbeR.Failure.sameFailure(Target))
          break; // Validated.
        DM.ValidationFailures.inc();
        continue; // Wrong interleaving choice: try the next order.
      }
      if (SR.Status != SymexStatus::TraceMismatch)
        break; // Stall/truncation: tie-breaking will not help.
    }
    IR.SymexSeconds = SymexTimer.seconds();
    DM.SymexUs.record(static_cast<uint64_t>(IR.SymexSeconds * 1e6));
    IR.SymexInstrs = SR.InstrExecuted;
    IR.SymexWork = SR.SolverWork;
    IR.Status = SR.Status;
    IR.Detail = SR.Detail;
    Report.TotalSymexSeconds += IR.SymexSeconds;

    switch (SR.Status) {
    case SymexStatus::Reproduced: {
      // Validate the generated test case by concrete replay under the
      // failing run's schedule.
      obs::ScopedSpan ValidateSpan("er.validate");
      VmConfig VC = Config.Vm;
      VC.ScheduleSeed = FailingSeed;
      Interpreter Replay(M, VC);
      RunResult RepR = Replay.run(SR.GeneratedInput);
      if (RepR.Status == ExitStatus::Failure &&
          RepR.Failure.sameFailure(Target)) {
        Report.Success = true;
        Report.TestCase = SR.GeneratedInput;
        Report.ReplayScheduleSeed = FailingSeed;
        Report.Iterations.push_back(IR);
        DM.Reproduced.inc();
        ResultTag = "reproduced";
        Finished = true;
        return false;
      }
      // The generated input did not fail under the recorded schedule —
      // for concurrency bugs the input is usually right and the
      // *interleaving* wrong (Section 3.4's caveat). Search chunk orders
      // consistent with the trace's timestamp partial order, then fresh
      // seeds, before burning another occurrence.
      if (Config.SchedSearch.Enabled) {
        ScheduleSearchResult SSR =
            searchSchedules(M, Config.Vm, SR.GeneratedInput, Decoded, Target,
                            Config.SchedSearch, FailingSeed);
        if (SSR.Found) {
          Report.Success = true;
          Report.TestCase = SR.GeneratedInput;
          Report.ReplayScheduleSeed = SSR.Seed;
          Report.Sched.Used = true;
          Report.Sched.ExplicitOrder = SSR.ExplicitOrder;
          Report.Sched.Attempts = SSR.Attempts;
          Report.Sched.Seed = SSR.Seed;
          Report.Sched.Order = std::move(SSR.Order);
          IR.Detail = SSR.ExplicitOrder
                          ? "reproduced via schedule search (explicit order)"
                          : "reproduced via schedule search (seed sweep)";
          Report.Iterations.push_back(IR);
          DM.Reproduced.inc();
          ResultTag = "reproduced";
          Finished = true;
          return false;
        }
      }
      // Rare: the reconstruction picked an interleaving-inconsistent
      // ordering (Section 3.4's caveat). Use the next occurrence's trace.
      IR.Detail = "generated input failed validation; retrying with a "
                  "fresh trace";
      DM.ValidationFailures.inc();
      Report.Iterations.push_back(IR);
      ++Iter;
      return true;
    }

    case SymexStatus::Stalled: {
      DM.countStallCause(SR.Snapshot);
      Stopwatch SelTimer;
      RecordingPlan Plan;
      uint64_t NumGraphNodes = 0;
      {
        obs::ScopedSpan SelSpan("er.selection");
        ConstraintGraph Graph(SR.Snapshot);
        IR.GraphNodes = NumGraphNodes = Graph.numNodes();
        KeyValueSelector Selector(Graph, instrumentedSites(M));
        Plan = Selector.computeRecordingSet();
        if (Config.UseRandomSelection) {
          Rng SelRng(Config.Seed ^ 0x5eedf00d);
          Plan = Selector.randomRecordingSet(SelRng, Plan);
        }
        SelSpan.arg("graph_nodes", NumGraphNodes);
        SelSpan.arg("cost", Plan.totalCost());
      }
      IR.SelectionSeconds = SelTimer.seconds();
      DM.SelectionUs.record(static_cast<uint64_t>(IR.SelectionSeconds * 1e6));
      DM.GraphNodes.record(NumGraphNodes);
      IR.RecordingCost = Plan.totalCost();
      {
        obs::ScopedSpan InstrSpan("er.instrument");
        IR.NewRecordedValues = instrumentModule(M, Plan);
        InstrSpan.arg("new_values",
                      static_cast<uint64_t>(IR.NewRecordedValues));
      }
      IR.TotalInstrumentationSites = countInstrumentation(M);
      Report.Iterations.push_back(IR);
      if (IR.NewRecordedValues == 0 && !Config.UseRandomSelection) {
        // No new information can be gathered: reconstruction cannot make
        // progress (should not happen with key-value selection).
        Report.FailureDetail =
            "stalled with no new values to record: " + SR.Detail;
        DM.SelectionExhausted.inc();
        ResultTag = "selection_exhausted";
        Finished = true;
        return false;
      }
      ++Iter;
      return true;
    }

    case SymexStatus::TraceMismatch:
    case SymexStatus::TraceTruncated:
    case SymexStatus::Unsupported:
      Report.FailureDetail = formatString(
          "%s: %s", symexStatusName(SR.Status), SR.Detail.c_str());
      // Terminal non-stall outcomes, keyed by cause (rare: once per
      // campaign at most, so the by-name registry lookup is fine here).
      obs::MetricsRegistry::global()
          .counter(std::string("er.terminal.") + symexStatusName(SR.Status))
          .inc();
      ResultTag = symexStatusName(SR.Status);
      Finished = true;
      Report.Iterations.push_back(IR);
      return false;
    }
  }
  // Unreachable: every SymexStatus case above returns.
  ++Iter;
  return true;
}

ReconstructionReport
ReconstructionDriver::reconstruct(const InputGenerator &Gen,
                                  const FailureRecord *TargetFailure) {
  obs::ScopedSpan RecSpan("er.reconstruct");
  ReconstructionSession Session(M, Config, Ctx, Solver, Gen, TargetFailure);
  while (Session.step())
    ;
  ReconstructionReport Report = Session.takeReport();
  if (Report.Success)
    RecSpan.arg("occurrences", static_cast<uint64_t>(Report.Occurrences));
  if (!Session.resultTag().empty())
    RecSpan.arg("result", Session.resultTag());
  return Report;
}
