//===- Driver.cpp - Iterative execution reconstruction --------------------------===//

#include "er/Driver.h"

#include "er/ConstraintGraph.h"
#include "er/Instrumenter.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <chrono>
#include <thread>

using namespace er;

/// Simulates the production-side wait for one reoccurrence (no-op unless
/// configured; sleeping keeps results bit-identical while letting a fleet
/// scheduler overlap many campaigns' waits).
static void waitForOccurrence(const DriverConfig &Config) {
  if (Config.OccurrenceLatencySeconds <= 0)
    return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      Config.OccurrenceLatencySeconds));
}

ReconstructionDriver::ReconstructionDriver(Module &M, DriverConfig Config)
    : M(M), Config(Config), Solver(Ctx, Config.Solver) {}

ReconstructionReport
ReconstructionDriver::reconstruct(const InputGenerator &Gen,
                                  const FailureRecord *TargetFailure) {
  ReconstructionReport Report;
  Rng ProdRng(Config.Seed);
  bool HaveTarget = TargetFailure != nullptr;
  FailureRecord Target;
  if (TargetFailure)
    Target = *TargetFailure;

  // Optional warm-up: tracing disabled until the failure shows it recurs
  // (Section 3.1). These occurrences are observed but not analyzed.
  for (unsigned Skip = 0; Skip < Config.EnableTracingAfterOccurrences;
       ++Skip) {
    bool Observed = false;
    for (uint64_t Run = 0; Run < Config.MaxRunsPerOccurrence; ++Run) {
      ProgramInput In = Gen(ProdRng);
      VmConfig VC = Config.Vm;
      VC.ScheduleSeed = ProdRng.next();
      Interpreter VM(M, VC);
      RunResult RR = VM.run(In);
      if (RR.Status != ExitStatus::Failure)
        continue;
      if (HaveTarget && !RR.Failure.sameFailure(Target))
        continue;
      Target = RR.Failure;
      HaveTarget = true;
      Observed = true;
      break;
    }
    if (!Observed) {
      Report.FailureDetail = "failure did not reoccur within the run budget";
      return Report;
    }
    waitForOccurrence(Config);
    ++Report.Occurrences;
    Report.Failure = Target;
  }

  for (unsigned Iter = 0; Iter < Config.MaxIterations; ++Iter) {
    IterationReport IR;
    IR.TotalInstrumentationSites = countInstrumentation(M);

    //===--- Online phase: wait for the failure to (re)occur --------------===
    TraceRecorder Rec(Config.Trace);
    RunResult FailingRun;
    uint64_t FailingSeed = 0;
    bool Observed = false;
    for (uint64_t Run = 0; Run < Config.MaxRunsPerOccurrence; ++Run) {
      ProgramInput In = Gen(ProdRng);
      VmConfig VC = Config.Vm;
      VC.ScheduleSeed = ProdRng.next();
      TraceRecorder RunRec(Config.Trace);
      Interpreter VM(M, VC);
      RunResult RR = VM.run(In, &RunRec);
      ++IR.RunsUntilFailure;
      if (RR.Status != ExitStatus::Failure)
        continue;
      if (HaveTarget && !RR.Failure.sameFailure(Target))
        continue; // A different bug; production keeps running.
      Target = RR.Failure;
      HaveTarget = true;
      FailingRun = RR;
      FailingSeed = VC.ScheduleSeed;
      Rec = std::move(RunRec);
      Observed = true;
      break;
    }
    if (!Observed) {
      Report.FailureDetail = "failure did not reoccur within the run budget";
      Report.Iterations.push_back(IR);
      return Report;
    }

    waitForOccurrence(Config);
    ++Report.Occurrences;
    Report.Failure = Target;
    Report.FailingInstrCount = FailingRun.InstrCount;
    IR.FailingRunInstrs = FailingRun.InstrCount;
    IR.Trace = Rec.getStats();

    //===--- Offline phase: shepherded symbolic execution ------------------===
    // Tied chunk timestamps make the cross-thread order ambiguous; on a
    // reconstruction that fails validation (or desynchronizes), explore a
    // few alternative tie-break orders (Section 3.4) before waiting for
    // another occurrence.
    Stopwatch SymexTimer;
    DecodedTrace Decoded = Rec.decode();
    SymexResult SR;
    for (unsigned Retry = 0; Retry <= Config.MaxTieBreakRetries; ++Retry) {
      SymexConfig SC = Config.Symex;
      SC.ChunkTieBreakSeed = Retry;
      ShepherdedExecutor SE(M, Ctx, Solver, SC);
      SR = SE.run(Decoded, Target);
      if (SR.Status == SymexStatus::Reproduced) {
        VmConfig VC = Config.Vm;
        VC.ScheduleSeed = FailingSeed;
        Interpreter Probe(M, VC);
        RunResult ProbeR = Probe.run(SR.GeneratedInput);
        if (ProbeR.Status == ExitStatus::Failure &&
            ProbeR.Failure.sameFailure(Target))
          break; // Validated.
        continue; // Wrong interleaving choice: try the next order.
      }
      if (SR.Status != SymexStatus::TraceMismatch)
        break; // Stall/truncation: tie-breaking will not help.
    }
    IR.SymexSeconds = SymexTimer.seconds();
    IR.SymexInstrs = SR.InstrExecuted;
    IR.SymexWork = SR.SolverWork;
    IR.Status = SR.Status;
    IR.Detail = SR.Detail;
    Report.TotalSymexSeconds += IR.SymexSeconds;

    switch (SR.Status) {
    case SymexStatus::Reproduced: {
      // Validate the generated test case by concrete replay under the
      // failing run's schedule.
      VmConfig VC = Config.Vm;
      VC.ScheduleSeed = FailingSeed;
      Interpreter Replay(M, VC);
      RunResult RepR = Replay.run(SR.GeneratedInput);
      if (RepR.Status == ExitStatus::Failure &&
          RepR.Failure.sameFailure(Target)) {
        Report.Success = true;
        Report.TestCase = SR.GeneratedInput;
        Report.ReplayScheduleSeed = FailingSeed;
        Report.Iterations.push_back(IR);
        return Report;
      }
      // Rare: the reconstruction picked an interleaving-inconsistent
      // ordering (Section 3.4's caveat). Use the next occurrence's trace.
      IR.Detail = "generated input failed validation; retrying with a "
                  "fresh trace";
      Report.Iterations.push_back(IR);
      continue;
    }

    case SymexStatus::Stalled: {
      Stopwatch SelTimer;
      ConstraintGraph Graph(SR.Snapshot);
      IR.GraphNodes = Graph.numNodes();
      KeyValueSelector Selector(Graph, instrumentedSites(M));
      RecordingPlan Plan = Selector.computeRecordingSet();
      if (Config.UseRandomSelection) {
        Rng SelRng(Config.Seed ^ 0x5eedf00d);
        Plan = Selector.randomRecordingSet(SelRng, Plan);
      }
      IR.SelectionSeconds = SelTimer.seconds();
      IR.RecordingCost = Plan.totalCost();
      IR.NewRecordedValues = instrumentModule(M, Plan);
      IR.TotalInstrumentationSites = countInstrumentation(M);
      Report.Iterations.push_back(IR);
      if (IR.NewRecordedValues == 0 && !Config.UseRandomSelection) {
        // No new information can be gathered: reconstruction cannot make
        // progress (should not happen with key-value selection).
        Report.FailureDetail =
            "stalled with no new values to record: " + SR.Detail;
        return Report;
      }
      continue;
    }

    case SymexStatus::TraceMismatch:
    case SymexStatus::TraceTruncated:
    case SymexStatus::Unsupported:
      Report.FailureDetail = formatString(
          "%s: %s", symexStatusName(SR.Status), SR.Detail.c_str());
      Report.Iterations.push_back(IR);
      return Report;
    }
  }

  Report.FailureDetail = "iteration budget exhausted";
  return Report;
}
