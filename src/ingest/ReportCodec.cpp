//===- ReportCodec.cpp - Failure-report wire format -------------------------===//

#include "ingest/ReportCodec.h"

#include <array>
#include <cstring>

using namespace er;

static const uint8_t SpoolMagic[8] = {'E', 'R', 'S', 'P', 'O', 'O', 'L', '\n'};

/// Sanity bounds: no legitimate report approaches these; a length field
/// beyond them is corruption, and rejecting early keeps a flipped length
/// byte from turning into a giant allocation.
static constexpr uint32_t MaxPayloadBytes = 1u << 20;
static constexpr uint32_t MaxStackDepth = 1u << 16;

const char *er::decodeStatusName(DecodeStatus S) {
  switch (S) {
  case DecodeStatus::Ok:          return "ok";
  case DecodeStatus::Truncated:   return "truncated";
  case DecodeStatus::BadMagic:    return "bad-magic";
  case DecodeStatus::BadVersion:  return "bad-version";
  case DecodeStatus::BadChecksum: return "bad-checksum";
  case DecodeStatus::Malformed:   return "malformed";
  }
  return "unknown";
}

uint32_t er::crc32(const uint8_t *Data, size_t Len) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

static void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

static void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

namespace {
/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Size)
      return false;
    V = Data[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > Size)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > Size)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return true;
  }
  /// String prefixed by a u32 byte count.
  bool str(std::string &S) {
    uint32_t N = 0;
    if (!u32(N) || N > Size - Pos)
      return false;
    S.assign(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return true;
  }

  size_t pos() const { return Pos; }
  bool exhausted() const { return Pos == Size; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};
} // namespace

//===----------------------------------------------------------------------===//
// Header
//===----------------------------------------------------------------------===//

void er::encodeSpoolHeader(std::vector<uint8_t> &Out) {
  Out.insert(Out.end(), SpoolMagic, SpoolMagic + sizeof(SpoolMagic));
  putU32(Out, SpoolWireVersion);
}

DecodeStatus er::decodeSpoolHeader(const uint8_t *Data, size_t Size,
                                   size_t &Offset, uint32_t &Version) {
  if (Size - Offset < sizeof(SpoolMagic) + 4)
    return DecodeStatus::Truncated;
  if (std::memcmp(Data + Offset, SpoolMagic, sizeof(SpoolMagic)) != 0)
    return DecodeStatus::BadMagic;
  ByteReader R(Data + Offset + sizeof(SpoolMagic), 4);
  R.u32(Version);
  if (Version != SpoolWireVersion)
    return DecodeStatus::BadVersion;
  Offset += sizeof(SpoolMagic) + 4;
  return DecodeStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Records
//===----------------------------------------------------------------------===//

void er::encodeReport(const FleetFailureReport &R, std::vector<uint8_t> &Out) {
  std::vector<uint8_t> Payload;
  putU64(Payload, R.MachineId);
  putU64(Payload, R.Sequence);
  putU32(Payload, static_cast<uint32_t>(R.BugId.size()));
  Payload.insert(Payload.end(), R.BugId.begin(), R.BugId.end());
  Payload.push_back(static_cast<uint8_t>(R.Failure.Kind));
  putU32(Payload, R.Failure.InstrGlobalId);
  putU32(Payload, R.Failure.Tid);
  putU32(Payload, static_cast<uint32_t>(R.Failure.CallStack.size()));
  for (unsigned Site : R.Failure.CallStack)
    putU32(Payload, Site);
  putU32(Payload, static_cast<uint32_t>(R.Failure.Message.size()));
  Payload.insert(Payload.end(), R.Failure.Message.begin(),
                 R.Failure.Message.end());

  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

DecodeStatus er::decodeReport(const uint8_t *Data, size_t Size, size_t &Offset,
                              FleetFailureReport &Out) {
  if (Size - Offset < 8)
    return DecodeStatus::Truncated;
  ByteReader Prefix(Data + Offset, 8);
  uint32_t Len = 0, Crc = 0;
  Prefix.u32(Len);
  Prefix.u32(Crc);
  if (Len > MaxPayloadBytes)
    return DecodeStatus::Malformed;
  if (Size - Offset - 8 < Len)
    return DecodeStatus::Truncated;

  const uint8_t *Payload = Data + Offset + 8;
  if (crc32(Payload, Len) != Crc)
    return DecodeStatus::BadChecksum;

  ByteReader R(Payload, Len);
  FleetFailureReport Rep;
  uint8_t Kind = 0;
  uint32_t Instr = 0, Tid = 0, StackLen = 0;
  if (!R.u64(Rep.MachineId) || !R.u64(Rep.Sequence) || !R.str(Rep.BugId) ||
      !R.u8(Kind) || !R.u32(Instr) || !R.u32(Tid) || !R.u32(StackLen))
    return DecodeStatus::Malformed;
  if (Kind > static_cast<uint8_t>(FailureKind::InputUnderrun) ||
      StackLen > MaxStackDepth)
    return DecodeStatus::Malformed;
  Rep.Failure.Kind = static_cast<FailureKind>(Kind);
  Rep.Failure.InstrGlobalId = Instr;
  Rep.Failure.Tid = Tid;
  Rep.Failure.CallStack.reserve(StackLen);
  for (uint32_t I = 0; I < StackLen; ++I) {
    uint32_t Site = 0;
    if (!R.u32(Site))
      return DecodeStatus::Malformed;
    Rep.Failure.CallStack.push_back(Site);
  }
  if (!R.str(Rep.Failure.Message) || !R.exhausted())
    return DecodeStatus::Malformed;

  Out = std::move(Rep);
  Offset += 8 + Len;
  return DecodeStatus::Ok;
}
