//===- ReportCollector.cpp - Hardened spool drain ---------------------------===//

#include "ingest/ReportCollector.h"

#include "fleet/FailureSignature.h"
#include "ingest/ReportCodec.h"
#include "ingest/ReportSpool.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>
#include <vector>

using namespace er;

ReportCollector::ReportCollector(CollectorConfig Config)
    : Config(std::move(Config)) {}

FsOps &ReportCollector::fs() const {
  return Config.Fs ? *Config.Fs : FsOps::real();
}

std::string ReportCollector::quarantineDir() const {
  return Config.SpoolDir + "/quarantine";
}

//===----------------------------------------------------------------------===//
// High-water mark persistence
//===----------------------------------------------------------------------===//
//
// `spool/highwater` is a tiny text file, one `m<machine> <maxseq>` line per
// machine, written via temp + atomic rename like everything else in the
// spool. It is the collector's own state, so unlike spool files a corrupt
// copy is a hard error (silently restarting from zero would double-count
// every report ever consumed).

static const char *HighWaterMagic = "er-highwater v1";

bool ReportCollector::loadHighWater(std::string *Error) {
  if (HighWaterLoaded)
    return true;
  HighWaterLoaded = true;
  std::string Path = Config.SpoolDir + "/highwater";
  std::vector<uint8_t> Bytes;
  if (fs().readFile(Path, Bytes) != FsStatus::Ok)
    return true; // First drain on this spool.
  std::string Text(Bytes.begin(), Bytes.end());
  size_t Pos = 0;
  bool SawMagic = false;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, End == std::string::npos ? std::string::npos : End - Pos);
    if (!SawMagic) {
      if (Line != HighWaterMagic) {
        if (Error)
          *Error = "corrupt high-water file '" + Path + "': bad magic";
        return false;
      }
      SawMagic = true;
    } else if (!Line.empty()) {
      unsigned long long Machine = 0, Seq = 0;
      if (std::sscanf(Line.c_str(), "m%llx %llu", &Machine, &Seq) != 2) {
        if (Error)
          *Error = "corrupt high-water file '" + Path + "': '" + Line + "'";
        return false;
      }
      HighWater[Machine] = std::max<uint64_t>(HighWater[Machine], Seq);
    }
    if (End == std::string::npos)
      break;
    Pos = End + 1;
  }
  return true;
}

void ReportCollector::setHighWater(std::map<uint64_t, uint64_t> Marks) {
  HighWater = std::move(Marks);
  HighWaterLoaded = true;
}

bool ReportCollector::saveHighWater(std::string *Error) const {
  std::string Path = Config.SpoolDir + "/highwater";
  std::string Tmp = Config.SpoolDir + "/highwater.tmp";
  std::string Text = std::string(HighWaterMagic) + "\n";
  char Buf[64];
  for (const auto &[Machine, Seq] : HighWater) {
    std::snprintf(Buf, sizeof(Buf), "m%llx %llu\n", (unsigned long long)Machine,
                  (unsigned long long)Seq);
    Text += Buf;
  }
  if (fs().writeFile(Tmp, Text, Error) != FsStatus::Ok) {
    fs().remove(Tmp);
    return false;
  }
  if (fs().rename(Tmp, Path, Error) != FsStatus::Ok) {
    fs().remove(Tmp);
    return false;
  }
  return true;
}

size_t ReportCollector::ackDrained() {
  size_t Acked = PendingAck.size();
  if (Config.RemoveDrained)
    for (const std::string &Path : PendingAck)
      fs().remove(Path);
  PendingAck.clear();
  return Acked;
}

size_t ReportCollector::recoverClaimedFiles() {
  static const char Suffix[] = ".ers.claimed";
  const size_t SuffixLen = sizeof(Suffix) - 1;
  size_t Recovered = 0;
  for (const std::string &Name : fs().listDir(Config.SpoolDir)) {
    if (Name.size() <= SuffixLen ||
        Name.compare(Name.size() - SuffixLen, SuffixLen, Suffix) != 0)
      continue;
    std::string Unclaimed = Name.substr(0, Name.size() - strlen(".claimed"));
    if (fs().rename(Config.SpoolDir + "/" + Name,
                    Config.SpoolDir + "/" + Unclaimed) == FsStatus::Ok)
      ++Recovered;
  }
  return Recovered;
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

namespace {
/// Total order on reports: delivery identity first, then failure identity
/// as a tie-break so conflicting records under one (machine, seq) dedup
/// deterministically regardless of arrival order.
bool reportLess(const FleetFailureReport &A, const FleetFailureReport &B) {
  auto KeyA = std::tie(A.MachineId, A.Sequence, A.BugId, A.Failure.Kind,
                       A.Failure.InstrGlobalId, A.Failure.CallStack,
                       A.Failure.Tid, A.Failure.Message);
  auto KeyB = std::tie(B.MachineId, B.Sequence, B.BugId, B.Failure.Kind,
                       B.Failure.InstrGlobalId, B.Failure.CallStack,
                       B.Failure.Tid, B.Failure.Message);
  return KeyA < KeyB;
}

/// Decodes one whole spool file; any defect poisons the entire file
/// (partial credit from a torn file would skew occurrence counts).
DecodeStatus decodeSpoolFile(const std::vector<uint8_t> &Bytes,
                             std::vector<FleetFailureReport> &Out) {
  size_t Offset = 0;
  uint32_t Version = 0;
  DecodeStatus S =
      decodeSpoolHeader(Bytes.data(), Bytes.size(), Offset, Version);
  if (S != DecodeStatus::Ok)
    return S;
  while (Offset < Bytes.size()) {
    FleetFailureReport R;
    S = decodeReport(Bytes.data(), Bytes.size(), Offset, R);
    if (S != DecodeStatus::Ok)
      return S;
    Out.push_back(std::move(R));
  }
  return DecodeStatus::Ok;
}
} // namespace

namespace {
/// Bridges the bespoke CollectorStats struct (kept for API compatibility —
/// er_cli and tests consume it directly) into the metrics registry. Each
/// drain mirrors its per-drain delta so registry counters stay monotonic
/// even across multiple collector instances in one process.
struct IngestMetrics {
  obs::Counter &FilesScanned, &FilesClaimed, &FilesQuarantined, &StaleTemps;
  obs::Counter &RecordsDecoded, &DuplicatesDropped, &BackpressureDropped;
  obs::Counter &BucketsShed, &Submitted, &ClaimRetries, &ClaimFailures;

  static IngestMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static IngestMetrics M{Reg.counter("ingest.files.scanned"),
                           Reg.counter("ingest.files.claimed"),
                           Reg.counter("ingest.files.quarantined"),
                           Reg.counter("ingest.files.stale_temps"),
                           Reg.counter("ingest.records.decoded"),
                           Reg.counter("ingest.records.duplicates"),
                           Reg.counter("ingest.records.shed"),
                           Reg.counter("ingest.buckets.shed"),
                           Reg.counter("ingest.records.submitted"),
                           Reg.counter("ingest.claim.retries"),
                           Reg.counter("ingest.claim.failures")};
    return M;
  }

  void recordDelta(const CollectorStats &Before, const CollectorStats &After) {
    FilesScanned.add(After.FilesScanned - Before.FilesScanned);
    FilesClaimed.add(After.FilesClaimed - Before.FilesClaimed);
    FilesQuarantined.add(After.FilesQuarantined - Before.FilesQuarantined);
    StaleTemps.add(After.StaleTemps - Before.StaleTemps);
    RecordsDecoded.add(After.RecordsDecoded - Before.RecordsDecoded);
    DuplicatesDropped.add(After.DuplicatesDropped - Before.DuplicatesDropped);
    BackpressureDropped.add(After.BackpressureDropped -
                            Before.BackpressureDropped);
    BucketsShed.add(After.BucketsShed - Before.BucketsShed);
    Submitted.add(After.Submitted - Before.Submitted);
    ClaimRetries.add(After.ClaimRetries - Before.ClaimRetries);
    ClaimFailures.add(After.ClaimFailures - Before.ClaimFailures);
  }
};
} // namespace

bool ReportCollector::drainInto(FleetScheduler &Sched, std::string *Error) {
  obs::ScopedSpan Span("ingest.drain", "ingest");
  const CollectorStats Before = Stats;
  if (!fs().createDirectories(quarantineDir())) {
    if (Error)
      *Error = "cannot prepare '" + quarantineDir() + "'";
    return false;
  }
  if (!loadHighWater(Error))
    return false;

  uint64_t Temps = 0;
  std::vector<std::string> Names =
      listSpoolFiles(Config.SpoolDir, &Temps, Config.Fs);
  Stats.StaleTemps += Temps;
  Stats.FilesScanned += Names.size();

  std::vector<FleetFailureReport> Batch;
  for (const std::string &Name : Names) {
    ClaimOutcome Claim = claimSpoolFileWithRetry(Config.SpoolDir, Name,
                                                 Config.ClaimRetries,
                                                 Config.Fs);
    Stats.ClaimRetries += Claim.Retries;
    if (Claim.ClaimedPath.empty()) {
      // Either another collector got it (benign), or every attempt hit a
      // transient fault — then the file is still published and the next
      // drain retries it; it is never silently dropped.
      if (Claim.TransientFailure)
        ++Stats.ClaimFailures;
      continue;
    }
    const std::string &Claimed = Claim.ClaimedPath;
    ++Stats.FilesClaimed;

    std::vector<uint8_t> Bytes;
    bool ReadOk = fs().readFile(Claimed, Bytes) == FsStatus::Ok;

    std::vector<FleetFailureReport> FileReports;
    DecodeStatus S = ReadOk ? decodeSpoolFile(Bytes, FileReports)
                            : DecodeStatus::Truncated;
    if (S != DecodeStatus::Ok) {
      // Quarantine under the original name; never let a suspect file
      // take the drain down or count partially.
      if (fs().rename(Claimed, quarantineDir() + "/" + Name) != FsStatus::Ok)
        fs().remove(Claimed); // Worst case: drop, still no crash.
      ++Stats.FilesQuarantined;
      continue;
    }

    Stats.RecordsDecoded += FileReports.size();
    for (FleetFailureReport &R : FileReports)
      Batch.push_back(std::move(R));
    if (Config.DeferRemoval)
      PendingAck.push_back(Claimed);
    else if (Config.RemoveDrained)
      fs().remove(Claimed);
  }

  // Normalize: (machine, sequence) order makes everything downstream —
  // dedup, shedding, submission — independent of file arrival order.
  std::sort(Batch.begin(), Batch.end(), reportLess);

  std::vector<FleetFailureReport> Kept;
  Kept.reserve(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    const FleetFailureReport &R = Batch[I];
    auto HW = HighWater.find(R.MachineId);
    bool Consumed = HW != HighWater.end() && R.Sequence <= HW->second &&
                    R.Sequence != 0;
    bool InBatchDup = I > 0 && Batch[I - 1].MachineId == R.MachineId &&
                      Batch[I - 1].Sequence == R.Sequence && R.Sequence != 0;
    if (Consumed || InBatchDup) {
      ++Stats.DuplicatesDropped;
      continue;
    }
    Kept.push_back(R);
  }

  // The high-water mark advances over everything this drain claimed —
  // including reports shed below — because their files are gone; a
  // redrain must not resurrect them.
  for (const FleetFailureReport &R : Batch)
    if (R.Sequence != 0)
      HighWater[R.MachineId] =
          std::max(HighWater[R.MachineId], R.Sequence);

  // Backpressure: shed from the coldest failure buckets first, so a
  // flood of some one-off failure cannot crowd out the hot buckets the
  // triage queue exists to prioritize.
  if (Config.MaxPending && Kept.size() > Config.MaxPending) {
    struct Bucket {
      uint64_t Count = 0;
      uint64_t Digest = 0;
      std::string BugId;
      std::vector<size_t> Indices; ///< Into Kept, ascending.
    };
    std::map<std::pair<uint64_t, std::string>, Bucket> Buckets;
    for (size_t I = 0; I < Kept.size(); ++I) {
      FailureSignature Sig = FailureSignature::of(Kept[I].Failure);
      Bucket &B = Buckets[{Sig.Digest, Kept[I].BugId}];
      B.Digest = Sig.Digest;
      B.BugId = Kept[I].BugId;
      ++B.Count;
      B.Indices.push_back(I);
    }
    std::vector<const Bucket *> Order;
    Order.reserve(Buckets.size());
    for (const auto &[Key, B] : Buckets)
      Order.push_back(&B);
    std::sort(Order.begin(), Order.end(),
              [](const Bucket *A, const Bucket *B) {
                if (A->Count != B->Count)
                  return A->Count < B->Count; // Coldest first.
                if (A->Digest != B->Digest)
                  return A->Digest < B->Digest;
                return A->BugId < B->BugId;
              });
    size_t Excess = Kept.size() - Config.MaxPending;
    std::vector<bool> Drop(Kept.size(), false);
    for (const Bucket *B : Order) {
      if (!Excess)
        break;
      // Shed the bucket's latest deliveries first.
      bool Shed = false;
      for (auto It = B->Indices.rbegin();
           It != B->Indices.rend() && Excess; ++It) {
        Drop[*It] = true;
        Shed = true;
        --Excess;
        ++Stats.BackpressureDropped;
      }
      if (Shed)
        ++Stats.BucketsShed;
    }
    std::vector<FleetFailureReport> Surviving;
    Surviving.reserve(Config.MaxPending);
    for (size_t I = 0; I < Kept.size(); ++I)
      if (!Drop[I])
        Surviving.push_back(std::move(Kept[I]));
    Kept = std::move(Surviving);
  }

  for (const FleetFailureReport &R : Kept)
    Sched.submit(R);
  Stats.Submitted += Kept.size();

  IngestMetrics::get().recordDelta(Before, Stats);
  Span.arg("files", Stats.FilesScanned - Before.FilesScanned);
  Span.arg("submitted", Stats.Submitted - Before.Submitted);
  Span.arg("quarantined", Stats.FilesQuarantined - Before.FilesQuarantined);
  return Config.PersistHighWater ? saveHighWater(Error) : true;
}
