//===- ReportCollector.cpp - Hardened spool drain ---------------------------===//

#include "ingest/ReportCollector.h"

#include "fleet/FailureSignature.h"
#include "ingest/ReportCodec.h"
#include "ingest/ReportSpool.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

ReportCollector::ReportCollector(CollectorConfig Config)
    : Config(std::move(Config)) {}

std::string ReportCollector::quarantineDir() const {
  return (fs::path(Config.SpoolDir) / "quarantine").string();
}

//===----------------------------------------------------------------------===//
// High-water mark persistence
//===----------------------------------------------------------------------===//
//
// `spool/highwater` is a tiny text file, one `m<machine> <maxseq>` line per
// machine, written via temp + atomic rename like everything else in the
// spool. It is the collector's own state, so unlike spool files a corrupt
// copy is a hard error (silently restarting from zero would double-count
// every report ever consumed).

static const char *HighWaterMagic = "er-highwater v1";

bool ReportCollector::loadHighWater(std::string *Error) {
  if (HighWaterLoaded)
    return true;
  HighWaterLoaded = true;
  fs::path Path = fs::path(Config.SpoolDir) / "highwater";
  std::ifstream IS(Path);
  if (!IS)
    return true; // First drain on this spool.
  std::string Line;
  if (!std::getline(IS, Line) || Line != HighWaterMagic) {
    if (Error)
      *Error = "corrupt high-water file '" + Path.string() + "': bad magic";
    return false;
  }
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Machine = 0, Seq = 0;
    if (std::sscanf(Line.c_str(), "m%llx %llu", &Machine, &Seq) != 2) {
      if (Error)
        *Error = "corrupt high-water file '" + Path.string() + "': '" +
                 Line + "'";
      return false;
    }
    HighWater[Machine] = std::max<uint64_t>(HighWater[Machine], Seq);
  }
  return true;
}

bool ReportCollector::saveHighWater(std::string *Error) const {
  fs::path Path = fs::path(Config.SpoolDir) / "highwater";
  fs::path Tmp = fs::path(Config.SpoolDir) / "highwater.tmp";
  {
    std::ofstream OS(Tmp, std::ios::trunc);
    if (!OS) {
      if (Error)
        *Error = "cannot write '" + Tmp.string() + "'";
      return false;
    }
    OS << HighWaterMagic << '\n';
    char Buf[64];
    for (const auto &[Machine, Seq] : HighWater) {
      std::snprintf(Buf, sizeof(Buf), "m%llx %llu",
                    (unsigned long long)Machine, (unsigned long long)Seq);
      OS << Buf << '\n';
    }
    if (!OS) {
      if (Error)
        *Error = "write to '" + Tmp.string() + "' failed";
      return false;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot publish '" + Path.string() + "': " + EC.message();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

namespace {
/// Total order on reports: delivery identity first, then failure identity
/// as a tie-break so conflicting records under one (machine, seq) dedup
/// deterministically regardless of arrival order.
bool reportLess(const FleetFailureReport &A, const FleetFailureReport &B) {
  auto KeyA = std::tie(A.MachineId, A.Sequence, A.BugId, A.Failure.Kind,
                       A.Failure.InstrGlobalId, A.Failure.CallStack,
                       A.Failure.Tid, A.Failure.Message);
  auto KeyB = std::tie(B.MachineId, B.Sequence, B.BugId, B.Failure.Kind,
                       B.Failure.InstrGlobalId, B.Failure.CallStack,
                       B.Failure.Tid, B.Failure.Message);
  return KeyA < KeyB;
}

/// Decodes one whole spool file; any defect poisons the entire file
/// (partial credit from a torn file would skew occurrence counts).
DecodeStatus decodeSpoolFile(const std::vector<uint8_t> &Bytes,
                             std::vector<FleetFailureReport> &Out) {
  size_t Offset = 0;
  uint32_t Version = 0;
  DecodeStatus S =
      decodeSpoolHeader(Bytes.data(), Bytes.size(), Offset, Version);
  if (S != DecodeStatus::Ok)
    return S;
  while (Offset < Bytes.size()) {
    FleetFailureReport R;
    S = decodeReport(Bytes.data(), Bytes.size(), Offset, R);
    if (S != DecodeStatus::Ok)
      return S;
    Out.push_back(std::move(R));
  }
  return DecodeStatus::Ok;
}
} // namespace

namespace {
/// Bridges the bespoke CollectorStats struct (kept for API compatibility —
/// er_cli and tests consume it directly) into the metrics registry. Each
/// drain mirrors its per-drain delta so registry counters stay monotonic
/// even across multiple collector instances in one process.
struct IngestMetrics {
  obs::Counter &FilesScanned, &FilesClaimed, &FilesQuarantined, &StaleTemps;
  obs::Counter &RecordsDecoded, &DuplicatesDropped, &BackpressureDropped;
  obs::Counter &BucketsShed, &Submitted;

  static IngestMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static IngestMetrics M{Reg.counter("ingest.files.scanned"),
                           Reg.counter("ingest.files.claimed"),
                           Reg.counter("ingest.files.quarantined"),
                           Reg.counter("ingest.files.stale_temps"),
                           Reg.counter("ingest.records.decoded"),
                           Reg.counter("ingest.records.duplicates"),
                           Reg.counter("ingest.records.shed"),
                           Reg.counter("ingest.buckets.shed"),
                           Reg.counter("ingest.records.submitted")};
    return M;
  }

  void recordDelta(const CollectorStats &Before, const CollectorStats &After) {
    FilesScanned.add(After.FilesScanned - Before.FilesScanned);
    FilesClaimed.add(After.FilesClaimed - Before.FilesClaimed);
    FilesQuarantined.add(After.FilesQuarantined - Before.FilesQuarantined);
    StaleTemps.add(After.StaleTemps - Before.StaleTemps);
    RecordsDecoded.add(After.RecordsDecoded - Before.RecordsDecoded);
    DuplicatesDropped.add(After.DuplicatesDropped - Before.DuplicatesDropped);
    BackpressureDropped.add(After.BackpressureDropped -
                            Before.BackpressureDropped);
    BucketsShed.add(After.BucketsShed - Before.BucketsShed);
    Submitted.add(After.Submitted - Before.Submitted);
  }
};
} // namespace

bool ReportCollector::drainInto(FleetScheduler &Sched, std::string *Error) {
  obs::ScopedSpan Span("ingest.drain", "ingest");
  const CollectorStats Before = Stats;
  std::error_code EC;
  fs::create_directories(quarantineDir(), EC);
  if (EC) {
    if (Error)
      *Error = "cannot prepare '" + quarantineDir() + "': " + EC.message();
    return false;
  }
  if (!loadHighWater(Error))
    return false;

  uint64_t Temps = 0;
  std::vector<std::string> Names = listSpoolFiles(Config.SpoolDir, &Temps);
  Stats.StaleTemps += Temps;
  Stats.FilesScanned += Names.size();

  std::vector<FleetFailureReport> Batch;
  for (const std::string &Name : Names) {
    std::string Claimed = claimSpoolFile(Config.SpoolDir, Name);
    if (Claimed.empty())
      continue; // Another collector got it.
    ++Stats.FilesClaimed;

    std::vector<uint8_t> Bytes;
    bool ReadOk = false;
    {
      std::ifstream IS(Claimed, std::ios::binary);
      if (IS) {
        Bytes.assign(std::istreambuf_iterator<char>(IS),
                     std::istreambuf_iterator<char>());
        ReadOk = !IS.bad();
      }
    }

    std::vector<FleetFailureReport> FileReports;
    DecodeStatus S = ReadOk ? decodeSpoolFile(Bytes, FileReports)
                            : DecodeStatus::Truncated;
    if (S != DecodeStatus::Ok) {
      // Quarantine under the original name; never let a suspect file
      // take the drain down or count partially.
      fs::rename(Claimed, fs::path(quarantineDir()) / Name, EC);
      if (EC)
        std::remove(Claimed.c_str()); // Worst case: drop, still no crash.
      ++Stats.FilesQuarantined;
      continue;
    }

    Stats.RecordsDecoded += FileReports.size();
    for (FleetFailureReport &R : FileReports)
      Batch.push_back(std::move(R));
    if (Config.RemoveDrained)
      std::remove(Claimed.c_str());
  }

  // Normalize: (machine, sequence) order makes everything downstream —
  // dedup, shedding, submission — independent of file arrival order.
  std::sort(Batch.begin(), Batch.end(), reportLess);

  std::vector<FleetFailureReport> Kept;
  Kept.reserve(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    const FleetFailureReport &R = Batch[I];
    auto HW = HighWater.find(R.MachineId);
    bool Consumed = HW != HighWater.end() && R.Sequence <= HW->second &&
                    R.Sequence != 0;
    bool InBatchDup = I > 0 && Batch[I - 1].MachineId == R.MachineId &&
                      Batch[I - 1].Sequence == R.Sequence && R.Sequence != 0;
    if (Consumed || InBatchDup) {
      ++Stats.DuplicatesDropped;
      continue;
    }
    Kept.push_back(R);
  }

  // The high-water mark advances over everything this drain claimed —
  // including reports shed below — because their files are gone; a
  // redrain must not resurrect them.
  for (const FleetFailureReport &R : Batch)
    if (R.Sequence != 0)
      HighWater[R.MachineId] =
          std::max(HighWater[R.MachineId], R.Sequence);

  // Backpressure: shed from the coldest failure buckets first, so a
  // flood of some one-off failure cannot crowd out the hot buckets the
  // triage queue exists to prioritize.
  if (Config.MaxPending && Kept.size() > Config.MaxPending) {
    struct Bucket {
      uint64_t Count = 0;
      uint64_t Digest = 0;
      std::string BugId;
      std::vector<size_t> Indices; ///< Into Kept, ascending.
    };
    std::map<std::pair<uint64_t, std::string>, Bucket> Buckets;
    for (size_t I = 0; I < Kept.size(); ++I) {
      FailureSignature Sig = FailureSignature::of(Kept[I].Failure);
      Bucket &B = Buckets[{Sig.Digest, Kept[I].BugId}];
      B.Digest = Sig.Digest;
      B.BugId = Kept[I].BugId;
      ++B.Count;
      B.Indices.push_back(I);
    }
    std::vector<const Bucket *> Order;
    Order.reserve(Buckets.size());
    for (const auto &[Key, B] : Buckets)
      Order.push_back(&B);
    std::sort(Order.begin(), Order.end(),
              [](const Bucket *A, const Bucket *B) {
                if (A->Count != B->Count)
                  return A->Count < B->Count; // Coldest first.
                if (A->Digest != B->Digest)
                  return A->Digest < B->Digest;
                return A->BugId < B->BugId;
              });
    size_t Excess = Kept.size() - Config.MaxPending;
    std::vector<bool> Drop(Kept.size(), false);
    for (const Bucket *B : Order) {
      if (!Excess)
        break;
      // Shed the bucket's latest deliveries first.
      bool Shed = false;
      for (auto It = B->Indices.rbegin();
           It != B->Indices.rend() && Excess; ++It) {
        Drop[*It] = true;
        Shed = true;
        --Excess;
        ++Stats.BackpressureDropped;
      }
      if (Shed)
        ++Stats.BucketsShed;
    }
    std::vector<FleetFailureReport> Surviving;
    Surviving.reserve(Config.MaxPending);
    for (size_t I = 0; I < Kept.size(); ++I)
      if (!Drop[I])
        Surviving.push_back(std::move(Kept[I]));
    Kept = std::move(Surviving);
  }

  for (const FleetFailureReport &R : Kept)
    Sched.submit(R);
  Stats.Submitted += Kept.size();

  IngestMetrics::get().recordDelta(Before, Stats);
  Span.arg("files", Stats.FilesScanned - Before.FilesScanned);
  Span.arg("submitted", Stats.Submitted - Before.Submitted);
  Span.arg("quarantined", Stats.FilesQuarantined - Before.FilesQuarantined);
  return saveHighWater(Error);
}
