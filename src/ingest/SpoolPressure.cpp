//===- SpoolPressure.cpp - Spool backlog watermark signal --------------------===//

#include "ingest/SpoolPressure.h"

#include "ingest/ReportSpool.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace er;

namespace {

struct PressureMetrics {
  obs::Gauge &Files, &Bytes, &Shedding;

  static PressureMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static PressureMetrics M{Reg.gauge("ingest.spool.files"),
                             Reg.gauge("ingest.spool.bytes"),
                             Reg.gauge("ingest.spool.shedding")};
    return M;
  }
};

} // namespace

const char *er::pressureLevelName(PressureLevel L) {
  switch (L) {
  case PressureLevel::Ok:
    return "ok";
  case PressureLevel::Shedding:
    return "shedding";
  case PressureLevel::Critical:
    return "critical";
  }
  return "?";
}

SpoolPressure::SpoolPressure(std::string SpoolDir, SpoolPressureConfig Config,
                             FsOps *Fs)
    : SpoolDir(std::move(SpoolDir)), Config(Config),
      Fs(Fs ? *Fs : FsOps::real()) {
  // Watermarks of zero would make every ratio infinite; clamp to 1 so a
  // misconfigured daemon degrades to "always shedding", not UB.
  this->Config.HighFiles = std::max<uint64_t>(1, this->Config.HighFiles);
  this->Config.HighBytes = std::max<uint64_t>(1, this->Config.HighBytes);
}

void SpoolPressure::sample() {
  uint64_t NFiles = 0, NBytes = 0;
  for (const std::string &Name : listSpoolFiles(SpoolDir, nullptr, &Fs)) {
    ++NFiles;
    NBytes += Fs.fileSize(SpoolDir + "/" + Name);
  }
  Files.store(NFiles, std::memory_order_relaxed);
  Bytes.store(NBytes, std::memory_order_relaxed);
  // The scan saw everything published so far, including uploads recorded
  // since the previous sample — their deltas are now double counts.
  UploadFiles.store(0, std::memory_order_relaxed);
  UploadBytes.store(0, std::memory_order_relaxed);

  // Hysteresis: engage on either high watermark, release only when both
  // lows are satisfied.
  if (NFiles >= Config.HighFiles || NBytes >= Config.HighBytes)
    Engaged.store(true, std::memory_order_relaxed);
  else if (NFiles < Config.LowFiles && NBytes < Config.LowBytes)
    Engaged.store(false, std::memory_order_relaxed);

  PressureMetrics &PM = PressureMetrics::get();
  PM.Files.set(static_cast<int64_t>(NFiles));
  PM.Bytes.set(static_cast<int64_t>(NBytes));
  PM.Shedding.set(level() == PressureLevel::Ok ? 0 : 1);
}

void SpoolPressure::addUpload(uint64_t UploadedBytes) {
  UploadFiles.fetch_add(1, std::memory_order_relaxed);
  UploadBytes.fetch_add(UploadedBytes, std::memory_order_relaxed);
}

double SpoolPressure::ratio() const {
  uint64_t F = Files.load(std::memory_order_relaxed) +
               UploadFiles.load(std::memory_order_relaxed);
  uint64_t B = Bytes.load(std::memory_order_relaxed) +
               UploadBytes.load(std::memory_order_relaxed);
  return std::max(static_cast<double>(F) / Config.HighFiles,
                  static_cast<double>(B) / Config.HighBytes);
}

PressureLevel SpoolPressure::level() const {
  double R = ratio();
  if (R >= Config.CriticalFactor)
    return PressureLevel::Critical;
  if (R >= 1.0 || Engaged.load(std::memory_order_relaxed))
    return PressureLevel::Shedding;
  return PressureLevel::Ok;
}

uint64_t SpoolPressure::retryAfterSeconds() const {
  // Deeper overload buys the drain a longer quiet window. ratio 1 -> 2s,
  // 4 (critical default) -> 8s, capped at 30.
  double Secs = std::ceil(ratio() * 2.0);
  if (Secs < 1.0)
    return 1;
  return static_cast<uint64_t>(std::min(Secs, 30.0));
}
