//===- ReportSpool.cpp - Atomic spool-directory transport -------------------===//

#include "ingest/ReportSpool.h"

#include "ingest/ReportCodec.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

using namespace er;
namespace fs = std::filesystem;

static bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

SpoolWriter::SpoolWriter(std::string SpoolDir, uint64_t MachineId,
                         uint64_t FirstSequence)
    : SpoolDir(std::move(SpoolDir)), MachineId(MachineId),
      NextSequence(FirstSequence ? FirstSequence : 1) {}

void SpoolWriter::append(const FleetFailureReport &R) {
  FleetFailureReport Stamped = R;
  Stamped.MachineId = MachineId;
  Stamped.Sequence = NextSequence++;
  if (!BufferedRecords)
    BufferFirstSequence = Stamped.Sequence;
  encodeReport(Stamped, Buffer);
  ++BufferedRecords;
}

bool SpoolWriter::flush(std::string *Error) {
  if (!BufferedRecords)
    return true;

  std::error_code EC;
  fs::create_directories(SpoolDir, EC);

  // File names embed (machine, first sequence): unique per publication as
  // long as a machine never reuses a sequence number, and human-greppable.
  std::string Base = formatString("m%016llx-%016llx",
                                  (unsigned long long)MachineId,
                                  (unsigned long long)BufferFirstSequence);
  fs::path Tmp = fs::path(SpoolDir) / (Base + ".tmp");
  fs::path Final = fs::path(SpoolDir) / (Base + ".ers");

  std::vector<uint8_t> File;
  encodeSpoolHeader(File);
  File.insert(File.end(), Buffer.begin(), Buffer.end());

  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open temp file '" + Tmp.string() + "'";
    return false;
  }
  size_t Written = std::fwrite(File.data(), 1, File.size(), F);
  bool Closed = std::fclose(F) == 0;
  if (Written != File.size() || !Closed) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "short write to '" + Tmp.string() + "'";
    return false;
  }

  // The publish step: readers either see the complete file or nothing.
  fs::rename(Tmp, Final, EC);
  if (EC) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot publish '" + Final.string() + "': " + EC.message();
    return false;
  }

  Buffer.clear();
  BufferedRecords = 0;
  BufferFirstSequence = 0;
  return true;
}

std::vector<std::string> er::listSpoolFiles(const std::string &SpoolDir,
                                            uint64_t *StaleTemps) {
  std::vector<std::string> Names;
  if (StaleTemps)
    *StaleTemps = 0;
  std::error_code EC;
  fs::directory_iterator It(SpoolDir, EC), End;
  if (EC)
    return Names; // Missing or unreadable directory: an empty spool.
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    if (!It->is_regular_file(EC))
      continue;
    std::string Name = It->path().filename().string();
    if (endsWith(Name, ".tmp")) {
      // A writer is mid-publish — or crashed mid-write. Either way the
      // file is not ours to read; the collector surfaces the count.
      if (StaleTemps)
        ++*StaleTemps;
      continue;
    }
    if (endsWith(Name, ".ers"))
      Names.push_back(std::move(Name));
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

std::string er::claimSpoolFile(const std::string &SpoolDir,
                               const std::string &Name) {
  fs::path From = fs::path(SpoolDir) / Name;
  fs::path To = fs::path(SpoolDir) / (Name + ".claimed");
  std::error_code EC;
  fs::rename(From, To, EC);
  if (EC)
    return ""; // Lost the race to another collector (or the file vanished).
  return To.string();
}
