//===- ReportSpool.cpp - Atomic spool-directory transport -------------------===//

#include "ingest/ReportSpool.h"

#include "ingest/ReportCodec.h"
#include "support/Format.h"

#include <cstring>

using namespace er;

static bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

SpoolWriter::SpoolWriter(std::string SpoolDir, uint64_t MachineId,
                         uint64_t FirstSequence, FsOps *Fs)
    : SpoolDir(std::move(SpoolDir)), MachineId(MachineId),
      NextSequence(FirstSequence ? FirstSequence : 1),
      Fs(Fs ? *Fs : FsOps::real()) {}

void SpoolWriter::append(const FleetFailureReport &R) {
  FleetFailureReport Stamped = R;
  Stamped.MachineId = MachineId;
  Stamped.Sequence = NextSequence++;
  if (!BufferedRecords)
    BufferFirstSequence = Stamped.Sequence;
  encodeReport(Stamped, Buffer);
  ++BufferedRecords;
}

bool SpoolWriter::flush(std::string *Error) {
  if (!BufferedRecords)
    return true;

  Fs.createDirectories(SpoolDir);

  // File names embed (machine, first sequence): unique per publication as
  // long as a machine never reuses a sequence number, and human-greppable.
  std::string Base = formatString("m%016llx-%016llx",
                                  (unsigned long long)MachineId,
                                  (unsigned long long)BufferFirstSequence);
  std::string Tmp = SpoolDir + "/" + Base + ".tmp";
  std::string Final = SpoolDir + "/" + Base + ".ers";

  std::vector<uint8_t> File;
  encodeSpoolHeader(File);
  File.insert(File.end(), Buffer.begin(), Buffer.end());

  if (Fs.writeFile(Tmp, File.data(), File.size(), Error) != FsStatus::Ok) {
    Fs.remove(Tmp);
    return false;
  }

  // The publish step: readers either see the complete file or nothing.
  if (Fs.rename(Tmp, Final, Error) != FsStatus::Ok) {
    Fs.remove(Tmp);
    return false;
  }

  Buffer.clear();
  BufferedRecords = 0;
  BufferFirstSequence = 0;
  return true;
}

std::string SpoolWriter::takeFrame() {
  if (!BufferedRecords)
    return "";
  std::vector<uint8_t> File;
  encodeSpoolHeader(File);
  File.insert(File.end(), Buffer.begin(), Buffer.end());
  Buffer.clear();
  BufferedRecords = 0;
  BufferFirstSequence = 0;
  return std::string(reinterpret_cast<const char *>(File.data()), File.size());
}

std::vector<std::string> er::listSpoolFiles(const std::string &SpoolDir,
                                            uint64_t *StaleTemps, FsOps *Fs) {
  FsOps &F = Fs ? *Fs : FsOps::real();
  std::vector<std::string> Names;
  if (StaleTemps)
    *StaleTemps = 0;
  // listDir yields sorted regular-file names; a missing directory is an
  // empty spool.
  for (std::string &Name : F.listDir(SpoolDir)) {
    if (endsWith(Name, ".tmp")) {
      // A writer is mid-publish — or crashed mid-write. Either way the
      // file is not ours to read; the collector surfaces the count.
      if (StaleTemps)
        ++*StaleTemps;
      continue;
    }
    if (endsWith(Name, ".ers"))
      Names.push_back(std::move(Name));
  }
  return Names;
}

ClaimOutcome er::claimSpoolFileWithRetry(const std::string &SpoolDir,
                                         const std::string &Name,
                                         unsigned MaxRetries, FsOps *Fs) {
  FsOps &F = Fs ? *Fs : FsOps::real();
  std::string From = SpoolDir + "/" + Name;
  std::string To = SpoolDir + "/" + Name + ".claimed";
  ClaimOutcome Out;
  for (unsigned Attempt = 0;; ++Attempt) {
    switch (F.rename(From, To)) {
    case FsStatus::Ok:
      Out.ClaimedPath = To;
      return Out;
    case FsStatus::NotFound:
      // Lost the race to another collector (or the file vanished): the
      // benign outcome the claim protocol exists for. Never retried.
      return Out;
    case FsStatus::IoError:
      // Transient fault. The file is still published; retrying here is
      // cheaper than losing it from the batch for a whole drain interval.
      if (Attempt >= MaxRetries) {
        Out.TransientFailure = true;
        return Out;
      }
      ++Out.Retries;
      break;
    }
  }
}

std::string er::claimSpoolFile(const std::string &SpoolDir,
                               const std::string &Name) {
  return claimSpoolFileWithRetry(SpoolDir, Name, 0).ClaimedPath;
}
