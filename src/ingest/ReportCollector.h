//===- ReportCollector.h - Hardened spool drain -----------------*- C++ -*-===//
///
/// \file
/// Drains a spool directory into the fleet scheduler, surviving every
/// spool pathology without crashing (docs/INGEST.md):
///
///  - **Quarantine.** A file that is truncated, fails a record CRC, has a
///    bad magic/unknown version, or decodes to garbage is moved wholesale
///    into `spool/quarantine/` and counted — no record from a suspect
///    file is ever submitted (a torn file must not half-count a machine's
///    reports).
///  - **Idempotent redelivery.** Records are deduplicated by
///    (machine id, sequence): exact duplicates within a drain are dropped,
///    and a high-water mark per machine — persisted in `spool/highwater`
///    across drains, written atomically — drops anything already consumed
///    by an earlier drain, so at-least-once transports deliver
///    exactly-once counts.
///  - **Backpressure.** With MaxPending > 0, at most that many validated
///    reports are admitted per drain; the excess is dropped from the
///    *lowest*-occurrence failure buckets first (deterministically), which
///    preserves the triage signal that matters — the hot failures the
///    paper's scheduler wants to reconstruct first.
///  - **Determinism.** Records are sorted by (machine, sequence) before
///    submission, so the resulting FleetReport is independent of file
///    arrival order and byte-identical to an in-process harvest of the
///    same machines.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_REPORTCOLLECTOR_H
#define ER_INGEST_REPORTCOLLECTOR_H

#include "fleet/FleetScheduler.h"
#include "support/Fs.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace er {

/// Collector tuning.
struct CollectorConfig {
  std::string SpoolDir;
  /// Per-drain cap on admitted reports; 0 = unbounded. Overflow drops
  /// lowest-occurrence buckets first.
  size_t MaxPending = 0;
  /// Delete successfully drained (claimed) files; keep them (as
  /// `*.ers.claimed`) when false, e.g. for auditing.
  bool RemoveDrained = true;
  /// Bounded retries for a claim rename that fails transiently (the file
  /// is still published, so giving up would delay its records by a full
  /// drain interval). NotFound — lost the race — is never retried.
  unsigned ClaimRetries = 3;
  /// Persist `spool/highwater` after each drain. The collector daemon
  /// turns this off and checkpoints the high-water mark atomically
  /// together with the fleet state instead, closing the crash window
  /// between the two files.
  bool PersistHighWater = true;
  /// Keep drained files claimed until ackDrained() instead of removing
  /// them inside the drain. With this, a crash between a drain and the
  /// consumer's checkpoint leaves the records on disk: recovery un-claims
  /// them and the next drain re-delivers (deduplicated by high-water if
  /// the checkpoint did land). Overrides RemoveDrained while set.
  bool DeferRemoval = false;
  /// Filesystem seam (null = the real filesystem).
  FsOps *Fs = nullptr;
};

/// One drain's worth of counters (cumulative across drains on the same
/// collector instance).
struct CollectorStats {
  uint64_t FilesScanned = 0;     ///< Published files seen in the spool.
  uint64_t FilesClaimed = 0;     ///< Successfully claimed by rename.
  uint64_t FilesQuarantined = 0; ///< Moved to spool/quarantine/.
  uint64_t StaleTemps = 0;       ///< `*.tmp` writer leftovers skipped.
  uint64_t RecordsDecoded = 0;   ///< Records from fully-valid files.
  uint64_t DuplicatesDropped = 0; ///< (machine, seq) already seen/consumed.
  uint64_t BackpressureDropped = 0; ///< Shed by the MaxPending bound.
  uint64_t BucketsShed = 0; ///< Distinct failure buckets that lost >=1 report
                            ///< to backpressure.
  uint64_t Submitted = 0;        ///< Handed to FleetScheduler::submit.
  uint64_t ClaimRetries = 0;     ///< Claim renames retried after EIO.
  uint64_t ClaimFailures = 0;    ///< Claims abandoned after retry budget;
                                 ///< the file stays for the next drain.
};

/// Scans, validates, and submits spool reports. Not thread-safe; run one
/// collector per scheduler control thread (multiple collector *processes*
/// on one spool are safe — file claiming arbitrates).
class ReportCollector {
public:
  explicit ReportCollector(CollectorConfig Config);

  /// One full drain: scan, claim, decode, quarantine, dedup, shed,
  /// submit. Never throws and never fails on malformed spool *content*;
  /// returns false (with \p Error) only when the spool directory itself
  /// cannot be prepared or the high-water mark cannot be persisted.
  bool drainInto(FleetScheduler &Sched, std::string *Error = nullptr);

  const CollectorStats &getStats() const { return Stats; }

  /// Highest consumed sequence per machine (loaded + updated by drains).
  const std::map<uint64_t, uint64_t> &getHighWater() const {
    return HighWater;
  }

  /// Replaces the in-memory high-water mark and suppresses the load from
  /// `spool/highwater`. The daemon calls this on startup with the marks
  /// recovered from its atomic checkpoint, which supersede any separate
  /// high-water file.
  void setHighWater(std::map<uint64_t, uint64_t> Marks);

  /// Acknowledges everything drained under DeferRemoval: removes the
  /// claimed files (when RemoveDrained) and forgets them. Call only after
  /// the drained records are durably owned downstream (e.g. the daemon's
  /// checkpoint landed). Returns how many files were acknowledged.
  size_t ackDrained();

  /// Files drained but not yet acknowledged (DeferRemoval mode).
  size_t pendingAckCount() const { return PendingAck.size(); }

  /// Startup recovery: renames any `*.ers.claimed` leftovers in the spool
  /// back to `*.ers` so the next drain re-delivers them. Safe against
  /// duplicates — redelivered records are deduplicated by the high-water
  /// mark. Returns the number of files recovered.
  size_t recoverClaimedFiles();

private:
  FsOps &fs() const;
  std::string quarantineDir() const;
  bool loadHighWater(std::string *Error);
  bool saveHighWater(std::string *Error) const;

  CollectorConfig Config;
  CollectorStats Stats;
  /// machine id -> highest sequence consumed. std::map keeps persistence
  /// output sorted (stable files, clean diffs).
  std::map<uint64_t, uint64_t> HighWater;
  bool HighWaterLoaded = false;
  /// Claimed paths awaiting ackDrained() (DeferRemoval mode).
  std::vector<std::string> PendingAck;
};

} // namespace er

#endif // ER_INGEST_REPORTCOLLECTOR_H
