//===- ReportCollector.h - Hardened spool drain -----------------*- C++ -*-===//
///
/// \file
/// Drains a spool directory into the fleet scheduler, surviving every
/// spool pathology without crashing (docs/INGEST.md):
///
///  - **Quarantine.** A file that is truncated, fails a record CRC, has a
///    bad magic/unknown version, or decodes to garbage is moved wholesale
///    into `spool/quarantine/` and counted — no record from a suspect
///    file is ever submitted (a torn file must not half-count a machine's
///    reports).
///  - **Idempotent redelivery.** Records are deduplicated by
///    (machine id, sequence): exact duplicates within a drain are dropped,
///    and a high-water mark per machine — persisted in `spool/highwater`
///    across drains, written atomically — drops anything already consumed
///    by an earlier drain, so at-least-once transports deliver
///    exactly-once counts.
///  - **Backpressure.** With MaxPending > 0, at most that many validated
///    reports are admitted per drain; the excess is dropped from the
///    *lowest*-occurrence failure buckets first (deterministically), which
///    preserves the triage signal that matters — the hot failures the
///    paper's scheduler wants to reconstruct first.
///  - **Determinism.** Records are sorted by (machine, sequence) before
///    submission, so the resulting FleetReport is independent of file
///    arrival order and byte-identical to an in-process harvest of the
///    same machines.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_REPORTCOLLECTOR_H
#define ER_INGEST_REPORTCOLLECTOR_H

#include "fleet/FleetScheduler.h"

#include <cstdint>
#include <map>
#include <string>

namespace er {

/// Collector tuning.
struct CollectorConfig {
  std::string SpoolDir;
  /// Per-drain cap on admitted reports; 0 = unbounded. Overflow drops
  /// lowest-occurrence buckets first.
  size_t MaxPending = 0;
  /// Delete successfully drained (claimed) files; keep them (as
  /// `*.ers.claimed`) when false, e.g. for auditing.
  bool RemoveDrained = true;
};

/// One drain's worth of counters (cumulative across drains on the same
/// collector instance).
struct CollectorStats {
  uint64_t FilesScanned = 0;     ///< Published files seen in the spool.
  uint64_t FilesClaimed = 0;     ///< Successfully claimed by rename.
  uint64_t FilesQuarantined = 0; ///< Moved to spool/quarantine/.
  uint64_t StaleTemps = 0;       ///< `*.tmp` writer leftovers skipped.
  uint64_t RecordsDecoded = 0;   ///< Records from fully-valid files.
  uint64_t DuplicatesDropped = 0; ///< (machine, seq) already seen/consumed.
  uint64_t BackpressureDropped = 0; ///< Shed by the MaxPending bound.
  uint64_t BucketsShed = 0; ///< Distinct failure buckets that lost >=1 report
                            ///< to backpressure.
  uint64_t Submitted = 0;        ///< Handed to FleetScheduler::submit.
};

/// Scans, validates, and submits spool reports. Not thread-safe; run one
/// collector per scheduler control thread (multiple collector *processes*
/// on one spool are safe — file claiming arbitrates).
class ReportCollector {
public:
  explicit ReportCollector(CollectorConfig Config);

  /// One full drain: scan, claim, decode, quarantine, dedup, shed,
  /// submit. Never throws and never fails on malformed spool *content*;
  /// returns false (with \p Error) only when the spool directory itself
  /// cannot be prepared or the high-water mark cannot be persisted.
  bool drainInto(FleetScheduler &Sched, std::string *Error = nullptr);

  const CollectorStats &getStats() const { return Stats; }

  /// Highest consumed sequence per machine (loaded + updated by drains).
  const std::map<uint64_t, uint64_t> &getHighWater() const {
    return HighWater;
  }

private:
  std::string quarantineDir() const;
  bool loadHighWater(std::string *Error);
  bool saveHighWater(std::string *Error) const;

  CollectorConfig Config;
  CollectorStats Stats;
  /// machine id -> highest sequence consumed. std::map keeps persistence
  /// output sorted (stable files, clean diffs).
  std::map<uint64_t, uint64_t> HighWater;
  bool HighWaterLoaded = false;
};

} // namespace er

#endif // ER_INGEST_REPORTCOLLECTOR_H
