//===- ReportCodec.h - Failure-report wire format ----------------*- C++ -*-===//
///
/// \file
/// The versioned binary encoding that carries FleetFailureReports from
/// production machines to the reconstruction service (docs/INGEST.md).
/// A spool file is:
///
///   [8-byte magic "ERSPOOL\n"] [u32 version] [record]*
///
/// and each record is length-prefixed and CRC-protected:
///
///   [u32 payload length] [u32 CRC32(payload)] [payload bytes]
///
/// The payload serializes (machine id, sequence, bug id, FailureRecord)
/// little-endian with length-prefixed strings/arrays. Decoding never
/// trusts a length field further than the bytes actually present, so a
/// truncated or bit-flipped file yields a typed error, not a crash — the
/// collector quarantines such files.
///
/// Everything here is pure byte-vector transformation; file and directory
/// handling lives in ReportSpool / ReportCollector.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_REPORTCODEC_H
#define ER_INGEST_REPORTCODEC_H

#include "fleet/FleetScheduler.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace er {

/// Current wire version. Decoders reject anything else (forward
/// compatibility is by quarantine, not by guessing).
constexpr uint32_t SpoolWireVersion = 1;

/// Why a decode stopped.
enum class DecodeStatus {
  Ok,
  Truncated,      ///< Bytes end mid-header or mid-record.
  BadMagic,       ///< File does not start with the spool magic.
  BadVersion,     ///< Magic matched but the version is unknown.
  BadChecksum,    ///< Record CRC32 mismatch (bit rot / torn write).
  Malformed,      ///< Internal lengths inconsistent or field out of range.
};

const char *decodeStatusName(DecodeStatus S);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of \p Len bytes.
uint32_t crc32(const uint8_t *Data, size_t Len);

/// Appends the 12-byte spool file header (magic + version) to \p Out.
void encodeSpoolHeader(std::vector<uint8_t> &Out);

/// Validates the header at \p Offset, advancing it past the header on
/// success. On BadVersion, \p Version receives the rejected value.
DecodeStatus decodeSpoolHeader(const uint8_t *Data, size_t Size,
                               size_t &Offset, uint32_t &Version);

/// Appends one length-prefixed, CRC-protected record for \p R to \p Out.
void encodeReport(const FleetFailureReport &R, std::vector<uint8_t> &Out);

/// Decodes one record at \p Offset, advancing it past the record on
/// success. Returns Truncated when fewer bytes remain than the prefix
/// promises, BadChecksum on CRC mismatch, Malformed when the payload's
/// internal structure is inconsistent.
DecodeStatus decodeReport(const uint8_t *Data, size_t Size, size_t &Offset,
                          FleetFailureReport &Out);

} // namespace er

#endif // ER_INGEST_REPORTCODEC_H
