//===- CollectorDaemon.h - Long-running spool collector ---------*- C++ -*-===//
///
/// \file
/// The long-running shape of ingestion (docs/INGEST.md): `er_cli collect
/// --daemon` constructs one of these around a ReportCollector and a
/// FleetScheduler and lets it run. Each *cycle* the daemon
///
///   1. drains the spool (bounded retry with doubling backoff on a
///      transient drain failure),
///   2. advances campaigns incrementally via
///      FleetScheduler::stepCampaigns — new reports feed into running
///      campaigns without restarting anything, and hot buckets may
///      preempt per FleetConfig::Preempt,
///   3. checkpoints fleet state + ingest high-water marks into ONE
///      atomically-renamed state file, and
///   4. acknowledges the drained spool files (removes them).
///
/// The 3-then-4 order is the exactly-once protocol: drained files stay
/// claimed on disk until the checkpoint that owns their records is
/// durable. A crash before the checkpoint leaves the files claimed —
/// startup recovery un-claims them and the next drain re-delivers records
/// the dead process never durably owned. A crash after the checkpoint but
/// before the ack re-delivers too, but the checkpointed high-water marks
/// drop every record as a duplicate. Either way each record is counted
/// exactly once.
///
/// Time and the filesystem are taken through the src/support/ seams
/// (ClockSource, FsOps, the Sleep hook), so every retry/crash/preemption
/// path here is driven deterministically in tests — no sleeps, no wall
/// clock.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_COLLECTORDAEMON_H
#define ER_INGEST_COLLECTORDAEMON_H

#include "ingest/ReportCollector.h"
#include "ingest/SpoolPressure.h"
#include "net/HttpServer.h"
#include "obs/Watchdog.h"
#include "support/Fs.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace er {

/// Daemon tuning. The embedded CollectorConfig is adjusted on start():
/// with a StateFile the collector is switched into deferred-ack mode
/// (DeferRemoval=true, PersistHighWater=false) so the daemon checkpoint is
/// the single source of durability; without one the collector keeps its
/// classic per-drain `spool/highwater` persistence.
struct DaemonConfig {
  CollectorConfig Collector;
  /// Sleep between cycles.
  uint64_t DrainIntervalMs = 250;
  /// Retries per cycle when the drain itself fails transiently.
  unsigned MaxDrainRetries = 4;
  /// First retry backoff; doubles per retry up to RetryBackoffCapMs.
  uint64_t RetryBackoffBaseMs = 50;
  uint64_t RetryBackoffCapMs = 2000;
  /// Campaign steps per cycle; 0 = step until no pending work. A budget
  /// keeps cycles short so drains stay frequent while campaigns are deep.
  unsigned MaxStepsPerCycle = 0;
  /// Stop after this many cycles (0 = run until requestStop()).
  uint64_t MaxCycles = 0;
  /// Checkpoint path; "" disables checkpointing (and the two-phase ack).
  std::string StateFile;
  /// Live telemetry listener, "HOST:PORT" ("127.0.0.1:0" binds an
  /// ephemeral port — listenPort() reports it); "" disables the listener.
  /// Serves GET /metrics (Prometheus text exposition), /healthz, and
  /// /status (docs/OBSERVABILITY.md, "Live endpoints").
  std::string Listen;
  /// Listener tuning (connection cap, request deadline, body cap);
  /// Host/Port are overridden from Listen.
  net::HttpServerConfig Http;
  /// Spool watermarks behind the upload endpoint's 429/503 answers and
  /// the adaptive drain schedule (docs/INGEST.md "Backpressure").
  SpoolPressureConfig Pressure;
  /// Adaptive drains: DrainIntervalMs becomes the *maximum* inter-cycle
  /// delay; the next cycle is scheduled sooner as spool pressure or the
  /// last cycle's drain volume rises (nextDrainDelayMs). False pins the
  /// classic fixed cadence.
  bool AdaptiveDrain = true;
  /// Floor for the adaptive delay; 0 derives max(1, DrainIntervalMs / 8).
  uint64_t MinDrainIntervalMs = 0;
  /// Files drained in one cycle that count as "arrivals are saturating
  /// the cadence" — at or past this the next delay hits the floor even
  /// though the just-drained spool looks empty.
  uint64_t AdaptiveBusyFiles = 8;
  /// Cycle watchdog deadline: a drain→step→checkpoint cycle exceeding
  /// this flips /healthz unhealthy, bumps daemon.watchdog.trips, and
  /// dumps stall diagnostics. 0 disables the watchdog.
  uint64_t CycleDeadlineMs = 0;
  /// Where a watchdog trip dumps its one-shot span-ring + metrics
  /// snapshot ("" = no dump; the trip still counts).
  std::string StallDiagDir;
  /// Every N cycles, write the metrics registry to MetricsJsonPath
  /// atomically (temp+rename) — rolling on-disk telemetry for operators
  /// without network access. 0 disables.
  uint64_t MetricsEveryCycles = 0;
  /// Periodic snapshot path (default "metrics.json" when
  /// MetricsEveryCycles is set).
  std::string MetricsJsonPath;
  /// Clock seam (null = the real monotonic clock).
  ClockSource *Clock = nullptr;
  /// Sleep seam, milliseconds. Null = really sleep. Tests install a hook
  /// that records the duration and advances a VirtualClock instead.
  std::function<void(uint64_t)> Sleep;
};

/// Cumulative daemon counters.
struct DaemonStats {
  uint64_t Cycles = 0;
  uint64_t Drains = 0;         ///< Successful drains.
  uint64_t DrainRetries = 0;   ///< Drain attempts retried after failure.
  uint64_t DrainFailures = 0;  ///< Cycles whose drain never succeeded.
  uint64_t StepsRun = 0;       ///< Campaign session steps performed.
  uint64_t Checkpoints = 0;    ///< State files atomically published.
  uint64_t CheckpointFailures = 0;
  uint64_t FilesAcked = 0;     ///< Spool files removed after a checkpoint.
  uint64_t FilesRecovered = 0; ///< `.claimed` leftovers un-claimed on start.
  uint64_t MetricsSnapshots = 0; ///< Periodic metrics.json files published.
  uint64_t MetricsSnapshotFailures = 0;
};

/// What the daemon is doing right now — written with relaxed atomics at
/// phase boundaries inside the cycle (never locked), read by /healthz.
enum class DaemonPhase {
  Idle,          ///< Between cycles.
  Draining,      ///< Inside a spool drain attempt.
  Backoff,       ///< Sleeping off a failed drain attempt before a retry.
  Stepping,      ///< Advancing campaigns.
  Checkpointing, ///< Publishing the state file / acking.
  Stopping,      ///< Stop requested; final checkpoint in flight.
};

const char *daemonPhaseName(DaemonPhase P);

/// Point-in-time operational snapshot behind `GET /status`: published by
/// the daemon thread once per cycle under a small mutex, copied whole by
/// the HTTP thread — scrapes never touch live scheduler or collector
/// state.
struct DaemonStatus {
  uint64_t Cycle = 0;
  uint64_t UptimeNs = 0;
  /// Clock reading at the last successful checkpoint (0 = none yet).
  uint64_t LastCheckpointNs = 0;
  /// Published (unclaimed) spool files at the end of the last cycle.
  size_t SpoolDepth = 0;
  /// Their byte total, per the same scan.
  uint64_t SpoolBytes = 0;
  /// Pressure signal at the same instant.
  double PressureRatio = 0.0;
  PressureLevel Pressure = PressureLevel::Ok;
  /// Wire-upload counters (accepted = published into the spool).
  uint64_t UploadsAccepted = 0;
  uint64_t UploadsRejected = 0;  ///< 400/413-class permanent rejections.
  uint64_t UploadsThrottled = 0; ///< 429 backpressure answers.
  /// Adaptive schedule: delay chosen after the last cycle, and sleeps
  /// cut short by mid-interval pressure.
  uint64_t LastDrainDelayMs = 0;
  uint64_t EarlyWakes = 0;
  /// Drained files awaiting their covering checkpoint.
  size_t PendingAckFiles = 0;
  uint64_t ClaimRetries = 0;
  uint64_t ClaimFailures = 0;
  uint64_t Preemptions = 0;
  DaemonStats Stats;
  std::vector<CampaignStatus> Campaigns;
};

/// Periodic drain-and-step loop around one collector + one scheduler.
/// Single control thread; requestStop() alone is safe to call from a
/// signal handler or another thread.
class CollectorDaemon {
public:
  /// \p Sched must outlive the daemon. The daemon owns its collector.
  CollectorDaemon(DaemonConfig Config, FleetScheduler &Sched);

  /// Prepares the daemon: loads the StateFile checkpoint (campaigns +
  /// high-water marks) if one exists, and un-claims `.claimed` leftovers
  /// from a previous life. Idempotent. Returns false on a corrupt
  /// checkpoint (refusing to run is safer than double-counting).
  bool start(std::string *Error = nullptr);

  /// One cycle: drain (with retries) -> step campaigns -> checkpoint ->
  /// ack. Returns false only on a non-recoverable error (checkpoint and
  /// drain failures are counted, backed off, and survived). Does not
  /// sleep the inter-cycle interval — that is runLoop's job.
  bool runCycle(std::string *Error = nullptr);

  /// start() + cycles separated by DrainIntervalMs until MaxCycles or
  /// requestStop(), then a final checkpoint. Returns false on start()
  /// failure or a non-recoverable cycle error.
  bool runLoop(std::string *Error = nullptr);

  /// Asks the loop to exit after the current cycle. Async-signal-safe.
  void requestStop() { StopRequested.store(true, std::memory_order_relaxed); }
  bool stopRequested() const {
    return StopRequested.load(std::memory_order_relaxed);
  }

  const DaemonStats &getStats() const { return Stats; }
  const CollectorStats &collectorStats() const {
    return Collector.getStats();
  }
  ReportCollector &collector() { return Collector; }

  /// Daemon uptime by the injected clock, clamped to zero if the clock
  /// jumps backwards (a host clock step must never underflow the gauge).
  uint64_t uptimeNs() const;

  //===--- Live telemetry (docs/OBSERVABILITY.md, "Live endpoints") ----===//

  /// Routes one request: GET /metrics | /healthz | /status, POST
  /// /report, 404 otherwise. This IS the listener's handler, public so
  /// tests drive the endpoints without sockets. Thread-safe against the
  /// cycle loop: it reads metric snapshots, relaxed atomics, and the
  /// mutex-guarded status copy — never live scheduler/collector state.
  /// The upload path additionally publishes spool files, which is safe
  /// against a concurrent drain by the temp+rename protocol (uploads are
  /// just one more spool writer process, as far as the drain can tell).
  net::HttpResponse handleHttp(const net::HttpRequest &Req);

  /// Delay before the next cycle under the adaptive schedule: the
  /// configured DrainIntervalMs scaled down toward the floor as pressure
  /// (spool fullness, incl. uploads since the last sample) or the last
  /// cycle's drain volume rises. Equals DrainIntervalMs exactly when
  /// AdaptiveDrain is off or everything is quiet.
  uint64_t nextDrainDelayMs() const;

  /// The edge-backpressure signal (sampled once per cycle; uploads fold
  /// in between samples).
  SpoolPressure &pressure() { return Pressure; }

  /// Bound listener port (the ephemeral answer for ":0"); 0 when no
  /// listener is configured or it has not started.
  uint16_t listenPort() const { return Http ? Http->boundPort() : 0; }

  /// Copy of the per-cycle status snapshot (what /status renders).
  DaemonStatus statusSnapshot() const;

  DaemonPhase phase() const {
    return static_cast<DaemonPhase>(Phase.load(std::memory_order_relaxed));
  }

  obs::CycleWatchdog &watchdog() { return Watchdog; }

private:
  ClockSource &clock() const;
  FsOps &fsOps() const;
  void sleepMs(uint64_t Ms);
  bool drainWithRetry(std::string *Error);
  bool checkpoint(std::string *Error);
  void setPhase(DaemonPhase P) {
    Phase.store(static_cast<int>(P), std::memory_order_relaxed);
  }
  /// Rebuilds the mutex-guarded DaemonStatus from live state; cycle-loop
  /// thread only.
  void publishStatus();
  /// `POST /report`: validate the frame, publish it into the spool (or
  /// the quarantine), answer 2xx/4xx. HTTP thread.
  net::HttpResponse handleUpload(const net::HttpRequest &Req);
  /// The inter-cycle wait: one fixed sleep, or (adaptive) slices with a
  /// mid-interval early wake when uploads push pressure past the high
  /// watermark.
  void interCycleSleep();
  /// Periodic `metrics.json` publish (temp+rename through the Fs seam).
  void writeMetricsSnapshot();
  net::HttpResponse renderHealthz();
  net::HttpResponse renderStatus();

  DaemonConfig Config;
  FleetScheduler &Sched;
  ReportCollector Collector;
  SpoolPressure Pressure;
  DaemonStats Stats;
  obs::CycleWatchdog Watchdog;
  std::unique_ptr<net::HttpServer> Http;
  std::atomic<bool> StopRequested{false};
  std::atomic<int> Phase{static_cast<int>(DaemonPhase::Idle)};
  std::atomic<uint64_t> LastCheckpointNs{0};
  // Upload counters cross the HTTP/control thread boundary; everything
  // else in Stats is control-thread-only.
  std::atomic<uint64_t> UploadsAccepted{0}, UploadsRejected{0},
      UploadsThrottled{0};
  /// Uniquifies concurrent upload temp files (publication names are
  /// content-derived; temps must not collide).
  std::atomic<uint64_t> UploadSeq{0};
  /// Files the last cycle's drain claimed — the arrival-rate term of the
  /// adaptive schedule.
  std::atomic<uint64_t> DrainedLastCycle{0};
  std::atomic<uint64_t> LastDrainDelayMs{0};
  std::atomic<uint64_t> EarlyWakes{0};
  mutable std::mutex StatusMu;
  DaemonStatus Status;
  bool Started = false;
  uint64_t StartNs = 0;
};

} // namespace er

#endif // ER_INGEST_COLLECTORDAEMON_H
