//===- SpoolPressure.h - Spool backlog watermark signal ---------*- C++ -*-===//
///
/// \file
/// The edge-backpressure signal for the wire ingestion path
/// (docs/INGEST.md "Backpressure"): how full is the spool, relative to
/// configured high/low watermarks, and what should the front end do about
/// it? Three consumers read it:
///
///  - the `POST /report` handler answers **429 + Retry-After** while the
///    signal says Shedding (uploads are the one inflow we can refuse
///    cheaply — the client retries with backoff and nothing is lost);
///  - the daemon flips the HTTP server's accept-shed valve (**503 at
///    accept**) when pressure goes Critical — a spool several multiples
///    past its high watermark means even parsing requests is cycles the
///    drain needs more;
///  - the adaptive drain scheduler shortens the next cycle's delay as
///    the ratio rises (CollectorDaemon::nextDrainDelayMs).
///
/// The signal is a hysteresis loop, not a threshold: shedding engages
/// when *either* file count or byte total crosses its high watermark and
/// releases only when *both* fall under the low watermarks, so a spool
/// hovering at the boundary does not flap between 200 and 429 on every
/// upload.
///
/// Threading: sample() runs on the daemon control thread (it scans the
/// spool directory); addUpload() runs on the HTTP server thread as
/// uploads land between samples and is folded into the ratio so a burst
/// arriving mid-interval raises pressure immediately rather than one
/// cycle late. All published state is atomic; readers never block.
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_SPOOLPRESSURE_H
#define ER_INGEST_SPOOLPRESSURE_H

#include "support/Fs.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace er {

struct SpoolPressureConfig {
  /// High watermarks: crossing *either* engages shedding.
  uint64_t HighFiles = 64;
  uint64_t HighBytes = 8ull << 20;
  /// Low watermarks: shedding releases only when *both* are back under.
  uint64_t LowFiles = 16;
  uint64_t LowBytes = 2ull << 20;
  /// Ratio at which pressure is Critical (accept-shed): this multiple of
  /// the high watermark.
  double CriticalFactor = 4.0;
};

enum class PressureLevel {
  Ok,       ///< Accept everything.
  Shedding, ///< Uploads answered 429 + Retry-After.
  Critical, ///< Everything refused 503 at accept.
};

const char *pressureLevelName(PressureLevel L);

/// Watermark signal over one spool directory. One instance per daemon;
/// see the threading contract in the file header.
class SpoolPressure {
public:
  explicit SpoolPressure(std::string SpoolDir, SpoolPressureConfig Config = {},
                         FsOps *Fs = nullptr);

  /// Rescans the spool (published `.ers` files only — claimed/tmp files
  /// are the drain's business), folds the scan into the signal, resets
  /// the between-samples upload deltas, and updates the
  /// `ingest.spool.*` gauges. Control thread only.
  void sample();

  /// Records an upload published directly into the spool between
  /// samples. Any thread.
  void addUpload(uint64_t Bytes);

  /// Fullness relative to the high watermarks: max of files/HighFiles
  /// and bytes/HighBytes, counting uploads since the last sample. 1.0 =
  /// at the high watermark. Any thread.
  double ratio() const;

  /// Current hysteresis state (recomputed from ratio() so mid-interval
  /// uploads can engage shedding before the next sample). Any thread.
  PressureLevel level() const;

  /// `Retry-After` hint for a 429/503: grows with overload, clamped to
  /// [1, 30] seconds.
  uint64_t retryAfterSeconds() const;

  /// Last sampled counts (exclusive of between-sample uploads).
  uint64_t sampledFiles() const {
    return Files.load(std::memory_order_relaxed);
  }
  uint64_t sampledBytes() const {
    return Bytes.load(std::memory_order_relaxed);
  }

  const SpoolPressureConfig &config() const { return Config; }

private:
  std::string SpoolDir;
  SpoolPressureConfig Config;
  FsOps &Fs;

  std::atomic<uint64_t> Files{0}, Bytes{0};
  std::atomic<uint64_t> UploadFiles{0}, UploadBytes{0};
  /// Hysteresis memory: sticky once engaged, cleared by sample() when
  /// both low watermarks are satisfied.
  std::atomic<bool> Engaged{false};
};

} // namespace er

#endif // ER_INGEST_SPOOLPRESSURE_H
