//===- CollectorDaemon.cpp - Long-running spool collector -------------------===//

#include "ingest/CollectorDaemon.h"

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PromExport.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace er;

namespace {
struct DaemonMetrics {
  obs::Counter &Cycles, &Drains, &DrainRetries, &DrainFailures;
  obs::Counter &Steps, &Checkpoints, &CheckpointFailures, &FilesAcked;
  obs::Counter &MetricsSnapshots, &MetricsSnapshotFailures;
  obs::Gauge &UptimeNs, &DrainIntervalNs;

  static DaemonMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static DaemonMetrics M{Reg.counter("daemon.cycles"),
                           Reg.counter("daemon.drains"),
                           Reg.counter("daemon.drain.retries"),
                           Reg.counter("daemon.drain.failures"),
                           Reg.counter("daemon.steps"),
                           Reg.counter("daemon.checkpoints"),
                           Reg.counter("daemon.checkpoint.failures"),
                           Reg.counter("daemon.files.acked"),
                           Reg.counter("daemon.metrics.snapshots"),
                           Reg.counter("daemon.metrics.snapshot.failures"),
                           Reg.gauge("daemon.uptime_ns"),
                           Reg.gauge("daemon.drain_interval_ns")};
    return M;
  }
};

/// With a checkpoint file the daemon owns durability: the collector must
/// not remove drained files before the checkpoint lands, and must not
/// persist a separate high-water file that could diverge from it.
CollectorConfig adjustForDaemon(CollectorConfig CC, bool HasStateFile) {
  if (HasStateFile) {
    CC.DeferRemoval = true;
    CC.PersistHighWater = false;
  }
  return CC;
}

obs::WatchdogConfig watchdogConfig(const DaemonConfig &DC) {
  obs::WatchdogConfig WC;
  WC.DeadlineMs = DC.CycleDeadlineMs;
  WC.Clock = DC.Clock;
  WC.DiagnosticsDir = DC.StallDiagDir;
  WC.Fs = DC.Collector.Fs;
  return WC;
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::string(Suffix).size();
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}
} // namespace

const char *er::daemonPhaseName(DaemonPhase P) {
  switch (P) {
  case DaemonPhase::Idle:
    return "idle";
  case DaemonPhase::Draining:
    return "draining";
  case DaemonPhase::Backoff:
    return "backoff";
  case DaemonPhase::Stepping:
    return "stepping";
  case DaemonPhase::Checkpointing:
    return "checkpointing";
  case DaemonPhase::Stopping:
    return "stopping";
  }
  return "unknown";
}

CollectorDaemon::CollectorDaemon(DaemonConfig Config, FleetScheduler &Sched)
    : Config(Config), Sched(Sched),
      Collector(adjustForDaemon(Config.Collector, !Config.StateFile.empty())),
      Watchdog(watchdogConfig(Config)) {}

ClockSource &CollectorDaemon::clock() const {
  return Config.Clock ? *Config.Clock : ClockSource::real();
}

FsOps &CollectorDaemon::fsOps() const {
  return Config.Collector.Fs ? *Config.Collector.Fs : FsOps::real();
}

uint64_t CollectorDaemon::uptimeNs() const {
  uint64_t Now = clock().nowNs();
  // A backwards clock jump must clamp, not wrap the unsigned difference.
  return Now >= StartNs ? Now - StartNs : 0;
}

void CollectorDaemon::sleepMs(uint64_t Ms) {
  if (!Ms)
    return;
  if (Config.Sleep) {
    Config.Sleep(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool CollectorDaemon::start(std::string *Error) {
  if (Started)
    return true;
  FsOps &Fs = fsOps();
  if (!Config.StateFile.empty() && Fs.exists(Config.StateFile)) {
    std::map<uint64_t, uint64_t> HighWater;
    if (!Sched.loadState(Config.StateFile, Error, &HighWater))
      return false; // Corrupt checkpoint: refuse rather than double-count.
    Collector.setHighWater(std::move(HighWater));
  }
  // A previous life may have died between a drain and its checkpoint;
  // its claimed files still hold records nobody durably owns. Un-claim
  // them so this life's first drain re-delivers (the restored high-water
  // marks drop anything the old checkpoint did own).
  Stats.FilesRecovered += Collector.recoverClaimedFiles();
  StartNs = clock().nowNs();
  DaemonMetrics::get().DrainIntervalNs.set(
      static_cast<int64_t>(Config.DrainIntervalMs * 1000000));
  // The live telemetry listener comes up last, once the state it serves
  // is recovered. A listener that cannot bind is a startup failure — an
  // operator who asked for telemetry must not silently run blind.
  if (!Config.Listen.empty() && !Http) {
    net::HttpServerConfig HC = Config.Http;
    if (!net::parseHostPort(Config.Listen, HC.Host, HC.Port, Error))
      return false;
    Http = std::make_unique<net::HttpServer>(
        HC, [this](const net::HttpRequest &Req) { return handleHttp(Req); });
    if (!Http->start(Error)) {
      Http.reset();
      return false;
    }
  }
  publishStatus(); // /status answers sensibly before the first cycle.
  Started = true;
  return true;
}

bool CollectorDaemon::drainWithRetry(std::string *Error) {
  DaemonMetrics &DM = DaemonMetrics::get();
  uint64_t BackoffMs = Config.RetryBackoffBaseMs;
  std::string DrainError;
  for (unsigned Attempt = 0;; ++Attempt) {
    setPhase(DaemonPhase::Draining);
    if (Collector.drainInto(Sched, &DrainError)) {
      ++Stats.Drains;
      DM.Drains.inc();
      return true;
    }
    if (Attempt >= Config.MaxDrainRetries)
      break;
    // Transient I/O (EIO on the quarantine dir, the high-water file, ...):
    // back off and retry within the cycle. Doubling with a cap keeps the
    // worst case bounded while not hammering a struggling disk.
    ++Stats.DrainRetries;
    DM.DrainRetries.inc();
    setPhase(DaemonPhase::Backoff);
    sleepMs(BackoffMs);
    BackoffMs = std::min(BackoffMs * 2, Config.RetryBackoffCapMs);
  }
  ++Stats.DrainFailures;
  DM.DrainFailures.inc();
  if (Error)
    *Error = DrainError;
  return false;
}

bool CollectorDaemon::checkpoint(std::string *Error) {
  if (Config.StateFile.empty())
    return true;
  DaemonMetrics &DM = DaemonMetrics::get();
  FsOps &Fs = fsOps();
  // Fleet state + high-water marks written as one file, published by one
  // atomic rename: the two can never be observed out of sync.
  std::string Tmp = Config.StateFile + ".tmp";
  std::string SaveError;
  if (!Sched.saveState(Tmp, &SaveError, &Collector.getHighWater()) ||
      Fs.rename(Tmp, Config.StateFile, &SaveError) != FsStatus::Ok) {
    Fs.remove(Tmp);
    ++Stats.CheckpointFailures;
    DM.CheckpointFailures.inc();
    if (Error)
      *Error = SaveError;
    return false;
  }
  ++Stats.Checkpoints;
  DM.Checkpoints.inc();
  LastCheckpointNs.store(clock().nowNs(), std::memory_order_relaxed);
  return true;
}

void CollectorDaemon::writeMetricsSnapshot() {
  DaemonMetrics &DM = DaemonMetrics::get();
  std::string Path =
      Config.MetricsJsonPath.empty() ? "metrics.json" : Config.MetricsJsonPath;
  std::string Doc =
      obs::metricsToJson(obs::MetricsRegistry::global().snapshot());
  // Temp + rename so a reader polling the path never sees a torn file.
  std::string Tmp = Path + ".tmp";
  FsOps &Fs = fsOps();
  if (Fs.writeFile(Tmp, Doc) != FsStatus::Ok ||
      Fs.rename(Tmp, Path) != FsStatus::Ok) {
    Fs.remove(Tmp);
    ++Stats.MetricsSnapshotFailures;
    DM.MetricsSnapshotFailures.inc();
    return;
  }
  ++Stats.MetricsSnapshots;
  DM.MetricsSnapshots.inc();
}

void CollectorDaemon::publishStatus() {
  DaemonStatus S;
  S.Cycle = Stats.Cycles;
  S.UptimeNs = uptimeNs();
  S.LastCheckpointNs = LastCheckpointNs.load(std::memory_order_relaxed);
  for (const std::string &Name : fsOps().listDir(Config.Collector.SpoolDir))
    if (endsWith(Name, ".ers"))
      ++S.SpoolDepth;
  S.PendingAckFiles = Collector.pendingAckCount();
  S.ClaimRetries = Collector.getStats().ClaimRetries;
  S.ClaimFailures = Collector.getStats().ClaimFailures;
  S.Preemptions = Sched.totalPreemptions();
  S.Stats = Stats;
  S.Campaigns = Sched.campaignStatuses();
  std::lock_guard<std::mutex> Lock(StatusMu);
  Status = std::move(S);
}

DaemonStatus CollectorDaemon::statusSnapshot() const {
  std::lock_guard<std::mutex> Lock(StatusMu);
  return Status;
}

bool CollectorDaemon::runCycle(std::string *Error) {
  if (!start(Error))
    return false;
  DaemonMetrics &DM = DaemonMetrics::get();
  obs::ScopedSpan Span("daemon.cycle", "daemon");
  Span.arg("cycle", Stats.Cycles);
  ++Stats.Cycles;
  DM.Cycles.inc();
  Watchdog.arm(Stats.Cycles);

  // 1. Drain. A cycle whose drain fails even after retries still steps
  // campaigns — existing work must not starve behind a sick disk.
  std::string DrainError;
  bool Drained = drainWithRetry(&DrainError);
  Span.arg("drained", static_cast<uint64_t>(Drained));

  // 2. Advance campaigns incrementally; new reports merged by drain feed
  // existing buckets without restarting them.
  setPhase(DaemonPhase::Stepping);
  unsigned Steps = Sched.stepCampaigns(Config.MaxStepsPerCycle);
  Stats.StepsRun += Steps;
  DM.Steps.add(Steps);
  Span.arg("steps", static_cast<uint64_t>(Steps));

  // 3. Checkpoint, then 4. ack: records become removable only once the
  // state that owns them is durable. A failed checkpoint simply leaves
  // the files claimed — the next cycle's checkpoint acks them.
  setPhase(DaemonPhase::Checkpointing);
  if (checkpoint(Error)) {
    size_t Acked = Collector.ackDrained();
    Stats.FilesAcked += Acked;
    DM.FilesAcked.add(Acked);
    Span.arg("acked", static_cast<uint64_t>(Acked));
  }

  if (Config.MetricsEveryCycles &&
      Stats.Cycles % Config.MetricsEveryCycles == 0)
    writeMetricsSnapshot();

  DM.UptimeNs.set(static_cast<int64_t>(uptimeNs()));
  publishStatus();
  // Disarm last: an overdue cycle records its trip even when nothing
  // polled /healthz while it was stuck.
  Watchdog.disarm();
  setPhase(DaemonPhase::Idle);
  return true;
}

bool CollectorDaemon::runLoop(std::string *Error) {
  if (!start(Error))
    return false;
  bool Ok = true;
  for (;;) {
    if (!runCycle(Error)) {
      Ok = false;
      break;
    }
    if (stopRequested())
      break;
    if (Config.MaxCycles && Stats.Cycles >= Config.MaxCycles)
      break;
    sleepMs(Config.DrainIntervalMs);
    if (stopRequested())
      break;
  }
  setPhase(DaemonPhase::Stopping);
  if (Ok) {
    // Clean shutdown: one final checkpoint so nothing stepped since the
    // last cycle's checkpoint is lost (counted like any other checkpoint).
    if (checkpoint(Error))
      Stats.FilesAcked += Collector.ackDrained();
    else
      Ok = Config.StateFile.empty();
    publishStatus();
  }
  // The listener answered "stopping" during the final checkpoint; now the
  // daemon is done serving.
  if (Http)
    Http->stop();
  return Ok;
}

//===----------------------------------------------------------------------===//
// Live endpoints
//===----------------------------------------------------------------------===//

net::HttpResponse CollectorDaemon::renderHealthz() {
  // Liveness is implied by answering at all; the body carries readiness.
  bool WatchdogTripped = Watchdog.poll();
  bool Stopping =
      stopRequested() || phase() == DaemonPhase::Stopping;
  net::HttpResponse R;
  std::string Body;
  if (WatchdogTripped) {
    R.Status = 503;
    Body += "status: unhealthy\n";
  } else if (Stopping) {
    R.Status = 503;
    Body += "status: shutting down\n";
  } else {
    R.Status = 200;
    Body += "status: ok\n";
  }
  Body += "phase: ";
  Body += daemonPhaseName(Stopping ? DaemonPhase::Stopping : phase());
  Body += '\n';
  if (Watchdog.enabled()) {
    Body += "watchdog: ";
    Body += WatchdogTripped ? "tripped" : "armed";
    Body += "\nwatchdog_trips: " + std::to_string(Watchdog.trips());
    if (Watchdog.trips())
      Body +=
          "\nwatchdog_last_trip_cycle: " + std::to_string(Watchdog.lastTripCycle());
    Body += '\n';
  }
  R.Body = std::move(Body);
  return R;
}

net::HttpResponse CollectorDaemon::renderStatus() {
  DaemonStatus S = statusSnapshot();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("cycle", S.Cycle);
  W.kv("phase", daemonPhaseName(phase()));
  W.kv("uptime_ns", S.UptimeNs);
  W.kv("last_checkpoint_ns", S.LastCheckpointNs);
  W.kv("spool_depth", static_cast<uint64_t>(S.SpoolDepth));
  W.kv("pending_ack_files", static_cast<uint64_t>(S.PendingAckFiles));
  W.kv("claim_retries", S.ClaimRetries);
  W.kv("claim_failures", S.ClaimFailures);
  W.kv("preemptions", S.Preemptions);
  W.key("stats");
  W.beginObject();
  W.kv("cycles", S.Stats.Cycles);
  W.kv("drains", S.Stats.Drains);
  W.kv("drain_retries", S.Stats.DrainRetries);
  W.kv("drain_failures", S.Stats.DrainFailures);
  W.kv("steps_run", S.Stats.StepsRun);
  W.kv("checkpoints", S.Stats.Checkpoints);
  W.kv("checkpoint_failures", S.Stats.CheckpointFailures);
  W.kv("files_acked", S.Stats.FilesAcked);
  W.kv("files_recovered", S.Stats.FilesRecovered);
  W.kv("metrics_snapshots", S.Stats.MetricsSnapshots);
  W.endObject();
  W.key("watchdog");
  W.beginObject();
  W.kv("enabled", Watchdog.enabled());
  W.kv("tripped", Watchdog.tripped());
  W.kv("trips", Watchdog.trips());
  W.kv("last_trip_cycle", Watchdog.lastTripCycle());
  W.endObject();
  W.key("campaigns");
  W.beginArray();
  for (const CampaignStatus &C : S.Campaigns) {
    W.beginObject();
    W.kv("bug_id", C.BugId);
    W.kv("sig", C.SigHex);
    W.kv("occurrences", C.Occurrences);
    W.kv("phase", campaignPhaseName(C.Phase));
    W.kv("iterations_done", C.IterationsDone);
    W.kv("reproduced", C.Reproduced);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  net::HttpResponse R;
  R.ContentType = "application/json; charset=utf-8";
  R.Body = W.take();
  R.Body += '\n';
  return R;
}

net::HttpResponse CollectorDaemon::handleHttp(const net::HttpRequest &Req) {
  std::string Path = Req.Path.substr(0, Req.Path.find('?'));
  if (Path == "/metrics") {
    // A scrape is also a watchdog evaluation: a wedged daemon thread
    // cannot poll its own deadline.
    Watchdog.poll();
    net::HttpResponse R;
    R.ContentType = obs::promContentType();
    R.Body =
        obs::metricsToPrometheus(obs::MetricsRegistry::global().snapshot());
    return R;
  }
  if (Path == "/healthz")
    return renderHealthz();
  if (Path == "/status")
    return renderStatus();
  return {404, "text/plain; charset=utf-8", "not found\n"};
}
