//===- CollectorDaemon.cpp - Long-running spool collector -------------------===//

#include "ingest/CollectorDaemon.h"

#include "ingest/ReportCodec.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PromExport.h"
#include "obs/Tracer.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace er;

namespace {
struct DaemonMetrics {
  obs::Counter &Cycles, &Drains, &DrainRetries, &DrainFailures;
  obs::Counter &Steps, &Checkpoints, &CheckpointFailures, &FilesAcked;
  obs::Counter &MetricsSnapshots, &MetricsSnapshotFailures;
  obs::Gauge &UptimeNs, &DrainIntervalNs;
  obs::Counter &Accelerated, &EarlyWakes;
  obs::Gauge &AdaptiveIntervalMs;

  static DaemonMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static DaemonMetrics M{Reg.counter("daemon.cycles"),
                           Reg.counter("daemon.drains"),
                           Reg.counter("daemon.drain.retries"),
                           Reg.counter("daemon.drain.failures"),
                           Reg.counter("daemon.steps"),
                           Reg.counter("daemon.checkpoints"),
                           Reg.counter("daemon.checkpoint.failures"),
                           Reg.counter("daemon.files.acked"),
                           Reg.counter("daemon.metrics.snapshots"),
                           Reg.counter("daemon.metrics.snapshot.failures"),
                           Reg.gauge("daemon.uptime_ns"),
                           Reg.gauge("daemon.drain_interval_ns"),
                           Reg.counter("daemon.adaptive.accelerated"),
                           Reg.counter("daemon.adaptive.early_wakes"),
                           Reg.gauge("daemon.adaptive.interval_ms")};
    return M;
  }
};

struct UploadMetrics {
  obs::Counter &Accepted, &Records, &Bytes;
  obs::Counter &Rejected, &Throttled, &Quarantined;

  static UploadMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static UploadMetrics M{Reg.counter("ingest.upload.accepted"),
                           Reg.counter("ingest.upload.records"),
                           Reg.counter("ingest.upload.bytes"),
                           Reg.counter("ingest.upload.rejected"),
                           Reg.counter("ingest.upload.throttled"),
                           Reg.counter("ingest.upload.quarantined")};
    return M;
  }
};

/// With a checkpoint file the daemon owns durability: the collector must
/// not remove drained files before the checkpoint lands, and must not
/// persist a separate high-water file that could diverge from it.
CollectorConfig adjustForDaemon(CollectorConfig CC, bool HasStateFile) {
  if (HasStateFile) {
    CC.DeferRemoval = true;
    CC.PersistHighWater = false;
  }
  return CC;
}

obs::WatchdogConfig watchdogConfig(const DaemonConfig &DC) {
  obs::WatchdogConfig WC;
  WC.DeadlineMs = DC.CycleDeadlineMs;
  WC.Clock = DC.Clock;
  WC.DiagnosticsDir = DC.StallDiagDir;
  WC.Fs = DC.Collector.Fs;
  return WC;
}
} // namespace


const char *er::daemonPhaseName(DaemonPhase P) {
  switch (P) {
  case DaemonPhase::Idle:
    return "idle";
  case DaemonPhase::Draining:
    return "draining";
  case DaemonPhase::Backoff:
    return "backoff";
  case DaemonPhase::Stepping:
    return "stepping";
  case DaemonPhase::Checkpointing:
    return "checkpointing";
  case DaemonPhase::Stopping:
    return "stopping";
  }
  return "unknown";
}

CollectorDaemon::CollectorDaemon(DaemonConfig Config, FleetScheduler &Sched)
    : Config(Config), Sched(Sched),
      Collector(adjustForDaemon(Config.Collector, !Config.StateFile.empty())),
      Pressure(Config.Collector.SpoolDir, Config.Pressure,
               Config.Collector.Fs),
      Watchdog(watchdogConfig(Config)) {}

ClockSource &CollectorDaemon::clock() const {
  return Config.Clock ? *Config.Clock : ClockSource::real();
}

FsOps &CollectorDaemon::fsOps() const {
  return Config.Collector.Fs ? *Config.Collector.Fs : FsOps::real();
}

uint64_t CollectorDaemon::uptimeNs() const {
  uint64_t Now = clock().nowNs();
  // A backwards clock jump must clamp, not wrap the unsigned difference.
  return Now >= StartNs ? Now - StartNs : 0;
}

void CollectorDaemon::sleepMs(uint64_t Ms) {
  if (!Ms)
    return;
  if (Config.Sleep) {
    Config.Sleep(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool CollectorDaemon::start(std::string *Error) {
  if (Started)
    return true;
  FsOps &Fs = fsOps();
  if (!Config.StateFile.empty() && Fs.exists(Config.StateFile)) {
    std::map<uint64_t, uint64_t> HighWater;
    if (!Sched.loadState(Config.StateFile, Error, &HighWater))
      return false; // Corrupt checkpoint: refuse rather than double-count.
    Collector.setHighWater(std::move(HighWater));
  }
  // A previous life may have died between a drain and its checkpoint;
  // its claimed files still hold records nobody durably owns. Un-claim
  // them so this life's first drain re-delivers (the restored high-water
  // marks drop anything the old checkpoint did own).
  Stats.FilesRecovered += Collector.recoverClaimedFiles();
  StartNs = clock().nowNs();
  DaemonMetrics::get().DrainIntervalNs.set(
      static_cast<int64_t>(Config.DrainIntervalMs * 1000000));
  // The live telemetry listener comes up last, once the state it serves
  // is recovered. A listener that cannot bind is a startup failure — an
  // operator who asked for telemetry must not silently run blind.
  if (!Config.Listen.empty() && !Http) {
    net::HttpServerConfig HC = Config.Http;
    if (!net::parseHostPort(Config.Listen, HC.Host, HC.Port, Error))
      return false;
    Http = std::make_unique<net::HttpServer>(
        HC, [this](const net::HttpRequest &Req) { return handleHttp(Req); });
    if (!Http->start(Error)) {
      Http.reset();
      return false;
    }
  }
  publishStatus(); // /status answers sensibly before the first cycle.
  Started = true;
  return true;
}

bool CollectorDaemon::drainWithRetry(std::string *Error) {
  DaemonMetrics &DM = DaemonMetrics::get();
  uint64_t BackoffMs = Config.RetryBackoffBaseMs;
  std::string DrainError;
  for (unsigned Attempt = 0;; ++Attempt) {
    setPhase(DaemonPhase::Draining);
    if (Collector.drainInto(Sched, &DrainError)) {
      ++Stats.Drains;
      DM.Drains.inc();
      return true;
    }
    if (Attempt >= Config.MaxDrainRetries)
      break;
    // Transient I/O (EIO on the quarantine dir, the high-water file, ...):
    // back off and retry within the cycle. Doubling with a cap keeps the
    // worst case bounded while not hammering a struggling disk.
    ++Stats.DrainRetries;
    DM.DrainRetries.inc();
    setPhase(DaemonPhase::Backoff);
    sleepMs(BackoffMs);
    BackoffMs = std::min(BackoffMs * 2, Config.RetryBackoffCapMs);
  }
  ++Stats.DrainFailures;
  DM.DrainFailures.inc();
  if (Error)
    *Error = DrainError;
  return false;
}

bool CollectorDaemon::checkpoint(std::string *Error) {
  if (Config.StateFile.empty())
    return true;
  DaemonMetrics &DM = DaemonMetrics::get();
  FsOps &Fs = fsOps();
  // Fleet state + high-water marks written as one file, published by one
  // atomic rename: the two can never be observed out of sync.
  std::string Tmp = Config.StateFile + ".tmp";
  std::string SaveError;
  if (!Sched.saveState(Tmp, &SaveError, &Collector.getHighWater()) ||
      Fs.rename(Tmp, Config.StateFile, &SaveError) != FsStatus::Ok) {
    Fs.remove(Tmp);
    ++Stats.CheckpointFailures;
    DM.CheckpointFailures.inc();
    if (Error)
      *Error = SaveError;
    return false;
  }
  ++Stats.Checkpoints;
  DM.Checkpoints.inc();
  LastCheckpointNs.store(clock().nowNs(), std::memory_order_relaxed);
  return true;
}

void CollectorDaemon::writeMetricsSnapshot() {
  DaemonMetrics &DM = DaemonMetrics::get();
  std::string Path =
      Config.MetricsJsonPath.empty() ? "metrics.json" : Config.MetricsJsonPath;
  std::string Doc =
      obs::metricsToJson(obs::MetricsRegistry::global().snapshot());
  // Temp + rename so a reader polling the path never sees a torn file.
  std::string Tmp = Path + ".tmp";
  FsOps &Fs = fsOps();
  if (Fs.writeFile(Tmp, Doc) != FsStatus::Ok ||
      Fs.rename(Tmp, Path) != FsStatus::Ok) {
    Fs.remove(Tmp);
    ++Stats.MetricsSnapshotFailures;
    DM.MetricsSnapshotFailures.inc();
    return;
  }
  ++Stats.MetricsSnapshots;
  DM.MetricsSnapshots.inc();
}

void CollectorDaemon::publishStatus() {
  // One spool scan serves both the status snapshot and the pressure
  // signal (gauges, 429/503 decisions, adaptive schedule).
  Pressure.sample();
  // Accept-shed tracks the critical watermark with the same hysteresis
  // as the signal itself.
  if (Http)
    Http->setAcceptShed(Pressure.level() == PressureLevel::Critical);

  DaemonStatus S;
  S.Cycle = Stats.Cycles;
  S.UptimeNs = uptimeNs();
  S.LastCheckpointNs = LastCheckpointNs.load(std::memory_order_relaxed);
  S.SpoolDepth = Pressure.sampledFiles();
  S.SpoolBytes = Pressure.sampledBytes();
  S.PressureRatio = Pressure.ratio();
  S.Pressure = Pressure.level();
  S.UploadsAccepted = UploadsAccepted.load(std::memory_order_relaxed);
  S.UploadsRejected = UploadsRejected.load(std::memory_order_relaxed);
  S.UploadsThrottled = UploadsThrottled.load(std::memory_order_relaxed);
  S.LastDrainDelayMs = LastDrainDelayMs.load(std::memory_order_relaxed);
  S.EarlyWakes = EarlyWakes.load(std::memory_order_relaxed);
  S.PendingAckFiles = Collector.pendingAckCount();
  S.ClaimRetries = Collector.getStats().ClaimRetries;
  S.ClaimFailures = Collector.getStats().ClaimFailures;
  S.Preemptions = Sched.totalPreemptions();
  S.Stats = Stats;
  S.Campaigns = Sched.campaignStatuses();
  std::lock_guard<std::mutex> Lock(StatusMu);
  Status = std::move(S);
}

DaemonStatus CollectorDaemon::statusSnapshot() const {
  std::lock_guard<std::mutex> Lock(StatusMu);
  return Status;
}

bool CollectorDaemon::runCycle(std::string *Error) {
  if (!start(Error))
    return false;
  DaemonMetrics &DM = DaemonMetrics::get();
  obs::ScopedSpan Span("daemon.cycle", "daemon");
  Span.arg("cycle", Stats.Cycles);
  ++Stats.Cycles;
  DM.Cycles.inc();
  Watchdog.arm(Stats.Cycles);

  // 1. Drain. A cycle whose drain fails even after retries still steps
  // campaigns — existing work must not starve behind a sick disk.
  uint64_t ClaimedBefore = Collector.getStats().FilesClaimed;
  std::string DrainError;
  bool Drained = drainWithRetry(&DrainError);
  Span.arg("drained", static_cast<uint64_t>(Drained));
  // How much this drain swallowed is the adaptive schedule's arrival-rate
  // term: a cycle that claimed a full batch implies more is coming at
  // this cadence, even though the spool now scans empty.
  DrainedLastCycle.store(Collector.getStats().FilesClaimed - ClaimedBefore,
                         std::memory_order_relaxed);

  // 2. Advance campaigns incrementally; new reports merged by drain feed
  // existing buckets without restarting them.
  setPhase(DaemonPhase::Stepping);
  unsigned Steps = Sched.stepCampaigns(Config.MaxStepsPerCycle);
  Stats.StepsRun += Steps;
  DM.Steps.add(Steps);
  Span.arg("steps", static_cast<uint64_t>(Steps));

  // 3. Checkpoint, then 4. ack: records become removable only once the
  // state that owns them is durable. A failed checkpoint simply leaves
  // the files claimed — the next cycle's checkpoint acks them.
  setPhase(DaemonPhase::Checkpointing);
  if (checkpoint(Error)) {
    size_t Acked = Collector.ackDrained();
    Stats.FilesAcked += Acked;
    DM.FilesAcked.add(Acked);
    Span.arg("acked", static_cast<uint64_t>(Acked));
  }

  if (Config.MetricsEveryCycles &&
      Stats.Cycles % Config.MetricsEveryCycles == 0)
    writeMetricsSnapshot();

  DM.UptimeNs.set(static_cast<int64_t>(uptimeNs()));
  publishStatus();
  // Disarm last: an overdue cycle records its trip even when nothing
  // polled /healthz while it was stuck.
  Watchdog.disarm();
  setPhase(DaemonPhase::Idle);
  return true;
}

bool CollectorDaemon::runLoop(std::string *Error) {
  if (!start(Error))
    return false;
  bool Ok = true;
  for (;;) {
    if (!runCycle(Error)) {
      Ok = false;
      break;
    }
    if (stopRequested())
      break;
    if (Config.MaxCycles && Stats.Cycles >= Config.MaxCycles)
      break;
    interCycleSleep();
    if (stopRequested())
      break;
  }
  setPhase(DaemonPhase::Stopping);
  if (Ok) {
    // Clean shutdown: one final checkpoint so nothing stepped since the
    // last cycle's checkpoint is lost (counted like any other checkpoint).
    if (checkpoint(Error))
      Stats.FilesAcked += Collector.ackDrained();
    else
      Ok = Config.StateFile.empty();
    publishStatus();
  }
  // The listener answered "stopping" during the final checkpoint; now the
  // daemon is done serving.
  if (Http)
    Http->stop();
  return Ok;
}

uint64_t CollectorDaemon::nextDrainDelayMs() const {
  uint64_t Max = Config.DrainIntervalMs;
  if (!Config.AdaptiveDrain || Max == 0)
    return Max;
  uint64_t Min = Config.MinDrainIntervalMs ? Config.MinDrainIntervalMs
                                           : std::max<uint64_t>(1, Max / 8);
  Min = std::min(Min, Max);
  // Two reasons to hurry: the spool is filling (pressure, which counts
  // uploads landed since the last sample), or the last drain claimed a
  // batch big enough to imply a sustained arrival stream. Either at 1.0
  // pins the delay to the floor; in between the delay scales linearly.
  uint64_t Busy = std::max<uint64_t>(1, Config.AdaptiveBusyFiles);
  double Urgency =
      std::max(Pressure.ratio(),
               static_cast<double>(
                   DrainedLastCycle.load(std::memory_order_relaxed)) /
                   static_cast<double>(Busy));
  Urgency = std::min(Urgency, 1.0);
  return Max - static_cast<uint64_t>(static_cast<double>(Max - Min) * Urgency);
}

void CollectorDaemon::interCycleSleep() {
  DaemonMetrics &DM = DaemonMetrics::get();
  uint64_t Delay = nextDrainDelayMs();
  LastDrainDelayMs.store(Delay, std::memory_order_relaxed);
  DM.AdaptiveIntervalMs.set(static_cast<int64_t>(Delay));
  if (Delay < Config.DrainIntervalMs)
    DM.Accelerated.inc();
  if (!Config.AdaptiveDrain) {
    sleepMs(Delay);
    return;
  }
  // Sleep in floor-sized slices so an upload burst landing mid-interval
  // can pull the next drain forward instead of waiting out the rest.
  uint64_t Slice = std::max<uint64_t>(
      1, Config.MinDrainIntervalMs
             ? Config.MinDrainIntervalMs
             : std::max<uint64_t>(1, Config.DrainIntervalMs / 8));
  uint64_t Slept = 0;
  while (Slept < Delay && !stopRequested()) {
    uint64_t Chunk = std::min(Slice, Delay - Slept);
    sleepMs(Chunk);
    Slept += Chunk;
    if (Slept < Delay && Pressure.ratio() >= 1.0) {
      EarlyWakes.fetch_add(1, std::memory_order_relaxed);
      DM.EarlyWakes.inc();
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Live endpoints
//===----------------------------------------------------------------------===//

net::HttpResponse CollectorDaemon::renderHealthz() {
  // Liveness is implied by answering at all; the body carries readiness.
  bool WatchdogTripped = Watchdog.poll();
  bool Stopping =
      stopRequested() || phase() == DaemonPhase::Stopping;
  net::HttpResponse R;
  std::string Body;
  if (WatchdogTripped) {
    R.Status = 503;
    Body += "status: unhealthy\n";
  } else if (Stopping) {
    R.Status = 503;
    Body += "status: shutting down\n";
  } else {
    R.Status = 200;
    Body += "status: ok\n";
  }
  Body += "phase: ";
  Body += daemonPhaseName(Stopping ? DaemonPhase::Stopping : phase());
  Body += '\n';
  if (Watchdog.enabled()) {
    Body += "watchdog: ";
    Body += WatchdogTripped ? "tripped" : "armed";
    Body += "\nwatchdog_trips: " + std::to_string(Watchdog.trips());
    if (Watchdog.trips())
      Body +=
          "\nwatchdog_last_trip_cycle: " + std::to_string(Watchdog.lastTripCycle());
    Body += '\n';
  }
  R.Body = std::move(Body);
  return R;
}

net::HttpResponse CollectorDaemon::renderStatus() {
  DaemonStatus S = statusSnapshot();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("cycle", S.Cycle);
  W.kv("phase", daemonPhaseName(phase()));
  W.kv("uptime_ns", S.UptimeNs);
  W.kv("last_checkpoint_ns", S.LastCheckpointNs);
  W.kv("spool_depth", static_cast<uint64_t>(S.SpoolDepth));
  W.kv("spool_bytes", S.SpoolBytes);
  W.kv("pending_ack_files", static_cast<uint64_t>(S.PendingAckFiles));
  W.kv("claim_retries", S.ClaimRetries);
  W.kv("claim_failures", S.ClaimFailures);
  W.kv("preemptions", S.Preemptions);
  W.key("pressure");
  W.beginObject();
  W.kv("ratio", S.PressureRatio);
  W.kv("level", pressureLevelName(S.Pressure));
  W.endObject();
  W.key("uploads");
  W.beginObject();
  W.kv("accepted", S.UploadsAccepted);
  W.kv("rejected", S.UploadsRejected);
  W.kv("throttled", S.UploadsThrottled);
  W.endObject();
  W.key("adaptive");
  W.beginObject();
  W.kv("enabled", Config.AdaptiveDrain);
  W.kv("last_delay_ms", S.LastDrainDelayMs);
  W.kv("early_wakes", S.EarlyWakes);
  W.endObject();
  W.key("stats");
  W.beginObject();
  W.kv("cycles", S.Stats.Cycles);
  W.kv("drains", S.Stats.Drains);
  W.kv("drain_retries", S.Stats.DrainRetries);
  W.kv("drain_failures", S.Stats.DrainFailures);
  W.kv("steps_run", S.Stats.StepsRun);
  W.kv("checkpoints", S.Stats.Checkpoints);
  W.kv("checkpoint_failures", S.Stats.CheckpointFailures);
  W.kv("files_acked", S.Stats.FilesAcked);
  W.kv("files_recovered", S.Stats.FilesRecovered);
  W.kv("metrics_snapshots", S.Stats.MetricsSnapshots);
  W.endObject();
  W.key("watchdog");
  W.beginObject();
  W.kv("enabled", Watchdog.enabled());
  W.kv("tripped", Watchdog.tripped());
  W.kv("trips", Watchdog.trips());
  W.kv("last_trip_cycle", Watchdog.lastTripCycle());
  W.endObject();
  W.key("campaigns");
  W.beginArray();
  for (const CampaignStatus &C : S.Campaigns) {
    W.beginObject();
    W.kv("bug_id", C.BugId);
    W.kv("sig", C.SigHex);
    W.kv("occurrences", C.Occurrences);
    W.kv("phase", campaignPhaseName(C.Phase));
    W.kv("iterations_done", C.IterationsDone);
    W.kv("reproduced", C.Reproduced);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  net::HttpResponse R;
  R.ContentType = "application/json; charset=utf-8";
  R.Body = W.take();
  R.Body += '\n';
  return R;
}

net::HttpResponse CollectorDaemon::handleUpload(const net::HttpRequest &Req) {
  UploadMetrics &UM = UploadMetrics::get();
  obs::ScopedSpan Span("ingest.upload", "daemon");
  Span.arg("bytes", static_cast<uint64_t>(Req.Body.size()));

  auto Reject = [&](int Status, const std::string &Why) {
    UploadsRejected.fetch_add(1, std::memory_order_relaxed);
    UM.Rejected.inc();
    Span.arg("rejected", Why);
    net::HttpResponse R;
    R.Status = Status;
    R.Body = Why + "\n";
    return R;
  };

  // Backpressure first: while the spool is past its high watermark the
  // daemon will not even look at the bytes. The client retries after the
  // hint; nothing is lost (the sender still holds the frame).
  if (Pressure.level() != PressureLevel::Ok) {
    UploadsThrottled.fetch_add(1, std::memory_order_relaxed);
    UM.Throttled.inc();
    Span.arg("throttled", uint64_t(1));
    net::HttpResponse R;
    R.Status = 429;
    R.Body = "spool over high watermark; retry later\n";
    R.ExtraHeaders.push_back(
        {"Retry-After", std::to_string(Pressure.retryAfterSeconds())});
    return R;
  }

  if (Req.Body.empty())
    return Reject(400, "empty report frame");

  // Validate the whole frame before publishing anything: header, then
  // every record's length + CRC. The spool must only ever contain files
  // a drain will fully decode.
  const uint8_t *Data = reinterpret_cast<const uint8_t *>(Req.Body.data());
  size_t Size = Req.Body.size(), Offset = 0;
  uint32_t Version = 0;
  DecodeStatus DS = decodeSpoolHeader(Data, Size, Offset, Version);
  uint64_t Records = 0, Machine = 0, FirstSeq = 0;
  while (DS == DecodeStatus::Ok && Offset < Size) {
    FleetFailureReport Rec;
    DS = decodeReport(Data, Size, Offset, Rec);
    if (DS != DecodeStatus::Ok)
      break;
    if (!Records) {
      Machine = Rec.MachineId;
      FirstSeq = Rec.Sequence;
    }
    ++Records;
  }
  if (DS != DecodeStatus::Ok || Records == 0) {
    // A frame that fails CRC/framing goes to the quarantine, exactly
    // where the drain puts a corrupt on-disk file — same triage
    // directory, same operator workflow (docs/INGEST.md).
    FsOps &Fs = fsOps();
    std::string QDir = Config.Collector.SpoolDir + "/quarantine";
    std::string QName = formatString(
        "upload-%016llx.bad",
        (unsigned long long)UploadSeq.fetch_add(1, std::memory_order_relaxed));
    if (Fs.createDirectories(QDir))
      Fs.writeFile(QDir + "/" + QName, Req.Body);
    UM.Quarantined.inc();
    std::string Why = Records == 0 && DS == DecodeStatus::Ok
                          ? std::string("frame contains no records")
                          : std::string("bad frame (") + decodeStatusName(DS) +
                                ")";
    return Reject(400, Why + "; quarantined as " + QName);
  }

  // Publish exactly as a SpoolWriter would: the body IS a spool file.
  // The final name is content-derived — (machine, first sequence) — so a
  // client retrying an upload whose 200 got lost republishes the same
  // name (rename overwrites its twin) and the collector's high-water
  // dedup drops any record a previous drain already owned: exactly-once
  // end-to-end, with zero upload-specific bookkeeping.
  FsOps &Fs = fsOps();
  std::string Base =
      formatString("m%016llx-%016llx", (unsigned long long)Machine,
                   (unsigned long long)FirstSeq);
  std::string Tmp = Config.Collector.SpoolDir + "/" + Base +
                    formatString(".u%llu.tmp",
                                 (unsigned long long)UploadSeq.fetch_add(
                                     1, std::memory_order_relaxed));
  std::string Final = Config.Collector.SpoolDir + "/" + Base + ".ers";
  std::string IoError;
  if (!Fs.createDirectories(Config.Collector.SpoolDir, &IoError) ||
      Fs.writeFile(Tmp, Req.Body, &IoError) != FsStatus::Ok ||
      Fs.rename(Tmp, Final, &IoError) != FsStatus::Ok) {
    Fs.remove(Tmp);
    UploadsRejected.fetch_add(1, std::memory_order_relaxed);
    UM.Rejected.inc();
    net::HttpResponse R;
    R.Status = 500;
    R.Body = "cannot publish upload: " + IoError + "\n";
    return R;
  }

  UploadsAccepted.fetch_add(1, std::memory_order_relaxed);
  UM.Accepted.inc();
  UM.Records.add(Records);
  UM.Bytes.add(Req.Body.size());
  Pressure.addUpload(Req.Body.size());
  Span.arg("records", Records);

  obs::JsonWriter W;
  W.beginObject();
  W.kv("accepted", Records);
  W.kv("machine", Machine);
  W.kv("first_sequence", FirstSeq);
  W.kv("file", Base + ".ers");
  W.endObject();
  net::HttpResponse R;
  R.ContentType = "application/json; charset=utf-8";
  R.Body = W.take();
  R.Body += '\n';
  return R;
}

net::HttpResponse CollectorDaemon::handleHttp(const net::HttpRequest &Req) {
  std::string Path = Req.Path.substr(0, Req.Path.find('?'));
  if (Path == "/report") {
    if (Req.Method != "POST") {
      net::HttpResponse R;
      R.Status = 405;
      R.Body = "/report accepts POST only\n";
      return R;
    }
    return handleUpload(Req);
  }
  if (Req.Method != "GET") {
    net::HttpResponse R;
    R.Status = 404;
    R.Body = "not found\n";
    return R;
  }
  if (Path == "/metrics") {
    // A scrape is also a watchdog evaluation: a wedged daemon thread
    // cannot poll its own deadline.
    Watchdog.poll();
    net::HttpResponse R;
    R.ContentType = obs::promContentType();
    R.Body =
        obs::metricsToPrometheus(obs::MetricsRegistry::global().snapshot());
    return R;
  }
  if (Path == "/healthz")
    return renderHealthz();
  if (Path == "/status")
    return renderStatus();
  net::HttpResponse R;
  R.Status = 404;
  R.Body = "not found\n";
  return R;
}
