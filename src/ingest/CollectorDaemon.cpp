//===- CollectorDaemon.cpp - Long-running spool collector -------------------===//

#include "ingest/CollectorDaemon.h"

#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace er;

namespace {
struct DaemonMetrics {
  obs::Counter &Cycles, &Drains, &DrainRetries, &DrainFailures;
  obs::Counter &Steps, &Checkpoints, &CheckpointFailures, &FilesAcked;
  obs::Gauge &UptimeNs, &DrainIntervalNs;

  static DaemonMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static DaemonMetrics M{Reg.counter("daemon.cycles"),
                           Reg.counter("daemon.drains"),
                           Reg.counter("daemon.drain.retries"),
                           Reg.counter("daemon.drain.failures"),
                           Reg.counter("daemon.steps"),
                           Reg.counter("daemon.checkpoints"),
                           Reg.counter("daemon.checkpoint.failures"),
                           Reg.counter("daemon.files.acked"),
                           Reg.gauge("daemon.uptime_ns"),
                           Reg.gauge("daemon.drain_interval_ns")};
    return M;
  }
};

/// With a checkpoint file the daemon owns durability: the collector must
/// not remove drained files before the checkpoint lands, and must not
/// persist a separate high-water file that could diverge from it.
CollectorConfig adjustForDaemon(CollectorConfig CC, bool HasStateFile) {
  if (HasStateFile) {
    CC.DeferRemoval = true;
    CC.PersistHighWater = false;
  }
  return CC;
}
} // namespace

CollectorDaemon::CollectorDaemon(DaemonConfig Config, FleetScheduler &Sched)
    : Config(Config), Sched(Sched),
      Collector(adjustForDaemon(Config.Collector, !Config.StateFile.empty())) {
}

ClockSource &CollectorDaemon::clock() const {
  return Config.Clock ? *Config.Clock : ClockSource::real();
}

uint64_t CollectorDaemon::uptimeNs() const {
  uint64_t Now = clock().nowNs();
  // A backwards clock jump must clamp, not wrap the unsigned difference.
  return Now >= StartNs ? Now - StartNs : 0;
}

void CollectorDaemon::sleepMs(uint64_t Ms) {
  if (!Ms)
    return;
  if (Config.Sleep) {
    Config.Sleep(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool CollectorDaemon::start(std::string *Error) {
  if (Started)
    return true;
  FsOps &Fs = Config.Collector.Fs ? *Config.Collector.Fs : FsOps::real();
  if (!Config.StateFile.empty() && Fs.exists(Config.StateFile)) {
    std::map<uint64_t, uint64_t> HighWater;
    if (!Sched.loadState(Config.StateFile, Error, &HighWater))
      return false; // Corrupt checkpoint: refuse rather than double-count.
    Collector.setHighWater(std::move(HighWater));
  }
  // A previous life may have died between a drain and its checkpoint;
  // its claimed files still hold records nobody durably owns. Un-claim
  // them so this life's first drain re-delivers (the restored high-water
  // marks drop anything the old checkpoint did own).
  Stats.FilesRecovered += Collector.recoverClaimedFiles();
  StartNs = clock().nowNs();
  DaemonMetrics::get().DrainIntervalNs.set(
      static_cast<int64_t>(Config.DrainIntervalMs * 1000000));
  Started = true;
  return true;
}

bool CollectorDaemon::drainWithRetry(std::string *Error) {
  DaemonMetrics &DM = DaemonMetrics::get();
  uint64_t BackoffMs = Config.RetryBackoffBaseMs;
  std::string DrainError;
  for (unsigned Attempt = 0;; ++Attempt) {
    if (Collector.drainInto(Sched, &DrainError)) {
      ++Stats.Drains;
      DM.Drains.inc();
      return true;
    }
    if (Attempt >= Config.MaxDrainRetries)
      break;
    // Transient I/O (EIO on the quarantine dir, the high-water file, ...):
    // back off and retry within the cycle. Doubling with a cap keeps the
    // worst case bounded while not hammering a struggling disk.
    ++Stats.DrainRetries;
    DM.DrainRetries.inc();
    sleepMs(BackoffMs);
    BackoffMs = std::min(BackoffMs * 2, Config.RetryBackoffCapMs);
  }
  ++Stats.DrainFailures;
  DM.DrainFailures.inc();
  if (Error)
    *Error = DrainError;
  return false;
}

bool CollectorDaemon::checkpoint(std::string *Error) {
  if (Config.StateFile.empty())
    return true;
  DaemonMetrics &DM = DaemonMetrics::get();
  FsOps &Fs = Config.Collector.Fs ? *Config.Collector.Fs : FsOps::real();
  // Fleet state + high-water marks written as one file, published by one
  // atomic rename: the two can never be observed out of sync.
  std::string Tmp = Config.StateFile + ".tmp";
  std::string SaveError;
  if (!Sched.saveState(Tmp, &SaveError, &Collector.getHighWater()) ||
      Fs.rename(Tmp, Config.StateFile, &SaveError) != FsStatus::Ok) {
    Fs.remove(Tmp);
    ++Stats.CheckpointFailures;
    DM.CheckpointFailures.inc();
    if (Error)
      *Error = SaveError;
    return false;
  }
  ++Stats.Checkpoints;
  DM.Checkpoints.inc();
  return true;
}

bool CollectorDaemon::runCycle(std::string *Error) {
  if (!start(Error))
    return false;
  DaemonMetrics &DM = DaemonMetrics::get();
  obs::ScopedSpan Span("daemon.cycle", "daemon");
  Span.arg("cycle", Stats.Cycles);
  ++Stats.Cycles;
  DM.Cycles.inc();

  // 1. Drain. A cycle whose drain fails even after retries still steps
  // campaigns — existing work must not starve behind a sick disk.
  std::string DrainError;
  bool Drained = drainWithRetry(&DrainError);
  Span.arg("drained", static_cast<uint64_t>(Drained));

  // 2. Advance campaigns incrementally; new reports merged by drain feed
  // existing buckets without restarting them.
  unsigned Steps = Sched.stepCampaigns(Config.MaxStepsPerCycle);
  Stats.StepsRun += Steps;
  DM.Steps.add(Steps);
  Span.arg("steps", static_cast<uint64_t>(Steps));

  // 3. Checkpoint, then 4. ack: records become removable only once the
  // state that owns them is durable. A failed checkpoint simply leaves
  // the files claimed — the next cycle's checkpoint acks them.
  if (checkpoint(Error)) {
    size_t Acked = Collector.ackDrained();
    Stats.FilesAcked += Acked;
    DM.FilesAcked.add(Acked);
    Span.arg("acked", static_cast<uint64_t>(Acked));
  }

  DM.UptimeNs.set(static_cast<int64_t>(uptimeNs()));
  return true;
}

bool CollectorDaemon::runLoop(std::string *Error) {
  if (!start(Error))
    return false;
  for (;;) {
    if (!runCycle(Error))
      return false;
    if (stopRequested())
      break;
    if (Config.MaxCycles && Stats.Cycles >= Config.MaxCycles)
      break;
    sleepMs(Config.DrainIntervalMs);
    if (stopRequested())
      break;
  }
  // Clean shutdown: one final checkpoint so nothing stepped since the
  // last cycle's checkpoint is lost (counted like any other checkpoint).
  if (checkpoint(Error)) {
    Stats.FilesAcked += Collector.ackDrained();
    return true;
  }
  return Config.StateFile.empty();
}
