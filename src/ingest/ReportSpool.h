//===- ReportSpool.h - Atomic spool-directory transport ---------*- C++ -*-===//
///
/// \file
/// The filesystem transport between production machines and the collector
/// (docs/INGEST.md). A spool directory holds complete, immutable report
/// files; the protocol invariants are:
///
///  - **Writers never expose partial files.** SpoolWriter streams records
///    into a hidden `*.tmp` file and publishes it with one atomic
///    rename(2) to `m<machine>-<firstseq>.ers`. A writer crash leaves at
///    most a stale `.tmp`, which readers skip (and count) — never a
///    half-visible `.ers`.
///  - **Readers claim before reading.** claimSpoolFile renames the file
///    to `*.ers.claimed` first; rename is atomic, so of N racing
///    collectors exactly one owns each file and a record is consumed at
///    most once at the transport layer (exactly once end-to-end, together
///    with the collector's (machine, sequence) dedup).
///
//===----------------------------------------------------------------------===//

#ifndef ER_INGEST_REPORTSPOOL_H
#define ER_INGEST_REPORTSPOOL_H

#include "fleet/FleetScheduler.h"
#include "support/Fs.h"

#include <cstdint>
#include <string>
#include <vector>

namespace er {

/// Appends failure reports from one machine to a spool directory. One
/// writer per (machine, process); not thread-safe — concurrent *writers*
/// are expected to be distinct processes (or instances) sharing only the
/// directory.
class SpoolWriter {
public:
  /// \p FirstSequence seeds the per-machine monotonic sequence stamped
  /// onto appended reports (1-based; a restarted machine must resume past
  /// its last published sequence to keep dedup correct). \p Fs is the
  /// filesystem seam (null = the real filesystem).
  SpoolWriter(std::string SpoolDir, uint64_t MachineId,
              uint64_t FirstSequence = 1, FsOps *Fs = nullptr);

  /// Buffers one report, stamping MachineId and the next sequence number
  /// (any Sequence/MachineId already set on \p R is overwritten).
  void append(const FleetFailureReport &R);

  /// Publishes all buffered records as one spool file (write-to-temp +
  /// atomic rename). No-op on an empty buffer. Returns false (and sets
  /// \p Error) on I/O failure; the temp file is removed on failure.
  bool flush(std::string *Error = nullptr);

  /// Drains the buffer as one complete spool *frame* — the exact byte
  /// stream flush() would have published (header + records) — for
  /// transports other than the local filesystem, e.g. the `POST /report`
  /// body (docs/INGEST.md "Wire ingestion"). Empty when nothing is
  /// buffered. The sequence counter advances exactly as with flush(), so
  /// a writer may interleave both paths.
  std::string takeFrame();

  /// Records currently buffered (i.e. what the next flush/takeFrame
  /// publishes).
  unsigned bufferedRecords() const { return BufferedRecords; }

  /// Sequence number the next append will be stamped with.
  uint64_t nextSequence() const { return NextSequence; }
  uint64_t machineId() const { return MachineId; }

private:
  std::string SpoolDir;
  uint64_t MachineId;
  uint64_t NextSequence;
  FsOps &Fs;
  /// Encoded records awaiting flush (header is prepended at flush time).
  std::vector<uint8_t> Buffer;
  uint64_t BufferFirstSequence = 0;
  unsigned BufferedRecords = 0;
};

/// Published (unclaimed) spool file names in \p SpoolDir, sorted
/// lexicographically for deterministic scan order. Skips `.tmp`,
/// `.claimed`, and anything else that is not a `*.ers` regular file;
/// \p StaleTemps (optional) receives the number of `*.tmp` files seen.
std::vector<std::string> listSpoolFiles(const std::string &SpoolDir,
                                        uint64_t *StaleTemps = nullptr,
                                        FsOps *Fs = nullptr);

/// How a claim attempt ended.
struct ClaimOutcome {
  /// Path of the claimed file; empty when the claim did not succeed.
  std::string ClaimedPath;
  /// Transient-failure retries performed (successful or not).
  unsigned Retries = 0;
  /// True when the claim was abandoned because every attempt hit a
  /// transient I/O error — the file is still published and a later drain
  /// will see it again. False for the benign outcome (another collector
  /// claimed the file first / it vanished).
  bool TransientFailure = false;
};

/// Atomically claims `SpoolDir/Name` by renaming it to `Name + ".claimed"`.
/// A rename that fails with a transient I/O error is retried up to
/// \p MaxRetries times — the file is still there, so dropping it from the
/// batch would delay its records by a full drain interval for no reason. A
/// NotFound outcome is never retried: the file was claimed by a racing
/// collector, which is the protocol working as intended.
ClaimOutcome claimSpoolFileWithRetry(const std::string &SpoolDir,
                                     const std::string &Name,
                                     unsigned MaxRetries = 3,
                                     FsOps *Fs = nullptr);

/// Single-attempt claim. Returns the claimed path, or "" if the file
/// vanished, another reader claimed it first, or the rename failed.
std::string claimSpoolFile(const std::string &SpoolDir,
                           const std::string &Name);

} // namespace er

#endif // ER_INGEST_REPORTSPOOL_H
