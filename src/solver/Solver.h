//===- Solver.h - Budgeted bitvector/array constraint solver ----*- C++ -*-===//
///
/// \file
/// The query interface used by shepherded symbolic execution. A query is a
/// conjunction of boolean expressions over bitvectors and arrays; the solver
/// eliminates array terms (read-over-write expansion and symbolic-index
/// case splits), bit-blasts the result, and runs the CDCL core.
///
/// Every query runs under a deterministic work budget charged by array
/// expansion fan-out, gates encoded, and SAT conflicts. Budget exhaustion is
/// reported as QueryStatus::Timeout — the stall signal at the center of the
/// ER paper: queries over long symbolic write chains or large symbolic
/// objects are exactly the ones that exhaust it.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SOLVER_SOLVER_H
#define ER_SOLVER_SOLVER_H

#include "solver/Expr.h"

#include <cstdint>
#include <vector>

namespace er {

class SolverResultCache; // SolverCache.h

/// Outcome of one solver query.
enum class QueryStatus { Sat, Unsat, Timeout };

const char *queryStatusName(QueryStatus S);

/// Tuning knobs for the solver; WorkBudget is the stall threshold.
struct SolverConfig {
  /// Total abstract work units a single query may consume. Array expansions
  /// charge (chain length + domain size) x element width; gates charge 1;
  /// SAT conflicts charge ConflictCost.
  uint64_t WorkBudget = 4'000'000;
  /// Work units charged per SAT conflict.
  uint64_t ConflictCost = 64;
  /// Work units charged per SAT propagation.
  uint64_t PropagationCost = 1;
  /// Wall-clock ceiling per query, in seconds (the analog of the paper's
  /// 30s solver timeout; a backstop over the deterministic work budget).
  double WallSecondsBudget = 5.0;
  /// Optional shared memoization cache consulted by checkSat and
  /// enumerateValues. The cache is thread-safe and may be shared across
  /// solvers on different threads (the fleet scheduler shares one across
  /// all campaigns); it is not owned and must outlive the solver. Cached
  /// answers are byte-identical to fresh solves, so enabling the cache
  /// never changes reconstruction results — only their cost.
  SolverResultCache *SharedCache = nullptr;
};

/// Result of a checkSat query.
struct QueryResult {
  QueryStatus Status = QueryStatus::Timeout;
  Assignment Model; ///< Valid when Status == Sat.
  uint64_t WorkUsed = 0;
};

/// Cumulative statistics across queries.
struct SolverTotals {
  uint64_t Queries = 0;
  uint64_t SatQueries = 0;
  uint64_t UnsatQueries = 0;
  uint64_t Timeouts = 0;
  uint64_t TotalWork = 0;
  uint64_t ArrayExpansions = 0;
  uint64_t MaxLoweredNodes = 0;
};

/// Budgeted solver for conjunctions of constraints.
class ConstraintSolver {
public:
  ConstraintSolver(ExprContext &Ctx, SolverConfig Config = SolverConfig());

  /// Decides satisfiability of the conjunction of \p Assertions. On Sat,
  /// the result carries a model assigning every free variable the encoding
  /// touched. \p BudgetOverride (if nonzero) replaces the configured budget
  /// for this query only.
  QueryResult checkSat(const std::vector<ExprRef> &Assertions,
                       uint64_t BudgetOverride = 0);

  /// Returns Unsat if \p E is implied by \p Assertions (i.e. assertions and
  /// !E are inconsistent); Sat if a counterexample exists.
  QueryStatus mustBeTrue(const std::vector<ExprRef> &Assertions, ExprRef E,
                         bool &Result);

  /// Enumerates up to \p MaxCount feasible values of \p E under the
  /// assertions into \p Out. Sets \p Complete when the enumeration provably
  /// covered all feasible values. Returns Timeout if the budget ran out.
  QueryStatus enumerateValues(const std::vector<ExprRef> &Assertions,
                              ExprRef E, unsigned MaxCount,
                              std::vector<uint64_t> &Out, bool &Complete);

  const SolverTotals &getTotals() const { return Totals; }
  const SolverConfig &getConfig() const { return Config; }
  void setConfig(const SolverConfig &C) { Config = C; }

  /// Rewrites \p E into an array-free form (exposed for tests). Returns
  /// nullptr if \p Budget is exhausted mid-rewrite; \p Work accumulates the
  /// charge.
  ExprRef lowerArrays(ExprRef E, uint64_t Budget, uint64_t &Work);

private:
  /// checkSat behind the public entry point (which only adds telemetry —
  /// a query-time histogram and a pipeline span; see docs/OBSERVABILITY.md).
  QueryResult checkSatCaching(const std::vector<ExprRef> &Assertions,
                              uint64_t BudgetOverride);
  QueryStatus enumerateValuesCaching(const std::vector<ExprRef> &Assertions,
                                     ExprRef E, unsigned MaxCount,
                                     std::vector<uint64_t> &Out,
                                     bool &Complete);

  /// The actual solve behind checkSat. \p Deterministic is cleared when the
  /// outcome depended on the wall-clock backstop (such results must not be
  /// memoized).
  QueryResult checkSatUncached(const std::vector<ExprRef> &Assertions,
                               uint64_t Budget, bool &Deterministic);
  QueryStatus enumerateValuesUncached(const std::vector<ExprRef> &Assertions,
                                      ExprRef E, unsigned MaxCount,
                                      std::vector<uint64_t> &Out,
                                      bool &Complete, uint64_t &WorkUsed,
                                      bool &Deterministic);

  ExprRef lowerArraysImpl(ExprRef E, uint64_t Budget, uint64_t &Work,
                          std::unordered_map<ExprRef, ExprRef> &Memo);
  ExprRef lowerRead(ExprRef Array, ExprRef Index, uint64_t Budget,
                    uint64_t &Work,
                    std::unordered_map<ExprRef, ExprRef> &Memo);

  ExprContext &Ctx;
  SolverConfig Config;
  SolverTotals Totals;
};

} // namespace er

#endif // ER_SOLVER_SOLVER_H
