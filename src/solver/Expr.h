//===- Expr.h - Hash-consed bitvector/array expression DAG ------*- C++ -*-===//
///
/// \file
/// The constraint language shared by the symbolic executor, the constraint
/// solver, and ER's key data value selection. Expressions are immutable,
/// hash-consed nodes owned by an ExprContext; identical subterms are shared,
/// so structural equality is pointer equality.
///
/// The theory is fixed-width bitvectors (1..64 bits) plus extensional arrays
/// in the STP style used by the paper: Read(A, i) and Write(A, i, v) over
/// word-typed arrays. Booleans are width-1 bitvectors.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SOLVER_EXPR_H
#define ER_SOLVER_EXPR_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace er {

class ExprContext;

/// Expression node kinds. Derived comparisons (ne/ule/...) are built from
/// this minimal basis by the ExprContext smart constructors.
enum class ExprKind : uint8_t {
  // Leaves.
  Const,      ///< Constant bitvector (value in ConstVal).
  Var,        ///< Free bitvector variable (a symbolic input).
  ConstArray, ///< Array with every element equal to ConstVal.
  DataArray,  ///< Array with arbitrary concrete contents.
  SymArray,   ///< Fully symbolic array (each element unconstrained).

  // Unary.
  Not,  ///< Bitwise complement.
  Neg,  ///< Two's complement negation.
  ZExt, ///< Zero extension to Width.
  SExt, ///< Sign extension to Width.
  Trunc,///< Truncation to Width (low bits).

  // Binary arithmetic / bitwise.
  Add, Sub, Mul, UDiv, SDiv, URem, SRem,
  And, Or, Xor, Shl, LShr, AShr,

  // Binary relations (result width 1).
  Eq,  ///< Equality.
  Ult, ///< Unsigned less-than.
  Slt, ///< Signed less-than.

  // Ternary.
  Ite, ///< If-then-else: Op0 ? Op1 : Op2.

  // Array theory.
  Read, ///< Read(Array=Op0, Index=Op1).
  Write ///< Write(Array=Op0, Index=Op1, Value=Op2).
};

/// Returns a short mnemonic for \p K (used by the printer).
const char *exprKindName(ExprKind K);

/// An immutable expression node. Create only through ExprContext.
class Expr {
public:
  ExprKind getKind() const { return Kind; }
  /// Bit width of the value (1..64); 0 for array-typed expressions.
  unsigned getWidth() const { return Width; }
  bool isArray() const { return Width == 0; }
  /// For arrays: the element bit width.
  unsigned getElemWidth() const { return ElemWidth; }
  /// For arrays: the number of elements in the domain.
  uint64_t getNumElems() const { return NumElems; }

  bool isConst() const { return Kind == ExprKind::Const; }
  bool isConstArray() const { return Kind == ExprKind::ConstArray; }
  bool isTrue() const { return isConst() && Width == 1 && ConstVal == 1; }
  bool isFalse() const { return isConst() && Width == 1 && ConstVal == 0; }

  /// Constant value (valid for Const and ConstArray).
  uint64_t getConstVal() const { return ConstVal; }
  /// Variable / symbolic-array identifier (valid for Var, SymArray) or the
  /// context-side data index (valid for DataArray).
  uint32_t getVarId() const { return VarId; }

  unsigned getNumOps() const { return NumOps; }
  const Expr *getOp(unsigned I) const { return Ops[I]; }
  const Expr *getOp0() const { return Ops[0]; }
  const Expr *getOp1() const { return Ops[1]; }
  const Expr *getOp2() const { return Ops[2]; }

  /// Creation-order identifier; stable within one ExprContext, usable for
  /// deterministic ordering.
  unsigned getId() const { return Id; }

  size_t getHash() const { return HashVal; }

private:
  friend class ExprContext;
  Expr() = default;

  ExprKind Kind = ExprKind::Const;
  uint8_t Width = 0;
  uint8_t ElemWidth = 0;
  uint8_t NumOps = 0;
  uint32_t VarId = 0;
  uint64_t NumElems = 0;
  uint64_t ConstVal = 0;
  const Expr *Ops[3] = {nullptr, nullptr, nullptr};
  size_t HashVal = 0;
  unsigned Id = 0;
};

using ExprRef = const Expr *;

/// A concrete assignment to the free variables of a formula: scalar variables
/// and symbolic-array elements.
struct Assignment {
  std::unordered_map<uint32_t, uint64_t> VarValues;
  /// SymArray id -> element index -> value. Absent entries default to 0.
  std::unordered_map<uint32_t, std::unordered_map<uint64_t, uint64_t>>
      ArrayValues;

  uint64_t getVar(uint32_t Id) const {
    auto It = VarValues.find(Id);
    return It == VarValues.end() ? 0 : It->second;
  }
  uint64_t getArrayElem(uint32_t Id, uint64_t Index) const {
    auto AIt = ArrayValues.find(Id);
    if (AIt == ArrayValues.end())
      return 0;
    auto EIt = AIt->second.find(Index);
    return EIt == AIt->second.end() ? 0 : EIt->second;
  }
};

/// Aggregate counters for expression construction; solver budgets charge
/// against the deltas of these.
struct ExprStats {
  uint64_t NodesCreated = 0;
  uint64_t HashHits = 0;
  uint64_t FoldsApplied = 0;
};

/// Owns and uniques Expr nodes; all construction goes through the smart
/// constructors below, which apply algebraic simplification eagerly.
class ExprContext {
public:
  ExprContext() = default;
  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  //===--- Leaves ---------------------------------------------------------===
  ExprRef constant(uint64_t Value, unsigned Width);
  ExprRef trueExpr() { return constant(1, 1); }
  ExprRef falseExpr() { return constant(0, 1); }
  /// Creates a fresh named variable of \p Width bits.
  ExprRef makeVar(const std::string &Name, unsigned Width);
  /// Returns the name given to variable \p Id at creation.
  const std::string &getVarName(uint32_t Id) const;
  /// Total number of scalar variables created so far.
  uint32_t getNumVars() const { return static_cast<uint32_t>(VarNames.size()); }

  ExprRef constArray(unsigned ElemWidth, uint64_t NumElems, uint64_t Fill);
  ExprRef dataArray(unsigned ElemWidth, std::vector<uint64_t> Data);
  ExprRef symArray(const std::string &Name, unsigned ElemWidth,
                   uint64_t NumElems);
  const std::vector<uint64_t> &getArrayData(ExprRef DataArrayExpr) const;
  const std::string &getSymArrayName(uint32_t Id) const;

  //===--- Bitvector operations -------------------------------------------===
  ExprRef add(ExprRef A, ExprRef B);
  ExprRef sub(ExprRef A, ExprRef B);
  ExprRef mul(ExprRef A, ExprRef B);
  ExprRef udiv(ExprRef A, ExprRef B);
  ExprRef sdiv(ExprRef A, ExprRef B);
  ExprRef urem(ExprRef A, ExprRef B);
  ExprRef srem(ExprRef A, ExprRef B);
  ExprRef bvand(ExprRef A, ExprRef B);
  ExprRef bvor(ExprRef A, ExprRef B);
  ExprRef bvxor(ExprRef A, ExprRef B);
  ExprRef shl(ExprRef A, ExprRef B);
  ExprRef lshr(ExprRef A, ExprRef B);
  ExprRef ashr(ExprRef A, ExprRef B);
  ExprRef bvnot(ExprRef A);
  ExprRef neg(ExprRef A);
  ExprRef zext(ExprRef A, unsigned Width);
  ExprRef sext(ExprRef A, unsigned Width);
  ExprRef trunc(ExprRef A, unsigned Width);
  /// zext/sext/trunc as needed to reach \p Width.
  ExprRef castTo(ExprRef A, unsigned Width, bool Signed);

  //===--- Relations (all return width-1) ----------------------------------===
  ExprRef eq(ExprRef A, ExprRef B);
  ExprRef ne(ExprRef A, ExprRef B);
  ExprRef ult(ExprRef A, ExprRef B);
  ExprRef ule(ExprRef A, ExprRef B);
  ExprRef ugt(ExprRef A, ExprRef B);
  ExprRef uge(ExprRef A, ExprRef B);
  ExprRef slt(ExprRef A, ExprRef B);
  ExprRef sle(ExprRef A, ExprRef B);
  ExprRef sgt(ExprRef A, ExprRef B);
  ExprRef sge(ExprRef A, ExprRef B);

  //===--- Boolean structure ----------------------------------------------===
  ExprRef logicalAnd(ExprRef A, ExprRef B) { return bvand(A, B); }
  ExprRef logicalOr(ExprRef A, ExprRef B) { return bvor(A, B); }
  ExprRef logicalNot(ExprRef A) { return bvnot(A); }
  ExprRef ite(ExprRef Cond, ExprRef T, ExprRef F);

  //===--- Arrays ----------------------------------------------------------===
  ExprRef read(ExprRef Array, ExprRef Index);
  ExprRef write(ExprRef Array, ExprRef Index, ExprRef Value);

  //===--- Utilities -------------------------------------------------------===
  /// Evaluates \p E under \p A. For array-typed expressions use
  /// evalArrayElem.
  uint64_t evaluate(ExprRef E, const Assignment &A) const;
  /// Evaluates element \p Index of array expression \p E under \p A.
  uint64_t evalArrayElem(ExprRef E, uint64_t Index, const Assignment &A) const;

  /// Rewrites \p E replacing every occurrence of a key in \p Map with its
  /// mapped expression, re-simplifying along the way.
  ExprRef substitute(ExprRef E, const std::unordered_map<ExprRef, ExprRef> &Map);

  /// Renders \p E as an S-expression string (for debugging and tests).
  std::string toString(ExprRef E) const;

  /// Collects the free scalar variables of \p E into \p Out (deduplicated,
  /// in first-visit order).
  void collectVars(ExprRef E, std::vector<ExprRef> &Out) const;

  const ExprStats &getStats() const { return Stats; }

private:
  ExprRef intern(Expr Proto);
  ExprRef binary(ExprKind K, ExprRef A, ExprRef B);
  ExprRef foldBinary(ExprKind K, ExprRef A, ExprRef B);
  uint64_t evalImpl(ExprRef E, const Assignment &A,
                    std::unordered_map<ExprRef, uint64_t> &Memo) const;

  struct ExprPtrHash {
    size_t operator()(const Expr *E) const { return E->getHash(); }
  };
  struct ExprPtrEq {
    bool operator()(const Expr *A, const Expr *B) const;
  };

  std::deque<Expr> Arena;
  std::unordered_set<Expr *, ExprPtrHash, ExprPtrEq> Unique;
  std::vector<std::string> VarNames;
  std::vector<std::string> SymArrayNames;
  std::vector<std::vector<uint64_t>> DataArrays;
  ExprStats Stats;
};

/// Masks \p V to the low \p Width bits.
inline uint64_t maskToWidth(uint64_t V, unsigned Width) {
  return Width >= 64 ? V : (V & ((1ULL << Width) - 1));
}

/// Sign-extends the \p Width-bit value \p V to int64_t.
inline int64_t signExtend(uint64_t V, unsigned Width) {
  if (Width >= 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = 1ULL << (Width - 1);
  return static_cast<int64_t>((V ^ SignBit) - SignBit);
}

} // namespace er

#endif // ER_SOLVER_EXPR_H
