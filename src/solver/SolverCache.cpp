//===- SolverCache.cpp - Shared memoizing solver-result cache --------------===//

#include "solver/SolverCache.h"

#include "obs/Metrics.h"
#include "solver/Solver.h"

#include <algorithm>

using namespace er;

// The bespoke per-instance SolverCacheStats stay (FleetReport embeds
// them); the same events are bridged into the process-wide registry so
// one metrics dump covers every cache instance (docs/OBSERVABILITY.md).
namespace {
struct CacheMetrics {
  obs::Counter &Hits, &Misses, &Insertions, &Evictions;
  static CacheMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static CacheMetrics M{Reg.counter("solver.cache.hits"),
                          Reg.counter("solver.cache.misses"),
                          Reg.counter("solver.cache.insertions"),
                          Reg.counter("solver.cache.evictions")};
    return M;
  }
};
} // namespace

SolverResultCache::SolverResultCache(SolverCacheConfig Config)
    : Config(Config) {
  if (this->Config.NumShards == 0)
    this->Config.NumShards = 1;
  if (this->Config.MaxEntriesPerShard == 0)
    this->Config.MaxEntriesPerShard = 1;
  Shards.reserve(this->Config.NumShards);
  for (unsigned I = 0; I < this->Config.NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

bool SolverResultCache::lookup(const QueryDigest &D, CachedQueryResult &Out) {
  Shard &S = shardFor(D);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(D);
  if (It == S.Map.end()) {
    ++S.Misses;
    CacheMetrics::get().Misses.inc();
    return false;
  }
  ++S.Hits;
  CacheMetrics::get().Hits.inc();
  ++It->second.HitCount;
  Out = It->second.Result;
  return true;
}

void SolverResultCache::evictOne(Shard &S) {
  // O(shard) scan per eviction: overflow is rare relative to lookups, and
  // a scan under the shard lock beats maintaining a score-ordered index
  // that every hit would have to re-sort.
  auto Victim = S.Map.end();
  uint64_t VictimScore = 0, VictimSeq = 0;
  for (auto It = S.Map.begin(); It != S.Map.end(); ++It) {
    const Entry &E = It->second;
    // FIFO scores everything equal, leaving the Seq tie-break to pick the
    // oldest; cost-weighted keeps what future hits would save the most.
    uint64_t Score = Config.Eviction == CacheEvictionPolicy::FIFO
                         ? 0
                         : E.Result.WorkUsed * (E.HitCount + 1);
    if (Victim == S.Map.end() || Score < VictimScore ||
        (Score == VictimScore && E.Seq < VictimSeq)) {
      Victim = It;
      VictimScore = Score;
      VictimSeq = E.Seq;
    }
  }
  if (Victim != S.Map.end()) {
    S.Map.erase(Victim);
    ++S.Evictions;
    CacheMetrics::get().Evictions.inc();
  }
}

void SolverResultCache::insert(const QueryDigest &D,
                               const CachedQueryResult &R) {
  Shard &S = shardFor(D);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto [It, Inserted] = S.Map.try_emplace(D);
  if (!Inserted)
    return; // Another campaign solved the same query first.
  It->second.Result = R;
  It->second.Seq = S.NextSeq++;
  ++S.Insertions;
  CacheMetrics::get().Insertions.inc();
  while (S.Map.size() > Config.MaxEntriesPerShard)
    evictOne(S);
}

SolverCacheStats SolverResultCache::getStats() const {
  SolverCacheStats Stats;
  for (const auto &SPtr : Shards) {
    Shard &S = *SPtr;
    std::lock_guard<std::mutex> Lock(S.Mu);
    Stats.Hits += S.Hits;
    Stats.Misses += S.Misses;
    Stats.Insertions += S.Insertions;
    Stats.Evictions += S.Evictions;
    Stats.Entries += S.Map.size();
  }
  return Stats;
}

void SolverResultCache::clear() {
  for (const auto &SPtr : Shards) {
    Shard &S = *SPtr;
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
  }
}

//===----------------------------------------------------------------------===//
// Digests
//===----------------------------------------------------------------------===//

static uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

static void combine(QueryDigest &D, uint64_t V) {
  // Two decorrelated lanes; Hi uses a different odd multiplier so a single
  // 64-bit collision does not imply a 128-bit one.
  D.Lo = mix64(D.Lo ^ (V + 0x9e3779b97f4a7c15ULL));
  D.Hi = mix64(D.Hi * 0xff51afd7ed558ccdULL ^ (V + 0x2545f4914f6cdd1dULL));
}

QueryDigest
SolverResultCache::digestExpr(const ExprContext &Ctx, ExprRef E,
                              std::unordered_map<ExprRef, QueryDigest> &Memo) {
  auto It = Memo.find(E);
  if (It != Memo.end())
    return It->second;

  QueryDigest D;
  combine(D, static_cast<uint64_t>(E->getKind()));
  combine(D, (static_cast<uint64_t>(E->getWidth()) << 32) |
                 (static_cast<uint64_t>(E->getElemWidth()) << 8) |
                 E->getNumOps());
  combine(D, E->getNumElems());

  switch (E->getKind()) {
  case ExprKind::Const:
  case ExprKind::ConstArray:
    combine(D, E->getConstVal());
    break;
  case ExprKind::Var:
  case ExprKind::SymArray:
    // Variable identity is the id: models are keyed by it, and campaigns
    // construct their contexts deterministically, so equal ids + equal
    // structure means an interchangeable query.
    combine(D, E->getVarId());
    break;
  case ExprKind::DataArray:
    // Concrete contents live in the context; the context-side index is
    // meaningless across contexts, so digest the data itself.
    for (uint64_t V : Ctx.getArrayData(E))
      combine(D, V);
    break;
  default:
    break;
  }

  for (unsigned I = 0; I < E->getNumOps(); ++I) {
    QueryDigest Op = digestExpr(Ctx, E->getOp(I), Memo);
    combine(D, Op.Lo);
    combine(D, Op.Hi);
  }

  Memo.emplace(E, D);
  return D;
}

QueryDigest SolverResultCache::digestQuery(
    const ExprContext &Ctx, const std::vector<ExprRef> &Assertions,
    ExprRef Enumerated, unsigned MaxCount, uint64_t Budget,
    uint64_t ConflictCost, uint64_t PropagationCost) {
  std::unordered_map<ExprRef, QueryDigest> Memo;
  std::vector<std::pair<uint64_t, uint64_t>> Parts;
  Parts.reserve(Assertions.size());
  for (ExprRef A : Assertions) {
    if (A->isTrue())
      continue; // checkSat skips trivially-true conjuncts.
    QueryDigest AD = digestExpr(Ctx, A, Memo);
    Parts.emplace_back(AD.Lo, AD.Hi);
  }
  // Conjunction is order- and duplication-insensitive: normalize.
  std::sort(Parts.begin(), Parts.end());
  Parts.erase(std::unique(Parts.begin(), Parts.end()), Parts.end());

  QueryDigest D;
  combine(D, Parts.size());
  for (const auto &[Lo, Hi] : Parts) {
    combine(D, Lo);
    combine(D, Hi);
  }
  if (Enumerated) {
    QueryDigest ED = digestExpr(Ctx, Enumerated, Memo);
    combine(D, 0xe17e5a7eULL); // Tag: enumeration query, not checkSat.
    combine(D, ED.Lo);
    combine(D, ED.Hi);
    combine(D, MaxCount);
  }
  combine(D, Budget);
  combine(D, ConflictCost);
  combine(D, PropagationCost);
  return D;
}
