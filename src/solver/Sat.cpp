//===- Sat.cpp - CDCL SAT solver implementation ---------------------------===//

#include "solver/Sat.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace er;

namespace {
/// Records one CDCL search into the process-wide histograms on every exit
/// path of solve(). A solve is milliseconds to seconds of work; two clock
/// reads and a few relaxed atomics are noise.
struct SolveTelemetry {
  std::chrono::steady_clock::time_point Start;
  const SatStats &Stats;
  uint64_t ConflictsBefore;

  explicit SolveTelemetry(const SatStats &Stats)
      : Start(std::chrono::steady_clock::now()), Stats(Stats),
        ConflictsBefore(Stats.Conflicts) {}

  ~SolveTelemetry() {
    auto &Reg = obs::MetricsRegistry::global();
    static obs::Histogram &WallUs =
        Reg.histogram("sat.solve.us", obs::exponentialBounds(1, 22, 2));
    static obs::Histogram &Conflicts =
        Reg.histogram("sat.solve.conflicts", obs::exponentialBounds(1, 20, 2));
    static obs::Counter &Solves = Reg.counter("sat.solves");
    WallUs.record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count()));
    Conflicts.record(Stats.Conflicts - ConflictsBefore);
    Solves.inc();
  }
};
} // namespace

SatSolver::SatSolver() {
  // Var 0 is unused; literal codes start at 2.
  Values.push_back(LBool::Undef);
  Reasons.push_back(-1);
  Levels.push_back(0);
  SavedPhase.push_back(false);
  Activity.push_back(0);
  HeapPos.push_back(-1);
  Seen.push_back(0);
  Watches.resize(2);
}

unsigned SatSolver::newVar() {
  ++NumVars;
  Values.push_back(LBool::Undef);
  Reasons.push_back(-1);
  Levels.push_back(0);
  SavedPhase.push_back(false);
  Activity.push_back(0);
  HeapPos.push_back(-1);
  Seen.push_back(0);
  Watches.resize(Watches.size() + 2);
  heapInsert(NumVars);
  return NumVars;
}

SatSolver::LBool SatSolver::litValue(Lit L) const {
  LBool V = Values[L.var()];
  if (V == LBool::Undef)
    return LBool::Undef;
  bool B = (V == LBool::True) != L.negated();
  return B ? LBool::True : LBool::False;
}

bool SatSolver::assign(Lit L, int Reason) {
  LBool Cur = litValue(L);
  if (Cur == LBool::False)
    return false;
  if (Cur == LBool::True)
    return true;
  Values[L.var()] = L.negated() ? LBool::False : LBool::True;
  Reasons[L.var()] = Reason;
  Levels[L.var()] = DecisionLevel;
  Trail.push_back(L);
  return true;
}

void SatSolver::attachClause(unsigned Idx) {
  Clause &C = Clauses[Idx];
  assert(C.Lits.size() >= 2 && "attaching short clause");
  Watches[(~C.Lits[0]).code()].push_back({Idx, C.Lits[1]});
  Watches[(~C.Lits[1]).code()].push_back({Idx, C.Lits[0]});
}

void SatSolver::addClause(std::vector<Lit> Clause) {
  if (Unsatisfiable)
    return;
  // Clauses are filtered against root-level assignments only, so return to
  // the root first (e.g. when blocking a model between solve() calls).
  backtrack(0);
  // Remove duplicates and satisfied/false literals at root level.
  std::sort(Clause.begin(), Clause.end(),
            [](Lit A, Lit B) { return A.code() < B.code(); });
  std::vector<Lit> Filtered;
  for (size_t I = 0; I < Clause.size(); ++I) {
    Lit L = Clause[I];
    if (I + 1 < Clause.size() && Clause[I + 1] == L)
      continue; // Duplicate.
    if (I + 1 < Clause.size() && Clause[I + 1] == ~L)
      return; // Tautology: p | ~p.
    LBool V = litValue(L);
    if (V == LBool::True)
      return; // Already satisfied at root.
    if (V == LBool::False)
      continue; // Drop falsified literal.
    Filtered.push_back(L);
  }
  if (Filtered.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Filtered.size() == 1) {
    if (!assign(Filtered[0], -1)) {
      Unsatisfiable = true;
      return;
    }
    if (propagate() != -1)
      Unsatisfiable = true;
    return;
  }
  Clauses.push_back({std::move(Filtered), /*Learned=*/false});
  attachClause(static_cast<unsigned>(Clauses.size() - 1));
}

int SatSolver::propagate() {
  bool HasDeadline = CurDeadline != std::chrono::steady_clock::time_point{};
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    ++Stats.Propagations;
    if (HasDeadline && (Stats.Propagations & 0x1FFF) == 0 &&
        std::chrono::steady_clock::now() > CurDeadline) {
      TimedOut = true;
      return -1;
    }
    std::vector<Watcher> &WList = Watches[P.code()];
    size_t Kept = 0;
    for (size_t WI = 0; WI < WList.size(); ++WI) {
      Watcher W = WList[WI];
      // Blocker check: clause already satisfied.
      if (litValue(W.Blocker) == LBool::True) {
        WList[Kept++] = W;
        continue;
      }
      Clause &C = Clauses[W.ClauseIdx];
      Lit NotP = ~P;
      // Ensure the false literal is Lits[1].
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch invariant violated");
      // First literal may satisfy the clause.
      if (litValue(C.Lits[0]) == LBool::True) {
        WList[Kept++] = {W.ClauseIdx, C.Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).code()].push_back({W.ClauseIdx, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue; // Watcher moved; do not keep.
      // Clause is unit or conflicting.
      WList[Kept++] = W;
      if (litValue(C.Lits[0]) == LBool::False) {
        // Conflict: keep remaining watchers and report.
        for (size_t K = WI + 1; K < WList.size(); ++K)
          WList[Kept++] = WList[K];
        WList.resize(Kept);
        return static_cast<int>(W.ClauseIdx);
      }
      assign(C.Lits[0], static_cast<int>(W.ClauseIdx));
    }
    WList.resize(Kept);
  }
  return -1;
}

void SatSolver::bumpVar(unsigned Var) {
  Activity[Var] += VarInc;
  if (Activity[Var] > 1e100) {
    for (unsigned V = 1; V <= NumVars; ++V)
      Activity[V] *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[Var] >= 0)
    heapSiftUp(static_cast<size_t>(HeapPos[Var]));
}

void SatSolver::analyze(int ConflictClause, std::vector<Lit> &Learned,
                        unsigned &BtLevel) {
  Learned.clear();
  Learned.push_back(Lit()); // Slot for the asserting literal.
  unsigned Counter = 0;
  Lit P;
  bool PValid = false;
  int Reason = ConflictClause;
  size_t TrailIdx = Trail.size();

  for (;;) {
    assert(Reason != -1 && "analysis reached a decision without UIP");
    Clause &C = Clauses[static_cast<size_t>(Reason)];
    // When following a reason clause, Lits[0] is the implied literal P and is
    // skipped; for the initial conflict clause all literals are examined.
    for (size_t I = PValid ? 1 : 0; I < C.Lits.size(); ++I) {
      Lit L = C.Lits[I];
      unsigned V = L.var();
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (Levels[V] == DecisionLevel)
        ++Counter;
      else
        Learned.push_back(L);
    }
    // Find the next trail literal to resolve on.
    while (TrailIdx > 0 && !Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    assert(TrailIdx > 0 && "trail exhausted during analysis");
    P = Trail[--TrailIdx];
    PValid = true;
    Seen[P.var()] = 0;
    Reason = Reasons[P.var()];
    if (--Counter == 0)
      break;
  }
  Learned[0] = ~P;

  // Compute the backtrack level (second-highest level in the clause).
  BtLevel = 0;
  for (size_t I = 1; I < Learned.size(); ++I)
    BtLevel = std::max(BtLevel, Levels[Learned[I].var()]);
  // Move a literal of BtLevel to position 1 for watching.
  if (Learned.size() > 1) {
    size_t MaxI = 1;
    for (size_t I = 2; I < Learned.size(); ++I)
      if (Levels[Learned[I].var()] > Levels[Learned[MaxI].var()])
        MaxI = I;
    std::swap(Learned[1], Learned[MaxI]);
  }
  for (size_t I = 1; I < Learned.size(); ++I)
    Seen[Learned[I].var()] = 0;
}

void SatSolver::backtrack(unsigned Level) {
  if (DecisionLevel <= Level)
    return;
  size_t Bound = TrailLims[Level];
  for (size_t I = Trail.size(); I > Bound; --I) {
    unsigned V = Trail[I - 1].var();
    SavedPhase[V] = Values[V] == LBool::True;
    Values[V] = LBool::Undef;
    Reasons[V] = -1;
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLims.resize(Level);
  PropHead = Trail.size();
  DecisionLevel = Level;
}

Lit SatSolver::pickBranchLit() {
  while (!heapEmpty()) {
    unsigned V = heapPop();
    if (Values[V] == LBool::Undef)
      return Lit(V, !SavedPhase[V]);
  }
  return Lit(); // var() == 0 signals "all assigned".
}

uint64_t SatSolver::luby(uint64_t I) {
  // Finite subsequences of the Luby sequence: 1 1 2 1 1 2 4 ...
  // (MiniSat's formulation.)
  uint64_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) / 2;
    --Seq;
    I %= Size;
  }
  return 1ULL << Seq;
}

SatStatus SatSolver::solve(const SatBudget &Budget,
                           const std::vector<Lit> &Assumptions) {
  if (Unsatisfiable)
    return SatStatus::Unsat; // Cached result: no search, no telemetry.
  SolveTelemetry Telemetry(Stats);
  CurDeadline = Budget.Deadline;
  TimedOut = false;
  backtrack(0);
  if (propagate() != -1) {
    Unsatisfiable = true;
    CurDeadline = {};
    return SatStatus::Unsat;
  }
  if (TimedOut) {
    CurDeadline = {};
    return SatStatus::Unknown;
  }

  uint64_t ConflictsStart = Stats.Conflicts;
  uint64_t PropsStart = Stats.Propagations;
  bool HasDeadline =
      Budget.Deadline != std::chrono::steady_clock::time_point{};
  uint64_t LoopIter = 0;
  uint64_t RestartNum = 0;
  uint64_t RestartLimit = 64 * luby(RestartNum);
  uint64_t ConflictsAtRestart = Stats.Conflicts;

  static const bool Debug = std::getenv("ER_SOLVER_DEBUG") != nullptr;
  for (;;) {
    ++LoopIter;
    if (Debug && (LoopIter & 0xFFFFF) == 0)
      std::fprintf(stderr,
                   "[sat] iter=%llu conflicts=%llu props=%llu decisions=%llu "
                   "trail=%zu level=%u\n",
                   (unsigned long long)LoopIter,
                   (unsigned long long)Stats.Conflicts,
                   (unsigned long long)Stats.Propagations,
                   (unsigned long long)Stats.Decisions, Trail.size(),
                   DecisionLevel);
    if (HasDeadline && (LoopIter & 0x3FF) == 0 &&
        std::chrono::steady_clock::now() > Budget.Deadline)
      return SatStatus::Unknown;
    int Confl = propagate();
    if (TimedOut) {
      CurDeadline = {};
      return SatStatus::Unknown;
    }
    if (Confl != -1) {
      ++Stats.Conflicts;
      if (DecisionLevel == 0) {
        CurDeadline = {};
        return SatStatus::Unsat;
      }
      std::vector<Lit> Learned;
      unsigned BtLevel = 0;
      analyze(Confl, Learned, BtLevel);
      backtrack(BtLevel);
      if (Learned.size() == 1) {
        if (!assign(Learned[0], -1)) {
          CurDeadline = {};
          return SatStatus::Unsat;
        }
      } else {
        Clauses.push_back({Learned, /*Learned=*/true});
        unsigned Idx = static_cast<unsigned>(Clauses.size() - 1);
        attachClause(Idx);
        ++Stats.LearnedClauses;
        assign(Learned[0], static_cast<int>(Idx));
      }
      VarInc *= 1.0 / 0.95;
      if (Stats.Conflicts - ConflictsStart > Budget.MaxConflicts ||
          Stats.Propagations - PropsStart > Budget.MaxPropagations) {
        CurDeadline = {};
        return SatStatus::Unknown;
      }
      if (Stats.Conflicts - ConflictsAtRestart >= RestartLimit) {
        ++Stats.Restarts;
        ++RestartNum;
        RestartLimit = 64 * luby(RestartNum);
        ConflictsAtRestart = Stats.Conflicts;
        backtrack(0);
      }
      continue;
    }

    if (Stats.Propagations - PropsStart > Budget.MaxPropagations) {
      CurDeadline = {};
      return SatStatus::Unknown;
    }

    // Decide: assumptions first, then VSIDS.
    Lit Decision;
    bool HaveDecision = false;
    while (DecisionLevel < Assumptions.size()) {
      Lit A = Assumptions[DecisionLevel];
      LBool V = litValue(A);
      if (V == LBool::True) {
        // Already implied; open an empty decision level to keep indexing.
        TrailLims.push_back(static_cast<unsigned>(Trail.size()));
        ++DecisionLevel;
        continue;
      }
      if (V == LBool::False) {
        CurDeadline = {};
        return SatStatus::Unsat; // Assumptions conflict.
      }
      Decision = A;
      HaveDecision = true;
      break;
    }
    if (!HaveDecision) {
      Decision = pickBranchLit();
      if (Decision.var() == 0) {
        CurDeadline = {};
        return SatStatus::Sat; // All variables assigned.
      }
    }
    ++Stats.Decisions;
    TrailLims.push_back(static_cast<unsigned>(Trail.size()));
    ++DecisionLevel;
    assign(Decision, -1);
  }
}

bool SatSolver::modelValue(unsigned Var) const {
  assert(Var <= NumVars && "variable out of range");
  return Values[Var] == LBool::True;
}

//===----------------------------------------------------------------------===//
// Order heap
//===----------------------------------------------------------------------===//

void SatSolver::heapInsert(unsigned Var) {
  assert(HeapPos[Var] < 0 && "already in heap");
  Heap.push_back(Var);
  HeapPos[Var] = static_cast<int>(Heap.size() - 1);
  heapSiftUp(Heap.size() - 1);
}

unsigned SatSolver::heapPop() {
  unsigned Top = Heap.front();
  HeapPos[Top] = -1;
  unsigned Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap.front() = Last;
    HeapPos[Last] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void SatSolver::heapSiftUp(size_t Pos) {
  unsigned V = Heap[Pos];
  while (Pos > 0) {
    size_t Parent = (Pos - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = static_cast<int>(Pos);
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = static_cast<int>(Pos);
}

void SatSolver::heapSiftDown(size_t Pos) {
  unsigned V = Heap[Pos];
  size_t N = Heap.size();
  for (;;) {
    size_t Child = 2 * Pos + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = static_cast<int>(Pos);
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = static_cast<int>(Pos);
}

void SatSolver::heapUpdate(unsigned Var) {
  if (HeapPos[Var] >= 0) {
    heapSiftUp(static_cast<size_t>(HeapPos[Var]));
    heapSiftDown(static_cast<size_t>(HeapPos[Var]));
  }
}
