//===- SolverCache.h - Shared memoizing solver-result cache -----*- C++ -*-===//
///
/// \file
/// A thread-safe, sharded memoization cache for solver queries, shared by
/// many ConstraintSolver instances running on different threads (one per
/// fleet reconstruction campaign — see docs/FLEET.md).
///
/// Queries are keyed by a *normalized constraint-set digest*: a 128-bit
/// structural hash over the assertion set (order-insensitive, duplicates
/// dropped), the queried expression (for value enumeration), and the
/// effective work budget and cost model. The digest is computed from
/// expression *structure* — kinds, widths, constants, variable ids, and
/// concrete array contents — never from pointer values, so identical
/// queries issued from distinct ExprContexts collapse to the same key.
///
/// Only deterministic outcomes are cached: Sat/Unsat results always are,
/// Timeout results only when the deterministic work budget (not the
/// wall-clock backstop) was exhausted. A cached result is therefore
/// byte-identical to what a fresh solve would produce, which is what makes
/// consulting the cache transparent to reconstruction determinism.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SOLVER_SOLVERCACHE_H
#define ER_SOLVER_SOLVERCACHE_H

#include "solver/Expr.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace er {

enum class QueryStatus; // Solver.h

/// What to evict when a shard overflows.
enum class CacheEvictionPolicy {
  /// Oldest insertion first, ignoring entry value.
  FIFO,
  /// Lowest retention score first, where score = WorkUsed x (hits + 1):
  /// the solver work a future hit on this entry is expected to save.
  /// Cheap-to-recompute, never-reused entries go first; an expensive
  /// query that campaigns keep re-asking is the last thing dropped.
  /// Ties (e.g. a cold cache where nothing has hit yet) break FIFO.
  CostWeighted,
};

/// Tuning for the shared cache.
struct SolverCacheConfig {
  /// Number of independently locked shards; queries hash-partition across
  /// them so concurrent campaigns rarely contend.
  unsigned NumShards = 16;
  /// Per-shard entry cap; overflow evicts per \p Eviction.
  size_t MaxEntriesPerShard = 4096;
  /// Eviction policy; cost-weighted by default (the policy only affects
  /// which entries *stay* cached — hits remain byte-identical to fresh
  /// solves either way, so this is purely a hit-rate/wall-time knob).
  CacheEvictionPolicy Eviction = CacheEvictionPolicy::CostWeighted;
};

/// Aggregate counters (surfaced in FleetReport).
struct SolverCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0;
  }
};

/// 128-bit query key.
struct QueryDigest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  bool operator==(const QueryDigest &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
};

/// A memoized query outcome. checkSat entries carry a model; enumerateValues
/// entries carry the enumerated values and completeness flag. WorkUsed is
/// replayed into the consulting solver's totals so budget accounting is
/// identical with and without the cache.
struct CachedQueryResult {
  QueryStatus Status;
  Assignment Model;
  std::vector<uint64_t> Values;
  bool Complete = false;
  uint64_t WorkUsed = 0;
};

/// Thread-safe sharded memoization cache. Instances are expected to outlive
/// every solver configured to consult them.
class SolverResultCache {
public:
  explicit SolverResultCache(SolverCacheConfig Config = SolverCacheConfig());

  /// Looks up \p D; on hit copies the entry into \p Out and returns true.
  bool lookup(const QueryDigest &D, CachedQueryResult &Out);

  /// Inserts \p R under \p D (first-writer-wins; a racing duplicate insert
  /// is dropped). Evicts per the configured policy when the shard is full.
  void insert(const QueryDigest &D, const CachedQueryResult &R);

  /// Snapshot of the aggregate counters.
  SolverCacheStats getStats() const;

  void clear();

  //===--- Digest computation ---------------------------------------------===
  /// Structural 128-bit digest of \p E. \p Ctx supplies concrete DataArray
  /// contents; \p Memo (per caller, keyed by node pointer) makes the
  /// traversal linear in DAG size.
  static QueryDigest
  digestExpr(const ExprContext &Ctx, ExprRef E,
             std::unordered_map<ExprRef, QueryDigest> &Memo);

  /// Normalized digest of a whole query: assertion digests are sorted and
  /// deduplicated (conjunction is order- and duplication-insensitive), then
  /// combined with the optional enumerated expression \p Enumerated /
  /// \p MaxCount and the effective budget and cost model.
  static QueryDigest
  digestQuery(const ExprContext &Ctx, const std::vector<ExprRef> &Assertions,
              ExprRef Enumerated, unsigned MaxCount, uint64_t Budget,
              uint64_t ConflictCost, uint64_t PropagationCost);

private:
  /// A cached result plus the bookkeeping the eviction policy scores by.
  struct Entry {
    CachedQueryResult Result;
    uint64_t HitCount = 0;
    /// Monotonic per-shard insertion stamp: the FIFO order, and the
    /// deterministic tie-break for cost-weighted eviction.
    uint64_t Seq = 0;
  };

  struct Shard {
    std::mutex Mu;
    struct KeyHash {
      size_t operator()(const QueryDigest &D) const {
        return static_cast<size_t>(D.Lo ^ (D.Hi * 0x9e3779b97f4a7c15ULL));
      }
    };
    std::unordered_map<QueryDigest, Entry, KeyHash> Map;
    uint64_t NextSeq = 0;
    uint64_t Hits = 0, Misses = 0, Insertions = 0, Evictions = 0;
  };

  /// Removes the entry the policy likes least. Caller holds the shard lock.
  void evictOne(Shard &S);

  Shard &shardFor(const QueryDigest &D) {
    return *Shards[static_cast<size_t>(D.Hi) % Shards.size()];
  }

  SolverCacheConfig Config;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace er

#endif // ER_SOLVER_SOLVERCACHE_H
