//===- BitBlaster.cpp - Bitvector to CNF lowering --------------------------===//

#include "solver/BitBlaster.h"

#include "support/Error.h"

#include <cassert>

using namespace er;

BitBlaster::BitBlaster(const ExprContext &Ctx, SatSolver &Sat,
                       uint64_t MaxGates)
    : Ctx(Ctx), Sat(Sat), MaxGates(MaxGates) {
  unsigned TrueVar = Sat.newVar();
  TrueLit = Lit(TrueVar, false);
  Sat.addUnit(TrueLit);
}

Lit BitBlaster::freshLit() {
  ++GatesUsed;
  if (GatesUsed > MaxGates)
    BudgetExceeded = true;
  return Lit(Sat.newVar(), false);
}

Lit BitBlaster::litConst(bool B) const { return B ? TrueLit : ~TrueLit; }

//===----------------------------------------------------------------------===//
// Gates
//===----------------------------------------------------------------------===//

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  if (A == TrueLit)
    return B;
  if (B == TrueLit)
    return A;
  if (A == ~TrueLit || B == ~TrueLit)
    return ~TrueLit;
  if (A == B)
    return A;
  if (A == ~B)
    return ~TrueLit;
  Lit C = freshLit();
  Sat.addBinary(~C, A);
  Sat.addBinary(~C, B);
  Sat.addTernary(C, ~A, ~B);
  return C;
}

Lit BitBlaster::mkOr(Lit A, Lit B) { return ~mkAnd(~A, ~B); }

Lit BitBlaster::mkXor(Lit A, Lit B) {
  if (A == TrueLit)
    return ~B;
  if (B == TrueLit)
    return ~A;
  if (A == ~TrueLit)
    return B;
  if (B == ~TrueLit)
    return A;
  if (A == B)
    return ~TrueLit;
  if (A == ~B)
    return TrueLit;
  Lit C = freshLit();
  Sat.addTernary(~C, A, B);
  Sat.addTernary(~C, ~A, ~B);
  Sat.addTernary(C, ~A, B);
  Sat.addTernary(C, A, ~B);
  return C;
}

Lit BitBlaster::mkMux(Lit Sel, Lit T, Lit F) {
  if (T == F)
    return T;
  if (Sel == TrueLit)
    return T;
  if (Sel == ~TrueLit)
    return F;
  if (T == TrueLit && F == ~TrueLit)
    return Sel;
  if (T == ~TrueLit && F == TrueLit)
    return ~Sel;
  Lit C = freshLit();
  Sat.addTernary(~Sel, ~T, C);
  Sat.addTernary(~Sel, T, ~C);
  Sat.addTernary(Sel, ~F, C);
  Sat.addTernary(Sel, F, ~C);
  return C;
}

BitBlaster::Bits BitBlaster::mkAdd(const Bits &A, const Bits &B, Lit CarryIn) {
  assert(A.size() == B.size() && "adder width mismatch");
  Bits Sum(A.size());
  Lit Carry = CarryIn;
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AxB = mkXor(A[I], B[I]);
    Sum[I] = mkXor(AxB, Carry);
    Carry = mkOr(mkAnd(A[I], B[I]), mkAnd(Carry, AxB));
  }
  return Sum;
}

BitBlaster::Bits BitBlaster::mkNegate(const Bits &A) {
  Bits NotA(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  Bits Zero(A.size(), ~TrueLit);
  return mkAdd(NotA, Zero, TrueLit);
}

Lit BitBlaster::mkUlt(const Bits &A, const Bits &B) {
  // From LSB to MSB: the highest differing bit decides.
  Lit R = ~TrueLit;
  for (size_t I = 0; I < A.size(); ++I) {
    Lit Diff = mkXor(A[I], B[I]);
    R = mkMux(Diff, B[I], R);
  }
  return R;
}

Lit BitBlaster::mkEq(const Bits &A, const Bits &B) {
  Lit R = TrueLit;
  for (size_t I = 0; I < A.size(); ++I)
    R = mkAnd(R, ~mkXor(A[I], B[I]));
  return R;
}

BitBlaster::Bits BitBlaster::mkMuxVec(Lit Sel, const Bits &T, const Bits &F) {
  assert(T.size() == F.size() && "mux width mismatch");
  Bits R(T.size());
  for (size_t I = 0; I < T.size(); ++I)
    R[I] = mkMux(Sel, T[I], F[I]);
  return R;
}

BitBlaster::Bits BitBlaster::mkShift(const Bits &A, const Bits &Amount,
                                     bool Left, bool Arith) {
  size_t W = A.size();
  Lit Fill = Arith ? A[W - 1] : ~TrueLit;
  Bits R = A;
  // Barrel shifter over the bits of Amount that can matter.
  unsigned Stages = 0;
  while ((1ULL << Stages) < W)
    ++Stages;
  for (unsigned S = 0; S < Stages && S < Amount.size(); ++S) {
    size_t Shift = 1ULL << S;
    Bits Shifted(W);
    for (size_t I = 0; I < W; ++I) {
      if (Left)
        Shifted[I] = I >= Shift ? R[I - Shift] : ~TrueLit;
      else
        Shifted[I] = I + Shift < W ? R[I + Shift] : Fill;
    }
    R = mkMuxVec(Amount[S], Shifted, R);
  }
  // If any higher bit of Amount is set, the shift is >= W: result is all
  // fill bits.
  Lit TooBig = ~TrueLit;
  for (size_t I = Stages; I < Amount.size(); ++I)
    TooBig = mkOr(TooBig, Amount[I]);
  Bits FillVec(W, Left ? ~TrueLit : Fill);
  return mkMuxVec(TooBig, FillVec, R);
}

BitBlaster::Bits BitBlaster::mkMul(const Bits &A, const Bits &B) {
  size_t W = A.size();
  Bits Acc(W, ~TrueLit);
  for (size_t I = 0; I < W; ++I) {
    if (BudgetExceeded)
      return Acc;
    // Partial product: (A << I) masked by B[I].
    Bits Partial(W, ~TrueLit);
    for (size_t J = I; J < W; ++J)
      Partial[J] = mkAnd(A[J - I], B[I]);
    Acc = mkAdd(Acc, Partial, ~TrueLit);
  }
  return Acc;
}

void BitBlaster::mkDivRem(const Bits &A, const Bits &B, Bits &Quot,
                          Bits &Rem) {
  size_t W = A.size();
  Quot.assign(W, ~TrueLit);
  Bits R(W, ~TrueLit);
  Bits NotB(W);
  for (size_t I = 0; I < W; ++I)
    NotB[I] = ~B[I];
  // Restoring division, MSB first.
  for (size_t Step = W; Step-- > 0;) {
    if (BudgetExceeded)
      break;
    // R = (R << 1) | A[Step].
    for (size_t I = W; I-- > 1;)
      R[I] = R[I - 1];
    R[0] = A[Step];
    Lit GE = ~mkUlt(R, B); // R >= B.
    Bits RMinusB = mkAdd(R, NotB, TrueLit);
    R = mkMuxVec(GE, RMinusB, R);
    Quot[Step] = GE;
  }
  // Division by zero: quotient = all ones, remainder = A (SMT-LIB style).
  Bits Zero(W, ~TrueLit);
  Lit BZero = mkEq(B, Zero);
  Bits Ones(W, TrueLit);
  Quot = mkMuxVec(BZero, Ones, Quot);
  Rem = mkMuxVec(BZero, A, R);
}

//===----------------------------------------------------------------------===//
// Expression lowering
//===----------------------------------------------------------------------===//

BitBlaster::Bits BitBlaster::makeAtomBits(unsigned Width) {
  Bits B(Width);
  for (unsigned I = 0; I < Width; ++I)
    B[I] = freshLit();
  return B;
}

const BitBlaster::Bits &BitBlaster::blast(ExprRef E) {
  auto It = Cache.find(E);
  if (It != Cache.end())
    return It->second;
  Bits B = blastUncached(E);
  return Cache.emplace(E, std::move(B)).first->second;
}

BitBlaster::Bits BitBlaster::blastUncached(ExprRef E) {
  if (BudgetExceeded)
    return Bits(E->getWidth() ? E->getWidth() : 1, ~TrueLit);

  unsigned W = E->getWidth();
  switch (E->getKind()) {
  case ExprKind::Const: {
    Bits B(W);
    for (unsigned I = 0; I < W; ++I)
      B[I] = litConst((E->getConstVal() >> I) & 1);
    return B;
  }
  case ExprKind::Var: {
    Bits B = makeAtomBits(W);
    Atoms.emplace_back(E, B);
    return B;
  }
  case ExprKind::Read: {
    // Only atomic reads survive array elimination.
    assert(E->getOp0()->getKind() == ExprKind::SymArray &&
           E->getOp1()->isConst() &&
           "non-atomic Read reached the bit-blaster");
    Bits B = makeAtomBits(W);
    Atoms.emplace_back(E, B);
    return B;
  }
  case ExprKind::Not: {
    Bits A = blast(E->getOp0());
    for (auto &L : A)
      L = ~L;
    return A;
  }
  case ExprKind::Neg:
    return mkNegate(blast(E->getOp0()));
  case ExprKind::ZExt: {
    Bits A = blast(E->getOp0());
    A.resize(W, ~TrueLit);
    return A;
  }
  case ExprKind::SExt: {
    Bits A = blast(E->getOp0());
    Lit Sign = A.back();
    A.resize(W, Sign);
    return A;
  }
  case ExprKind::Trunc: {
    Bits A = blast(E->getOp0());
    A.resize(W);
    return A;
  }
  case ExprKind::Add:
    return mkAdd(blast(E->getOp0()), blast(E->getOp1()), ~TrueLit);
  case ExprKind::Sub: {
    Bits B = blast(E->getOp1());
    Bits NotB(B.size());
    for (size_t I = 0; I < B.size(); ++I)
      NotB[I] = ~B[I];
    return mkAdd(blast(E->getOp0()), NotB, TrueLit);
  }
  case ExprKind::Mul:
    return mkMul(blast(E->getOp0()), blast(E->getOp1()));
  case ExprKind::UDiv: {
    Bits Q, R;
    mkDivRem(blast(E->getOp0()), blast(E->getOp1()), Q, R);
    return Q;
  }
  case ExprKind::URem: {
    Bits Q, R;
    mkDivRem(blast(E->getOp0()), blast(E->getOp1()), Q, R);
    return R;
  }
  case ExprKind::SDiv:
  case ExprKind::SRem: {
    // abs/divide/fix-sign lowering.
    Bits A = blast(E->getOp0());
    Bits B = blast(E->getOp1());
    Lit SA = A.back(), SB = B.back();
    Bits AbsA = mkMuxVec(SA, mkNegate(A), A);
    Bits AbsB = mkMuxVec(SB, mkNegate(B), B);
    Bits Q, R;
    mkDivRem(AbsA, AbsB, Q, R);
    if (E->getKind() == ExprKind::SDiv) {
      Lit NegResult = mkXor(SA, SB);
      return mkMuxVec(NegResult, mkNegate(Q), Q);
    }
    // Remainder takes the dividend's sign.
    return mkMuxVec(SA, mkNegate(R), R);
  }
  case ExprKind::And: {
    Bits A = blast(E->getOp0()), B = blast(E->getOp1());
    Bits C(W);
    for (unsigned I = 0; I < W; ++I)
      C[I] = mkAnd(A[I], B[I]);
    return C;
  }
  case ExprKind::Or: {
    Bits A = blast(E->getOp0()), B = blast(E->getOp1());
    Bits C(W);
    for (unsigned I = 0; I < W; ++I)
      C[I] = mkOr(A[I], B[I]);
    return C;
  }
  case ExprKind::Xor: {
    Bits A = blast(E->getOp0()), B = blast(E->getOp1());
    Bits C(W);
    for (unsigned I = 0; I < W; ++I)
      C[I] = mkXor(A[I], B[I]);
    return C;
  }
  case ExprKind::Shl:
    return mkShift(blast(E->getOp0()), blast(E->getOp1()), /*Left=*/true,
                   /*Arith=*/false);
  case ExprKind::LShr:
    return mkShift(blast(E->getOp0()), blast(E->getOp1()), /*Left=*/false,
                   /*Arith=*/false);
  case ExprKind::AShr:
    return mkShift(blast(E->getOp0()), blast(E->getOp1()), /*Left=*/false,
                   /*Arith=*/true);
  case ExprKind::Eq:
    return {mkEq(blast(E->getOp0()), blast(E->getOp1()))};
  case ExprKind::Ult:
    return {mkUlt(blast(E->getOp0()), blast(E->getOp1()))};
  case ExprKind::Slt: {
    // slt(a, b) == ult(a ^ signbit, b ^ signbit).
    Bits A = blast(E->getOp0());
    Bits B = blast(E->getOp1());
    A.back() = ~A.back();
    B.back() = ~B.back();
    return {mkUlt(A, B)};
  }
  case ExprKind::Ite: {
    Lit Sel = blast(E->getOp0())[0];
    return mkMuxVec(Sel, blast(E->getOp1()), blast(E->getOp2()));
  }
  case ExprKind::ConstArray:
  case ExprKind::DataArray:
  case ExprKind::SymArray:
  case ExprKind::Write:
    fatalError("array-typed expression reached the bit-blaster");
  }
  fatalError("unhandled expression kind in bit-blaster");
}

bool BitBlaster::assertTrue(ExprRef E) {
  assert(E->getWidth() == 1 && "asserting non-boolean expression");
  Lit L = blast(E)[0];
  if (BudgetExceeded)
    return false;
  Sat.addUnit(L);
  return true;
}

bool BitBlaster::encode(ExprRef E) {
  blast(E);
  return !BudgetExceeded;
}

void BitBlaster::blockValue(ExprRef E, uint64_t V) {
  auto It = Cache.find(E);
  assert(It != Cache.end() && "expression was not encoded");
  const Bits &B = It->second;
  std::vector<Lit> Clause;
  Clause.reserve(B.size());
  for (size_t I = 0; I < B.size(); ++I) {
    bool BitVal = (V >> I) & 1;
    // Require at least one bit to differ from V.
    Clause.push_back(BitVal ? ~B[I] : B[I]);
  }
  Sat.addClause(std::move(Clause));
}

uint64_t BitBlaster::valueOf(ExprRef E) const {
  auto It = Cache.find(E);
  assert(It != Cache.end() && "expression was not blasted");
  uint64_t V = 0;
  const Bits &B = It->second;
  for (size_t I = 0; I < B.size(); ++I) {
    bool BitVal = Sat.modelValue(B[I].var()) != B[I].negated();
    V |= static_cast<uint64_t>(BitVal) << I;
  }
  return V;
}

void BitBlaster::extractAssignment(Assignment &Out) const {
  for (const auto &[E, B] : Atoms) {
    uint64_t V = 0;
    for (size_t I = 0; I < B.size(); ++I) {
      bool BitVal = Sat.modelValue(B[I].var()) != B[I].negated();
      V |= static_cast<uint64_t>(BitVal) << I;
    }
    if (E->getKind() == ExprKind::Var) {
      Out.VarValues[E->getVarId()] = V;
    } else {
      assert(E->getKind() == ExprKind::Read && "unexpected atom kind");
      uint32_t ArrId = E->getOp0()->getVarId();
      uint64_t Index = E->getOp1()->getConstVal();
      Out.ArrayValues[ArrId][Index] = V;
    }
  }
}
