//===- BitBlaster.h - Bitvector to CNF lowering -----------------*- C++ -*-===//
///
/// \file
/// Tseitin-encodes bitvector expressions into CNF for the SAT core. Array
/// expressions must be eliminated first (see ConstraintSolver); the only
/// Read expressions accepted here are atomic reads of a symbolic array at a
/// constant index, which are treated as free variables.
///
/// Gate construction is metered: exceeding the gate budget marks the blaster
/// exceeded and the enclosing query reports a timeout (a symbolic-execution
/// stall in ER terms).
///
//===----------------------------------------------------------------------===//

#ifndef ER_SOLVER_BITBLASTER_H
#define ER_SOLVER_BITBLASTER_H

#include "solver/Expr.h"
#include "solver/Sat.h"

#include <unordered_map>
#include <vector>

namespace er {

/// Lowers Expr trees to CNF in a SatSolver and maps SAT models back to
/// expression-level assignments.
class BitBlaster {
public:
  BitBlaster(const ExprContext &Ctx, SatSolver &Sat, uint64_t MaxGates);

  /// Asserts that boolean (width-1) expression \p E holds. Returns false if
  /// the gate budget was exceeded while encoding.
  bool assertTrue(ExprRef E);

  /// Encodes \p E without asserting anything (so valueOf/blockValue can be
  /// used on it). Returns false if the gate budget was exceeded.
  bool encode(ExprRef E);

  /// Adds a clause forbidding \p E (previously encoded) from taking the
  /// value \p V in future models.
  void blockValue(ExprRef E, uint64_t V);

  bool exceeded() const { return BudgetExceeded; }
  uint64_t gatesUsed() const { return GatesUsed; }

  /// After a Sat result: evaluates the blasted bits of \p E (which must have
  /// been encoded during assertTrue) under the SAT model.
  uint64_t valueOf(ExprRef E) const;

  /// After a Sat result: fills \p Out with values for every atom (variable
  /// or symbolic-array element) the encoding touched.
  void extractAssignment(Assignment &Out) const;

private:
  using Bits = std::vector<Lit>;

  const Bits &blast(ExprRef E);
  Bits blastUncached(ExprRef E);
  Bits makeAtomBits(unsigned Width);

  Lit freshLit();
  Lit litConst(bool B) const;
  Lit mkAnd(Lit A, Lit B);
  Lit mkOr(Lit A, Lit B);
  Lit mkXor(Lit A, Lit B);
  Lit mkMux(Lit Sel, Lit T, Lit F);
  Bits mkAdd(const Bits &A, const Bits &B, Lit CarryIn);
  Bits mkNegate(const Bits &A);
  Lit mkUlt(const Bits &A, const Bits &B);
  Lit mkEq(const Bits &A, const Bits &B);
  Bits mkMuxVec(Lit Sel, const Bits &T, const Bits &F);
  Bits mkShift(const Bits &A, const Bits &Amount, bool Left, bool Arith);
  Bits mkMul(const Bits &A, const Bits &B);
  void mkDivRem(const Bits &A, const Bits &B, Bits &Quot, Bits &Rem);

  const ExprContext &Ctx;
  SatSolver &Sat;
  uint64_t MaxGates;
  uint64_t GatesUsed = 0;
  bool BudgetExceeded = false;
  Lit TrueLit;

  std::unordered_map<ExprRef, Bits> Cache;
  /// Atoms whose SAT variables represent free model values.
  std::vector<std::pair<ExprRef, Bits>> Atoms;
};

} // namespace er

#endif // ER_SOLVER_BITBLASTER_H
