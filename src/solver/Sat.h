//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
///
/// \file
/// A from-scratch CDCL SAT solver: two-watched-literal propagation, first-UIP
/// clause learning, VSIDS branching with an order heap, phase saving, and
/// Luby restarts. The bit-blaster lowers bitvector queries to CNF and solves
/// them here.
///
/// The solver is budgeted: a conflict/propagation budget models the paper's
/// solver timeouts deterministically. Exceeding it yields Unknown, which the
/// symbolic executor reports as a stall.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SOLVER_SAT_H
#define ER_SOLVER_SAT_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace er {

/// A literal: variable index (1-based) with sign. Encoded as 2*var + sign.
class Lit {
public:
  Lit() = default;
  Lit(unsigned Var, bool Negated) : Code(2 * Var + (Negated ? 1 : 0)) {}

  unsigned var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  unsigned code() const { return Code; }

private:
  unsigned Code = 0;
};

/// Outcome of a SAT query.
enum class SatStatus { Sat, Unsat, Unknown };

/// Budget limiting SAT search effort; exhausting any limit aborts the search
/// with SatStatus::Unknown.
struct SatBudget {
  uint64_t MaxConflicts = UINT64_MAX;
  uint64_t MaxPropagations = UINT64_MAX;
  /// Wall-clock deadline (the paper's solver timeout is wall time); zero
  /// time_point = no deadline.
  std::chrono::steady_clock::time_point Deadline{};
};

/// Search statistics accumulated across solve() calls.
struct SatStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearnedClauses = 0;
};

/// CDCL SAT solver over CNF added via addClause().
class SatSolver {
public:
  SatSolver();

  /// Allocates a fresh variable; returns its index (>= 1).
  unsigned newVar();
  unsigned numVars() const { return NumVars; }
  uint64_t numClauses() const { return Clauses.size(); }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void addClause(std::vector<Lit> Clause);
  void addUnit(Lit L) { addClause({L}); }
  void addBinary(Lit A, Lit B) { addClause({A, B}); }
  void addTernary(Lit A, Lit B, Lit C) { addClause({A, B, C}); }

  /// Runs CDCL search under \p Budget, with optional extra assumptions.
  SatStatus solve(const SatBudget &Budget,
                  const std::vector<Lit> &Assumptions = {});

  /// After Sat: returns the value assigned to \p Var.
  bool modelValue(unsigned Var) const;

  const SatStats &getStats() const { return Stats; }

private:
  enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
  };

  struct Watcher {
    unsigned ClauseIdx;
    Lit Blocker;
  };

  LBool litValue(Lit L) const;
  bool assign(Lit L, int Reason);
  int propagate();
  void analyze(int ConflictClause, std::vector<Lit> &Learned,
               unsigned &BtLevel);
  void backtrack(unsigned Level);
  Lit pickBranchLit();
  void bumpVar(unsigned Var);
  void attachClause(unsigned Idx);
  static uint64_t luby(uint64_t I);

  // Order-heap operations (max-heap on Activity).
  void heapInsert(unsigned Var);
  void heapUpdate(unsigned Var);
  unsigned heapPop();
  void heapSiftUp(size_t Pos);
  void heapSiftDown(size_t Pos);
  bool heapEmpty() const { return Heap.empty(); }

  unsigned NumVars = 0;
  unsigned DecisionLevel = 0;
  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // Indexed by literal code.
  std::vector<LBool> Values;                 // Indexed by var.
  std::vector<int> Reasons;                  // Clause index or -1 (decision).
  std::vector<unsigned> Levels;              // Decision level per var.
  std::vector<bool> SavedPhase;
  std::vector<double> Activity;
  std::vector<Lit> Trail;
  std::vector<unsigned> TrailLims;
  std::vector<unsigned> Heap;    // Var indices, max-heap by activity.
  std::vector<int> HeapPos;      // Var -> heap slot or -1.
  std::vector<uint8_t> Seen;     // Scratch for analyze().
  size_t PropHead = 0;
  double VarInc = 1.0;
  bool Unsatisfiable = false;
  SatStats Stats;
  // Wall deadline state for the current solve() (checked inside propagate,
  // since a single propagation closure can dominate wall time).
  std::chrono::steady_clock::time_point CurDeadline{};
  bool TimedOut = false;
};

} // namespace er

#endif // ER_SOLVER_SAT_H
