//===- Expr.cpp - Hash-consed expression construction ---------------------===//

#include "solver/Expr.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace er;

const char *er::exprKindName(ExprKind K) {
  switch (K) {
  case ExprKind::Const:      return "const";
  case ExprKind::Var:        return "var";
  case ExprKind::ConstArray: return "const-array";
  case ExprKind::DataArray:  return "data-array";
  case ExprKind::SymArray:   return "sym-array";
  case ExprKind::Not:        return "not";
  case ExprKind::Neg:        return "neg";
  case ExprKind::ZExt:       return "zext";
  case ExprKind::SExt:       return "sext";
  case ExprKind::Trunc:      return "trunc";
  case ExprKind::Add:        return "add";
  case ExprKind::Sub:        return "sub";
  case ExprKind::Mul:        return "mul";
  case ExprKind::UDiv:       return "udiv";
  case ExprKind::SDiv:       return "sdiv";
  case ExprKind::URem:       return "urem";
  case ExprKind::SRem:       return "srem";
  case ExprKind::And:        return "and";
  case ExprKind::Or:         return "or";
  case ExprKind::Xor:        return "xor";
  case ExprKind::Shl:        return "shl";
  case ExprKind::LShr:       return "lshr";
  case ExprKind::AShr:       return "ashr";
  case ExprKind::Eq:         return "eq";
  case ExprKind::Ult:        return "ult";
  case ExprKind::Slt:        return "slt";
  case ExprKind::Ite:        return "ite";
  case ExprKind::Read:       return "read";
  case ExprKind::Write:      return "write";
  }
  fatalError("unknown expr kind");
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

static size_t hashCombine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

static size_t computeHash(const Expr &E) {
  size_t H = static_cast<size_t>(E.getKind());
  H = hashCombine(H, E.getWidth());
  H = hashCombine(H, E.getElemWidth());
  H = hashCombine(H, static_cast<size_t>(E.getNumElems()));
  H = hashCombine(H, static_cast<size_t>(E.getConstVal()));
  H = hashCombine(H, E.getVarId());
  for (unsigned I = 0; I < E.getNumOps(); ++I)
    H = hashCombine(H, E.getOp(I)->getHash());
  return H;
}

bool ExprContext::ExprPtrEq::operator()(const Expr *A, const Expr *B) const {
  if (A->getKind() != B->getKind() || A->getWidth() != B->getWidth() ||
      A->getElemWidth() != B->getElemWidth() ||
      A->getNumElems() != B->getNumElems() ||
      A->getConstVal() != B->getConstVal() || A->getVarId() != B->getVarId() ||
      A->getNumOps() != B->getNumOps())
    return false;
  for (unsigned I = 0; I < A->getNumOps(); ++I)
    if (A->getOp(I) != B->getOp(I))
      return false;
  return true;
}

ExprRef ExprContext::intern(Expr Proto) {
  Proto.HashVal = computeHash(Proto);
  auto It = Unique.find(&Proto);
  if (It != Unique.end()) {
    ++Stats.HashHits;
    return *It;
  }
  Arena.push_back(Proto);
  Expr *Node = &Arena.back();
  Node->Id = static_cast<unsigned>(Arena.size() - 1);
  Unique.insert(Node);
  ++Stats.NodesCreated;
  return Node;
}

//===----------------------------------------------------------------------===//
// Leaves
//===----------------------------------------------------------------------===//

ExprRef ExprContext::constant(uint64_t Value, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "invalid constant width");
  Expr P;
  P.Kind = ExprKind::Const;
  P.Width = static_cast<uint8_t>(Width);
  P.ConstVal = maskToWidth(Value, Width);
  return intern(P);
}

ExprRef ExprContext::makeVar(const std::string &Name, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "invalid variable width");
  Expr P;
  P.Kind = ExprKind::Var;
  P.Width = static_cast<uint8_t>(Width);
  P.VarId = static_cast<uint32_t>(VarNames.size());
  VarNames.push_back(Name);
  return intern(P);
}

const std::string &ExprContext::getVarName(uint32_t Id) const {
  assert(Id < VarNames.size() && "variable id out of range");
  return VarNames[Id];
}

ExprRef ExprContext::constArray(unsigned ElemWidth, uint64_t NumElems,
                                uint64_t Fill) {
  assert(ElemWidth >= 1 && ElemWidth <= 64 && "invalid element width");
  Expr P;
  P.Kind = ExprKind::ConstArray;
  P.ElemWidth = static_cast<uint8_t>(ElemWidth);
  P.NumElems = NumElems;
  P.ConstVal = maskToWidth(Fill, ElemWidth);
  return intern(P);
}

ExprRef ExprContext::dataArray(unsigned ElemWidth, std::vector<uint64_t> Data) {
  assert(ElemWidth >= 1 && ElemWidth <= 64 && "invalid element width");
  for (auto &V : Data)
    V = maskToWidth(V, ElemWidth);
  // Collapse all-equal contents to a ConstArray for better sharing.
  if (!Data.empty() &&
      std::all_of(Data.begin(), Data.end(),
                  [&](uint64_t V) { return V == Data.front(); }))
    return constArray(ElemWidth, Data.size(), Data.front());
  Expr P;
  P.Kind = ExprKind::DataArray;
  P.ElemWidth = static_cast<uint8_t>(ElemWidth);
  P.NumElems = Data.size();
  P.VarId = static_cast<uint32_t>(DataArrays.size());
  DataArrays.push_back(std::move(Data));
  // DataArray nodes are identified by their storage slot, so each call
  // creates a distinct node; callers cache them per memory object.
  return intern(P);
}

ExprRef ExprContext::symArray(const std::string &Name, unsigned ElemWidth,
                              uint64_t NumElems) {
  Expr P;
  P.Kind = ExprKind::SymArray;
  P.ElemWidth = static_cast<uint8_t>(ElemWidth);
  P.NumElems = NumElems;
  P.VarId = static_cast<uint32_t>(SymArrayNames.size());
  SymArrayNames.push_back(Name);
  return intern(P);
}

const std::vector<uint64_t> &
ExprContext::getArrayData(ExprRef DataArrayExpr) const {
  assert(DataArrayExpr->getKind() == ExprKind::DataArray && "not a DataArray");
  return DataArrays[DataArrayExpr->getVarId()];
}

const std::string &ExprContext::getSymArrayName(uint32_t Id) const {
  assert(Id < SymArrayNames.size() && "symbolic array id out of range");
  return SymArrayNames[Id];
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

static uint64_t foldBinaryConst(ExprKind K, uint64_t A, uint64_t B,
                                unsigned W) {
  switch (K) {
  case ExprKind::Add:  return maskToWidth(A + B, W);
  case ExprKind::Sub:  return maskToWidth(A - B, W);
  case ExprKind::Mul:  return maskToWidth(A * B, W);
  case ExprKind::UDiv: return B == 0 ? maskToWidth(~0ULL, W) : A / B;
  case ExprKind::URem: return B == 0 ? A : A % B;
  case ExprKind::SDiv: {
    if (B == 0)
      return maskToWidth(~0ULL, W);
    int64_t SA = signExtend(A, W), SB = signExtend(B, W);
    if (SB == -1 && SA == signExtend(1ULL << (W - 1), W))
      return maskToWidth(static_cast<uint64_t>(SA), W); // INT_MIN / -1 wraps.
    return maskToWidth(static_cast<uint64_t>(SA / SB), W);
  }
  case ExprKind::SRem: {
    if (B == 0)
      return A;
    int64_t SA = signExtend(A, W), SB = signExtend(B, W);
    if (SB == -1)
      return 0;
    return maskToWidth(static_cast<uint64_t>(SA % SB), W);
  }
  case ExprKind::And:  return A & B;
  case ExprKind::Or:   return A | B;
  case ExprKind::Xor:  return A ^ B;
  case ExprKind::Shl:  return B >= W ? 0 : maskToWidth(A << B, W);
  case ExprKind::LShr: return B >= W ? 0 : A >> B;
  case ExprKind::AShr: {
    int64_t SA = signExtend(A, W);
    if (B >= W)
      return maskToWidth(static_cast<uint64_t>(SA < 0 ? -1 : 0), W);
    return maskToWidth(static_cast<uint64_t>(SA >> B), W);
  }
  case ExprKind::Eq:   return A == B;
  case ExprKind::Ult:  return A < B;
  case ExprKind::Slt:  return signExtend(A, W) < signExtend(B, W);
  default:
    fatalError("foldBinaryConst: unexpected kind");
  }
}

static bool isCommutative(ExprKind K) {
  switch (K) {
  case ExprKind::Add:
  case ExprKind::Mul:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Xor:
  case ExprKind::Eq:
    return true;
  default:
    return false;
  }
}

ExprRef ExprContext::foldBinary(ExprKind K, ExprRef A, ExprRef B) {
  unsigned W = A->getWidth();
  // Canonicalize commutative ops: constants to the right, then by node id.
  if (isCommutative(K)) {
    if (A->isConst() && !B->isConst())
      std::swap(A, B);
    else if (!A->isConst() && !B->isConst() && B->getId() < A->getId())
      std::swap(A, B);
  }

  if (A->isConst() && B->isConst()) {
    ++Stats.FoldsApplied;
    unsigned RW = (K == ExprKind::Eq || K == ExprKind::Ult ||
                   K == ExprKind::Slt)
                      ? 1
                      : W;
    return constant(foldBinaryConst(K, A->getConstVal(), B->getConstVal(), W),
                    RW);
  }

  // Identities with a constant on the right.
  if (B->isConst()) {
    uint64_t C = B->getConstVal();
    uint64_t AllOnes = maskToWidth(~0ULL, W);
    switch (K) {
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Or:
    case ExprKind::Xor:
    case ExprKind::Shl:
    case ExprKind::LShr:
    case ExprKind::AShr:
      if (C == 0) {
        ++Stats.FoldsApplied;
        return A;
      }
      break;
    case ExprKind::Mul:
      if (C == 0) {
        ++Stats.FoldsApplied;
        return B;
      }
      if (C == 1) {
        ++Stats.FoldsApplied;
        return A;
      }
      break;
    case ExprKind::UDiv:
      if (C == 1) {
        ++Stats.FoldsApplied;
        return A;
      }
      break;
    case ExprKind::And:
      if (C == 0) {
        ++Stats.FoldsApplied;
        return B;
      }
      if (C == AllOnes) {
        ++Stats.FoldsApplied;
        return A;
      }
      break;
    case ExprKind::Ult:
      if (C == 0) { // Nothing is < 0 unsigned.
        ++Stats.FoldsApplied;
        return falseExpr();
      }
      break;
    default:
      break;
    }
    if (K == ExprKind::Or && C == AllOnes) {
      ++Stats.FoldsApplied;
      return B;
    }
  }

  if (A == B) {
    switch (K) {
    case ExprKind::Sub:
    case ExprKind::Xor:
      ++Stats.FoldsApplied;
      return constant(0, W);
    case ExprKind::And:
    case ExprKind::Or:
      ++Stats.FoldsApplied;
      return A;
    case ExprKind::Eq:
      ++Stats.FoldsApplied;
      return trueExpr();
    case ExprKind::Ult:
    case ExprKind::Slt:
      ++Stats.FoldsApplied;
      return falseExpr();
    default:
      break;
    }
  }

  // Boolean (width-1) extra identities.
  if (W == 1 && K == ExprKind::Eq && B->isConst()) {
    ++Stats.FoldsApplied;
    return B->getConstVal() ? A : bvnot(A);
  }

  // (add (add x, c1), c2) -> (add x, c1+c2); same for sub folded into add.
  if (K == ExprKind::Add && B->isConst() &&
      A->getKind() == ExprKind::Add && A->getOp1()->isConst()) {
    ++Stats.FoldsApplied;
    return add(A->getOp0(),
               constant(A->getOp1()->getConstVal() + B->getConstVal(), W));
  }

  return nullptr;
}

ExprRef ExprContext::binary(ExprKind K, ExprRef A, ExprRef B) {
  assert(A && B && "null operand");
  assert(A->getWidth() == B->getWidth() && "operand width mismatch");
  if (ExprRef Folded = foldBinary(K, A, B))
    return Folded;
  // Re-canonicalize after failed fold (foldBinary may have swapped copies).
  if (isCommutative(K)) {
    if (A->isConst() && !B->isConst())
      std::swap(A, B);
    else if (!A->isConst() && !B->isConst() && B->getId() < A->getId())
      std::swap(A, B);
  }
  Expr P;
  P.Kind = K;
  bool Rel = K == ExprKind::Eq || K == ExprKind::Ult || K == ExprKind::Slt;
  P.Width = static_cast<uint8_t>(Rel ? 1 : A->getWidth());
  P.NumOps = 2;
  P.Ops[0] = A;
  P.Ops[1] = B;
  return intern(P);
}

//===----------------------------------------------------------------------===//
// Public builders
//===----------------------------------------------------------------------===//

ExprRef ExprContext::add(ExprRef A, ExprRef B) { return binary(ExprKind::Add, A, B); }
ExprRef ExprContext::sub(ExprRef A, ExprRef B) { return binary(ExprKind::Sub, A, B); }
ExprRef ExprContext::mul(ExprRef A, ExprRef B) { return binary(ExprKind::Mul, A, B); }
ExprRef ExprContext::udiv(ExprRef A, ExprRef B) { return binary(ExprKind::UDiv, A, B); }
ExprRef ExprContext::sdiv(ExprRef A, ExprRef B) { return binary(ExprKind::SDiv, A, B); }
ExprRef ExprContext::urem(ExprRef A, ExprRef B) { return binary(ExprKind::URem, A, B); }
ExprRef ExprContext::srem(ExprRef A, ExprRef B) { return binary(ExprKind::SRem, A, B); }
ExprRef ExprContext::bvand(ExprRef A, ExprRef B) { return binary(ExprKind::And, A, B); }
ExprRef ExprContext::bvor(ExprRef A, ExprRef B) { return binary(ExprKind::Or, A, B); }
ExprRef ExprContext::bvxor(ExprRef A, ExprRef B) { return binary(ExprKind::Xor, A, B); }
ExprRef ExprContext::shl(ExprRef A, ExprRef B) { return binary(ExprKind::Shl, A, B); }
ExprRef ExprContext::lshr(ExprRef A, ExprRef B) { return binary(ExprKind::LShr, A, B); }
ExprRef ExprContext::ashr(ExprRef A, ExprRef B) { return binary(ExprKind::AShr, A, B); }

ExprRef ExprContext::bvnot(ExprRef A) {
  if (A->isConst()) {
    ++Stats.FoldsApplied;
    return constant(~A->getConstVal(), A->getWidth());
  }
  if (A->getKind() == ExprKind::Not) {
    ++Stats.FoldsApplied;
    return A->getOp0();
  }
  Expr P;
  P.Kind = ExprKind::Not;
  P.Width = static_cast<uint8_t>(A->getWidth());
  P.NumOps = 1;
  P.Ops[0] = A;
  return intern(P);
}

ExprRef ExprContext::neg(ExprRef A) {
  if (A->isConst()) {
    ++Stats.FoldsApplied;
    return constant(-A->getConstVal(), A->getWidth());
  }
  Expr P;
  P.Kind = ExprKind::Neg;
  P.Width = static_cast<uint8_t>(A->getWidth());
  P.NumOps = 1;
  P.Ops[0] = A;
  return intern(P);
}

ExprRef ExprContext::zext(ExprRef A, unsigned Width) {
  assert(Width >= A->getWidth() && "zext must widen");
  if (Width == A->getWidth())
    return A;
  if (A->isConst()) {
    ++Stats.FoldsApplied;
    return constant(A->getConstVal(), Width);
  }
  Expr P;
  P.Kind = ExprKind::ZExt;
  P.Width = static_cast<uint8_t>(Width);
  P.NumOps = 1;
  P.Ops[0] = A;
  return intern(P);
}

ExprRef ExprContext::sext(ExprRef A, unsigned Width) {
  assert(Width >= A->getWidth() && "sext must widen");
  if (Width == A->getWidth())
    return A;
  if (A->isConst()) {
    ++Stats.FoldsApplied;
    return constant(
        static_cast<uint64_t>(signExtend(A->getConstVal(), A->getWidth())),
        Width);
  }
  Expr P;
  P.Kind = ExprKind::SExt;
  P.Width = static_cast<uint8_t>(Width);
  P.NumOps = 1;
  P.Ops[0] = A;
  return intern(P);
}

ExprRef ExprContext::trunc(ExprRef A, unsigned Width) {
  assert(Width <= A->getWidth() && "trunc must narrow");
  if (Width == A->getWidth())
    return A;
  if (A->isConst()) {
    ++Stats.FoldsApplied;
    return constant(A->getConstVal(), Width);
  }
  // trunc(zext/sext x) where x already fits -> x or narrower cast.
  if ((A->getKind() == ExprKind::ZExt || A->getKind() == ExprKind::SExt)) {
    ExprRef Inner = A->getOp0();
    if (Inner->getWidth() == Width) {
      ++Stats.FoldsApplied;
      return Inner;
    }
    if (Inner->getWidth() < Width) {
      ++Stats.FoldsApplied;
      return A->getKind() == ExprKind::ZExt ? zext(Inner, Width)
                                            : sext(Inner, Width);
    }
  }
  Expr P;
  P.Kind = ExprKind::Trunc;
  P.Width = static_cast<uint8_t>(Width);
  P.NumOps = 1;
  P.Ops[0] = A;
  return intern(P);
}

ExprRef ExprContext::castTo(ExprRef A, unsigned Width, bool Signed) {
  if (A->getWidth() == Width)
    return A;
  if (A->getWidth() > Width)
    return trunc(A, Width);
  return Signed ? sext(A, Width) : zext(A, Width);
}

ExprRef ExprContext::eq(ExprRef A, ExprRef B) { return binary(ExprKind::Eq, A, B); }
ExprRef ExprContext::ne(ExprRef A, ExprRef B) { return bvnot(eq(A, B)); }
ExprRef ExprContext::ult(ExprRef A, ExprRef B) { return binary(ExprKind::Ult, A, B); }
ExprRef ExprContext::ule(ExprRef A, ExprRef B) { return bvnot(ult(B, A)); }
ExprRef ExprContext::ugt(ExprRef A, ExprRef B) { return ult(B, A); }
ExprRef ExprContext::uge(ExprRef A, ExprRef B) { return bvnot(ult(A, B)); }
ExprRef ExprContext::slt(ExprRef A, ExprRef B) { return binary(ExprKind::Slt, A, B); }
ExprRef ExprContext::sle(ExprRef A, ExprRef B) { return bvnot(slt(B, A)); }
ExprRef ExprContext::sgt(ExprRef A, ExprRef B) { return slt(B, A); }
ExprRef ExprContext::sge(ExprRef A, ExprRef B) { return bvnot(slt(A, B)); }

ExprRef ExprContext::ite(ExprRef Cond, ExprRef T, ExprRef F) {
  assert(Cond->getWidth() == 1 && "ite condition must be boolean");
  assert(T->getWidth() == F->getWidth() && "ite arm width mismatch");
  if (Cond->isConst()) {
    ++Stats.FoldsApplied;
    return Cond->getConstVal() ? T : F;
  }
  if (T == F) {
    ++Stats.FoldsApplied;
    return T;
  }
  // Boolean-valued ite folds to logic ops.
  if (T->getWidth() == 1 && T->isConst() && F->isConst()) {
    ++Stats.FoldsApplied;
    return T->getConstVal() ? Cond : bvnot(Cond);
  }
  Expr P;
  P.Kind = ExprKind::Ite;
  P.Width = static_cast<uint8_t>(T->getWidth());
  P.NumOps = 3;
  P.Ops[0] = Cond;
  P.Ops[1] = T;
  P.Ops[2] = F;
  return intern(P);
}

ExprRef ExprContext::read(ExprRef Array, ExprRef Index) {
  assert(Array->isArray() && "read from non-array");
  // Read-over-write with decidable indices simplifies away.
  ExprRef A = Array;
  while (A->getKind() == ExprKind::Write) {
    ExprRef WIdx = A->getOp1();
    if (Index == WIdx) {
      ++Stats.FoldsApplied;
      return A->getOp2();
    }
    if (Index->isConst() && WIdx->isConst()) {
      // Distinct constants: skip this write.
      ++Stats.FoldsApplied;
      A = A->getOp0();
      continue;
    }
    break; // Cannot decide aliasing; keep the symbolic read.
  }
  if (A->getKind() == ExprKind::ConstArray) {
    ++Stats.FoldsApplied;
    return constant(A->getConstVal(), A->getElemWidth());
  }
  if (A->getKind() == ExprKind::DataArray && Index->isConst()) {
    ++Stats.FoldsApplied;
    const auto &Data = getArrayData(A);
    uint64_t I = Index->getConstVal();
    return constant(I < Data.size() ? Data[I] : 0, A->getElemWidth());
  }
  Expr P;
  P.Kind = ExprKind::Read;
  P.Width = static_cast<uint8_t>(A->getElemWidth());
  P.ElemWidth = static_cast<uint8_t>(A->getElemWidth());
  P.NumOps = 2;
  P.Ops[0] = A;
  P.Ops[1] = Index;
  return intern(P);
}

ExprRef ExprContext::write(ExprRef Array, ExprRef Index, ExprRef Value) {
  assert(Array->isArray() && "write to non-array");
  assert(Value->getWidth() == Array->getElemWidth() &&
         "write value width mismatch");
  // Concrete write over concrete storage folds into new concrete storage,
  // so chains only grow with symbolic-dependent writes (mirroring the
  // paper's symbolic write chains).
  if (Index->isConst() && Value->isConst()) {
    if (Array->getKind() == ExprKind::ConstArray ||
        Array->getKind() == ExprKind::DataArray) {
      ++Stats.FoldsApplied;
      std::vector<uint64_t> Data;
      if (Array->getKind() == ExprKind::ConstArray)
        Data.assign(Array->getNumElems(), Array->getConstVal());
      else
        Data = getArrayData(Array);
      uint64_t I = Index->getConstVal();
      if (I < Data.size())
        Data[I] = Value->getConstVal();
      return dataArray(Array->getElemWidth(), std::move(Data));
    }
    // Overwrite of the same constant index at the top of a chain.
    if (Array->getKind() == ExprKind::Write && Array->getOp1() == Index) {
      ++Stats.FoldsApplied;
      Array = Array->getOp0();
      return write(Array, Index, Value);
    }
  }
  Expr P;
  P.Kind = ExprKind::Write;
  P.ElemWidth = static_cast<uint8_t>(Array->getElemWidth());
  P.NumElems = Array->getNumElems();
  P.NumOps = 3;
  P.Ops[0] = Array;
  P.Ops[1] = Index;
  P.Ops[2] = Value;
  return intern(P);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

uint64_t ExprContext::evalArrayElem(ExprRef E, uint64_t Index,
                                    const Assignment &A) const {
  switch (E->getKind()) {
  case ExprKind::ConstArray:
    return E->getConstVal();
  case ExprKind::DataArray: {
    const auto &Data = getArrayData(E);
    return Index < Data.size() ? Data[Index] : 0;
  }
  case ExprKind::SymArray:
    return maskToWidth(A.getArrayElem(E->getVarId(), Index),
                       E->getElemWidth());
  case ExprKind::Write: {
    uint64_t WIdx = evaluate(E->getOp1(), A);
    if (WIdx == Index)
      return evaluate(E->getOp2(), A);
    return evalArrayElem(E->getOp0(), Index, A);
  }
  default:
    fatalError("evalArrayElem: not an array expression");
  }
}

uint64_t ExprContext::evalImpl(ExprRef E, const Assignment &A,
                               std::unordered_map<ExprRef, uint64_t> &Memo)
    const {
  auto It = Memo.find(E);
  if (It != Memo.end())
    return It->second;

  uint64_t R = 0;
  unsigned W = E->getWidth();
  switch (E->getKind()) {
  case ExprKind::Const:
    R = E->getConstVal();
    break;
  case ExprKind::Var:
    R = maskToWidth(A.getVar(E->getVarId()), W);
    break;
  case ExprKind::Not:
    R = maskToWidth(~evalImpl(E->getOp0(), A, Memo), W);
    break;
  case ExprKind::Neg:
    R = maskToWidth(-evalImpl(E->getOp0(), A, Memo), W);
    break;
  case ExprKind::ZExt:
    R = evalImpl(E->getOp0(), A, Memo);
    break;
  case ExprKind::SExt:
    R = maskToWidth(static_cast<uint64_t>(signExtend(
                        evalImpl(E->getOp0(), A, Memo), E->getOp0()->getWidth())),
                    W);
    break;
  case ExprKind::Trunc:
    R = maskToWidth(evalImpl(E->getOp0(), A, Memo), W);
    break;
  case ExprKind::Ite:
    R = evalImpl(E->getOp0(), A, Memo) ? evalImpl(E->getOp1(), A, Memo)
                                       : evalImpl(E->getOp2(), A, Memo);
    break;
  case ExprKind::Read:
    R = maskToWidth(
        evalArrayElem(E->getOp0(), evalImpl(E->getOp1(), A, Memo), A), W);
    break;
  case ExprKind::ConstArray:
  case ExprKind::DataArray:
  case ExprKind::SymArray:
  case ExprKind::Write:
    fatalError("evaluate: array-typed expression; use evalArrayElem");
  default:
    R = foldBinaryConst(E->getKind(), evalImpl(E->getOp0(), A, Memo),
                        evalImpl(E->getOp1(), A, Memo),
                        E->getOp0()->getWidth());
    break;
  }
  Memo.emplace(E, R);
  return R;
}

uint64_t ExprContext::evaluate(ExprRef E, const Assignment &A) const {
  std::unordered_map<ExprRef, uint64_t> Memo;
  return evalImpl(E, A, Memo);
}

//===----------------------------------------------------------------------===//
// Substitution / traversal / printing
//===----------------------------------------------------------------------===//

ExprRef ExprContext::substitute(
    ExprRef E, const std::unordered_map<ExprRef, ExprRef> &Map) {
  std::unordered_map<ExprRef, ExprRef> Memo;
  std::function<ExprRef(ExprRef)> Go = [&](ExprRef N) -> ExprRef {
    auto MIt = Map.find(N);
    if (MIt != Map.end())
      return MIt->second;
    if (N->getNumOps() == 0)
      return N;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    ExprRef NewOps[3] = {nullptr, nullptr, nullptr};
    bool Changed = false;
    for (unsigned I = 0; I < N->getNumOps(); ++I) {
      NewOps[I] = Go(N->getOp(I));
      Changed |= NewOps[I] != N->getOp(I);
    }
    ExprRef Result = N;
    if (Changed) {
      switch (N->getKind()) {
      case ExprKind::Not:   Result = bvnot(NewOps[0]); break;
      case ExprKind::Neg:   Result = neg(NewOps[0]); break;
      case ExprKind::ZExt:  Result = zext(NewOps[0], N->getWidth()); break;
      case ExprKind::SExt:  Result = sext(NewOps[0], N->getWidth()); break;
      case ExprKind::Trunc: Result = trunc(NewOps[0], N->getWidth()); break;
      case ExprKind::Ite:   Result = ite(NewOps[0], NewOps[1], NewOps[2]); break;
      case ExprKind::Read:  Result = read(NewOps[0], NewOps[1]); break;
      case ExprKind::Write: Result = write(NewOps[0], NewOps[1], NewOps[2]); break;
      default:
        Result = binary(N->getKind(), NewOps[0], NewOps[1]);
        break;
      }
    }
    Memo.emplace(N, Result);
    return Result;
  };
  return Go(E);
}

void ExprContext::collectVars(ExprRef E, std::vector<ExprRef> &Out) const {
  std::unordered_set<ExprRef> Seen;
  std::vector<ExprRef> Stack{E};
  while (!Stack.empty()) {
    ExprRef N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (N->getKind() == ExprKind::Var)
      Out.push_back(N);
    for (unsigned I = 0; I < N->getNumOps(); ++I)
      Stack.push_back(N->getOp(I));
  }
}

std::string ExprContext::toString(ExprRef E) const {
  switch (E->getKind()) {
  case ExprKind::Const:
    return std::to_string(E->getConstVal()) + ":" +
           std::to_string(E->getWidth());
  case ExprKind::Var:
    return getVarName(E->getVarId());
  case ExprKind::ConstArray:
    return "(const-array " + std::to_string(E->getConstVal()) + ")";
  case ExprKind::DataArray:
    return "(data-array #" + std::to_string(E->getVarId()) + ")";
  case ExprKind::SymArray:
    return getSymArrayName(E->getVarId());
  default: {
    std::string S = "(";
    S += exprKindName(E->getKind());
    for (unsigned I = 0; I < E->getNumOps(); ++I) {
      S += ' ';
      S += toString(E->getOp(I));
    }
    S += ')';
    return S;
  }
  }
}
