//===- Solver.cpp - Budgeted constraint solving ----------------------------===//

#include "solver/Solver.h"

#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "solver/BitBlaster.h"
#include "solver/Sat.h"
#include "solver/SolverCache.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace er;

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//
//
// Every query records its wall time, abstract work, and constraint count
// into process-wide histograms, and opens a pipeline span when the tracer
// is enabled. Queries are heavyweight (array lowering + bit-blasting +
// CDCL), so the handful of relaxed atomic bumps here is noise; the
// registry handles are resolved once.

namespace {
struct QueryMetrics {
  obs::Histogram &WallUs, &Work, &Assertions;
  obs::Counter &Sat, &Unsat, &Timeout;
  static QueryMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static QueryMetrics M{
        Reg.histogram("solver.query.us", obs::exponentialBounds(1, 22, 2)),
        Reg.histogram("solver.query.work", obs::exponentialBounds(64, 14, 4)),
        Reg.histogram("solver.query.assertions",
                      obs::exponentialBounds(1, 16, 2)),
        Reg.counter("solver.queries.sat"),
        Reg.counter("solver.queries.unsat"),
        Reg.counter("solver.queries.timeout")};
    return M;
  }

  void record(QueryStatus Status, uint64_t WorkUsed, size_t NumAssertions,
              double Seconds) {
    WallUs.record(static_cast<uint64_t>(Seconds * 1e6));
    Work.record(WorkUsed);
    Assertions.record(NumAssertions);
    switch (Status) {
    case QueryStatus::Sat:     Sat.inc(); break;
    case QueryStatus::Unsat:   Unsat.inc(); break;
    case QueryStatus::Timeout: Timeout.inc(); break;
    }
  }
};
} // namespace

const char *er::queryStatusName(QueryStatus S) {
  switch (S) {
  case QueryStatus::Sat:     return "sat";
  case QueryStatus::Unsat:   return "unsat";
  case QueryStatus::Timeout: return "timeout";
  }
  fatalError("unknown query status");
}

ConstraintSolver::ConstraintSolver(ExprContext &Ctx, SolverConfig Config)
    : Ctx(Ctx), Config(Config) {}

//===----------------------------------------------------------------------===//
// Array elimination
//===----------------------------------------------------------------------===//

ExprRef ConstraintSolver::lowerRead(
    ExprRef Array, ExprRef Index, uint64_t Budget, uint64_t &Work,
    std::unordered_map<ExprRef, ExprRef> &Memo) {
  // Collect the symbolic write chain (top of chain first).
  std::vector<ExprRef> Chain;
  ExprRef Base = Array;
  while (Base->getKind() == ExprKind::Write) {
    Chain.push_back(Base);
    Base = Base->getOp0();
  }

  unsigned ElemW = Array->getElemWidth();

  // Value read from the base array.
  ExprRef Result = nullptr;
  if (Index->isConst() || Base->getKind() == ExprKind::ConstArray) {
    Result = Ctx.read(Base, Index);
    Work += 1;
  } else {
    // Symbolic index over concrete or symbolic storage: case-split over the
    // whole domain. This is the "size of the accessed symbolic memory" cost
    // from the paper (Section 3.3.1).
    uint64_t N = Base->getNumElems();
    Work += N * ElemW / 8 + N;
    ++Totals.ArrayExpansions;
    if (Work > Budget)
      return nullptr;
    Result = Ctx.read(Base, Ctx.constant(0, Index->getWidth()));
    for (uint64_t K = 1; K < N; ++K) {
      ExprRef KConst = Ctx.constant(K, Index->getWidth());
      Result = Ctx.ite(Ctx.eq(Index, KConst), Ctx.read(Base, KConst), Result);
    }
  }

  // Apply the writes from oldest to newest. This is the "length of symbolic
  // write chains" cost from the paper.
  for (size_t I = Chain.size(); I-- > 0;) {
    ExprRef W = Chain[I];
    ExprRef WIdx = lowerArraysImpl(W->getOp1(), Budget, Work, Memo);
    ExprRef WVal = lowerArraysImpl(W->getOp2(), Budget, Work, Memo);
    if (!WIdx || !WVal)
      return nullptr;
    Work += ElemW / 8 + Index->getWidth();
    ++Totals.ArrayExpansions;
    if (Work > Budget)
      return nullptr;
    Result = Ctx.ite(Ctx.eq(Index, WIdx), WVal, Result);
  }
  return Result;
}

ExprRef ConstraintSolver::lowerArraysImpl(
    ExprRef E, uint64_t Budget, uint64_t &Work,
    std::unordered_map<ExprRef, ExprRef> &Memo) {
  if (Work > Budget)
    return nullptr;
  if (E->getNumOps() == 0)
    return E;
  auto It = Memo.find(E);
  if (It != Memo.end())
    return It->second;

  ExprRef Result = nullptr;
  if (E->getKind() == ExprKind::Read) {
    ExprRef Index = lowerArraysImpl(E->getOp1(), Budget, Work, Memo);
    if (!Index)
      return nullptr;
    // Keep atomic reads of symbolic arrays at constant indices: the blaster
    // treats them as free variables.
    if (E->getOp0()->getKind() == ExprKind::SymArray && Index->isConst()) {
      Result = Index == E->getOp1() ? E : Ctx.read(E->getOp0(), Index);
    } else {
      Result = lowerRead(E->getOp0(), Index, Budget, Work, Memo);
      if (!Result)
        return nullptr;
    }
  } else {
    assert(E->getKind() != ExprKind::Write &&
           "free-standing Write outside a Read");
    ExprRef NewOps[3] = {nullptr, nullptr, nullptr};
    bool Changed = false;
    for (unsigned I = 0; I < E->getNumOps(); ++I) {
      NewOps[I] = lowerArraysImpl(E->getOp(I), Budget, Work, Memo);
      if (!NewOps[I])
        return nullptr;
      Changed |= NewOps[I] != E->getOp(I);
    }
    if (!Changed) {
      Result = E;
    } else {
      switch (E->getKind()) {
      case ExprKind::Not:   Result = Ctx.bvnot(NewOps[0]); break;
      case ExprKind::Neg:   Result = Ctx.neg(NewOps[0]); break;
      case ExprKind::ZExt:  Result = Ctx.zext(NewOps[0], E->getWidth()); break;
      case ExprKind::SExt:  Result = Ctx.sext(NewOps[0], E->getWidth()); break;
      case ExprKind::Trunc: Result = Ctx.trunc(NewOps[0], E->getWidth()); break;
      case ExprKind::Ite:
        Result = Ctx.ite(NewOps[0], NewOps[1], NewOps[2]);
        break;
      case ExprKind::Add:  Result = Ctx.add(NewOps[0], NewOps[1]); break;
      case ExprKind::Sub:  Result = Ctx.sub(NewOps[0], NewOps[1]); break;
      case ExprKind::Mul:  Result = Ctx.mul(NewOps[0], NewOps[1]); break;
      case ExprKind::UDiv: Result = Ctx.udiv(NewOps[0], NewOps[1]); break;
      case ExprKind::SDiv: Result = Ctx.sdiv(NewOps[0], NewOps[1]); break;
      case ExprKind::URem: Result = Ctx.urem(NewOps[0], NewOps[1]); break;
      case ExprKind::SRem: Result = Ctx.srem(NewOps[0], NewOps[1]); break;
      case ExprKind::And:  Result = Ctx.bvand(NewOps[0], NewOps[1]); break;
      case ExprKind::Or:   Result = Ctx.bvor(NewOps[0], NewOps[1]); break;
      case ExprKind::Xor:  Result = Ctx.bvxor(NewOps[0], NewOps[1]); break;
      case ExprKind::Shl:  Result = Ctx.shl(NewOps[0], NewOps[1]); break;
      case ExprKind::LShr: Result = Ctx.lshr(NewOps[0], NewOps[1]); break;
      case ExprKind::AShr: Result = Ctx.ashr(NewOps[0], NewOps[1]); break;
      case ExprKind::Eq:   Result = Ctx.eq(NewOps[0], NewOps[1]); break;
      case ExprKind::Ult:  Result = Ctx.ult(NewOps[0], NewOps[1]); break;
      case ExprKind::Slt:  Result = Ctx.slt(NewOps[0], NewOps[1]); break;
      default:
        fatalError("unhandled kind in array lowering");
      }
    }
  }
  Memo.emplace(E, Result);
  return Result;
}

ExprRef ConstraintSolver::lowerArrays(ExprRef E, uint64_t Budget,
                                      uint64_t &Work) {
  std::unordered_map<ExprRef, ExprRef> Memo;
  return lowerArraysImpl(E, Budget, Work, Memo);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

QueryResult ConstraintSolver::checkSat(const std::vector<ExprRef> &Assertions,
                                       uint64_t BudgetOverride) {
  obs::ScopedSpan Span("solver.check_sat", "solver");
  Span.arg("assertions", Assertions.size());
  Stopwatch QueryTimer;
  QueryResult R = checkSatCaching(Assertions, BudgetOverride);
  QueryMetrics::get().record(R.Status, R.WorkUsed, Assertions.size(),
                             QueryTimer.seconds());
  Span.arg("status", queryStatusName(R.Status));
  Span.arg("work", R.WorkUsed);
  return R;
}

QueryResult
ConstraintSolver::checkSatCaching(const std::vector<ExprRef> &Assertions,
                                  uint64_t BudgetOverride) {
  uint64_t Budget = BudgetOverride ? BudgetOverride : Config.WorkBudget;
  bool Deterministic = true;
  if (!Config.SharedCache)
    return checkSatUncached(Assertions, Budget, Deterministic);

  QueryDigest D = SolverResultCache::digestQuery(
      Ctx, Assertions, /*Enumerated=*/nullptr, /*MaxCount=*/0, Budget,
      Config.ConflictCost, Config.PropagationCost);
  CachedQueryResult Cached;
  if (Config.SharedCache->lookup(D, Cached)) {
    // Guard against digest collisions: a Sat hit must actually satisfy the
    // assertions (cheap — evaluation, not solving). Unsat/Timeout hits rely
    // on the 128-bit digest.
    bool Valid = true;
    if (Cached.Status == QueryStatus::Sat)
      for (ExprRef A : Assertions)
        if (!Ctx.evaluate(A, Cached.Model)) {
          Valid = false;
          break;
        }
    if (Valid) {
      // Replay the totals a fresh solve would have charged, so stall
      // accounting is identical with and without the cache.
      ++Totals.Queries;
      switch (Cached.Status) {
      case QueryStatus::Sat:     ++Totals.SatQueries; break;
      case QueryStatus::Unsat:   ++Totals.UnsatQueries; break;
      case QueryStatus::Timeout: ++Totals.Timeouts; break;
      }
      Totals.TotalWork += Cached.WorkUsed;
      QueryResult R;
      R.Status = Cached.Status;
      R.Model = std::move(Cached.Model);
      R.WorkUsed = Cached.WorkUsed;
      return R;
    }
  }

  QueryResult R = checkSatUncached(Assertions, Budget, Deterministic);
  if (Deterministic) {
    CachedQueryResult Entry;
    Entry.Status = R.Status;
    Entry.Model = R.Model;
    Entry.WorkUsed = R.WorkUsed;
    Config.SharedCache->insert(D, Entry);
  }
  return R;
}

QueryResult
ConstraintSolver::checkSatUncached(const std::vector<ExprRef> &Assertions,
                                   uint64_t Budget, bool &Deterministic) {
  ++Totals.Queries;
  Deterministic = true;
  uint64_t Work = 0;
  QueryResult R;

  // Lower all assertions to array-free form.
  std::unordered_map<ExprRef, ExprRef> Memo;
  std::vector<ExprRef> Lowered;
  Lowered.reserve(Assertions.size());
  for (ExprRef A : Assertions) {
    assert(A->getWidth() == 1 && "assertion must be boolean");
    if (A->isTrue())
      continue;
    if (A->isFalse()) {
      ++Totals.UnsatQueries;
      R.Status = QueryStatus::Unsat;
      R.WorkUsed = Work;
      Totals.TotalWork += Work;
      return R;
    }
    ExprRef L = lowerArraysImpl(A, Budget, Work, Memo);
    if (!L) {
      ++Totals.Timeouts;
      R.Status = QueryStatus::Timeout;
      R.WorkUsed = Work;
      Totals.TotalWork += Work;
      return R;
    }
    if (L->isFalse()) {
      ++Totals.UnsatQueries;
      R.Status = QueryStatus::Unsat;
      R.WorkUsed = Work;
      Totals.TotalWork += Work;
      return R;
    }
    if (!L->isTrue())
      Lowered.push_back(L);
  }
  Totals.MaxLoweredNodes = std::max(Totals.MaxLoweredNodes,
                                    Ctx.getStats().NodesCreated);

  static const bool Debug = std::getenv("ER_SOLVER_DEBUG") != nullptr;
  if (Debug)
    std::fprintf(stderr, "[solver] lowered %zu asserts, work=%llu\n",
                 Lowered.size(), (unsigned long long)Work);

  // Bit-blast and solve.
  SatSolver Sat;
  BitBlaster Blaster(Ctx, Sat, Budget > Work ? Budget - Work : 0);
  bool Ok = true;
  for (ExprRef L : Lowered)
    Ok = Blaster.assertTrue(L) && Ok;
  Work += Blaster.gatesUsed();
  if (Debug)
    std::fprintf(stderr, "[solver] blasted: gates=%llu vars=%u clauses=%llu ok=%d\n",
                 (unsigned long long)Blaster.gatesUsed(), Sat.numVars(),
                 (unsigned long long)Sat.numClauses(), Ok);
  if (!Ok || Work >= Budget) {
    ++Totals.Timeouts;
    R.Status = QueryStatus::Timeout;
    R.WorkUsed = Work;
    Totals.TotalWork += Work;
    return R;
  }

  SatBudget SB;
  SB.MaxConflicts = (Budget - Work) / Config.ConflictCost;
  SB.MaxPropagations = (Budget - Work) / Config.PropagationCost;
  if (Config.WallSecondsBudget > 0)
    SB.Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      static_cast<long>(Config.WallSecondsBudget * 1000));
  uint64_t ConflictsBefore = Sat.getStats().Conflicts;
  uint64_t PropsBefore = Sat.getStats().Propagations;
  SatStatus S = Sat.solve(SB);
  if (Debug)
    std::fprintf(stderr, "[solver] solved: status=%d conflicts=%llu props=%llu\n",
                 (int)S, (unsigned long long)Sat.getStats().Conflicts,
                 (unsigned long long)Sat.getStats().Propagations);
  Work += Sat.getStats().Conflicts * Config.ConflictCost;
  R.WorkUsed = Work;
  Totals.TotalWork += Work;

  switch (S) {
  case SatStatus::Sat: {
    ++Totals.SatQueries;
    R.Status = QueryStatus::Sat;
    Blaster.extractAssignment(R.Model);
    // Cross-check the model against the original (array-level) assertions;
    // a mismatch indicates a solver bug, not a user error.
    for (ExprRef A : Assertions)
      if (!Ctx.evaluate(A, R.Model))
        fatalError("solver model does not satisfy assertion: " +
                   Ctx.toString(A));
    return R;
  }
  case SatStatus::Unsat:
    ++Totals.UnsatQueries;
    R.Status = QueryStatus::Unsat;
    return R;
  case SatStatus::Unknown:
    ++Totals.Timeouts;
    R.Status = QueryStatus::Timeout;
    // Unknown from the deterministic conflict/propagation caps is a
    // reproducible outcome; Unknown from the wall-clock deadline is not.
    Deterministic =
        Sat.getStats().Conflicts - ConflictsBefore > SB.MaxConflicts ||
        Sat.getStats().Propagations - PropsBefore > SB.MaxPropagations;
    return R;
  }
  fatalError("unknown SAT status");
}

QueryStatus ConstraintSolver::mustBeTrue(
    const std::vector<ExprRef> &Assertions, ExprRef E, bool &Result) {
  if (E->isTrue()) {
    Result = true;
    return QueryStatus::Sat;
  }
  std::vector<ExprRef> WithNeg = Assertions;
  WithNeg.push_back(Ctx.bvnot(E));
  QueryResult R = checkSat(WithNeg);
  if (R.Status == QueryStatus::Timeout)
    return QueryStatus::Timeout;
  Result = R.Status == QueryStatus::Unsat;
  return QueryStatus::Sat;
}

QueryStatus ConstraintSolver::enumerateValues(
    const std::vector<ExprRef> &Assertions, ExprRef E, unsigned MaxCount,
    std::vector<uint64_t> &Out, bool &Complete) {
  obs::ScopedSpan Span("solver.enumerate", "solver");
  Span.arg("assertions", Assertions.size());
  Span.arg("max_count", static_cast<uint64_t>(MaxCount));
  Stopwatch QueryTimer;
  uint64_t WorkBefore = Totals.TotalWork;
  QueryStatus S = enumerateValuesCaching(Assertions, E, MaxCount, Out,
                                         Complete);
  QueryMetrics::get().record(S, Totals.TotalWork - WorkBefore,
                             Assertions.size(), QueryTimer.seconds());
  Span.arg("status", queryStatusName(S));
  Span.arg("values", Out.size());
  return S;
}

QueryStatus ConstraintSolver::enumerateValuesCaching(
    const std::vector<ExprRef> &Assertions, ExprRef E, unsigned MaxCount,
    std::vector<uint64_t> &Out, bool &Complete) {
  Complete = false;
  if (E->isConst()) {
    Out.push_back(E->getConstVal());
    Complete = true;
    return QueryStatus::Sat;
  }

  uint64_t WorkUsed = 0;
  bool Deterministic = true;
  if (!Config.SharedCache)
    return enumerateValuesUncached(Assertions, E, MaxCount, Out, Complete,
                                   WorkUsed, Deterministic);

  QueryDigest D = SolverResultCache::digestQuery(
      Ctx, Assertions, E, MaxCount, Config.WorkBudget, Config.ConflictCost,
      Config.PropagationCost);
  CachedQueryResult Cached;
  if (Config.SharedCache->lookup(D, Cached)) {
    ++Totals.Queries;
    Totals.TotalWork += Cached.WorkUsed;
    if (Cached.Status == QueryStatus::Timeout)
      ++Totals.Timeouts;
    else
      ++Totals.SatQueries;
    Out.insert(Out.end(), Cached.Values.begin(), Cached.Values.end());
    Complete = Cached.Complete;
    return Cached.Status;
  }

  size_t OutStart = Out.size();
  QueryStatus S = enumerateValuesUncached(Assertions, E, MaxCount, Out,
                                          Complete, WorkUsed, Deterministic);
  if (Deterministic) {
    CachedQueryResult Entry;
    Entry.Status = S;
    Entry.Values.assign(Out.begin() + OutStart, Out.end());
    Entry.Complete = Complete;
    Entry.WorkUsed = WorkUsed;
    Config.SharedCache->insert(D, Entry);
  }
  return S;
}

QueryStatus ConstraintSolver::enumerateValuesUncached(
    const std::vector<ExprRef> &Assertions, ExprRef E, unsigned MaxCount,
    std::vector<uint64_t> &Out, bool &Complete, uint64_t &WorkUsed,
    bool &Deterministic) {
  Deterministic = true;
  ++Totals.Queries;
  uint64_t Budget = Config.WorkBudget;
  uint64_t Work = 0;

  std::unordered_map<ExprRef, ExprRef> Memo;
  std::vector<ExprRef> Lowered;
  for (ExprRef A : Assertions) {
    if (A->isTrue())
      continue;
    ExprRef L = lowerArraysImpl(A, Budget, Work, Memo);
    if (!L) {
      ++Totals.Timeouts;
      Totals.TotalWork += Work;
      WorkUsed = Work;
      return QueryStatus::Timeout;
    }
    if (!L->isTrue())
      Lowered.push_back(L);
  }
  ExprRef LE = lowerArraysImpl(E, Budget, Work, Memo);
  if (!LE) {
    ++Totals.Timeouts;
    Totals.TotalWork += Work;
    WorkUsed = Work;
    return QueryStatus::Timeout;
  }
  if (LE->isConst()) {
    Out.push_back(LE->getConstVal());
    Complete = true;
    Totals.TotalWork += Work;
    ++Totals.SatQueries;
    WorkUsed = Work;
    return QueryStatus::Sat;
  }

  SatSolver Sat;
  BitBlaster Blaster(Ctx, Sat, Budget > Work ? Budget - Work : 0);
  bool Ok = Blaster.encode(LE);
  for (ExprRef L : Lowered)
    Ok = Blaster.assertTrue(L) && Ok;
  Work += Blaster.gatesUsed();
  if (!Ok || Work >= Budget) {
    ++Totals.Timeouts;
    Totals.TotalWork += Work;
    WorkUsed = Work;
    return QueryStatus::Timeout;
  }

  auto WallDeadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(Config.WallSecondsBudget * 1000));
  for (unsigned Iter = 0; Iter < MaxCount; ++Iter) {
    SatBudget SB;
    SB.MaxConflicts = (Budget - Work) / Config.ConflictCost;
    SB.MaxPropagations = (Budget - Work) / Config.PropagationCost;
    if (Config.WallSecondsBudget > 0)
      SB.Deadline = WallDeadline;
    uint64_t ConflictsBefore = Sat.getStats().Conflicts;
    uint64_t PropsBefore = Sat.getStats().Propagations;
    SatStatus S = Sat.solve(SB);
    Work += (Sat.getStats().Conflicts - ConflictsBefore) * Config.ConflictCost;
    if (S == SatStatus::Unknown || Work >= Budget) {
      ++Totals.Timeouts;
      Totals.TotalWork += Work;
      WorkUsed = Work;
      // As in checkSat: only the deterministic caps make a Timeout
      // memoizable; Unknown from the wall deadline must not be cached.
      Deterministic =
          Work >= Budget ||
          Sat.getStats().Conflicts - ConflictsBefore > SB.MaxConflicts ||
          Sat.getStats().Propagations - PropsBefore > SB.MaxPropagations;
      return QueryStatus::Timeout;
    }
    if (S == SatStatus::Unsat) {
      Complete = true;
      break;
    }
    uint64_t V = Blaster.valueOf(LE);
    Out.push_back(V);
    Blaster.blockValue(LE, V);
  }
  Totals.TotalWork += Work;
  ++Totals.SatQueries;
  WorkUsed = Work;
  return QueryStatus::Sat;
}
