//===- SymExecutor.h - Shepherded symbolic execution -------------*- C++ -*-===//
///
/// \file
/// The paper's core engine (Section 3.2): symbolic execution that follows
/// the control-flow trace of a failing production run, so exactly one path
/// is explored. Inputs (input.arg/input.byte/input.size) are symbolic; the
/// path constraint accumulates branch outcomes, no-trap conditions, and
/// recorded data values (ptwrite packets concretize the registers they
/// monitor).
///
/// The solver is consulted whenever the program accesses symbolic memory
/// (to enumerate the feasible concrete addresses) and once at the end to
/// produce a concrete failure-reproducing input. A solver timeout surfaces
/// as SymexStatus::Stalled together with the constraint-graph inputs that
/// key data value selection (Section 3.3) consumes.
///
//===----------------------------------------------------------------------===//

#ifndef ER_SYMEX_SYMEXECUTOR_H
#define ER_SYMEX_SYMEXECUTOR_H

#include "ir/IR.h"
#include "solver/Expr.h"
#include "solver/Solver.h"
#include "trace/Trace.h"
#include "vm/Failure.h"
#include "vm/Input.h"
#include "vm/Memory.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace er {

/// One symbolic write to a memory object (an element of the paper's
/// "symbolic write chain").
struct SymWriteRecord {
  ExprRef Index;          ///< Element index expression.
  ExprRef Value;          ///< Stored value expression.
  unsigned InstrGlobalId; ///< The store instruction.
};

/// The symbolic write chain of one memory object.
struct ObjectChain {
  uint32_t ObjId = 0;
  std::string Name;
  unsigned ElemWidthBits = 0;
  uint64_t NumElems = 0;
  std::vector<SymWriteRecord> Writes;
  /// Object byte size — "size of the accessed symbolic memory".
  uint64_t byteSize() const { return NumElems * (ElemWidthBits / 8 + ((ElemWidthBits % 8) ? 1 : 0)); }
};

/// Everything key data value selection needs after a stall (or that test
/// case generation needs after success).
struct SymexSnapshot {
  std::vector<ExprRef> PathConstraint;
  /// Expression -> global id of the instruction that first produced it.
  std::unordered_map<ExprRef, unsigned> Origins;
  /// Dynamic execution count per instruction global id (recording cost).
  std::vector<uint64_t> ExecCounts;
  /// Objects with symbolic write chains.
  std::vector<ObjectChain> Chains;
  /// The expression whose resolution caused the stall (fallback bottleneck
  /// when no chain exists).
  ExprRef CulpritExpr = nullptr;
  /// For final-solve timeouts: the non-boolean cores of the heaviest path
  /// constraints (selection targets when no chain is implicated).
  std::vector<ExprRef> CulpritExprs;

  // Input variables.
  std::unordered_map<unsigned, ExprRef> ArgVars; ///< arg index -> var.
  std::vector<ExprRef> ByteVars;                 ///< consumption order.
  ExprRef InSizeVar = nullptr;
  uint64_t ConsumedBytes = 0;
};

enum class SymexStatus : uint8_t {
  Reproduced,     ///< A concrete failing input was generated.
  Stalled,        ///< Solver timeout: needs key data value selection.
  TraceMismatch,  ///< Trace disagrees with the module (internal error).
  TraceTruncated, ///< Ring buffer lost the head of the trace.
  Unsupported,    ///< Execution needed an unsupported symbolic operation.
};

const char *symexStatusName(SymexStatus S);

/// Outcome of one shepherded symbolic execution.
struct SymexResult {
  SymexStatus Status = SymexStatus::TraceMismatch;
  ProgramInput GeneratedInput; ///< Valid when Reproduced.
  SymexSnapshot Snapshot;
  uint64_t InstrExecuted = 0;
  uint64_t SolverWork = 0;
  std::string Detail;
};

/// Configuration for shepherded symbolic execution.
struct SymexConfig {
  /// Max concrete address candidates enumerated per symbolic access before
  /// the access is modelled with array theory.
  unsigned MaxAddrCandidates = 8;
  /// Safety fuel.
  uint64_t MaxSteps = 500'000'000;
  /// The final input-generation solve runs with WorkBudget scaled by this
  /// factor: the per-access budget is the stall detector that drives the
  /// iterative loop, while the one-off final solve may legitimately be
  /// larger than any single in-trace query.
  uint64_t FinalBudgetMultiplier = 8;
  /// Section 3.4: when quantized chunk timestamps tie across threads, the
  /// executor "arbitrarily selects" an order. This seed permutes that
  /// arbitrary choice, so a driver can explore alternative interleavings
  /// of tied chunks when a reconstruction fails to validate (the paper's
  /// state-space-exploration fallback, bounded).
  uint64_t ChunkTieBreakSeed = 0;
};

/// Shepherded symbolic executor over a Module and a decoded trace.
class ShepherdedExecutor {
public:
  ShepherdedExecutor(const Module &M, ExprContext &Ctx,
                     ConstraintSolver &Solver, SymexConfig Config);
  ~ShepherdedExecutor();

  /// Follows \p Trace to the failure described by \p Failure and attempts to
  /// generate a reproducing input. \p Input ("the latest trace"'s input) is
  /// not consulted — it exists in production only; symbolic execution sees
  /// only the trace.
  SymexResult run(const DecodedTrace &Trace, const FailureRecord &Failure);

private:
  struct Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace er

#endif // ER_SYMEX_SYMEXECUTOR_H
