//===- SymExecutor.cpp - Shepherded symbolic execution -------------------------===//

#include "symex/SymExecutor.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace er;

const char *er::symexStatusName(SymexStatus S) {
  switch (S) {
  case SymexStatus::Reproduced:     return "reproduced";
  case SymexStatus::Stalled:        return "stalled";
  case SymexStatus::TraceMismatch:  return "trace-mismatch";
  case SymexStatus::TraceTruncated: return "trace-truncated";
  case SymexStatus::Unsupported:    return "unsupported";
  }
  fatalError("unknown symex status");
}

namespace {

/// A symbolic runtime value: a scalar expression or a pointer with a
/// concrete object and a (possibly symbolic) element offset.
struct SymValue {
  enum class K : uint8_t { None, Scalar, Ptr } Kind = K::None;
  ExprRef E = nullptr;   ///< Scalar expression.
  bool Null = false;     ///< Ptr: null pointer.
  uint32_t Obj = 0;      ///< Ptr: object id.
  ExprRef Off = nullptr; ///< Ptr: 64-bit element offset expression.

  static SymValue scalar(ExprRef E) {
    SymValue V;
    V.Kind = K::Scalar;
    V.E = E;
    return V;
  }
  static SymValue nullPtr() {
    SymValue V;
    V.Kind = K::Ptr;
    V.Null = true;
    return V;
  }
  static SymValue ptr(uint32_t Obj, ExprRef Off) {
    SymValue V;
    V.Kind = K::Ptr;
    V.Obj = Obj;
    V.Off = Off;
    return V;
  }
};

/// A scheduled slice of one thread's dynamic instruction stream.
struct ScheduledChunk {
  uint64_t Ts;
  uint32_t Tid;
  uint32_t Seq;
  uint64_t NumInstrs;
};

} // namespace

struct ShepherdedExecutor::Impl {
  Impl(const Module &M, ExprContext &Ctx, ConstraintSolver &Solver,
       SymexConfig Cfg)
      : M(M), Ctx(Ctx), Solver(Solver), Cfg(Cfg) {}

  //===--- Nested state ----------------------------------------------------===
  struct SFrame {
    const Function *F = nullptr;
    const BasicBlock *Block = nullptr;
    size_t InstIdx = 0;
    std::vector<SymValue> Regs;
    std::vector<SymValue> Args;
    const Instruction *CallSite = nullptr;
    std::vector<uint32_t> StackObjects;
  };

  struct SThread {
    uint32_t Tid = 0;
    bool Finished = false;
    std::vector<SFrame> Stack;
    size_t EventCursor = 0;
    const DecodedThread *Decoded = nullptr;
  };

  struct SObject {
    ObjectKind Kind = ObjectKind::Global;
    Type ElemTy;
    uint64_t NumElems = 0;
    bool Alive = true;
    std::string Name;
    /// Element mode: one expression per element (fast path).
    std::vector<ExprRef> Elems;
    /// Array mode: content as an array expression (after the first
    /// unresolvable symbolic-index access).
    bool ArrayMode = false;
    ExprRef Content = nullptr;
    std::vector<SymWriteRecord> Writes;
  };

  //===--- Fields -----------------------------------------------------------===
  const Module &M;
  ExprContext &Ctx;
  ConstraintSolver &Solver;
  SymexConfig Cfg;

  std::vector<SThread> Threads;
  std::vector<SObject> Objects;
  std::vector<ExprRef> Path;
  SymexSnapshot Snap;
  const FailureRecord *Fail = nullptr;
  uint64_t TotalRemaining = 0;
  std::vector<uint64_t> ThreadRemaining;
  uint64_t InstrExecuted = 0;
  size_t InSizeConstraintPos = SIZE_MAX;
  bool FailureTriggered = false;
  bool Aborted = false;
  SymexStatus AbortStatus = SymexStatus::TraceMismatch;
  std::string AbortDetail;
  bool DebugProgress = std::getenv("ER_SYMEX_DEBUG") != nullptr;
  std::unordered_map<ExprRef, std::vector<uint64_t>> SymbolCache;

  //===--- Small helpers ----------------------------------------------------===
  unsigned elemWidth(const SObject &O) const {
    return O.ElemTy.isPtr() ? 64 : O.ElemTy.Bits;
  }

  void abortRun(SymexStatus S, std::string Detail) {
    if (Aborted)
      return;
    Aborted = true;
    AbortStatus = S;
    AbortDetail = std::move(Detail);
  }

  void stall(ExprRef Culprit, const std::string &Why) {
    Snap.CulpritExpr = Culprit;
    abortRun(SymexStatus::Stalled, Why);
  }

  void recordOrigin(ExprRef E, const Instruction &I) {
    if (E && !E->isConst())
      Snap.Origins.emplace(E, I.getGlobalId());
  }

  uint32_t allocateObject(ObjectKind Kind, Type ElemTy, uint64_t NumElems,
                          const std::vector<uint64_t> &Init,
                          std::string Name) {
    SObject O;
    O.Kind = Kind;
    O.ElemTy = ElemTy;
    O.NumElems = NumElems;
    O.Name = std::move(Name);
    unsigned W = O.ElemTy.isPtr() ? 64 : O.ElemTy.Bits;
    O.Elems.assign(NumElems, Ctx.constant(0, W));
    for (size_t I = 0; I < Init.size() && I < NumElems; ++I)
      O.Elems[I] = Ctx.constant(Init[I], W);
    Objects.push_back(std::move(O));
    return static_cast<uint32_t>(Objects.size() - 1);
  }

  /// Switches an object to array mode, building its base array from the
  /// current element expressions.
  void ensureArrayMode(SObject &O) {
    if (O.ArrayMode)
      return;
    unsigned W = elemWidth(O);
    std::vector<uint64_t> Data(O.NumElems, 0);
    std::vector<std::pair<uint64_t, ExprRef>> Symbolic;
    for (uint64_t I = 0; I < O.NumElems; ++I) {
      if (O.Elems[I]->isConst())
        Data[I] = O.Elems[I]->getConstVal();
      else
        Symbolic.emplace_back(I, O.Elems[I]);
    }
    O.Content = Ctx.dataArray(W, std::move(Data));
    for (const auto &[Idx, E] : Symbolic) {
      O.Content = Ctx.write(O.Content, Ctx.constant(Idx, 64), E);
      O.Writes.push_back({Ctx.constant(Idx, 64), E, /*InstrGlobalId=*/0});
    }
    O.ArrayMode = true;
    O.Elems.clear();
  }

  /// Pointer <-> packed scalar conversions.
  ExprRef packPointer(const SymValue &V) {
    assert(V.Kind == SymValue::K::Ptr && "packing non-pointer");
    if (V.Null)
      return Ctx.constant(0, 64);
    if (V.Off->isConst())
      return Ctx.constant(PackedPtr::make(V.Obj, V.Off->getConstVal()), 64);
    return Ctx.add(V.Off, Ctx.constant(PackedPtr::make(V.Obj, 0), 64));
  }

  /// Reconstructs a pointer from a packed scalar expression; may consult the
  /// solver. Returns false if the run was aborted.
  bool unpackPointer(ExprRef E, SymValue &Out) {
    if (E->isConst()) {
      uint64_t P = E->getConstVal();
      if (PackedPtr::isNull(P)) {
        Out = SymValue::nullPtr();
        return true;
      }
      Out = SymValue::ptr(PackedPtr::objectId(P),
                          Ctx.constant(PackedPtr::offset(P), 64));
      return true;
    }
    // Pattern produced by packPointer: add(off, const base).
    if (E->getKind() == ExprKind::Add && E->getOp1()->isConst()) {
      uint64_t Base = E->getOp1()->getConstVal();
      if (!PackedPtr::isNull(Base) && PackedPtr::offset(Base) == 0) {
        uint32_t Obj = PackedPtr::objectId(Base);
        if (Obj < Objects.size()) {
          Out = SymValue::ptr(Obj, E->getOp0());
          return true;
        }
      }
    }
    // Last resort: ask the solver for the concrete pointer value.
    std::vector<uint64_t> Values;
    bool Complete = false;
    QueryStatus S = Solver.enumerateValues(relevantFor(E), E, 2, Values,
                                           Complete);
    if (S == QueryStatus::Timeout) {
      stall(E, "pointer value resolution timed out");
      return false;
    }
    if (Values.size() == 1 && Complete)
      return unpackPointer(Ctx.constant(Values[0], 64), Out);
    stall(E, "pointer value is not unique");
    return false;
  }

  /// Symbols (scalar vars, symbolic arrays) of \p E, memoized across the
  /// whole run: sets are shared bottom-up, so the cache stays linear in the
  /// number of distinct expression nodes.
  const std::vector<uint64_t> &symbolsOf(ExprRef E) {
    auto It = SymbolCache.find(E);
    if (It != SymbolCache.end())
      return It->second;
    std::vector<uint64_t> Out;
    if (E->getKind() == ExprKind::Var) {
      Out.push_back(E->getVarId());
    } else if (E->getKind() == ExprKind::SymArray) {
      Out.push_back((1ULL << 32) | E->getVarId());
    } else {
      for (unsigned I = 0; I < E->getNumOps(); ++I) {
        const std::vector<uint64_t> &Sub = symbolsOf(E->getOp(I));
        Out.insert(Out.end(), Sub.begin(), Sub.end());
      }
      std::sort(Out.begin(), Out.end());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    }
    return SymbolCache.emplace(E, std::move(Out)).first->second;
  }

  /// Constraint-independence slice: the subset of Path sharing symbols
  /// (transitively) with \p Seed. Sound for feasibility queries because the
  /// full path is satisfiable by construction.
  std::vector<ExprRef> relevantFor(ExprRef Seed) {
    std::vector<uint64_t> Want = symbolsOf(Seed);
    std::vector<bool> Included(Path.size(), false);

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I < Path.size(); ++I) {
        if (Included[I])
          continue;
        const std::vector<uint64_t> &Syms = symbolsOf(Path[I]);
        bool Overlap = false;
        for (uint64_t S : Syms)
          if (std::binary_search(Want.begin(), Want.end(), S)) {
            Overlap = true;
            break;
          }
        if (!Overlap)
          continue;
        Included[I] = true;
        Changed = true;
        Want.insert(Want.end(), Syms.begin(), Syms.end());
        std::sort(Want.begin(), Want.end());
        Want.erase(std::unique(Want.begin(), Want.end()), Want.end());
      }
    }

    std::vector<ExprRef> Out;
    for (size_t I = 0; I < Path.size(); ++I)
      if (Included[I])
        Out.push_back(Path[I]);
    return Out;
  }

  //===--- Trace event consumption -------------------------------------------
  const TraceEvent *nextEvent(SThread &T, TraceEvent::Kind Expected) {
    const auto &Events = T.Decoded->Events;
    if (T.EventCursor >= Events.size()) {
      abortRun(SymexStatus::TraceMismatch, "trace event stream exhausted");
      return nullptr;
    }
    const TraceEvent &E = Events[T.EventCursor];
    if (E.K != Expected) {
      abortRun(SymexStatus::TraceMismatch,
               formatString("trace event kind mismatch at event %zu",
                            T.EventCursor));
      return nullptr;
    }
    ++T.EventCursor;
    return &E;
  }

  //===--- Values -----------------------------------------------------------===
  SymValue valueOf(SFrame &Fr, const Value *V) {
    if (const auto *C = dyn_cast<ConstantInt>(V))
      return SymValue::scalar(Ctx.constant(C->getValue(), C->getType().Bits));
    if (isa<ConstantNull>(V))
      return SymValue::nullPtr();
    if (const auto *A = dyn_cast<Argument>(V))
      return Fr.Args[A->getArgNo()];
    if (const auto *I = dyn_cast<Instruction>(V))
      return Fr.Regs[I->getLocalId()];
    fatalError("unsupported value kind in symex");
  }

  /// The failing instruction is the last instruction of the failing
  /// thread's dynamic stream (a property invariant under the arbitrary
  /// cross-thread tie-breaking of equal chunk timestamps; other threads'
  /// tied chunks may legitimately be ordered after it).
  bool atFailurePoint(uint32_t Tid, const Instruction &I) const {
    return Tid == Fail->Tid && Tid < ThreadRemaining.size() &&
           ThreadRemaining[Tid] == 1 &&
           I.getGlobalId() == Fail->InstrGlobalId;
  }

  /// Handles a would-trap situation: at the failure point with the matching
  /// kind this triggers reproduction; anywhere else it is a mismatch.
  bool trapReached(uint32_t Tid, const Instruction &I, FailureKind K) {
    if (atFailurePoint(Tid, I) && Fail->Kind == K) {
      FailureTriggered = true;
      return true;
    }
    abortRun(SymexStatus::TraceMismatch,
             formatString("unexpected %s trap at instruction %u",
                          failureKindName(K), I.getGlobalId()));
    return false;
  }

  //===--- Memory ------------------------------------------------------------
  /// Resolves a (possibly symbolic) element offset for an access to \p O.
  /// On return: if Concrete is set the access uses that index in element
  /// mode; otherwise the object has been switched to array mode.
  /// The in-bounds (or at the failure point: out-of-bounds) constraint is
  /// added here. Returns false if the run aborted.
  bool resolveOffset(uint32_t Tid, const Instruction &I, SObject &O,
                     ExprRef Off, bool &IsConcrete, uint64_t &Concrete) {
    uint64_t N = O.NumElems;
    if (Off->isConst()) {
      uint64_t V = Off->getConstVal();
      if (V >= N)
        return trapReached(Tid, I, FailureKind::OutOfBounds);
      IsConcrete = true;
      Concrete = V;
      return true;
    }

    ExprRef Bound = Ctx.constant(N, 64);
    // NullDeref is also reachable through an offset: a sign-flipped (wild)
    // index wraps the packed-pointer encoding, so the VM classifies the
    // access as invalid rather than a near-miss out-of-bounds. Symbolically
    // both are "the offset escapes the object".
    if (atFailurePoint(Tid, I) && (Fail->Kind == FailureKind::OutOfBounds ||
                                   Fail->Kind == FailureKind::NullDeref)) {
      Path.push_back(Ctx.uge(Off, Bound));
      FailureTriggered = true;
      IsConcrete = true;
      Concrete = 0; // Value unused: the access traps.
      return true;
    }
    // The access succeeded in production, so it was in bounds.
    Path.push_back(Ctx.ult(Off, Bound));

    // Ask the solver for the set of concrete locations (Section 3.2).
    std::vector<uint64_t> Values;
    bool Complete = false;
    QueryStatus S = Solver.enumerateValues(relevantFor(Off), Off,
                                           Cfg.MaxAddrCandidates, Values,
                                           Complete);
    if (S == QueryStatus::Timeout) {
      stall(Off, "address resolution timed out");
      return false;
    }
    if (Complete && Values.size() == 1) {
      IsConcrete = true;
      Concrete = Values[0];
      return true;
    }
    // Many feasible addresses: model the access with array theory.
    ensureArrayMode(O);
    IsConcrete = false;
    return true;
  }

  bool execLoad(SThread &T, SFrame &Fr, const Instruction &I) {
    SymValue Ptr = valueOf(Fr, I.getOperand(0));
    if (Ptr.Kind != SymValue::K::Ptr) {
      abortRun(SymexStatus::Unsupported, "load through a non-pointer value");
      return false;
    }
    if (Ptr.Null)
      return trapReached(T.Tid, I, FailureKind::NullDeref);
    SObject &O = Objects[Ptr.Obj];
    if (!O.Alive)
      return trapReached(T.Tid, I, FailureKind::UseAfterFree);

    bool IsConcrete;
    uint64_t Idx;
    if (!resolveOffset(T.Tid, I, O, Ptr.Off, IsConcrete, Idx))
      return false;
    if (FailureTriggered)
      return true;

    ExprRef Raw;
    if (IsConcrete && !O.ArrayMode) {
      Raw = O.Elems[Idx];
    } else {
      ensureArrayMode(O);
      ExprRef IdxE = IsConcrete ? Ctx.constant(Idx, 64) : Ptr.Off;
      Raw = Ctx.read(O.Content, IdxE);
      recordOrigin(Raw, I);
    }

    // Width adaptation: elements are stored at the object's element width.
    unsigned AccessW = I.getType().isPtr() ? 64 : I.getType().Bits;
    unsigned StoreW = elemWidth(O);
    if (AccessW != StoreW) {
      abortRun(SymexStatus::Unsupported, "type-confused memory access");
      return false;
    }

    if (I.getType().isPtr()) {
      SymValue P;
      if (!unpackPointer(Raw, P))
        return false;
      Fr.Regs[I.getLocalId()] = P;
    } else {
      Fr.Regs[I.getLocalId()] = SymValue::scalar(Raw);
      recordOrigin(Raw, I);
    }
    return true;
  }

  bool execStore(SThread &T, SFrame &Fr, const Instruction &I) {
    SymValue Val = valueOf(Fr, I.getOperand(0));
    SymValue Ptr = valueOf(Fr, I.getOperand(1));
    if (Ptr.Kind != SymValue::K::Ptr) {
      abortRun(SymexStatus::Unsupported, "store through a non-pointer value");
      return false;
    }
    if (Ptr.Null)
      return trapReached(T.Tid, I, FailureKind::NullDeref);
    SObject &O = Objects[Ptr.Obj];
    if (!O.Alive)
      return trapReached(T.Tid, I, FailureKind::UseAfterFree);

    ExprRef ValE =
        Val.Kind == SymValue::K::Ptr ? packPointer(Val) : Val.E;
    unsigned StoreW = elemWidth(O);
    if (ValE->getWidth() != StoreW) {
      abortRun(SymexStatus::Unsupported, "type-confused memory store");
      return false;
    }

    bool IsConcrete;
    uint64_t Idx;
    if (!resolveOffset(T.Tid, I, O, Ptr.Off, IsConcrete, Idx))
      return false;
    if (FailureTriggered)
      return true;

    if (IsConcrete && !O.ArrayMode) {
      O.Elems[Idx] = ValE;
      return true;
    }
    ensureArrayMode(O);
    ExprRef IdxE = IsConcrete ? Ctx.constant(Idx, 64) : Ptr.Off;
    O.Content = Ctx.write(O.Content, IdxE, ValE);
    O.Writes.push_back({IdxE, ValE, I.getGlobalId()});
    return true;
  }

  //===--- Instruction dispatch ----------------------------------------------
  ExprRef scalarOperand(SFrame &Fr, const Instruction &I, unsigned Idx) {
    SymValue V = valueOf(Fr, I.getOperand(Idx));
    if (V.Kind == SymValue::K::Ptr)
      return packPointer(V);
    return V.E;
  }

  bool step(uint32_t Tid);
  bool execBinary(SThread &T, SFrame &Fr, const Instruction &I);
  bool execCompare(SFrame &Fr, const Instruction &I);

  //===--- Run --------------------------------------------------------------===
  SymexResult run(const DecodedTrace &Trace, const FailureRecord &Failure);
  SymexResult finish(uint64_t SolverWorkBefore);
  bool extractInput(const Assignment &Model, ProgramInput &Out);

  /// DAG node count of \p E, capped (memoized).
  uint64_t nodeCountOf(ExprRef E) {
    auto It = NodeCountCache.find(E);
    if (It != NodeCountCache.end())
      return It->second;
    std::unordered_map<ExprRef, bool> Seen;
    std::vector<ExprRef> Stack{E};
    uint64_t N = 0;
    while (!Stack.empty() && N < 100000) {
      ExprRef X = Stack.back();
      Stack.pop_back();
      if (Seen.count(X))
        continue;
      Seen.emplace(X, true);
      ++N;
      for (unsigned I = 0; I < X->getNumOps(); ++I)
        Stack.push_back(X->getOp(I));
    }
    NodeCountCache.emplace(E, N);
    return N;
  }

  /// When the final solve times out: the K heaviest path constraints,
  /// stripped of their boolean shells (branch outcomes are already known
  /// from the trace; the data terms underneath are what is worth
  /// recording).
  std::vector<ExprRef> pickExpensiveCulprits(unsigned K) {
    std::vector<std::pair<uint64_t, ExprRef>> Ranked;
    for (ExprRef C : Path)
      Ranked.push_back({nodeCountOf(C), C});
    std::sort(Ranked.begin(), Ranked.end(),
              [](const auto &A, const auto &B) { return A.first > B.first; });

    std::vector<ExprRef> Out;
    for (const auto &[N, Best] : Ranked) {
      if (Out.size() >= K)
        break;
      // Descend through boolean structure to the largest non-boolean
      // operand.
      ExprRef E = Best;
      while (E->getWidth() == 1 && E->getNumOps() > 0) {
        ExprRef Biggest = nullptr;
        uint64_t BiggestN = 0;
        for (unsigned I = 0; I < E->getNumOps(); ++I) {
          ExprRef Op = E->getOp(I);
          if (Op->isConst())
            continue;
          uint64_t OpN = nodeCountOf(Op);
          if (OpN > BiggestN) {
            BiggestN = OpN;
            Biggest = Op;
          }
        }
        if (!Biggest)
          break;
        E = Biggest;
      }
      if (!E->isConst() &&
          std::find(Out.begin(), Out.end(), E) == Out.end())
        Out.push_back(E);
    }
    return Out;
  }

  std::unordered_map<ExprRef, uint64_t> NodeCountCache;
};

//===----------------------------------------------------------------------===//
// Arithmetic / compare
//===----------------------------------------------------------------------===//

bool ShepherdedExecutor::Impl::execBinary(SThread &T, SFrame &Fr,
                                          const Instruction &I) {
  ExprRef A = scalarOperand(Fr, I, 0);
  ExprRef B = scalarOperand(Fr, I, 1);
  Opcode Op = I.getOpcode();

  // Division traps mirror the VM.
  if (Op == Opcode::UDiv || Op == Opcode::SDiv || Op == Opcode::URem ||
      Op == Opcode::SRem) {
    if (B->isConst() && B->getConstVal() == 0)
      return trapReached(T.Tid, I, FailureKind::DivByZero);
    if (!B->isConst()) {
      if (atFailurePoint(T.Tid, I) && Fail->Kind == FailureKind::DivByZero) {
        Path.push_back(Ctx.eq(B, Ctx.constant(0, B->getWidth())));
        FailureTriggered = true;
        return true;
      }
      Path.push_back(Ctx.ne(B, Ctx.constant(0, B->getWidth())));
    }
  }

  ExprRef R;
  switch (Op) {
  case Opcode::Add:  R = Ctx.add(A, B); break;
  case Opcode::Sub:  R = Ctx.sub(A, B); break;
  case Opcode::Mul:  R = Ctx.mul(A, B); break;
  case Opcode::UDiv: R = Ctx.udiv(A, B); break;
  case Opcode::SDiv: R = Ctx.sdiv(A, B); break;
  case Opcode::URem: R = Ctx.urem(A, B); break;
  case Opcode::SRem: R = Ctx.srem(A, B); break;
  case Opcode::And:  R = Ctx.bvand(A, B); break;
  case Opcode::Or:   R = Ctx.bvor(A, B); break;
  case Opcode::Xor:  R = Ctx.bvxor(A, B); break;
  case Opcode::Shl:  R = Ctx.shl(A, B); break;
  case Opcode::LShr: R = Ctx.lshr(A, B); break;
  case Opcode::AShr: R = Ctx.ashr(A, B); break;
  default:
    fatalError("execBinary: not a binary opcode");
  }

  // Pointer arithmetic identity: adding to a packed pointer keeps the
  // object; handled in PtrAdd, so plain binary results are scalars.
  Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
  recordOrigin(R, I);
  (void)T;
  return true;
}

bool ShepherdedExecutor::Impl::execCompare(SFrame &Fr, const Instruction &I) {
  SymValue VA = valueOf(Fr, I.getOperand(0));
  SymValue VB = valueOf(Fr, I.getOperand(1));

  // Pointer comparisons: only eq/ne arise from the frontend.
  if (VA.Kind == SymValue::K::Ptr || VB.Kind == SymValue::K::Ptr) {
    ExprRef A = VA.Kind == SymValue::K::Ptr ? packPointer(VA) : VA.E;
    ExprRef B = VB.Kind == SymValue::K::Ptr ? packPointer(VB) : VB.E;
    ExprRef R = I.getOpcode() == Opcode::Ne ? Ctx.ne(A, B) : Ctx.eq(A, B);
    Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
    recordOrigin(R, I);
    return true;
  }

  ExprRef A = VA.E, B = VB.E;
  ExprRef R;
  switch (I.getOpcode()) {
  case Opcode::Eq:  R = Ctx.eq(A, B); break;
  case Opcode::Ne:  R = Ctx.ne(A, B); break;
  case Opcode::Ult: R = Ctx.ult(A, B); break;
  case Opcode::Ule: R = Ctx.ule(A, B); break;
  case Opcode::Ugt: R = Ctx.ugt(A, B); break;
  case Opcode::Uge: R = Ctx.uge(A, B); break;
  case Opcode::Slt: R = Ctx.slt(A, B); break;
  case Opcode::Sle: R = Ctx.sle(A, B); break;
  case Opcode::Sgt: R = Ctx.sgt(A, B); break;
  case Opcode::Sge: R = Ctx.sge(A, B); break;
  default:
    fatalError("execCompare: not a comparison");
  }
  Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
  recordOrigin(R, I);
  return true;
}

//===----------------------------------------------------------------------===//
// Single step
//===----------------------------------------------------------------------===//

bool ShepherdedExecutor::Impl::step(uint32_t Tid) {
  SThread &T = Threads[Tid];
  SFrame &Fr = T.Stack.back();
  const Instruction &I = *Fr.Block->getInst(Fr.InstIdx);
  Opcode Op = I.getOpcode();
  bool Advance = true;

  if (I.getGlobalId() < Snap.ExecCounts.size())
    ++Snap.ExecCounts[I.getGlobalId()];

  if (isBinaryOp(Op)) {
    if (!execBinary(T, Fr, I))
      return false;
  } else if (isCompareOp(Op)) {
    if (!execCompare(Fr, I))
      return false;
  } else {
    switch (Op) {
    case Opcode::Select: {
      ExprRef C = scalarOperand(Fr, I, 0);
      SymValue TV = valueOf(Fr, I.getOperand(1));
      SymValue FV = valueOf(Fr, I.getOperand(2));
      if (C->isConst()) {
        Fr.Regs[I.getLocalId()] = C->getConstVal() ? TV : FV;
      } else if (TV.Kind == SymValue::K::Scalar &&
                 FV.Kind == SymValue::K::Scalar) {
        ExprRef R = Ctx.ite(C, TV.E, FV.E);
        Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
        recordOrigin(R, I);
      } else {
        ExprRef A = TV.Kind == SymValue::K::Ptr ? packPointer(TV) : TV.E;
        ExprRef B = FV.Kind == SymValue::K::Ptr ? packPointer(FV) : FV.E;
        SymValue P;
        if (!unpackPointer(Ctx.ite(C, A, B), P))
          return false;
        Fr.Regs[I.getLocalId()] = P;
      }
      break;
    }
    case Opcode::ZExt: {
      ExprRef R = Ctx.zext(scalarOperand(Fr, I, 0), I.getType().Bits);
      Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
      recordOrigin(R, I);
      break;
    }
    case Opcode::SExt: {
      ExprRef R = Ctx.sext(scalarOperand(Fr, I, 0), I.getType().Bits);
      Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
      recordOrigin(R, I);
      break;
    }
    case Opcode::Trunc: {
      ExprRef R = Ctx.trunc(scalarOperand(Fr, I, 0), I.getType().Bits);
      Fr.Regs[I.getLocalId()] = SymValue::scalar(R);
      recordOrigin(R, I);
      break;
    }
    case Opcode::Alloca: {
      uint32_t Obj = allocateObject(ObjectKind::Stack, I.getAllocElemType(),
                                    I.getAllocCount(), {}, I.getName());
      Fr.StackObjects.push_back(Obj);
      Fr.Regs[I.getLocalId()] = SymValue::ptr(Obj, Ctx.constant(0, 64));
      break;
    }
    case Opcode::Malloc: {
      ExprRef Count = scalarOperand(Fr, I, 0);
      if (!Count->isConst()) {
        // The allocation size shapes every later bounds check; guessing
        // among candidates would corrupt the reconstruction, so resolve it
        // only when unique — otherwise stall and let ER record it.
        std::vector<uint64_t> Values;
        bool Complete = false;
        QueryStatus S = Solver.enumerateValues(relevantFor(Count), Count, 2,
                                               Values, Complete);
        if (S == QueryStatus::Timeout || Values.empty() || Values.size() > 1 ||
            !Complete) {
          stall(Count, "ambiguous symbolic allocation size");
          return false;
        }
        Path.push_back(Ctx.eq(Count, Ctx.constant(Values[0], 64)));
        Count = Ctx.constant(Values[0], 64);
      }
      uint64_t N = Count->getConstVal();
      if (N == 0 || N > PackedPtr::OffsetMask) {
        Fr.Regs[I.getLocalId()] = SymValue::nullPtr();
      } else {
        uint32_t Obj =
            allocateObject(ObjectKind::Heap, I.getAllocElemType(), N, {}, "");
        Fr.Regs[I.getLocalId()] = SymValue::ptr(Obj, Ctx.constant(0, 64));
      }
      break;
    }
    case Opcode::Free: {
      SymValue P = valueOf(Fr, I.getOperand(0));
      if (P.Kind != SymValue::K::Ptr) {
        abortRun(SymexStatus::Unsupported, "free of a non-pointer");
        return false;
      }
      if (P.Null)
        return trapReached(Tid, I, FailureKind::NullDeref);
      SObject &O = Objects[P.Obj];
      if (O.Kind != ObjectKind::Heap ||
          !P.Off->isConst() || P.Off->getConstVal() != 0)
        return trapReached(Tid, I, FailureKind::OutOfBounds);
      if (!O.Alive)
        return trapReached(Tid, I, FailureKind::DoubleFree);
      O.Alive = false;
      break;
    }
    case Opcode::PtrAdd: {
      SymValue P = valueOf(Fr, I.getOperand(0));
      ExprRef D = scalarOperand(Fr, I, 1);
      if (P.Kind != SymValue::K::Ptr) {
        abortRun(SymexStatus::Unsupported, "ptradd on a non-pointer");
        return false;
      }
      if (P.Null) {
        // Null + delta stays "null-ish"; the VM would fault on access.
        Fr.Regs[I.getLocalId()] = P;
        break;
      }
      ExprRef NewOff = Ctx.add(P.Off, D);
      Fr.Regs[I.getLocalId()] = SymValue::ptr(P.Obj, NewOff);
      recordOrigin(NewOff, I);
      break;
    }
    case Opcode::Load:
      if (!execLoad(T, Fr, I))
        return false;
      break;
    case Opcode::Store:
      if (!execStore(T, Fr, I))
        return false;
      break;
    case Opcode::GlobalAddr:
      Fr.Regs[I.getLocalId()] =
          SymValue::ptr(static_cast<uint32_t>(I.getGlobal()->getId()),
                        Ctx.constant(0, 64));
      break;
    case Opcode::Br:
      Fr.Block = I.getSuccessor(0);
      Fr.InstIdx = 0;
      Advance = false;
      break;
    case Opcode::CondBr: {
      const TraceEvent *E = nextEvent(T, TraceEvent::Kind::CondBranch);
      if (!E)
        return false;
      ExprRef C = scalarOperand(Fr, I, 0);
      if (C->isConst()) {
        if ((C->getConstVal() != 0) != E->Taken) {
          abortRun(SymexStatus::TraceMismatch,
                   formatString("concrete branch disagrees with trace at "
                                "instr %u in %s",
                                I.getGlobalId(),
                                Fr.F->getName().c_str()));
          return false;
        }
      } else {
        Path.push_back(E->Taken ? C : Ctx.bvnot(C));
      }
      Fr.Block = I.getSuccessor(E->Taken ? 0 : 1);
      Fr.InstIdx = 0;
      Advance = false;
      break;
    }
    case Opcode::Call: {
      std::vector<SymValue> Args;
      for (unsigned A = 0; A < I.getNumOperands(); ++A)
        Args.push_back(valueOf(Fr, I.getOperand(A)));
      SFrame NewFr;
      NewFr.F = I.getCallee();
      NewFr.Block = NewFr.F->getEntry();
      NewFr.Regs.resize(NewFr.F->getNumInstructions());
      NewFr.Args = std::move(Args);
      NewFr.CallSite = &I;
      T.Stack.push_back(std::move(NewFr));
      Advance = false;
      break;
    }
    case Opcode::Ret: {
      const TraceEvent *E = nextEvent(T, TraceEvent::Kind::ReturnTarget);
      if (!E)
        return false;
      SymValue RetVal;
      if (I.getNumOperands() == 1)
        RetVal = valueOf(Fr, I.getOperand(0));
      for (uint32_t Obj : Fr.StackObjects)
        Objects[Obj].Alive = false;
      const Instruction *CallSite = Fr.CallSite;
      T.Stack.pop_back();
      if (T.Stack.empty()) {
        if (E->Value != 0xffffffffu) {
          abortRun(SymexStatus::TraceMismatch, "unexpected return target");
          return false;
        }
        T.Finished = true;
        return true;
      }
      if (E->Value != CallSite->getGlobalId()) {
        abortRun(SymexStatus::TraceMismatch, "return target mismatch");
        return false;
      }
      SFrame &Caller = T.Stack.back();
      if (CallSite->getOpcode() == Opcode::Call &&
          !CallSite->getType().isVoid())
        Caller.Regs[CallSite->getLocalId()] = RetVal;
      Caller.InstIdx++;
      Advance = false;
      break;
    }
    case Opcode::InputArg: {
      unsigned Idx = static_cast<unsigned>(I.getImm());
      auto It = Snap.ArgVars.find(Idx);
      ExprRef V;
      if (It != Snap.ArgVars.end()) {
        V = It->second;
      } else {
        V = Ctx.makeVar("in_arg" + std::to_string(Idx), 64);
        Snap.ArgVars.emplace(Idx, V);
      }
      Fr.Regs[I.getLocalId()] = SymValue::scalar(V);
      recordOrigin(V, I);
      break;
    }
    case Opcode::InputByte: {
      if (!Snap.InSizeVar)
        Snap.InSizeVar = Ctx.makeVar("in_size", 64);
      uint64_t K = Snap.ByteVars.size();
      if (atFailurePoint(Tid, I) && Fail->Kind == FailureKind::InputUnderrun) {
        Path.push_back(Ctx.eq(Snap.InSizeVar, Ctx.constant(K, 64)));
        FailureTriggered = true;
        return true;
      }
      // ugt(in_size, k) subsumes all previous k' < k: keep a single slot.
      ExprRef SizeC = Ctx.ugt(Snap.InSizeVar, Ctx.constant(K, 64));
      if (InSizeConstraintPos != SIZE_MAX)
        Path[InSizeConstraintPos] = SizeC;
      else {
        InSizeConstraintPos = Path.size();
        Path.push_back(SizeC);
      }
      ExprRef V = Ctx.makeVar("in_b" + std::to_string(K), 8);
      Snap.ByteVars.push_back(V);
      Snap.ConsumedBytes = Snap.ByteVars.size();
      Fr.Regs[I.getLocalId()] = SymValue::scalar(V);
      recordOrigin(V, I);
      break;
    }
    case Opcode::InputSize: {
      if (!Snap.InSizeVar)
        Snap.InSizeVar = Ctx.makeVar("in_size", 64);
      Fr.Regs[I.getLocalId()] = SymValue::scalar(Snap.InSizeVar);
      recordOrigin(Snap.InSizeVar, I);
      break;
    }
    case Opcode::Print:
      break; // No semantic effect on the path.
    case Opcode::Abort:
      return trapReached(Tid, I, FailureKind::Abort);
    case Opcode::Spawn: {
      SymValue Arg = valueOf(Fr, I.getOperand(0));
      SThread NewT;
      NewT.Tid = static_cast<uint32_t>(Threads.size());
      SFrame NewFr;
      NewFr.F = I.getCallee();
      NewFr.Block = NewFr.F->getEntry();
      NewFr.Regs.resize(NewFr.F->getNumInstructions());
      NewFr.Args = {Arg};
      NewFr.CallSite = &I;
      NewT.Stack.push_back(std::move(NewFr));
      Fr.Regs[I.getLocalId()] =
          SymValue::scalar(Ctx.constant(NewT.Tid, 64));
      Threads.push_back(std::move(NewT));
      // Threads vector may have reallocated: do not touch T beyond the
      // cached frame reference (Fr points into stable heap storage).
      break;
    }
    case Opcode::Join:
    case Opcode::MutexLock:
    case Opcode::MutexUnlock:
      // The chunk schedule already encodes the acquisition/join order; the
      // VM only counted these instructions when they succeeded.
      break;
    case Opcode::PtWrite: {
      const TraceEvent *E = nextEvent(T, TraceEvent::Kind::Data);
      if (!E)
        return false;
      SymValue V = valueOf(Fr, I.getOperand(0));
      ExprRef Cur = V.Kind == SymValue::K::Ptr ? packPointer(V) : V.E;
      uint64_t Recorded = maskToWidth(E->Value, Cur->getWidth());
      if (Cur->isConst()) {
        if (Cur->getConstVal() != Recorded) {
          abortRun(SymexStatus::TraceMismatch,
                   "recorded data value disagrees with concrete value");
          return false;
        }
        break;
      }
      ExprRef RecordedC = Ctx.constant(Recorded, Cur->getWidth());
      Path.push_back(Ctx.eq(Cur, RecordedC));
      // Concretize the monitored register so downstream constraints
      // simplify — this is the entire point of data value recording.
      if (const auto *DefI = dyn_cast<Instruction>(I.getOperand(0))) {
        if (V.Kind == SymValue::K::Ptr) {
          SymValue P;
          if (!unpackPointer(RecordedC, P))
            return false;
          Fr.Regs[DefI->getLocalId()] = P;
        } else {
          Fr.Regs[DefI->getLocalId()] = SymValue::scalar(RecordedC);
        }
      }
      break;
    }
    default:
      fatalError("unhandled opcode in symex");
    }
  }

  // Spawn may have reallocated Threads; re-fetch through the id. Fr stays
  // valid (frames live in stable heap storage owned by the moved vector).
  if (Advance) {
    SFrame &CurFr = Threads[Tid].Stack.back();
    CurFr.InstIdx++;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Run / finish
//===----------------------------------------------------------------------===//

SymexResult ShepherdedExecutor::Impl::run(const DecodedTrace &Trace,
                                          const FailureRecord &Failure) {
  Fail = &Failure;
  Snap.ExecCounts.assign(M.getNumInstructionIds(), 0);
  uint64_t SolverWorkBefore = Solver.getTotals().TotalWork;

  if (Trace.anyTruncated()) {
    SymexResult R;
    R.Status = SymexStatus::TraceTruncated;
    R.Detail = "ring buffer overwrote the head of the trace";
    return R;
  }

  // Globals become objects 0..G-1, matching the VM's allocation order.
  for (const auto &G : M.globals())
    allocateObject(ObjectKind::Global, G->getElemType(), G->getNumElems(),
                   G->getInit(), G->getName());

  const Function *Main = M.getFunction("main");
  if (!Main)
    fatalError("module has no main()");

  SThread MainT;
  MainT.Tid = 0;
  SFrame Fr;
  Fr.F = Main;
  Fr.Block = Main->getEntry();
  Fr.Regs.resize(Main->getNumInstructions());
  MainT.Stack.push_back(std::move(Fr));
  Threads.push_back(std::move(MainT));

  // Bind decoded per-thread streams.
  auto BindThread = [&](uint32_t Tid) {
    const DecodedThread *D = Trace.thread(Tid);
    if (!D) {
      abortRun(SymexStatus::TraceMismatch, "missing thread trace");
      return false;
    }
    Threads[Tid].Decoded = D;
    return true;
  };
  if (!BindThread(0))
    return finish(SolverWorkBefore);

  // Build the global chunk schedule ordered by (quantized timestamp, tid,
  // per-thread sequence) — the paper's partial order with arbitrary
  // tie-breaking (Section 3.4). The tie-break seed permutes the arbitrary
  // cross-thread order of *tied* chunks; per-thread order is always kept.
  std::vector<ScheduledChunk> Schedule;
  for (const auto &D : Trace.Threads) {
    for (uint32_t Seq = 0; Seq < D.Chunks.size(); ++Seq)
      Schedule.push_back(
          {D.Chunks[Seq].Timestamp, D.Tid, Seq, D.Chunks[Seq].NumInstrs});
  }
  uint64_t TieSeed = Cfg.ChunkTieBreakSeed;
  auto ThreadKey = [TieSeed](uint32_t Tid) {
    if (TieSeed == 0)
      return static_cast<uint64_t>(Tid);
    uint64_t H = Tid * 0x9e3779b97f4a7c15ULL + TieSeed;
    H ^= H >> 29;
    H *= 0xbf58476d1ce4e5b9ULL;
    return H;
  };
  // Within a timestamp tie, interleave by per-thread sequence number (the
  // scheduler round-robins chunks), using the permuted thread key only to
  // break exact (Ts, Seq) collisions: this keeps per-thread order and
  // approximates the real interleaving far better than grouping threads.
  std::sort(Schedule.begin(), Schedule.end(),
            [&](const ScheduledChunk &A, const ScheduledChunk &B) {
              if (A.Ts != B.Ts)
                return A.Ts < B.Ts;
              if (A.Seq != B.Seq)
                return A.Seq < B.Seq;
              return ThreadKey(A.Tid) < ThreadKey(B.Tid);
            });

  TotalRemaining = 0;
  for (const auto &C : Schedule) {
    TotalRemaining += C.NumInstrs;
    if (C.Tid >= ThreadRemaining.size())
      ThreadRemaining.resize(C.Tid + 1, 0);
    ThreadRemaining[C.Tid] += C.NumInstrs;
  }

  // Execute chunks earliest-first, but *defer* a chunk whose thread has not
  // been spawned yet: with coarse timestamps a child's first chunk can sort
  // before the parent's spawning chunk, and the spawn-before-run structural
  // order always wins over the arbitrary tie-break. On failure, chunks of
  // *other* threads that the tie-break ordered after the failing
  // instruction are abandoned, as in the VM (execution stops there).
  std::vector<bool> Done(Schedule.size(), false);
  size_t Remaining = Schedule.size();
  while (Remaining > 0 && !Aborted && !FailureTriggered) {
    bool Progress = false;
    for (size_t CI = 0; CI < Schedule.size(); ++CI) {
      if (Done[CI])
        continue;
      const ScheduledChunk &C = Schedule[CI];
      if (C.Tid >= Threads.size())
        continue; // Not spawned yet: defer.
      if (!Threads[C.Tid].Decoded && !BindThread(C.Tid))
        break;
      Done[CI] = true;
      --Remaining;
      Progress = true;
      for (uint64_t K = 0; K < C.NumInstrs; ++K) {
        if (Threads[C.Tid].Finished || Threads[C.Tid].Stack.empty()) {
          abortRun(SymexStatus::TraceMismatch,
                   "chunk continues past thread completion");
          break;
        }
        if (!step(C.Tid))
          break;
        ++InstrExecuted;
        --TotalRemaining;
        --ThreadRemaining[C.Tid];
        if (DebugProgress && InstrExecuted % 2000 == 0)
          std::fprintf(stderr,
                       "[symex] instr=%llu queries=%llu work=%llu path=%zu\n",
                       (unsigned long long)InstrExecuted,
                       (unsigned long long)Solver.getTotals().Queries,
                       (unsigned long long)Solver.getTotals().TotalWork,
                       Path.size());
        if (FailureTriggered || Aborted)
          break;
        if (InstrExecuted > Cfg.MaxSteps) {
          abortRun(SymexStatus::TraceMismatch, "symex fuel exhausted");
          break;
        }
      }
      break; // Rescan from the earliest pending chunk.
    }
    if (!Progress && !Aborted && !FailureTriggered) {
      abortRun(SymexStatus::TraceMismatch,
               "chunk for a thread that was never spawned");
      break;
    }
  }

  return finish(SolverWorkBefore);
}

bool ShepherdedExecutor::Impl::extractInput(const Assignment &Model,
                                            ProgramInput &Out) {
  const Assignment *Chosen = &Model;
  Assignment Pinned;
  uint64_t Size = Snap.ConsumedBytes;

  // Prefer the smallest byte stream covering all consumed bytes: pin the
  // size variable to the consumption count when that is still satisfiable.
  if (Snap.InSizeVar &&
      Model.getVar(Snap.InSizeVar->getVarId()) != Snap.ConsumedBytes) {
    std::vector<ExprRef> WithPin = Path;
    WithPin.push_back(
        Ctx.eq(Snap.InSizeVar, Ctx.constant(Snap.ConsumedBytes, 64)));
    QueryResult QR = Solver.checkSat(
        WithPin, Solver.getConfig().WorkBudget * Cfg.FinalBudgetMultiplier);
    if (QR.Status == QueryStatus::Sat) {
      Pinned = std::move(QR.Model);
      Chosen = &Pinned;
    } else {
      uint64_t ModelSize = Model.getVar(Snap.InSizeVar->getVarId());
      Size = std::min<uint64_t>(ModelSize, Snap.ConsumedBytes + 4096);
    }
  }

  unsigned MaxArg = 0;
  for (const auto &[Idx, Var] : Snap.ArgVars)
    MaxArg = std::max(MaxArg, Idx + 1);
  Out.Args.assign(MaxArg, 0);
  for (const auto &[Idx, Var] : Snap.ArgVars)
    Out.Args[Idx] = Chosen->getVar(Var->getVarId());

  Out.Bytes.assign(Size, 0);
  for (size_t K = 0; K < Snap.ByteVars.size() && K < Out.Bytes.size(); ++K)
    Out.Bytes[K] =
        static_cast<uint8_t>(Chosen->getVar(Snap.ByteVars[K]->getVarId()));
  return true;
}

SymexResult ShepherdedExecutor::Impl::finish(uint64_t SolverWorkBefore) {
  SymexResult R;
  R.InstrExecuted = InstrExecuted;
  R.SolverWork = Solver.getTotals().TotalWork - SolverWorkBefore;

  // Collect chains into the snapshot.
  Snap.PathConstraint = Path;
  for (uint32_t Id = 0; Id < Objects.size(); ++Id) {
    SObject &O = Objects[Id];
    if (O.Writes.empty())
      continue;
    ObjectChain C;
    C.ObjId = Id;
    C.Name = O.Name;
    C.ElemWidthBits = elemWidth(O);
    C.NumElems = O.NumElems;
    C.Writes = O.Writes;
    Snap.Chains.push_back(std::move(C));
  }

  if (Aborted) {
    R.Status = AbortStatus;
    R.Detail = AbortDetail;
    R.Snapshot = std::move(Snap);
    return R;
  }
  // A deadlock has no faulting instruction to reach: the production trace
  // simply stops with every live thread blocked. Replaying every traced
  // chunk to exhaustion without a mismatch IS the failure evidence.
  if (!FailureTriggered && Fail->Kind == FailureKind::Deadlock &&
      TotalRemaining == 0)
    FailureTriggered = true;
  if (!FailureTriggered) {
    R.Status = SymexStatus::TraceMismatch;
    R.Detail = "trace ended without reaching the failure";
    R.Snapshot = std::move(Snap);
    return R;
  }

  // Final solve: the whole path constraint, under the scaled budget.
  uint64_t FinalBudget =
      Solver.getConfig().WorkBudget * Cfg.FinalBudgetMultiplier;
  QueryResult QR = Solver.checkSat(Path, FinalBudget);
  R.SolverWork = Solver.getTotals().TotalWork - SolverWorkBefore;
  if (QR.Status == QueryStatus::Timeout) {
    // Give key-value selection concrete targets even when no write chain
    // exists: the non-boolean cores of the heaviest constraints.
    if (!Snap.CulpritExpr) {
      Snap.CulpritExprs = pickExpensiveCulprits(3);
      if (!Snap.CulpritExprs.empty())
        Snap.CulpritExpr = Snap.CulpritExprs.front();
    }
    R.Status = SymexStatus::Stalled;
    R.Detail = "final constraint solve timed out";
    R.Snapshot = std::move(Snap);
    return R;
  }
  if (QR.Status == QueryStatus::Unsat) {
    R.Status = SymexStatus::TraceMismatch;
    R.Detail = "path constraint unsatisfiable (reconstruction error)";
    R.Snapshot = std::move(Snap);
    return R;
  }

  extractInput(QR.Model, R.GeneratedInput);
  R.Status = SymexStatus::Reproduced;
  R.Snapshot = std::move(Snap);
  return R;
}

//===----------------------------------------------------------------------===//
// Facade
//===----------------------------------------------------------------------===//

ShepherdedExecutor::ShepherdedExecutor(const Module &M, ExprContext &Ctx,
                                       ConstraintSolver &Solver,
                                       SymexConfig Config)
    : PImpl(std::make_unique<Impl>(M, Ctx, Solver, Config)) {}

ShepherdedExecutor::~ShepherdedExecutor() = default;

SymexResult ShepherdedExecutor::run(const DecodedTrace &Trace,
                                    const FailureRecord &Failure) {
  return PImpl->run(Trace, Failure);
}
