//===- OverheadModel.h - Runtime-overhead cost model ------------*- C++ -*-===//
///
/// \file
/// Converts trace byte counts into a modelled runtime overhead percentage.
///
/// The paper measures ER's online cost on real hardware (Fig. 6: 0.3% mean,
/// 1.1% max). This repo's substrate is a VM, so overhead is *modelled*: each
/// executed instruction costs CyclesPerInstr; every trace byte the PT fabric
/// writes costs CyclesPerTraceByte (memory bandwidth of the PT ring); every
/// ptwrite instruction additionally costs CyclesPerPtWrite (it executes in
/// the pipeline). The constants are calibrated so that control-flow tracing
/// of branchy code lands near the published PT overhead range, keeping the
/// *shape* of Fig. 6 (ER two orders of magnitude below rr) meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef ER_TRACE_OVERHEADMODEL_H
#define ER_TRACE_OVERHEADMODEL_H

#include "trace/Trace.h"

#include <cstdint>

namespace er {

class Rng;

/// Cost constants for the overhead model.
struct OverheadParams {
  double CyclesPerInstr = 1.0;
  /// The VM's IR is branch-dense relative to x86 (no address-generation or
  /// register-shuffling instructions), so the per-byte cost is calibrated
  /// against the published PT overhead on the perf workloads.
  double CyclesPerTraceByte = 0.011;
  double CyclesPerPtWrite = 1.0;
  /// Relative run-to-run noise (models I/O and scheduling variability of the
  /// performance benchmarks; libpng-style I/O-heavy workloads set it higher).
  double NoiseStdDev = 0.0005;
};

/// Returns the modelled ER runtime overhead (percent) of a run that executed
/// \p InstrCount instructions and produced \p Stats worth of trace, with one
/// sample of seeded measurement noise from \p R.
double erOverheadPercent(uint64_t InstrCount, const TraceStats &Stats,
                         const OverheadParams &Params, Rng &R);

/// Deterministic (noise-free) variant.
double erOverheadPercentExact(uint64_t InstrCount, const TraceStats &Stats,
                              const OverheadParams &Params);

} // namespace er

#endif // ER_TRACE_OVERHEADMODEL_H
