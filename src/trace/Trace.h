//===- Trace.h - Software model of Intel PT tracing -------------*- C++ -*-===//
///
/// \file
/// A software model of the hardware tracing fabric ER builds on (Intel PT):
///
///  - **TNT packets**: conditional-branch outcomes, bit-packed six to a byte
///    (matching PT's short-TNT compression, which is what makes control-flow
///    tracing ~0.3% overhead).
///  - **TIP packets**: return targets (direct branches/calls generate no
///    packets, as in PT).
///  - **CHUNK packets**: coarse timestamps (TSC/CYC in PT) emitted at
///    scheduling-chunk boundaries, carrying the quantized start time and the
///    chunk's instruction count. These give the partial order across threads
///    that Section 3.4 of the paper relies on.
///  - **PTW packets**: data values recorded by `ptwrite` instrumentation.
///  - A bounded **ring buffer** per traced process: when the configured
///    capacity is exceeded the oldest packets are overwritten (truncating
///    the front of the trace), exactly the failure mode the paper sizes its
///    64MB buffer to avoid.
///
/// The encoder is driven by the concrete VM; the decoder feeds shepherded
/// symbolic execution.
///
//===----------------------------------------------------------------------===//

#ifndef ER_TRACE_TRACE_H
#define ER_TRACE_TRACE_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace er {

/// Tracing configuration for one deployment.
struct TraceConfig {
  /// Ring-buffer capacity in bytes (paper default: 64 MB).
  uint64_t BufferBytes = 64ull * 1024 * 1024;
  /// Quantization shift applied to chunk timestamps; larger values model a
  /// coarser hardware timer (timestamps become equal more often, making the
  /// cross-thread order partial).
  unsigned TimerGranularityShift = 4;
};

/// One decoded trace event, in per-thread program order.
struct TraceEvent {
  enum class Kind : uint8_t {
    CondBranch,     ///< Taken bit of a conditional branch.
    ReturnTarget,   ///< Global instruction id execution resumes at.
    Data,           ///< ptwrite payload.
  };
  Kind K;
  bool Taken = false;
  uint64_t Value = 0;
};

/// A scheduling chunk: instructions [begin, begin+NumInstrs) of a thread's
/// dynamic stream executed consecutively starting at (quantized) Timestamp.
struct ChunkInfo {
  uint64_t Timestamp = 0;
  uint64_t NumInstrs = 0;
};

/// The decoded per-thread stream.
struct DecodedThread {
  uint32_t Tid = 0;
  bool TruncatedFront = false; ///< Ring buffer overwrote this thread's head.
  std::vector<TraceEvent> Events;
  std::vector<ChunkInfo> Chunks;
};

/// A fully decoded trace bundle.
struct DecodedTrace {
  std::vector<DecodedThread> Threads;
  bool anyTruncated() const {
    for (const auto &T : Threads)
      if (T.TruncatedFront)
        return true;
    return false;
  }
  const DecodedThread *thread(uint32_t Tid) const {
    for (const auto &T : Threads)
      if (T.Tid == Tid)
        return &T;
    return nullptr;
  }
};

/// Byte-accurate sizing statistics (drive the overhead model).
struct TraceStats {
  uint64_t BytesWritten = 0; ///< Total encoded bytes, before ring eviction.
  uint64_t TntPackets = 0;
  uint64_t TipPackets = 0;
  uint64_t ChunkPackets = 0;
  uint64_t PtwPackets = 0;
  uint64_t EvictedBytes = 0; ///< Bytes overwritten by the ring buffer.
};

/// Encodes per-thread packet streams into a shared ring budget.
class TraceRecorder {
public:
  explicit TraceRecorder(const TraceConfig &Config) : Config(Config) {}

  /// Starts (or restarts) recording for a thread.
  void beginThread(uint32_t Tid);

  /// Records one conditional branch outcome.
  void condBranch(uint32_t Tid, bool Taken);
  /// Records a return resuming at instruction \p TargetGlobalId.
  void returnTarget(uint32_t Tid, uint32_t TargetGlobalId);
  /// Records a ptwrite payload.
  void ptWrite(uint32_t Tid, uint64_t Value);
  /// Closes the current scheduling chunk: \p Timestamp is the unquantized
  /// chunk start time, \p NumInstrs the instructions it covered.
  void endChunk(uint32_t Tid, uint64_t Timestamp, uint64_t NumInstrs);

  /// Flushes pending TNT bits on all threads (call at failure time).
  void finish();

  /// Decodes the recorded buffer.
  DecodedTrace decode() const;

  /// Serializes the recorded streams to a flat byte blob (the "ship the
  /// runtime trace to the analysis engine" step of Fig. 2: the online and
  /// offline halves need not share an address space).
  std::vector<uint8_t> serialize() const;

  /// Decodes a blob produced by serialize().
  static DecodedTrace deserialize(const std::vector<uint8_t> &Blob);

  const TraceStats &getStats() const { return Stats; }
  uint64_t bytesLive() const { return LiveBytes; }
  const TraceConfig &getConfig() const { return Config; }

private:
  struct ThreadStream {
    uint32_t Tid = 0;
    std::deque<uint8_t> Bytes;
    std::deque<uint32_t> PacketLens;
    uint8_t PendingTnt = 0;      ///< Accumulated TNT bits.
    uint8_t PendingTntCount = 0; ///< How many bits are pending (max 6).
    bool TruncatedFront = false;
  };

  ThreadStream &stream(uint32_t Tid);
  void flushTnt(ThreadStream &S);
  void appendPacket(ThreadStream &S, const uint8_t *Data, uint32_t Len);
  void evictIfNeeded();

  TraceConfig Config;
  std::vector<ThreadStream> Streams;
  TraceStats Stats;
  uint64_t LiveBytes = 0;
};

/// Decodes one thread's raw packet bytes (exposed for tests).
DecodedThread decodeThreadBytes(uint32_t Tid,
                                const std::vector<uint8_t> &Bytes,
                                bool TruncatedFront);

} // namespace er

#endif // ER_TRACE_TRACE_H
