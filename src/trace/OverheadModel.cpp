//===- OverheadModel.cpp ----------------------------------------------------===//

#include "trace/OverheadModel.h"

#include "support/Rng.h"

#include <cmath>

using namespace er;

double er::erOverheadPercentExact(uint64_t InstrCount,
                                  const TraceStats &Stats,
                                  const OverheadParams &Params) {
  if (InstrCount == 0)
    return 0.0;
  double Base = static_cast<double>(InstrCount) * Params.CyclesPerInstr;
  double TraceCost =
      static_cast<double>(Stats.BytesWritten) * Params.CyclesPerTraceByte +
      static_cast<double>(Stats.PtwPackets) * Params.CyclesPerPtWrite;
  return TraceCost / Base * 100.0;
}

double er::erOverheadPercent(uint64_t InstrCount, const TraceStats &Stats,
                             const OverheadParams &Params, Rng &R) {
  double Exact = erOverheadPercentExact(InstrCount, Stats, Params);
  // Box-Muller noise sample; overheads cannot go negative.
  double U1 = R.nextDouble();
  double U2 = R.nextDouble();
  if (U1 < 1e-12)
    U1 = 1e-12;
  double Gauss = std::sqrt(-2.0 * std::log(U1)) * std::cos(6.28318530718 * U2);
  double Noisy = Exact + Gauss * Params.NoiseStdDev * 100.0;
  return Noisy < 0 ? 0 : Noisy;
}
