//===- Trace.cpp - PT-style packet encoding and decoding --------------------===//
//
// Packet wire format (tag in the first byte):
//   odd byte        short TNT: bit0 = 1, then N outcome bits at positions
//                   1..N and a stop bit at position N+1 (1 <= N <= 6).
//   0x02            TIP: 4-byte little-endian target instruction id.
//   0x04            CHUNK: 6-byte quantized timestamp + 2-byte instruction
//                   count (counts > 65535 are split across packets).
//   0x06            PTW: 1-byte payload size (4 or 8) + payload bytes.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "support/Error.h"

#include <cassert>

using namespace er;

static constexpr uint8_t TagTip = 0x02;
static constexpr uint8_t TagChunk = 0x04;
static constexpr uint8_t TagPtw = 0x06;

TraceRecorder::ThreadStream &TraceRecorder::stream(uint32_t Tid) {
  for (auto &S : Streams)
    if (S.Tid == Tid)
      return S;
  fatalError("trace stream for unknown thread");
}

void TraceRecorder::beginThread(uint32_t Tid) {
  ThreadStream S;
  S.Tid = Tid;
  Streams.push_back(std::move(S));
}

void TraceRecorder::appendPacket(ThreadStream &S, const uint8_t *Data,
                                 uint32_t Len) {
  for (uint32_t I = 0; I < Len; ++I)
    S.Bytes.push_back(Data[I]);
  S.PacketLens.push_back(Len);
  Stats.BytesWritten += Len;
  LiveBytes += Len;
  evictIfNeeded();
}

void TraceRecorder::evictIfNeeded() {
  while (LiveBytes > Config.BufferBytes) {
    // Overwrite the oldest packets of the largest stream (a single shared
    // ring in the model; per-stream eviction keeps decode packet-aligned).
    ThreadStream *Largest = nullptr;
    for (auto &S : Streams)
      if (!S.Bytes.empty() && (!Largest || S.Bytes.size() > Largest->Bytes.size()))
        Largest = &S;
    if (!Largest)
      return;
    uint32_t Len = Largest->PacketLens.front();
    Largest->PacketLens.pop_front();
    for (uint32_t I = 0; I < Len; ++I)
      Largest->Bytes.pop_front();
    Largest->TruncatedFront = true;
    Stats.EvictedBytes += Len;
    LiveBytes -= Len;
  }
}

void TraceRecorder::flushTnt(ThreadStream &S) {
  if (S.PendingTntCount == 0)
    return;
  // bit0 = 1 header, outcome bits at 1..N, stop bit at N+1.
  uint8_t Byte = 1;
  Byte |= static_cast<uint8_t>(S.PendingTnt << 1);
  Byte |= static_cast<uint8_t>(1u << (S.PendingTntCount + 1));
  appendPacket(S, &Byte, 1);
  ++Stats.TntPackets;
  S.PendingTnt = 0;
  S.PendingTntCount = 0;
}

void TraceRecorder::condBranch(uint32_t Tid, bool Taken) {
  ThreadStream &S = stream(Tid);
  S.PendingTnt |= static_cast<uint8_t>(Taken ? 1u << S.PendingTntCount : 0);
  ++S.PendingTntCount;
  if (S.PendingTntCount == 6)
    flushTnt(S);
}

void TraceRecorder::returnTarget(uint32_t Tid, uint32_t TargetGlobalId) {
  ThreadStream &S = stream(Tid);
  flushTnt(S);
  uint8_t Pkt[5];
  Pkt[0] = TagTip;
  for (int I = 0; I < 4; ++I)
    Pkt[1 + I] = static_cast<uint8_t>(TargetGlobalId >> (8 * I));
  appendPacket(S, Pkt, sizeof(Pkt));
  ++Stats.TipPackets;
}

void TraceRecorder::ptWrite(uint32_t Tid, uint64_t Value) {
  ThreadStream &S = stream(Tid);
  flushTnt(S);
  bool Small = Value <= 0xffffffffull;
  uint8_t Pkt[10];
  Pkt[0] = TagPtw;
  Pkt[1] = Small ? 4 : 8;
  for (int I = 0; I < Pkt[1]; ++I)
    Pkt[2 + I] = static_cast<uint8_t>(Value >> (8 * I));
  appendPacket(S, Pkt, 2u + Pkt[1]);
  ++Stats.PtwPackets;
}

void TraceRecorder::endChunk(uint32_t Tid, uint64_t Timestamp,
                             uint64_t NumInstrs) {
  ThreadStream &S = stream(Tid);
  flushTnt(S);
  uint64_t Quantized = Timestamp >> Config.TimerGranularityShift;
  while (NumInstrs > 0) {
    uint64_t Count = NumInstrs > 0xffff ? 0xffff : NumInstrs;
    NumInstrs -= Count;
    uint8_t Pkt[9];
    Pkt[0] = TagChunk;
    for (int I = 0; I < 6; ++I)
      Pkt[1 + I] = static_cast<uint8_t>(Quantized >> (8 * I));
    Pkt[7] = static_cast<uint8_t>(Count);
    Pkt[8] = static_cast<uint8_t>(Count >> 8);
    appendPacket(S, Pkt, sizeof(Pkt));
    ++Stats.ChunkPackets;
  }
}

void TraceRecorder::finish() {
  for (auto &S : Streams)
    flushTnt(S);
}

DecodedThread er::decodeThreadBytes(uint32_t Tid,
                                    const std::vector<uint8_t> &Bytes,
                                    bool TruncatedFront) {
  DecodedThread D;
  D.Tid = Tid;
  D.TruncatedFront = TruncatedFront;
  size_t I = 0;
  while (I < Bytes.size()) {
    uint8_t B = Bytes[I];
    if (B & 1) {
      // Short TNT: find the stop bit (highest set bit above position 0).
      unsigned Stop = 7;
      while (Stop > 0 && !((B >> Stop) & 1))
        --Stop;
      assert(Stop >= 2 && "malformed TNT byte");
      for (unsigned Pos = 1; Pos < Stop; ++Pos) {
        TraceEvent E;
        E.K = TraceEvent::Kind::CondBranch;
        E.Taken = (B >> Pos) & 1;
        D.Events.push_back(E);
      }
      ++I;
      continue;
    }
    switch (B) {
    case TagTip: {
      uint64_t V = 0;
      for (int K = 0; K < 4; ++K)
        V |= static_cast<uint64_t>(Bytes[I + 1 + K]) << (8 * K);
      TraceEvent E;
      E.K = TraceEvent::Kind::ReturnTarget;
      E.Value = V;
      D.Events.push_back(E);
      I += 5;
      break;
    }
    case TagChunk: {
      uint64_t Ts = 0;
      for (int K = 0; K < 6; ++K)
        Ts |= static_cast<uint64_t>(Bytes[I + 1 + K]) << (8 * K);
      uint64_t Count = Bytes[I + 7] | (static_cast<uint64_t>(Bytes[I + 8]) << 8);
      D.Chunks.push_back({Ts, Count});
      I += 9;
      break;
    }
    case TagPtw: {
      unsigned Size = Bytes[I + 1];
      uint64_t V = 0;
      for (unsigned K = 0; K < Size; ++K)
        V |= static_cast<uint64_t>(Bytes[I + 2 + K]) << (8 * K);
      TraceEvent E;
      E.K = TraceEvent::Kind::Data;
      E.Value = V;
      D.Events.push_back(E);
      I += 2 + Size;
      break;
    }
    default:
      fatalError("malformed trace packet tag");
    }
  }
  return D;
}

namespace {

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t getU32(const std::vector<uint8_t> &In, size_t &Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(In[Pos++]) << (8 * I);
  return V;
}

uint64_t getU64(const std::vector<uint8_t> &In, size_t &Pos) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(In[Pos++]) << (8 * I);
  return V;
}

} // namespace

std::vector<uint8_t> TraceRecorder::serialize() const {
  // Wire format: magic "ERTR", u32 thread count, then per thread:
  // u32 tid, u8 truncated-front flag, u64 byte length, raw packet bytes
  // (pending TNT bits flushed into the stream).
  std::vector<uint8_t> Out = {'E', 'R', 'T', 'R'};
  putU32(Out, static_cast<uint32_t>(Streams.size()));
  for (const auto &S : Streams) {
    putU32(Out, S.Tid);
    Out.push_back(S.TruncatedFront ? 1 : 0);
    std::vector<uint8_t> Bytes(S.Bytes.begin(), S.Bytes.end());
    if (S.PendingTntCount > 0) {
      uint8_t Byte = 1;
      Byte |= static_cast<uint8_t>(S.PendingTnt << 1);
      Byte |= static_cast<uint8_t>(1u << (S.PendingTntCount + 1));
      Bytes.push_back(Byte);
    }
    putU64(Out, Bytes.size());
    Out.insert(Out.end(), Bytes.begin(), Bytes.end());
  }
  return Out;
}

DecodedTrace TraceRecorder::deserialize(const std::vector<uint8_t> &Blob) {
  DecodedTrace D;
  if (Blob.size() < 8 || Blob[0] != 'E' || Blob[1] != 'R' ||
      Blob[2] != 'T' || Blob[3] != 'R')
    fatalError("malformed trace blob");
  size_t Pos = 4;
  uint32_t NumThreads = getU32(Blob, Pos);
  for (uint32_t T = 0; T < NumThreads; ++T) {
    uint32_t Tid = getU32(Blob, Pos);
    bool Truncated = Blob[Pos++] != 0;
    uint64_t Len = getU64(Blob, Pos);
    std::vector<uint8_t> Bytes(Blob.begin() + static_cast<long>(Pos),
                               Blob.begin() + static_cast<long>(Pos + Len));
    Pos += Len;
    D.Threads.push_back(decodeThreadBytes(Tid, Bytes, Truncated));
  }
  return D;
}

DecodedTrace TraceRecorder::decode() const {
  DecodedTrace D;
  for (const auto &S : Streams) {
    std::vector<uint8_t> Bytes(S.Bytes.begin(), S.Bytes.end());
    // Pending (unflushed) TNT bits are part of the logical stream; callers
    // normally call finish() first, but decode defensively includes them.
    if (S.PendingTntCount > 0) {
      uint8_t Byte = 1;
      Byte |= static_cast<uint8_t>(S.PendingTnt << 1);
      Byte |= static_cast<uint8_t>(1u << (S.PendingTntCount + 1));
      Bytes.push_back(Byte);
    }
    D.Threads.push_back(decodeThreadBytes(S.Tid, Bytes, S.TruncatedFront));
  }
  return D;
}
