//===- Builder.h - Instruction construction helper --------------*- C++ -*-===//
///
/// \file
/// Convenience builder for emitting IR into a basic block, used by the
/// MiniLang code generator, the instrumentation pass, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef ER_IR_BUILDER_H
#define ER_IR_BUILDER_H

#include "ir/IR.h"

namespace er {

/// Appends instructions to a current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *BB) { Block = BB; }
  BasicBlock *getInsertBlock() const { return Block; }
  Module &getModule() { return M; }

  //===--- Arithmetic / comparisons ---------------------------------------===
  Instruction *binary(Opcode Op, Value *A, Value *B);
  Instruction *compare(Opcode Op, Value *A, Value *B);
  Instruction *select(Value *Cond, Value *T, Value *F);
  Instruction *zext(Value *V, Type To);
  Instruction *sext(Value *V, Type To);
  Instruction *trunc(Value *V, Type To);
  /// Emits the cheapest correct cast from V's type to \p To (or returns V).
  Value *castTo(Value *V, Type To, bool Signed);

  //===--- Memory -----------------------------------------------------------
  Instruction *alloca_(Type ElemTy, uint64_t Count, std::string Name = "");
  Instruction *malloc_(Type ElemTy, Value *Count);
  Instruction *free_(Value *Ptr);
  Instruction *ptrAdd(Value *Ptr, Value *Delta);
  /// Loads one element of type \p AccessTy through \p Ptr.
  Instruction *load(Value *Ptr, Type AccessTy);
  Instruction *store(Value *Val, Value *Ptr);
  Instruction *globalAddr(GlobalVariable *G);

  //===--- Control flow -----------------------------------------------------
  Instruction *br(BasicBlock *Dest);
  Instruction *condBr(Value *Cond, BasicBlock *Then, BasicBlock *Else);
  Instruction *call(Function *Callee, const std::vector<Value *> &Args);
  Instruction *ret(Value *V = nullptr);

  //===--- Environment ------------------------------------------------------
  Instruction *inputArg(unsigned Index);
  Instruction *inputByte();
  Instruction *inputSize();
  Instruction *print(Value *V);
  Instruction *abort_(std::string Message);
  Instruction *spawn(Function *Callee, Value *ArgPtr);
  Instruction *join(Value *Tid);
  Instruction *mutexLock(uint64_t MutexId);
  Instruction *mutexUnlock(uint64_t MutexId);
  Instruction *ptwrite(Value *V);

private:
  Instruction *emit(Opcode Op, Type Ty,
                    const std::vector<Value *> &Operands = {});

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace er

#endif // ER_IR_BUILDER_H
