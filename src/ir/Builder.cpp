//===- Builder.cpp - Instruction construction helper ------------------------===//

#include "ir/Builder.h"

#include "support/Error.h"

#include <cassert>

using namespace er;

Instruction *IRBuilder::emit(Opcode Op, Type Ty,
                             const std::vector<Value *> &Operands) {
  assert(Block && "no insertion point set");
  auto I = std::make_unique<Instruction>(Op, Ty);
  for (Value *V : Operands) {
    assert(V && "null operand");
    I->addOperand(V);
  }
  return Block->append(std::move(I));
}

Instruction *IRBuilder::binary(Opcode Op, Value *A, Value *B) {
  assert(isBinaryOp(Op) && "not a binary opcode");
  assert(A->getType() == B->getType() && "binary operand type mismatch");
  return emit(Op, A->getType(), {A, B});
}

Instruction *IRBuilder::compare(Opcode Op, Value *A, Value *B) {
  assert(isCompareOp(Op) && "not a comparison opcode");
  return emit(Op, Type::makeInt(1), {A, B});
}

Instruction *IRBuilder::select(Value *Cond, Value *T, Value *F) {
  assert(T->getType() == F->getType() && "select arm type mismatch");
  return emit(Opcode::Select, T->getType(), {Cond, T, F});
}

Instruction *IRBuilder::zext(Value *V, Type To) {
  return emit(Opcode::ZExt, To, {V});
}
Instruction *IRBuilder::sext(Value *V, Type To) {
  return emit(Opcode::SExt, To, {V});
}
Instruction *IRBuilder::trunc(Value *V, Type To) {
  return emit(Opcode::Trunc, To, {V});
}

Value *IRBuilder::castTo(Value *V, Type To, bool Signed) {
  const Type &From = V->getType();
  if (From == To)
    return V;
  assert(From.isInt() && To.isInt() && "castTo handles integer types only");
  if (To.Bits > From.Bits)
    return Signed ? sext(V, To) : zext(V, To);
  return trunc(V, To);
}

Instruction *IRBuilder::alloca_(Type ElemTy, uint64_t Count,
                                std::string Name) {
  Instruction *I = emit(Opcode::Alloca, Type::makePtr());
  I->setAllocElemType(ElemTy);
  I->setImm(Count);
  I->setName(std::move(Name));
  return I;
}

Instruction *IRBuilder::malloc_(Type ElemTy, Value *Count) {
  Instruction *I = emit(Opcode::Malloc, Type::makePtr(), {Count});
  I->setAllocElemType(ElemTy);
  return I;
}

Instruction *IRBuilder::free_(Value *Ptr) {
  return emit(Opcode::Free, Type::makeVoid(), {Ptr});
}

Instruction *IRBuilder::ptrAdd(Value *Ptr, Value *Delta) {
  assert(Ptr->getType().isPtr() && "ptradd base must be a pointer");
  return emit(Opcode::PtrAdd, Ptr->getType(), {Ptr, Delta});
}

Instruction *IRBuilder::load(Value *Ptr, Type AccessTy) {
  assert(Ptr->getType().isPtr() && "load base must be a pointer");
  assert(!AccessTy.isVoid() && "load access type must be a value type");
  return emit(Opcode::Load, AccessTy, {Ptr});
}

Instruction *IRBuilder::store(Value *Val, Value *Ptr) {
  assert(Ptr->getType().isPtr() && "store base must be a pointer");
  return emit(Opcode::Store, Type::makeVoid(), {Val, Ptr});
}

Instruction *IRBuilder::globalAddr(GlobalVariable *G) {
  Instruction *I = emit(Opcode::GlobalAddr, G->getType());
  I->setGlobal(G);
  return I;
}

Instruction *IRBuilder::br(BasicBlock *Dest) {
  Instruction *I = emit(Opcode::Br, Type::makeVoid());
  I->setSuccessors(Dest);
  return I;
}

Instruction *IRBuilder::condBr(Value *Cond, BasicBlock *Then,
                               BasicBlock *Else) {
  assert(Cond->getType().isBool() && "condbr condition must be i1");
  Instruction *I = emit(Opcode::CondBr, Type::makeVoid(), {Cond});
  I->setSuccessors(Then, Else);
  return I;
}

Instruction *IRBuilder::call(Function *Callee,
                             const std::vector<Value *> &Args) {
  assert(Callee->getNumArgs() == Args.size() && "call arity mismatch");
  Instruction *I = emit(Opcode::Call, Callee->getReturnType(), Args);
  I->setCallee(Callee);
  return I;
}

Instruction *IRBuilder::ret(Value *V) {
  return V ? emit(Opcode::Ret, Type::makeVoid(), {V})
           : emit(Opcode::Ret, Type::makeVoid());
}

Instruction *IRBuilder::inputArg(unsigned Index) {
  Instruction *I = emit(Opcode::InputArg, Type::makeInt(64));
  I->setImm(Index);
  return I;
}

Instruction *IRBuilder::inputByte() {
  return emit(Opcode::InputByte, Type::makeInt(8));
}

Instruction *IRBuilder::inputSize() {
  return emit(Opcode::InputSize, Type::makeInt(64));
}

Instruction *IRBuilder::print(Value *V) {
  return emit(Opcode::Print, Type::makeVoid(), {V});
}

Instruction *IRBuilder::abort_(std::string Message) {
  Instruction *I = emit(Opcode::Abort, Type::makeVoid());
  I->setMessage(std::move(Message));
  return I;
}

Instruction *IRBuilder::spawn(Function *Callee, Value *ArgPtr) {
  Instruction *I = emit(Opcode::Spawn, Type::makeInt(64), {ArgPtr});
  I->setCallee(Callee);
  return I;
}

Instruction *IRBuilder::join(Value *Tid) {
  return emit(Opcode::Join, Type::makeVoid(), {Tid});
}

Instruction *IRBuilder::mutexLock(uint64_t MutexId) {
  Instruction *I = emit(Opcode::MutexLock, Type::makeVoid());
  I->setImm(MutexId);
  return I;
}

Instruction *IRBuilder::mutexUnlock(uint64_t MutexId) {
  Instruction *I = emit(Opcode::MutexUnlock, Type::makeVoid());
  I->setImm(MutexId);
  return I;
}

Instruction *IRBuilder::ptwrite(Value *V) {
  return emit(Opcode::PtWrite, Type::makeVoid(), {V});
}
