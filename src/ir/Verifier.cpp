//===- Verifier.cpp - IR structural checks ----------------------------------===//

#include "ir/IR.h"

#include "support/Format.h"

#include <unordered_set>

using namespace er;

namespace {

/// Runs all structural checks over a module, reporting the first failure.
class Verifier {
public:
  explicit Verifier(const Module &M) : M(M) {}

  bool run(std::string *Err) {
    for (const auto &F : M.functions())
      if (!verifyFunction(*F)) {
        if (Err)
          *Err = Error;
        return false;
      }
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = Msg;
    return false;
  }

  bool verifyFunction(const Function &F);
  bool verifyInstruction(const Function &F, const Instruction &I,
                         const std::unordered_set<const Value *> &DefinedHere);

  const Module &M;
  std::string Error;
};

bool Verifier::verifyFunction(const Function &F) {
  if (F.blocks().empty())
    return fail("function '" + F.getName() + "' has no blocks");
  for (const auto &BB : F.blocks()) {
    if (BB->empty())
      return fail("empty block '" + BB->getName() + "' in '" + F.getName() +
                  "'");
    if (!BB->getTerminator())
      return fail("block '" + BB->getName() + "' in '" + F.getName() +
                  "' lacks a terminator");
    // Results of instructions must not be used outside their block (the IR
    // has no phis; the frontend routes cross-block values through allocas).
    std::unordered_set<const Value *> DefinedHere;
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->getInst(Idx);
      if (I->isTerminatorInst() && Idx + 1 != BB->size())
        return fail("terminator mid-block in '" + BB->getName() + "' of '" +
                    F.getName() + "'");
      if (!verifyInstruction(F, *I, DefinedHere))
        return false;
      DefinedHere.insert(I);
    }
  }
  return true;
}

bool Verifier::verifyInstruction(
    const Function &F, const Instruction &I,
    const std::unordered_set<const Value *> &DefinedHere) {
  auto Where = [&] {
    return formatString(" (in %s, block %s, %s)", F.getName().c_str(),
                        I.getParent()->getName().c_str(),
                        opcodeName(I.getOpcode()));
  };

  // Operand scoping. Allocas are exempt from the same-block rule: they are
  // hoisted to the entry block and act as function-level storage
  // declarations, executed exactly once per call before any use.
  for (const Value *Op : I.operands()) {
    if (const auto *OpI = dyn_cast<Instruction>(Op)) {
      if (OpI->getParent()->getParent() != &F)
        return fail("operand from another function" + Where());
      if (OpI->getOpcode() != Opcode::Alloca && !DefinedHere.count(OpI))
        return fail("instruction result used outside its block or before "
                    "definition" +
                    Where());
    } else if (const auto *A = dyn_cast<Argument>(Op)) {
      if (A->getParent() != &F)
        return fail("argument of another function used" + Where());
    }
  }

  Opcode Op = I.getOpcode();
  auto OperandTy = [&](unsigned Idx) { return I.getOperand(Idx)->getType(); };

  if (isBinaryOp(Op)) {
    if (I.getNumOperands() != 2 || OperandTy(0) != OperandTy(1) ||
        OperandTy(0) != I.getType() || !I.getType().isInt())
      return fail("malformed binary op" + Where());
    return true;
  }
  if (isCompareOp(Op)) {
    if (I.getNumOperands() != 2 || OperandTy(0) != OperandTy(1) ||
        !I.getType().isBool())
      return fail("malformed comparison" + Where());
    return true;
  }

  switch (Op) {
  case Opcode::Select:
    if (I.getNumOperands() != 3 || !OperandTy(0).isBool() ||
        OperandTy(1) != OperandTy(2) || I.getType() != OperandTy(1))
      return fail("malformed select" + Where());
    break;
  case Opcode::ZExt:
  case Opcode::SExt:
    if (I.getNumOperands() != 1 || !OperandTy(0).isInt() ||
        !I.getType().isInt() || I.getType().Bits < OperandTy(0).Bits)
      return fail("malformed extension" + Where());
    break;
  case Opcode::Trunc:
    if (I.getNumOperands() != 1 || !OperandTy(0).isInt() ||
        !I.getType().isInt() || I.getType().Bits > OperandTy(0).Bits)
      return fail("malformed truncation" + Where());
    break;
  case Opcode::Alloca:
    if (!I.getType().isPtr() || I.getAllocCount() == 0 ||
        I.getAllocElemType().isVoid())
      return fail("malformed alloca" + Where());
    break;
  case Opcode::Malloc:
    if (I.getNumOperands() != 1 || !OperandTy(0).isInt() ||
        OperandTy(0).Bits != 64 || !I.getType().isPtr())
      return fail("malformed malloc" + Where());
    break;
  case Opcode::Free:
    if (I.getNumOperands() != 1 || !OperandTy(0).isPtr())
      return fail("malformed free" + Where());
    break;
  case Opcode::PtrAdd:
    if (I.getNumOperands() != 2 || !OperandTy(0).isPtr() ||
        !OperandTy(1).isInt() || OperandTy(1).Bits != 64 ||
        I.getType() != OperandTy(0))
      return fail("malformed ptradd" + Where());
    break;
  case Opcode::Load:
    if (I.getNumOperands() != 1 || !OperandTy(0).isPtr() ||
        I.getType().isVoid())
      return fail("malformed load" + Where());
    break;
  case Opcode::Store:
    if (I.getNumOperands() != 2 || !OperandTy(1).isPtr() ||
        OperandTy(0).isVoid())
      return fail("malformed store" + Where());
    break;
  case Opcode::GlobalAddr:
    if (!I.getGlobal() || I.getType() != I.getGlobal()->getType())
      return fail("malformed globaladdr" + Where());
    break;
  case Opcode::Br:
    if (I.getNumSuccessors() != 1)
      return fail("br needs one successor" + Where());
    break;
  case Opcode::CondBr:
    if (I.getNumOperands() != 1 || !OperandTy(0).isBool() ||
        I.getNumSuccessors() != 2)
      return fail("malformed condbr" + Where());
    break;
  case Opcode::Call: {
    const Function *Callee = I.getCallee();
    if (!Callee || Callee->getNumArgs() != I.getNumOperands())
      return fail("malformed call" + Where());
    for (unsigned A = 0; A < I.getNumOperands(); ++A)
      if (OperandTy(A) != Callee->getArg(A)->getType())
        return fail("call argument type mismatch" + Where());
    if (I.getType() != Callee->getReturnType())
      return fail("call result type mismatch" + Where());
    break;
  }
  case Opcode::Ret: {
    const Type &RetTy = F.getReturnType();
    if (RetTy.isVoid()) {
      if (I.getNumOperands() != 0)
        return fail("void function returns a value" + Where());
    } else if (I.getNumOperands() != 1 || OperandTy(0) != RetTy) {
      return fail("return type mismatch" + Where());
    }
    break;
  }
  case Opcode::Spawn:
    if (!I.getCallee() || I.getNumOperands() != 1 || !OperandTy(0).isPtr() ||
        I.getCallee()->getNumArgs() != 1 ||
        !I.getCallee()->getArg(0)->getType().isPtr())
      return fail("malformed spawn (thread entry takes one pointer)" +
                  Where());
    break;
  case Opcode::Join:
    if (I.getNumOperands() != 1 || !OperandTy(0).isInt())
      return fail("malformed join" + Where());
    break;
  case Opcode::InputArg:
  case Opcode::InputByte:
  case Opcode::InputSize:
  case Opcode::MutexLock:
  case Opcode::MutexUnlock:
  case Opcode::Abort:
    if (I.getNumOperands() != 0)
      return fail("nullary opcode given operands" + Where());
    break;
  case Opcode::Print:
  case Opcode::PtWrite:
    if (I.getNumOperands() != 1)
      return fail("unary opcode arity" + Where());
    break;
  default:
    break;
  }
  return true;
}

} // namespace

bool er::verifyModule(const Module &M, std::string *Err) {
  return Verifier(M).run(Err);
}
