//===- IR.cpp - IR core implementation -------------------------------------===//

#include "ir/IR.h"

#include "solver/Expr.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace er;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "i" + std::to_string(Bits);
  case TypeKind::Ptr:
    return "ptr";
  }
  fatalError("unknown type kind");
}

int64_t ConstantInt::getSignedValue() const {
  return signExtend(Val, getType().Bits);
}

//===----------------------------------------------------------------------===//
// Opcode predicates
//===----------------------------------------------------------------------===//

const char *er::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:         return "add";
  case Opcode::Sub:         return "sub";
  case Opcode::Mul:         return "mul";
  case Opcode::UDiv:        return "udiv";
  case Opcode::SDiv:        return "sdiv";
  case Opcode::URem:        return "urem";
  case Opcode::SRem:        return "srem";
  case Opcode::And:         return "and";
  case Opcode::Or:          return "or";
  case Opcode::Xor:         return "xor";
  case Opcode::Shl:         return "shl";
  case Opcode::LShr:        return "lshr";
  case Opcode::AShr:        return "ashr";
  case Opcode::Eq:          return "eq";
  case Opcode::Ne:          return "ne";
  case Opcode::Ult:         return "ult";
  case Opcode::Ule:         return "ule";
  case Opcode::Ugt:         return "ugt";
  case Opcode::Uge:         return "uge";
  case Opcode::Slt:         return "slt";
  case Opcode::Sle:         return "sle";
  case Opcode::Sgt:         return "sgt";
  case Opcode::Sge:         return "sge";
  case Opcode::Select:      return "select";
  case Opcode::ZExt:        return "zext";
  case Opcode::SExt:        return "sext";
  case Opcode::Trunc:       return "trunc";
  case Opcode::Alloca:      return "alloca";
  case Opcode::Malloc:      return "malloc";
  case Opcode::Free:        return "free";
  case Opcode::PtrAdd:      return "ptradd";
  case Opcode::Load:        return "load";
  case Opcode::Store:       return "store";
  case Opcode::GlobalAddr:  return "globaladdr";
  case Opcode::Br:          return "br";
  case Opcode::CondBr:      return "condbr";
  case Opcode::Call:        return "call";
  case Opcode::Ret:         return "ret";
  case Opcode::InputArg:    return "input.arg";
  case Opcode::InputByte:   return "input.byte";
  case Opcode::InputSize:   return "input.size";
  case Opcode::Print:       return "print";
  case Opcode::Abort:       return "abort";
  case Opcode::Spawn:       return "spawn";
  case Opcode::Join:        return "join";
  case Opcode::MutexLock:   return "mutex.lock";
  case Opcode::MutexUnlock: return "mutex.unlock";
  case Opcode::PtWrite:     return "ptwrite";
  }
  fatalError("unknown opcode");
}

bool er::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret ||
         Op == Opcode::Abort;
}

bool er::isBinaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    return true;
  default:
    return false;
  }
}

bool er::isCompareOp(Opcode Op) {
  switch (Op) {
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Ult:
  case Opcode::Ule:
  case Opcode::Ugt:
  case Opcode::Uge:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::Sgt:
  case Opcode::Sge:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// BasicBlock / Function / Module
//===----------------------------------------------------------------------===//

Instruction *BasicBlock::insertAfter(Instruction *After,
                                     std::unique_ptr<Instruction> I) {
  I->setParent(this);
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
    if (Insts[Idx].get() == After) {
      Insts.insert(Insts.begin() + static_cast<long>(Idx) + 1, std::move(I));
      return Insts[Idx + 1].get();
    }
  }
  fatalError("insertAfter: anchor instruction not in block");
}

void BasicBlock::removeInst(Instruction *I) {
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
    if (Insts[Idx].get() == I) {
      Insts.erase(Insts.begin() + static_cast<long>(Idx));
      return;
    }
  }
  fatalError("removeInst: instruction not in block");
}

Function::Function(std::string Name, Type RetTy, std::vector<Type> ArgTys,
                   Module *Parent)
    : Value(Kind::Function, Type::makeVoid()), ParentM(Parent), RetTy(RetTy) {
  setName(std::move(Name));
  for (unsigned I = 0; I < ArgTys.size(); ++I)
    Args.push_back(std::make_unique<Argument>(ArgTys[I], I, this));
}

BasicBlock *Function::createBlock(std::string Name) {
  Blocks.push_back(std::make_unique<BasicBlock>(std::move(Name), this));
  return Blocks.back().get();
}

unsigned Function::renumber() {
  unsigned Id = 0;
  for (auto &BB : Blocks)
    for (auto &I : BB->instructions())
      I->LocalId = Id++;
  NumInsts = Id;
  return Id;
}

Function *Module::createFunction(std::string Name, Type RetTy,
                                 std::vector<Type> ArgTys) {
  Funcs.push_back(std::make_unique<Function>(std::move(Name), RetTy,
                                             std::move(ArgTys), this));
  return Funcs.back().get();
}

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

GlobalVariable *Module::createGlobal(std::string Name, Type ElemTy,
                                     uint64_t NumElems,
                                     std::vector<uint64_t> Init) {
  Globals.push_back(std::make_unique<GlobalVariable>(
      std::move(Name), ElemTy, NumElems, std::move(Init),
      static_cast<unsigned>(Globals.size())));
  return Globals.back().get();
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->getName() == Name)
      return G.get();
  return nullptr;
}

ConstantInt *Module::getConstant(Type Ty, uint64_t Value) {
  assert(Ty.isInt() && "integer constant requires an integer type");
  Value = maskToWidth(Value, Ty.Bits);
  for (const auto &C : IntConstants)
    if (C->getType() == Ty && C->getValue() == Value)
      return C.get();
  IntConstants.push_back(std::make_unique<ConstantInt>(Ty, Value));
  return IntConstants.back().get();
}

ConstantNull *Module::getNull(Type PtrTy) {
  assert(PtrTy.isPtr() && "null constant requires a pointer type");
  for (const auto &C : NullConstants)
    if (C->getType() == PtrTy)
      return C.get();
  NullConstants.push_back(std::make_unique<ConstantNull>(PtrTy));
  return NullConstants.back().get();
}

unsigned Module::getStaticInstructionCount() const {
  unsigned N = 0;
  for (const auto &F : Funcs)
    for (const auto &BB : F->blocks())
      N += static_cast<unsigned>(BB->size());
  return N;
}

unsigned Module::finalize() {
  // First pass: keep already-assigned ids (sticky across instrumentation).
  unsigned MaxId = 0;
  for (auto &F : Funcs) {
    F->renumber();
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        if (I->hasGlobalId())
          MaxId = std::max(MaxId, I->GlobalId + 1);
  }
  // Second pass: give new instructions fresh ids after all existing ones.
  unsigned Next = MaxId;
  for (auto &F : Funcs)
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        if (!I->hasGlobalId())
          I->GlobalId = Next++;
  InstById.assign(Next, nullptr);
  for (auto &F : Funcs)
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        InstById[I->GlobalId] = I.get();
  return Next;
}
