//===- Printer.cpp - Textual IR output ---------------------------------------===//

#include "ir/IR.h"

#include "support/Format.h"

#include <unordered_map>

using namespace er;

namespace {

/// Assigns %N names to instruction results within one function and renders
/// operands.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {
    unsigned N = 0;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (!I->getType().isVoid())
          ValueNames[I.get()] = "%" + std::to_string(N++);
  }

  std::string print() {
    std::string Out;
    Out += "func " + F.getName() + "(";
    for (unsigned I = 0; I < F.getNumArgs(); ++I) {
      if (I)
        Out += ", ";
      Out += operandStr(F.getArg(I)) + ": " + F.getArg(I)->getType().str();
    }
    Out += ") -> " + F.getReturnType().str() + " {\n";
    for (const auto &BB : F.blocks()) {
      Out += BB->getName() + ":\n";
      for (const auto &I : BB->instructions())
        Out += "  " + instStr(*I) + "\n";
    }
    Out += "}\n";
    return Out;
  }

private:
  std::string operandStr(const Value *V) {
    if (const auto *C = dyn_cast<ConstantInt>(V))
      return formatString("%llu:%s",
                          static_cast<unsigned long long>(C->getValue()),
                          C->getType().str().c_str());
    if (isa<ConstantNull>(V))
      return "null";
    if (const auto *A = dyn_cast<Argument>(V))
      return "$" + (A->getName().empty() ? std::to_string(A->getArgNo())
                                         : A->getName());
    if (const auto *G = dyn_cast<GlobalVariable>(V))
      return "@" + G->getName();
    if (const auto *Fn = dyn_cast<Function>(V))
      return Fn->getName();
    auto It = ValueNames.find(V);
    return It != ValueNames.end() ? It->second : "<?>";
  }

  std::string instStr(const Instruction &I) {
    std::string S;
    if (!I.getType().isVoid())
      S += operandStr(&I) + " = ";
    S += opcodeName(I.getOpcode());
    switch (I.getOpcode()) {
    case Opcode::Alloca:
      S += formatString(" %s x %llu", I.getAllocElemType().str().c_str(),
                        static_cast<unsigned long long>(I.getAllocCount()));
      break;
    case Opcode::Malloc:
      S += " " + I.getAllocElemType().str();
      break;
    case Opcode::GlobalAddr:
      S += " @" + I.getGlobal()->getName();
      break;
    case Opcode::Call:
    case Opcode::Spawn:
      S += " " + I.getCallee()->getName();
      break;
    case Opcode::InputArg:
    case Opcode::MutexLock:
    case Opcode::MutexUnlock:
      S += formatString(" #%llu", static_cast<unsigned long long>(I.getImm()));
      break;
    case Opcode::Abort:
      S += " \"" + I.getMessage() + "\"";
      break;
    default:
      break;
    }
    for (unsigned OpIdx = 0; OpIdx < I.getNumOperands(); ++OpIdx)
      S += (OpIdx ? ", " : " ") + operandStr(I.getOperand(OpIdx));
    if (I.getOpcode() == Opcode::Br)
      S += " " + I.getSuccessor(0)->getName();
    else if (I.getOpcode() == Opcode::CondBr)
      S += ", " + I.getSuccessor(0)->getName() + ", " +
           I.getSuccessor(1)->getName();
    return S;
  }

  const Function &F;
  std::unordered_map<const Value *, std::string> ValueNames;
};

} // namespace

std::string er::printFunction(const Function &F) {
  return FunctionPrinter(F).print();
}

std::string er::printModule(const Module &M) {
  std::string Out;
  for (const auto &G : M.globals())
    Out += formatString("global @%s: %s x %llu\n", G->getName().c_str(),
                        G->getElemType().str().c_str(),
                        static_cast<unsigned long long>(G->getNumElems()));
  if (!M.globals().empty())
    Out += "\n";
  for (const auto &F : M.functions())
    Out += printFunction(*F) + "\n";
  return Out;
}
