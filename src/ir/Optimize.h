//===- Optimize.h - IR optimization passes -----------------------*- C++ -*-===//
///
/// \file
/// A small optimization pipeline over the register IR: constant folding,
/// branch simplification (constant conditions become unconditional
/// branches), and dead-code elimination of side-effect-free instructions.
///
/// Production builds in the paper are optimized (Section 4 discusses the
/// trace-mapping problems clang's optimizations create); this pass lets the
/// test suite check that reconstruction works on optimized modules and that
/// sticky instruction ids keep failure identities stable across -O levels
/// of the *same* deployment.
///
//===----------------------------------------------------------------------===//

#ifndef ER_IR_OPTIMIZE_H
#define ER_IR_OPTIMIZE_H

#include "ir/IR.h"

namespace er {

/// Statistics from one optimization run.
struct OptStats {
  unsigned ConstantsFolded = 0;
  unsigned BranchesSimplified = 0;
  unsigned DeadInstrsRemoved = 0;
  unsigned total() const {
    return ConstantsFolded + BranchesSimplified + DeadInstrsRemoved;
  }
};

/// Runs the pipeline to a fixed point. The module is re-finalized (ids are
/// sticky: surviving instructions keep theirs). Returns what changed.
OptStats optimizeModule(Module &M);

} // namespace er

#endif // ER_IR_OPTIMIZE_H
