//===- Optimize.cpp - IR optimization passes ----------------------------------===//

#include "ir/Optimize.h"

#include "solver/Expr.h" // maskToWidth / signExtend.

#include <unordered_map>

using namespace er;

namespace {

/// Folds a binary/compare opcode over constants. Returns false when the
/// operation must not be folded (division by zero traps at runtime and the
/// trap must be preserved).
bool foldBinaryConstant(Opcode Op, uint64_t A, uint64_t B, unsigned Width,
                        uint64_t &Out) {
  int64_t SA = signExtend(A, Width), SB = signExtend(B, Width);
  switch (Op) {
  case Opcode::Add:  Out = A + B; break;
  case Opcode::Sub:  Out = A - B; break;
  case Opcode::Mul:  Out = A * B; break;
  case Opcode::And:  Out = A & B; break;
  case Opcode::Or:   Out = A | B; break;
  case Opcode::Xor:  Out = A ^ B; break;
  case Opcode::Shl:  Out = B >= Width ? 0 : A << B; break;
  case Opcode::LShr: Out = B >= Width ? 0 : A >> B; break;
  case Opcode::AShr:
    Out = static_cast<uint64_t>(B >= Width ? (SA < 0 ? -1 : 0) : (SA >> B));
    break;
  case Opcode::UDiv:
    if (B == 0)
      return false; // Keep the runtime trap.
    Out = A / B;
    break;
  case Opcode::URem:
    if (B == 0)
      return false;
    Out = A % B;
    break;
  case Opcode::SDiv:
    if (SB == 0)
      return false;
    Out = SB == -1 ? static_cast<uint64_t>(-SA)
                   : static_cast<uint64_t>(SA / SB);
    break;
  case Opcode::SRem:
    if (SB == 0)
      return false;
    Out = SB == -1 ? 0 : static_cast<uint64_t>(SA % SB);
    break;
  case Opcode::Eq:  Out = A == B; break;
  case Opcode::Ne:  Out = A != B; break;
  case Opcode::Ult: Out = A < B; break;
  case Opcode::Ule: Out = A <= B; break;
  case Opcode::Ugt: Out = A > B; break;
  case Opcode::Uge: Out = A >= B; break;
  case Opcode::Slt: Out = SA < SB; break;
  case Opcode::Sle: Out = SA <= SB; break;
  case Opcode::Sgt: Out = SA > SB; break;
  case Opcode::Sge: Out = SA >= SB; break;
  default:
    return false;
  }
  Out = maskToWidth(Out, Width);
  return true;
}

/// Replaces all uses of \p From with \p To within \p F.
void replaceUses(Function &F, Value *From, Value *To) {
  for (auto &BB : F.blocks())
    for (auto &I : BB->instructions())
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx)
        if (I->getOperand(OpIdx) == From)
          I->setOperand(OpIdx, To);
}

/// True when removing an unused instruction of this opcode is observably
/// equivalent (no side effects, no traps).
bool isRemovableWhenUnused(const Instruction &I) {
  if (isBinaryOp(I.getOpcode())) {
    // Division can trap on a zero divisor; only remove when the divisor is
    // a non-zero constant (folding handles that case anyway).
    switch (I.getOpcode()) {
    case Opcode::UDiv:
    case Opcode::SDiv:
    case Opcode::URem:
    case Opcode::SRem:
      if (const auto *C = dyn_cast<ConstantInt>(I.getOperand(1)))
        return C->getValue() != 0;
      return false;
    default:
      return true;
    }
  }
  if (isCompareOp(I.getOpcode()))
    return true;
  switch (I.getOpcode()) {
  case Opcode::Select:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::PtrAdd:
  case Opcode::GlobalAddr:
  case Opcode::Alloca:
    return true;
  default:
    return false; // Loads can trap; everything else has effects.
  }
}

bool runOnce(Module &M, OptStats &Stats) {
  bool Changed = false;

  for (auto &F : M.functions()) {
    // Use counts within the function (operands never cross functions).
    std::unordered_map<const Value *, unsigned> Uses;
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        for (const Value *Op : I->operands())
          ++Uses[Op];

    for (auto &BB : F->blocks()) {
      // Collect first (removal invalidates iteration).
      std::vector<Instruction *> Pending;
      for (auto &I : BB->instructions())
        Pending.push_back(I.get());

      for (Instruction *I : Pending) {
        Opcode Op = I->getOpcode();

        // Constant folding.
        if ((isBinaryOp(Op) || isCompareOp(Op)) &&
            isa<ConstantInt>(I->getOperand(0)) &&
            isa<ConstantInt>(I->getOperand(1))) {
          uint64_t A = cast<ConstantInt>(I->getOperand(0))->getValue();
          uint64_t B = cast<ConstantInt>(I->getOperand(1))->getValue();
          unsigned W = I->getOperand(0)->getType().Bits;
          uint64_t Out;
          if (foldBinaryConstant(Op, A, B, W, Out)) {
            replaceUses(*F, I, M.getConstant(I->getType(), Out));
            BB->removeInst(I);
            ++Stats.ConstantsFolded;
            Changed = true;
            continue;
          }
        }
        if ((Op == Opcode::ZExt || Op == Opcode::SExt ||
             Op == Opcode::Trunc) &&
            isa<ConstantInt>(I->getOperand(0))) {
          const auto *C = cast<ConstantInt>(I->getOperand(0));
          uint64_t V = Op == Opcode::SExt
                           ? static_cast<uint64_t>(C->getSignedValue())
                           : C->getValue();
          replaceUses(*F, I, M.getConstant(I->getType(), V));
          BB->removeInst(I);
          ++Stats.ConstantsFolded;
          Changed = true;
          continue;
        }
        if (Op == Opcode::Select && isa<ConstantInt>(I->getOperand(0))) {
          bool Taken = cast<ConstantInt>(I->getOperand(0))->getValue() != 0;
          replaceUses(*F, I, I->getOperand(Taken ? 1 : 2));
          BB->removeInst(I);
          ++Stats.ConstantsFolded;
          Changed = true;
          continue;
        }

        // Branch simplification.
        if (Op == Opcode::CondBr && isa<ConstantInt>(I->getOperand(0))) {
          bool Taken = cast<ConstantInt>(I->getOperand(0))->getValue() != 0;
          BasicBlock *Dest = I->getSuccessor(Taken ? 0 : 1);
          auto Br = std::make_unique<Instruction>(Opcode::Br,
                                                  Type::makeVoid());
          Br->setSuccessors(Dest);
          BB->removeInst(I);
          BB->append(std::move(Br));
          ++Stats.BranchesSimplified;
          Changed = true;
          continue;
        }

        // Dead code elimination.
        if (!I->getType().isVoid() && Uses[I] == 0 &&
            isRemovableWhenUnused(*I)) {
          BB->removeInst(I);
          ++Stats.DeadInstrsRemoved;
          Changed = true;
        }
      }
    }
  }
  return Changed;
}

} // namespace

OptStats er::optimizeModule(Module &M) {
  OptStats Stats;
  while (runOnce(M, Stats)) {
  }
  M.finalize();
  return Stats;
}
