//===- IR.h - Typed register IR for the ER substrate ------------*- C++ -*-===//
///
/// \file
/// The intermediate representation executed by the concrete VM and the
/// shepherded symbolic executor. It is a small LLVM-flavoured register IR:
///
///  - Values are integers of 1..64 bits or typed pointers.
///  - Memory is object-granular: every alloca/global/malloc names an object
///    of N elements of a fixed element type; pointers are (object, element
///    offset) pairs packed into 64 bits at runtime. There is no flat address
///    space, which gives the VM precise bounds/UAF detection and gives the
///    symbolic executor the per-object Read/Write array theory the paper's
///    key-data-value selection operates on.
///  - There are no phis: instruction results never cross basic-block
///    boundaries (the frontend spills mutable locals to allocas, as at -O0).
///  - Input, threading, tracing (ptwrite), and failure are IR opcodes, which
///    stand in for the syscall/pthread/Intel-PT surface of a real system.
///
//===----------------------------------------------------------------------===//

#ifndef ER_IR_IR_H
#define ER_IR_IR_H

#include "ir/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace er {

class BasicBlock;
class Function;
class Module;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

enum class TypeKind : uint8_t { Void, Int, Ptr };

/// A value type: void, iN, or an opaque pointer (modern-LLVM style: the
/// pointee type lives on the memory-access instructions, not the pointer).
/// Types are plain values; compare with ==.
struct Type {
  TypeKind Kind = TypeKind::Void;
  uint8_t Bits = 0; ///< Int: width. Ptr: always 64.

  static Type makeVoid() { return Type(); }
  static Type makeInt(unsigned Bits) {
    Type T;
    T.Kind = TypeKind::Int;
    T.Bits = static_cast<uint8_t>(Bits);
    return T;
  }
  static Type makePtr() {
    Type T;
    T.Kind = TypeKind::Ptr;
    T.Bits = 64;
    return T;
  }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isPtr() const { return Kind == TypeKind::Ptr; }
  bool isBool() const { return isInt() && Bits == 1; }

  bool operator==(const Type &O) const {
    return Kind == O.Kind && Bits == O.Bits;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Pointer packing
//===----------------------------------------------------------------------===//

/// Runtime pointers pack an object id and an element offset into a uint64:
/// high 24 bits hold (object id + 1), low 40 bits the offset. Object id 0 in
/// the packed form (i.e. the whole word zero) is the null pointer.
struct PackedPtr {
  static constexpr unsigned OffsetBits = 40;
  static constexpr uint64_t OffsetMask = (1ULL << OffsetBits) - 1;

  static uint64_t make(uint32_t ObjectId, uint64_t Offset) {
    return (static_cast<uint64_t>(ObjectId + 1) << OffsetBits) |
           (Offset & OffsetMask);
  }
  static bool isNull(uint64_t P) { return (P >> OffsetBits) == 0; }
  static uint32_t objectId(uint64_t P) {
    return static_cast<uint32_t>(P >> OffsetBits) - 1;
  }
  static uint64_t offset(uint64_t P) { return P & OffsetMask; }
};

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

/// Root of the value hierarchy (LLVM-style, with hand-rolled RTTI).
class Value {
public:
  enum class Kind : uint8_t {
    Argument,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    Function,
    Instruction,
  };

  Kind getKind() const { return K; }
  const Type &getType() const { return Ty; }
  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  virtual ~Value() = default;
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

protected:
  Value(Kind K, Type Ty) : K(K), Ty(Ty) {}

private:
  Kind K;
  Type Ty;
  std::string Name;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type Ty, unsigned ArgNo, Function *Parent)
      : Value(Kind::Argument, Ty), ArgNo(ArgNo), Parent(Parent) {}
  unsigned getArgNo() const { return ArgNo; }
  Function *getParent() const { return Parent; }
  static bool classof(const Value *V) {
    return V->getKind() == Kind::Argument;
  }

private:
  unsigned ArgNo;
  Function *Parent;
};

/// An integer constant (interned per Module).
class ConstantInt : public Value {
public:
  ConstantInt(Type Ty, uint64_t Val) : Value(Kind::ConstantInt, Ty), Val(Val) {}
  uint64_t getValue() const { return Val; }
  int64_t getSignedValue() const;
  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantInt;
  }

private:
  uint64_t Val;
};

/// The null pointer constant for a given pointer type.
class ConstantNull : public Value {
public:
  explicit ConstantNull(Type Ty) : Value(Kind::ConstantNull, Ty) {}
  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantNull;
  }
};

/// A module-level array of elements with optional concrete initialiser
/// (zero-initialised by default). Its value is a pointer to element 0.
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, Type ElemTy, uint64_t NumElems,
                 std::vector<uint64_t> Init, unsigned Id)
      : Value(Kind::GlobalVariable, Type::makePtr()), ElemTy(ElemTy),
        NumElems(NumElems), Init(std::move(Init)), Id(Id) {
    setName(std::move(Name));
  }
  const Type &getElemType() const { return ElemTy; }
  uint64_t getNumElems() const { return NumElems; }
  const std::vector<uint64_t> &getInit() const { return Init; }
  unsigned getId() const { return Id; }
  static bool classof(const Value *V) {
    return V->getKind() == Kind::GlobalVariable;
  }

private:
  Type ElemTy;
  uint64_t NumElems;
  std::vector<uint64_t> Init;
  unsigned Id;
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

enum class Opcode : uint8_t {
  // Binary arithmetic / bitwise (operands and result share a width).
  Add, Sub, Mul, UDiv, SDiv, URem, SRem, And, Or, Xor, Shl, LShr, AShr,
  // Comparisons (result i1).
  Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge,
  // Data movement.
  Select,       ///< (i1 cond, a, b) -> a or b.
  ZExt, SExt, Trunc,
  // Memory.
  Alloca,       ///< Stack object; element type/count from the instruction.
  Malloc,       ///< (i64 count) -> ptr; heap object.
  Free,         ///< (ptr) frees a heap object.
  PtrAdd,       ///< (ptr, i64 delta) -> ptr advanced by delta elements.
  Load,         ///< (ptr) -> value; the access type is the result type.
  Store,        ///< (value, ptr).
  GlobalAddr,   ///< () -> ptr to a module global.
  // Control flow.
  Br,           ///< Unconditional branch.
  CondBr,       ///< (i1 cond); successors then/else.
  Call,         ///< Direct call; result type from callee.
  Ret,          ///< Optional operand.
  // Environment (the program's "syscall" surface).
  InputArg,     ///< () -> i64; input argument #Imm.
  InputByte,    ///< () -> i8; next byte of the input stream.
  InputSize,    ///< () -> i64; total bytes in the input stream.
  Print,        ///< (value); writes to program output.
  // Failure.
  Abort,        ///< Terminates with a failure; message in Msg.
  // Threading.
  Spawn,        ///< (ptr arg) -> i64 tid; callee in CalleeF.
  Join,         ///< (i64 tid).
  MutexLock,    ///< () on mutex #Imm.
  MutexUnlock,  ///< () on mutex #Imm.
  // Tracing (inserted by ER's instrumentation pass).
  PtWrite,      ///< (value) -> void; records the operand into the PT trace.
};

const char *opcodeName(Opcode Op);
bool isTerminator(Opcode Op);
bool isBinaryOp(Opcode Op);
bool isCompareOp(Opcode Op);

/// One IR instruction. Operands reference Values; control-flow successors
/// are stored separately.
class Instruction : public Value {
public:
  Instruction(Opcode Op, Type Ty) : Value(Kind::Instruction, Ty), Op(Op) {}

  Opcode getOpcode() const { return Op; }
  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned I) const { return Operands[I]; }
  void addOperand(Value *V) { Operands.push_back(V); }
  void setOperand(unsigned I, Value *V) { Operands[I] = V; }
  const std::vector<Value *> &operands() const { return Operands; }

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  BasicBlock *getSuccessor(unsigned I) const { return Succs[I]; }
  void setSuccessors(BasicBlock *S0, BasicBlock *S1 = nullptr) {
    Succs[0] = S0;
    Succs[1] = S1;
  }
  unsigned getNumSuccessors() const {
    return Succs[1] ? 2 : (Succs[0] ? 1 : 0);
  }

  Function *getCallee() const { return CalleeF; }
  void setCallee(Function *F) { CalleeF = F; }

  GlobalVariable *getGlobal() const { return GlobalV; }
  void setGlobal(GlobalVariable *G) { GlobalV = G; }

  uint64_t getImm() const { return Imm; }
  void setImm(uint64_t V) { Imm = V; }

  const std::string &getMessage() const { return Msg; }
  void setMessage(std::string M) { Msg = std::move(M); }

  /// For Alloca/Malloc: element type of the created object.
  Type getAllocElemType() const { return AllocTy; }
  void setAllocElemType(Type T) { AllocTy = T; }
  /// For Alloca: static element count (in Imm).
  uint64_t getAllocCount() const { return Imm; }

  /// Function-local dense id (assigned by Function::renumber).
  unsigned getLocalId() const { return LocalId; }
  /// Module-wide id (assigned by Module::finalize). Ids are *sticky*:
  /// re-finalizing after instrumentation gives fresh ids to new
  /// instructions but never renumbers existing ones, so trace events and
  /// failure identities stay stable across redeployments.
  unsigned getGlobalId() const { return GlobalId; }
  bool hasGlobalId() const { return GlobalId != ~0u; }

  bool isTerminatorInst() const { return isTerminator(Op); }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Instruction;
  }

private:
  friend class Function;
  friend class Module;
  Opcode Op;
  std::vector<Value *> Operands;
  BasicBlock *Succs[2] = {nullptr, nullptr};
  BasicBlock *Parent = nullptr;
  Function *CalleeF = nullptr;
  GlobalVariable *GlobalV = nullptr;
  uint64_t Imm = 0;
  Type AllocTy; ///< Alloca/Malloc element type.
  std::string Msg;
  unsigned LocalId = 0;
  unsigned GlobalId = ~0u;
};

//===----------------------------------------------------------------------===//
// Basic blocks and functions
//===----------------------------------------------------------------------===//

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  Function *getParent() const { return Parent; }

  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Inserts \p I immediately after \p After (which must live in this
  /// block). Used by the ptwrite instrumentation pass.
  Instruction *insertAfter(Instruction *After, std::unique_ptr<Instruction> I);

  /// Removes (and destroys) \p I from this block. Used by the optimizer;
  /// the caller is responsible for use-replacement first.
  void removeInst(Instruction *I);

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }
  bool empty() const { return Insts.empty(); }
  Instruction *getTerminator() const {
    return Insts.empty() || !Insts.back()->isTerminatorInst()
               ? nullptr
               : Insts.back().get();
  }
  size_t size() const { return Insts.size(); }
  Instruction *getInst(size_t I) const { return Insts[I].get(); }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

/// A function: typed arguments, basic blocks, entry block first.
class Function : public Value {
public:
  Function(std::string Name, Type RetTy, std::vector<Type> ArgTys,
           Module *Parent);

  Module *getParent() const { return ParentM; }
  const Type &getReturnType() const { return RetTy; }
  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }

  BasicBlock *createBlock(std::string Name);
  BasicBlock *getEntry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Assigns dense LocalIds to all instructions; returns the count.
  unsigned renumber();
  unsigned getNumInstructions() const { return NumInsts; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Function;
  }

private:
  Module *ParentM;
  Type RetTy;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  unsigned NumInsts = 0;
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// A whole program: functions, globals, and interned constants.
class Module {
public:
  Module() = default;

  Function *createFunction(std::string Name, Type RetTy,
                           std::vector<Type> ArgTys);
  Function *getFunction(const std::string &Name) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  GlobalVariable *createGlobal(std::string Name, Type ElemTy,
                               uint64_t NumElems,
                               std::vector<uint64_t> Init = {});
  GlobalVariable *getGlobal(const std::string &Name) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  ConstantInt *getConstant(Type Ty, uint64_t Value);
  ConstantInt *getBool(bool B) { return getConstant(Type::makeInt(1), B); }
  ConstantInt *getInt64(uint64_t V) {
    return getConstant(Type::makeInt(64), V);
  }
  ConstantNull *getNull(Type PtrTy);

  /// Assigns module-wide GlobalIds to all instructions (run after all
  /// functions are built or after instrumentation). Returns the total
  /// instruction count and records the id -> instruction mapping.
  unsigned finalize();
  Instruction *getInstructionById(unsigned GlobalId) const {
    return GlobalId < InstById.size() ? InstById[GlobalId] : nullptr;
  }
  unsigned getNumInstructionIds() const {
    return static_cast<unsigned>(InstById.size());
  }

  /// Total static instruction count (a "lines of IR" proxy). Counts live
  /// instructions; the sticky id space (getNumInstructionIds) may be larger
  /// after optimization removed instructions.
  unsigned getStaticInstructionCount() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<ConstantInt>> IntConstants;
  std::vector<std::unique_ptr<ConstantNull>> NullConstants;
  std::vector<Instruction *> InstById;
};

//===----------------------------------------------------------------------===//
// Verification and printing
//===----------------------------------------------------------------------===//

/// Structurally verifies \p M (types, terminators, operand scoping). Returns
/// true on success; otherwise fills \p Err with the first problem found.
bool verifyModule(const Module &M, std::string *Err);

/// Renders \p M as text (debugging / golden tests).
std::string printModule(const Module &M);
std::string printFunction(const Function &F);

} // namespace er

#endif // ER_IR_IR_H
