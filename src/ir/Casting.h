//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style: classes expose a static classof, and
/// these templates dispatch on it. No C++ RTTI is used in the project.
///
//===----------------------------------------------------------------------===//

#ifndef ER_IR_CASTING_H
#define ER_IR_CASTING_H

#include <cassert>

namespace er {

template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace er

#endif // ER_IR_CASTING_H
