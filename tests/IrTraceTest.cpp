//===- IrTraceTest.cpp - IR structure, verifier, trace property tests ---------===//

#include "ir/Builder.h"
#include "ir/IR.h"
#include "solver/Solver.h"
#include "support/Rng.h"
#include "trace/OverheadModel.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace er;

//===----------------------------------------------------------------------===//
// IR structure and verifier
//===----------------------------------------------------------------------===//

namespace {

/// Builds: fn main() { x = 2 + 3; ret x }.
std::unique_ptr<Module> tinyModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("main", Type::makeInt(64), {});
  IRBuilder B(*M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Sum = B.binary(Opcode::Add, M->getInt64(2), M->getInt64(3));
  B.ret(Sum);
  M->finalize();
  return M;
}

} // namespace

TEST(Ir, VerifyAcceptsWellFormed) {
  auto M = tinyModule();
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}

TEST(Ir, VerifyRejectsMissingTerminator) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("main", Type::makeInt(64), {});
  IRBuilder B(*M);
  B.setInsertPoint(F->createBlock("entry"));
  B.binary(Opcode::Add, M->getInt64(1), M->getInt64(2)); // No terminator.
  M->finalize();
  std::string Err;
  EXPECT_FALSE(verifyModule(*M, &Err));
  EXPECT_NE(Err.find("terminator"), std::string::npos);
}

TEST(Ir, VerifyRejectsCrossBlockValue) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("main", Type::makeInt(64), {});
  IRBuilder B(*M);
  BasicBlock *BB1 = F->createBlock("a");
  BasicBlock *BB2 = F->createBlock("b");
  B.setInsertPoint(BB1);
  Value *V = B.binary(Opcode::Add, M->getInt64(1), M->getInt64(2));
  B.br(BB2);
  B.setInsertPoint(BB2);
  B.ret(V); // Uses a non-alloca result from another block.
  M->finalize();
  std::string Err;
  EXPECT_FALSE(verifyModule(*M, &Err));
}

TEST(Ir, AllocaResultsMayCrossBlocks) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("main", Type::makeInt(64), {});
  IRBuilder B(*M);
  BasicBlock *BB1 = F->createBlock("a");
  BasicBlock *BB2 = F->createBlock("b");
  B.setInsertPoint(BB1);
  Instruction *Slot = B.alloca_(Type::makeInt(64), 1, "x");
  B.store(M->getInt64(9), Slot);
  B.br(BB2);
  B.setInsertPoint(BB2);
  Value *L = B.load(Slot, Type::makeInt(64));
  B.ret(L);
  M->finalize();
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}

TEST(Ir, VerifyRejectsTypeMismatchedBinary) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("main", Type::makeInt(64), {});
  IRBuilder B(*M);
  B.setInsertPoint(F->createBlock("entry"));
  // Bypass builder asserts by constructing the instruction by hand.
  auto I = std::make_unique<Instruction>(Opcode::Add, Type::makeInt(64));
  I->addOperand(M->getInt64(1));
  I->addOperand(M->getConstant(Type::makeInt(32), 2));
  B.getInsertBlock()->append(std::move(I));
  B.ret(M->getInt64(0));
  M->finalize();
  std::string Err;
  EXPECT_FALSE(verifyModule(*M, &Err));
}

TEST(Ir, PrinterShowsStructure) {
  auto M = tinyModule();
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("func main"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(Ir, StickyIdsSurviveRefinalization) {
  auto M = tinyModule();
  Instruction *First = M->getInstructionById(0);
  ASSERT_NE(First, nullptr);
  unsigned OldId = First->getGlobalId();
  // Add an instruction and re-finalize: old ids keep their values.
  IRBuilder B(*M);
  Function *F = M->getFunction("main");
  BasicBlock *BB = F->blocks().front().get();
  auto PtW = std::make_unique<Instruction>(Opcode::PtWrite, Type::makeVoid());
  PtW->addOperand(BB->getInst(0));
  BB->insertAfter(BB->getInst(0), std::move(PtW));
  M->finalize();
  EXPECT_EQ(First->getGlobalId(), OldId);
  // The new instruction got a fresh id past the old range.
  EXPECT_GE(M->getNumInstructionIds(), 3u);
}

TEST(Ir, PackedPtrRoundTrips) {
  Rng R(3);
  for (int I = 0; I < 200; ++I) {
    uint32_t Obj = static_cast<uint32_t>(R.nextBounded(1u << 20));
    uint64_t Off = R.nextBounded(1ull << 39);
    uint64_t P = PackedPtr::make(Obj, Off);
    EXPECT_FALSE(PackedPtr::isNull(P));
    EXPECT_EQ(PackedPtr::objectId(P), Obj);
    EXPECT_EQ(PackedPtr::offset(P), Off);
  }
  EXPECT_TRUE(PackedPtr::isNull(0));
}

//===----------------------------------------------------------------------===//
// Trace encoding properties
//===----------------------------------------------------------------------===//

TEST(TraceProperty, RandomEventSequencesRoundTrip) {
  Rng R(99);
  for (int Round = 0; Round < 30; ++Round) {
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Rec.beginThread(0);

    struct Ev {
      int Kind; // 0 branch, 1 ret, 2 data.
      bool Taken;
      uint64_t Value;
    };
    std::vector<Ev> Sent;
    unsigned N = 1 + R.nextBounded(300);
    for (unsigned I = 0; I < N; ++I) {
      int Kind = static_cast<int>(R.nextBounded(3));
      Ev E{Kind, R.nextBool(), R.next() >> R.nextBounded(40)};
      if (Kind == 0)
        Rec.condBranch(0, E.Taken);
      else if (Kind == 1)
        Rec.returnTarget(0, static_cast<uint32_t>(E.Value & 0xffffffff));
      else
        Rec.ptWrite(0, E.Value);
      Sent.push_back(E);
    }
    Rec.finish();

    DecodedTrace D = Rec.decode();
    ASSERT_EQ(D.Threads.size(), 1u);
    const auto &Events = D.Threads[0].Events;
    ASSERT_EQ(Events.size(), Sent.size()) << "round " << Round;
    for (size_t I = 0; I < Sent.size(); ++I) {
      const Ev &S = Sent[I];
      const TraceEvent &E = Events[I];
      switch (S.Kind) {
      case 0:
        EXPECT_EQ(E.K, TraceEvent::Kind::CondBranch);
        EXPECT_EQ(E.Taken, S.Taken);
        break;
      case 1:
        EXPECT_EQ(E.K, TraceEvent::Kind::ReturnTarget);
        EXPECT_EQ(E.Value, S.Value & 0xffffffff);
        break;
      default:
        EXPECT_EQ(E.K, TraceEvent::Kind::Data);
        EXPECT_EQ(E.Value, S.Value);
        break;
      }
    }
  }
}

TEST(TraceProperty, ChunkCountsArePreserved) {
  TraceConfig TC;
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  Rec.beginThread(1);
  Rng R(5);
  std::vector<std::pair<uint32_t, uint64_t>> Chunks;
  uint64_t Ts = 0;
  for (int I = 0; I < 50; ++I) {
    uint32_t Tid = static_cast<uint32_t>(R.nextBounded(2));
    uint64_t N = 1 + R.nextBounded(200000); // Exercises count splitting.
    Rec.endChunk(Tid, Ts, N);
    Chunks.push_back({Tid, N});
    Ts += N;
  }
  Rec.finish();
  DecodedTrace D = Rec.decode();
  uint64_t Sent[2] = {0, 0}, Got[2] = {0, 0};
  for (auto &[Tid, N] : Chunks)
    Sent[Tid] += N;
  for (const auto &T : D.Threads)
    for (const auto &C : T.Chunks)
      Got[T.Tid] += C.NumInstrs;
  EXPECT_EQ(Got[0], Sent[0]);
  EXPECT_EQ(Got[1], Sent[1]);
}

TEST(TraceProperty, TimestampsAreQuantizedMonotonically) {
  TraceConfig TC;
  TC.TimerGranularityShift = 6;
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  for (uint64_t Ts = 0; Ts < 10000; Ts += 700)
    Rec.endChunk(0, Ts, 10);
  Rec.finish();
  DecodedTrace D = Rec.decode();
  uint64_t Prev = 0;
  for (const auto &C : D.Threads[0].Chunks) {
    EXPECT_GE(C.Timestamp, Prev);
    Prev = C.Timestamp;
  }
}

TEST(OverheadModel, MoreTraceBytesMoreOverhead) {
  TraceStats Small, Large;
  Small.BytesWritten = 1000;
  Large.BytesWritten = 100000;
  OverheadParams P;
  EXPECT_LT(erOverheadPercentExact(1'000'000, Small, P),
            erOverheadPercentExact(1'000'000, Large, P));
  // Same trace over a longer run = lower relative overhead.
  EXPECT_GT(erOverheadPercentExact(100'000, Large, P),
            erOverheadPercentExact(10'000'000, Large, P));
}

//===----------------------------------------------------------------------===//
// Array lowering equivalence (solver property)
//===----------------------------------------------------------------------===//

TEST(SolverProperty2, LoweredArraysEvaluateIdentically) {
  // lowerArrays must be semantics-preserving: for random write chains and
  // random assignments, the lowered (array-free) expression evaluates to
  // the same value as the original.
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  Rng R(2024);

  for (int Round = 0; Round < 40; ++Round) {
    ExprRef I = Ctx.makeVar("i" + std::to_string(Round), 8);
    ExprRef J = Ctx.makeVar("j" + std::to_string(Round), 8);
    ExprRef Arr = R.nextBool(0.5)
                      ? Ctx.symArray("A" + std::to_string(Round), 8, 8)
                      : Ctx.dataArray(8, {5, 6, 7, 8, 9, 10, 11, 12});
    unsigned Writes = R.nextBounded(4);
    for (unsigned W = 0; W < Writes; ++W) {
      ExprRef Idx = R.nextBool(0.5)
                        ? Ctx.urem(I, Ctx.constant(8, 8))
                        : Ctx.constant(R.nextBounded(8), 8);
      ExprRef Val = R.nextBool(0.5)
                        ? Ctx.bvxor(J, Ctx.constant(R.nextBounded(256), 8))
                        : Ctx.constant(R.nextBounded(256), 8);
      Arr = Ctx.write(Arr, Idx, Val);
    }
    ExprRef Read = Ctx.read(Arr, Ctx.urem(Ctx.add(I, J), Ctx.constant(8, 8)));

    uint64_t Work = 0;
    ExprRef Lowered = Solver.lowerArrays(Read, 1ull << 40, Work);
    ASSERT_NE(Lowered, nullptr);

    for (int Sample = 0; Sample < 20; ++Sample) {
      Assignment A;
      A.VarValues[I->getVarId()] = R.nextBounded(256);
      A.VarValues[J->getVarId()] = R.nextBounded(256);
      for (uint64_t K = 0; K < 8; ++K) {
        // Populate symbolic array cells (ignored for DataArray).
        uint32_t ArrId = 0;
        ExprRef Base = Arr;
        while (Base->getKind() == ExprKind::Write)
          Base = Base->getOp0();
        if (Base->getKind() == ExprKind::SymArray) {
          ArrId = Base->getVarId();
          A.ArrayValues[ArrId][K] = R.nextBounded(256);
        }
      }
      EXPECT_EQ(Ctx.evaluate(Read, A), Ctx.evaluate(Lowered, A))
          << "round " << Round << " sample " << Sample;
    }
  }
}

TEST(TraceProperty, SerializeDeserializeRoundTrips) {
  TraceConfig TC;
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  Rec.beginThread(3);
  Rng R(21);
  for (int I = 0; I < 300; ++I) {
    uint32_t Tid = R.nextBool(0.5) ? 0 : 3;
    switch (R.nextBounded(4)) {
    case 0: Rec.condBranch(Tid, R.nextBool()); break;
    case 1: Rec.returnTarget(Tid, static_cast<uint32_t>(R.nextBounded(1000))); break;
    case 2: Rec.ptWrite(Tid, R.next()); break;
    default: Rec.endChunk(Tid, R.nextBounded(100000), 1 + R.nextBounded(50)); break;
    }
  }
  // Note: serialize() flushes pending TNT bits into the blob itself.
  std::vector<uint8_t> Blob = Rec.serialize();
  DecodedTrace Shipped = TraceRecorder::deserialize(Blob);
  Rec.finish();
  DecodedTrace Local = Rec.decode();

  ASSERT_EQ(Shipped.Threads.size(), Local.Threads.size());
  for (size_t T = 0; T < Local.Threads.size(); ++T) {
    const DecodedThread &A = Local.Threads[T];
    const DecodedThread &B = Shipped.Threads[T];
    EXPECT_EQ(A.Tid, B.Tid);
    ASSERT_EQ(A.Events.size(), B.Events.size());
    for (size_t I = 0; I < A.Events.size(); ++I) {
      EXPECT_EQ(A.Events[I].K, B.Events[I].K);
      EXPECT_EQ(A.Events[I].Taken, B.Events[I].Taken);
      EXPECT_EQ(A.Events[I].Value, B.Events[I].Value);
    }
    ASSERT_EQ(A.Chunks.size(), B.Chunks.size());
    for (size_t I = 0; I < A.Chunks.size(); ++I) {
      EXPECT_EQ(A.Chunks[I].Timestamp, B.Chunks[I].Timestamp);
      EXPECT_EQ(A.Chunks[I].NumInstrs, B.Chunks[I].NumInstrs);
    }
  }
}
