//===- IngestTest.cpp - Report ingestion: codec, spool, collector ----------===//
//
// Covers src/ingest/ (docs/INGEST.md):
//  - ReportCodec: encode/decode round trip; typed rejection of truncated,
//    corrupted, and unknown-version bytes.
//  - ReportSpool: atomic publish, claim-by-rename, stale-temp skipping.
//  - ReportCollector failure modes (the six from the issue): truncated
//    record, flipped CRC byte, unknown version, duplicate (machine, seq)
//    delivery, empty spool, writer crash leaving a stale `.tmp` — all
//    quarantined/dropped with stats, never a crash.
//  - The acceptance bar: draining a multi-writer spool yields a
//    FleetReport byte-identical to the in-process harvest of the same
//    machines, regardless of file arrival order.
//
//===----------------------------------------------------------------------===//

#include "ingest/ReportCodec.h"
#include "ingest/ReportCollector.h"
#include "ingest/ReportSpool.h"

#include "fleet/FleetScheduler.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <string>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

/// Fast-reconstructing workloads (same set FleetTest uses).
const char *FastCorpus[] = {"Bash-108885", "SQLite-4e8e485",
                            "Matrixssl-2014-1569", "Memcached-2019-11596",
                            "PHP-2012-2386"};

constexpr uint64_t RootSeed = 20260807;

/// Fresh, empty spool directory unique to the calling test.
std::string freshSpool(const std::string &Name) {
  fs::path Dir = fs::path(testing::TempDir()) / ("er_ingest_" + Name);
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir.string();
}

FleetFailureReport makeReport(const std::string &BugId, FailureKind Kind,
                              unsigned Instr, std::vector<unsigned> Stack,
                              uint32_t Tid = 0, std::string Msg = "") {
  FleetFailureReport R;
  R.BugId = BugId;
  R.Failure.Kind = Kind;
  R.Failure.InstrGlobalId = Instr;
  R.Failure.CallStack = std::move(Stack);
  R.Failure.Tid = Tid;
  R.Failure.Message = std::move(Msg);
  return R;
}

/// Runs `er_cli report`'s inner loop: machine \p MachineId spools its
/// failures from the fast corpus, one published file per workload.
void spoolMachine(const std::string &SpoolDir, uint64_t MachineId,
                  unsigned Runs = 80) {
  SpoolWriter Writer(SpoolDir, MachineId);
  for (const char *Id : FastCorpus) {
    simulateMachine(*findBug(Id), Runs, MachineId, RootSeed, VmConfig(),
                    [&](const FleetFailureReport &R) { Writer.append(R); });
    std::string Err;
    ASSERT_TRUE(Writer.flush(&Err)) << Err;
  }
}

/// Serialized scheduler state — the byte-comparison proxy for "the same
/// FleetReport": campaign order, occurrence counts, seeds, reports, test
/// cases, and recording sets all land in the state file. The one
/// wall-clock field (`symexseconds`) is scrubbed; everything else is
/// deterministic and compared byte-for-byte.
std::string stateBytes(FleetScheduler &Sched) {
  std::string Path = (fs::path(testing::TempDir()) /
                      ("er_ingest_state_cmp." + std::to_string(::getpid()) +
                       ".txt"))
                         .string();
  std::string Err;
  EXPECT_TRUE(Sched.saveState(Path, &Err)) << Err;
  std::ifstream IS(Path, std::ios::binary);
  std::string S, Line;
  while (std::getline(IS, Line)) {
    if (Line.rfind("symexseconds ", 0) == 0)
      Line = "symexseconds <scrubbed>";
    S += Line;
    S += '\n';
  }
  std::remove(Path.c_str());
  return S;
}

std::vector<uint8_t> readFile(const fs::path &P) {
  std::ifstream IS(P, std::ios::binary);
  EXPECT_TRUE(IS.good()) << P;
  return {std::istreambuf_iterator<char>(IS), std::istreambuf_iterator<char>()};
}

void writeFile(const fs::path &P, const std::vector<uint8_t> &Bytes) {
  std::ofstream OS(P, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(OS.good()) << P;
}

/// The single published spool file after hand-crafted appends.
fs::path onlySpoolFile(const std::string &SpoolDir) {
  std::vector<std::string> Names = listSpoolFiles(SpoolDir);
  EXPECT_EQ(Names.size(), 1u);
  return fs::path(SpoolDir) / Names.front();
}

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

TEST(ReportCodec, RoundTripsReports) {
  std::vector<FleetFailureReport> In = {
      makeReport("PHP-2012-2386", FailureKind::OutOfBounds, 42, {7, 9}, 3,
                 "index 9 past end"),
      makeReport("", FailureKind::Abort, 0, {}, 0, ""),
      makeReport("Pbzip2", FailureKind::UseAfterFree, 1u << 30,
                 {1, 2, 3, 4, 5}, 0xFFFFFFFFu,
                 std::string("embedded\0byte", 13)),
  };
  In[0].MachineId = 12345;
  In[0].Sequence = 7;
  In[2].MachineId = ~0ULL;
  In[2].Sequence = ~0ULL;

  std::vector<uint8_t> Wire;
  encodeSpoolHeader(Wire);
  for (const auto &R : In)
    encodeReport(R, Wire);

  size_t Offset = 0;
  uint32_t Version = 0;
  ASSERT_EQ(decodeSpoolHeader(Wire.data(), Wire.size(), Offset, Version),
            DecodeStatus::Ok);
  EXPECT_EQ(Version, SpoolWireVersion);
  for (const auto &Want : In) {
    FleetFailureReport Got;
    ASSERT_EQ(decodeReport(Wire.data(), Wire.size(), Offset, Got),
              DecodeStatus::Ok);
    EXPECT_EQ(Got.BugId, Want.BugId);
    EXPECT_EQ(Got.MachineId, Want.MachineId);
    EXPECT_EQ(Got.Sequence, Want.Sequence);
    EXPECT_EQ(Got.Failure.Kind, Want.Failure.Kind);
    EXPECT_EQ(Got.Failure.InstrGlobalId, Want.Failure.InstrGlobalId);
    EXPECT_EQ(Got.Failure.CallStack, Want.Failure.CallStack);
    EXPECT_EQ(Got.Failure.Tid, Want.Failure.Tid);
    EXPECT_EQ(Got.Failure.Message, Want.Failure.Message);
  }
  EXPECT_EQ(Offset, Wire.size());
}

TEST(ReportCodec, RejectsDamagedBytes) {
  std::vector<uint8_t> Wire;
  encodeSpoolHeader(Wire);
  size_t HeaderSize = Wire.size();
  encodeReport(makeReport("b", FailureKind::NullDeref, 9, {1, 2}), Wire);

  size_t Offset = HeaderSize;
  FleetFailureReport Out;

  // Truncation at any point inside the record.
  for (size_t Cut = HeaderSize; Cut < Wire.size(); ++Cut) {
    Offset = HeaderSize;
    EXPECT_EQ(decodeReport(Wire.data(), Cut, Offset, Out),
              DecodeStatus::Truncated);
  }

  // Any flipped payload byte fails the CRC.
  for (size_t Pos = HeaderSize + 8; Pos < Wire.size(); ++Pos) {
    std::vector<uint8_t> Bad = Wire;
    Bad[Pos] ^= 0x40;
    Offset = HeaderSize;
    EXPECT_EQ(decodeReport(Bad.data(), Bad.size(), Offset, Out),
              DecodeStatus::BadChecksum);
  }

  // Header damage: magic and version are checked separately.
  std::vector<uint8_t> BadMagic = Wire;
  BadMagic[0] ^= 1;
  Offset = 0;
  uint32_t Version = 0;
  EXPECT_EQ(decodeSpoolHeader(BadMagic.data(), BadMagic.size(), Offset,
                              Version),
            DecodeStatus::BadMagic);
  std::vector<uint8_t> BadVersion = Wire;
  BadVersion[8] = 99;
  Offset = 0;
  EXPECT_EQ(decodeSpoolHeader(BadVersion.data(), BadVersion.size(), Offset,
                              Version),
            DecodeStatus::BadVersion);
  EXPECT_EQ(Version, 99u);
}

//===----------------------------------------------------------------------===//
// Acceptance bar: spool drain == in-process harvest
//===----------------------------------------------------------------------===//

TEST(Ingest, MultiWriterDrainMatchesInProcessHarvestByteForByte) {
  std::string Spool = freshSpool("harvest_equiv");
  for (uint64_t Machine = 0; Machine < 3; ++Machine)
    spoolMachine(Spool, Machine);

  FleetConfig FC;
  FC.RootSeed = RootSeed;
  FleetScheduler FromSpool(FC);
  ReportCollector Collector({.SpoolDir = Spool});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(FromSpool, &Err)) << Err;
  EXPECT_EQ(Collector.getStats().FilesQuarantined, 0u);
  EXPECT_EQ(Collector.getStats().DuplicatesDropped, 0u);
  ASSERT_GT(Collector.getStats().Submitted, 0u);
  FromSpool.run();

  FleetScheduler InProcess(FC);
  for (uint64_t Machine = 0; Machine < 3; ++Machine)
    for (const char *Id : FastCorpus)
      InProcess.harvest(*findBug(Id), 80, Machine);
  InProcess.run();

  EXPECT_EQ(stateBytes(FromSpool), stateBytes(InProcess));
}

TEST(Ingest, DrainIsIndependentOfFileArrivalOrder) {
  std::string SpoolA = freshSpool("arrival_a");
  for (uint64_t Machine = 0; Machine < 2; ++Machine)
    spoolMachine(SpoolA, Machine);

  // The same files delivered under names that reverse the scan order —
  // what out-of-order transports or clock-skewed machines produce.
  std::string SpoolB = freshSpool("arrival_b");
  std::vector<std::string> Names = listSpoolFiles(SpoolA);
  ASSERT_GT(Names.size(), 2u);
  for (size_t I = 0; I < Names.size(); ++I) {
    char Prefix[32];
    std::snprintf(Prefix, sizeof(Prefix), "zz%03u-",
                  static_cast<unsigned>(Names.size() - I));
    fs::copy_file(fs::path(SpoolA) / Names[I],
                  fs::path(SpoolB) / (Prefix + Names[I]));
  }

  FleetConfig FC;
  FC.RootSeed = RootSeed;
  FleetScheduler SchedA(FC), SchedB(FC);
  std::string Err;
  ReportCollector CA({.SpoolDir = SpoolA}), CB({.SpoolDir = SpoolB});
  ASSERT_TRUE(CA.drainInto(SchedA, &Err)) << Err;
  ASSERT_TRUE(CB.drainInto(SchedB, &Err)) << Err;
  EXPECT_EQ(CA.getStats().Submitted, CB.getStats().Submitted);
  SchedA.run();
  SchedB.run();
  EXPECT_EQ(stateBytes(SchedA), stateBytes(SchedB));
}

//===----------------------------------------------------------------------===//
// Failure modes
//===----------------------------------------------------------------------===//

/// Publishes one file with three hand-crafted reports and returns its path.
fs::path publishCraftedFile(const std::string &Spool) {
  SpoolWriter Writer(Spool, /*MachineId=*/5);
  Writer.append(makeReport("bug-a", FailureKind::NullDeref, 10, {1}));
  Writer.append(makeReport("bug-a", FailureKind::NullDeref, 10, {1}));
  Writer.append(makeReport("bug-b", FailureKind::OutOfBounds, 20, {2, 3}));
  std::string Err;
  EXPECT_TRUE(Writer.flush(&Err)) << Err;
  return onlySpoolFile(Spool);
}

/// Drains \p Spool and expects the single present file to be quarantined
/// with nothing submitted.
void expectQuarantined(const std::string &Spool, const std::string &Name) {
  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  const CollectorStats &S = Collector.getStats();
  EXPECT_EQ(S.FilesQuarantined, 1u);
  EXPECT_EQ(S.Submitted, 0u);
  EXPECT_EQ(S.RecordsDecoded, 0u);
  EXPECT_EQ(Sched.numCampaigns(), 0u);
  EXPECT_TRUE(fs::exists(fs::path(Spool) / "quarantine" / Name))
      << "quarantined file not preserved under its original name";
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
}

TEST(Ingest, TruncatedRecordQuarantinesFile) {
  std::string Spool = freshSpool("truncated");
  fs::path File = publishCraftedFile(Spool);
  std::vector<uint8_t> Bytes = readFile(File);
  Bytes.resize(Bytes.size() - 5); // Torn mid-record (e.g. a torn write).
  writeFile(File, Bytes);
  expectQuarantined(Spool, File.filename().string());
}

TEST(Ingest, FlippedCrcByteQuarantinesFile) {
  std::string Spool = freshSpool("crc");
  fs::path File = publishCraftedFile(Spool);
  std::vector<uint8_t> Bytes = readFile(File);
  Bytes[Bytes.size() - 3] ^= 0x01; // One bit of payload rot.
  writeFile(File, Bytes);
  expectQuarantined(Spool, File.filename().string());
}

TEST(Ingest, UnknownVersionQuarantinesFile) {
  std::string Spool = freshSpool("version");
  fs::path File = publishCraftedFile(Spool);
  std::vector<uint8_t> Bytes = readFile(File);
  Bytes[8] = 0x7F; // Version field of the header.
  writeFile(File, Bytes);
  expectQuarantined(Spool, File.filename().string());
}

TEST(Ingest, DuplicateDeliveryIsIdempotent) {
  std::string Spool = freshSpool("dup");
  fs::path File = publishCraftedFile(Spool);
  // The transport redelivers the same file under a second name.
  fs::copy_file(File, fs::path(Spool) / "redelivered.ers");

  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Collector.getStats().RecordsDecoded, 6u);
  EXPECT_EQ(Collector.getStats().DuplicatesDropped, 3u);
  EXPECT_EQ(Collector.getStats().Submitted, 3u);

  // Occurrence counts must match a single clean delivery.
  ASSERT_EQ(Sched.numCampaigns(), 2u);
  EXPECT_EQ(Sched.getCampaigns()[0].Occurrences, 2u);
  EXPECT_EQ(Sched.getCampaigns()[1].Occurrences, 1u);

  // Redelivery in a *later* drain is caught by the persisted high-water
  // mark (a fresh collector instance, as after a collector restart).
  publishCraftedFile(Spool);
  ReportCollector Later({.SpoolDir = Spool});
  ASSERT_TRUE(Later.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Later.getStats().DuplicatesDropped, 3u);
  EXPECT_EQ(Later.getStats().Submitted, 0u);
  EXPECT_EQ(Sched.getCampaigns()[0].Occurrences, 2u);
}

TEST(Ingest, EmptySpoolDrainsToNothing) {
  // An existing-but-empty spool, and a spool directory that does not
  // exist yet, both drain cleanly to zero.
  for (bool Precreate : {true, false}) {
    std::string Spool = freshSpool("empty");
    if (!Precreate)
      fs::remove_all(Spool);
    FleetScheduler Sched((FleetConfig()));
    ReportCollector Collector({.SpoolDir = Spool});
    std::string Err;
    ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
    const CollectorStats &S = Collector.getStats();
    EXPECT_EQ(S.FilesScanned, 0u);
    EXPECT_EQ(S.Submitted, 0u);
    EXPECT_EQ(Sched.numCampaigns(), 0u);
  }
}

TEST(Ingest, StaleTempFromCrashedWriterIsSkipped) {
  std::string Spool = freshSpool("staletmp");
  fs::path Published = publishCraftedFile(Spool);
  // A writer died mid-publish: its temp file holds a torn prefix.
  std::vector<uint8_t> Torn = readFile(Published);
  Torn.resize(Torn.size() / 2);
  writeFile(fs::path(Spool) / "m0000000000000009-0000000000000001.tmp", Torn);

  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  const CollectorStats &S = Collector.getStats();
  EXPECT_EQ(S.StaleTemps, 1u);
  EXPECT_EQ(S.FilesScanned, 1u);
  EXPECT_EQ(S.FilesQuarantined, 0u);
  EXPECT_EQ(S.Submitted, 3u);
  // The temp is left in place — its writer may still publish it.
  EXPECT_TRUE(
      fs::exists(fs::path(Spool) / "m0000000000000009-0000000000000001.tmp"));
}

TEST(Ingest, BackpressureShedsColdestBucketsFirst) {
  std::string Spool = freshSpool("backpressure");
  SpoolWriter Writer(Spool, /*MachineId=*/1);
  for (int I = 0; I < 6; ++I) // Hot bucket: 6 occurrences.
    Writer.append(makeReport("hot", FailureKind::NullDeref, 10, {1}));
  for (int I = 0; I < 2; ++I) // Cold bucket: 2.
    Writer.append(makeReport("cold", FailureKind::OutOfBounds, 20, {2}));
  std::string Err;
  ASSERT_TRUE(Writer.flush(&Err)) << Err;

  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool, .MaxPending = 6});
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Collector.getStats().BackpressureDropped, 2u);
  EXPECT_EQ(Collector.getStats().Submitted, 6u);
  ASSERT_EQ(Sched.numCampaigns(), 1u) << "cold bucket was not the one shed";
  EXPECT_EQ(Sched.getCampaigns()[0].BugId, "hot");
  EXPECT_EQ(Sched.getCampaigns()[0].Occurrences, 6u);
}

TEST(Ingest, ClaimedFilesAreConsumedExactlyOnce) {
  std::string Spool = freshSpool("claim");
  publishCraftedFile(Spool);

  // Two sequential drains of one spool (what racing collector processes
  // reduce to): the second finds nothing to claim.
  FleetScheduler Sched((FleetConfig()));
  std::string Err;
  ReportCollector First({.SpoolDir = Spool});
  ASSERT_TRUE(First.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(First.getStats().Submitted, 3u);

  ReportCollector Second({.SpoolDir = Spool});
  ASSERT_TRUE(Second.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Second.getStats().FilesScanned, 0u);
  EXPECT_EQ(Second.getStats().Submitted, 0u);
  EXPECT_EQ(Sched.getCampaigns()[0].Occurrences, 2u);
}

} // namespace
