//===- SolverTest.cpp - Solver unit and property tests ---------------------===//
//
// Unit tests for the expression DAG, SAT core, bit-blaster, and the budgeted
// constraint solver, plus randomized property tests checking the full solve
// pipeline against the reference evaluator.
//
//===----------------------------------------------------------------------===//

#include "solver/Expr.h"
#include "solver/Sat.h"
#include "solver/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace er;

//===----------------------------------------------------------------------===//
// Expression construction and simplification
//===----------------------------------------------------------------------===//

TEST(Expr, HashConsingSharesNodes) {
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 32);
  ExprRef B = Ctx.makeVar("b", 32);
  EXPECT_EQ(Ctx.add(A, B), Ctx.add(A, B));
  EXPECT_EQ(Ctx.add(A, B), Ctx.add(B, A)) << "commutative canonicalization";
  EXPECT_NE(Ctx.add(A, B), Ctx.sub(A, B));
}

TEST(Expr, ConstantFolding) {
  ExprContext Ctx;
  ExprRef C3 = Ctx.constant(3, 32);
  ExprRef C4 = Ctx.constant(4, 32);
  EXPECT_EQ(Ctx.add(C3, C4), Ctx.constant(7, 32));
  EXPECT_EQ(Ctx.mul(C3, C4), Ctx.constant(12, 32));
  EXPECT_EQ(Ctx.sub(C3, C4), Ctx.constant(0xffffffffu, 32));
  EXPECT_TRUE(Ctx.ult(C3, C4)->isTrue());
  EXPECT_TRUE(Ctx.slt(C4, C3)->isFalse());
}

TEST(Expr, AlgebraicIdentities) {
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 32);
  ExprRef Zero = Ctx.constant(0, 32);
  ExprRef One = Ctx.constant(1, 32);
  EXPECT_EQ(Ctx.add(A, Zero), A);
  EXPECT_EQ(Ctx.mul(A, One), A);
  EXPECT_EQ(Ctx.mul(A, Zero), Zero);
  EXPECT_EQ(Ctx.sub(A, A), Zero);
  EXPECT_EQ(Ctx.bvxor(A, A), Zero);
  EXPECT_TRUE(Ctx.eq(A, A)->isTrue());
  EXPECT_EQ(Ctx.bvnot(Ctx.bvnot(A)), A);
}

TEST(Expr, AddConstantChainsCollapse) {
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 32);
  ExprRef E = Ctx.add(Ctx.add(A, Ctx.constant(5, 32)), Ctx.constant(7, 32));
  // (a + 5) + 7 -> a + 12.
  EXPECT_EQ(E, Ctx.add(A, Ctx.constant(12, 32)));
}

TEST(Expr, SignedConstantFolding) {
  ExprContext Ctx;
  // -5 sdiv 2 == -2 (C-style truncation).
  ExprRef A = Ctx.constant(static_cast<uint64_t>(-5) & 0xff, 8);
  ExprRef B = Ctx.constant(2, 8);
  ExprRef Q = Ctx.sdiv(A, B);
  ASSERT_TRUE(Q->isConst());
  EXPECT_EQ(signExtend(Q->getConstVal(), 8), -2);
  ExprRef R = Ctx.srem(A, B);
  ASSERT_TRUE(R->isConst());
  EXPECT_EQ(signExtend(R->getConstVal(), 8), -1);
}

TEST(Expr, ReadOverWriteFolding) {
  ExprContext Ctx;
  ExprRef Arr = Ctx.constArray(32, 16, 0);
  ExprRef I2 = Ctx.constant(2, 32);
  ExprRef I3 = Ctx.constant(3, 32);
  ExprRef V = Ctx.constant(99, 32);
  ExprRef W = Ctx.write(Arr, I2, V);
  // Concrete write over concrete array folds into concrete storage.
  EXPECT_EQ(W->getKind(), ExprKind::DataArray);
  EXPECT_EQ(Ctx.read(W, I2), V);
  EXPECT_EQ(Ctx.read(W, I3), Ctx.constant(0, 32));
}

TEST(Expr, SymbolicWriteChainPreserved) {
  ExprContext Ctx;
  ExprRef Arr = Ctx.constArray(32, 16, 0);
  ExprRef X = Ctx.makeVar("x", 32);
  ExprRef W = Ctx.write(Arr, X, Ctx.constant(1, 32));
  EXPECT_EQ(W->getKind(), ExprKind::Write);
  // Read at the same symbolic index sees the written value.
  EXPECT_EQ(Ctx.read(W, X), Ctx.constant(1, 32));
  // Read at a different symbolic index stays symbolic.
  ExprRef Y = Ctx.makeVar("y", 32);
  EXPECT_EQ(Ctx.read(W, Y)->getKind(), ExprKind::Read);
}

TEST(Expr, EvaluateMatchesSemantics) {
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 16);
  ExprRef B = Ctx.makeVar("b", 16);
  ExprRef E = Ctx.add(Ctx.mul(A, B), Ctx.constant(10, 16));
  Assignment Asgn;
  Asgn.VarValues[A->getVarId()] = 7;
  Asgn.VarValues[B->getVarId()] = 9;
  EXPECT_EQ(Ctx.evaluate(E, Asgn), 73u);
}

TEST(Expr, SubstituteConcretizes) {
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 32);
  ExprRef B = Ctx.makeVar("b", 32);
  ExprRef Sum = Ctx.add(A, B);
  std::unordered_map<ExprRef, ExprRef> Map{{Sum, Ctx.constant(5, 32)}};
  ExprRef E = Ctx.mul(Sum, Ctx.constant(3, 32));
  EXPECT_EQ(Ctx.substitute(E, Map), Ctx.constant(15, 32));
}

TEST(Expr, ArrayEvaluation) {
  ExprContext Ctx;
  ExprRef Arr = Ctx.symArray("A", 8, 16);
  ExprRef I = Ctx.makeVar("i", 8);
  ExprRef R = Ctx.read(Ctx.write(Arr, I, Ctx.constant(42, 8)),
                       Ctx.constant(3, 8));
  Assignment Asgn;
  Asgn.VarValues[I->getVarId()] = 3;
  EXPECT_EQ(Ctx.evaluate(R, Asgn), 42u);
  Asgn.VarValues[I->getVarId()] = 4;
  Asgn.ArrayValues[Arr->getVarId()][3] = 17;
  EXPECT_EQ(Ctx.evaluate(R, Asgn), 17u);
}

//===----------------------------------------------------------------------===//
// SAT core
//===----------------------------------------------------------------------===//

TEST(Sat, TrivialSatAndUnsat) {
  SatSolver S;
  unsigned A = S.newVar();
  unsigned B = S.newVar();
  S.addBinary(Lit(A, false), Lit(B, false));
  S.addUnit(Lit(A, true));
  EXPECT_EQ(S.solve(SatBudget{}), SatStatus::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));

  SatSolver U;
  unsigned X = U.newVar();
  U.addUnit(Lit(X, false));
  U.addUnit(Lit(X, true));
  EXPECT_EQ(U.solve(SatBudget{}), SatStatus::Unsat);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance requiring learning.
  SatSolver S;
  const int P = 4, H = 3;
  unsigned V[4][3];
  for (int I = 0; I < P; ++I)
    for (int J = 0; J < H; ++J)
      V[I][J] = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(Lit(V[I][J], false));
    S.addClause(C);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addBinary(Lit(V[I1][J], true), Lit(V[I2][J], true));
  EXPECT_EQ(S.solve(SatBudget{}), SatStatus::Unsat);
}

TEST(Sat, BudgetExhaustionReportsUnknown) {
  // A hard pigeonhole instance with a tiny conflict budget.
  SatSolver S;
  const int P = 8, H = 7;
  std::vector<std::vector<unsigned>> V(P, std::vector<unsigned>(H));
  for (int I = 0; I < P; ++I)
    for (int J = 0; J < H; ++J)
      V[I][J] = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(Lit(V[I][J], false));
    S.addClause(C);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addBinary(Lit(V[I1][J], true), Lit(V[I2][J], true));
  SatBudget B;
  B.MaxConflicts = 10;
  EXPECT_EQ(S.solve(B), SatStatus::Unknown);
}

TEST(Sat, RandomInstancesAgreeWithBruteForce) {
  // Random 3-CNF over 10 vars; compare CDCL verdict with exhaustive check.
  Rng R(1234);
  for (int Round = 0; Round < 50; ++Round) {
    const unsigned N = 10;
    unsigned NumClauses = 20 + R.nextBounded(30);
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    std::vector<unsigned> Vars;
    for (unsigned I = 0; I < N; ++I)
      Vars.push_back(S.newVar());
    for (unsigned C = 0; C < NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(
            Lit(Vars[R.nextBounded(N)], R.nextBool()));
      Clauses.push_back(Clause);
      S.addClause(Clause);
    }
    bool BruteSat = false;
    for (uint32_t M = 0; M < (1u << N) && !BruteSat; ++M) {
      bool All = true;
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C) {
          bool Val = (M >> (L.var() - Vars[0])) & 1;
          if (Val != L.negated()) {
            Any = true;
            break;
          }
        }
        if (!Any) {
          All = false;
          break;
        }
      }
      BruteSat = All;
    }
    SatStatus St = S.solve(SatBudget{});
    EXPECT_EQ(St, BruteSat ? SatStatus::Sat : SatStatus::Unsat)
        << "round " << Round;
    if (St == SatStatus::Sat) {
      // The returned model must satisfy every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          if (S.modelValue(L.var()) != L.negated())
            Any = true;
        EXPECT_TRUE(Any);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// End-to-end solving
//===----------------------------------------------------------------------===//

TEST(Solver, SimpleEquation) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 32);
  // x + 3 == 10.
  ExprRef A = Ctx.eq(Ctx.add(X, Ctx.constant(3, 32)), Ctx.constant(10, 32));
  QueryResult R = Solver.checkSat({A});
  ASSERT_EQ(R.Status, QueryStatus::Sat);
  EXPECT_EQ(R.Model.getVar(X->getVarId()), 7u);
}

TEST(Solver, UnsatConjunction) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 16);
  QueryResult R = Solver.checkSat({
      Ctx.ult(X, Ctx.constant(4, 16)),
      Ctx.ult(Ctx.constant(9, 16), X),
  });
  EXPECT_EQ(R.Status, QueryStatus::Unsat);
}

TEST(Solver, MultiplicationInverse) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 16);
  // x * 3 == 123 and x < 100 -> x == 41.
  QueryResult R = Solver.checkSat({
      Ctx.eq(Ctx.mul(X, Ctx.constant(3, 16)), Ctx.constant(123, 16)),
      Ctx.ult(X, Ctx.constant(100, 16)),
  });
  ASSERT_EQ(R.Status, QueryStatus::Sat);
  EXPECT_EQ(R.Model.getVar(X->getVarId()), 41u);
}

TEST(Solver, SymbolicArrayRead) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  // A is concrete data; find i such that A[i] == 30.
  ExprRef Arr = Ctx.dataArray(32, {10, 20, 30, 40});
  ExprRef I = Ctx.makeVar("i", 32);
  QueryResult R = Solver.checkSat({
      Ctx.ult(I, Ctx.constant(4, 32)),
      Ctx.eq(Ctx.read(Arr, I), Ctx.constant(30, 32)),
  });
  ASSERT_EQ(R.Status, QueryStatus::Sat);
  EXPECT_EQ(R.Model.getVar(I->getVarId()), 2u);
}

TEST(Solver, WriteChainReasoning) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  // V[16] = {0}; V[x] = 1; if (V[c] == 0) -> c != x.
  ExprRef V0 = Ctx.constArray(32, 16, 0);
  ExprRef X = Ctx.makeVar("x", 32);
  ExprRef C = Ctx.makeVar("c", 32);
  ExprRef V1 = Ctx.write(V0, X, Ctx.constant(1, 32));
  std::vector<ExprRef> Asserts = {
      Ctx.ult(X, Ctx.constant(16, 32)),
      Ctx.ult(C, Ctx.constant(16, 32)),
      Ctx.eq(Ctx.read(V1, C), Ctx.constant(0, 32)),
      Ctx.eq(X, C),
  };
  EXPECT_EQ(Solver.checkSat(Asserts).Status, QueryStatus::Unsat);
  Asserts.pop_back();
  QueryResult R = Solver.checkSat(Asserts);
  ASSERT_EQ(R.Status, QueryStatus::Sat);
  EXPECT_NE(R.Model.getVar(X->getVarId()), R.Model.getVar(C->getVarId()));
}

TEST(Solver, TimeoutOnTinyBudget) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 32);
  ExprRef Y = Ctx.makeVar("y", 32);
  ExprRef A = Ctx.eq(Ctx.mul(X, Y), Ctx.constant(0x12345678, 32));
  QueryResult R = Solver.checkSat({A}, /*BudgetOverride=*/100);
  EXPECT_EQ(R.Status, QueryStatus::Timeout);
}

TEST(Solver, EnumerateValuesFindsAll) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 8);
  // 3 <= x < 7 -> {3,4,5,6}.
  std::vector<uint64_t> Values;
  bool Complete = false;
  QueryStatus S = Solver.enumerateValues(
      {Ctx.ule(Ctx.constant(3, 8), X), Ctx.ult(X, Ctx.constant(7, 8))}, X,
      16, Values, Complete);
  ASSERT_EQ(S, QueryStatus::Sat);
  EXPECT_TRUE(Complete);
  std::sort(Values.begin(), Values.end());
  EXPECT_EQ(Values, (std::vector<uint64_t>{3, 4, 5, 6}));
}

TEST(Solver, EnumerateRespectsMaxCount) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 16);
  std::vector<uint64_t> Values;
  bool Complete = true;
  QueryStatus S =
      Solver.enumerateValues({Ctx.ult(X, Ctx.constant(1000, 16))}, X, 5,
                             Values, Complete);
  ASSERT_EQ(S, QueryStatus::Sat);
  EXPECT_FALSE(Complete);
  EXPECT_EQ(Values.size(), 5u);
}

TEST(Solver, MustBeTrue) {
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 8);
  std::vector<ExprRef> Asserts = {Ctx.ult(X, Ctx.constant(10, 8))};
  bool Result = false;
  ASSERT_EQ(Solver.mustBeTrue(Asserts, Ctx.ult(X, Ctx.constant(11, 8)),
                              Result),
            QueryStatus::Sat);
  EXPECT_TRUE(Result);
  ASSERT_EQ(Solver.mustBeTrue(Asserts, Ctx.ult(X, Ctx.constant(9, 8)),
                              Result),
            QueryStatus::Sat);
  EXPECT_FALSE(Result);
}

//===----------------------------------------------------------------------===//
// Property tests: random expressions, solver vs reference evaluator
//===----------------------------------------------------------------------===//

namespace {

/// Builds a random expression over \p Vars with the given recursion depth.
ExprRef randomExpr(ExprContext &Ctx, Rng &R, const std::vector<ExprRef> &Vars,
                   unsigned Width, unsigned Depth) {
  if (Depth == 0 || R.nextBool(0.25)) {
    if (R.nextBool(0.5)) {
      for (ExprRef V : Vars)
        if (V->getWidth() == Width && R.nextBool(0.5))
          return V;
    }
    return Ctx.constant(R.next(), Width);
  }
  switch (R.nextBounded(14)) {
  case 0:
    return Ctx.add(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                   randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 1:
    return Ctx.sub(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                   randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 2:
    return Ctx.mul(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                   randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 3:
    return Ctx.bvand(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                     randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 4:
    return Ctx.bvor(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                    randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 5:
    return Ctx.bvxor(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                     randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 6:
    return Ctx.shl(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                   Ctx.constant(R.nextBounded(Width + 2), Width));
  case 7:
    return Ctx.lshr(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                    Ctx.constant(R.nextBounded(Width + 2), Width));
  case 8:
    return Ctx.ashr(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                    Ctx.constant(R.nextBounded(Width + 2), Width));
  case 9:
    return Ctx.bvnot(randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 10:
    return Ctx.neg(randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 11:
    return Ctx.udiv(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                    randomExpr(Ctx, R, Vars, Width, Depth - 1));
  case 12:
    return Ctx.urem(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                    randomExpr(Ctx, R, Vars, Width, Depth - 1));
  default:
    return Ctx.ite(
        Ctx.ult(randomExpr(Ctx, R, Vars, Width, Depth - 1),
                randomExpr(Ctx, R, Vars, Width, Depth - 1)),
        randomExpr(Ctx, R, Vars, Width, Depth - 1),
        randomExpr(Ctx, R, Vars, Width, Depth - 1));
  }
}

struct PropertyParams {
  unsigned Width;
  uint64_t Seed;
};

class SolverProperty : public ::testing::TestWithParam<PropertyParams> {};

} // namespace

TEST_P(SolverProperty, ModelsSatisfyRandomConstraints) {
  // Generate a random expression E and a random target value computed by
  // evaluating E on random inputs (so SAT is guaranteed); then check that
  // the solver finds a model and that the model evaluates correctly.
  PropertyParams P = GetParam();
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  Rng R(P.Seed);
  std::vector<ExprRef> Vars = {Ctx.makeVar("p", P.Width),
                               Ctx.makeVar("q", P.Width)};

  for (int Round = 0; Round < 12; ++Round) {
    ExprRef E = randomExpr(Ctx, R, Vars, P.Width, 3);
    Assignment Random;
    Random.VarValues[Vars[0]->getVarId()] = maskToWidth(R.next(), P.Width);
    Random.VarValues[Vars[1]->getVarId()] = maskToWidth(R.next(), P.Width);
    uint64_t Target = Ctx.evaluate(E, Random);
    ExprRef Assertion = Ctx.eq(E, Ctx.constant(Target, P.Width));
    QueryResult QR = Solver.checkSat({Assertion});
    ASSERT_EQ(QR.Status, QueryStatus::Sat)
        << "round " << Round << ": " << Ctx.toString(Assertion);
    // checkSat internally validates the model against the assertion; also
    // validate here against the caller-visible API.
    EXPECT_EQ(Ctx.evaluate(E, QR.Model), Target);
  }
}

TEST_P(SolverProperty, UnsatDetectedForContradictions) {
  PropertyParams P = GetParam();
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  Rng R(P.Seed ^ 0xabcdef);
  std::vector<ExprRef> Vars = {Ctx.makeVar("p", P.Width),
                               Ctx.makeVar("q", P.Width)};
  for (int Round = 0; Round < 8; ++Round) {
    ExprRef E = randomExpr(Ctx, R, Vars, P.Width, 3);
    // E == c and E != c is contradictory for any c.
    ExprRef C = Ctx.constant(R.next(), P.Width);
    QueryResult QR = Solver.checkSat({Ctx.eq(E, C), Ctx.ne(E, C)});
    EXPECT_EQ(QR.Status, QueryStatus::Unsat) << "round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SolverProperty,
    ::testing::Values(PropertyParams{4, 11}, PropertyParams{8, 22},
                      PropertyParams{13, 33}, PropertyParams{16, 44},
                      PropertyParams{32, 55}, PropertyParams{64, 66}),
    [](const ::testing::TestParamInfo<PropertyParams> &Info) {
      return "w" + std::to_string(Info.param.Width) + "_s" +
             std::to_string(Info.param.Seed);
    });

TEST(Solver, ArrayPropertyRandomized) {
  // Random write chains over a small array; solver results must agree with
  // the reference evaluator.
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  Rng R(777);
  ExprRef I = Ctx.makeVar("i", 8);
  ExprRef J = Ctx.makeVar("j", 8);

  for (int Round = 0; Round < 10; ++Round) {
    ExprRef Arr = Ctx.constArray(8, 8, 0);
    // Build a chain of 3 writes at symbolic/concrete indices.
    Arr = Ctx.write(Arr, Ctx.urem(I, Ctx.constant(8, 8)),
                    Ctx.constant(R.nextBounded(256), 8));
    Arr = Ctx.write(Arr, Ctx.constant(R.nextBounded(8), 8),
                    Ctx.urem(J, Ctx.constant(16, 8)));
    Arr = Ctx.write(Arr, Ctx.urem(J, Ctx.constant(8, 8)),
                    Ctx.constant(R.nextBounded(256), 8));
    ExprRef Read = Ctx.read(Arr, Ctx.urem(Ctx.add(I, J), Ctx.constant(8, 8)));

    Assignment Random;
    Random.VarValues[I->getVarId()] = R.nextBounded(256);
    Random.VarValues[J->getVarId()] = R.nextBounded(256);
    uint64_t Target = Ctx.evaluate(Read, Random);

    QueryResult QR =
        Solver.checkSat({Ctx.eq(Read, Ctx.constant(Target, 8))});
    ASSERT_EQ(QR.Status, QueryStatus::Sat) << "round " << Round;
    EXPECT_EQ(Ctx.evaluate(Read, QR.Model), Target) << "round " << Round;
  }
}

TEST(Solver, StallScalesWithChainLengthAndObjectSize) {
  // The work charged by the solver must grow with (a) symbolic write chain
  // length and (b) symbolic object size — the paper's two stall sources.
  ExprContext Ctx;
  ConstraintSolver Solver(Ctx);
  ExprRef X = Ctx.makeVar("x", 32);

  auto WorkFor = [&](unsigned ChainLen, uint64_t ObjSize) {
    ExprRef Arr = Ctx.symArray("A" + std::to_string(ChainLen) + "_" +
                                   std::to_string(ObjSize),
                               32, ObjSize);
    ExprRef Bound = Ctx.constant(ObjSize, 32);
    std::vector<ExprRef> Asserts = {Ctx.ult(X, Bound)};
    ExprRef Cur = Arr;
    for (unsigned K = 0; K < ChainLen; ++K)
      Cur = Ctx.write(Cur, Ctx.urem(Ctx.add(X, Ctx.constant(K, 32)), Bound),
                      Ctx.constant(K, 32));
    Asserts.push_back(
        Ctx.eq(Ctx.read(Cur, X), Ctx.constant(0, 32)));
    QueryResult R = Solver.checkSat(Asserts);
    EXPECT_NE(R.Status, QueryStatus::Unsat);
    return R.WorkUsed;
  };

  uint64_t ShortChain = WorkFor(2, 32);
  uint64_t LongChain = WorkFor(12, 32);
  EXPECT_GT(LongChain, ShortChain);

  uint64_t SmallObj = WorkFor(4, 16);
  uint64_t LargeObj = WorkFor(4, 256);
  EXPECT_GT(LargeObj, SmallObj);
}
